module knncost

go 1.22
