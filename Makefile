GO ?= go

.PHONY: all build test check vet race bench-smoke bench perf soak

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-test the packages with concurrent hot paths: the staircase build
# fan-out, the batch estimation workers, the relation store's build pool and
# hot-swap publication, the HTTP batch endpoint, the robustness middleware,
# the fault-injection harness, and the daemon's signal-driven drain.
race:
	$(GO) test -race ./internal/core/... ./internal/store/... ./internal/service/... ./internal/faultinject/... ./cmd/knncostd/...

# One iteration of every benchmark: catches benchmarks that panic or
# regress to building their fixture per op, without the full measurement
# cost.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# The gate run by scripts/check.sh and documented in README.md.
check: vet
	$(GO) test ./...
	$(GO) test -race ./internal/core/... ./internal/store/... ./internal/service/... ./internal/faultinject/... ./cmd/knncostd/...
	$(GO) test -run xxx -bench 'BenchmarkEstimateSelectHot|BenchmarkStaircaseBuildAlloc|BenchmarkFig13SelectPreprocessCC' -benchtime 1x .

# Boot a real knncostd, burst the batch endpoint, SIGTERM it, and assert a
# clean drain and exit 0 — the end-to-end smoke of the robustness layer.
soak:
	sh scripts/soak.sh

# Full measured benchmark sweep (slow).
bench:
	$(GO) test -bench . -benchmem .

# Machine-readable hot-path numbers: writes BENCH_<date>.json to results/.
perf:
	$(GO) run ./cmd/knnbench -perf -out results
