GO ?= go

.PHONY: all build test check vet lint cover race bench-smoke bench perf bench-diff soak accuracy fuzz-smoke

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# staticcheck + govulncheck at pinned versions (see scripts/lint.sh);
# degrades to a warning when the tools cannot be installed offline.
lint:
	sh scripts/lint.sh

# Per-package coverage; fails when internal/engine drops below 85%.
cover:
	sh scripts/cover.sh

# Race-test the packages with concurrent hot paths: the staircase build
# fan-out, the batch estimation workers, the engine's once-per-artifact
# builds, the WAL's group-commit fsync batching, the relation store's build
# pool, delta overlays, and hot-swap publication, the HTTP batch endpoint,
# the robustness middleware, the fault-injection harness, the daemon's
# signal-driven drain, the oracle differential suite (which runs batches
# against live hot-swaps), the shard tier's scatter-gather, hedging,
# breaker, and mirror-on-demand machinery, the optimizer's single-flight
# plan cache under concurrent misses and invalidations, and the bounds-only
# AkNN join (whose summaries are shared across snapshot readers).
race:
	$(GO) test -race ./internal/core/... ./internal/engine/... ./internal/aknn/... ./internal/wal/... ./internal/store/... ./internal/optimizer/... ./internal/service/... ./internal/faultinject/... ./internal/oracle/... ./internal/shard/... ./cmd/knncostd/...

# One iteration of every benchmark: catches benchmarks that panic or
# regress to building their fixture per op, without the full measurement
# cost.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# The gate run by scripts/check.sh and documented in README.md.
check: vet
	$(MAKE) lint
	$(GO) test ./...
	$(GO) test -race ./internal/core/... ./internal/engine/... ./internal/aknn/... ./internal/wal/... ./internal/store/... ./internal/optimizer/... ./internal/service/... ./internal/faultinject/... ./internal/oracle/... ./internal/shard/... ./cmd/knncostd/...
	$(GO) test -run xxx -bench 'BenchmarkEstimateSelectHot|BenchmarkStaircaseBuildAlloc|BenchmarkFig13SelectPreprocessCC' -benchtime 1x .
	$(MAKE) cover
	sh scripts/soak.sh shard
	sh scripts/soak.sh ingest
	sh scripts/soak.sh plan
	sh scripts/soak.sh mmap
	$(MAKE) accuracy
	$(MAKE) fuzz-smoke

# Estimator-accuracy regression gate: audit every estimation technique
# against the brute-force oracle, print the per-technique pass/fail table,
# and fail if an exact-equality invariant breaks or a q-error quantile
# degrades beyond 10% of results/ACCURACY_BASELINE.json. Refresh the golden
# file with:
#   go run ./cmd/knnbench -accuracy -baseline results/ACCURACY_BASELINE.json -update-baseline
accuracy:
	$(GO) run ./cmd/knnbench -accuracy -baseline results/ACCURACY_BASELINE.json

# Short fuzz smoke of the differential fuzz targets (the seed corpus also
# runs on every plain `go test`).
fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzEstimateSelect -fuzztime 2s ./internal/oracle/
	$(GO) test -run xxx -fuzz FuzzJoinCost -fuzztime 2s ./internal/oracle/
	$(GO) test -run xxx -fuzz 'FuzzAknnJoin$$' -fuzztime 2s ./internal/aknn/
	$(GO) test -run xxx -fuzz FuzzAknnBoundsEstimate -fuzztime 2s ./internal/aknn/
	$(GO) test -run xxx -fuzz FuzzLoadAknnSummary -fuzztime 2s ./internal/aknn/

# Boot a real knncostd, burst the batch endpoint, SIGTERM it, and assert a
# clean drain and exit 0 — the end-to-end smoke of the robustness layer.
soak:
	sh scripts/soak.sh

# Full measured benchmark sweep (slow).
bench:
	$(GO) test -bench . -benchmem .

# Machine-readable hot-path numbers plus the routed multi-shard topology
# sweep: writes BENCH_<date>.json to results/.
perf:
	$(GO) run ./cmd/knnbench -perf -shards 1,2,4 -out results

# Perf-trajectory gate: re-measure every hot path and fail when any op in
# the newest committed BENCH_<date>.json regresses by more than 20% ns/op.
# The fresh numbers go to a temp dir so the committed trajectory only ever
# advances via a deliberate `make perf`.
bench-diff:
	$(GO) run ./cmd/knnbench -perf -shards 1,2,4 \
		-out "$$(mktemp -d)" \
		-against "$$(ls results/BENCH_*.json | sort | tail -n1)"
