// Command optimizer shows the second optimizer decision the paper motivates
// (§1): a batch of many k-NN-Select queries against the same relation can be
// executed either as independent selects, or — sharing work — as a single
// k-NN-Join with the query points as the outer relation. The right choice
// depends on the batch size; the crossover is found by comparing the summed
// staircase estimates against the Catalog-Merge join estimate, then verified
// by executing both strategies.
package main

import (
	"fmt"

	"knncost"
)

func main() {
	fmt.Println("== batch of k-NN-Selects vs one k-NN-Join ==")

	restaurants := knncost.BuildQuadtreeIndex(
		knncost.GenerateOSMLike(150_000, 31), knncost.IndexOptions{Capacity: 256})
	fmt.Printf("relation: %d points, %d blocks\n\n", restaurants.NumPoints(), restaurants.NumBlocks())

	staircase, err := knncost.NewStaircaseEstimator(restaurants, knncost.StaircaseOptions{MaxK: 500})
	if err != nil {
		panic(err)
	}

	const k = 10
	fmt.Printf("%8s | %14s | %14s | %10s | %10s | %10s | %5s\n",
		"batch", "est. selects", "est. join", "choice", "actual sel", "actual join", "ok?")

	for _, batch := range []int{50, 500, 5_000, 20_000} {
		// The batch of query points clusters where the data is (users
		// query from cities).
		queries := knncost.GenerateOSMLike(batch, int64(100+batch))

		// Strategy 1: independent k-NN-Selects; cost = Σ estimates.
		estSelects := 0.0
		for _, q := range queries {
			e, err := staircase.EstimateSelect(q, k)
			if err != nil {
				panic(err)
			}
			estSelects += e
		}

		// Strategy 2: one k-NN-Join with the queries as outer relation.
		queryIx := knncost.BuildQuadtreeIndex(queries, knncost.IndexOptions{
			Capacity: 256, Bounds: knncost.WorldBounds()})
		cm, err := knncost.NewCatalogMergeEstimator(queryIx, restaurants, 200, k)
		if err != nil {
			panic(err)
		}
		estJoin, err := cm.EstimateJoin(k)
		if err != nil {
			panic(err)
		}

		choice := "selects"
		if estJoin < estSelects {
			choice = "join"
		}

		// Verify: execute both strategies and count blocks actually
		// scanned.
		actualSelects := 0
		for _, q := range queries {
			actualSelects += restaurants.SelectKNNCost(q, k)
		}
		actualJoin := knncost.JoinKNNCost(queryIx, restaurants, k)
		correct := (choice == "join") == (actualJoin < actualSelects)

		fmt.Printf("%8d | %14.0f | %14.0f | %10s | %10d | %10d | %5v\n",
			batch, estSelects, estJoin, choice, actualSelects, actualJoin, correct)
	}

	fmt.Println("\nSmall batches: per-query selects touch fewer blocks. Large batches:")
	fmt.Println("the join shares localities between nearby query points and wins.")
	fmt.Println("The estimates find the crossover without running either strategy.")
}
