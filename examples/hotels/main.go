// Command hotels demonstrates k-NN-Join cost estimation: "for each hotel,
// find its k closest restaurants" (the motivating join of the paper's
// introduction). It evaluates the locality-based join to obtain the true
// block-scan cost, then compares the three estimators of §4 — Block-Sample,
// Catalog-Merge, and Virtual-Grid — on accuracy, per-estimate latency, and
// catalog storage.
package main

import (
	"fmt"
	"math"
	"time"

	"knncost"
)

func main() {
	fmt.Println("== k-NN-Join cost estimation: hotels ⋉ restaurants ==")

	hotels := knncost.BuildQuadtreeIndex(
		knncost.GenerateOSMLike(30_000, 21), knncost.IndexOptions{Capacity: 128})
	restaurants := knncost.BuildQuadtreeIndex(
		knncost.GenerateOSMLike(120_000, 22), knncost.IndexOptions{Capacity: 128})
	fmt.Printf("outer (hotels):      %6d points, %4d blocks\n", hotels.NumPoints(), hotels.NumBlocks())
	fmt.Printf("inner (restaurants): %6d points, %4d blocks\n\n", restaurants.NumPoints(), restaurants.NumBlocks())

	const k = 5

	// Ground truth: evaluate the locality-based join.
	start := time.Now()
	pairs := 0
	stats := knncost.JoinKNN(hotels, restaurants, k, func(knncost.JoinPair) { pairs++ })
	fmt.Printf("locality-based join, k=%d: %d result pairs, %d blocks scanned (%.2fs)\n\n",
		k, pairs, stats.BlocksScanned, time.Since(start).Seconds())
	actual := float64(stats.BlocksScanned)

	// Block-Sample: no preprocessing, pays locality scans per estimate.
	bs := knncost.NewBlockSampleEstimator(hotels, restaurants, 100)
	report("Block-Sample (s=100)", actual, 0, 0, func() (float64, error) {
		return bs.EstimateJoin(k)
	})

	// Catalog-Merge: per-pair merged catalog, estimates are one lookup.
	t0 := time.Now()
	cm, err := knncost.NewCatalogMergeEstimator(hotels, restaurants, 200, 1000)
	if err != nil {
		panic(err)
	}
	report("Catalog-Merge (s=200)", actual, time.Since(t0), cm.StorageBytes(), func() (float64, error) {
		return cm.EstimateJoin(k)
	})

	// Virtual-Grid: one catalog set per inner relation, works for any outer.
	t0 = time.Now()
	vg, err := knncost.NewVirtualGridEstimator(restaurants, 10, 10, 1000)
	if err != nil {
		panic(err)
	}
	report("Virtual-Grid (10x10)", actual, time.Since(t0), vg.StorageBytes(), func() (float64, error) {
		return vg.EstimateJoin(hotels, k)
	})

	fmt.Println("\nCatalog-Merge needs one catalog per relation pair (quadratic in the")
	fmt.Println("schema); Virtual-Grid needs one per relation (linear) at some accuracy")
	fmt.Println("cost — the trade-off summarized in the paper's Figure 24.")
}

// report runs one estimator, timing the estimate itself.
func report(name string, actual float64, preprocess time.Duration, storage int, estimate func() (float64, error)) {
	t0 := time.Now()
	est, err := estimate()
	if err != nil {
		panic(err)
	}
	elapsed := time.Since(t0)
	errRatio := math.Abs(est-actual) / actual
	fmt.Printf("%-22s estimate %9.0f blocks  (error %5.1f%%, estimate time %9v",
		name, est, errRatio*100, elapsed)
	if preprocess > 0 {
		fmt.Printf(", preprocessing %v", preprocess.Round(time.Millisecond))
	}
	if storage > 0 {
		fmt.Printf(", storage %d B", storage)
	}
	fmt.Println(")")
}
