// Command planner demonstrates the cost-based planner built on top of the
// estimators: register a relation, plan queries, read the EXPLAIN output,
// execute the chosen plan, and audit the decision against the blocks
// actually scanned.
package main

import (
	"fmt"
	"math/rand"

	"knncost"
)

func main() {
	fmt.Println("== cost-based planning with knncost ==")

	pts := knncost.GenerateOSMLike(80_000, 51)
	ix := knncost.BuildQuadtreeIndex(pts, knncost.IndexOptions{Capacity: 256})
	stair, err := knncost.NewStaircaseEstimator(ix, knncost.StaircaseOptions{MaxK: 4000})
	if err != nil {
		panic(err)
	}
	restaurants := knncost.NewRelation("restaurants", ix, stair)

	// Attach a synthetic "serves seafood" attribute to 2% of restaurants.
	rng := rand.New(rand.NewSource(1))
	seafood := make(map[knncost.Point]bool, len(pts))
	for _, p := range pts {
		seafood[p] = rng.Float64() < 0.02
	}

	me := pts[4242]
	fmt.Printf("\nquery 1: 5 closest seafood restaurants to %v (selectivity 0.02)\n\n", me)
	d, err := knncost.PlanKNNSelect(restaurants, me, 5, &knncost.Filter{
		Pred:        func(p knncost.Point) bool { return seafood[p] },
		Selectivity: 0.02,
	})
	if err != nil {
		panic(err)
	}
	fmt.Print(d.Explain())
	exec, err := knncost.ExecuteSelect(d)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nexecuted %q: %d neighbors, %d blocks actually scanned\n",
		exec.Plan, len(exec.Neighbors), exec.BlocksScanned)

	fmt.Println("\nquery 2: the same, but only 0.01% of restaurants qualify")
	fmt.Println()
	d, err = knncost.PlanKNNSelect(restaurants, me, 5, &knncost.Filter{
		Pred:        func(p knncost.Point) bool { return rng.Float64() < 0.0001 },
		Selectivity: 0.0001,
	})
	if err != nil {
		panic(err)
	}
	fmt.Print(d.Explain())

	fmt.Println("\nquery 3: a batch of 10,000 k-NN lookups (k=10)")
	fmt.Println()
	batch := knncost.GenerateOSMLike(10_000, 77)
	d, err = knncost.PlanKNNSelectBatch(restaurants, batch, 10, knncost.BatchOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Print(d.Explain())
	bexec, err := knncost.ExecuteBatch(d)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nexecuted %q: %d result sets, %d blocks actually scanned\n",
		bexec.Plan, len(bexec.Results), bexec.BlocksScanned)
}
