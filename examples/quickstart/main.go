// Command quickstart is the smallest end-to-end tour of knncost: generate
// an OpenStreetMap-like dataset, index it, run a k-NN-Select, and compare
// the true block-scan cost against the staircase and density-based
// estimates.
package main

import (
	"fmt"

	"knncost"
)

func main() {
	fmt.Println("== knncost quickstart ==")

	// 1. A synthetic dataset with OSM-like spatial skew.
	points := knncost.GenerateOSMLike(200_000, 42)
	fmt.Printf("dataset: %d points in %v\n", len(points), knncost.WorldBounds())

	// 2. A region-quadtree index, the paper's testbed index.
	ix := knncost.BuildQuadtreeIndex(points, knncost.IndexOptions{Capacity: 256})
	fmt.Printf("index: %d leaf blocks (capacity 256)\n\n", ix.NumBlocks())

	// 3. Evaluate a k-NN-Select with distance browsing and observe its
	// true cost.
	query := knncost.Point{X: points[7].X + 0.01, Y: points[7].Y - 0.01}
	const k = 25
	neighbors, stats := ix.SelectKNNStats(query, k)
	fmt.Printf("k-NN-Select at %v, k=%d:\n", query, k)
	fmt.Printf("  nearest:  %v at distance %.4f\n", neighbors[0].Point, neighbors[0].Dist)
	fmt.Printf("  farthest: %v at distance %.4f\n", neighbors[k-1].Point, neighbors[k-1].Dist)
	fmt.Printf("  true cost: %d blocks scanned\n\n", stats.BlocksScanned)

	// 4. Estimate the same cost without touching the data.
	staircase, err := knncost.NewStaircaseEstimator(ix, knncost.StaircaseOptions{MaxK: 1000})
	if err != nil {
		panic(err)
	}
	density := knncost.NewDensityEstimator(ix)

	se, err := staircase.EstimateSelect(query, k)
	if err != nil {
		panic(err)
	}
	de, err := density.EstimateSelect(query, k)
	if err != nil {
		panic(err)
	}
	fmt.Printf("estimates for the same query:\n")
	fmt.Printf("  staircase (center+corners): %.2f blocks\n", se)
	fmt.Printf("  density-based baseline:     %.2f blocks\n", de)
	fmt.Printf("  staircase catalog storage:  %d bytes across %d blocks\n\n",
		staircase.StorageBytes(), staircase.NumBlocks())

	// 5. The incremental interface: neighbors stream in distance order,
	// so k need not be fixed in advance.
	browser := ix.Browse(query)
	fmt.Println("first three neighbors via incremental browsing:")
	for i := 0; i < 3; i++ {
		n, ok := browser.Next()
		if !ok {
			break
		}
		fmt.Printf("  #%d  %v  (distance %.4f)\n", i+1, n.Point, n.Dist)
	}
}
