// Command restaurants reproduces the motivating example of the paper's
// introduction: "find the k closest restaurants to my location whose price
// is within my budget" — a k-NN-Select combined with a relational select.
//
// Two query-execution plans compete:
//
//	Plan A (relational first): scan the whole relation, keep restaurants
//	        with price <= budget, then pick the k closest. Cost: every
//	        block of the index.
//	Plan B (incremental k-NN): distance-browse neighbors outward from the
//	        query point, test the price predicate on the fly, stop after k
//	        matches. Cost: the blocks scanned until k matches appear —
//	        roughly the k-NN-Select cost at k/selectivity.
//
// The program estimates both costs with the staircase catalogs, picks the
// cheaper plan, executes both, and shows that the pick was right. Sweep the
// budget selectivity to watch the crossover move — exactly why an optimizer
// needs k-NN cost estimates.
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"knncost"
)

// restaurant joins a location with the relational attribute of the query.
type restaurant struct {
	loc   knncost.Point
	price float64
}

func main() {
	fmt.Println("== choosing a QEP for k-NN-Select + relational select ==")

	rng := rand.New(rand.NewSource(7))
	locs := knncost.GenerateOSMLike(100_000, 11)
	restaurants := make([]restaurant, len(locs))
	for i, l := range locs {
		restaurants[i] = restaurant{loc: l, price: 5 + rng.Float64()*95} // $5..$100
	}

	ix := knncost.BuildQuadtreeIndex(locs, knncost.IndexOptions{Capacity: 256})
	staircase, err := knncost.NewStaircaseEstimator(ix, knncost.StaircaseOptions{MaxK: 2000})
	if err != nil {
		panic(err)
	}
	prices := make(map[knncost.Point]float64, len(restaurants))
	for _, r := range restaurants {
		prices[r.loc] = r.price
	}

	me := locs[321] // downtown, somewhere dense
	const k = 10

	fmt.Printf("query: %d closest restaurants to %v with price <= budget\n", k, me)
	fmt.Printf("index: %d blocks\n\n", ix.NumBlocks())
	fmt.Printf("%11s | %12s | %12s | %8s | %10s | %10s | %5s\n",
		"selectivity", "est. plan A", "est. plan B", "choice", "actual A", "actual B", "ok?")

	// Prices are uniform on [5, 100], so budget = 5 + 95*selectivity
	// admits exactly that fraction of restaurants. The tiny selectivities
	// at the end are "find the k closest Michelin-starred restaurants".
	for _, selectivity := range []float64{0.5, 0.1, 0.01, 0.001, 0.0002, 0.00005} {
		budget := 5 + 95*selectivity

		// Plan A cost: a full scan touches every block.
		estA := float64(ix.NumBlocks())

		// Plan B cost: distance browsing must walk about k/selectivity
		// neighbors before k of them satisfy the predicate.
		expectedK := int(float64(k)/selectivity) + 1
		estB, err := staircase.EstimateSelect(me, expectedK)
		if err != nil {
			panic(err)
		}

		choice := "B"
		if estA < estB {
			choice = "A"
		}

		actualA := runPlanA(ix, restaurants, me, k, budget)
		actualB := runPlanB(ix, prices, me, k, budget)
		correct := (choice == "A") == (actualA < actualB)

		fmt.Printf("%11.5f | %12.1f | %12.1f | %8s | %10d | %10d | %5v\n",
			selectivity, estA, estB, "plan "+choice, actualA, actualB, correct)
	}

	fmt.Println("\nhigh selectivity -> incremental k-NN wins; tiny selectivity ->")
	fmt.Println("the relational-first full scan wins. The estimates predict the")
	fmt.Println("crossover without executing either plan.")
}

// runPlanA executes the relational-first plan and returns its block cost (a
// full scan reads every block).
func runPlanA(ix *knncost.Index, rs []restaurant, q knncost.Point, k int, budget float64) int {
	var qualifying []restaurant
	for _, r := range rs {
		if r.price <= budget {
			qualifying = append(qualifying, r)
		}
	}
	sort.Slice(qualifying, func(i, j int) bool {
		return q.DistSq(qualifying[i].loc) < q.DistSq(qualifying[j].loc)
	})
	if len(qualifying) > k {
		qualifying = qualifying[:k]
	}
	_ = qualifying
	return ix.NumBlocks()
}

// runPlanB executes the incremental plan and returns the blocks actually
// scanned by distance browsing.
func runPlanB(ix *knncost.Index, prices map[knncost.Point]float64, q knncost.Point, k int, budget float64) int {
	browser := ix.Browse(q)
	found := 0
	for found < k {
		n, ok := browser.Next()
		if !ok {
			break
		}
		if prices[n.Point] <= budget {
			found++
		}
	}
	return browser.Stats().BlocksScanned
}
