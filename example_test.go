package knncost_test

import (
	"fmt"

	"knncost"
)

// The basic workflow: index a dataset, evaluate a query to observe its
// true cost, and predict the same cost with the staircase estimator.
func Example() {
	pts := knncost.GenerateOSMLike(50_000, 42)
	ix := knncost.BuildQuadtreeIndex(pts, knncost.IndexOptions{Capacity: 256})

	q := pts[100]
	neighbors, stats := ix.SelectKNNStats(q, 10)

	est, err := knncost.NewStaircaseEstimator(ix, knncost.StaircaseOptions{MaxK: 500})
	if err != nil {
		panic(err)
	}
	predicted, err := est.EstimateSelect(q, 10)
	if err != nil {
		panic(err)
	}

	fmt.Printf("neighbors: %d\n", len(neighbors))
	fmt.Printf("actual cost positive: %v\n", stats.BlocksScanned >= 1)
	fmt.Printf("estimate sane: %v\n", predicted >= 1 && predicted <= float64(ix.NumBlocks()))
	// Output:
	// neighbors: 10
	// actual cost positive: true
	// estimate sane: true
}

// Incremental retrieval: neighbors stream in ascending distance order, so
// k need not be known in advance — the property that enables predicate
// push-down over k-NN results.
func ExampleIndex_Browse() {
	pts := knncost.GenerateUniform(1_000, 7, knncost.NewRect(0, 0, 10, 10))
	ix := knncost.BuildQuadtreeIndex(pts, knncost.IndexOptions{Capacity: 64})

	browser := ix.Browse(knncost.Point{X: 5, Y: 5})
	prev := -1.0
	monotone := true
	for i := 0; i < 100; i++ {
		n, ok := browser.Next()
		if !ok {
			break
		}
		if n.Dist < prev {
			monotone = false
		}
		prev = n.Dist
	}
	fmt.Println("monotone:", monotone)
	// Output:
	// monotone: true
}

// Join cost estimation: the ground truth comes from counting locality
// blocks; a Catalog-Merge estimator with a full sample reproduces it
// exactly.
func ExampleNewCatalogMergeEstimator() {
	hotels := knncost.BuildQuadtreeIndex(
		knncost.GenerateOSMLike(5_000, 1), knncost.IndexOptions{Capacity: 128})
	restaurants := knncost.BuildQuadtreeIndex(
		knncost.GenerateOSMLike(9_000, 2), knncost.IndexOptions{Capacity: 128})

	actual := knncost.JoinKNNCost(hotels, restaurants, 5)
	cm, err := knncost.NewCatalogMergeEstimator(hotels, restaurants, 0 /* full sample */, 100)
	if err != nil {
		panic(err)
	}
	estimate, err := cm.EstimateJoin(5)
	if err != nil {
		panic(err)
	}
	fmt.Println("exact:", int(estimate) == actual)
	// Output:
	// exact: true
}

// Cost-based planning: with a highly selective predicate, the planner
// weighs a filter-first full scan against incremental distance browsing.
func ExamplePlanKNNSelect() {
	pts := knncost.GenerateOSMLike(30_000, 3)
	ix := knncost.BuildQuadtreeIndex(pts, knncost.IndexOptions{Capacity: 256})
	rel := knncost.NewRelation("places", ix, nil)

	decision, err := knncost.PlanKNNSelect(rel, pts[9], 5, &knncost.Filter{
		Pred:        func(p knncost.Point) bool { return true },
		Selectivity: 0.5,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("plans considered:", len(decision.Alternatives))
	fmt.Println("cheapest first:", decision.Chosen == decision.Alternatives[0])
	// Output:
	// plans considered: 2
	// cheapest first: true
}
