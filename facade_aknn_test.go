package knncost_test

import (
	"bytes"
	"math"
	"sort"
	"testing"

	"knncost"
	"knncost/internal/oracle"
)

// TestFacadeAknnJoinDifferential: the facade's bounds-only AkNN join and
// estimator are bit-exact against the oracle references over the seeded
// corpus — the facade-layer column of the differential suite.
func TestFacadeAknnJoinDifferential(t *testing.T) {
	ws := oracle.Corpus(1, 600, 24)
	for i, w := range ws {
		w, innerW := w, ws[(i+1)%len(ws)]
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			outer := knncost.BuildQuadtreeIndex(w.Points, knncost.IndexOptions{Capacity: 32})
			inner := knncost.BuildQuadtreeIndex(innerW.Points, knncost.IndexOptions{Capacity: 32})
			for _, k := range []int{0, 1, 17, 64} {
				var pairs []knncost.AknnPair
				stats := knncost.JoinAkNN(outer, inner, k, func(p knncost.AknnPair) { pairs = append(pairs, p) })
				cost := knncost.JoinAkNNCost(outer, inner, k)
				if stats.PointsScanned != cost {
					t.Fatalf("k=%d: PointsScanned %d != JoinAkNNCost %d", k, stats.PointsScanned, cost)
				}
				if k < 1 {
					if len(pairs) != 0 || cost != 0 {
						t.Fatalf("k=%d: %d pairs, cost %d", k, len(pairs), cost)
					}
					continue
				}
				group := k
				if n := len(innerW.Points); n < group {
					group = n
				}
				if len(pairs) != len(w.Points)*group {
					t.Fatalf("k=%d: %d pairs, want %d x %d", k, len(pairs), len(w.Points), group)
				}
				for g := 0; g < len(pairs); g += group {
					chunk := append([]knncost.AknnPair(nil), pairs[g:g+group]...)
					q := chunk[0].Outer
					sort.Slice(chunk, func(a, b int) bool {
						if chunk[a].Distance != chunk[b].Distance {
							return chunk[a].Distance < chunk[b].Distance
						}
						if chunk[a].Inner.X != chunk[b].Inner.X {
							return chunk[a].Inner.X < chunk[b].Inner.X
						}
						return chunk[a].Inner.Y < chunk[b].Inner.Y
					})
					want := oracle.AknnNeighbors(innerW.Points, q, k)
					for j, p := range chunk {
						if p.Inner != want[j] {
							t.Fatalf("k=%d outer %v neighbor %d: %v, brute force %v", k, q, j, p.Inner, want[j])
						}
					}
				}

				// Estimator column: registry resolution and direct
				// construction agree exactly (200 is the engine's default
				// sample size, which the registry path inherits).
				direct, err := knncost.NewAknnBoundsEstimator(outer, inner, 200).EstimateJoin(k)
				if err != nil {
					t.Fatal(err)
				}
				reg, err := outer.JoinEstimatorFor("aknn-bounds", inner)
				if err != nil {
					t.Fatal(err)
				}
				viaRegistry, err := reg.EstimateJoin(k)
				if err != nil {
					t.Fatal(err)
				}
				if direct != viaRegistry {
					t.Fatalf("k=%d: direct %v, registry %v", k, direct, viaRegistry)
				}
			}
		})
	}
}

// TestFacadeAknnEdgeCases drives the AkNN facade surface through the
// degenerate corners: k = 0, k >= N, empty and all-duplicates relations.
func TestFacadeAknnEdgeCases(t *testing.T) {
	bounds := knncost.NewRect(0, 0, 10, 10)
	tiny := knncost.BuildQuadtreeIndex([]knncost.Point{
		{X: 1, Y: 1}, {X: 2, Y: 1}, {X: 3, Y: 4},
		{X: 8, Y: 2}, {X: 9, Y: 9}, {X: 5, Y: 5},
	}, knncost.IndexOptions{Capacity: 4, Bounds: bounds})
	dupPts := make([]knncost.Point, 40)
	for i := range dupPts {
		dupPts[i] = knncost.Point{X: 4, Y: 4}
	}
	dups := knncost.BuildQuadtreeIndex(dupPts, knncost.IndexOptions{Capacity: 4, Bounds: bounds})
	empty := knncost.BuildQuadtreeIndex(nil, knncost.IndexOptions{Capacity: 4, Bounds: bounds})

	for _, k := range []int{0, -1} {
		pairs := 0
		if stats := knncost.JoinAkNN(tiny, dups, k, func(knncost.AknnPair) { pairs++ }); pairs != 0 || stats.PointsScanned != 0 {
			t.Fatalf("JoinAkNN(k=%d) emitted %d pairs, %+v", k, pairs, stats)
		}
		if cost := knncost.JoinAkNNCost(tiny, dups, k); cost != 0 {
			t.Fatalf("JoinAkNNCost(k=%d) = %d", k, cost)
		}
	}

	// All duplicates: neighbors at distance zero, exact counts.
	var pairs []knncost.AknnPair
	knncost.JoinAkNN(tiny, dups, 3, func(p knncost.AknnPair) { pairs = append(pairs, p) })
	if len(pairs) != tiny.NumPoints()*3 {
		t.Fatalf("emitted %d pairs, want %d", len(pairs), tiny.NumPoints()*3)
	}
	for _, p := range pairs {
		if p.Inner != (knncost.Point{X: 4, Y: 4}) {
			t.Fatalf("neighbor %v, want the duplicate point", p.Inner)
		}
	}

	// k past N scans everything: cost is non-empty outer blocks x inner N.
	if cost := knncost.JoinAkNNCost(tiny, dups, 1000); cost <= 0 {
		t.Fatalf("JoinAkNNCost(k=1000) = %d", cost)
	}

	// Empty relations: joining against an empty inner emits nothing at
	// zero cost; an empty outer estimates to an error like Block-Sample.
	n := 0
	knncost.JoinAkNN(tiny, empty, 5, func(knncost.AknnPair) { n++ })
	if n != 0 || knncost.JoinAkNNCost(tiny, empty, 5) != 0 {
		t.Fatalf("empty inner: %d pairs, cost %d", n, knncost.JoinAkNNCost(tiny, empty, 5))
	}
	if _, err := knncost.NewAknnBoundsEstimator(empty, tiny, 0).EstimateJoin(5); err == nil {
		t.Fatal("empty outer accepted")
	}
	got, err := knncost.NewAknnBoundsEstimator(tiny, empty, 0).EstimateJoin(5)
	if err != nil || got != 0 {
		t.Fatalf("empty inner estimate = %v, %v; want 0", got, err)
	}

	// Estimates are finite and non-negative across the k sweep.
	est := knncost.NewAknnBoundsEstimator(tiny, dups, 4)
	if _, err := est.EstimateJoin(0); err == nil {
		t.Fatal("k=0 accepted")
	}
	for _, k := range []int{1, 8, 9, 1000} {
		got, err := est.EstimateJoin(k)
		if err != nil || math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
			t.Fatalf("EstimateJoin(k=%d) = %v, %v", k, got, err)
		}
	}
}

// TestFacadeAknnSummaryRoundTrip: the summary artifact reloads standalone
// and estimates bit-identically — the facade wrapper over persistence.
func TestFacadeAknnSummaryRoundTrip(t *testing.T) {
	inner := knncost.BuildQuadtreeIndex(knncost.GenerateOSMLike(3000, 5),
		knncost.IndexOptions{Capacity: 64, Bounds: knncost.WorldBounds()})
	sum := knncost.NewAknnSummary(inner)
	var buf bytes.Buffer
	if _, err := sum.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := knncost.LoadAknnSummary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Total() != sum.Total() || loaded.NumPartitions() != sum.NumPartitions() {
		t.Fatalf("reloaded %d/%d, want %d/%d",
			loaded.NumPartitions(), loaded.Total(), sum.NumPartitions(), sum.Total())
	}
	// The round trip is lossless: re-serializing reproduces the bytes.
	var again bytes.Buffer
	if _, err := loaded.WriteTo(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("re-serialized summary differs from the original bytes")
	}
}
