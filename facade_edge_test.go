package knncost_test

import (
	"math"
	"testing"

	"knncost"
)

// TestFacadeEdgeCases drives the public API through the degenerate corners:
// k = 0, k >= N, an empty relation, an all-duplicates relation, and queries
// outside the index MBR. Estimators must either return a finite
// non-negative value or an explicit error — never panic, NaN or Inf.
func TestFacadeEdgeCases(t *testing.T) {
	bounds := knncost.NewRect(0, 0, 10, 10)
	tiny := knncost.BuildQuadtreeIndex([]knncost.Point{
		{X: 1, Y: 1}, {X: 2, Y: 1}, {X: 3, Y: 4},
		{X: 8, Y: 2}, {X: 9, Y: 9}, {X: 5, Y: 5},
	}, knncost.IndexOptions{Capacity: 4, Bounds: bounds})
	dupPts := make([]knncost.Point, 40)
	for i := range dupPts {
		dupPts[i] = knncost.Point{X: 4, Y: 4}
	}
	dups := knncost.BuildQuadtreeIndex(dupPts, knncost.IndexOptions{Capacity: 4, Bounds: bounds})
	empty := knncost.BuildQuadtreeIndex(nil, knncost.IndexOptions{Capacity: 4, Bounds: bounds})

	t.Run("select", func(t *testing.T) {
		for _, ix := range []*knncost.Index{tiny, dups, empty} {
			// k < 1 — zero and negative alike — means no results and zero
			// cost, never a panic.
			for _, k := range []int{0, -1, -9} {
				if got := ix.SelectKNN(knncost.Point{X: 1, Y: 1}, k); len(got) != 0 {
					t.Fatalf("SelectKNN(k=%d) returned %d neighbors", k, len(got))
				}
				got, stats := ix.SelectKNNStats(knncost.Point{X: 1, Y: 1}, k)
				if len(got) != 0 || stats.BlocksScanned != 0 {
					t.Fatalf("SelectKNNStats(k=%d) = %d neighbors, %d blocks; want none", k, len(got), stats.BlocksScanned)
				}
				if got := ix.SelectKNNCost(knncost.Point{X: 1, Y: 1}, k); got != 0 {
					t.Fatalf("SelectKNNCost(k=%d) = %d, want 0", k, got)
				}
			}
			// k far beyond N returns every point and scans every block.
			all := ix.SelectKNN(knncost.Point{X: 3, Y: 3}, 1000)
			if len(all) != ix.NumPoints() {
				t.Fatalf("SelectKNN(k=1000) returned %d of %d points", len(all), ix.NumPoints())
			}
			if cost := ix.SelectKNNCost(knncost.Point{X: 3, Y: 3}, 1000); cost != ix.NumBlocks() {
				t.Fatalf("SelectKNNCost(k=1000) = %d, want NumBlocks %d", cost, ix.NumBlocks())
			}
		}
		// All duplicates: every neighbor is at distance zero.
		for _, n := range dups.SelectKNN(knncost.Point{X: 4, Y: 4}, 7) {
			if n.Dist != 0 {
				t.Fatalf("duplicate neighbor at distance %v", n.Dist)
			}
		}
	})

	t.Run("estimators", func(t *testing.T) {
		stair, err := knncost.NewStaircaseEstimator(tiny, knncost.StaircaseOptions{MaxK: 8})
		if err != nil {
			t.Fatal(err)
		}
		stairDup, err := knncost.NewStaircaseEstimator(dups, knncost.StaircaseOptions{MaxK: 8})
		if err != nil {
			t.Fatal(err)
		}
		ests := map[string]knncost.SelectEstimator{
			"staircase":      stair,
			"staircase_dups": stairDup,
			"density":        knncost.NewDensityEstimator(tiny),
			"density_dups":   knncost.NewDensityEstimator(dups),
		}
		queries := []knncost.Point{{X: 1, Y: 1}, {X: 4, Y: 4}, {X: 9999, Y: -9999}}
		for name, est := range ests {
			if _, err := est.EstimateSelect(queries[0], 0); err == nil {
				t.Fatalf("%s accepted k=0", name)
			}
			for _, q := range queries {
				for _, k := range []int{1, 8, 9, 1000} { // straddles MaxK and N
					got, err := est.EstimateSelect(q, k)
					if err != nil {
						t.Fatalf("%s(%v, k=%d): %v", name, q, k, err)
					}
					if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
						t.Fatalf("%s(%v, k=%d) = %v, want finite non-negative", name, q, k, got)
					}
				}
			}
		}
		// The density estimator stays well-defined over an index with no
		// points: fewer than k points means "scan everything".
		got, err := knncost.NewDensityEstimator(empty).EstimateSelect(knncost.Point{X: 5, Y: 5}, 3)
		if err != nil || got != float64(empty.NumBlocks()) {
			t.Fatalf("density over empty index = %v, %v; want %d", got, err, empty.NumBlocks())
		}
	})

	t.Run("join", func(t *testing.T) {
		if cost := knncost.JoinKNNCost(tiny, dups, 0); cost != 0 {
			t.Fatalf("JoinKNNCost(k=0) = %d, want 0", cost)
		}
		pairs := 0
		stats := knncost.JoinKNN(tiny, dups, 0, func(knncost.JoinPair) { pairs++ })
		if pairs != 0 || stats.BlocksScanned != 0 {
			t.Fatalf("JoinKNN(k=0) emitted %d pairs, scanned %d blocks", pairs, stats.BlocksScanned)
		}
		// k beyond the inner population: every locality is the whole inner
		// index, and the estimators still answer finitely.
		if cost := knncost.JoinKNNCost(tiny, dups, 1000); cost <= 0 {
			t.Fatalf("JoinKNNCost(k=1000) = %d, want positive", cost)
		}
		cm, err := knncost.NewCatalogMergeEstimator(tiny, dups, 4, 8)
		if err != nil {
			t.Fatal(err)
		}
		vg, err := knncost.NewVirtualGridEstimator(dups, 4, 4, 8)
		if err != nil {
			t.Fatal(err)
		}
		joins := map[string]knncost.JoinEstimator{
			"blocksample":  knncost.NewBlockSampleEstimator(tiny, dups, 4),
			"catalogmerge": cm,
			"virtualgrid":  vg.Bind(tiny),
		}
		for name, est := range joins {
			if _, err := est.EstimateJoin(0); err == nil {
				t.Fatalf("%s accepted k=0", name)
			}
			for _, k := range []int{1, 8, 9, 1000} {
				got, err := est.EstimateJoin(k)
				if err != nil {
					t.Fatalf("%s(k=%d): %v", name, k, err)
				}
				if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
					t.Fatalf("%s(k=%d) = %v, want finite non-negative", name, k, got)
				}
			}
		}
	})

	t.Run("batch", func(t *testing.T) {
		stair, err := knncost.NewStaircaseEstimator(tiny, knncost.StaircaseOptions{MaxK: 8})
		if err != nil {
			t.Fatal(err)
		}
		queries := []knncost.SelectQuery{
			{Point: knncost.Point{X: 1, Y: 1}, K: 0}, // error slot
			{Point: knncost.Point{X: 1, Y: 1}, K: 3},
			{Point: knncost.Point{X: 9999, Y: 0}, K: 5}, // outside MBR
			{Point: knncost.Point{X: 2, Y: 2}, K: 1000}, // beyond N
		}
		results := knncost.EstimateSelectBatch(stair, queries, 2)
		if results[0].Err == nil {
			t.Fatal("batch k=0 slot did not fail")
		}
		for i, r := range results[1:] {
			if r.Err != nil {
				t.Fatalf("batch slot %d failed: %v", i+1, r.Err)
			}
			seq, err := stair.EstimateSelect(queries[i+1].Point, queries[i+1].K)
			if err != nil || seq != r.Blocks {
				t.Fatalf("batch slot %d = %v, sequential %v (%v)", i+1, r.Blocks, seq, err)
			}
		}
	})
}
