package faultinject

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"knncost/internal/geom"
)

func TestScriptHelpers(t *testing.T) {
	if !None()(0).IsZero() || !None()(99).IsZero() {
		t.Fatal("None injects something")
	}
	s := Once(2, Fault{Err: errors.New("x")})
	for i := 0; i < 5; i++ {
		if got := !s(i).IsZero(); got != (i == 2) {
			t.Fatalf("Once(2) fired at i=%d: %v", i, got)
		}
	}
	if Always(Fault{Panic: "p"})(7).Panic != "p" {
		t.Fatal("Always lost its fault")
	}
}

// Seeded scripts are reproducible: same seed, same profile → same decision
// per ordinal, independent of call order and concurrency.
func TestSeededDeterministic(t *testing.T) {
	p := Profile{PLatency: 0.2, Latency: time.Millisecond, PPanic: 0.1, PErr: 0.3, Err: errors.New("e")}
	a, b := Seeded(42, p), Seeded(42, p)
	// Query b out of order and concurrently.
	var wg sync.WaitGroup
	got := make([]Fault, 100)
	for i := 99; i >= 0; i-- {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = b(i)
		}(i)
	}
	wg.Wait()
	faults := 0
	for i := 0; i < 100; i++ {
		want := a(i)
		if want != got[i] {
			t.Fatalf("ordinal %d: %+v != %+v", i, want, got[i])
		}
		if !want.IsZero() {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("profile with 60% fault probability produced no faults in 100 ops")
	}
	if different := Seeded(43, p)(0) == a(0) && Seeded(43, p)(1) == a(1) && Seeded(43, p)(2) == a(2); different {
		// Not impossible, merely so unlikely that it indicates a seed bug.
		t.Log("warning: seeds 42 and 43 agree on first three ordinals")
	}
}

func TestMiddlewareInjectsError(t *testing.T) {
	h := Middleware(Once(1, Fault{Err: errors.New("scripted failure")}))(
		http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintln(w, "ok")
		}))
	for i, want := range []int{http.StatusOK, http.StatusInternalServerError, http.StatusOK} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
		if rec.Code != want {
			t.Fatalf("request %d: status %d, want %d", i, rec.Code, want)
		}
	}
}

func TestMiddlewareLatencyRespectsContext(t *testing.T) {
	h := Middleware(Always(Fault{Latency: time.Hour}))(
		http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
			panic("handler must not run")
		}))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	rec := httptest.NewRecorder()
	start := time.Now()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil).WithContext(ctx))
	if took := time.Since(start); took > time.Second {
		t.Fatalf("injected hour of latency ignored the context (took %v)", took)
	}
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
}

type constEstimator float64

func (c constEstimator) EstimateSelect(geom.Point, int) (float64, error) { return float64(c), nil }

func TestEstimatorInjectsPerOrdinal(t *testing.T) {
	est := Estimator(constEstimator(7), Once(1, Fault{Err: errors.New("flaky")}))
	for i, wantErr := range []bool{false, true, false} {
		blocks, err := est.EstimateSelect(geom.Point{}, 5)
		if (err != nil) != wantErr {
			t.Fatalf("call %d: err = %v, wantErr=%v", i, err, wantErr)
		}
		if err == nil && blocks != 7 {
			t.Fatalf("call %d: blocks = %v", i, blocks)
		}
	}
}

func TestEstimatorPanics(t *testing.T) {
	est := Estimator(constEstimator(1), Always(Fault{Panic: "estimator boom"}))
	defer func() {
		if recover() != "estimator boom" {
			t.Fatal("scripted panic did not propagate")
		}
	}()
	est.EstimateSelect(geom.Point{}, 1)
}

func TestBusy(t *testing.T) {
	// Uncancelled: runs to completion and returns nil.
	if err := Busy(context.Background(), time.Millisecond, 5*time.Millisecond); err != nil {
		t.Fatalf("Busy on live context: %v", err)
	}
	// Cancelled: returns promptly with the context error.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := Busy(ctx, time.Millisecond, time.Hour)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("Busy overran its context by %v", took)
	}
}
