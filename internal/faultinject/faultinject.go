// Package faultinject is a deterministic fault-injection harness for the
// estimation service. Production robustness claims — "a panicking handler
// does not kill the process", "a slow ground-truth computation is cut off at
// its deadline", "overload sheds instead of queueing without bound" — are
// only claims until a test can make the fault happen on demand. This
// package makes faults happen on demand, reproducibly:
//
//   - a Script decides the Fault for the i-th operation (explicit scripts
//     for exact scenarios, Seeded for randomized-but-reproducible soak
//     mixes);
//   - Middleware applies the script to an http.Handler, counting requests;
//   - Estimator applies it to a core.SelectEstimator, counting estimates.
//
// Injection is strictly additive: a zero Fault leaves the wrapped operation
// untouched, so a scripted component with an all-zero script is
// behaviourally identical to the bare component.
package faultinject

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"knncost/internal/core"
	"knncost/internal/geom"
)

// Fault is what happens to one operation before its real work runs. Fields
// compose: latency is injected first, then a panic, then an error. The zero
// Fault injects nothing.
type Fault struct {
	// Latency is slept before the operation, observing the operation's
	// context so an injected delay still respects deadlines.
	Latency time.Duration
	// Panic, when non-nil, is raised with panic(Panic).
	Panic any
	// Err, when non-nil, fails the operation without running it.
	// Middleware maps it to a JSON 500; Estimator returns it.
	Err error
}

// IsZero reports whether f injects nothing.
func (f Fault) IsZero() bool { return f.Latency == 0 && f.Panic == nil && f.Err == nil }

// Script decides the fault injected into the i-th operation (0-based, in
// admission order). Scripts must be safe for concurrent use when the
// wrapped component is used concurrently; pure functions over i are.
type Script func(i int) Fault

// None is the empty script: no faults, ever.
func None() Script { return func(int) Fault { return Fault{} } }

// Once injects f into exactly the n-th operation.
func Once(n int, f Fault) Script {
	return func(i int) Fault {
		if i == n {
			return f
		}
		return Fault{}
	}
}

// Always injects f into every operation.
func Always(f Fault) Script { return func(int) Fault { return f } }

// Profile weights the fault mix of a Seeded script. Probabilities are per
// operation and checked in order (latency, panic, error); they need not sum
// to one.
type Profile struct {
	PLatency float64
	Latency  time.Duration
	PPanic   float64
	PErr     float64
	Err      error
}

// Seeded builds a reproducible randomized script: the same seed and profile
// produce the same fault for the same operation ordinal, regardless of
// timing, so a concurrent soak run that fails can be replayed. The decision
// for ordinal i is precomputed lazily and cached under a lock (the rng
// itself is not safe for concurrent use).
func Seeded(seed int64, p Profile) Script {
	var (
		mu      sync.Mutex
		rng     = rand.New(rand.NewSource(seed))
		decided []Fault
	)
	decide := func() Fault {
		roll := rng.Float64()
		switch {
		case roll < p.PLatency:
			return Fault{Latency: p.Latency}
		case roll < p.PLatency+p.PPanic:
			return Fault{Panic: "faultinject: scripted panic"}
		case roll < p.PLatency+p.PPanic+p.PErr:
			return Fault{Err: p.Err}
		default:
			return Fault{}
		}
	}
	return func(i int) Fault {
		mu.Lock()
		defer mu.Unlock()
		for len(decided) <= i {
			decided = append(decided, decide())
		}
		return decided[i]
	}
}

// sleep waits for d or until ctx is done, whichever comes first, so
// injected latency does not outlive the request it was injected into.
func sleep(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// apply runs f against ctx: sleeps, panics, or returns f.Err. A latency
// fault cut short by the context returns the context's error.
func apply(ctx context.Context, f Fault) error {
	if f.Latency > 0 {
		if err := sleep(ctx, f.Latency); err != nil {
			return err
		}
	}
	if f.Panic != nil {
		panic(f.Panic)
	}
	return f.Err
}

// Middleware injects the scripted fault ahead of every request: latency is
// slept under the request context, a scripted panic unwinds into whatever
// recovery middleware sits above (that is the point), and a scripted error
// is reported as a JSON 500 without invoking the wrapped handler.
func Middleware(s Script) func(http.Handler) http.Handler {
	var n atomic.Int64
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			f := s(int(n.Add(1)) - 1)
			if err := apply(r.Context(), f); err != nil {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusInternalServerError)
				fmt.Fprintf(w, "{\"error\":%s}\n", strconv.Quote("injected: "+err.Error()))
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

// Estimator wraps a select estimator so that the i-th EstimateSelect call
// first suffers the scripted fault. A latency fault here is not cancellable
// (EstimateSelect carries no context) — which is exactly the property the
// batch deadline tests rely on to prove that cancellation is detected
// between queries.
func Estimator(inner core.SelectEstimator, s Script) core.SelectEstimator {
	return &faultEstimator{inner: inner, script: s}
}

type faultEstimator struct {
	inner  core.SelectEstimator
	script Script
	n      atomic.Int64
}

func (e *faultEstimator) EstimateSelect(q geom.Point, k int) (float64, error) {
	f := e.script(int(e.n.Add(1)) - 1)
	if err := apply(context.Background(), f); err != nil {
		return 0, fmt.Errorf("injected: %w", err)
	}
	return e.inner.EstimateSelect(q, k)
}

// Busy occupies the caller for total, checking ctx every step — the shape
// of a long block-scan loop with cancellation checks at block granularity.
// It returns ctx.Err() as soon as the context dies, nil after total. Tests
// substitute it for the ground-truth cost functions to make "slow request"
// a deterministic condition rather than a big-dataset accident.
func Busy(ctx context.Context, step, total time.Duration) error {
	if step <= 0 {
		step = time.Millisecond
	}
	deadline := time.Now().Add(total)
	for time.Now().Before(deadline) {
		if err := sleep(ctx, step); err != nil {
			return err
		}
	}
	return ctx.Err()
}
