package knn

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"knncost/internal/geom"
	"knncost/internal/quadtree"
	"knncost/internal/rtree"
)

func randPoints(rng *rand.Rand, n int, bounds geom.Rect) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: bounds.Min.X + rng.Float64()*bounds.Width(),
			Y: bounds.Min.Y + rng.Float64()*bounds.Height(),
		}
	}
	return pts
}

// bruteDists returns the sorted distances from q to all points.
func bruteDists(pts []geom.Point, q geom.Point) []float64 {
	ds := make([]float64, len(pts))
	for i, p := range pts {
		ds[i] = q.Dist(p)
	}
	sort.Float64s(ds)
	return ds
}

func TestBrowserMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bounds := geom.NewRect(0, 0, 100, 100)
	pts := randPoints(rng, 2000, bounds)
	ix := quadtree.Build(pts, quadtree.Options{Capacity: 64, Bounds: bounds}).Index()
	want := bruteDists(pts, geom.Point{X: 37, Y: 61})

	b := NewBrowser(ix, geom.Point{X: 37, Y: 61})
	for i := 0; i < len(pts); i++ {
		n, ok := b.Next()
		if !ok {
			t.Fatalf("browser exhausted after %d of %d points", i, len(pts))
		}
		if diff := n.Dist - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("neighbor %d dist = %g, brute force %g", i, n.Dist, want[i])
		}
	}
	if _, ok := b.Next(); ok {
		t.Error("browser should be exhausted after all points")
	}
}

func TestBrowserMonotoneDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bounds := geom.NewRect(0, 0, 10, 10)
	pts := randPoints(rng, 500, bounds)
	ix := quadtree.Build(pts, quadtree.Options{Capacity: 16, Bounds: bounds}).Index()
	b := NewBrowser(ix, geom.Point{X: 100, Y: 100}) // query outside bounds is fine
	last := -1.0
	count := 0
	for {
		n, ok := b.Next()
		if !ok {
			break
		}
		if n.Dist < last {
			t.Fatalf("distances not monotone: %g after %g", n.Dist, last)
		}
		last = n.Dist
		count++
	}
	if count != 500 {
		t.Fatalf("browser yielded %d points, want 500", count)
	}
}

func TestSelectBasics(t *testing.T) {
	bounds := geom.NewRect(0, 0, 4, 4)
	pts := []geom.Point{{X: 1, Y: 1}, {X: 3, Y: 3}, {X: 1, Y: 3}, {X: 3, Y: 1}}
	ix := quadtree.Build(pts, quadtree.Options{Capacity: 1, Bounds: bounds}).Index()
	res, stats := Select(ix, geom.Point{X: 0.9, Y: 0.9}, 2)
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
	if res[0].Point != (geom.Point{X: 1, Y: 1}) {
		t.Errorf("nearest = %v, want (1,1)", res[0].Point)
	}
	if stats.BlocksScanned < 1 {
		t.Error("at least one block must be scanned")
	}
	// k larger than dataset: return everything.
	res, _ = Select(ix, geom.Point{X: 2, Y: 2}, 10)
	if len(res) != 4 {
		t.Fatalf("oversized k returned %d results, want 4", len(res))
	}
}

func TestSelectCostAgreesWithSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bounds := geom.NewRect(0, 0, 50, 50)
	pts := randPoints(rng, 3000, bounds)
	ix := quadtree.Build(pts, quadtree.Options{Capacity: 32, Bounds: bounds}).Index()
	for _, k := range []int{1, 5, 50, 500} {
		q := geom.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
		_, s := Select(ix, q, k)
		if got := SelectCost(ix, q, k); got != s.BlocksScanned {
			t.Errorf("k=%d: SelectCost=%d, Select stats=%d", k, got, s.BlocksScanned)
		}
	}
}

func TestSelectDFMatchesBrowser(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bounds := geom.NewRect(0, 0, 100, 100)
	pts := randPoints(rng, 1500, bounds)
	ix := quadtree.Build(pts, quadtree.Options{Capacity: 32, Bounds: bounds}).Index()
	for _, k := range []int{1, 3, 17, 200} {
		q := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		want, bStats := Select(ix, q, k)
		got, dfStats := SelectDF(ix, q, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: DF returned %d, browser %d", k, len(got), len(want))
		}
		for i := range got {
			if diff := got[i].Dist - want[i].Dist; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("k=%d neighbor %d: DF dist %g, browser %g", k, i, got[i].Dist, want[i].Dist)
			}
		}
		// Distance browsing is optimal: DF can never scan fewer blocks.
		if dfStats.BlocksScanned < bStats.BlocksScanned {
			t.Errorf("k=%d: DF scanned %d < browser %d, contradicting optimality",
				k, dfStats.BlocksScanned, bStats.BlocksScanned)
		}
	}
}

func TestSelectDFZeroK(t *testing.T) {
	ix := quadtree.Build([]geom.Point{{X: 1, Y: 1}},
		quadtree.Options{Bounds: geom.NewRect(0, 0, 2, 2)}).Index()
	if res, _ := SelectDF(ix, geom.Point{}, 0); len(res) != 0 {
		t.Error("k=0 should return nothing")
	}
}

func TestBrowserOnRTree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bounds := geom.NewRect(0, 0, 100, 100)
	pts := randPoints(rng, 1000, bounds)
	tr, err := rtree.Build(pts, rtree.Options{LeafCapacity: 40, Fanout: 8})
	if err != nil {
		t.Fatal(err)
	}
	ix := tr.Index()
	q := geom.Point{X: 50, Y: 50}
	want := bruteDists(pts, q)
	b := NewBrowser(ix, q)
	for i := 0; i < 100; i++ {
		n, ok := b.Next()
		if !ok {
			t.Fatal("browser exhausted early")
		}
		if diff := n.Dist - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("R-tree neighbor %d dist = %g, want %g", i, n.Dist, want[i])
		}
	}
}

// Property: on random data and random queries, Select(k) equals brute force
// for both index families, and costs are monotone in k.
func TestSelectProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		bounds := geom.NewRect(0, 0, 64, 64)
		n := 200 + local.Intn(800)
		pts := randPoints(local, n, bounds)
		qt := quadtree.Build(pts, quadtree.Options{Capacity: 16, Bounds: bounds}).Index()
		rt, err := rtree.Build(pts, rtree.Options{LeafCapacity: 16, Fanout: 4})
		if err != nil {
			return false
		}
		q := geom.Point{X: local.Float64() * 80, Y: local.Float64() * 80}
		want := bruteDists(pts, q)
		lastCost := 0
		for _, k := range []int{1, 7, 40} {
			for _, res := range [][]Neighbor{
				first(Select(qt, q, k)),
				first(Select(rt.Index(), q, k)),
			} {
				if len(res) != k {
					return false
				}
				for i := range res {
					if diff := res[i].Dist - want[i]; diff > 1e-9 || diff < -1e-9 {
						return false
					}
				}
			}
			cost := SelectCost(qt, q, k)
			if cost < lastCost {
				return false // cost must not decrease with k
			}
			lastCost = cost
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func first(n []Neighbor, _ Stats) []Neighbor { return n }
