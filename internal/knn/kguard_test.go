package knn

import (
	"context"
	"math/rand"
	"testing"

	"knncost/internal/geom"
	"knncost/internal/quadtree"
)

// TestSelectGuardsKBelowOne pins the uniform k < 1 contract of the select
// path: zero cost and no results, for every entry point, including the
// negative values that used to panic in Select's slice allocation.
func TestSelectGuardsKBelowOne(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bounds := geom.NewRect(0, 0, 10, 10)
	pts := make([]geom.Point, 500)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
	}
	ix := quadtree.Build(pts, quadtree.Options{Capacity: 16, Bounds: bounds}).Index()
	q := geom.Point{X: 5, Y: 5}

	for _, k := range []int{0, -1, -7, -1 << 30} {
		got, stats := Select(ix, q, k)
		if len(got) != 0 || stats != (Stats{}) {
			t.Errorf("Select(k=%d) = %d neighbors, stats %+v; want none", k, len(got), stats)
		}
		if cost := SelectCost(ix, q, k); cost != 0 {
			t.Errorf("SelectCost(k=%d) = %d, want 0", k, cost)
		}
		cost, err := SelectCostContext(context.Background(), ix, q, k)
		if err != nil || cost != 0 {
			t.Errorf("SelectCostContext(k=%d) = %d, %v; want 0, nil", k, cost, err)
		}
		dfGot, dfStats := SelectDF(ix, q, k)
		if len(dfGot) != 0 || dfStats != (Stats{}) {
			t.Errorf("SelectDF(k=%d) = %d neighbors, stats %+v; want none", k, len(dfGot), dfStats)
		}
	}

	// The guard must not change k >= 1: one neighbor still costs blocks.
	got, stats := Select(ix, q, 1)
	if len(got) != 1 || stats.BlocksScanned < 1 {
		t.Errorf("Select(k=1) = %d neighbors, %d blocks; want 1 neighbor, >=1 block", len(got), stats.BlocksScanned)
	}
}
