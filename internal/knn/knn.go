// Package knn implements the k-NN-Select evaluation algorithms whose block
// scan counts define the ground-truth cost the paper estimates:
//
//   - Browser: the distance browsing algorithm of Hjaltason & Samet (paper
//     ref [14]), which retrieves neighbors incrementally and is optimal in
//     the number of blocks scanned. The paper models the cost of exactly
//     this algorithm (§2).
//   - SelectDF: the depth-first branch-and-bound algorithm of Roussopoulos
//     et al. (paper ref [19]), the suboptimal predecessor §2 contrasts
//     distance browsing with.
//
// Both operate on any index.Tree; the cost of a query is Stats.BlocksScanned.
package knn

import (
	"context"

	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/pqueue"
)

// Neighbor is one result of a k-NN-Select: a data point and its Euclidean
// distance from the query point.
type Neighbor struct {
	Point geom.Point
	Dist  float64
}

// Stats records the work an algorithm performed. BlocksScanned is the
// paper's cost metric.
type Stats struct {
	// BlocksScanned is the number of leaf blocks whose points were read.
	BlocksScanned int
	// PointsEnqueued is the number of data points inserted into the
	// tuples-queue (distance browsing) or evaluated (depth-first).
	PointsEnqueued int
}

// Browser retrieves the neighbors of a query point one at a time in
// ascending distance order — the getNextNearest() interface of distance
// browsing. It maintains the two priority queues of the algorithm: a
// blocks-queue ordered by MINDIST from the query point (the incremental
// MINDIST scan) and a tuples-queue of already-read points ordered by their
// distance.
//
// A block is scanned only when the nearest unreturned point might live in
// it, i.e. when the head of the blocks-queue has MINDIST smaller than the
// head of the tuples-queue. This lazy policy is what makes the algorithm
// optimal in blocks scanned and usable when k is not known in advance (the
// "k-closest restaurants that provide seafood" scenario of §2).
// A Browser is re-seedable: Reset starts a fresh traversal while keeping the
// capacity of both queues, so one Browser can serve many anchors with no
// steady-state allocation (the catalog builders of internal/core pool
// Browsers this way). A Browser is not safe for concurrent use; a pooled
// Browser must not escape the goroutine that took it from the pool.
type Browser struct {
	q      geom.Point
	scan   index.Scan
	tuples pqueue.Queue[geom.Point]
	stats  Stats
}

// NewBrowser starts a distance-browsing traversal of ix from query point q.
func NewBrowser(ix *index.Tree, q geom.Point) *Browser {
	b := &Browser{}
	b.Reset(ix, q)
	return b
}

// Reset re-seeds b as a fresh traversal of ix from q, retaining the queue
// capacity of previous traversals. The zero value of Browser is valid input.
func (b *Browser) Reset(ix *index.Tree, q geom.Point) {
	b.q = q
	b.scan.Reset(ix, q)
	b.tuples.Reset()
	b.stats = Stats{}
}

// Next returns the next nearest neighbor of the query point. The boolean is
// false when the index is exhausted.
func (b *Browser) Next() (Neighbor, bool) {
	n, ok, _ := b.next(nil)
	return n, ok
}

// NextContext is Next with cancellation: the context is checked once per
// loop iteration — i.e. at block-scan granularity, since each iteration
// scans at most one block — so a traversal over a large index returns
// promptly after a deadline or cancel instead of running to completion.
func (b *Browser) NextContext(ctx context.Context) (Neighbor, bool, error) {
	return b.next(ctx)
}

// next implements Next; a nil ctx skips the cancellation checks entirely so
// the ground-truth hot path stays branch-predictable and allocation-free.
func (b *Browser) next(ctx context.Context) (Neighbor, bool, error) {
	for {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return Neighbor{}, false, err
			}
		}
		tupleDist, haveTuple := b.tuples.PeekPriority()
		blockDist, haveBlock := b.scan.PeekDist()
		switch {
		case !haveTuple && !haveBlock:
			return Neighbor{}, false, nil
		case haveTuple && (!haveBlock || tupleDist <= blockDist):
			p, _ := b.tuples.Pop()
			return Neighbor{Point: p, Dist: tupleDist}, true, nil
		default:
			blk, _, ok := b.scan.Next()
			if !ok {
				// PeekDist promised a block; Next must deliver.
				panic("knn: blocks-queue peek/pop mismatch")
			}
			b.stats.BlocksScanned++
			b.stats.PointsEnqueued += len(blk.Points)
			b.tuples.Grow(len(blk.Points))
			for _, p := range blk.Points {
				b.tuples.Push(p, b.q.Dist(p))
			}
		}
	}
}

// Stats returns the work performed so far.
func (b *Browser) Stats() Stats { return b.stats }

// Select answers a k-NN-Select σ_{k,q} with distance browsing and reports
// the blocks-scanned cost. It returns fewer than k neighbors when the index
// holds fewer than k points.
func Select(ix *index.Tree, q geom.Point, k int) ([]Neighbor, Stats) {
	if k < 1 {
		// Zero results cost zero blocks; a negative k must not reach the
		// slice allocation below.
		return nil, Stats{}
	}
	b := NewBrowser(ix, q)
	out := make([]Neighbor, 0, k)
	for len(out) < k {
		n, ok := b.Next()
		if !ok {
			break
		}
		out = append(out, n)
	}
	return out, b.stats
}

// SelectCost returns only the blocks-scanned cost of a k-NN-Select under
// distance browsing — the ground truth the estimators of internal/core are
// judged against.
func SelectCost(ix *index.Tree, q geom.Point, k int) int {
	if k < 1 {
		return 0
	}
	b := NewBrowser(ix, q)
	for i := 0; i < k; i++ {
		if _, ok := b.Next(); !ok {
			break
		}
	}
	return b.stats.BlocksScanned
}

// SelectCostContext is SelectCost with cancellation: the context is checked
// at block-scan granularity, so a query over a huge index (or with a huge k)
// stops promptly when its deadline expires. On cancellation it returns the
// context's error and the cost accumulated so far — the partial value is
// useful for logging but must not be reported as a ground truth.
func SelectCostContext(ctx context.Context, ix *index.Tree, q geom.Point, k int) (int, error) {
	if k < 1 {
		return 0, nil
	}
	b := NewBrowser(ix, q)
	for i := 0; i < k; i++ {
		_, ok, err := b.next(ctx)
		if err != nil {
			return b.stats.BlocksScanned, err
		}
		if !ok {
			break
		}
	}
	return b.stats.BlocksScanned, nil
}

// SelectDF answers a k-NN-Select with the branch-and-bound algorithm of
// Roussopoulos et al.: blocks are visited in MINDIST order and a block is
// scanned whenever its MINDIST does not exceed the distance of the k-th
// nearest point encountered so far. The bound tightens as blocks are read,
// but unlike distance browsing the algorithm commits to scanning a block
// before knowing whether queued tuples already cover k; its cost is
// therefore always >= the Browser's (a tested invariant).
func SelectDF(ix *index.Tree, q geom.Point, k int) ([]Neighbor, Stats) {
	var stats Stats
	if k <= 0 {
		return nil, stats
	}
	scan := ix.ScanMinDist(q)
	// best is a max-heap of the k nearest points so far, keyed by negated
	// distance.
	var best pqueue.Queue[Neighbor]
	kth := func() (float64, bool) {
		if best.Len() < k {
			return 0, false
		}
		d, ok := best.PeekPriority()
		return -d, ok
	}
	for {
		blk, dist, ok := scan.Next()
		if !ok {
			break
		}
		if bound, full := kth(); full && dist > bound {
			break
		}
		stats.BlocksScanned++
		stats.PointsEnqueued += len(blk.Points)
		for _, p := range blk.Points {
			d := q.Dist(p)
			if bound, full := kth(); full && d >= bound {
				continue
			}
			best.Push(Neighbor{Point: p, Dist: d}, -d)
			if best.Len() > k {
				best.Pop()
			}
		}
	}
	out := make([]Neighbor, best.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i], _ = best.Pop()
	}
	return out, stats
}
