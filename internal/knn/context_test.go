package knn

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"knncost/internal/geom"
	"knncost/internal/quadtree"
)

func TestSelectCostContextMatchesSelectCost(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	bounds := geom.NewRect(0, 0, 100, 100)
	ix := quadtree.Build(randPoints(rng, 4000, bounds), quadtree.Options{Capacity: 32, Bounds: bounds}).Index()
	for i := 0; i < 50; i++ {
		q := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		k := 1 + rng.Intn(200)
		want := SelectCost(ix, q, k)
		got, err := SelectCostContext(context.Background(), ix, q, k)
		if err != nil {
			t.Fatalf("background context: %v", err)
		}
		if got != want {
			t.Fatalf("q=%v k=%d: context cost %d != plain cost %d", q, k, got, want)
		}
	}
}

func TestSelectCostContextCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	bounds := geom.NewRect(0, 0, 100, 100)
	ix := quadtree.Build(randPoints(rng, 4000, bounds), quadtree.Options{Capacity: 32, Bounds: bounds}).Index()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already dead: the very first block check must bail out
	cost, err := SelectCostContext(ctx, ix, geom.Point{X: 50, Y: 50}, 100)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if cost != 0 {
		t.Fatalf("cancelled before any scan but cost = %d", cost)
	}
}

func TestNextContextStopsMidTraversal(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	bounds := geom.NewRect(0, 0, 100, 100)
	ix := quadtree.Build(randPoints(rng, 2000, bounds), quadtree.Options{Capacity: 8, Bounds: bounds}).Index()
	ctx, cancel := context.WithCancel(context.Background())
	b := NewBrowser(ix, geom.Point{X: 10, Y: 10})
	// A few neighbors succeed, then cancellation stops the traversal
	// without exhausting the index.
	for i := 0; i < 5; i++ {
		if _, ok, err := b.NextContext(ctx); !ok || err != nil {
			t.Fatalf("neighbor %d: ok=%v err=%v", i, ok, err)
		}
	}
	cancel()
	if _, _, err := b.NextContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
