package ptloc

import (
	"math/rand"
	"testing"

	"knncost/internal/datagen"
	"knncost/internal/geom"
	"knncost/internal/grid"
	"knncost/internal/index"
	"knncost/internal/kdtree"
	"knncost/internal/quadtree"
)

// trees builds one index of each space-partitioning kind over the same
// skewed point set.
func trees(t *testing.T) map[string]*index.Tree {
	t.Helper()
	pts := datagen.OSMLike(20_000, 7)
	bounds := datagen.WorldBounds
	return map[string]*index.Tree{
		"quadtree": quadtree.Build(pts, quadtree.Options{Capacity: 64, Bounds: bounds}).Index(),
		"kdtree":   kdtree.Build(pts, kdtree.Options{Capacity: 64, Bounds: bounds}).Index(),
		"grid":     grid.Build(pts, bounds, 17, 13).Index(),
	}
}

// Find must agree with the tree descent everywhere: interior points, data
// points, block corners (shared boundaries), and out-of-bounds points.
func TestFindMatchesTreeDescent(t *testing.T) {
	for name, tree := range trees(t) {
		t.Run(name, func(t *testing.T) {
			g := Build(tree)
			rng := rand.New(rand.NewSource(11))
			b := tree.Bounds()
			check := func(p geom.Point) {
				t.Helper()
				want := tree.Find(p)
				got := g.Find(p)
				if want != got {
					t.Fatalf("Find(%v): grid %+v, tree %+v", p, got, want)
				}
			}
			for i := 0; i < 20_000; i++ {
				check(geom.Point{
					X: b.Min.X + rng.Float64()*b.Width(),
					Y: b.Min.Y + rng.Float64()*b.Height(),
				})
			}
			// Block boundaries are the adversarial inputs: ties must
			// resolve to the same block as the descent.
			for _, blk := range tree.Blocks() {
				for _, c := range blk.Bounds.Corners() {
					check(c)
				}
				check(blk.Bounds.Center())
			}
			// Outside the bounds both must return nil.
			for _, p := range []geom.Point{
				{X: b.Min.X - 1, Y: b.Min.Y},
				{X: b.Max.X + 1, Y: b.Max.Y},
				{X: b.Min.X, Y: b.Max.Y + 1e9},
			} {
				check(p)
			}
		})
	}
}

func TestFindZeroAlloc(t *testing.T) {
	for name, tree := range trees(t) {
		g := Build(tree)
		b := tree.Bounds()
		p := geom.Point{X: b.Min.X + b.Width()/3, Y: b.Min.Y + b.Height()/3}
		if allocs := testing.AllocsPerRun(100, func() {
			if g.Find(p) == nil {
				t.Fatal("expected a block")
			}
		}); allocs != 0 {
			t.Errorf("%s: Find allocates %.1f times per call, want 0", name, allocs)
		}
	}
}

func TestDegenerateTree(t *testing.T) {
	// A single-block index with zero-area bounds must still resolve.
	blk := &index.Block{Bounds: geom.Rect{Min: geom.Point{X: 5, Y: 5}, Max: geom.Point{X: 5, Y: 5}}}
	tree := index.New(&index.Node{Bounds: blk.Bounds, Block: blk}, true)
	g := Build(tree)
	if got := g.Find(geom.Point{X: 5, Y: 5}); got != blk {
		t.Fatalf("degenerate Find = %+v, want the only block", got)
	}
	if got := g.Find(geom.Point{X: 6, Y: 5}); got != nil {
		t.Fatalf("out-of-bounds Find = %+v, want nil", got)
	}
}
