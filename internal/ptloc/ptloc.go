// Package ptloc provides a flat uniform-grid point-location accelerator
// over the leaf blocks of a space-partitioning index.Tree. It answers "which
// leaf block contains point p" in O(1) — one array index plus a scan of the
// (typically one-element) candidate list of the cell — replacing the
// per-query tree descent that index.Tree.Find performs.
//
// The staircase estimator resolves its catalog block through a Grid, which
// removes the last data-dependent pointer chase from the k-NN-Select
// estimation hot path: after construction, Find performs no allocations and
// touches only two contiguous arrays.
//
// A Grid is immutable after Build and safe for concurrent use.
package ptloc

import (
	"math"

	"knncost/internal/geom"
	"knncost/internal/index"
)

// maxCellsPerAxis caps the grid resolution so pathological block counts
// cannot allocate an unbounded cell directory.
const maxCellsPerAxis = 4096

// Grid maps points to the leaf block containing them in constant time.
type Grid struct {
	bounds     geom.Rect
	nx, ny     int
	invW, invH float64 // cells per unit length along each axis
	// cells[row*nx+col] lists the blocks whose bounds overlap the cell, in
	// ascending block-ID (DFS) order — the same preference order as
	// Tree.Find, so Find returns identical results.
	cells [][]*index.Block
}

// Build constructs the accelerator over the leaf blocks of t. The grid
// resolution is chosen so the cell count is about four times the block
// count, which keeps candidate lists near length one for balanced
// partitionings while bounding memory at O(blocks).
func Build(t *index.Tree) *Grid {
	bounds := t.Bounds()
	g := &Grid{bounds: bounds, nx: 1, ny: 1}
	n := t.NumBlocks()
	if n == 0 || bounds.Width() <= 0 || bounds.Height() <= 0 {
		// Degenerate index: a single cell holding every block still
		// answers correctly, just without the O(1) fan-out.
		g.cells = [][]*index.Block{nil}
		for _, b := range t.Blocks() {
			g.cells[0] = append(g.cells[0], b)
		}
		g.invW, g.invH = 0, 0
		return g
	}
	side := int(math.Ceil(math.Sqrt(float64(4 * n))))
	if side < 1 {
		side = 1
	}
	if side > maxCellsPerAxis {
		side = maxCellsPerAxis
	}
	g.nx, g.ny = side, side
	g.invW = float64(g.nx) / bounds.Width()
	g.invH = float64(g.ny) / bounds.Height()
	g.cells = make([][]*index.Block, g.nx*g.ny)
	// Blocks() is in ascending ID order, so appending keeps every candidate
	// list sorted by ID without an explicit sort.
	for _, b := range t.Blocks() {
		c0, r0 := g.cellOf(b.Bounds.Min)
		c1, r1 := g.cellOf(b.Bounds.Max)
		for r := r0; r <= r1; r++ {
			for c := c0; c <= c1; c++ {
				g.cells[r*g.nx+c] = append(g.cells[r*g.nx+c], b)
			}
		}
	}
	return g
}

// cellOf maps a point to its (col, row) cell coordinates, clamped to the
// grid. Using the same floor arithmetic for block corners and query points
// guarantees that the block containing a point always appears in that
// point's cell candidate list.
func (g *Grid) cellOf(p geom.Point) (col, row int) {
	col = int((p.X - g.bounds.Min.X) * g.invW)
	row = int((p.Y - g.bounds.Min.Y) * g.invH)
	if col < 0 {
		col = 0
	} else if col >= g.nx {
		col = g.nx - 1
	}
	if row < 0 {
		row = 0
	} else if row >= g.ny {
		row = g.ny - 1
	}
	return col, row
}

// Find returns the leaf block containing p, or nil when p lies outside the
// index bounds. For points on shared block boundaries it returns the block
// with the smallest ID — the same block index.Tree.Find resolves to — so
// estimates computed through a Grid are identical to tree-descent results.
func (g *Grid) Find(p geom.Point) *index.Block {
	if !g.bounds.Contains(p) {
		return nil
	}
	col, row := g.cellOf(p)
	for _, b := range g.cells[row*g.nx+col] {
		if b.Bounds.Contains(p) {
			return b
		}
	}
	return nil
}

// NumCells returns the cell count of the directory (for tests and sizing
// diagnostics).
func (g *Grid) NumCells() int { return len(g.cells) }
