package datagen

import (
	"math/rand"
	"testing"

	"knncost/internal/geom"
)

func TestUniform(t *testing.T) {
	b := geom.NewRect(0, 0, 10, 10)
	pts := Uniform{Bounds: b}.Generate(1000, rand.New(rand.NewSource(1)))
	if len(pts) != 1000 {
		t.Fatalf("got %d points, want 1000", len(pts))
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Fatalf("point %v outside bounds", p)
		}
	}
	// Rough uniformity: each quadrant holds about a quarter of the points.
	for _, q := range b.Quadrants() {
		c := 0
		for _, p := range pts {
			if q.Contains(p) {
				c++
			}
		}
		if c < 150 || c > 350 {
			t.Errorf("quadrant %v holds %d of 1000 points", q, c)
		}
	}
}

func TestClustersSkewed(t *testing.T) {
	b := geom.NewRect(0, 0, 100, 100)
	pts := Clusters{Bounds: b, Num: 8}.Generate(2000, rand.New(rand.NewSource(2)))
	if len(pts) != 2000 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Fatalf("point %v outside bounds", p)
		}
	}
	// Clustered data must be far from uniform: a 10x10 grid of cells
	// should show high variance in occupancy.
	var cells [100]int
	for _, p := range pts {
		col := int(p.X / 10)
		row := int(p.Y / 10)
		if col > 9 {
			col = 9
		}
		if row > 9 {
			row = 9
		}
		cells[row*10+col]++
	}
	mean := 20.0
	var variance float64
	for _, c := range cells {
		variance += (float64(c) - mean) * (float64(c) - mean)
	}
	variance /= 100
	if variance < 4*mean {
		t.Errorf("cell-count variance %.1f too low for clustered data", variance)
	}
}

func TestRoads(t *testing.T) {
	b := geom.NewRect(0, 0, 100, 100)
	pts := Roads{Bounds: b, Num: 4, Segments: 6}.Generate(1500, rand.New(rand.NewSource(3)))
	if len(pts) != 1500 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Fatalf("point %v outside bounds", p)
		}
	}
}

func TestMixtureCountsAndBounds(t *testing.T) {
	b := geom.NewRect(0, 0, 50, 50)
	m := Mixture{Components: []Component{
		{Gen: Uniform{Bounds: b}, Weight: 1},
		{Gen: Clusters{Bounds: b, Num: 3}, Weight: 2},
	}}
	pts := m.Generate(900, rand.New(rand.NewSource(4)))
	if len(pts) != 900 {
		t.Fatalf("got %d points, want 900", len(pts))
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Fatalf("point %v outside bounds", p)
		}
	}
}

func TestOSMLikeDeterministic(t *testing.T) {
	a := OSMLike(500, 42)
	b := OSMLike(500, 42)
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := OSMLike(500, 43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == 500 {
		t.Error("different seeds produced identical datasets")
	}
	for _, p := range a {
		if !WorldBounds.Contains(p) {
			t.Fatalf("point %v outside world bounds", p)
		}
	}
}

func TestOSMLikeIsSkewed(t *testing.T) {
	pts := OSMLike(5000, 7)
	// Compare nearest-neighbor spacing variance against uniform: skewed
	// data has cells that are empty and cells that are packed. Use a
	// coarse grid occupancy histogram.
	const g = 16
	var cells [g * g]int
	for _, p := range pts {
		col := int((p.X - WorldBounds.Min.X) / WorldBounds.Width() * g)
		row := int((p.Y - WorldBounds.Min.Y) / WorldBounds.Height() * g)
		if col >= g {
			col = g - 1
		}
		if row >= g {
			row = g - 1
		}
		cells[row*g+col]++
	}
	empty := 0
	maxCell := 0
	for _, c := range cells {
		if c == 0 {
			empty++
		}
		if c > maxCell {
			maxCell = c
		}
	}
	mean := float64(len(pts)) / (g * g)
	if float64(maxCell) < 5*mean {
		t.Errorf("max cell %d not skewed vs mean %.1f", maxCell, mean)
	}
	if empty < 10 {
		t.Errorf("only %d empty cells; OSM-like data should leave oceans empty", empty)
	}
}
