// Package datagen generates the synthetic spatial workloads used throughout
// the repository. The paper evaluates on a 0.1-billion-point OpenStreetMap
// bulk GPS dump, which is not redistributable here; OSMLike substitutes a
// deterministic generator whose output shares the properties the estimation
// techniques are sensitive to — heavy, multi-scale spatial skew: dense urban
// clusters, points strung along road-like polylines, and a sparse uniform
// background (compare the paper's Figure 10). DESIGN.md §3 documents the
// substitution.
//
// All generators are deterministic given a *rand.Rand, so every experiment
// in the repository is reproducible bit for bit.
package datagen

import (
	"math"
	"math/rand"

	"knncost/internal/geom"
)

// WorldBounds is the canonical coordinate frame of the synthetic datasets:
// a longitude/latitude-like box. Using fixed world bounds mirrors the
// paper's note that virtual grids can cover "the bounds of the earth".
var WorldBounds = geom.NewRect(-180, -90, 180, 90)

// Generator produces n points drawn from some spatial distribution.
type Generator interface {
	// Generate returns exactly n points inside the generator's bounds.
	Generate(n int, rng *rand.Rand) []geom.Point
}

// Uniform draws points independently and uniformly inside Bounds.
type Uniform struct {
	Bounds geom.Rect
}

// Generate implements Generator.
func (u Uniform) Generate(n int, rng *rand.Rand) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = randIn(rng, u.Bounds)
	}
	return pts
}

// Clusters draws points from a mixture of isotropic Gaussian clusters with
// Zipf-skewed weights — some "cities" are much denser than others, like
// population data. Points falling outside Bounds are resampled.
type Clusters struct {
	Bounds geom.Rect
	// Num is the number of clusters. Zero means 16.
	Num int
	// SigmaFrac is each cluster's standard deviation as a fraction of the
	// bounds' width, drawn uniformly from (SigmaFrac/4, SigmaFrac].
	// Zero means 0.02.
	SigmaFrac float64
}

// Generate implements Generator.
func (c Clusters) Generate(n int, rng *rand.Rand) []geom.Point {
	num := c.Num
	if num == 0 {
		num = 16
	}
	sigmaFrac := c.SigmaFrac
	if sigmaFrac == 0 {
		sigmaFrac = 0.02
	}
	type cluster struct {
		center geom.Point
		sigma  float64
		weight float64
	}
	clusters := make([]cluster, num)
	totalWeight := 0.0
	for i := range clusters {
		w := 1 / math.Pow(float64(i+1), 1.1) // Zipf-ish skew
		clusters[i] = cluster{
			center: randIn(rng, shrink(c.Bounds, 0.05)),
			sigma:  c.Bounds.Width() * sigmaFrac * (0.25 + 0.75*rng.Float64()),
			weight: w,
		}
		totalWeight += w
	}
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		r := rng.Float64() * totalWeight
		var cl cluster
		for _, cand := range clusters {
			if r < cand.weight {
				cl = cand
				break
			}
			r -= cand.weight
		}
		p := geom.Point{
			X: cl.center.X + rng.NormFloat64()*cl.sigma,
			Y: cl.center.Y + rng.NormFloat64()*cl.sigma,
		}
		if c.Bounds.Contains(p) {
			pts = append(pts, p)
		}
	}
	return pts
}

// Roads draws points jittered around random polylines — the GPS-trace
// texture of OpenStreetMap bulk data, where most points follow the road
// network.
type Roads struct {
	Bounds geom.Rect
	// Num is the number of polylines. Zero means 24.
	Num int
	// Segments is the number of segments per polyline. Zero means 8.
	Segments int
	// JitterFrac is the cross-road Gaussian jitter as a fraction of the
	// bounds' width. Zero means 0.002.
	JitterFrac float64
}

// Generate implements Generator.
func (r Roads) Generate(n int, rng *rand.Rand) []geom.Point {
	num := r.Num
	if num == 0 {
		num = 24
	}
	segments := r.Segments
	if segments == 0 {
		segments = 8
	}
	jitter := r.JitterFrac
	if jitter == 0 {
		jitter = 0.002
	}
	// Build the polylines as random walks with momentum.
	roads := make([][]geom.Point, num)
	for i := range roads {
		road := make([]geom.Point, 0, segments+1)
		p := randIn(rng, shrink(r.Bounds, 0.05))
		road = append(road, p)
		heading := rng.Float64() * 2 * math.Pi
		step := r.Bounds.Width() * 0.04
		for s := 0; s < segments; s++ {
			heading += rng.NormFloat64() * 0.6
			p = geom.Point{
				X: p.X + math.Cos(heading)*step,
				Y: p.Y + math.Sin(heading)*step,
			}
			road = append(road, p)
		}
		roads[i] = road
	}
	sigma := r.Bounds.Width() * jitter
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		road := roads[rng.Intn(len(roads))]
		seg := rng.Intn(len(road) - 1)
		t := rng.Float64()
		a, b := road[seg], road[seg+1]
		p := geom.Point{
			X: a.X + t*(b.X-a.X) + rng.NormFloat64()*sigma,
			Y: a.Y + t*(b.Y-a.Y) + rng.NormFloat64()*sigma,
		}
		if r.Bounds.Contains(p) {
			pts = append(pts, p)
		}
	}
	return pts
}

// Component weights a Generator inside a Mixture.
type Component struct {
	Gen    Generator
	Weight float64
}

// Mixture draws each point from one of its components, chosen with
// probability proportional to its weight.
type Mixture struct {
	Components []Component
}

// Generate implements Generator.
func (m Mixture) Generate(n int, rng *rand.Rand) []geom.Point {
	total := 0.0
	for _, c := range m.Components {
		total += c.Weight
	}
	counts := make([]int, len(m.Components))
	for i := 0; i < n; i++ {
		r := rng.Float64() * total
		for j, c := range m.Components {
			if r < c.Weight {
				counts[j]++
				break
			}
			r -= c.Weight
		}
	}
	pts := make([]geom.Point, 0, n)
	for j, c := range m.Components {
		pts = append(pts, c.Gen.Generate(counts[j], rng)...)
	}
	// Shuffle so consumers do not see component-sorted input.
	rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
	return pts
}

// OSMLike returns n points with OpenStreetMap-GPS-like skew inside
// WorldBounds: 55% urban clusters, 35% road traces, 10% uniform background.
// The same seed always yields the same dataset.
func OSMLike(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	return Mixture{
		Components: []Component{
			{Gen: Clusters{Bounds: WorldBounds, Num: 24, SigmaFrac: 0.015}, Weight: 0.55},
			{Gen: Roads{Bounds: WorldBounds, Num: 32, Segments: 10}, Weight: 0.35},
			{Gen: Uniform{Bounds: WorldBounds}, Weight: 0.10},
		},
	}.Generate(n, rng)
}

// randIn draws a point uniformly inside r.
func randIn(rng *rand.Rand, r geom.Rect) geom.Point {
	return geom.Point{
		X: r.Min.X + rng.Float64()*r.Width(),
		Y: r.Min.Y + rng.Float64()*r.Height(),
	}
}

// shrink returns r contracted by frac of its extent on every side, keeping
// generated structure away from the boundary.
func shrink(r geom.Rect, frac float64) geom.Rect {
	dx, dy := r.Width()*frac, r.Height()*frac
	return geom.Rect{
		Min: geom.Point{X: r.Min.X + dx, Y: r.Min.Y + dy},
		Max: geom.Point{X: r.Max.X - dx, Y: r.Max.Y - dy},
	}
}
