// Package quadtree implements the region quadtree (PR quadtree) used as the
// paper's testbed index (§5): each node covers a square region of space that
// is recursively decomposed into four equal quadrants until the number of
// points in a leaf is at most the maximum block capacity. Leaves are the
// index blocks whose scan count defines operator cost.
//
// The tree is a space-partitioning index: its leaves tile the root region,
// so any query point falls inside exactly one block — the property §3.3
// requires of the auxiliary index that carries the staircase catalogs.
package quadtree

import (
	"fmt"

	"knncost/internal/geom"
	"knncost/internal/index"
)

// DefaultCapacity is the default maximum number of points per leaf block.
// The paper uses 10,000 at 0.1B points; the repository default keeps the
// same points-per-block ratio at its scaled-down dataset sizes.
const DefaultCapacity = 512

// DefaultMaxDepth bounds the recursion so that duplicate or near-duplicate
// points cannot split forever. 2^-28 of the root edge is far below any
// meaningful coordinate resolution.
const DefaultMaxDepth = 28

// Options configure tree construction.
type Options struct {
	// Capacity is the maximum number of points in a leaf; a leaf holding
	// more is split unless it is at MaxDepth. Zero means DefaultCapacity.
	Capacity int
	// MaxDepth bounds the decomposition depth. Zero means DefaultMaxDepth.
	MaxDepth int
	// Bounds fixes the root region. A zero rectangle means "use the
	// bounding box of the input points". Points outside Bounds are
	// rejected by Insert and cause Build to panic, because a region
	// quadtree decomposes a fixed space.
	Bounds geom.Rect
}

func (o Options) withDefaults(pts []geom.Point) Options {
	if o.Capacity <= 0 {
		o.Capacity = DefaultCapacity
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = DefaultMaxDepth
	}
	if o.Bounds == (geom.Rect{}) {
		o.Bounds = geom.BoundsOf(pts)
	}
	return o
}

type node struct {
	bounds   geom.Rect
	children *[4]*node    // non-nil for internal nodes
	points   []geom.Point // leaf payload
}

func (n *node) isLeaf() bool { return n.children == nil }

// Tree is a region quadtree over a fixed bounded region.
type Tree struct {
	root *node
	opt  Options
	size int
}

// Build constructs a quadtree over pts. It panics if a point lies outside
// the configured bounds, because that indicates a caller bug: the region to
// decompose must be fixed up front.
func Build(pts []geom.Point, opt Options) *Tree {
	opt = opt.withDefaults(pts)
	for _, p := range pts {
		if !opt.Bounds.Contains(p) {
			panic(fmt.Sprintf("quadtree: point %v outside bounds %v", p, opt.Bounds))
		}
	}
	t := &Tree{opt: opt, size: len(pts)}
	owned := make([]geom.Point, len(pts))
	copy(owned, pts)
	t.root = build(opt.Bounds, owned, 0, opt)
	return t
}

func build(bounds geom.Rect, pts []geom.Point, depth int, opt Options) *node {
	if len(pts) <= opt.Capacity || depth >= opt.MaxDepth {
		return &node{bounds: bounds, points: pts}
	}
	center := bounds.Center()
	var parts [4][]geom.Point
	for _, p := range pts {
		q := quadIndex(center, p)
		parts[q] = append(parts[q], p)
	}
	quads := bounds.Quadrants()
	children := new([4]*node)
	for i := range children {
		children[i] = build(quads[i], parts[i], depth+1, opt)
	}
	return &node{bounds: bounds, children: children}
}

// quadIndex assigns p to one of the four quadrants of a region with the
// given center. Points on the dividing lines go east/north, so every point
// belongs to exactly one quadrant. The order matches geom.Rect.Quadrants:
// SW, SE, NW, NE.
func quadIndex(center, p geom.Point) int {
	i := 0
	if p.X >= center.X {
		i |= 1
	}
	if p.Y >= center.Y {
		i |= 2
	}
	return i
}

// Insert adds p to the tree, splitting leaves that exceed the capacity. It
// returns an error when p lies outside the tree bounds.
func (t *Tree) Insert(p geom.Point) error {
	if !t.opt.Bounds.Contains(p) {
		return fmt.Errorf("quadtree: point %v outside bounds %v", p, t.opt.Bounds)
	}
	n, depth := t.root, 0
	for !n.isLeaf() {
		n = n.children[quadIndex(n.bounds.Center(), p)]
		depth++
	}
	n.points = append(n.points, p)
	t.size++
	if len(n.points) > t.opt.Capacity && depth < t.opt.MaxDepth {
		t.split(n, depth)
	}
	return nil
}

func (t *Tree) split(n *node, depth int) {
	pts := n.points
	n.points = nil
	sub := build(n.bounds, pts, depth, t.opt)
	// build may return a leaf only when it cannot split further, which
	// cannot happen here because len(pts) > capacity and depth < MaxDepth.
	n.children = sub.children
}

// Len returns the number of points stored.
func (t *Tree) Len() int { return t.size }

// Bounds returns the fixed root region.
func (t *Tree) Bounds() geom.Rect { return t.opt.Bounds }

// Capacity returns the configured maximum block capacity.
func (t *Tree) Capacity() int { return t.opt.Capacity }

// Index exports a snapshot of the tree as an index.Tree, the representation
// every knncost algorithm consumes. The snapshot shares point slices with
// the quadtree; it is invalidated by subsequent Inserts.
func (t *Tree) Index() *index.Tree {
	var conv func(n *node) *index.Node
	conv = func(n *node) *index.Node {
		out := &index.Node{Bounds: n.bounds}
		if n.isLeaf() {
			out.Block = &index.Block{
				Bounds: n.bounds,
				Points: n.points,
				Count:  len(n.points),
			}
			return out
		}
		out.Children = make([]*index.Node, 4)
		for i, c := range n.children {
			out.Children[i] = conv(c)
		}
		return out
	}
	return index.New(conv(t.root), true)
}
