package quadtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"knncost/internal/geom"
)

func randPoints(rng *rand.Rand, n int, bounds geom.Rect) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: bounds.Min.X + rng.Float64()*bounds.Width(),
			Y: bounds.Min.Y + rng.Float64()*bounds.Height(),
		}
	}
	return pts
}

func TestBuildSmall(t *testing.T) {
	bounds := geom.NewRect(0, 0, 100, 100)
	pts := randPoints(rand.New(rand.NewSource(1)), 1000, bounds)
	tr := Build(pts, Options{Capacity: 50, Bounds: bounds})
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", tr.Len())
	}
	ix := tr.Index()
	if err := ix.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if ix.NumPoints() != 1000 {
		t.Fatalf("index NumPoints = %d, want 1000", ix.NumPoints())
	}
	for _, b := range ix.Blocks() {
		if b.Count > 50 {
			t.Errorf("block %d holds %d points, capacity 50", b.ID, b.Count)
		}
	}
	if !ix.Partitioning() {
		t.Error("quadtree index must be space-partitioning")
	}
}

func TestBuildEmptyAndTiny(t *testing.T) {
	tr := Build(nil, Options{Bounds: geom.NewRect(0, 0, 1, 1)})
	if tr.Len() != 0 {
		t.Fatalf("empty Len = %d", tr.Len())
	}
	ix := tr.Index()
	if ix.NumBlocks() != 1 {
		t.Fatalf("empty tree should be a single leaf, got %d blocks", ix.NumBlocks())
	}
	one := Build([]geom.Point{{X: 0.5, Y: 0.5}}, Options{Bounds: geom.NewRect(0, 0, 1, 1)})
	if one.Index().NumPoints() != 1 {
		t.Fatal("single-point tree lost its point")
	}
}

func TestBuildPanicsOutsideBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Build should panic for a point outside bounds")
		}
	}()
	Build([]geom.Point{{X: 2, Y: 2}}, Options{Bounds: geom.NewRect(0, 0, 1, 1)})
}

func TestInsertMatchesBuild(t *testing.T) {
	bounds := geom.NewRect(0, 0, 100, 100)
	pts := randPoints(rand.New(rand.NewSource(2)), 2000, bounds)
	opt := Options{Capacity: 64, Bounds: bounds}
	built := Build(pts, opt)

	incr := Build(nil, opt)
	for _, p := range pts {
		if err := incr.Insert(p); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if incr.Len() != built.Len() {
		t.Fatalf("incremental Len = %d, bulk = %d", incr.Len(), built.Len())
	}
	ix := incr.Index()
	if err := ix.Validate(); err != nil {
		t.Fatalf("incremental Validate: %v", err)
	}
	for _, b := range ix.Blocks() {
		if b.Count > opt.Capacity {
			t.Errorf("incremental block exceeds capacity: %d", b.Count)
		}
	}
	if ix.NumPoints() != 2000 {
		t.Fatalf("incremental index NumPoints = %d", ix.NumPoints())
	}
}

func TestInsertOutsideBounds(t *testing.T) {
	tr := Build(nil, Options{Bounds: geom.NewRect(0, 0, 1, 1)})
	if err := tr.Insert(geom.Point{X: 5, Y: 5}); err == nil {
		t.Error("Insert outside bounds should fail")
	}
}

func TestDuplicatePointsRespectMaxDepth(t *testing.T) {
	bounds := geom.NewRect(0, 0, 1, 1)
	pts := make([]geom.Point, 100)
	for i := range pts {
		pts[i] = geom.Point{X: 0.3, Y: 0.3}
	}
	tr := Build(pts, Options{Capacity: 4, MaxDepth: 6, Bounds: bounds})
	ix := tr.Index()
	if err := ix.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if ix.NumPoints() != 100 {
		t.Fatalf("NumPoints = %d, want 100", ix.NumPoints())
	}
	// The duplicates must pile into one max-depth leaf instead of
	// splitting forever.
	maxCount := 0
	for _, b := range ix.Blocks() {
		if b.Count > maxCount {
			maxCount = b.Count
		}
	}
	if maxCount != 100 {
		t.Errorf("expected one overfull max-depth leaf, max block count = %d", maxCount)
	}
}

func TestFindLocatesEveryPoint(t *testing.T) {
	bounds := geom.NewRect(-50, -50, 50, 50)
	pts := randPoints(rand.New(rand.NewSource(3)), 3000, bounds)
	ix := Build(pts, Options{Capacity: 32, Bounds: bounds}).Index()
	for _, p := range pts[:200] {
		b := ix.Find(p)
		if b == nil {
			t.Fatalf("Find(%v) = nil", p)
		}
		if !b.Bounds.Contains(p) {
			t.Fatalf("Find(%v) returned non-containing block %v", p, b.Bounds)
		}
	}
}

// Property: leaves partition the root — their areas sum to the root area and
// every stored point appears in exactly one leaf.
func TestLeavesPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		bounds := geom.NewRect(0, 0, 64, 64)
		n := 100 + local.Intn(900)
		pts := randPoints(local, n, bounds)
		ix := Build(pts, Options{Capacity: 16, Bounds: bounds}).Index()
		var area float64
		total := 0
		for _, b := range ix.Blocks() {
			area += b.Bounds.Area()
			total += b.Count
		}
		if total != n {
			return false
		}
		return area > bounds.Area()*(1-1e-9) && area < bounds.Area()*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: clustered data produces deeper decomposition near clusters —
// every leaf respects capacity and the structural invariants hold.
func TestClusteredBuildProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		bounds := geom.NewRect(0, 0, 1000, 1000)
		var pts []geom.Point
		for c := 0; c < 5; c++ {
			cx := local.Float64() * 1000
			cy := local.Float64() * 1000
			for i := 0; i < 200; i++ {
				p := geom.Point{
					X: cx + local.NormFloat64()*10,
					Y: cy + local.NormFloat64()*10,
				}
				if bounds.Contains(p) {
					pts = append(pts, p)
				}
			}
		}
		ix := Build(pts, Options{Capacity: 32, Bounds: bounds}).Index()
		if err := ix.Validate(); err != nil {
			return false
		}
		for _, b := range ix.Blocks() {
			if b.Count > 32 {
				return false
			}
		}
		return ix.NumPoints() == len(pts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Error(err)
	}
}
