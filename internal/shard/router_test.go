package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"knncost/internal/datagen"
	"knncost/internal/geom"
	"knncost/internal/service"
	"knncost/internal/store"
)

// The differential suite here is the sharding tier's correctness contract:
// every answer served through the router — selects, joins, costs, batches —
// must be bit-exact equal to what one unsharded node serving the same
// relations answers, including while the topology is being rebalanced under
// live traffic. Catalog builds are deterministic in (points, options), so
// any deviation is a routing bug, not noise.

func testStoreOptions(scope string) store.Options {
	return store.Options{MaxK: 100, SampleSize: 40, GridSize: 4, IndexCapacity: 64, RegistryScope: scope}
}

var testServiceOptions = service.Options{MaxK: 100, SampleSize: 40, GridSize: 4}

// testShard is one in-process shard daemon: a store, the service over it,
// and an HTTP listener.
type testShard struct {
	id  string
	st  *store.Store
	srv *httptest.Server
}

func (ts *testShard) shard() Shard { return Shard{ID: ts.id, BaseURL: ts.srv.URL} }

// newTestShard boots a shard daemon with an empty store. wrap (optional)
// decorates the handler — the fault-injection hook of the hedging tests.
func newTestShard(t *testing.T, id string, wrap func(http.Handler) http.Handler) *testShard {
	t.Helper()
	st, err := store.New(testStoreOptions(id))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		st.Close(ctx)
	})
	var h http.Handler = service.NewWithStore(st, testServiceOptions)
	if wrap != nil {
		h = wrap(h)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return &testShard{id: id, st: st, srv: srv}
}

// newOracle boots the single-node reference: one store serving every
// relation directly, no router in front.
func newOracle(t *testing.T, relations map[string][]geom.Point) *httptest.Server {
	t.Helper()
	st, err := store.New(testStoreOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		st.Close(ctx)
	})
	for name, pts := range relations {
		if _, err := st.Register(name, pts); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := st.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewWithStore(st, testServiceOptions))
	t.Cleanup(srv.Close)
	return srv
}

func testRelations(t *testing.T) map[string][]geom.Point {
	t.Helper()
	rels := map[string][]geom.Point{}
	for i, name := range []string{"hotels", "restaurants", "bars", "parks", "schools"} {
		rels[name] = datagen.OSMLike(300+100*i, int64(i+1))
	}
	return rels
}

// registerThrough registers every relation through the router (exercising
// the fan-out write path) and waits until the router reports them ready.
func registerThrough(t *testing.T, routerURL string, relations map[string][]geom.Point) {
	t.Helper()
	for name, pts := range relations {
		req := service.RegisterRequest{Name: name, Points: make([][2]float64, len(pts))}
		for i, p := range pts {
			req.Points[i] = [2]float64{p.X, p.Y}
		}
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(routerURL+"/relations", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("registering %s through router: status %d: %s", name, resp.StatusCode, data)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for name := range relations {
		for {
			resp, err := http.Get(routerURL + "/relations/" + name + "/status")
			if err != nil {
				t.Fatal(err)
			}
			var st service.RelationInfo
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err == nil && resp.StatusCode == http.StatusOK && st.State == "ready" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("relation %s never became ready through the router (last: %d %+v)", name, resp.StatusCode, st)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// fetch returns status and parsed JSON body with the timing field removed —
// everything else must match bit for bit.
func fetch(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
	delete(m, "took_ns")
	return resp.StatusCode, m
}

// assertSame requires the router and the oracle to answer one path
// identically (modulo timing).
func assertSame(t *testing.T, routerURL, oracleURL, path string) {
	t.Helper()
	rs, rb := fetch(t, routerURL+path)
	os, ob := fetch(t, oracleURL+path)
	if rs != os {
		t.Errorf("%s: router status %d (%v), oracle status %d (%v)", path, rs, rb, os, ob)
		return
	}
	if !reflect.DeepEqual(rb, ob) {
		t.Errorf("%s: router answered %v, oracle %v", path, rb, ob)
	}
}

// differentialPaths enumerates the read surface to compare: selects, joins
// and ground-truth costs across relations and techniques.
func differentialPaths(relations map[string][]geom.Point) []string {
	names := make([]string, 0, len(relations))
	for name := range relations {
		names = append(names, name)
	}
	var paths []string
	for i, rel := range names {
		pts := relations[rel]
		for qi, q := range []geom.Point{pts[0], pts[len(pts)/2], {X: 0, Y: 0}} {
			k := 5 + 10*qi
			for _, tech := range []string{"staircase-cc", "staircase-c", "density", ""} {
				paths = append(paths, fmt.Sprintf("/estimate/select?rel=%s&x=%v&y=%v&k=%d&technique=%s",
					rel, q.X, q.Y, k, tech))
			}
			paths = append(paths, fmt.Sprintf("/cost/select?rel=%s&x=%v&y=%v&k=%d", rel, q.X, q.Y, k))
		}
		inner := names[(i+1)%len(names)]
		for _, tech := range []string{"catalog-merge", "virtual-grid", "block-sample", ""} {
			paths = append(paths, fmt.Sprintf("/estimate/join?outer=%s&inner=%s&k=4&technique=%s", rel, inner, tech))
		}
		paths = append(paths, fmt.Sprintf("/cost/join?outer=%s&inner=%s&k=3", rel, inner))
	}
	return paths
}

// batchSame compares one scatter-gathered batch against the oracle's.
func batchSame(t *testing.T, routerURL, oracleURL, rel string, pts []geom.Point) {
	t.Helper()
	req := service.BatchSelectRequest{Relation: rel, Technique: "staircase-cc", Parallelism: 1}
	for i := 0; i < 40; i++ {
		p := pts[(i*7)%len(pts)]
		req.Queries = append(req.Queries, service.BatchSelectQuery{X: p.X, Y: p.Y, K: 1 + i%20})
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	post := func(base string) service.BatchSelectResponse {
		resp, err := http.Post(base+"/estimate/select/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			data, _ := io.ReadAll(resp.Body)
			t.Fatalf("batch on %s: status %d: %s", base, resp.StatusCode, data)
		}
		var out service.BatchSelectResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	got, want := post(routerURL), post(oracleURL)
	if got.Relation != want.Relation || got.Method != want.Method {
		t.Errorf("batch header mismatch: router %s/%s, oracle %s/%s",
			got.Relation, got.Method, want.Relation, want.Method)
	}
	if !reflect.DeepEqual(got.Results, want.Results) {
		t.Errorf("batch results of %s differ between router and oracle", rel)
	}
}

// TestRouterDifferential is the acceptance test of the tier: a 3-shard
// routed topology with replica fan-out answers the whole read surface
// bit-exact equal to a single node — before, during and after a live
// rebalance that first grows and then shrinks the shard set while traffic
// keeps flowing.
func TestRouterDifferential(t *testing.T) {
	relations := testRelations(t)
	oracle := newOracle(t, relations)

	shards := []*testShard{
		newTestShard(t, "shard-a", nil),
		newTestShard(t, "shard-b", nil),
		newTestShard(t, "shard-c", nil),
	}
	toShards := func(ts []*testShard) []Shard {
		out := make([]Shard, len(ts))
		for i, s := range ts {
			out[i] = s.shard()
		}
		return out
	}
	rt, err := New(toShards(shards), Options{
		Replicas:   2,
		HedgeAfter: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt)
	defer front.Close()

	registerThrough(t, front.URL, relations)
	paths := differentialPaths(relations)
	for _, p := range paths {
		assertSame(t, front.URL, oracle.URL, p)
	}
	batchSame(t, front.URL, oracle.URL, "restaurants", relations["restaurants"])

	// Live rebalance: background traffic hammers the router while the
	// topology grows to 4 shards and then shrinks back to 3 (dropping one
	// of the original owners). Every concurrent answer must stay valid,
	// and every answer after each flip must still match the oracle.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := paths[(i*5+w)%len(paths)]
				i++
				resp, err := http.Get(front.URL + p)
				if err != nil {
					t.Errorf("traffic during rebalance: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}

	grown := append(append([]*testShard(nil), shards...), newTestShard(t, "shard-d", nil))
	if err := rt.SetShards(toShards(grown)); err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		assertSame(t, front.URL, oracle.URL, p)
	}
	batchSame(t, front.URL, oracle.URL, "hotels", relations["hotels"])

	shrunk := grown[1:] // drop shard-a: its relations must re-home via mirroring
	if err := rt.SetShards(toShards(shrunk)); err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		assertSame(t, front.URL, oracle.URL, p)
	}
	batchSame(t, front.URL, oracle.URL, "parks", relations["parks"])

	close(stop)
	wg.Wait()

	if rt.WarmRestores() == 0 {
		t.Error("rebalancing a 2-replica topology should have warm-restored at least one relation")
	}
	reqs := rt.RequestsByShard()
	for _, s := range shrunk {
		if reqs[s.id] == 0 {
			t.Errorf("shard %s served no requests: %v", s.id, reqs)
		}
	}
}

// TestRouterSurface covers the non-estimate surface: listing merge,
// techniques parity, drop fan-out, and error passthrough.
func TestRouterSurface(t *testing.T) {
	relations := map[string][]geom.Point{
		"alpha": datagen.OSMLike(200, 11),
		"beta":  datagen.OSMLike(250, 12),
	}
	oracle := newOracle(t, relations)
	shards := []*testShard{newTestShard(t, "s1", nil), newTestShard(t, "s2", nil)}
	rt, err := New([]Shard{shards[0].shard(), shards[1].shard()}, Options{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt)
	defer front.Close()
	registerThrough(t, front.URL, relations)

	// Techniques: answered locally, byte-identical to a shard's answer.
	rs, rb := fetch(t, front.URL+"/techniques")
	os, ob := fetch(t, oracle.URL+"/techniques")
	if rs != os || !reflect.DeepEqual(rb, ob) {
		t.Errorf("/techniques differs: router %v, oracle %v", rb, ob)
	}

	// Listing: one row per relation regardless of replication factor.
	resp, err := http.Get(front.URL + "/relations")
	if err != nil {
		t.Fatal(err)
	}
	var rows []service.RelationInfo
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(rows) != 2 || rows[0].Name != "alpha" || rows[1].Name != "beta" {
		t.Fatalf("router listing = %+v, want alpha,beta exactly once each", rows)
	}

	// Unknown relation: the 400 passes through with the service's shape.
	status, body := fetch(t, front.URL+"/estimate/select?rel=nosuch&x=0&y=0&k=5")
	if status != http.StatusBadRequest {
		t.Errorf("unknown relation: status %d body %v", status, body)
	}

	// Points round-trip: the dump re-registers verbatim.
	status, body = fetch(t, front.URL+"/relations/alpha/points")
	if status != http.StatusOK || body["name"] != "alpha" {
		t.Errorf("points dump: status %d body keys %v", status, body["name"])
	}

	// Drop: removed from every replica, a re-query 400s, listing shrinks.
	req, _ := http.NewRequest(http.MethodDelete, front.URL+"/relations/alpha", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("drop through router: status %d", dresp.StatusCode)
	}
	for _, s := range shards {
		if _, known := s.st.Status("alpha"); known {
			t.Errorf("shard %s still knows dropped relation", s.id)
		}
	}
	if status, _ := fetch(t, front.URL+"/estimate/select?rel=alpha&x=0&y=0&k=5"); status != http.StatusBadRequest {
		t.Errorf("estimate on dropped relation: status %d", status)
	}
}

// TestRouterJoinAcrossShards pins the cross-shard join path: with one
// replica per relation (no overlap guaranteed), a join whose sides live on
// different shards must still answer — the router colocates the inner side
// by mirroring it — and bit-exact so.
func TestRouterJoinAcrossShards(t *testing.T) {
	relations := map[string][]geom.Point{}
	// The names are chosen so the two-shard ring splits them (rel-4 lands
	// on j2, the others on j1): some ordered pair is guaranteed to cross.
	for _, i := range []int{0, 1, 2, 4} {
		relations[fmt.Sprintf("rel-%d", i)] = datagen.OSMLike(200+50*i, int64(20+i))
	}
	ring, err := NewRing([]string{"j1", "j2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	split := map[string]bool{}
	for name := range relations {
		split[ring.Owner(name)] = true
	}
	if len(split) != 2 {
		t.Fatalf("test relations all hash to one shard (%v); pick different names", split)
	}
	oracle := newOracle(t, relations)
	shards := []*testShard{newTestShard(t, "j1", nil), newTestShard(t, "j2", nil)}
	rt, err := New([]Shard{shards[0].shard(), shards[1].shard()}, Options{Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt)
	defer front.Close()
	registerThrough(t, front.URL, relations)

	for outer := range relations {
		for inner := range relations {
			if outer == inner {
				continue
			}
			assertSame(t, front.URL, oracle.URL,
				fmt.Sprintf("/estimate/join?outer=%s&inner=%s&k=5&technique=catalog-merge", outer, inner))
		}
	}
	// With 4 relations on 2 single-replica shards, at least one ordered
	// pair crossed shards and forced a mirror.
	if rt.WarmRestores() == 0 {
		t.Error("expected at least one cross-shard join to mirror the inner relation")
	}
}

// postPlan posts one plan request and returns status plus the parsed body
// with timing removed.
func postPlan(t *testing.T, base string, req service.PlanRequest, query string) (int, map[string]any) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/plan"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("POST /plan on %s: decoding: %v", base, err)
	}
	delete(m, "took_ns")
	return resp.StatusCode, m
}

// TestRouterPlanCoResident pins the happy routing path of POST /plan: with
// full replication every shard holds every relation, so the plan is served
// in one hop with no mirror, and the decision (costs, ordering, explain
// text) is bit-exact equal to a single node's.
func TestRouterPlanCoResident(t *testing.T) {
	relations := map[string][]geom.Point{
		"alpha": datagen.OSMLike(300, 31),
		"beta":  datagen.OSMLike(350, 32),
	}
	oracle := newOracle(t, relations)
	shards := []*testShard{newTestShard(t, "p1", nil), newTestShard(t, "p2", nil)}
	rt, err := New([]Shard{shards[0].shard(), shards[1].shard()}, Options{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt)
	defer front.Close()
	registerThrough(t, front.URL, relations)

	req := service.PlanRequest{Selects: []service.PlanSelect{
		{Relation: "alpha", X: 50, Y: 50, K: 8},
		{Relation: "beta", X: 50, Y: 50, K: 16},
	}, FilterSelectivity: 0.5}
	rs, rb := postPlan(t, front.URL, req, "?explain=1")
	os, ob := postPlan(t, oracle.URL, req, "?explain=1")
	if rs != http.StatusOK || os != http.StatusOK {
		t.Fatalf("plan status: router %d (%v), oracle %d (%v)", rs, rb, os, ob)
	}
	// The cached flag depends on which replica answered, not on the plan;
	// everything else must match bit for bit.
	delete(rb, "cached")
	delete(ob, "cached")
	if !reflect.DeepEqual(rb, ob) {
		t.Errorf("routed plan differs from oracle:\nrouter: %v\noracle: %v", rb, ob)
	}
	if rt.WarmRestores() != 0 {
		t.Errorf("fully replicated plan should not mirror, restores = %d", rt.WarmRestores())
	}

	// Errors pass through with the service's status mapping.
	bad := req
	bad.Selects[0].Relation = "nosuch"
	if status, _ := postPlan(t, front.URL, bad, ""); status != http.StatusBadRequest {
		t.Errorf("plan with unknown relation: status %d, want 400", status)
	}
}

// TestRouterPlanAcrossShards pins the scatter path: with one replica per
// relation and the query's relations living on different shards, the router
// must colocate them by mirroring onto the winning shard — and the healed
// answer must still match the oracle. The follow-up request hits the same
// (deterministic) owner and is served from its now-hot plan cache.
func TestRouterPlanAcrossShards(t *testing.T) {
	relations := map[string][]geom.Point{}
	for _, i := range []int{0, 1, 2, 4} {
		relations[fmt.Sprintf("rel-%d", i)] = datagen.OSMLike(200+50*i, int64(40+i))
	}
	ring, err := NewRing([]string{"q1", "q2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	byOwner := map[string][]string{}
	for name := range relations {
		byOwner[ring.Owner(name)] = append(byOwner[ring.Owner(name)], name)
	}
	if len(byOwner) != 2 {
		t.Fatalf("test relations all hash to one shard (%v); pick different names", byOwner)
	}
	var crossPair []string
	for _, names := range byOwner {
		sort.Strings(names)
		crossPair = append(crossPair, names[0])
	}
	sort.Strings(crossPair)

	oracle := newOracle(t, relations)
	shards := []*testShard{newTestShard(t, "q1", nil), newTestShard(t, "q2", nil)}
	rt, err := New([]Shard{shards[0].shard(), shards[1].shard()}, Options{Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt)
	defer front.Close()
	registerThrough(t, front.URL, relations)

	req := service.PlanRequest{Selects: []service.PlanSelect{
		{Relation: crossPair[0], X: 50, Y: 50, K: 8},
		{Relation: crossPair[1], X: 50, Y: 50, K: 8},
	}, FilterSelectivity: 0.25}
	rs, rb := postPlan(t, front.URL, req, "")
	os, ob := postPlan(t, oracle.URL, req, "")
	if rs != http.StatusOK || os != http.StatusOK {
		t.Fatalf("plan status: router %d (%v), oracle %d (%v)", rs, rb, os, ob)
	}
	delete(rb, "cached")
	delete(ob, "cached")
	if !reflect.DeepEqual(rb, ob) {
		t.Errorf("cross-shard plan differs from oracle:\nrouter: %v\noracle: %v", rb, ob)
	}
	if rt.WarmRestores() == 0 {
		t.Error("cross-shard plan should have mirrored the second relation")
	}

	// Single owner per relation makes the routing deterministic: the second
	// identical request lands on the same shard and hits its plan cache.
	rs, rb = postPlan(t, front.URL, req, "")
	if rs != http.StatusOK {
		t.Fatalf("re-plan status %d", rs)
	}
	if cached, _ := rb["cached"].(bool); !cached {
		t.Error("second routed plan not served from the owner's plan cache")
	}
}
