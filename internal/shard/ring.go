// Package shard scales the estimation tier horizontally: a consistent-hash
// Ring maps relation names onto shards, and a stateless Router fans requests
// out to shard daemons, merges the answers, and bounds tail latency with
// replica fan-out and hedged requests.
//
// The decomposition mirrors the partition-then-merge shape of MapReduce
// k-NN-join processing (Lu et al., PAPERS.md): per-relation catalogs are
// independent, so k-NN-Select estimation shards cleanly by relation name,
// and the per-pair Catalog-Merge of a cross-shard join is built where the
// outer relation lives after the inner relation's points are handed off.
// With a shared content-addressed catalog cache (internal/store), that
// handoff is a warm restore — the receiving shard loads catalogs keyed by
// the point-data fingerprint instead of rebuilding them — which is what
// makes live rebalancing cheap.
//
// Everything the router serves is bit-exact equal to a single-node answer:
// shards build catalogs from the same points with the same options, every
// build is deterministic, and scatter-gathered batches preserve query order.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the per-shard virtual-node count of a Ring built
// with vnodes <= 0. 160 points per shard keeps the per-shard key share
// within a few percent of 1/N and an add/remove remap within ~1/N.
const DefaultVirtualNodes = 160

// Ring is an immutable consistent-hash ring over shard IDs. Placement is a
// pure function of the shard IDs and the virtual-node count — two rings
// built from the same inputs (in any order, in any process) route
// identically, so routing is stable across router restarts.
type Ring struct {
	shards []string // sorted, unique
	vnodes int
	points []ringPoint // sorted by hash
}

// ringPoint is one virtual node: a position on the ring owned by a shard.
type ringPoint struct {
	hash  uint64
	shard int // index into shards
}

// NewRing builds a ring over the given shard IDs with vnodes virtual nodes
// per shard (<= 0 means DefaultVirtualNodes). IDs must be non-empty and
// unique; order does not matter.
func NewRing(shards []string, vnodes int) (*Ring, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: ring needs at least one shard")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	sorted := append([]string(nil), shards...)
	sort.Strings(sorted)
	for i, id := range sorted {
		if id == "" {
			return nil, fmt.Errorf("shard: empty shard ID")
		}
		if i > 0 && sorted[i-1] == id {
			return nil, fmt.Errorf("shard: duplicate shard ID %q", id)
		}
	}
	r := &Ring{
		shards: sorted,
		vnodes: vnodes,
		points: make([]ringPoint, 0, len(sorted)*vnodes),
	}
	for si, id := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hash64(fmt.Sprintf("%s#%d", id, v)),
				shard: si,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash collisions between virtual nodes are broken by shard order so
		// placement stays deterministic.
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// hash64 is FNV-1a — fast, dependency-free, and, unlike Go's map hash,
// identical in every process, which consistent routing requires — finished
// with a SplitMix64-style avalanche: raw FNV values of near-identical
// strings ("shard-a#0", "shard-a#1", ...) are correlated enough to leave
// the ring badly unbalanced, and the finalizer decorrelates them.
func hash64(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	h := f.Sum64()
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Shards returns the sorted shard IDs. The slice is shared; callers must
// not modify it.
func (r *Ring) Shards() []string { return r.shards }

// NumShards returns the number of shards on the ring.
func (r *Ring) NumShards() int { return len(r.shards) }

// Owner returns the shard that owns the relation: the first virtual node at
// or clockwise after the relation's hash.
func (r *Ring) Owner(relation string) string {
	return r.shards[r.points[r.start(relation)].shard]
}

// Owners returns the first n distinct shards clockwise from the relation's
// hash — the relation's primary (index 0) followed by its replicas. n is
// clamped to the number of shards.
func (r *Ring) Owners(relation string, n int) []string {
	if n > len(r.shards) {
		n = len(r.shards)
	}
	if n < 1 {
		n = 1
	}
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i, start := 0, r.start(relation); len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, r.shards[p.shard])
		}
	}
	return out
}

// start returns the index of the first virtual node at or clockwise after
// the relation's hash.
func (r *Ring) start(relation string) int {
	h := hash64(relation)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around
	}
	return i
}
