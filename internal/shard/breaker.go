package shard

// Replica health breaker. Transport-level failures against a replica —
// connection refused, attempt timeout, mid-body death — are counted per
// replica; BreakerFailures consecutive ones trip the breaker: the replica
// sinks to the end of every read order (it is never removed — a lone
// replica still gets the request) and a background probe re-checks its
// /healthz with jittered exponential backoff until it answers, which
// closes the breaker and restores normal ordering. Any successful HTTP
// response resets the failure count, so a flappy replica needs
// BreakerFailures failures in a row to trip again.

import (
	"context"
	"math/rand"
	"net/http"
	"time"
)

// attempt is do plus the per-attempt timeout and breaker accounting. ctx is
// the attempt's parent: when IT is cancelled (hedge settled, client gone)
// a transport error is the router's own doing and does not count against
// the replica; when only the per-attempt deadline fired, it does.
func (rt *Router) attempt(ctx context.Context, rep *replica, req proxyReq) proxyRes {
	actx := ctx
	if rt.opt.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, rt.opt.AttemptTimeout)
		defer cancel()
	}
	res := rt.do(actx, rep, req)
	if res.err != nil {
		if ctx.Err() == nil {
			rt.noteFailure(rep)
		}
		return res
	}
	if res.status < 500 {
		rep.fails.Store(0)
	}
	return res
}

func (rt *Router) noteFailure(rep *replica) {
	if rt.opt.BreakerFailures < 0 {
		return
	}
	if int(rep.fails.Add(1)) < rt.opt.BreakerFailures {
		return
	}
	if rep.down.CompareAndSwap(false, true) {
		rt.breakerTrips.Add(1)
		rt.opt.logger().Printf("shard: breaker tripped for %s after %d consecutive failures",
			rep.id, rt.opt.BreakerFailures)
		go rt.probe(rep)
	}
}

// probe polls a tripped replica's /healthz until it answers 200, then
// closes the breaker. Backoff is exponential with full jitter so a fleet
// of routers does not probe a recovering shard in lockstep. The goroutine
// exits when the replica leaves the topology.
func (rt *Router) probe(rep *replica) {
	backoff := rt.opt.BreakerBackoff
	maxBackoff := 16 * rt.opt.BreakerBackoff
	for {
		d := backoff/2 + time.Duration(rand.Int63n(int64(backoff)))
		select {
		case <-rep.gone:
			return
		case <-time.After(d):
		}
		ctx, cancel := context.WithTimeout(context.Background(), rt.opt.BreakerProbeTimeout)
		res := rt.do(ctx, rep, proxyReq{method: http.MethodGet, pathQuery: "/healthz"})
		cancel()
		if res.err == nil && res.status == http.StatusOK {
			rep.fails.Store(0)
			rep.down.Store(false)
			rt.opt.logger().Printf("shard: breaker closed for %s", rep.id)
			return
		}
		if backoff < maxBackoff {
			backoff *= 2
			if backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
	}
}
