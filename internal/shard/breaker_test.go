package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"knncost/internal/datagen"
	"knncost/internal/geom"
	"knncost/internal/service"
)

// TestBreakerBoundsDeadReplicaLatency is the breaker acceptance test: one
// of two replicas goes dark (requests hang, the worst transport failure —
// nothing fails fast), and the router must (a) keep answering correctly via
// failover, (b) trip the dead replica's breaker after BreakerFailures
// consecutive attempt timeouts, and (c) stop paying the dead replica's
// attempt timeout on every request once tripped — the added-latency bound.
// When the replica comes back, the background probe must close the breaker
// without any client traffic steering it.
func TestBreakerBoundsDeadReplicaLatency(t *testing.T) {
	const attemptTimeout = 75 * time.Millisecond

	// dead simulates a hung shard: requests park until the client gives up,
	// nothing is ever written back.
	var dead atomic.Bool
	hang := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if dead.Load() {
				<-r.Context().Done()
				panic(http.ErrAbortHandler)
			}
			next.ServeHTTP(w, r)
		})
	}

	// Make the ring primary of the hot relation the replica that dies, so
	// every request would pay the dead attempt without the breaker.
	const rel = "hot"
	ring, err := NewRing([]string{"k1", "k2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	primary := ring.Owner(rel)
	mkShard := func(id string) *testShard {
		if id == primary {
			return newTestShard(t, id, hang)
		}
		return newTestShard(t, id, nil)
	}
	shards := []*testShard{mkShard("k1"), mkShard("k2")}

	rt, err := New([]Shard{shards[0].shard(), shards[1].shard()}, Options{
		Replicas:            2,
		AttemptTimeout:      attemptTimeout,
		BreakerFailures:     3,
		BreakerBackoff:      25 * time.Millisecond,
		BreakerProbeTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt)
	defer front.Close()

	pts := datagen.OSMLike(400, 17)
	registerThrough(t, front.URL, map[string][]geom.Point{rel: pts})
	path := fmt.Sprintf("/estimate/select?rel=%s&x=%v&y=%v&k=10", rel, pts[0].X, pts[0].Y)
	measure(t, front.URL, path, 20) // warm connections and latency trackers

	// Seed the trackers so the soon-to-die replica is the preferred one:
	// the breaker, not lucky ordering, must be what routes around it.
	_, reps := rt.topology()
	for id, rep := range reps {
		seed := 2 * time.Millisecond
		if id == primary {
			seed = 1 * time.Millisecond
		}
		for i := 0; i < 64; i++ {
			rep.lat.observe(seed)
		}
	}

	dead.Store(true)
	// Every request during the trip window still succeeds: the attempt
	// timeout fails the dead replica over to the healthy one.
	tripWindow := measure(t, front.URL, path, 5)
	waitFor(t, func() bool { return rt.BreakerTrips() == 1 })
	for _, d := range tripWindow[:3] {
		if d < attemptTimeout {
			t.Fatalf("pre-trip request took %v; it should have paid the dead replica's %v attempt", d, attemptTimeout)
		}
	}

	// Tripped: the dead replica sinks to the end of the read order, so the
	// added latency is gone even though the replica is still dark.
	tripped := measure(t, front.URL, path, 40)
	if p := p99(tripped); p >= attemptTimeout {
		t.Errorf("post-trip p99 = %v, want < %v (breaker must stop the per-request dead attempt)", p, attemptTimeout)
	}
	if rt.BreakerTrips() != 1 {
		t.Errorf("BreakerTrips = %d, want 1", rt.BreakerTrips())
	}

	// Recovery: the replica comes back; only the background probe sees it
	// (no client request is routed there first), and the breaker closes.
	dead.Store(false)
	waitFor(t, func() bool { return !reps[primary].down.Load() })
	if res := measure(t, front.URL, path, 10); p99(res) >= attemptTimeout {
		t.Errorf("post-recovery p99 = %v", p99(res))
	}
	t.Logf("trip window p99 %v, tripped p99 %v, trips %d", p99(tripWindow), p99(tripped), rt.BreakerTrips())
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 10s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRouterMutationFanout pins the streaming-ingest write path of the
// router: a point mutation fans out to every owner, and an owner that lost
// the relation (here: dropped behind the router's back) is healed with the
// write folded in exactly once.
func TestRouterMutationFanout(t *testing.T) {
	s1 := newTestShard(t, "m1", nil)
	s2 := newTestShard(t, "m2", nil)
	rt, err := New([]Shard{s1.shard(), s2.shard()}, Options{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt)
	defer front.Close()

	pts := datagen.OSMLike(200, 7)
	registerThrough(t, front.URL, map[string][]geom.Point{"live": pts})

	mutate := func(method string, points [][2]float64, wantStatus int) service.RelationInfo {
		t.Helper()
		body, _ := json.Marshal(service.MutateRequest{Points: points})
		req, err := http.NewRequest(method, front.URL+"/relations/live/points", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var info service.RelationInfo
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatalf("decoding mutation response: %v", err)
		}
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s points: status %d, want %d (%+v)", method, resp.StatusCode, wantStatus, info)
		}
		return info
	}

	logical := func(ts *testShard) []geom.Point {
		t.Helper()
		lp, err := ts.st.LogicalPoints("live")
		if err != nil {
			t.Fatalf("%s: LogicalPoints: %v", ts.id, err)
		}
		return lp
	}

	// Append reaches every owner before the response returns.
	mutate(http.MethodPost, [][2]float64{{1.25, 2.5}, {3.5, 4.75}}, http.StatusOK)
	for _, ts := range []*testShard{s1, s2} {
		lp := logical(ts)
		if len(lp) != 202 || lp[200] != (geom.Point{X: 1.25, Y: 2.5}) {
			t.Fatalf("%s: %d points after fan-out append", ts.id, len(lp))
		}
	}

	// Delete fans out the same way.
	mutate(http.MethodDelete, [][2]float64{{1.25, 2.5}}, http.StatusOK)
	for _, ts := range []*testShard{s1, s2} {
		if lp := logical(ts); len(lp) != 201 {
			t.Fatalf("%s: %d points after fan-out delete", ts.id, len(lp))
		}
	}

	// Heal-on-write: one owner loses the relation entirely; the next
	// mutation through the router mirrors it back with the write included
	// exactly once, leaving both owners with identical sequences.
	if !s2.st.Drop("live") {
		t.Fatal("drop on s2 failed")
	}
	mutate(http.MethodPost, [][2]float64{{9.5, 9.5}}, http.StatusOK)
	a, b := logical(s1), logical(s2)
	if len(a) != 202 || len(b) != len(a) {
		t.Fatalf("healed owners diverge: %d vs %d points", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("healed owners diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if rt.WarmRestores() == 0 {
		t.Error("heal path did not mirror")
	}

	// Unknown relations stay 404 even through the fan-out path.
	body, _ := json.Marshal(service.MutateRequest{Points: [][2]float64{{1, 2}}})
	resp, err := http.Post(front.URL+"/relations/nope/points", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("mutating unknown relation: status %d", resp.StatusCode)
	}
}
