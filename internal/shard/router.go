package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"mime"
	"net/http"
	"net/url"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"knncost/internal/engine"
	"knncost/internal/service"
)

// Shard names one shard daemon of the topology.
type Shard struct {
	// ID is the shard's stable identity on the ring. Routing hashes IDs,
	// so IDs must stay stable across restarts and rebalances for placement
	// to stay stable.
	ID string
	// BaseURL is where the shard serves the estimation HTTP surface,
	// e.g. "http://127.0.0.1:8081".
	BaseURL string
}

// Options configure a Router.
type Options struct {
	// Replicas is the fan-out factor: every relation is owned by this many
	// distinct shards (clamped to the shard count). <= 1 means no
	// replication — and therefore nothing to hedge against.
	Replicas int
	// HedgeAfter enables hedged requests: when the fastest replica has not
	// answered after this delay (or after the observed HedgePercentile of
	// its recent latencies, whichever is larger), the same request is sent
	// to the next replica and the first decisive answer wins; the loser's
	// context is cancelled. Zero disables hedging.
	HedgeAfter time.Duration
	// HedgePercentile is the latency percentile of the primary's recent
	// requests used as the adaptive hedge delay (floored by HedgeAfter).
	// Zero means 0.95.
	HedgePercentile float64
	// VirtualNodes is the ring's per-shard virtual-node count. Zero means
	// DefaultVirtualNodes.
	VirtualNodes int
	// MirrorTimeout bounds one rebalance warm-restore (fetch points from a
	// peer, register on the target shard, wait ready). Zero means 30s.
	MirrorTimeout time.Duration
	// AttemptTimeout bounds one read attempt against one replica. When a
	// replica exceeds it the attempt fails over to the next replica (and
	// counts against the replica's health breaker). Zero disables the
	// per-attempt bound; the request then only fails over on transport
	// errors.
	AttemptTimeout time.Duration
	// BreakerFailures is the consecutive-transport-failure count that trips
	// a replica's health breaker: a tripped replica sinks to the end of
	// every read order until a background probe sees /healthz answer again.
	// Zero means 3; negative disables the breaker.
	BreakerFailures int
	// BreakerBackoff is the initial delay between health probes of a tripped
	// replica; probes back off exponentially (jittered) to 16x this value.
	// Zero means 250ms.
	BreakerBackoff time.Duration
	// BreakerProbeTimeout bounds one health probe. Zero means 2s.
	BreakerProbeTimeout time.Duration
	// Client is the HTTP client used for shard requests. Nil means a
	// client with sane connection pooling defaults.
	Client *http.Client
	// Logger receives routing warnings. Nil means the standard logger.
	Logger *log.Logger
}

func (o Options) withDefaults() Options {
	if o.Replicas < 1 {
		o.Replicas = 1
	}
	if o.HedgePercentile <= 0 || o.HedgePercentile > 1 {
		o.HedgePercentile = 0.95
	}
	if o.MirrorTimeout <= 0 {
		o.MirrorTimeout = 30 * time.Second
	}
	if o.BreakerFailures == 0 {
		o.BreakerFailures = 3
	}
	if o.BreakerBackoff <= 0 {
		o.BreakerBackoff = 250 * time.Millisecond
	}
	if o.BreakerProbeTimeout <= 0 {
		o.BreakerProbeTimeout = 2 * time.Second
	}
	return o
}

func (o Options) logger() *log.Logger {
	if o.Logger != nil {
		return o.Logger
	}
	return log.Default()
}

// replica is the router's per-shard state: address, latency history, a
// request counter and breaker health. It survives rebalances that keep the
// shard.
type replica struct {
	id       string
	base     string
	lat      tracker
	requests atomic.Int64

	// Breaker state: fails counts consecutive transport failures, down
	// flags a tripped breaker (reads deprioritize the replica until a
	// background probe sees it healthy), gone is closed when the replica
	// leaves the topology so its probe goroutine exits.
	fails atomic.Int32
	down  atomic.Bool
	gone  chan struct{}
}

// Router is a stateless scatter-gather front for a set of shard daemons: it
// owns no relation data, only the ring that places relations on shards. It
// serves the exact public HTTP surface of a single knncostd, so clients
// cannot tell a routed topology from a single node — including bit-exact
// estimate values.
//
// Reads (estimates, costs, statuses) are routed to the owning replicas
// fastest-first with optional hedging. Writes (register, drop) fan out to
// every owner. A shard that should own a relation but does not yet — the
// moment after a rebalance, or the inner side of a cross-shard join — is
// healed in-band: the router fetches the relation's points from a peer and
// re-registers them on the target shard, which warm-restores the catalogs
// from the shared content-addressed cache when one is configured.
type Router struct {
	opt    Options
	client *http.Client
	mux    *http.ServeMux

	mu   sync.RWMutex // guards ring + reps (rebalance vs routing)
	ring *Ring
	reps map[string]*replica

	hedges       atomic.Int64
	hedgeWins    atomic.Int64
	restores     atomic.Int64
	breakerTrips atomic.Int64

	mirrorMu sync.Mutex
	mirrors  map[string]chan struct{} // in-flight mirrors by "shardID/relation"
}

// New creates a router over the given shards.
func New(shards []Shard, opt Options) (*Router, error) {
	opt = opt.withDefaults()
	client := opt.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	rt := &Router{
		opt:     opt,
		client:  client,
		mirrors: map[string]chan struct{}{},
	}
	if err := rt.SetShards(shards); err != nil {
		return nil, err
	}
	rt.routes()
	return rt, nil
}

// SetShards replaces the topology: a new ring is computed and routing flips
// to it atomically, while in-flight requests finish against the old one.
// Replicas kept across the change keep their latency history and counters.
// Relations that moved are not copied eagerly — the first request routed to
// their new owner mirrors them over (see WarmRestores).
func (rt *Router) SetShards(shards []Shard) error {
	ids := make([]string, len(shards))
	byID := make(map[string]string, len(shards))
	for i, s := range shards {
		ids[i] = s.ID
		base := strings.TrimSuffix(s.BaseURL, "/")
		u, err := url.Parse(base)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return fmt.Errorf("shard: %q has unusable base URL %q", s.ID, s.BaseURL)
		}
		byID[s.ID] = base
	}
	ring, err := NewRing(ids, rt.opt.VirtualNodes)
	if err != nil {
		return err
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	reps := make(map[string]*replica, len(byID))
	for id, base := range byID {
		if old := rt.reps[id]; old != nil && old.base == base {
			reps[id] = old
			continue
		}
		reps[id] = &replica{id: id, base: base, gone: make(chan struct{})}
	}
	// Replicas that left the topology (or changed address) take their
	// breaker probes with them.
	for id, old := range rt.reps {
		if reps[id] != old {
			close(old.gone)
		}
	}
	rt.ring, rt.reps = ring, reps
	return nil
}

// Hedges returns the number of hedge requests fired.
func (rt *Router) Hedges() int64 { return rt.hedges.Load() }

// HedgeWins returns how many hedged requests were won by the hedge (the
// second replica answered first).
func (rt *Router) HedgeWins() int64 { return rt.hedgeWins.Load() }

// WarmRestores returns the number of relations mirrored onto a shard in
// response to routing (rebalances and cross-shard join colocations).
func (rt *Router) WarmRestores() int64 { return rt.restores.Load() }

// BreakerTrips returns how many times a replica's health breaker tripped.
func (rt *Router) BreakerTrips() int64 { return rt.breakerTrips.Load() }

// RequestsByShard returns the per-shard request counts of the current
// topology.
func (rt *Router) RequestsByShard() map[string]int64 {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make(map[string]int64, len(rt.reps))
	for id, rep := range rt.reps {
		out[id] = rep.requests.Load()
	}
	return out
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

func (rt *Router) routes() {
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	rt.mux.HandleFunc("GET /techniques", rt.handleTechniques)
	rt.mux.HandleFunc("GET /relations", rt.handleRelations)
	rt.mux.HandleFunc("POST /relations", rt.handleRegister)
	rt.mux.HandleFunc("DELETE /relations/{name}", rt.handleDrop)
	rt.mux.HandleFunc("POST /relations/{name}/points", rt.handleMutatePoints)
	rt.mux.HandleFunc("DELETE /relations/{name}/points", rt.handleMutatePoints)
	rt.mux.HandleFunc("GET /relations/{name}/status", rt.handleRelationGet)
	rt.mux.HandleFunc("GET /relations/{name}/points", rt.handleRelationGet)
	rt.mux.HandleFunc("GET /estimate/select", rt.handleSelect)
	rt.mux.HandleFunc("GET /cost/select", rt.handleSelect)
	rt.mux.HandleFunc("GET /estimate/join", rt.handleJoin)
	rt.mux.HandleFunc("GET /cost/join", rt.handleJoin)
	rt.mux.HandleFunc("/estimate/select/batch", rt.handleBatch)
	rt.mux.HandleFunc("/plan", rt.handlePlan)
}

// --- topology lookups --------------------------------------------------------

// topology returns the current ring and replica map under one read lock, so
// a request resolves a consistent pair even while SetShards swaps them.
func (rt *Router) topology() (*Ring, map[string]*replica) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring, rt.reps
}

// ownersFor returns the relation's owning replicas in ring order (primary
// first) — the deterministic set writes fan out to.
func (rt *Router) ownersFor(relation string) []*replica {
	ring, reps := rt.topology()
	ids := ring.Owners(relation, rt.opt.Replicas)
	out := make([]*replica, 0, len(ids))
	for _, id := range ids {
		out = append(out, reps[id])
	}
	return out
}

// replicasFor returns the relation's owning replicas ordered fastest-first
// by observed median latency — the order reads race down. Unmeasured
// replicas sort first so new shards get probed (and healed) promptly.
// Replicas with a tripped breaker sink to the end — still reachable as the
// last resort, but no read waits on a known-dead shard first.
func (rt *Router) replicasFor(relation string) []*replica {
	out := rt.ownersFor(relation)
	sort.SliceStable(out, func(i, j int) bool {
		di, dj := out[i].down.Load(), out[j].down.Load()
		if di != dj {
			return !di
		}
		return out[i].lat.median() < out[j].lat.median()
	})
	return out
}

// allReplicas returns every replica of the topology, sorted by ID.
func (rt *Router) allReplicas() []*replica {
	_, reps := rt.topology()
	out := make([]*replica, 0, len(reps))
	for _, rep := range reps {
		out = append(out, rep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// --- low-level shard requests ------------------------------------------------

// proxyReq is one request to forward to a shard. pathQuery carries the path
// and raw query exactly as the client sent them.
type proxyReq struct {
	method      string
	pathQuery   string
	body        []byte
	contentType string
}

// clientReq captures the incoming request as a proxyReq (GETs only; bodied
// requests build their proxyReq explicitly).
func clientReq(r *http.Request) proxyReq {
	pq := r.URL.Path
	if r.URL.RawQuery != "" {
		pq += "?" + r.URL.RawQuery
	}
	return proxyReq{method: r.Method, pathQuery: pq}
}

// proxyRes is one shard's answer. err is a transport-level failure; any
// HTTP response, whatever the status, has err == nil.
type proxyRes struct {
	rep    *replica
	status int
	header http.Header
	body   []byte
	err    error
}

// maxProxyBody bounds what the router buffers of one shard response
// (64 MiB; a full listing or points dump of a large relation fits well
// under this).
const maxProxyBody = 64 << 20

// do sends one request to one replica and reads the full response. Any HTTP
// response updates the replica's latency window — slow errors count as slow.
func (rt *Router) do(ctx context.Context, rep *replica, req proxyReq) proxyRes {
	rep.requests.Add(1)
	var bodyReader io.Reader
	if req.body != nil {
		bodyReader = strings.NewReader(string(req.body))
	}
	hr, err := http.NewRequestWithContext(ctx, req.method, rep.base+req.pathQuery, bodyReader)
	if err != nil {
		return proxyRes{rep: rep, err: err}
	}
	if req.contentType != "" {
		hr.Header.Set("Content-Type", req.contentType)
	}
	start := time.Now()
	resp, err := rt.client.Do(hr)
	if err != nil {
		return proxyRes{rep: rep, err: err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	if err != nil {
		return proxyRes{rep: rep, err: err}
	}
	rep.lat.observe(time.Since(start))
	return proxyRes{rep: rep, status: resp.StatusCode, header: resp.Header, body: body}
}

// decisive reports whether a shard answer settles the request: any verdict
// the client can act on. Transport errors, 5xx and 503-not-ready are not
// decisive — another replica may do better.
func decisive(res proxyRes) bool {
	return res.err == nil && res.status < 500
}

// hedgeDelay computes the delay before hedging away from the primary: the
// observed HedgePercentile of its recent latencies, floored by the
// configured HedgeAfter. Zero means hedging is off.
func (rt *Router) hedgeDelay(primary *replica) time.Duration {
	if rt.opt.HedgeAfter <= 0 {
		return 0
	}
	d := primary.lat.percentile(rt.opt.HedgePercentile)
	if d < rt.opt.HedgeAfter {
		d = rt.opt.HedgeAfter
	}
	return d
}

// hedgedDo races the request down the replica list: the first replica gets
// it immediately, the second after the hedge delay (or immediately after a
// non-decisive first answer), and so on. The first decisive answer wins and
// every other attempt is cancelled via context. With hedging disabled this
// degrades to sequential failover.
func (rt *Router) hedgedDo(ctx context.Context, reps []*replica, req proxyReq) proxyRes {
	if len(reps) == 0 {
		return proxyRes{err: fmt.Errorf("shard: no replicas")}
	}
	attemptCtx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	results := make(chan proxyRes, len(reps))
	next := 0
	launch := func() {
		rep := reps[next]
		next++
		go func() { results <- rt.attempt(attemptCtx, rep, req) }()
	}
	launch()
	inFlight := 1

	var hedgeC <-chan time.Time
	if d := rt.hedgeDelay(reps[0]); d > 0 && len(reps) > 1 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		hedgeC = timer.C
	}
	hedged := false
	var last proxyRes
	for {
		select {
		case res := <-results:
			inFlight--
			if decisive(res) {
				if hedged && res.rep != reps[0] {
					rt.hedgeWins.Add(1)
				}
				return res
			}
			last = res
			if next < len(reps) {
				launch()
				inFlight++
			} else if inFlight == 0 {
				return last
			}
		case <-hedgeC:
			hedgeC = nil
			if next < len(reps) {
				hedged = true
				rt.hedges.Add(1)
				launch()
				inFlight++
			}
		case <-ctx.Done():
			return proxyRes{err: ctx.Err()}
		}
	}
}

// unknownRelRe matches the service's "unknown relation" 400 body and
// captures the relation name — the signal that a shard the ring routes to
// is missing data it should own. The body is JSON, so the quotes around the
// name arrive backslash-escaped.
var unknownRelRe = regexp.MustCompile(`unknown relation \\?"([^"\\]+)\\?"`)

func unknownRelation(res proxyRes) (string, bool) {
	if res.err != nil || res.status != http.StatusBadRequest {
		return "", false
	}
	m := unknownRelRe.FindSubmatch(res.body)
	if m == nil {
		return "", false
	}
	return string(m[1]), true
}

// routedDo is hedgedDo plus in-band healing: when the winning shard answers
// "unknown relation", the router mirrors the missing relation onto that
// shard (fetching its points from a peer; a warm restore when shards share
// a catalog cache) and retries there. Two rounds cover a join missing both
// sides. A relation no peer has is not healable and the 400 stands.
func (rt *Router) routedDo(ctx context.Context, reps []*replica, req proxyReq) proxyRes {
	return rt.routedDoN(ctx, reps, req, 2)
}

// routedDoN is routedDo with an explicit heal budget: requests referencing
// n relations need up to n mirror-and-retry rounds, one per relation the
// winning shard might be missing.
func (rt *Router) routedDoN(ctx context.Context, reps []*replica, req proxyReq, rounds int) proxyRes {
	res := rt.hedgedDo(ctx, reps, req)
	for tries := 0; tries < rounds; tries++ {
		name, ok := unknownRelation(res)
		if !ok || res.rep == nil {
			return res
		}
		if err := rt.mirror(ctx, res.rep, name, nil); err != nil {
			rt.opt.logger().Printf("shard: mirroring %q to %s: %v", name, res.rep.id, err)
			return res
		}
		res = rt.do(ctx, res.rep, req)
	}
	return res
}

// mirror copies one relation onto target: fetch its points from a peer that
// has them, register them on target, and wait for the build to publish.
// Registration is by the original point data, so the target builds (or
// warm-restores from a shared cache) catalogs bit-identical to the
// source's. Concurrent mirrors of the same relation to the same shard are
// collapsed into one.
// mirror copies relation name onto target. With a nil source the points are
// fetched from whichever peer has them (read-path healing after a rebalance).
// A non-nil source pins the fetch to that replica and fails if it cannot
// serve: mutation-path heals rely on the dump including a write the source
// just applied, so falling back to an arbitrary peer could silently drop it.
func (rt *Router) mirror(ctx context.Context, target *replica, name string, source *replica) error {
	key := target.id + "/" + name
	var ch chan struct{}
	for ch == nil {
		rt.mirrorMu.Lock()
		if inflight, ok := rt.mirrors[key]; ok {
			rt.mirrorMu.Unlock()
			select {
			case <-inflight:
				if source == nil {
					return nil // the other mirror finished; the caller's retry observes the outcome
				}
				// A source-pinned heal needs a dump taken after its write
				// landed on the source; the mirror that just finished may
				// predate it, so loop and run our own.
			case <-ctx.Done():
				return ctx.Err()
			}
			continue
		}
		ch = make(chan struct{})
		rt.mirrors[key] = ch
		rt.mirrorMu.Unlock()
	}
	defer func() {
		rt.mirrorMu.Lock()
		delete(rt.mirrors, key)
		rt.mirrorMu.Unlock()
		close(ch)
	}()

	mctx, cancel := context.WithTimeout(ctx, rt.opt.MirrorTimeout)
	defer cancel()
	body, err := rt.fetchPoints(mctx, target, name, source)
	if err != nil {
		return err
	}
	// The points dump is shaped exactly like a registration body, so it
	// round-trips verbatim.
	res := rt.do(mctx, target, proxyReq{
		method: http.MethodPost, pathQuery: "/relations",
		body: body, contentType: "application/json",
	})
	if res.err != nil {
		return fmt.Errorf("registering on %s: %w", target.id, res.err)
	}
	if res.status != http.StatusAccepted {
		return fmt.Errorf("registering on %s: status %d: %s", target.id, res.status, truncate(res.body))
	}
	if err := rt.waitReady(mctx, target, name); err != nil {
		return err
	}
	rt.restores.Add(1)
	return nil
}

// fetchPoints finds a peer that has the relation's points and returns the
// dump. With a nil source, ring owners are probed first (they normally have
// it), then every other shard — after a rebalance the old owner is usually
// not an owner anymore. A non-nil source is probed exclusively: the caller
// needs that specific replica's logical points, and any other peer's dump
// could be stale.
func (rt *Router) fetchPoints(ctx context.Context, target *replica, name string, source *replica) ([]byte, error) {
	var order []*replica
	if source != nil {
		order = []*replica{source}
	} else {
		probed := map[string]bool{target.id: true}
		for _, rep := range rt.ownersFor(name) {
			if !probed[rep.id] {
				probed[rep.id] = true
				order = append(order, rep)
			}
		}
		for _, rep := range rt.allReplicas() {
			if !probed[rep.id] {
				probed[rep.id] = true
				order = append(order, rep)
			}
		}
	}
	var lastErr error = fmt.Errorf("no peer has relation %q", name)
	for _, rep := range order {
		res := rt.do(ctx, rep, proxyReq{method: http.MethodGet, pathQuery: "/relations/" + name + "/points"})
		if res.err == nil && res.status == http.StatusOK {
			return res.body, nil
		}
		if res.err != nil {
			lastErr = fmt.Errorf("points from %s: %w", rep.id, res.err)
		}
	}
	return nil, lastErr
}

// waitReady polls the target's status endpoint until the relation is ready.
func (rt *Router) waitReady(ctx context.Context, target *replica, name string) error {
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		res := rt.do(ctx, target, proxyReq{method: http.MethodGet, pathQuery: "/relations/" + name + "/status"})
		if res.err == nil && res.status == http.StatusOK {
			var st struct {
				State string `json:"state"`
				Error string `json:"error"`
			}
			if json.Unmarshal(res.body, &st) == nil {
				switch st.State {
				case "ready":
					return nil
				case "failed":
					return fmt.Errorf("build of %q failed on %s: %s", name, target.id, st.Error)
				}
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("waiting for %q on %s: %w", name, target.id, ctx.Err())
		case <-tick.C:
		}
	}
}

// --- response plumbing -------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("shard: encoding %T response: %v", v, err)
	}
}

func badRequest(w http.ResponseWriter, format string, args ...any) {
	writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeProxied relays one shard answer to the client, preserving the
// headers that carry meaning across the hop.
func writeProxied(w http.ResponseWriter, res proxyRes) {
	if res.err != nil {
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": "upstream: " + res.err.Error()})
		return
	}
	for _, h := range []string{"Content-Type", "Retry-After", "Allow"} {
		if v := res.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

func truncate(b []byte) string {
	const max = 200
	if len(b) > max {
		return string(b[:max]) + "..."
	}
	return string(b)
}

// --- handlers ----------------------------------------------------------------

// handleTechniques answers locally: the technique registry is compiled into
// the router and identical to every shard's, so the listing needs no hop.
func (rt *Router) handleTechniques(w http.ResponseWriter, _ *http.Request) {
	var resp service.TechniquesResponse
	for _, t := range engine.SelectTechniques() {
		resp.Select = append(resp.Select, service.TechniqueInfo{
			Name: t.Name, Aliases: t.Aliases, Summary: t.Summary, Preprocessed: t.Preprocessed,
		})
	}
	for _, t := range engine.JoinTechniques() {
		resp.Join = append(resp.Join, service.TechniqueInfo{
			Name: t.Name, Aliases: t.Aliases, Summary: t.Summary, Preprocessed: t.Preprocessed,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSelect routes single-relation reads (/estimate/select,
// /cost/select) to the relation's replicas, hedged.
func (rt *Router) handleSelect(w http.ResponseWriter, r *http.Request) {
	rel := r.URL.Query().Get("rel")
	if rel == "" {
		badRequest(w, "unknown relation %q", rel)
		return
	}
	writeProxied(w, rt.routedDo(r.Context(), rt.replicasFor(rel), clientReq(r)))
}

// handleJoin routes pair reads (/estimate/join, /cost/join). A shard owning
// both sides answers directly; otherwise the outer's owners answer after
// the router mirrors the missing side onto the winner.
func (rt *Router) handleJoin(w http.ResponseWriter, r *http.Request) {
	outer := r.URL.Query().Get("outer")
	inner := r.URL.Query().Get("inner")
	if outer == "" || inner == "" {
		name := outer
		if outer != "" {
			name = inner
		}
		badRequest(w, "unknown relation %q", name)
		return
	}
	writeProxied(w, rt.routedDo(r.Context(), rt.pairReplicas(outer, inner), clientReq(r)))
}

// pairReplicas orders the candidate shards of a join: shards owning both
// relations first (no mirror needed), then the outer's remaining owners.
func (rt *Router) pairReplicas(outer, inner string) []*replica {
	return rt.groupReplicas([]string{outer, inner})
}

// groupReplicas generalizes pairReplicas to any number of relations: the
// first relation's replicas ordered fastest-first, with shards that own
// every listed relation promoted to the front — they can answer without a
// mirror. Shards missing some relation stay reachable behind them; routedDoN
// heals them one relation per round when they win.
func (rt *Router) groupReplicas(names []string) []*replica {
	first := rt.replicasFor(names[0])
	if len(names) == 1 {
		return first
	}
	owns := map[string]int{}
	for _, name := range names[1:] {
		for _, rep := range rt.ownersFor(name) {
			owns[rep.id]++
		}
	}
	all := make([]*replica, 0, len(first))
	rest := make([]*replica, 0, len(first))
	for _, rep := range first {
		if owns[rep.id] == len(names)-1 {
			all = append(all, rep)
		} else {
			rest = append(rest, rep)
		}
	}
	return append(all, rest...)
}

// handleRelationGet routes /relations/{name}/status and …/points to the
// relation's owners, falling through to the remaining shards when the
// owners do not know the name — right after a rebalance the data still
// lives on the old owner.
func (rt *Router) handleRelationGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	req := clientReq(r)
	res := rt.hedgedDo(r.Context(), rt.replicasFor(name), req)
	if res.err == nil && res.status == http.StatusOK {
		writeProxied(w, res)
		return
	}
	owned := map[string]bool{}
	for _, rep := range rt.ownersFor(name) {
		owned[rep.id] = true
	}
	for _, rep := range rt.allReplicas() {
		if owned[rep.id] {
			continue
		}
		if other := rt.do(r.Context(), rep, req); other.err == nil && other.status == http.StatusOK {
			writeProxied(w, other)
			return
		}
	}
	writeProxied(w, res)
}

// handleRelations scatter-gathers the listing from every shard and merges
// it: one row per relation name, owners preferred over mirrors, sorted.
func (rt *Router) handleRelations(w http.ResponseWriter, r *http.Request) {
	reps := rt.allReplicas()
	req := clientReq(r)
	type shardList struct {
		rep  *replica
		rows []service.RelationInfo
	}
	results := make([]shardList, len(reps))
	var wg sync.WaitGroup
	for i, rep := range reps {
		wg.Add(1)
		go func(i int, rep *replica) {
			defer wg.Done()
			res := rt.do(r.Context(), rep, req)
			if res.err != nil || res.status != http.StatusOK {
				return
			}
			var rows []service.RelationInfo
			if json.Unmarshal(res.body, &rows) == nil {
				results[i] = shardList{rep: rep, rows: rows}
			}
		}(i, rep)
	}
	wg.Wait()

	ring, _ := rt.topology()
	merged := map[string]service.RelationInfo{}
	fromOwner := map[string]bool{}
	for _, sl := range results {
		if sl.rep == nil {
			continue
		}
		for _, row := range sl.rows {
			isOwner := false
			for _, id := range ring.Owners(row.Name, rt.opt.Replicas) {
				if id == sl.rep.id {
					isOwner = true
					break
				}
			}
			if _, seen := merged[row.Name]; !seen || (isOwner && !fromOwner[row.Name]) {
				merged[row.Name] = row
				fromOwner[row.Name] = isOwner
			}
		}
	}
	out := make([]service.RelationInfo, 0, len(merged))
	for _, row := range merged {
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

// maxRegisterBody mirrors the service's registration body bound.
const maxRegisterBody = 16 << 20

// handleRegister fans a registration out to every owner of the relation so
// replica fan-out holds from the moment of registration. The primary's
// answer is the client's answer.
func (rt *Router) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRegisterBody))
	if err != nil {
		badRequest(w, "reading registration: %v", err)
		return
	}
	var req service.RegisterRequest
	if err := json.Unmarshal(body, &req); err != nil {
		badRequest(w, "decoding registration: %v", err)
		return
	}
	preq := proxyReq{
		method: http.MethodPost, pathQuery: "/relations",
		body: body, contentType: "application/json",
	}
	owners := rt.ownersFor(req.Name)
	results := make([]proxyRes, len(owners))
	var wg sync.WaitGroup
	for i, rep := range owners {
		wg.Add(1)
		go func(i int, rep *replica) {
			defer wg.Done()
			results[i] = rt.do(r.Context(), rep, preq)
		}(i, rep)
	}
	wg.Wait()
	// The primary's answer wins; a replica failure is logged, not fatal —
	// the mirror path heals a missing replica on first contact.
	for i, res := range results[1:] {
		if res.err != nil || res.status >= 300 {
			rt.opt.logger().Printf("shard: registering %q on replica %s: status %d err %v",
				req.Name, owners[i+1].id, res.status, res.err)
		}
	}
	writeProxied(w, results[0])
}

// handleDrop fans the drop out to every shard: mirrors created by join
// colocation or past rebalances can live anywhere.
func (rt *Router) handleDrop(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	req := clientReq(r)
	reps := rt.allReplicas()
	results := make([]proxyRes, len(reps))
	var wg sync.WaitGroup
	for i, rep := range reps {
		wg.Add(1)
		go func(i int, rep *replica) {
			defer wg.Done()
			results[i] = rt.do(r.Context(), rep, req)
		}(i, rep)
	}
	wg.Wait()
	dropped := false
	for _, res := range results {
		if res.err == nil && res.status == http.StatusNoContent {
			dropped = true
		}
	}
	if dropped {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("unknown relation %q", name)})
}

// mutationUnknownRe matches the mutation endpoints' 404 body ("store:
// unknown relation: \"name\"") — the signal that an owner is missing a
// relation it should hold a replica of.
var mutationUnknownRe = regexp.MustCompile(`unknown relation:? \\?"`)

func mutationUnknown(res proxyRes) bool {
	return res.err == nil && res.status == http.StatusNotFound && mutationUnknownRe.Match(res.body)
}

// handleMutatePoints fans a point mutation (append or delete) out to every
// owner of the relation, primary first: the primary is the authoritative
// copy — its answer is the client's answer, and a secondary that turns out
// to be missing the relation (the moment after a rebalance) is healed by
// mirroring the primary's logical points, which already include this write,
// so the heal does not replay it. A missing primary is healed from a peer
// BEFORE the write applies anywhere, then retried — once — so the write
// lands exactly once there too.
//
// Secondaries apply the same mutation concurrently; a secondary failure is
// logged, not fatal (the next heal re-converges it from the primary).
// Writes deliberately ignore breaker state: durability needs the
// deterministic ring owners, not the fastest healthy subset.
func (rt *Router) handleMutatePoints(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRegisterBody))
	if err != nil {
		badRequest(w, "reading mutation: %v", err)
		return
	}
	req := proxyReq{
		method: r.Method, pathQuery: "/relations/" + name + "/points",
		body: body, contentType: r.Header.Get("Content-Type"),
	}
	owners := rt.ownersFor(name)
	if len(owners) == 0 {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("unknown relation %q", name)})
		return
	}
	res := rt.attempt(r.Context(), owners[0], req)
	if mutationUnknown(res) {
		// The write has not applied anywhere yet, so any peer's dump is a
		// valid base — the retry below applies the mutation on top of it.
		if merr := rt.mirror(r.Context(), owners[0], name, nil); merr != nil {
			rt.opt.logger().Printf("shard: mirroring %q to primary %s: %v", name, owners[0].id, merr)
			writeProxied(w, res)
			return
		}
		res = rt.do(r.Context(), owners[0], req)
	}
	if res.err != nil || res.status != http.StatusOK {
		writeProxied(w, res)
		return
	}
	var wg sync.WaitGroup
	for _, rep := range owners[1:] {
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			sres := rt.attempt(r.Context(), rep, req)
			if mutationUnknown(sres) {
				// Healing IS the apply here, so the fetch is pinned to the
				// primary — the one replica whose logical points are known
				// to include this mutation. A fallback peer's dump might
				// predate the write and silently drop it; failing leaves
				// the replica unknown, which the next heal re-converges.
				if merr := rt.mirror(r.Context(), rep, name, owners[0]); merr != nil {
					rt.opt.logger().Printf("shard: mirroring %q to %s from primary: %v", name, rep.id, merr)
				}
				return
			}
			if sres.err != nil || sres.status != http.StatusOK {
				rt.opt.logger().Printf("shard: mutating %q on replica %s: status %d err %v",
					name, rep.id, sres.status, sres.err)
			}
		}(rep)
	}
	wg.Wait()
	writeProxied(w, res)
}

// maxBatchBody mirrors the service's batch body bound.
const maxBatchBody = 1 << 20

// handleBatch scatter-gathers one batch across the relation's replicas:
// the query list is split into contiguous chunks, chunk i starts on
// replica i (spreading load), every chunk keeps the failover and healing
// of routedDo, and the answers are reassembled in query order — so the
// merged result is positionally identical to a single node's.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed,
			map[string]string{"error": fmt.Sprintf("method %s not allowed; use POST", r.Method)})
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		if mt, _, err := mime.ParseMediaType(ct); err != nil || mt != "application/json" {
			writeJSON(w, http.StatusUnsupportedMediaType,
				map[string]string{"error": fmt.Sprintf("Content-Type %q not supported; use application/json", ct)})
			return
		}
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBatchBody))
	if err != nil {
		badRequest(w, "decoding batch request: %v", err)
		return
	}
	var req service.BatchSelectRequest
	if err := json.Unmarshal(body, &req); err != nil {
		badRequest(w, "decoding batch request: %v", err)
		return
	}
	reps := rt.replicasFor(req.Relation)
	start := time.Now()
	if len(reps) < 2 || len(req.Queries) < len(reps) {
		writeProxied(w, rt.routedDo(r.Context(), reps, proxyReq{
			method: http.MethodPost, pathQuery: r.URL.Path,
			body: body, contentType: "application/json",
		}))
		return
	}

	chunks := splitQueries(req.Queries, len(reps))
	// Chunk encoding and response decoding happen inside the per-chunk
	// goroutines: with large batches the JSON work rivals the estimation
	// itself, and keeping it on the scatter path is what lets wall-clock
	// shrink with shard count instead of being bottlenecked on a serial
	// marshal/unmarshal loop in the router.
	type chunkRes struct {
		res       proxyRes
		part      service.BatchSelectResponse
		decodeErr error
	}
	results := make([]chunkRes, len(chunks))
	var wg sync.WaitGroup
	for i := range chunks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sub := req
			sub.Queries = chunks[i]
			subBody, err := json.Marshal(sub)
			if err != nil {
				results[i].decodeErr = fmt.Errorf("encoding chunk %d: %v", i, err)
				return
			}
			res := rt.routedDo(r.Context(), rotate(reps, i), proxyReq{
				method: http.MethodPost, pathQuery: r.URL.Path,
				body: subBody, contentType: "application/json",
			})
			results[i].res = res
			if res.err == nil && res.status == http.StatusOK {
				results[i].decodeErr = json.Unmarshal(res.body, &results[i].part)
			}
		}(i)
	}
	wg.Wait()

	merged := service.BatchSelectResponse{Relation: req.Relation}
	for i, cr := range results {
		if cr.res.err != nil || (cr.res.rep != nil && cr.res.status != http.StatusOK) {
			// One failed chunk fails the batch the way a single node would
			// have failed the whole request.
			writeProxied(w, cr.res)
			return
		}
		if cr.decodeErr != nil {
			id := "?"
			if cr.res.rep != nil {
				id = cr.res.rep.id
			}
			writeJSON(w, http.StatusBadGateway,
				map[string]string{"error": fmt.Sprintf("decoding chunk %d from %s: %v", i, id, cr.decodeErr)})
			return
		}
		merged.Method = cr.part.Method
		merged.Results = append(merged.Results, cr.part.Results...)
	}
	merged.TookNs = time.Since(start).Nanoseconds()
	writeJSON(w, http.StatusOK, merged)
}

// handlePlan routes POST /plan to a shard that can price the whole
// conjunctive query against local snapshots: shards owning every referenced
// relation are preferred (the plan is served in one hop, and the shard's
// plan cache stays hot for the shape), otherwise the first relation's
// owners answer and the router mirrors the missing relations onto the
// winner in-band — one heal round per referenced relation.
func (rt *Router) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed,
			map[string]string{"error": fmt.Sprintf("method %s not allowed; use POST", r.Method)})
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		if mt, _, err := mime.ParseMediaType(ct); err != nil || mt != "application/json" {
			writeJSON(w, http.StatusUnsupportedMediaType,
				map[string]string{"error": fmt.Sprintf("Content-Type %q not supported; use application/json", ct)})
			return
		}
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBatchBody))
	if err != nil {
		badRequest(w, "decoding plan request: %v", err)
		return
	}
	var req service.PlanRequest
	if err := json.Unmarshal(body, &req); err != nil {
		badRequest(w, "decoding plan request: %v", err)
		return
	}
	names := planRelations(req)
	if len(names) == 0 {
		badRequest(w, "plan references no relations")
		return
	}
	pq := r.URL.Path
	if r.URL.RawQuery != "" {
		pq += "?" + r.URL.RawQuery // preserve ?explain=
	}
	writeProxied(w, rt.routedDoN(r.Context(), rt.groupReplicas(names), proxyReq{
		method: http.MethodPost, pathQuery: pq,
		body: body, contentType: "application/json",
	}, len(names)))
}

// planRelations lists the distinct relations a plan request references, in
// first-mention order — the order groupReplicas anchors routing on.
func planRelations(req service.PlanRequest) []string {
	seen := map[string]bool{}
	names := make([]string, 0, len(req.Selects)+2)
	add := func(n string) {
		if n != "" && !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for _, sel := range req.Selects {
		add(sel.Relation)
	}
	if req.Join != nil {
		add(req.Join.Outer)
		add(req.Join.Inner)
	}
	return names
}

// splitQueries partitions queries into n contiguous chunks whose sizes
// differ by at most one, preserving order.
func splitQueries(queries []service.BatchSelectQuery, n int) [][]service.BatchSelectQuery {
	chunks := make([][]service.BatchSelectQuery, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(queries)/n, (i+1)*len(queries)/n
		if lo < hi {
			chunks = append(chunks, queries[lo:hi])
		}
	}
	return chunks
}

// rotate returns reps shifted by i so concurrent chunks start on different
// replicas.
func rotate(reps []*replica, i int) []*replica {
	i %= len(reps)
	out := make([]*replica, 0, len(reps))
	out = append(out, reps[i:]...)
	return append(out, reps[:i]...)
}
