package shard

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"knncost/internal/datagen"
	"knncost/internal/faultinject"
	"knncost/internal/geom"
)

// p99 of a sample of request durations.
func p99(durs []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(0.99*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	return sorted[i]
}

// measure runs n sequential estimate requests and returns their latencies.
func measure(t *testing.T, base, path string, n int) []time.Duration {
	t.Helper()
	durs := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		durs = append(durs, time.Since(start))
	}
	return durs
}

// TestHedgingBoundsTailLatency is the tail-latency acceptance test: with
// heavy latency injected into one of two replicas, hedged requests keep the
// router's p99 within 2x the un-injected baseline (floored at 100ms of
// scheduler slack — the injected fault is 400ms, so the bound still proves
// hedging routed around it, not through it).
func TestHedgingBoundsTailLatency(t *testing.T) {
	const injected = 400 * time.Millisecond

	// slowEstimates delays /estimate traffic on one shard when armed;
	// registration and status stay fast either way.
	var arm atomic.Bool
	slowEstimates := func(next http.Handler) http.Handler {
		inject := faultinject.Middleware(faultinject.Always(faultinject.Fault{Latency: injected}))(next)
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if arm.Load() && strings.HasPrefix(r.URL.Path, "/estimate/") {
				inject.ServeHTTP(w, r)
				return
			}
			next.ServeHTTP(w, r)
		})
	}

	// Make the *ring primary* of the hot relation the replica that will go
	// slow, so hedging (not just fastest-first ordering) is what saves the
	// first requests after the fault starts.
	const rel = "hot"
	ring, err := NewRing([]string{"h1", "h2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	primary := ring.Owner(rel)
	mkShard := func(id string) *testShard {
		if id == primary {
			return newTestShard(t, id, slowEstimates)
		}
		return newTestShard(t, id, nil)
	}
	shards := []*testShard{mkShard("h1"), mkShard("h2")}

	rt, err := New([]Shard{shards[0].shard(), shards[1].shard()}, Options{
		Replicas:        2,
		HedgeAfter:      5 * time.Millisecond,
		HedgePercentile: 0.95,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt)
	defer front.Close()

	pts := datagen.OSMLike(400, 99)
	registerThrough(t, front.URL, map[string][]geom.Point{rel: pts})
	path := fmt.Sprintf("/estimate/select?rel=%s&x=%v&y=%v&k=10", rel, pts[0].X, pts[0].Y)

	// Baseline: both replicas healthy.
	measure(t, front.URL, path, 30) // warm up trackers and connections
	base := p99(measure(t, front.URL, path, 200))

	// Seed the latency trackers so the replica about to go slow is the one
	// the router prefers when the fault arms: the ordering in replicasFor
	// is by observed median, and without this the healthy replica may
	// already be preferred by baseline jitter — which would dodge the
	// hedge machinery this test exists to exercise.
	_, reps := rt.topology()
	for id, rep := range reps {
		seed := 2 * time.Millisecond
		if id == primary {
			seed = 1 * time.Millisecond
		}
		for i := 0; i < 64; i++ {
			rep.lat.observe(seed)
		}
	}

	// Fault on: the primary now answers estimates 400ms late.
	arm.Store(true)
	hedgesBefore := rt.Hedges()
	// A short concurrent burst for race coverage of the hedge machinery
	// while the router is re-learning which replica is fast.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			measure(t, front.URL, path, 5)
		}()
	}
	wg.Wait()
	faulted := p99(measure(t, front.URL, path, 200))

	bound := 2 * base
	if floor := 100 * time.Millisecond; bound < floor {
		bound = floor
	}
	if faulted > bound {
		t.Errorf("p99 with injected %v latency = %v, want <= %v (baseline p99 %v)",
			injected, faulted, bound, base)
	}
	if rt.Hedges() == hedgesBefore {
		t.Error("no hedges fired while the primary replica was injected with latency")
	}
	t.Logf("baseline p99 %v, faulted p99 %v, hedges %d (wins %d)",
		base, faulted, rt.Hedges(), rt.HedgeWins())
}
