package shard

import (
	"sort"
	"sync"
	"time"
)

// latencyWindow is the number of recent observations a tracker keeps. Small
// enough that a percentile is a copy-and-sort of a few hundred bytes, large
// enough to smooth one-off hiccups.
const latencyWindow = 64

// tracker records the recent request latencies of one replica so the router
// can (a) order replicas fastest-first and (b) derive the hedge delay from
// an observed percentile instead of a guess. All methods are safe for
// concurrent use.
type tracker struct {
	mu   sync.Mutex
	ring [latencyWindow]time.Duration
	n    int // observations recorded, up to latencyWindow
	next int // ring write position
}

// observe records one request latency.
func (t *tracker) observe(d time.Duration) {
	t.mu.Lock()
	t.ring[t.next] = d
	t.next = (t.next + 1) % latencyWindow
	if t.n < latencyWindow {
		t.n++
	}
	t.mu.Unlock()
}

// percentile returns the p-th percentile (0 < p <= 1) of the recorded
// window, or 0 when nothing has been observed yet.
func (t *tracker) percentile(p float64) time.Duration {
	t.mu.Lock()
	n := t.n
	buf := make([]time.Duration, n)
	copy(buf, t.ring[:n])
	t.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	i := int(p*float64(n)) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return buf[i]
}

// median is the tie-breaking speed score used to order replicas
// fastest-first.
func (t *tracker) median() time.Duration { return t.percentile(0.5) }
