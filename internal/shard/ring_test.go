package shard

import (
	"fmt"
	"math/rand"
	"testing"
)

func relNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("rel-%04d", i)
	}
	return names
}

func shardIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("shard-%c", 'a'+i)
	}
	return ids
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("NewRing(nil) did not fail")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("NewRing with empty ID did not fail")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Error("NewRing with duplicate ID did not fail")
	}
}

// TestRingDeterministic pins the restart-stability property: a ring is a
// pure function of its shard IDs, so a freshly constructed ring — in a new
// process, from a differently ordered ID list — routes every relation to
// the same shard.
func TestRingDeterministic(t *testing.T) {
	ids := shardIDs(5)
	r1, err := NewRing(ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := append([]string(nil), ids...)
	rand.New(rand.NewSource(7)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	r2, err := NewRing(shuffled, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range relNames(2000) {
		if r1.Owner(rel) != r2.Owner(rel) {
			t.Fatalf("owner of %q differs across identically configured rings: %q vs %q",
				rel, r1.Owner(rel), r2.Owner(rel))
		}
		o1, o2 := r1.Owners(rel, 2), r2.Owners(rel, 2)
		if len(o1) != len(o2) || o1[0] != o2[0] || o1[1] != o2[1] {
			t.Fatalf("owner set of %q differs: %v vs %v", rel, o1, o2)
		}
	}
}

// TestRingGolden pins concrete placements so an accidental change to the
// hash or vnode naming scheme — which would silently remap every deployed
// topology — fails loudly.
func TestRingGolden(t *testing.T) {
	r, err := NewRing([]string{"shard-a", "shard-b", "shard-c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"hotels":      "shard-b",
		"restaurants": "shard-c",
		"bars":        "shard-a",
		"parks":       "shard-a",
	}
	for rel, owner := range want {
		if got := r.Owner(rel); got != owner {
			t.Errorf("Owner(%q) = %q, want %q (hash scheme changed?)", rel, got, owner)
		}
	}
}

// TestRingStability is the consistent-hashing contract: growing or
// shrinking a topology by one shard remaps roughly 1/N of the relations
// and leaves every other placement untouched.
func TestRingStability(t *testing.T) {
	const rels = 4000
	for _, n := range []int{2, 3, 4, 8, 16} {
		t.Run(fmt.Sprintf("grow-%d-to-%d", n, n+1), func(t *testing.T) {
			before, err := NewRing(shardIDs(n), 0)
			if err != nil {
				t.Fatal(err)
			}
			after, err := NewRing(shardIDs(n+1), 0)
			if err != nil {
				t.Fatal(err)
			}
			added := shardIDs(n + 1)[n]
			moved := 0
			for _, rel := range relNames(rels) {
				ob, oa := before.Owner(rel), after.Owner(rel)
				if ob != oa {
					moved++
					// Consistent hashing moves keys only onto the added
					// shard, never between surviving shards.
					if oa != added {
						t.Fatalf("relation %q moved %q → %q, not onto the added shard %q",
							rel, ob, oa, added)
					}
				}
			}
			// The added shard's fair share is 1/(n+1); allow generous
			// sampling slack (2x) but fail on wholesale remapping.
			maxMoved := 2 * rels / (n + 1)
			if moved == 0 || moved > maxMoved {
				t.Errorf("adding 1 of %d shards remapped %d/%d relations (want 1..%d)",
					n, moved, rels, maxMoved)
			}
		})
		t.Run(fmt.Sprintf("shrink-%d-to-%d", n+1, n), func(t *testing.T) {
			before, err := NewRing(shardIDs(n+1), 0)
			if err != nil {
				t.Fatal(err)
			}
			after, err := NewRing(shardIDs(n), 0)
			if err != nil {
				t.Fatal(err)
			}
			removed := shardIDs(n + 1)[n]
			moved := 0
			for _, rel := range relNames(rels) {
				ob, oa := before.Owner(rel), after.Owner(rel)
				if ob != oa {
					moved++
					// Only relations of the removed shard may move.
					if ob != removed {
						t.Fatalf("relation %q moved off surviving shard %q (to %q)", rel, ob, oa)
					}
				}
			}
			maxMoved := 2 * rels / (n + 1)
			if moved == 0 || moved > maxMoved {
				t.Errorf("removing 1 of %d shards remapped %d/%d relations (want 1..%d)",
					n+1, moved, rels, maxMoved)
			}
		})
	}
}

// TestRingBalance checks that virtual nodes spread relations evenly: no
// shard's share strays far from 1/N.
func TestRingBalance(t *testing.T) {
	const rels = 8000
	for _, n := range []int{3, 5, 8} {
		r, err := NewRing(shardIDs(n), 0)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[string]int{}
		for _, rel := range relNames(rels) {
			counts[r.Owner(rel)]++
		}
		fair := rels / n
		for id, c := range counts {
			if c < fair/2 || c > 2*fair {
				t.Errorf("n=%d: shard %s owns %d of %d relations (fair share %d)", n, id, c, rels, fair)
			}
		}
	}
}

func TestRingOwners(t *testing.T) {
	r, err := NewRing(shardIDs(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range relNames(100) {
		owners := r.Owners(rel, 2)
		if len(owners) != 2 {
			t.Fatalf("Owners(%q, 2) = %v", rel, owners)
		}
		if owners[0] == owners[1] {
			t.Fatalf("Owners(%q, 2) repeated shard %q", rel, owners[0])
		}
		if owners[0] != r.Owner(rel) {
			t.Fatalf("Owners(%q, 2)[0] = %q but Owner = %q", rel, owners[0], r.Owner(rel))
		}
		// n beyond the shard count clamps; n < 1 still returns the primary.
		if got := r.Owners(rel, 99); len(got) != 3 {
			t.Fatalf("Owners(%q, 99) = %v, want all 3 shards", rel, got)
		}
		if got := r.Owners(rel, 0); len(got) != 1 || got[0] != r.Owner(rel) {
			t.Fatalf("Owners(%q, 0) = %v, want just the primary", rel, got)
		}
	}
}
