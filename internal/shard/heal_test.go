package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"knncost/internal/datagen"
	"knncost/internal/geom"
	"knncost/internal/service"
)

// TestMutationHealPinnedToPrimary pins the mutation-path heal source: when a
// secondary turns out to be missing the relation, the heal's point dump must
// come from the primary — the one replica known to have applied the write.
// If the primary cannot serve its points, the heal must fail and leave the
// replica without the relation (the next write re-heals it) instead of
// falling back to an arbitrary peer whose stale dump would silently drop
// the write.
func TestMutationHealPinnedToPrimary(t *testing.T) {
	// Per-shard switch that fails the points-dump endpoint on demand.
	blocked := map[string]*atomic.Bool{}
	blockable := func(id string) func(http.Handler) http.Handler {
		flag := &atomic.Bool{}
		blocked[id] = flag
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if flag.Load() && r.Method == http.MethodGet && strings.HasSuffix(r.URL.Path, "/points") {
					http.Error(w, "injected points failure", http.StatusInternalServerError)
					return
				}
				next.ServeHTTP(w, r)
			})
		}
	}
	shards := map[string]*testShard{}
	var defs []Shard
	for _, id := range []string{"p1", "p2", "p3"} {
		ts := newTestShard(t, id, blockable(id))
		shards[id] = ts
		defs = append(defs, ts.shard())
	}
	rt, err := New(defs, Options{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt)
	defer front.Close()

	base := datagen.OSMLike(200, 17)
	registerThrough(t, front.URL, map[string][]geom.Point{"live": base})

	owners := rt.ownersFor("live")
	primary, secondary := shards[owners[0].id], shards[owners[1].id]
	var bystander *testShard
	for id, ts := range shards {
		if id != owners[0].id && id != owners[1].id {
			bystander = ts
		}
	}

	mutate := func(points [][2]float64) {
		t.Helper()
		body, _ := json.Marshal(service.MutateRequest{Points: points})
		req, err := http.NewRequest(http.MethodPost, front.URL+"/relations/live/points", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append: status %d", resp.StatusCode)
		}
	}

	// A stale copy of the relation lives on the non-owner peer — exactly
	// the dump a fallback fetch would pick up, minus the incoming write.
	if _, err := bystander.st.Register("live", base); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := bystander.st.WaitReady(ctx, "live"); err != nil {
		t.Fatal(err)
	}

	// The secondary loses the relation and the primary's dump endpoint
	// fails: the heal has nowhere trustworthy to copy from and must give
	// up, not register the bystander's stale points.
	if !secondary.st.Drop("live") {
		t.Fatal("drop on secondary failed")
	}
	blocked[owners[0].id].Store(true)
	mutate([][2]float64{{42.5, 43.5}})
	if _, err := secondary.st.LogicalPoints("live"); err == nil {
		t.Fatal("secondary healed from a stale peer; the write was silently dropped there")
	}

	// Once the primary can serve points again, the next write's heal copies
	// the authoritative sequence and both owners converge.
	blocked[owners[0].id].Store(false)
	mutate([][2]float64{{44.5, 45.5}})
	a, err := primary.st.LogicalPoints("live")
	if err != nil {
		t.Fatal(err)
	}
	b, err := secondary.st.LogicalPoints("live")
	if err != nil {
		t.Fatalf("secondary still missing relation after heal: %v", err)
	}
	if len(a) != len(base)+2 || len(b) != len(a) {
		t.Fatalf("owners diverge after heal: %d vs %d points (want %d)", len(a), len(b), len(base)+2)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("owners diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
