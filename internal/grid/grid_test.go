package grid

import (
	"math/rand"
	"testing"
	"testing/quick"

	"knncost/internal/geom"
)

func TestBuildAndCounts(t *testing.T) {
	bounds := geom.NewRect(0, 0, 10, 10)
	pts := []geom.Point{
		{X: 0.5, Y: 0.5}, // cell (0,0)
		{X: 9.5, Y: 9.5}, // cell (1,1) in a 2×2 grid
		{X: 0.5, Y: 9.5}, // cell (0,1)
		{X: 10, Y: 10},   // far boundary -> last cell
	}
	g := Build(pts, bounds, 2, 2)
	if g.Len() != 4 {
		t.Fatalf("Len = %d, want 4", g.Len())
	}
	ix := g.Index()
	if err := ix.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if ix.NumBlocks() != 4 {
		t.Fatalf("NumBlocks = %d, want 4", ix.NumBlocks())
	}
	// Row-major: (0,0) (1,0) (0,1) (1,1).
	wantCounts := []int{1, 0, 1, 2}
	for i, b := range ix.Blocks() {
		if b.Count != wantCounts[i] {
			t.Errorf("cell %d count = %d, want %d", i, b.Count, wantCounts[i])
		}
	}
}

func TestInsertOutside(t *testing.T) {
	g := New(geom.NewRect(0, 0, 1, 1), 2, 2)
	if err := g.Insert(geom.Point{X: 2, Y: 2}); err == nil {
		t.Error("Insert outside bounds should fail")
	}
}

func TestNewPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(geom.NewRect(0, 0, 1, 1), 0, 2) },
		func() { New(geom.Rect{}, 2, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCellBoundsTileExactly(t *testing.T) {
	bounds := geom.NewRect(-3, 2, 7, 12)
	cells := Cells(bounds, 4, 5)
	if len(cells) != 20 {
		t.Fatalf("Cells returned %d rects, want 20", len(cells))
	}
	var area float64
	for _, c := range cells {
		if !bounds.ContainsRect(c) {
			t.Errorf("cell %v exceeds bounds", c)
		}
		area += c.Area()
	}
	if diff := area - bounds.Area(); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("cell areas sum to %g, want %g", area, bounds.Area())
	}
	// Outer edges must snap to the exact bounds.
	last := cells[len(cells)-1]
	if last.Max != bounds.Max {
		t.Errorf("last cell max %v, want %v", last.Max, bounds.Max)
	}
}

func TestIndexFindMatchesCell(t *testing.T) {
	bounds := geom.NewRect(0, 0, 100, 100)
	rng := rand.New(rand.NewSource(1))
	var pts []geom.Point
	for i := 0; i < 500; i++ {
		pts = append(pts, geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100})
	}
	g := Build(pts, bounds, 10, 10)
	ix := g.Index()
	for _, p := range pts[:100] {
		b := ix.Find(p)
		if b == nil || !b.Bounds.Contains(p) {
			t.Fatalf("Find(%v) = %v", p, b)
		}
	}
}

// Property: every inserted point lands in exactly one cell whose bounds
// contain it, and cell counts sum to the total.
func TestCellAssignmentProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		nx, ny := 1+local.Intn(12), 1+local.Intn(12)
		bounds := geom.NewRect(0, 0, 1+local.Float64()*100, 1+local.Float64()*100)
		n := local.Intn(500)
		g := New(bounds, nx, ny)
		for i := 0; i < n; i++ {
			p := geom.Point{
				X: bounds.Min.X + local.Float64()*bounds.Width(),
				Y: bounds.Min.Y + local.Float64()*bounds.Height(),
			}
			if g.Insert(p) != nil {
				return false
			}
		}
		ix := g.Index()
		if ix.NumPoints() != n || ix.NumBlocks() != nx*ny {
			return false
		}
		for _, b := range ix.Blocks() {
			for _, p := range b.Points {
				if !b.Bounds.Contains(p) {
					return false
				}
			}
		}
		return ix.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}
