// Package grid implements a uniform G×G grid index. The paper uses grids in
// two roles: as an admissible space-partitioning auxiliary index for the
// staircase catalogs (§3.3 names "quadtree or grid"), and as the virtual
// grid whose cells carry the locality catalogs of the Virtual-Grid join
// estimator (§4.3).
package grid

import (
	"fmt"

	"knncost/internal/geom"
	"knncost/internal/index"
)

// Grid is a uniform decomposition of a bounded region into nx × ny equal
// cells, each cell being one index block.
type Grid struct {
	bounds geom.Rect
	nx, ny int
	cells  [][]geom.Point // row-major: cells[row*nx+col]
	size   int
}

// New creates an empty nx × ny grid over bounds. It panics when nx or ny is
// not positive or bounds is degenerate, which indicates a caller bug.
func New(bounds geom.Rect, nx, ny int) *Grid {
	if nx <= 0 || ny <= 0 {
		panic(fmt.Sprintf("grid: non-positive dimensions %d×%d", nx, ny))
	}
	if bounds.Width() <= 0 || bounds.Height() <= 0 {
		panic(fmt.Sprintf("grid: degenerate bounds %v", bounds))
	}
	return &Grid{bounds: bounds, nx: nx, ny: ny, cells: make([][]geom.Point, nx*ny)}
}

// Build creates an nx × ny grid over bounds holding pts. Points outside
// bounds cause a panic, as with the quadtree: the decomposed region is fixed.
func Build(pts []geom.Point, bounds geom.Rect, nx, ny int) *Grid {
	if bounds == (geom.Rect{}) {
		bounds = geom.BoundsOf(pts)
	}
	g := New(bounds, nx, ny)
	for _, p := range pts {
		if err := g.Insert(p); err != nil {
			panic(err.Error())
		}
	}
	return g
}

// Insert adds p to its cell. It returns an error when p is outside the grid
// bounds.
func (g *Grid) Insert(p geom.Point) error {
	if !g.bounds.Contains(p) {
		return fmt.Errorf("grid: point %v outside bounds %v", p, g.bounds)
	}
	i := g.cellIndex(p)
	g.cells[i] = append(g.cells[i], p)
	g.size++
	return nil
}

// cellIndex maps p (inside bounds) to its cell slot. Points on the far
// boundary map to the last cell along that axis.
func (g *Grid) cellIndex(p geom.Point) int {
	col := int((p.X - g.bounds.Min.X) / g.bounds.Width() * float64(g.nx))
	row := int((p.Y - g.bounds.Min.Y) / g.bounds.Height() * float64(g.ny))
	col = min(col, g.nx-1)
	row = min(row, g.ny-1)
	return row*g.nx + col
}

// CellBounds returns the rectangle of the cell at the given column and row.
func (g *Grid) CellBounds(col, row int) geom.Rect {
	w := g.bounds.Width() / float64(g.nx)
	h := g.bounds.Height() / float64(g.ny)
	minX := g.bounds.Min.X + float64(col)*w
	minY := g.bounds.Min.Y + float64(row)*h
	r := geom.Rect{
		Min: geom.Point{X: minX, Y: minY},
		Max: geom.Point{X: minX + w, Y: minY + h},
	}
	// Snap the outer edges so that boundary points stay inside the grid
	// despite floating-point rounding.
	if col == g.nx-1 {
		r.Max.X = g.bounds.Max.X
	}
	if row == g.ny-1 {
		r.Max.Y = g.bounds.Max.Y
	}
	return r
}

// Dims returns the number of columns and rows.
func (g *Grid) Dims() (nx, ny int) { return g.nx, g.ny }

// Bounds returns the gridded region.
func (g *Grid) Bounds() geom.Rect { return g.bounds }

// Len returns the number of points stored.
func (g *Grid) Len() int { return g.size }

// Index exports the grid as an index.Tree whose leaves are the cells, in
// row-major order. To keep best-first scans from degenerating into a linear
// pass over all cells, rows are grouped under intermediate nodes.
func (g *Grid) Index() *index.Tree {
	root := &index.Node{Bounds: g.bounds}
	root.Children = make([]*index.Node, 0, g.ny)
	for row := 0; row < g.ny; row++ {
		rowNode := &index.Node{
			Bounds: g.CellBounds(0, row).Union(g.CellBounds(g.nx-1, row)),
		}
		rowNode.Children = make([]*index.Node, 0, g.nx)
		for col := 0; col < g.nx; col++ {
			pts := g.cells[row*g.nx+col]
			rowNode.Children = append(rowNode.Children, &index.Node{
				Bounds: g.CellBounds(col, row),
				Block: &index.Block{
					Bounds: g.CellBounds(col, row),
					Points: pts,
					Count:  len(pts),
				},
			})
		}
		root.Children = append(root.Children, rowNode)
	}
	return index.New(root, true)
}

// Cells returns, for each cell in row-major order, its bounds — a
// convenience for the Virtual-Grid estimator, which attaches one catalog per
// cell.
func Cells(bounds geom.Rect, nx, ny int) []geom.Rect {
	g := New(bounds, nx, ny)
	out := make([]geom.Rect, 0, nx*ny)
	for row := 0; row < ny; row++ {
		for col := 0; col < nx; col++ {
			out = append(out, g.CellBounds(col, row))
		}
	}
	return out
}
