// Package rtree implements an R-tree over points, the data-partitioning
// index family the paper names as an admissible data index (§2, §3.3).
// Construction uses Sort-Tile-Recursive (STR) bulk loading, which yields
// well-shaped leaf pages; dynamic insertion with quadratic node splitting is
// also provided.
//
// Because R-tree leaves are minimum bounding rectangles rather than a tiling
// of space, a query point can fall outside every block. The staircase
// estimator therefore pairs an R-tree data index with a space-partitioning
// auxiliary index, exactly as §3.3 prescribes; this package only needs to
// export its leaf hierarchy as an index.Tree.
package rtree

import (
	"fmt"
	"sort"

	"knncost/internal/geom"
	"knncost/internal/index"
)

// DefaultLeafCapacity is the default maximum number of points per leaf.
const DefaultLeafCapacity = 512

// DefaultFanout is the default maximum number of children per internal node.
const DefaultFanout = 16

// Options configure tree construction.
type Options struct {
	// LeafCapacity is the maximum number of points per leaf block. Zero
	// means DefaultLeafCapacity.
	LeafCapacity int
	// Fanout is the maximum number of children per internal node. Zero
	// means DefaultFanout. Values below 2 are rejected.
	Fanout int
}

func (o Options) withDefaults() (Options, error) {
	if o.LeafCapacity == 0 {
		o.LeafCapacity = DefaultLeafCapacity
	}
	if o.Fanout == 0 {
		o.Fanout = DefaultFanout
	}
	if o.LeafCapacity < 1 {
		return o, fmt.Errorf("rtree: leaf capacity %d < 1", o.LeafCapacity)
	}
	if o.Fanout < 2 {
		return o, fmt.Errorf("rtree: fanout %d < 2", o.Fanout)
	}
	return o, nil
}

type node struct {
	bounds   geom.Rect
	children []*node      // internal
	points   []geom.Point // leaf
	leaf     bool
}

// Tree is an R-tree over points.
type Tree struct {
	root *node
	opt  Options
	size int
}

// Build bulk-loads an R-tree over pts using the STR algorithm: points are
// sorted by x, cut into vertical slices, each slice sorted by y and cut into
// runs of LeafCapacity points; the resulting leaves are packed bottom-up
// into internal levels of at most Fanout children.
func Build(pts []geom.Point, opt Options) (*Tree, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	t := &Tree{opt: opt, size: len(pts)}
	if len(pts) == 0 {
		t.root = &node{leaf: true}
		return t, nil
	}
	owned := make([]geom.Point, len(pts))
	copy(owned, pts)
	leaves := strLeaves(owned, opt.LeafCapacity)
	t.root = packLevels(leaves, opt.Fanout)
	return t, nil
}

// strLeaves tiles pts into leaf nodes of at most capacity points each.
func strLeaves(pts []geom.Point, capacity int) []*node {
	n := len(pts)
	numLeaves := (n + capacity - 1) / capacity
	// Number of vertical slices: ceil(sqrt(numLeaves)).
	slices := 1
	for slices*slices < numLeaves {
		slices++
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		return pts[i].Y < pts[j].Y
	})
	perSlice := (n + slices - 1) / slices
	var leaves []*node
	for start := 0; start < n; start += perSlice {
		end := start + perSlice
		if end > n {
			end = n
		}
		slice := pts[start:end]
		sort.Slice(slice, func(i, j int) bool {
			if slice[i].Y != slice[j].Y {
				return slice[i].Y < slice[j].Y
			}
			return slice[i].X < slice[j].X
		})
		for ls := 0; ls < len(slice); ls += capacity {
			le := ls + capacity
			if le > len(slice) {
				le = len(slice)
			}
			// Clip capacity so later appends to one leaf cannot
			// overwrite a neighbor sharing the backing array.
			leafPts := slice[ls:le:le]
			leaves = append(leaves, &node{
				bounds: geom.BoundsOf(leafPts),
				points: leafPts,
				leaf:   true,
			})
		}
	}
	return leaves
}

// packLevels groups nodes into parents of at most fanout children until a
// single root remains.
func packLevels(level []*node, fanout int) *node {
	for len(level) > 1 {
		var next []*node
		for start := 0; start < len(level); start += fanout {
			end := start + fanout
			if end > len(level) {
				end = len(level)
			}
			children := level[start:end:end]
			parent := &node{children: children, bounds: children[0].bounds}
			for _, c := range children[1:] {
				parent.bounds = parent.bounds.Union(c.bounds)
			}
			next = append(next, parent)
		}
		level = next
	}
	return level[0]
}

// Insert adds p to the tree, choosing at each level the child whose bounds
// require the least enlargement and splitting overfull leaves with the
// quadratic split heuristic of Guttman's original R-tree.
func (t *Tree) Insert(p geom.Point) {
	t.size++
	if t.size == 1 && len(t.root.points) == 0 && len(t.root.children) == 0 {
		t.root.points = append(t.root.points, p)
		t.root.bounds = geom.Rect{Min: p, Max: p}
		return
	}
	if split := t.insert(t.root, p); split != nil {
		old := t.root
		t.root = &node{
			children: []*node{old, split},
			bounds:   old.bounds.Union(split.bounds),
		}
	}
}

// insert descends to a leaf, then splits on the way back up. It returns the
// new sibling when n was split, else nil.
func (t *Tree) insert(n *node, p geom.Point) *node {
	n.bounds = n.bounds.Expand(p)
	if n.leaf {
		n.points = append(n.points, p)
		if len(n.points) > t.opt.LeafCapacity {
			return t.splitLeaf(n)
		}
		return nil
	}
	best := chooseChild(n.children, p)
	if split := t.insert(best, p); split != nil {
		n.children = append(n.children, split)
		if len(n.children) > t.opt.Fanout {
			return t.splitInternal(n)
		}
	}
	return nil
}

// chooseChild picks the child needing least area enlargement to include p,
// breaking ties by smaller area.
func chooseChild(children []*node, p geom.Point) *node {
	best := children[0]
	bestEnl, bestArea := enlargement(best.bounds, p), best.bounds.Area()
	for _, c := range children[1:] {
		enl, area := enlargement(c.bounds, p), c.bounds.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = c, enl, area
		}
	}
	return best
}

func enlargement(r geom.Rect, p geom.Point) float64 {
	return r.Expand(p).Area() - r.Area()
}

// splitLeaf performs a quadratic split of an overfull leaf and returns the
// new sibling.
func (t *Tree) splitLeaf(n *node) *node {
	pts := n.points
	// Seeds: the pair wasting the most area if grouped together.
	var s1, s2 int
	worst := -1.0
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			r := geom.Rect{Min: pts[i], Max: pts[i]}.Expand(pts[j])
			if w := r.Area(); w > worst {
				worst, s1, s2 = w, i, j
			}
		}
	}
	g1 := []geom.Point{pts[s1]}
	g2 := []geom.Point{pts[s2]}
	b1 := geom.Rect{Min: pts[s1], Max: pts[s1]}
	b2 := geom.Rect{Min: pts[s2], Max: pts[s2]}
	for i, p := range pts {
		if i == s1 || i == s2 {
			continue
		}
		d1 := enlargement(b1, p)
		d2 := enlargement(b2, p)
		if d1 < d2 || (d1 == d2 && len(g1) <= len(g2)) {
			g1 = append(g1, p)
			b1 = b1.Expand(p)
		} else {
			g2 = append(g2, p)
			b2 = b2.Expand(p)
		}
	}
	n.points, n.bounds = g1, b1
	return &node{points: g2, bounds: b2, leaf: true}
}

// splitInternal splits an overfull internal node in half along the axis with
// the larger spread of child centers and returns the new sibling.
func (t *Tree) splitInternal(n *node) *node {
	children := n.children
	b := children[0].bounds
	for _, c := range children[1:] {
		b = b.Union(c.bounds)
	}
	byX := b.Width() >= b.Height()
	sort.Slice(children, func(i, j int) bool {
		ci, cj := children[i].bounds.Center(), children[j].bounds.Center()
		if byX {
			return ci.X < cj.X
		}
		return ci.Y < cj.Y
	})
	half := len(children) / 2
	left := children[:half:half]
	right := make([]*node, len(children)-half)
	copy(right, children[half:])
	n.children = left
	n.bounds = left[0].bounds
	for _, c := range left[1:] {
		n.bounds = n.bounds.Union(c.bounds)
	}
	sib := &node{children: right, bounds: right[0].bounds}
	for _, c := range right[1:] {
		sib.bounds = sib.bounds.Union(c.bounds)
	}
	return sib
}

// Len returns the number of points stored.
func (t *Tree) Len() int { return t.size }

// Bounds returns the minimum bounding rectangle of all points.
func (t *Tree) Bounds() geom.Rect { return t.root.bounds }

// Index exports a snapshot of the tree as an index.Tree. R-tree leaves do
// not tile space, so the snapshot reports Partitioning() == false.
func (t *Tree) Index() *index.Tree {
	var conv func(n *node) *index.Node
	conv = func(n *node) *index.Node {
		out := &index.Node{Bounds: n.bounds}
		if n.leaf {
			out.Block = &index.Block{
				Bounds: n.bounds,
				Points: n.points,
				Count:  len(n.points),
			}
			return out
		}
		out.Children = make([]*index.Node, len(n.children))
		for i, c := range n.children {
			out.Children[i] = conv(c)
		}
		return out
	}
	return index.New(conv(t.root), false)
}
