package rtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"knncost/internal/geom"
)

func randPoints(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	return pts
}

// collectPoints gathers all points stored in the tree's blocks, sorted.
func collectPoints(t *Tree) []geom.Point {
	var out []geom.Point
	for _, b := range t.Index().Blocks() {
		out = append(out, b.Points...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].X != out[j].X {
			return out[i].X < out[j].X
		}
		return out[i].Y < out[j].Y
	})
	return out
}

func samePoints(a, b []geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSTRBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randPoints(rng, 5000)
	tr, err := Build(pts, Options{LeafCapacity: 100, Fanout: 8})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 5000 {
		t.Fatalf("Len = %d, want 5000", tr.Len())
	}
	ix := tr.Index()
	if err := ix.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if ix.Partitioning() {
		t.Error("R-tree index must not claim space partitioning")
	}
	for _, b := range ix.Blocks() {
		if b.Count > 100 {
			t.Errorf("leaf holds %d points, capacity 100", b.Count)
		}
	}
	// STR should produce close to n/capacity leaves.
	if got := ix.NumBlocks(); got < 50 || got > 80 {
		t.Errorf("NumBlocks = %d, want ~50-80 for 5000 points at capacity 100", got)
	}
	sorted := make([]geom.Point, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	if !samePoints(collectPoints(tr), sorted) {
		t.Error("tree does not store exactly the input points")
	}
}

func TestBuildEmpty(t *testing.T) {
	tr, err := Build(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || tr.Index().NumBlocks() != 1 {
		t.Fatalf("empty tree: Len=%d blocks=%d", tr.Len(), tr.Index().NumBlocks())
	}
}

func TestBadOptions(t *testing.T) {
	if _, err := Build(nil, Options{LeafCapacity: -1}); err == nil {
		t.Error("negative capacity should be rejected")
	}
	if _, err := Build(nil, Options{Fanout: 1}); err == nil {
		t.Error("fanout 1 should be rejected")
	}
}

func TestDynamicInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randPoints(rng, 2000)
	tr, err := Build(nil, Options{LeafCapacity: 32, Fanout: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		tr.Insert(p)
	}
	if tr.Len() != 2000 {
		t.Fatalf("Len = %d, want 2000", tr.Len())
	}
	ix := tr.Index()
	if err := ix.Validate(); err != nil {
		t.Fatalf("Validate after inserts: %v", err)
	}
	for _, b := range ix.Blocks() {
		if b.Count > 32 {
			t.Errorf("leaf exceeds capacity after split: %d", b.Count)
		}
	}
	sorted := make([]geom.Point, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	if !samePoints(collectPoints(tr), sorted) {
		t.Error("dynamic tree does not store exactly the inserted points")
	}
}

func TestInsertIntoBulkLoaded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randPoints(rng, 1000)
	tr, err := Build(pts[:500], Options{LeafCapacity: 32, Fanout: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts[500:] {
		tr.Insert(p)
	}
	ix := tr.Index()
	if err := ix.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if ix.NumPoints() != 1000 {
		t.Fatalf("NumPoints = %d, want 1000", ix.NumPoints())
	}
}

// Property: leaf MBRs contain exactly their points and internal bounds
// contain all descendants (Validate), for any mix of bulk load and inserts.
func TestInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		n := 10 + local.Intn(800)
		pts := randPoints(local, n)
		cut := local.Intn(n)
		tr, err := Build(pts[:cut], Options{LeafCapacity: 16, Fanout: 4})
		if err != nil {
			return false
		}
		for _, p := range pts[cut:] {
			tr.Insert(p)
		}
		ix := tr.Index()
		if ix.Validate() != nil || ix.NumPoints() != n {
			return false
		}
		for _, b := range ix.Blocks() {
			if b.Count > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: a MINDIST scan over the R-tree index yields all blocks in
// non-decreasing distance order (blocks may overlap, the scan must still be
// monotone).
func TestScanOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		pts := randPoints(local, 500)
		tr, err := Build(pts, Options{LeafCapacity: 25, Fanout: 5})
		if err != nil {
			return false
		}
		ix := tr.Index()
		q := geom.Point{X: local.Float64() * 1000, Y: local.Float64() * 1000}
		scan := ix.ScanMinDist(q)
		last, count := -1.0, 0
		for {
			_, d, ok := scan.Next()
			if !ok {
				break
			}
			if d < last-1e-12 {
				return false
			}
			last = d
			count++
		}
		return count == ix.NumBlocks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}
