// Package viz renders datasets and index decompositions to SVG — the
// repository's counterpart of the visualizer the paper's authors "built as
// part of our testbed" to produce Figure 10 (a sample of OpenStreetMap GPS
// data with the region-quadtree decomposition overlaid).
package viz

import (
	"fmt"
	"io"
	"math/rand"

	"knncost/internal/geom"
	"knncost/internal/index"
)

// Options configure rendering.
type Options struct {
	// WidthPx is the image width in pixels; height follows the aspect
	// ratio of the scene bounds. Zero means 1024.
	WidthPx int
	// MaxPoints caps the number of points drawn (sampled uniformly with
	// Seed) so huge datasets stay viewable. Zero means 20000.
	MaxPoints int
	// Seed drives point sampling. The zero seed is valid and
	// deterministic.
	Seed int64
	// PointRadius is the dot radius in pixels. Zero means 1.
	PointRadius float64
	// DrawBlocks draws the leaf-block outlines of the index.
	DrawBlocks bool
}

func (o Options) withDefaults() Options {
	if o.WidthPx == 0 {
		o.WidthPx = 1024
	}
	if o.MaxPoints == 0 {
		o.MaxPoints = 20000
	}
	if o.PointRadius == 0 {
		o.PointRadius = 1
	}
	return o
}

// RenderSVG writes an SVG rendering of pts (and, when opt.DrawBlocks is
// set, the leaf blocks of ix) to w. ix may be nil when only points are
// wanted; pts may be nil to draw only the decomposition. The scene bounds
// come from ix when present, else from the points.
func RenderSVG(w io.Writer, pts []geom.Point, ix *index.Tree, opt Options) error {
	opt = opt.withDefaults()
	bounds := geom.BoundsOf(pts)
	if ix != nil {
		bounds = ix.Bounds()
	}
	if bounds.Width() <= 0 || bounds.Height() <= 0 {
		return fmt.Errorf("viz: degenerate scene bounds %v", bounds)
	}
	widthPx := float64(opt.WidthPx)
	heightPx := widthPx * bounds.Height() / bounds.Width()
	// SVG y grows downward; flip so north stays up.
	tx := func(p geom.Point) (float64, float64) {
		x := (p.X - bounds.Min.X) / bounds.Width() * widthPx
		y := heightPx - (p.Y-bounds.Min.Y)/bounds.Height()*heightPx
		return x, y
	}

	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		widthPx, heightPx, widthPx, heightPx); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		`<rect width="%.0f" height="%.0f" fill="white"/>`+"\n", widthPx, heightPx); err != nil {
		return err
	}

	if ix != nil && opt.DrawBlocks {
		if _, err := fmt.Fprintln(w, `<g stroke="#cc3333" stroke-width="0.6" fill="none">`); err != nil {
			return err
		}
		for _, b := range ix.Blocks() {
			x0, y1 := tx(b.Bounds.Min)
			x1, y0 := tx(b.Bounds.Max)
			if _, err := fmt.Fprintf(w,
				`<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f"/>`+"\n",
				x0, y0, x1-x0, y1-y0); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w, `</g>`); err != nil {
			return err
		}
	}

	sample := pts
	if len(pts) > opt.MaxPoints {
		rng := rand.New(rand.NewSource(opt.Seed))
		sample = make([]geom.Point, opt.MaxPoints)
		for i, j := range rng.Perm(len(pts))[:opt.MaxPoints] {
			sample[i] = pts[j]
		}
	}
	if len(sample) > 0 {
		if _, err := fmt.Fprintln(w, `<g fill="#224488" fill-opacity="0.55">`); err != nil {
			return err
		}
		for _, p := range sample {
			x, y := tx(p)
			if _, err := fmt.Fprintf(w, `<circle cx="%.2f" cy="%.2f" r="%.2f"/>`+"\n",
				x, y, opt.PointRadius); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w, `</g>`); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}
