package viz

import (
	"bytes"
	"strings"
	"testing"

	"knncost/internal/datagen"
	"knncost/internal/geom"
	"knncost/internal/quadtree"
)

func TestRenderSVG(t *testing.T) {
	pts := datagen.OSMLike(2000, 1)
	ix := quadtree.Build(pts, quadtree.Options{
		Capacity: 128, Bounds: datagen.WorldBounds,
	}).Index()
	var buf bytes.Buffer
	err := RenderSVG(&buf, pts, ix, Options{WidthPx: 400, DrawBlocks: true})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("output is not a complete SVG document")
	}
	if n := strings.Count(out, "<circle"); n != 2000 {
		t.Errorf("drew %d points, want 2000", n)
	}
	// One background rect plus one per block.
	if n := strings.Count(out, "<rect"); n != ix.NumBlocks()+1 {
		t.Errorf("drew %d rects, want %d blocks + background", n, ix.NumBlocks())
	}
}

func TestRenderSVGSamplesLargeDatasets(t *testing.T) {
	pts := datagen.OSMLike(5000, 2)
	var buf bytes.Buffer
	if err := RenderSVG(&buf, pts, nil, Options{MaxPoints: 500}); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "<circle"); n != 500 {
		t.Errorf("drew %d points, want sampled 500", n)
	}
}

func TestRenderSVGDeterministic(t *testing.T) {
	pts := datagen.OSMLike(3000, 3)
	var a, b bytes.Buffer
	if err := RenderSVG(&a, pts, nil, Options{MaxPoints: 100, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if err := RenderSVG(&b, pts, nil, Options{MaxPoints: 100, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different renderings")
	}
}

func TestRenderSVGDegenerateBounds(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderSVG(&buf, []geom.Point{{X: 1, Y: 1}}, nil, Options{}); err == nil {
		t.Error("degenerate bounds should be rejected")
	}
}
