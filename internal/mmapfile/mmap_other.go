//go:build !unix

package mmapfile

import "os"

// Open falls back to a plain heap read on platforms without unix mmap.
// The File behaves identically except that Mapped reports false and the
// bytes are heap-resident.
func Open(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &File{data: data}, nil
}

// Close releases the heap copy. Double-Close is a no-op.
func (f *File) Close() error {
	if f.closed.CompareAndSwap(false, true) {
		f.data = nil
	}
	return nil
}
