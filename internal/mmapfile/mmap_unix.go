//go:build unix

package mmapfile

import (
	"os"
	"runtime"
	"syscall"
)

// Open memory-maps path read-only. Empty files yield an empty, unmapped
// File (mmap of length 0 is an error on most systems and there is nothing
// to share anyway).
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return &File{}, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err == syscall.ENOMEM {
		// The process ran out of VMA slots (vm.max_map_count): degrade this
		// file to a heap copy rather than failing the load. Fleets past
		// ~30k relations should raise the sysctl to keep the zero-copy
		// path; see DESIGN.md.
		buf := make([]byte, size)
		if _, err := f.ReadAt(buf, 0); err != nil {
			return nil, err
		}
		return &File{data: buf}, nil
	}
	if err != nil {
		return nil, err
	}
	m := &File{data: data, mapped: true}
	// Unmap when the File becomes unreachable: borrowed artifact slices
	// must therefore keep the File reachable (the store pins it on the
	// snapshot), but a File dropped without Close never leaks the mapping.
	runtime.SetFinalizer(m, func(m *File) { m.unmap() })
	return m, nil
}

// Close unmaps eagerly. It must not be called while borrowed sub-slices of
// Data are still in use. Double-Close is a no-op.
func (f *File) Close() error {
	runtime.SetFinalizer(f, nil)
	return f.unmap()
}

func (f *File) unmap() error {
	if !f.mapped || !f.closed.CompareAndSwap(false, true) {
		return nil
	}
	data := f.data
	f.data = nil
	return syscall.Munmap(data)
}
