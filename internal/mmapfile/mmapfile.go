// Package mmapfile memory-maps files read-only, so the store's disk-cache
// loaders can serve artifact bytes straight from the page cache — shared,
// evictable, and never copied onto the Go heap. On platforms without mmap
// support it degrades transparently to a plain heap read, so callers need
// no build tags of their own.
//
// Lifetime: the mapping stays valid as long as the *File is reachable.
// Close unmaps eagerly; a File that is simply dropped is unmapped by a
// finalizer when the garbage collector proves it unreachable. Callers that
// hand out sub-slices of Data (borrowed catalogs) must keep the File
// reachable alongside them — slices into a mapping do not, by themselves,
// keep it alive. The store does this by pinning the File on the snapshot
// that serves the borrowed artifacts and never calling Close on a mapping
// that escaped into a snapshot.
package mmapfile

import "sync/atomic"

// File is a read-only memory-mapped file (or its heap-read fallback).
type File struct {
	data   []byte
	mapped bool // true when data is an OS mapping, not heap
	closed atomic.Bool
}

// Data returns the file contents. For a mapped File the slice aliases the
// OS mapping: it is read-only (writes fault) and valid until Close.
func (f *File) Data() []byte { return f.data }

// Mapped reports whether the contents are served by an OS mapping rather
// than a heap copy — i.e. whether the zero-copy path is active.
func (f *File) Mapped() bool { return f.mapped }

// Len returns the file length.
func (f *File) Len() int { return len(f.data) }
