package engine

import (
	"math/rand"
	"sync"
	"testing"

	"knncost/internal/core"
	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/quadtree"
)

func testPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	return pts
}

var testBounds = geom.NewRect(0, 0, 100, 100)

func testTree(t *testing.T, n int, seed int64) *index.Tree {
	t.Helper()
	return quadtree.Build(testPoints(n, seed), quadtree.Options{Capacity: 32, Bounds: testBounds}).Index()
}

func TestArtifactsBuildOnce(t *testing.T) {
	rel := NewRelation("r", testTree(t, 2000, 1), BuildOptions{MaxK: 100})
	inner := NewRelation("s", testTree(t, 1500, 2), BuildOptions{MaxK: 100})
	other := NewRelation("t", testTree(t, 1000, 3), BuildOptions{MaxK: 100})

	d1, d2 := rel.Density(), rel.Density()
	if d1 != d2 {
		t.Error("Density built twice")
	}
	cc1, err := rel.Staircase(core.ModeCenterCorners)
	if err != nil {
		t.Fatal(err)
	}
	cc2, _ := rel.Staircase(core.ModeCenterCorners)
	if cc1 != cc2 {
		t.Error("Staircase(CC) built twice")
	}
	c1, err := rel.Staircase(core.ModeCenterOnly)
	if err != nil {
		t.Fatal(err)
	}
	if c1 == cc1 {
		t.Error("Center-Only and Center+Corners share one artifact")
	}
	vg1, err := rel.VirtualGrid()
	if err != nil {
		t.Fatal(err)
	}
	vg2, _ := rel.VirtualGrid()
	if vg1 != vg2 {
		t.Error("VirtualGrid built twice")
	}
	cm1, err := rel.CatalogMerge(inner)
	if err != nil {
		t.Fatal(err)
	}
	cm2, _ := rel.CatalogMerge(inner)
	if cm1 != cm2 {
		t.Error("CatalogMerge built twice for the same inner")
	}
	cmOther, err := rel.CatalogMerge(other)
	if err != nil {
		t.Fatal(err)
	}
	if cmOther == cm1 {
		t.Error("CatalogMerge artifacts for different inners collide")
	}
}

func TestSeedWins(t *testing.T) {
	tree := testTree(t, 2000, 4)
	rel := NewRelation("r", tree, BuildOptions{MaxK: 100})
	inner := NewRelation("s", testTree(t, 1500, 5), BuildOptions{MaxK: 100})

	den := core.NewDensityBased(tree.CountTree())
	stair, err := core.BuildStaircase(tree, core.StaircaseOptions{MaxK: 100, Fallback: den})
	if err != nil {
		t.Fatal(err)
	}
	rel.Seed(TechStaircaseCC, stair)
	got, err := rel.Staircase(core.ModeCenterCorners)
	if err != nil {
		t.Fatal(err)
	}
	if got != stair {
		t.Error("seeded staircase was rebuilt")
	}
	// The by-name path serves the same seeded artifact.
	est, err := rel.SelectEstimator("staircase-cc")
	if err != nil {
		t.Fatal(err)
	}
	if est.(*core.Staircase) != stair {
		t.Error("SelectEstimator bypassed the seeded artifact")
	}

	cm, err := core.BuildCatalogMerge(rel.Count(), inner.Count(), 200, 100)
	if err != nil {
		t.Fatal(err)
	}
	rel.SeedPair(TechCatalogMerge, inner, cm)
	gotCM, err := rel.CatalogMerge(inner)
	if err != nil {
		t.Fatal(err)
	}
	if gotCM != cm {
		t.Error("seeded catalog-merge was rebuilt")
	}

	// Seeding after the artifact exists is a no-op: the first value wins.
	den2 := core.NewDensityBased(tree.CountTree())
	first := rel.Density()
	rel.Seed(TechDensity, den2)
	if rel.Density() != first {
		t.Error("late Seed replaced an already-built artifact")
	}
}

// TestBitExactWithDirectCore pins the refactor's central promise: resolving
// a technique through the engine yields exactly the estimate of the direct
// core construction every layer used before.
func TestBitExactWithDirectCore(t *testing.T) {
	outerTree := testTree(t, 3000, 6)
	innerTree := testTree(t, 2500, 7)
	opt := BuildOptions{MaxK: 200, SampleSize: 150, GridSize: 8}
	rel := NewRelation("r", outerTree, opt)
	inner := NewRelation("s", innerTree, opt)

	queries := testPoints(50, 8)
	ks := []int{1, 7, 50, 199, 200, 5000} // 5000 > MaxK exercises the fallback

	count := outerTree.CountTree()
	den := core.NewDensityBased(count)
	directCC, err := core.BuildStaircase(outerTree, core.StaircaseOptions{MaxK: opt.MaxK, Fallback: den})
	if err != nil {
		t.Fatal(err)
	}
	directC, err := core.BuildStaircase(outerTree, core.StaircaseOptions{
		MaxK: opt.MaxK, Mode: core.ModeCenterOnly, Fallback: den,
	})
	if err != nil {
		t.Fatal(err)
	}
	selectRefs := map[string]core.SelectEstimator{
		TechStaircaseCC: directCC,
		TechStaircaseC:  directC,
		TechDensity:     den,
	}
	for name, ref := range selectRefs {
		est, err := rel.SelectEstimator(name)
		if err != nil {
			t.Fatalf("SelectEstimator(%s): %v", name, err)
		}
		for _, q := range queries {
			for _, k := range ks {
				want, errWant := ref.EstimateSelect(q, k)
				got, errGot := est.EstimateSelect(q, k)
				if (errWant == nil) != (errGot == nil) {
					t.Fatalf("%s at %v k=%d: error mismatch %v vs %v", name, q, k, errGot, errWant)
				}
				if got != want {
					t.Fatalf("%s at %v k=%d: engine %v != direct %v", name, q, k, got, want)
				}
			}
		}
	}

	innerCount := innerTree.CountTree()
	directCM, err := core.BuildCatalogMerge(count, innerCount, opt.SampleSize, opt.MaxK)
	if err != nil {
		t.Fatal(err)
	}
	directVG, err := core.BuildVirtualGrid(innerCount, opt.GridSize, opt.GridSize, opt.MaxK)
	if err != nil {
		t.Fatal(err)
	}
	joinRefs := map[string]core.JoinEstimator{
		TechBlockSample:  core.NewBlockSample(count, innerCount, opt.SampleSize),
		TechCatalogMerge: directCM,
		TechVirtualGrid:  directVG.Bind(count),
	}
	for name, ref := range joinRefs {
		est, err := rel.JoinEstimator(name, inner)
		if err != nil {
			t.Fatalf("JoinEstimator(%s): %v", name, err)
		}
		for _, k := range []int{1, 9, 64, 200} {
			want, errWant := ref.EstimateJoin(k)
			got, errGot := est.EstimateJoin(k)
			if (errWant == nil) != (errGot == nil) {
				t.Fatalf("%s k=%d: error mismatch %v vs %v", name, k, errGot, errWant)
			}
			if got != want {
				t.Fatalf("%s k=%d: engine %v != direct %v", name, k, got, want)
			}
		}
	}
}

func TestSelectEstimatorRejectsKBelowOne(t *testing.T) {
	rel := NewRelation("r", testTree(t, 500, 9), BuildOptions{MaxK: 50})
	q := geom.Point{X: 50, Y: 50}
	for _, name := range SelectNames() {
		est, err := rel.SelectEstimator(name)
		if err != nil {
			t.Fatalf("SelectEstimator(%s): %v", name, err)
		}
		for _, k := range []int{0, -1, -100} {
			if _, err := est.EstimateSelect(q, k); err == nil {
				t.Errorf("%s.EstimateSelect(k=%d) succeeded, want error", name, k)
			}
		}
	}
}

func TestBuildErrorCached(t *testing.T) {
	// GridSize -1 survives withDefaults (only zero is defaulted) and makes
	// BuildVirtualGrid fail deterministically.
	rel := NewRelation("r", testTree(t, 200, 10), BuildOptions{MaxK: 10, GridSize: -1})
	_, err1 := rel.VirtualGrid()
	if err1 == nil {
		t.Fatal("VirtualGrid with GridSize -1 succeeded")
	}
	_, err2 := rel.VirtualGrid()
	if err2 != err1 {
		t.Errorf("build error not cached: %v vs %v", err2, err1)
	}
	// The failure is scoped to its artifact; other techniques still work.
	if _, err := rel.SelectEstimator(TechDensity); err != nil {
		t.Errorf("density unavailable after virtual-grid failure: %v", err)
	}
}

// TestConcurrentResolve hammers one relation pair from many goroutines; the
// race detector checks the locking and every goroutine must observe the
// same artifact identity (single build).
func TestConcurrentResolve(t *testing.T) {
	rel := NewRelation("r", testTree(t, 2000, 11), BuildOptions{MaxK: 50})
	inner := NewRelation("s", testTree(t, 1500, 12), BuildOptions{MaxK: 50})
	q := geom.Point{X: 42, Y: 58}

	const workers = 16
	selEst := make([]map[string]core.SelectEstimator, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			selEst[w] = map[string]core.SelectEstimator{}
			for _, name := range SelectNames() {
				est, err := rel.SelectEstimator(name)
				if err != nil {
					t.Errorf("SelectEstimator(%s): %v", name, err)
					return
				}
				if _, err := est.EstimateSelect(q, 5); err != nil {
					t.Errorf("%s estimate: %v", name, err)
				}
				selEst[w][name] = est
			}
			for _, name := range JoinNames() {
				est, err := rel.JoinEstimator(name, inner)
				if err != nil {
					t.Errorf("JoinEstimator(%s): %v", name, err)
					return
				}
				if _, err := est.EstimateJoin(5); err != nil {
					t.Errorf("%s estimate: %v", name, err)
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for _, name := range []string{TechStaircaseCC, TechStaircaseC, TechDensity} {
			if selEst[w][name] != selEst[0][name] {
				t.Errorf("worker %d resolved a different %s artifact", w, name)
			}
		}
	}
}
