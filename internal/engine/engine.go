// Package engine is the single home of the paper's estimation techniques:
// one Relation model (a data index plus lazily built, cached per-technique
// artifacts) and a named technique registry behind the small
// core.SelectEstimator / core.JoinEstimator interfaces.
//
// Every consumer — the public facade, the planner, the relation store, the
// HTTP service, and the CLIs — resolves techniques by name from here
// instead of wiring concrete estimator types by hand. That is the paper's
// own framing: the optimizer arbitrates among interchangeable techniques
// (Staircase-C/CC vs density-based for k-NN-Select; Block-Sample vs
// Catalog-Merge vs Virtual-Grid for k-NN-Join), so the technique set must
// be a first-class, extensible registry rather than a fixed pair per call
// site.
//
// A Relation builds each technique's preprocessing artifact (staircase
// catalogs, virtual-grid catalogs, per-pair merge catalogs) at most once,
// on first use, and callers that already hold a built artifact — the
// store's warm-restart cache, for example — can Seed it so the engine
// never rebuilds what exists. Estimates obtained through the engine are
// bit-exact with the direct core constructions they replace (the
// differential-oracle suite pins this).
package engine

import (
	"sync"

	"knncost/internal/aknn"
	"knncost/internal/core"
	"knncost/internal/index"
)

// BuildOptions configure the preprocessing artifacts a Relation builds.
// The zero value means the repository-wide defaults, matching
// store.Options and the facade constructors.
type BuildOptions struct {
	// MaxK is the largest catalog-maintained k. Zero means core.DefaultMaxK.
	MaxK int
	// SampleSize is the sample size of the join techniques (Block-Sample,
	// Catalog-Merge). Zero means 200.
	SampleSize int
	// GridSize is the Virtual-Grid dimension. Zero means 10.
	GridSize int
	// AuxCapacity is the leaf capacity of the auxiliary quadtree a
	// staircase builds over a non-partitioning index (§3.3). Zero means the
	// quadtree default.
	AuxCapacity int
	// Parallelism bounds the staircase build fan-out. Zero means
	// GOMAXPROCS; the built catalogs are identical regardless.
	Parallelism int
}

func (o BuildOptions) withDefaults() BuildOptions {
	if o.MaxK == 0 {
		o.MaxK = core.DefaultMaxK
	}
	if o.SampleSize == 0 {
		o.SampleSize = 200
	}
	if o.GridSize == 0 {
		o.GridSize = 10
	}
	return o
}

// artifactKey identifies one cached artifact of a Relation. Per-relation
// artifacts (staircase, density, virtual grid) have a nil inner; pair
// artifacts (catalog-merge) key on the identity of the inner relation.
type artifactKey struct {
	technique string
	inner     *Relation
}

// artifact caches one build outcome — value or error — exactly once.
type artifact struct {
	once sync.Once
	val  any
	err  error
}

// Relation is an indexed dataset with cached per-technique preprocessing
// artifacts. Artifacts are built at most once, on first use; concurrent
// requests for the same artifact share one build. A Relation is safe for
// concurrent use.
type Relation struct {
	name  string
	tree  *index.Tree
	count *index.Tree
	opt   BuildOptions

	mu        sync.Mutex
	artifacts map[artifactKey]*artifact
}

// NewRelation wraps a data index as an engine relation. The Count-Index is
// derived from the tree; use NewRelationWithCount when the caller already
// holds one.
func NewRelation(name string, tree *index.Tree, opt BuildOptions) *Relation {
	return NewRelationWithCount(name, tree, nil, opt)
}

// NewRelationWithCount is NewRelation with a pre-derived Count-Index, so
// callers that already built one (the store, the facade Index) do not pay
// for a second derivation. A nil count is derived from the tree.
func NewRelationWithCount(name string, tree, count *index.Tree, opt BuildOptions) *Relation {
	if count == nil {
		count = tree.CountTree()
	}
	return &Relation{
		name:      name,
		tree:      tree,
		count:     count,
		opt:       opt.withDefaults(),
		artifacts: map[artifactKey]*artifact{},
	}
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Tree returns the data index.
func (r *Relation) Tree() *index.Tree { return r.tree }

// Count returns the Count-Index.
func (r *Relation) Count() *index.Tree { return r.count }

// Options returns the effective (defaulted) build options.
func (r *Relation) Options() BuildOptions { return r.opt }

// slot returns the artifact cell for key, creating it on first request.
// Only the map access is under the lock; builds run outside it, so a slow
// staircase build never blocks an unrelated artifact.
func (r *Relation) slot(key artifactKey) *artifact {
	r.mu.Lock()
	defer r.mu.Unlock()
	a := r.artifacts[key]
	if a == nil {
		a = &artifact{}
		r.artifacts[key] = a
	}
	return a
}

// buildOnce returns the cached artifact for key, running build on the
// first request. Errors are cached too: a failed build is not retried.
func (r *Relation) buildOnce(key artifactKey, build func() (any, error)) (any, error) {
	a := r.slot(key)
	a.once.Do(func() { a.val, a.err = build() })
	return a.val, a.err
}

// Seed installs a pre-built per-relation artifact for a technique, so the
// engine serves it instead of rebuilding. The value must be the artifact
// type the technique builds (e.g. *core.Staircase for "staircase-cc",
// *core.VirtualGrid for "virtual-grid", *core.DensityBased for
// "density"). Seeding after the artifact was already built or seeded is a
// no-op; the first value wins, matching the immutability of published
// store snapshots.
func (r *Relation) Seed(technique string, v any) {
	r.seed(artifactKey{technique: technique}, v)
}

// SeedPair is Seed for a pair artifact, e.g. a *core.CatalogMerge built
// for (r ⋉ inner).
func (r *Relation) SeedPair(technique string, inner *Relation, v any) {
	r.seed(artifactKey{technique: technique, inner: inner}, v)
}

func (r *Relation) seed(key artifactKey, v any) {
	a := r.slot(key)
	a.once.Do(func() { a.val = v })
}

// Density returns the relation's density-based estimator (§2, Tao et
// al.), building it on first use. Construction cannot fail.
func (r *Relation) Density() *core.DensityBased {
	v, _ := r.buildOnce(artifactKey{technique: TechDensity}, func() (any, error) {
		return core.NewDensityBased(r.count), nil
	})
	return v.(*core.DensityBased)
}

// Staircase returns the staircase estimator for the given mode, building
// its catalogs on first use. The density artifact doubles as the fallback
// for k > MaxK, exactly as the store and facade always configured it.
func (r *Relation) Staircase(mode core.StaircaseMode) (*core.Staircase, error) {
	var technique string
	switch mode {
	case core.ModeCenterCorners:
		technique = TechStaircaseCC
	case core.ModeCenterOnly:
		technique = TechStaircaseC
	default:
		// Modes without a registered technique (Center+Quadrant) still
		// cache under a distinct key so they never collide with the
		// canonical artifacts.
		technique = "staircase/" + mode.String()
	}
	v, err := r.buildOnce(artifactKey{technique: technique}, func() (any, error) {
		return core.BuildStaircase(r.tree, core.StaircaseOptions{
			MaxK:        r.opt.MaxK,
			Mode:        mode,
			AuxCapacity: r.opt.AuxCapacity,
			Fallback:    r.Density(),
			Parallelism: r.opt.Parallelism,
		})
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.Staircase), nil
}

// VirtualGrid returns the relation's virtual-grid catalog set (§4.3),
// built over the Count-Index on first use. It is the per-inner-relation
// artifact of the "virtual-grid" join technique; Bind it to an outer
// Count-Index to obtain a JoinEstimator.
func (r *Relation) VirtualGrid() (*core.VirtualGrid, error) {
	v, err := r.buildOnce(artifactKey{technique: TechVirtualGrid}, func() (any, error) {
		return core.BuildVirtualGrid(r.count, r.opt.GridSize, r.opt.GridSize, r.opt.MaxK)
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.VirtualGrid), nil
}

// AknnSummary returns the relation's bounds-only AkNN summary — the
// per-inner-relation artifact of the "aknn-bounds" join technique —
// building it from the Count-Index on first use. Construction cannot
// fail. Bind it to an outer Count-Index to obtain a JoinEstimator.
func (r *Relation) AknnSummary() *aknn.Summary {
	v, _ := r.buildOnce(artifactKey{technique: TechAknnBounds}, func() (any, error) {
		return aknn.BuildSummary(r.count), nil
	})
	return v.(*aknn.Summary)
}

// CatalogMerge returns the Catalog-Merge estimator for (r ⋉ inner),
// building and caching it per inner relation on first use (§4.2). The
// outer relation's options govern the build, matching the store.
func (r *Relation) CatalogMerge(inner *Relation) (*core.CatalogMerge, error) {
	v, err := r.buildOnce(artifactKey{technique: TechCatalogMerge, inner: inner}, func() (any, error) {
		return core.BuildCatalogMerge(r.count, inner.count, r.opt.SampleSize, r.opt.MaxK)
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.CatalogMerge), nil
}

// BlockSample returns a Block-Sample estimator for (r ⋉ inner) (§4.1).
// Block-Sample needs no preprocessing — localities are computed at
// estimation time — so construction is per call and cannot fail.
func (r *Relation) BlockSample(inner *Relation) *core.BlockSample {
	return core.NewBlockSample(r.count, inner.count, r.opt.SampleSize)
}

// SelectEstimator resolves a registered select technique by name against
// this relation, building (or serving the cached) artifact it needs.
func (r *Relation) SelectEstimator(technique string) (core.SelectEstimator, error) {
	t, err := LookupSelect(technique)
	if err != nil {
		return nil, err
	}
	return t.Estimator(r)
}

// JoinEstimator resolves a registered join technique by name for
// (r ⋉ inner).
func (r *Relation) JoinEstimator(technique string, inner *Relation) (core.JoinEstimator, error) {
	t, err := LookupJoin(technique)
	if err != nil {
		return nil, err
	}
	return t.Estimator(r, inner)
}
