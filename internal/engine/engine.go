// Package engine is the single home of the paper's estimation techniques:
// one Relation model (a data index plus lazily built, cached per-technique
// artifacts) and a named technique registry behind the small
// core.SelectEstimator / core.JoinEstimator interfaces.
//
// Every consumer — the public facade, the planner, the relation store, the
// HTTP service, and the CLIs — resolves techniques by name from here
// instead of wiring concrete estimator types by hand. That is the paper's
// own framing: the optimizer arbitrates among interchangeable techniques
// (Staircase-C/CC vs density-based for k-NN-Select; Block-Sample vs
// Catalog-Merge vs Virtual-Grid for k-NN-Join), so the technique set must
// be a first-class, extensible registry rather than a fixed pair per call
// site.
//
// A Relation builds each technique's preprocessing artifact (staircase
// catalogs, virtual-grid catalogs, per-pair merge catalogs) at most once,
// on first use, and callers that already hold a built artifact — the
// store's warm-restart cache, for example — can Seed it so the engine
// never rebuilds what exists. Estimates obtained through the engine are
// bit-exact with the direct core constructions they replace (the
// differential-oracle suite pins this).
package engine

import (
	"sync"

	"knncost/internal/aknn"
	"knncost/internal/core"
	"knncost/internal/index"
)

// BuildOptions configure the preprocessing artifacts a Relation builds.
// The zero value means the repository-wide defaults, matching
// store.Options and the facade constructors.
type BuildOptions struct {
	// MaxK is the largest catalog-maintained k. Zero means core.DefaultMaxK.
	MaxK int
	// Corners is the staircase corner budget of core.Resolution: 0 means
	// the default merged corners-catalog, negative means center-only, 4
	// keeps the per-quadrant set.
	Corners int
	// SampleSize is the sample size of the join techniques (Block-Sample,
	// Catalog-Merge). Zero means 200.
	SampleSize int
	// GridSize is the Virtual-Grid dimension. Zero means
	// core.DefaultGridSize.
	GridSize int
	// AknnCapacity is the minimum points per AkNN summary partition. Zero
	// means one partition per block.
	AknnCapacity int
	// AuxCapacity is the leaf capacity of the auxiliary quadtree a
	// staircase builds over a non-partitioning index (§3.3). Zero means the
	// quadtree default.
	AuxCapacity int
	// Parallelism bounds the staircase build fan-out. Zero means
	// GOMAXPROCS; the built catalogs are identical regardless.
	Parallelism int
}

func (o BuildOptions) withDefaults() BuildOptions {
	o = o.WithResolution(o.Resolution())
	if o.SampleSize == 0 {
		o.SampleSize = 200
	}
	return o
}

// Resolution returns the canonical artifact resolution the options carry:
// the four space/accuracy axes of core.Resolution, with zero fields
// mapped to the repository defaults.
func (o BuildOptions) Resolution() core.Resolution {
	return core.Resolution{
		MaxK:         o.MaxK,
		Corners:      o.Corners,
		GridSize:     o.GridSize,
		AknnCapacity: o.AknnCapacity,
	}.Canon()
}

// WithResolution returns o with the resolution axes replaced by r.
func (o BuildOptions) WithResolution(r core.Resolution) BuildOptions {
	r = r.Canon()
	// Canonical Corners (-1, 1, 4) is already the BuildOptions spelling.
	o.MaxK, o.Corners, o.GridSize, o.AknnCapacity = r.MaxK, r.Corners, r.GridSize, r.AknnCapacity
	return o
}

// artifactKey identifies one cached artifact of a Relation. Per-relation
// artifacts (staircase, density, virtual grid) have a nil inner; pair
// artifacts (catalog-merge) key on the identity of the inner relation.
// The key carries the canonical resolution the artifact is built at, so
// resolution views of one relation (AtResolution) share the cache without
// ever serving an artifact built at a different depth.
type artifactKey struct {
	technique string
	inner     *Relation
	res       core.Resolution
}

// artifact caches one build outcome — value or error — exactly once.
type artifact struct {
	once sync.Once
	val  any
	err  error
}

// Relation is an indexed dataset with cached per-technique preprocessing
// artifacts. Artifacts are built at most once, on first use; concurrent
// requests for the same artifact share one build. A Relation is safe for
// concurrent use.
type Relation struct {
	name  string
	tree  *index.Tree
	count *index.Tree
	opt   BuildOptions
	res   core.Resolution // canonical; == opt.Resolution()

	// cache is shared between a relation and its AtResolution views, so
	// artifacts built at any resolution over the same data are built at
	// most once process-wide.
	cache *artifactCache
}

// artifactCache is the resolution-keyed artifact map shared by all
// resolution views of one relation.
type artifactCache struct {
	mu        sync.Mutex
	artifacts map[artifactKey]*artifact
}

// NewRelation wraps a data index as an engine relation. The Count-Index is
// derived from the tree; use NewRelationWithCount when the caller already
// holds one.
func NewRelation(name string, tree *index.Tree, opt BuildOptions) *Relation {
	return NewRelationWithCount(name, tree, nil, opt)
}

// NewRelationWithCount is NewRelation with a pre-derived Count-Index, so
// callers that already built one (the store, the facade Index) do not pay
// for a second derivation. A nil count is derived from the tree.
func NewRelationWithCount(name string, tree, count *index.Tree, opt BuildOptions) *Relation {
	if count == nil {
		count = tree.CountTree()
	}
	opt = opt.withDefaults()
	return &Relation{
		name:  name,
		tree:  tree,
		count: count,
		opt:   opt,
		res:   opt.Resolution(),
		cache: &artifactCache{artifacts: map[artifactKey]*artifact{}},
	}
}

// Resolution returns the canonical resolution the relation builds its
// artifacts at.
func (r *Relation) Resolution() core.Resolution { return r.res }

// AtResolution returns a view of the relation that builds and serves
// artifacts at the given resolution. The view shares the relation's data
// index, Count-Index and artifact cache — artifacts are keyed by
// resolution, so views never collide and never rebuild what another view
// already built. The receiver is returned unchanged when the resolution
// is already its own.
func (r *Relation) AtResolution(res core.Resolution) *Relation {
	res = res.Canon()
	if res == r.res {
		return r
	}
	opt := r.opt.WithResolution(res)
	return &Relation{
		name:  r.name,
		tree:  r.tree,
		count: r.count,
		opt:   opt,
		res:   res,
		cache: r.cache,
	}
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Tree returns the data index.
func (r *Relation) Tree() *index.Tree { return r.tree }

// Count returns the Count-Index.
func (r *Relation) Count() *index.Tree { return r.count }

// Options returns the effective (defaulted) build options.
func (r *Relation) Options() BuildOptions { return r.opt }

// slot returns the artifact cell for key, creating it on first request.
// Only the map access is under the lock; builds run outside it, so a slow
// staircase build never blocks an unrelated artifact.
func (r *Relation) slot(key artifactKey) *artifact {
	c := r.cache
	c.mu.Lock()
	defer c.mu.Unlock()
	a := c.artifacts[key]
	if a == nil {
		a = &artifact{}
		c.artifacts[key] = a
	}
	return a
}

// buildOnce returns the cached artifact for key, running build on the
// first request. Errors are cached too: a failed build is not retried.
func (r *Relation) buildOnce(key artifactKey, build func() (any, error)) (any, error) {
	a := r.slot(key)
	a.once.Do(func() { a.val, a.err = build() })
	return a.val, a.err
}

// Seed installs a pre-built per-relation artifact for a technique, so the
// engine serves it instead of rebuilding. The value must be the artifact
// type the technique builds (e.g. *core.Staircase for "staircase-cc",
// *core.VirtualGrid for "virtual-grid", *core.DensityBased for
// "density"). The artifact is keyed under its own reported resolution
// (core.Artifact), so a seed only ever satisfies requests for the depth
// it was actually built at. Seeding after the artifact was already built
// or seeded is a no-op; the first value wins, matching the immutability
// of published store snapshots.
func (r *Relation) Seed(technique string, v any) {
	r.seed(r.seedKey(technique, nil, v), v)
}

// SeedPair is Seed for a pair artifact, e.g. a *core.CatalogMerge built
// for (r ⋉ inner).
func (r *Relation) SeedPair(technique string, inner *Relation, v any) {
	r.seed(r.seedKey(technique, inner, v), v)
}

// seedKey mirrors the key each accessor uses: the density artifact is
// resolution-free, every other artifact keys on the (projected)
// resolution it reports.
func (r *Relation) seedKey(technique string, inner *Relation, v any) artifactKey {
	key := artifactKey{technique: technique, inner: inner}
	if technique == TechDensity {
		return key
	}
	if a, ok := v.(core.Artifact); ok {
		key.res = a.Resolution()
	} else {
		key.res = r.res
	}
	return key
}

func (r *Relation) seed(key artifactKey, v any) {
	a := r.slot(key)
	a.once.Do(func() { a.val = v })
}

// Density returns the relation's density-based estimator (§2, Tao et
// al.), building it on first use. Construction cannot fail.
func (r *Relation) Density() *core.DensityBased {
	v, _ := r.buildOnce(artifactKey{technique: TechDensity}, func() (any, error) {
		return core.NewDensityBased(r.count), nil
	})
	return v.(*core.DensityBased)
}

// StaircaseTechnique returns the technique (and artifact-cache key) name a
// staircase of the given mode files under: the registered names for the
// canonical modes, a distinct unregistered name for the rest. The store
// uses it to seed cache-loaded staircases under the key the accessors use.
func StaircaseTechnique(mode core.StaircaseMode) string {
	switch mode {
	case core.ModeCenterCorners:
		return TechStaircaseCC
	case core.ModeCenterOnly:
		return TechStaircaseC
	default:
		// Modes without a registered technique (Center+Quadrant) still
		// cache under a distinct key so they never collide with the
		// canonical artifacts.
		return "staircase/" + mode.String()
	}
}

// Staircase returns the staircase estimator for the given mode, building
// its catalogs on first use. The density artifact doubles as the fallback
// for k > MaxK, exactly as the store and facade always configured it.
func (r *Relation) Staircase(mode core.StaircaseMode) (*core.Staircase, error) {
	corners := 1
	switch mode {
	case core.ModeCenterOnly:
		corners = -1
	case core.ModeCenterQuadrant:
		corners = 4
	}
	key := artifactKey{
		technique: StaircaseTechnique(mode),
		res:       core.Resolution{MaxK: r.opt.MaxK, Corners: corners}.Canon(),
	}
	v, err := r.buildOnce(key, func() (any, error) {
		return core.BuildStaircase(r.tree, core.StaircaseOptions{
			MaxK:        r.opt.MaxK,
			Mode:        mode,
			AuxCapacity: r.opt.AuxCapacity,
			Fallback:    r.Density(),
			Parallelism: r.opt.Parallelism,
		})
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.Staircase), nil
}

// VirtualGrid returns the relation's virtual-grid catalog set (§4.3),
// built over the Count-Index on first use. It is the per-inner-relation
// artifact of the "virtual-grid" join technique; Bind it to an outer
// Count-Index to obtain a JoinEstimator.
func (r *Relation) VirtualGrid() (*core.VirtualGrid, error) {
	key := artifactKey{
		technique: TechVirtualGrid,
		res:       core.Resolution{MaxK: r.opt.MaxK, GridSize: r.opt.GridSize}.Canon(),
	}
	v, err := r.buildOnce(key, func() (any, error) {
		return core.BuildVirtualGrid(r.count, r.opt.GridSize, r.opt.GridSize, r.opt.MaxK)
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.VirtualGrid), nil
}

// AknnSummary returns the relation's bounds-only AkNN summary — the
// per-inner-relation artifact of the "aknn-bounds" join technique —
// building it from the Count-Index on first use. Construction cannot
// fail. Bind it to an outer Count-Index to obtain a JoinEstimator.
func (r *Relation) AknnSummary() *aknn.Summary {
	key := artifactKey{
		technique: TechAknnBounds,
		res:       core.Resolution{AknnCapacity: r.opt.AknnCapacity}.Canon(),
	}
	v, _ := r.buildOnce(key, func() (any, error) {
		return aknn.BuildSummaryCapacity(r.count, r.opt.AknnCapacity), nil
	})
	return v.(*aknn.Summary)
}

// CatalogMerge returns the Catalog-Merge estimator for (r ⋉ inner),
// building and caching it per inner relation on first use (§4.2). The
// outer relation's options govern the build, matching the store.
func (r *Relation) CatalogMerge(inner *Relation) (*core.CatalogMerge, error) {
	key := artifactKey{
		technique: TechCatalogMerge,
		inner:     inner,
		res:       core.Resolution{MaxK: r.opt.MaxK}.Canon(),
	}
	v, err := r.buildOnce(key, func() (any, error) {
		return core.BuildCatalogMerge(r.count, inner.count, r.opt.SampleSize, r.opt.MaxK)
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.CatalogMerge), nil
}

// BlockSample returns a Block-Sample estimator for (r ⋉ inner) (§4.1).
// Block-Sample needs no preprocessing — localities are computed at
// estimation time — so construction is per call and cannot fail.
func (r *Relation) BlockSample(inner *Relation) *core.BlockSample {
	return core.NewBlockSample(r.count, inner.count, r.opt.SampleSize)
}

// SelectEstimator resolves a registered select technique by name against
// this relation, building (or serving the cached) artifact it needs.
func (r *Relation) SelectEstimator(technique string) (core.SelectEstimator, error) {
	t, err := LookupSelect(technique)
	if err != nil {
		return nil, err
	}
	return t.Estimator(r)
}

// JoinEstimator resolves a registered join technique by name for
// (r ⋉ inner).
func (r *Relation) JoinEstimator(technique string, inner *Relation) (core.JoinEstimator, error) {
	t, err := LookupJoin(technique)
	if err != nil {
		return nil, err
	}
	return t.Estimator(r, inner)
}
