package engine

import "knncost/internal/core"

// Canonical names of the built-in techniques. The aliases registered
// below preserve the pre-registry wire names of the HTTP service
// ("staircase", "catalogmerge", "virtualgrid", "blocksample") so existing
// clients keep working.
const (
	// TechStaircaseCC is the staircase estimator with Center+Corners
	// interpolation (§3, Equations 1–2) — the paper's headline technique.
	TechStaircaseCC = "staircase-cc"
	// TechStaircaseC is the staircase estimator with Center-Only
	// interpolation — cheaper catalogs, coarser estimates (§3).
	TechStaircaseC = "staircase-c"
	// TechDensity is the density-based baseline (§2, Tao et al.).
	TechDensity = "density"
	// TechBlockSample samples outer blocks and computes their localities
	// at estimation time (§4.1).
	TechBlockSample = "block-sample"
	// TechCatalogMerge merges sampled locality catalogs into one catalog
	// per (outer, inner) pair; estimation is a lookup (§4.2).
	TechCatalogMerge = "catalog-merge"
	// TechVirtualGrid keeps one locality catalog per cell of a grid over
	// the inner relation — linear storage across a schema (§4.3).
	TechVirtualGrid = "virtual-grid"
	// TechAknnBounds estimates the bounds-only pruning AkNN join
	// (internal/aknn, after Winecki): cost in candidate inner points,
	// computed from the inner relation's per-partition bounds summary. It
	// prices a different exact join evaluation strategy than the three
	// locality-join techniques above, so its estimates are not comparable
	// to theirs — only to aknn ground truth.
	TechAknnBounds = "aknn-bounds"
)

func init() {
	RegisterSelect(SelectTechnique{
		Name:         TechStaircaseCC,
		Aliases:      []string{"staircase", "staircase-center-corners"},
		Summary:      "staircase catalogs with Center+Corners interpolation (§3)",
		Preprocessed: true,
		Estimator: func(r *Relation) (core.SelectEstimator, error) {
			return r.Staircase(core.ModeCenterCorners)
		},
	})
	RegisterSelect(SelectTechnique{
		Name:         TechStaircaseC,
		Aliases:      []string{"staircase-center-only"},
		Summary:      "staircase catalogs with Center-Only interpolation (§3)",
		Preprocessed: true,
		Estimator: func(r *Relation) (core.SelectEstimator, error) {
			return r.Staircase(core.ModeCenterOnly)
		},
	})
	RegisterSelect(SelectTechnique{
		Name:    TechDensity,
		Summary: "density-based baseline over the Count-Index (§2)",
		Estimator: func(r *Relation) (core.SelectEstimator, error) {
			return r.Density(), nil
		},
	})

	RegisterJoin(JoinTechnique{
		Name:    TechBlockSample,
		Aliases: []string{"blocksample"},
		Summary: "query-time localities for a sample of outer blocks (§4.1)",
		Estimator: func(outer, inner *Relation) (core.JoinEstimator, error) {
			return outer.BlockSample(inner), nil
		},
	})
	RegisterJoin(JoinTechnique{
		Name:         TechCatalogMerge,
		Aliases:      []string{"catalogmerge"},
		Summary:      "plane-sweep-merged locality catalog per relation pair (§4.2)",
		Preprocessed: true,
		Estimator: func(outer, inner *Relation) (core.JoinEstimator, error) {
			return outer.CatalogMerge(inner)
		},
	})
	RegisterJoin(JoinTechnique{
		Name:         TechAknnBounds,
		Aliases:      []string{"aknnbounds", "aknn"},
		Summary:      "bounds-only pruning cost of the exact AkNN join, in points (Winecki)",
		Preprocessed: true,
		Estimator: func(outer, inner *Relation) (core.JoinEstimator, error) {
			return inner.AknnSummary().Bind(outer.count, outer.opt.SampleSize), nil
		},
	})
	RegisterJoin(JoinTechnique{
		Name:         TechVirtualGrid,
		Aliases:      []string{"virtualgrid"},
		Summary:      "per-grid-cell locality catalogs over the inner relation (§4.3)",
		Preprocessed: true,
		Estimator: func(outer, inner *Relation) (core.JoinEstimator, error) {
			vg, err := inner.VirtualGrid()
			if err != nil {
				return nil, err
			}
			return vg.Bind(outer.count), nil
		},
	})
}
