package engine

import (
	"math"
	"testing"

	"knncost/internal/geom"
	"knncost/internal/grid"
	"knncost/internal/index"
	"knncost/internal/kdtree"
	"knncost/internal/quadtree"
	"knncost/internal/rtree"
)

// backendBuilders covers every index kind the repository ships. The
// staircase techniques attach to the index's own blocks on partitioning
// backends (quadtree, kdtree, grid) and build a quadtree auxiliary index
// over the R-tree (§3.3) — the sweep proves both paths.
var backendBuilders = map[string]func(t *testing.T, pts []geom.Point) *index.Tree{
	"quadtree": func(t *testing.T, pts []geom.Point) *index.Tree {
		return quadtree.Build(pts, quadtree.Options{Capacity: 32, Bounds: testBounds}).Index()
	},
	"kdtree": func(t *testing.T, pts []geom.Point) *index.Tree {
		return kdtree.Build(pts, kdtree.Options{Capacity: 32, Bounds: testBounds}).Index()
	},
	"grid": func(t *testing.T, pts []geom.Point) *index.Tree {
		return grid.Build(pts, testBounds, 8, 8).Index()
	},
	"rtree": func(t *testing.T, pts []geom.Point) *index.Tree {
		tr, err := rtree.Build(pts, rtree.Options{LeafCapacity: 32, Fanout: 8})
		if err != nil {
			t.Fatalf("rtree: %v", err)
		}
		return tr.Index()
	},
}

// TestEveryTechniqueOnEveryBackend asserts the registry's completeness
// promise: every registered technique builds its artifacts and produces a
// finite, non-negative estimate on every index backend.
func TestEveryTechniqueOnEveryBackend(t *testing.T) {
	outerPts := testPoints(2500, 21)
	innerPts := testPoints(2000, 22)
	queries := testPoints(10, 23)

	for backend, build := range backendBuilders {
		t.Run(backend, func(t *testing.T) {
			opt := BuildOptions{MaxK: 64, SampleSize: 100, GridSize: 6}
			rel := NewRelation("outer", build(t, outerPts), opt)
			inner := NewRelation("inner", build(t, innerPts), opt)

			for _, tech := range SelectTechniques() {
				est, err := tech.Estimator(rel)
				if err != nil {
					t.Errorf("%s: resolve: %v", tech.Name, err)
					continue
				}
				for _, q := range queries {
					for _, k := range []int{1, 10, 64} {
						blocks, err := est.EstimateSelect(q, k)
						if err != nil {
							t.Errorf("%s at %v k=%d: %v", tech.Name, q, k, err)
							continue
						}
						if blocks < 0 || math.IsNaN(blocks) || math.IsInf(blocks, 0) {
							t.Errorf("%s at %v k=%d: estimate %v out of range", tech.Name, q, k, blocks)
						}
					}
				}
			}
			for _, tech := range JoinTechniques() {
				est, err := tech.Estimator(rel, inner)
				if err != nil {
					t.Errorf("%s: resolve: %v", tech.Name, err)
					continue
				}
				for _, k := range []int{1, 10, 64} {
					blocks, err := est.EstimateJoin(k)
					if err != nil {
						t.Errorf("%s k=%d: %v", tech.Name, k, err)
						continue
					}
					if blocks < 0 || math.IsNaN(blocks) || math.IsInf(blocks, 0) {
						t.Errorf("%s k=%d: estimate %v out of range", tech.Name, k, blocks)
					}
				}
			}
		})
	}
}
