package engine

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"knncost/internal/core"
)

func TestBuiltinNames(t *testing.T) {
	wantSelect := []string{TechDensity, TechStaircaseC, TechStaircaseCC}
	if got := SelectNames(); !reflect.DeepEqual(got, wantSelect) {
		t.Errorf("SelectNames() = %v, want %v", got, wantSelect)
	}
	wantJoin := []string{TechAknnBounds, TechBlockSample, TechCatalogMerge, TechVirtualGrid}
	if got := JoinNames(); !reflect.DeepEqual(got, wantJoin) {
		t.Errorf("JoinNames() = %v, want %v", got, wantJoin)
	}
	if got := SelectTechniques(); len(got) != len(wantSelect) {
		t.Errorf("SelectTechniques() has %d entries, want %d", len(got), len(wantSelect))
	}
	if got := JoinTechniques(); len(got) != len(wantJoin) {
		t.Errorf("JoinTechniques() has %d entries, want %d", len(got), len(wantJoin))
	}
}

func TestLookupAliases(t *testing.T) {
	selectCases := map[string]string{
		"staircase-cc":             TechStaircaseCC,
		"staircase":                TechStaircaseCC, // legacy service wire name
		"staircase-center-corners": TechStaircaseCC,
		"staircase-c":              TechStaircaseC,
		"staircase-center-only":    TechStaircaseC,
		"density":                  TechDensity,
		"  Density ":               TechDensity, // normalized
		"STAIRCASE-CC":             TechStaircaseCC,
	}
	for in, want := range selectCases {
		got, err := LookupSelect(in)
		if err != nil {
			t.Errorf("LookupSelect(%q): %v", in, err)
			continue
		}
		if got.Name != want {
			t.Errorf("LookupSelect(%q).Name = %q, want %q", in, got.Name, want)
		}
	}
	joinCases := map[string]string{
		"block-sample":  TechBlockSample,
		"blocksample":   TechBlockSample,
		"catalog-merge": TechCatalogMerge,
		"catalogmerge":  TechCatalogMerge,
		"virtual-grid":  TechVirtualGrid,
		"virtualgrid":   TechVirtualGrid,
	}
	for in, want := range joinCases {
		got, err := LookupJoin(in)
		if err != nil {
			t.Errorf("LookupJoin(%q): %v", in, err)
			continue
		}
		if got.Name != want {
			t.Errorf("LookupJoin(%q).Name = %q, want %q", in, got.Name, want)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	_, err := LookupSelect("nope")
	if err == nil {
		t.Fatal("LookupSelect(nope) succeeded")
	}
	for _, name := range SelectNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-select error %q does not list registered name %q", err, name)
		}
	}
	_, err = LookupJoin("nope")
	if err == nil {
		t.Fatal("LookupJoin(nope) succeeded")
	}
	for _, name := range JoinNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-join error %q does not list registered name %q", err, name)
		}
	}
	// A select name is not a join name and vice versa.
	if _, err := LookupJoin(TechDensity); err == nil {
		t.Error("LookupJoin(density) succeeded; density is a select technique")
	}
	if _, err := LookupSelect(TechCatalogMerge); err == nil {
		t.Error("LookupSelect(catalog-merge) succeeded; catalog-merge is a join technique")
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

func TestRegisterContract(t *testing.T) {
	noopSelect := func(*Relation) (core.SelectEstimator, error) { return nil, nil }
	noopJoin := func(*Relation, *Relation) (core.JoinEstimator, error) { return nil, nil }

	mustPanic(t, "duplicate select name", func() {
		RegisterSelect(SelectTechnique{Name: TechStaircaseCC, Estimator: noopSelect})
	})
	mustPanic(t, "alias colliding with select name", func() {
		RegisterSelect(SelectTechnique{Name: "fresh-select", Aliases: []string{"density"}, Estimator: noopSelect})
	})
	mustPanic(t, "name colliding with select alias", func() {
		RegisterSelect(SelectTechnique{Name: "staircase", Estimator: noopSelect})
	})
	mustPanic(t, "empty select name", func() {
		RegisterSelect(SelectTechnique{Estimator: noopSelect})
	})
	mustPanic(t, "nil select estimator", func() {
		RegisterSelect(SelectTechnique{Name: "fresh-select"})
	})
	mustPanic(t, "duplicate join name", func() {
		RegisterJoin(JoinTechnique{Name: TechCatalogMerge, Estimator: noopJoin})
	})
	mustPanic(t, "nil join estimator", func() {
		RegisterJoin(JoinTechnique{Name: "fresh-join"})
	})

	// A failed registration must leave no trace: the fresh names above must
	// still be unknown.
	if _, err := LookupSelect("fresh-select"); err == nil {
		t.Error("failed registration leaked name fresh-select into the registry")
	}
	if _, err := LookupJoin("fresh-join"); err == nil {
		t.Error("failed registration leaked name fresh-join into the registry")
	}

	// A valid registration resolves by name and alias; registering the same
	// name again panics.
	RegisterSelect(SelectTechnique{Name: "test-select", Aliases: []string{"test-alias"}, Estimator: noopSelect})
	defer unregisterSelectForTest("test-select")
	if tech, err := LookupSelect("test-alias"); err != nil || tech.Name != "test-select" {
		t.Errorf("LookupSelect(test-alias) = %v, %v; want test-select", tech.Name, err)
	}
	mustPanic(t, "re-registering test-select", func() {
		RegisterSelect(SelectTechnique{Name: "test-select", Estimator: noopSelect})
	})

	RegisterJoin(JoinTechnique{Name: "test-join", Estimator: noopJoin})
	defer unregisterJoinForTest("test-join")
	if tech, err := LookupJoin("test-join"); err != nil || tech.Name != "test-join" {
		t.Errorf("LookupJoin(test-join) = %v, %v; want test-join", tech.Name, err)
	}
	mustPanic(t, "re-registering test-join", func() {
		RegisterJoin(JoinTechnique{Name: "test-join", Estimator: noopJoin})
	})
}

// TestListingOrderDeterministic pins the ordering contract of every listing
// surface: canonical names sorted, alias lists sorted (registration order
// must not leak into wire or CLI output), and the returned alias slices
// are defensive copies a caller cannot mutate the registry through.
func TestListingOrderDeterministic(t *testing.T) {
	noopSelect := func(*Relation) (core.SelectEstimator, error) { return nil, nil }
	RegisterSelect(SelectTechnique{
		Name:      "zz-order-probe",
		Aliases:   []string{"zz-c", "zz-a", "zz-b"}, // deliberately unsorted
		Estimator: noopSelect,
	})
	defer unregisterSelectForTest("zz-order-probe")

	assertSorted := func(what string, names []string) {
		t.Helper()
		if !sort.StringsAreSorted(names) {
			t.Errorf("%s not sorted: %v", what, names)
		}
	}
	for _, tech := range SelectTechniques() {
		assertSorted("SelectTechniques().Aliases of "+tech.Name, tech.Aliases)
	}
	for _, tech := range JoinTechniques() {
		assertSorted("JoinTechniques().Aliases of "+tech.Name, tech.Aliases)
	}
	assertSorted("SelectNames()", SelectNames())
	assertSorted("JoinNames()", JoinNames())

	probe, err := LookupSelect("zz-order-probe")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"zz-a", "zz-b", "zz-c"}
	if !reflect.DeepEqual(probe.Aliases, want) {
		t.Fatalf("LookupSelect aliases = %v, want sorted %v", probe.Aliases, want)
	}

	// Mutating a returned copy must not bleed into later listings.
	probe.Aliases[0] = "mutated"
	again, err := LookupSelect("zz-order-probe")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Aliases, want) {
		t.Fatalf("registry aliases mutated through a returned copy: %v", again.Aliases)
	}
}
