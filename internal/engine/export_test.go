package engine

// unregisterSelectForTest removes a technique registered by a test so the
// global registry stays exactly the built-in set for every other test.
func unregisterSelectForTest(name string) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	t := reg.selects[name]
	if t == nil {
		return
	}
	delete(reg.selects, name)
	delete(reg.selectAlias, canonKey(name))
	for _, a := range t.Aliases {
		delete(reg.selectAlias, canonKey(a))
	}
}

func unregisterJoinForTest(name string) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	t := reg.joins[name]
	if t == nil {
		return
	}
	delete(reg.joins, name)
	delete(reg.joinAlias, canonKey(name))
	for _, a := range t.Aliases {
		delete(reg.joinAlias, canonKey(a))
	}
}
