package engine

import (
	"testing"

	"knncost/internal/aknn"
)

// TestAknnBoundsRegistration: the aknn-bounds technique resolves by
// canonical name and aliases, builds its artifact once, and estimates
// bit-identically to direct construction from the same trees.
func TestAknnBoundsRegistration(t *testing.T) {
	outer := NewRelation("o", testTree(t, 2000, 1), BuildOptions{SampleSize: 7})
	inner := NewRelation("i", testTree(t, 1500, 2), BuildOptions{SampleSize: 7})

	for _, name := range []string{TechAknnBounds, "aknnbounds", "aknn", " AKNN-Bounds "} {
		jt, err := LookupJoin(name)
		if err != nil {
			t.Fatalf("LookupJoin(%q): %v", name, err)
		}
		if jt.Name != TechAknnBounds {
			t.Fatalf("LookupJoin(%q) = %s", name, jt.Name)
		}
		if !jt.Preprocessed {
			t.Fatalf("%s not marked preprocessed", jt.Name)
		}
	}

	s1 := inner.AknnSummary()
	if s2 := inner.AknnSummary(); s1 != s2 {
		t.Error("AknnSummary built twice")
	}

	est, err := outer.JoinEstimator(TechAknnBounds, inner)
	if err != nil {
		t.Fatal(err)
	}
	direct := aknn.BuildSummary(inner.Count()).Bind(outer.Count(), 7)
	for _, k := range []int{1, 7, 64, 2000} {
		got, err := est.EstimateJoin(k)
		want, wantErr := direct.EstimateJoin(k)
		if err != nil || wantErr != nil || got != want {
			t.Fatalf("k=%d: registry %v,%v; direct %v,%v", k, got, err, want, wantErr)
		}
	}
	if _, err := est.EstimateJoin(0); err == nil {
		t.Error("k=0 accepted")
	}
}

// TestAknnSummarySeeded: a seeded summary is served verbatim, never
// rebuilt — the store's warm-restart contract.
func TestAknnSummarySeeded(t *testing.T) {
	rel := NewRelation("r", testTree(t, 800, 3), BuildOptions{})
	pre := aknn.BuildSummary(rel.Count())
	rel.Seed(TechAknnBounds, pre)
	if got := rel.AknnSummary(); got != pre {
		t.Fatalf("seeded summary not served: got %p, want %p", got, pre)
	}
}

// TestAknnBoundsPairDirection: the summary is an inner-relation artifact;
// swapping outer and inner must use the other relation's summary.
func TestAknnBoundsPairDirection(t *testing.T) {
	a := NewRelation("a", testTree(t, 2000, 4), BuildOptions{SampleSize: 0})
	b := NewRelation("b", testTree(t, 300, 5), BuildOptions{SampleSize: 0})
	estAB, err := a.JoinEstimator(TechAknnBounds, b)
	if err != nil {
		t.Fatal(err)
	}
	estBA, err := b.JoinEstimator(TechAknnBounds, a)
	if err != nil {
		t.Fatal(err)
	}
	wantAB := aknn.Cost(a.Count(), b.Count(), 5)
	wantBA := aknn.Cost(b.Count(), a.Count(), 5)
	if wantAB == wantBA {
		t.Fatal("fixture degenerate: both directions cost the same")
	}
	gotAB, _ := estAB.EstimateJoin(5)
	gotBA, _ := estBA.EstimateJoin(5)
	if gotAB != float64(wantAB) || gotBA != float64(wantBA) {
		t.Fatalf("a⋉b = %v (want %d), b⋉a = %v (want %d)", gotAB, wantAB, gotBA, wantBA)
	}
}
