package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"knncost/internal/core"
)

// SelectTechnique is one named k-NN-Select estimation technique.
type SelectTechnique struct {
	// Name is the canonical registry name, e.g. "staircase-cc".
	Name string
	// Aliases also resolve to this technique (the pre-registry wire names
	// of the HTTP service among them).
	Aliases []string
	// Summary is a one-line description for listings.
	Summary string
	// Preprocessed reports whether the technique builds a preprocessing
	// artifact (cached on the Relation) as opposed to estimating directly
	// off the index.
	Preprocessed bool
	// Estimator resolves the technique against a relation.
	Estimator func(r *Relation) (core.SelectEstimator, error)
}

// JoinTechnique is one named k-NN-Join estimation technique.
type JoinTechnique struct {
	Name         string
	Aliases      []string
	Summary      string
	Preprocessed bool
	// Estimator resolves the technique for the ordered pair
	// (outer ⋉ inner).
	Estimator func(outer, inner *Relation) (core.JoinEstimator, error)
}

// registry holds the named techniques. Registration normally happens in
// init (the built-ins below); the lock also admits test registrations and
// future plugin-style extensions.
type registry struct {
	mu          sync.RWMutex
	selects     map[string]*SelectTechnique // canonical name → technique
	joins       map[string]*JoinTechnique
	selectAlias map[string]string // every accepted name → canonical
	joinAlias   map[string]string
}

var reg = &registry{
	selects:     map[string]*SelectTechnique{},
	joins:       map[string]*JoinTechnique{},
	selectAlias: map[string]string{},
	joinAlias:   map[string]string{},
}

// RegisterSelect adds a select technique to the registry. It panics on an
// empty name, a nil estimator, or any name/alias collision — duplicate
// registration is a programming error, caught at init time, never a
// runtime condition to handle.
func RegisterSelect(t SelectTechnique) {
	if t.Name == "" || t.Estimator == nil {
		panic("engine: select technique needs a name and an estimator")
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	for _, n := range append([]string{t.Name}, t.Aliases...) {
		n = canonKey(n)
		if prev, dup := reg.selectAlias[n]; dup {
			panic(fmt.Sprintf("engine: select technique name %q already registered (by %q)", n, prev))
		}
	}
	cp := t
	cp.Aliases = append([]string(nil), t.Aliases...)
	reg.selects[t.Name] = &cp
	reg.selectAlias[canonKey(t.Name)] = t.Name
	for _, a := range t.Aliases {
		reg.selectAlias[canonKey(a)] = t.Name
	}
}

// RegisterJoin adds a join technique to the registry; same contract as
// RegisterSelect.
func RegisterJoin(t JoinTechnique) {
	if t.Name == "" || t.Estimator == nil {
		panic("engine: join technique needs a name and an estimator")
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	for _, n := range append([]string{t.Name}, t.Aliases...) {
		n = canonKey(n)
		if prev, dup := reg.joinAlias[n]; dup {
			panic(fmt.Sprintf("engine: join technique name %q already registered (by %q)", n, prev))
		}
	}
	cp := t
	cp.Aliases = append([]string(nil), t.Aliases...)
	reg.joins[t.Name] = &cp
	reg.joinAlias[canonKey(t.Name)] = t.Name
	for _, a := range t.Aliases {
		reg.joinAlias[canonKey(a)] = t.Name
	}
}

// canonKey normalizes a lookup name: case-insensitive, surrounding
// whitespace ignored.
func canonKey(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}

// LookupSelect resolves a select technique by canonical name or alias.
// The error on an unknown name lists every registered canonical name.
func LookupSelect(name string) (SelectTechnique, error) {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	canon, ok := reg.selectAlias[canonKey(name)]
	if !ok {
		return SelectTechnique{}, fmt.Errorf("engine: unknown select technique %q (registered: %s)",
			name, strings.Join(selectNamesLocked(), ", "))
	}
	return copySelectLocked(canon), nil
}

// LookupJoin resolves a join technique by canonical name or alias.
func LookupJoin(name string) (JoinTechnique, error) {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	canon, ok := reg.joinAlias[canonKey(name)]
	if !ok {
		return JoinTechnique{}, fmt.Errorf("engine: unknown join technique %q (registered: %s)",
			name, strings.Join(joinNamesLocked(), ", "))
	}
	return copyJoinLocked(canon), nil
}

// CanonSelectName resolves a select technique name or alias to its
// canonical registered name without copying the technique. Unlike
// LookupSelect it performs no heap allocations for an already-lowercase
// name, which is what lets a plan-cache lookup canonicalize its technique
// set on the zero-allocation hit path.
func CanonSelectName(name string) (string, bool) {
	reg.mu.RLock()
	canon, ok := reg.selectAlias[canonKey(name)]
	reg.mu.RUnlock()
	return canon, ok
}

// CanonJoinName is CanonSelectName for join techniques.
func CanonJoinName(name string) (string, bool) {
	reg.mu.RLock()
	canon, ok := reg.joinAlias[canonKey(name)]
	reg.mu.RUnlock()
	return canon, ok
}

// SelectNames returns the sorted canonical names of the registered select
// techniques.
func SelectNames() []string {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	return selectNamesLocked()
}

// JoinNames returns the sorted canonical names of the registered join
// techniques.
func JoinNames() []string {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	return joinNamesLocked()
}

// SelectTechniques returns the registered select techniques sorted by
// canonical name.
func SelectTechniques() []SelectTechnique {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	out := make([]SelectTechnique, 0, len(reg.selects))
	for _, name := range selectNamesLocked() {
		out = append(out, copySelectLocked(name))
	}
	return out
}

// JoinTechniques returns the registered join techniques sorted by
// canonical name.
func JoinTechniques() []JoinTechnique {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	out := make([]JoinTechnique, 0, len(reg.joins))
	for _, name := range joinNamesLocked() {
		out = append(out, copyJoinLocked(name))
	}
	return out
}

// copySelectLocked returns a defensive copy of the named technique with its
// alias list sorted, so every listing surface (HTTP, CLI, error bodies)
// prints aliases in a deterministic order regardless of registration order,
// and no caller can mutate the registry's own slice through the copy.
func copySelectLocked(canon string) SelectTechnique {
	cp := *reg.selects[canon]
	cp.Aliases = append([]string(nil), cp.Aliases...)
	sort.Strings(cp.Aliases)
	return cp
}

// copyJoinLocked is copySelectLocked for join techniques.
func copyJoinLocked(canon string) JoinTechnique {
	cp := *reg.joins[canon]
	cp.Aliases = append([]string(nil), cp.Aliases...)
	sort.Strings(cp.Aliases)
	return cp
}

func selectNamesLocked() []string {
	names := make([]string, 0, len(reg.selects))
	for name := range reg.selects {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func joinNamesLocked() []string {
	names := make([]string, 0, len(reg.joins))
	for name := range reg.joins {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
