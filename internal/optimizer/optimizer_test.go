package optimizer

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"knncost/internal/engine"
	"knncost/internal/geom"
	"knncost/internal/store"
)

// lattice returns an n×n grid of points inside (0,0)-(100,100), the same
// fully deterministic fixture family the planner's golden tests use.
func lattice(n int) []geom.Point {
	pts := make([]geom.Point, 0, n*n)
	step := 100.0 / float64(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			pts = append(pts, geom.Point{X: float64(i)*step + step/2, Y: float64(j)*step + step/2})
		}
	}
	return pts
}

// newTestStore builds a store with deterministic lattice relations of
// different densities: hotels (32×32), cafes (16×16), bars (24×24).
func newTestStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.New(store.Options{
		MaxK: 64, SampleSize: 40, GridSize: 4, IndexCapacity: 16,
		Bounds:          geom.NewRect(0, 0, 100, 100),
		CompactInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		st.Close(ctx)
	})
	for name, n := range map[string]int{"hotels": 32, "cafes": 16, "bars": 24} {
		if _, err := st.Register(name, lattice(n)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := st.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	return st
}

func twoSelects(kHotels, kCafes int) Query {
	return Query{Selects: []SelectPredicate{
		{Relation: "hotels", Query: geom.Point{X: 50, Y: 50}, K: kHotels, Technique: engine.TechDensity},
		{Relation: "cafes", Query: geom.Point{X: 50, Y: 50}, K: kCafes, Technique: engine.TechDensity},
	}}
}

func selectPlusJoin(kSel, kJoin int) Query {
	return Query{
		Selects: []SelectPredicate{
			{Relation: "hotels", Query: geom.Point{X: 50, Y: 50}, K: kSel, Technique: engine.TechDensity},
		},
		Join: &JoinPredicate{Outer: "hotels", Inner: "cafes", K: kJoin, Technique: engine.TechVirtualGrid},
	}
}

func TestValidate(t *testing.T) {
	st := newTestStore(t)
	v := st.View()
	pt := geom.Point{X: 50, Y: 50}
	cases := []struct {
		name string
		q    Query
	}{
		{"no predicates", Query{}},
		{"one select", Query{Selects: []SelectPredicate{{Relation: "hotels", Query: pt, K: 3}}}},
		{"join alone", Query{Join: &JoinPredicate{Outer: "hotels", Inner: "cafes", K: 3}}},
		{"bad k", Query{Selects: []SelectPredicate{
			{Relation: "hotels", Query: pt, K: 0},
			{Relation: "cafes", Query: pt, K: 3},
		}}},
		{"missing relation name", Query{Selects: []SelectPredicate{
			{Relation: "", Query: pt, K: 3},
			{Relation: "cafes", Query: pt, K: 3},
		}}},
		{"non-finite point", Query{Selects: []SelectPredicate{
			{Relation: "hotels", Query: geom.Point{X: 50 / zero(), Y: 50}, K: 3},
			{Relation: "cafes", Query: pt, K: 3},
		}}},
		{"join self", Query{
			Selects: []SelectPredicate{{Relation: "hotels", Query: pt, K: 3}},
			Join:    &JoinPredicate{Outer: "hotels", Inner: "hotels", K: 3},
		}},
		{"join bad k", Query{
			Selects: []SelectPredicate{{Relation: "hotels", Query: pt, K: 3}},
			Join:    &JoinPredicate{Outer: "hotels", Inner: "cafes", K: 0},
		}},
		{"select off the join sides", Query{
			Selects: []SelectPredicate{{Relation: "bars", Query: pt, K: 3}},
			Join:    &JoinPredicate{Outer: "hotels", Inner: "cafes", K: 3},
		}},
		{"bad selectivity", func() Query {
			q := twoSelects(4, 4)
			q.Selectivity = 1.5
			return q
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := PlanOnce(v, tc.q); err == nil {
				t.Fatalf("PlanOnce(%+v) succeeded, want error", tc.q)
			}
		})
	}

	t.Run("unknown relation", func(t *testing.T) {
		q := twoSelects(4, 4)
		q.Selects[0].Relation = "nope"
		if _, err := NewPlanner(0).Plan(v, q); err == nil {
			t.Fatal("planning against an unknown relation succeeded")
		}
	})
	t.Run("unknown technique", func(t *testing.T) {
		q := twoSelects(4, 4)
		q.Selects[0].Technique = "nope"
		_, err := NewPlanner(0).Plan(v, q)
		if err == nil {
			t.Fatal("planning with an unknown technique succeeded")
		}
		if want := "unknown select technique"; !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	})
}

func zero() float64 { return 0 }

// TestDifferentialTermPricing re-prices every term of every enumerated
// alternative independently through the registry and requires the plan
// cost to be reproduced bit for bit — enumeration and execution pricing
// cannot drift.
func TestDifferentialTermPricing(t *testing.T) {
	st := newTestStore(t)
	v := st.View()
	queries := []Query{
		twoSelects(8, 4),
		func() Query { q := twoSelects(8, 4); q.Selectivity = 0.25; return q }(),
		selectPlusJoin(8, 3),
		func() Query { q := selectPlusJoin(8, 3); q.Selectivity = 0.5; return q }(),
		{
			Selects: []SelectPredicate{
				{Relation: "hotels", Query: geom.Point{X: 20, Y: 30}, K: 6},
				{Relation: "cafes", Query: geom.Point{X: 70, Y: 10}, K: 4},
				{Relation: "bars", Query: geom.Point{X: 40, Y: 80}, K: 9},
			},
		},
		{
			Selects: []SelectPredicate{
				{Relation: "hotels", Query: geom.Point{X: 50, Y: 50}, K: 8},
				{Relation: "cafes", Query: geom.Point{X: 25, Y: 75}, K: 4},
			},
			Join: &JoinPredicate{Outer: "hotels", Inner: "cafes", K: 3},
		},
	}
	for qi, q := range queries {
		d, err := PlanOnce(v, q)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		for pi, plan := range d.Alternatives {
			sum := 0.0
			for ti, term := range plan.Terms {
				blocks, err := PriceTerm(v, term)
				if err != nil {
					t.Fatalf("query %d plan %d term %d: %v", qi, pi, ti, err)
				}
				if blocks != term.Blocks {
					t.Fatalf("query %d plan %d term %d (%s %s): independent price %v != recorded %v",
						qi, pi, ti, term.Kind, term.Relation, blocks, term.Blocks)
				}
				sum += term.Cost()
			}
			if sum != plan.EstimatedCost {
				t.Fatalf("query %d plan %d (%s): term sum %v != estimated cost %v",
					qi, pi, plan.Description, sum, plan.EstimatedCost)
			}
		}
	}
}

// TestCachedPlanHotSwapOracle pins the invalidation contract end to end: a
// cached plan survives unrelated traffic, a hot swap of a referenced
// relation invalidates it (observable in the expvar-backed counter), and
// the re-planned decision is bit-identical to a from-scratch PlanOnce
// against the new view.
func TestCachedPlanHotSwapOracle(t *testing.T) {
	st := newTestStore(t)
	p := NewPlanner(0)
	st.AddPublishHook(p.Invalidate)

	q := twoSelects(8, 4)
	d1, err := p.Plan(st.View(), q)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Cached {
		t.Fatal("first plan came from the cache")
	}
	d2, err := p.Plan(st.View(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Cached {
		t.Fatal("second plan was not served from the cache")
	}
	if d2.Chosen.Description != d1.Chosen.Description || d2.Chosen.EstimatedCost != d1.Chosen.EstimatedCost {
		t.Fatalf("cached decision diverged: %+v vs %+v", d2.Chosen, d1.Chosen)
	}

	// Hot swap hotels: same name, but the points now cluster in the lower
	// left corner, far from the query point, so the new snapshot prices
	// differently. The publish hook must purge the cached plan.
	before := p.Invalidations()
	clustered := lattice(32)
	for i := range clustered {
		clustered[i].X *= 0.25
		clustered[i].Y *= 0.25
	}
	if _, err := st.Register("hotels", clustered); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := st.WaitReady(ctx, "hotels"); err != nil {
		t.Fatal(err)
	}
	if got := p.Invalidations(); got <= before {
		t.Fatalf("invalidations = %d, want > %d after hot swap", got, before)
	}
	if p.Len() != 0 {
		t.Fatalf("cache still holds %d entries after invalidation", p.Len())
	}

	v := st.View()
	d3, err := p.Plan(v, q)
	if err != nil {
		t.Fatal(err)
	}
	if d3.Cached {
		t.Fatal("post-swap plan served from the cache (stale)")
	}
	fresh, err := PlanOnce(v, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(d3.Alternatives) != len(fresh.Alternatives) {
		t.Fatalf("alternative counts differ: %d vs %d", len(d3.Alternatives), len(fresh.Alternatives))
	}
	for i := range fresh.Alternatives {
		a, b := d3.Alternatives[i], fresh.Alternatives[i]
		if a.Description != b.Description || a.EstimatedCost != b.EstimatedCost {
			t.Fatalf("alternative %d differs after swap: %+v vs %+v", i, a, b)
		}
		for ti := range b.Terms {
			if a.Terms[ti] != b.Terms[ti] {
				t.Fatalf("alternative %d term %d differs: %+v vs %+v", i, ti, a.Terms[ti], b.Terms[ti])
			}
		}
	}
	if d3.Chosen.EstimatedCost == d1.Chosen.EstimatedCost {
		t.Fatal("hot swap to denser data did not change the plan cost; fixture is not exercising the swap")
	}
}

// TestCachedLookupAllocs pins the acceptance criterion: resolving a cached
// plan performs zero heap allocations.
func TestCachedLookupAllocs(t *testing.T) {
	st := newTestStore(t)
	p := NewPlanner(0)
	v := st.View()
	qs := twoSelects(8, 4)
	qj := selectPlusJoin(8, 3)
	for _, q := range []Query{qs, qj} {
		if _, err := p.Plan(v, q); err != nil {
			t.Fatal(err)
		}
	}
	for name, q := range map[string]Query{"two-selects": qs, "select+join": qj} {
		q := q
		if allocs := testing.AllocsPerRun(200, func() {
			if _, err := p.Plan(v, q); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("%s: cached Plan allocates %.1f times per lookup, want 0", name, allocs)
		}
	}
}

// TestSingleFlight proves that concurrent misses of one fingerprint
// produce exactly one plan build, with every other caller either joining
// the in-flight build or hitting the cache it populated.
func TestSingleFlight(t *testing.T) {
	st := newTestStore(t)
	p := NewPlanner(0)
	v := st.View()
	q := twoSelects(8, 4)

	release := make(chan struct{})
	planBuildHook = func() { <-release }
	defer func() { planBuildHook = nil }()

	const goroutines = 32
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d, err := p.Plan(v, q)
			if err != nil {
				t.Error(err)
				return
			}
			if d == nil || d.Chosen == nil {
				t.Error("nil decision")
			}
		}()
	}
	time.Sleep(50 * time.Millisecond) // let the callers pile up in-flight
	close(release)
	wg.Wait()

	if got := p.Misses(); got != 1 {
		t.Fatalf("misses (plan builds) = %d, want exactly 1", got)
	}
	if got := p.Hits(); got != goroutines-1 {
		t.Fatalf("hits = %d, want %d", got, goroutines-1)
	}
}

// TestInvalidationDuringInFlightBuild proves an invalidation that lands
// while a plan is being built wins: the build's result is returned to its
// caller but never published into the cache.
func TestInvalidationDuringInFlightBuild(t *testing.T) {
	st := newTestStore(t)
	p := NewPlanner(0)
	v := st.View()
	q := twoSelects(8, 4)

	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	planBuildHook = func() {
		entered <- struct{}{}
		<-release
	}
	defer func() { planBuildHook = nil }()

	done := make(chan error, 1)
	go func() {
		_, err := p.Plan(v, q)
		done <- err
	}()
	<-entered
	p.Invalidate("hotels") // lands mid-build, after the epoch capture
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if p.Len() != 0 {
		t.Fatalf("stale entry published: cache holds %d entries", p.Len())
	}
	planBuildHook = nil
	d, err := p.Plan(v, q)
	if err != nil {
		t.Fatal(err)
	}
	if d.Cached {
		t.Fatal("re-plan after mid-build invalidation served from cache")
	}
	if got := p.Misses(); got != 2 {
		t.Fatalf("misses = %d, want 2 (invalidated build + re-plan)", got)
	}
}

// TestEvictionBound pins the LRU-with-cost bound: the cache never exceeds
// its capacity and evictions are counted.
func TestEvictionBound(t *testing.T) {
	st := newTestStore(t)
	const capEntries = 16
	p := NewPlanner(capEntries)
	v := st.View()
	for k := 1; k <= 48; k++ {
		if _, err := p.Plan(v, twoSelects(k, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Len(); got > capEntries {
		t.Fatalf("cache holds %d entries, bound is %d", got, capEntries)
	}
	if p.Evictions() == 0 {
		t.Fatal("no evictions counted despite overflowing the bound")
	}
}

// TestUncacheableWideQuery: queries wider than the fixed-size key plan
// fresh every time, correctly.
func TestUncacheableWideQuery(t *testing.T) {
	st := newTestStore(t)
	p := NewPlanner(0)
	v := st.View()
	sel := make([]SelectPredicate, maxKeySelects+1)
	for i := range sel {
		sel[i] = SelectPredicate{Relation: "hotels", Query: geom.Point{X: 50, Y: 50}, K: i + 1}
	}
	q := Query{Selects: sel}
	for i := 0; i < 3; i++ {
		d, err := p.Plan(v, q)
		if err != nil {
			t.Fatal(err)
		}
		if d.Cached {
			t.Fatal("wide query served from cache")
		}
	}
	if got := p.Misses(); got != 3 {
		t.Fatalf("misses = %d, want 3 (wide queries bypass the cache)", got)
	}
	if p.Len() != 0 {
		t.Fatalf("wide query cached: %d entries", p.Len())
	}
}

// TestParameterizedReuse: the fingerprint excludes coordinates, so a
// same-shaped query at a different point reuses the cached plan.
func TestParameterizedReuse(t *testing.T) {
	st := newTestStore(t)
	p := NewPlanner(0)
	v := st.View()
	if _, err := p.Plan(v, twoSelects(8, 4)); err != nil {
		t.Fatal(err)
	}
	q := twoSelects(8, 4)
	q.Selects[0].Query = geom.Point{X: 10, Y: 90}
	d, err := p.Plan(v, q)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Cached {
		t.Fatal("same-shaped query at a new point missed the cache")
	}
	// A different k is a different shape: must miss.
	d, err = p.Plan(v, twoSelects(9, 4))
	if err != nil {
		t.Fatal(err)
	}
	if d.Cached {
		t.Fatal("different-k query hit the cache")
	}
}

// TestTechniqueAliasesShareFingerprint: aliases canonicalize before
// fingerprinting, so "staircase" and "staircase-cc" are one cache entry.
func TestTechniqueAliasesShareFingerprint(t *testing.T) {
	st := newTestStore(t)
	p := NewPlanner(0)
	v := st.View()
	q := twoSelects(8, 4)
	q.Selects[0].Technique = "staircase-cc"
	if _, err := p.Plan(v, q); err != nil {
		t.Fatal(err)
	}
	q.Selects[0].Technique = "staircase"
	d, err := p.Plan(v, q)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Cached {
		t.Fatal("alias spelling missed the cache")
	}
}
