package optimizer

import (
	"container/list"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"knncost/internal/engine"
	"knncost/internal/store"
)

const (
	// numShards spreads the cache over independently locked shards so
	// concurrent lookups on a hot plan mix rarely contend.
	numShards = 16
	// maxKeySelects bounds the select predicates a cache key can carry;
	// wider queries plan fresh every time (the key is a fixed-size struct
	// so a lookup never heap-allocates).
	maxKeySelects = 4
	// maxKeyRelations bounds the distinct relation names a key references:
	// every select plus both join sides.
	maxKeyRelations = maxKeySelects + 2
	// evictScan is how deep into the LRU tail eviction looks for the
	// cheapest-to-recompute victim (LRU-with-cost: among the ~evictScan
	// least recently used entries, drop the one whose re-plan is cheapest).
	evictScan = 4
	// DefaultCacheEntries is the cache bound when NewPlanner is given a
	// non-positive size.
	DefaultCacheEntries = 1024
)

// FNV-1a 64-bit constants; the fingerprint is hashed field by field so no
// intermediate buffer is allocated.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func hashByte(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= fnvPrime
	return h
}

func hashUint(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = hashByte(h, byte(v))
		v >>= 8
	}
	return h
}

func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = hashByte(h, s[i])
	}
	return hashByte(h, 0xff) // length delimiter
}

// selectKey is one select predicate's contribution to the plan fingerprint.
// The query point is deliberately absent: coordinates parameterize the
// estimates, not the plan shape, so one cached decision serves every query
// point of the same shape (parameterized-plan caching). What makes a hit
// safe is the snapshot version — republishing a relation changes it, so a
// stale entry can never match a live lookup.
type selectKey struct {
	relation  string
	version   uint64
	k         int
	technique string // canonical registry name
}

// joinKey is the join predicate's contribution to the fingerprint.
type joinKey struct {
	outer, inner            string
	outerVersion, innerVers uint64
	k                       int
	technique               string
}

// planKey is the full structured cache key. Entries store a copy; lookups
// build one on the stack and compare field by field after the hash match,
// so hash collisions degrade to misses, never to wrong plans.
type planKey struct {
	hasJoin  bool
	nSelects int
	selBits  uint64 // filter selectivity bits
	selects  [maxKeySelects]selectKey
	join     joinKey
}

func (k *planKey) hash() uint64 {
	h := fnvOffset
	if k.hasJoin {
		h = hashByte(h, 1)
	} else {
		h = hashByte(h, 0)
	}
	h = hashUint(h, uint64(k.nSelects))
	h = hashUint(h, k.selBits)
	for i := 0; i < k.nSelects; i++ {
		s := &k.selects[i]
		h = hashString(h, s.relation)
		h = hashUint(h, s.version)
		h = hashUint(h, uint64(s.k))
		h = hashString(h, s.technique)
	}
	if k.hasJoin {
		h = hashString(h, k.join.outer)
		h = hashString(h, k.join.inner)
		h = hashUint(h, k.join.outerVersion)
		h = hashUint(h, k.join.innerVers)
		h = hashUint(h, uint64(k.join.k))
		h = hashString(h, k.join.technique)
	}
	return h
}

func (k *planKey) matches(o *planKey) bool {
	if k.hasJoin != o.hasJoin || k.nSelects != o.nSelects || k.selBits != o.selBits {
		return false
	}
	for i := 0; i < k.nSelects; i++ {
		if k.selects[i] != o.selects[i] {
			return false
		}
	}
	return !k.hasJoin || k.join == o.join
}

// references reports whether the key prices any snapshot of relation name.
func (k *planKey) references(name string) bool {
	for i := 0; i < k.nSelects; i++ {
		if k.selects[i].relation == name {
			return true
		}
	}
	return k.hasJoin && (k.join.outer == name || k.join.inner == name)
}

// cacheEntry is one cached decision, linked into its shard's LRU list.
type cacheEntry struct {
	hash uint64
	key  planKey
	dec  *Decision // Cached=true copy, shared by every hit
	cost float64   // chosen-plan cost: the eviction heuristic's input
}

// flight is one in-progress plan build; concurrent lookups of the same key
// wait on done instead of building again.
type flight struct {
	key  planKey
	done chan struct{}
	dec  *Decision
	err  error
}

type planShard struct {
	mu      sync.Mutex
	entries map[uint64]*list.Element // hash → element holding *cacheEntry
	lru     list.List                // front = most recently used
	flights map[uint64]*flight
}

// Planner plans conjunctive queries through a sharded, bounded plan cache.
// Lookups of a cached plan perform zero heap allocations; concurrent
// misses on one key are single-flighted into one build; and Invalidate —
// wired to the store's publish hooks — removes every entry referencing a
// republished relation. A Planner must be created with NewPlanner.
type Planner struct {
	maxPerShard int
	shards      [numShards]planShard

	// epochMu guards epochs: a per-relation counter bumped by Invalidate.
	// A build captures the epochs of every referenced relation before it
	// resolves snapshot versions and re-checks them at insert time, so an
	// invalidation that races an in-flight build always wins — the built
	// entry is returned to its caller but never published into the cache.
	epochMu sync.Mutex
	epochs  map[string]uint64

	hits          atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
}

// NewPlanner creates a Planner whose cache holds at most maxEntries
// decisions (non-positive means DefaultCacheEntries).
func NewPlanner(maxEntries int) *Planner {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	perShard := (maxEntries + numShards - 1) / numShards
	if perShard < 1 {
		perShard = 1
	}
	p := &Planner{maxPerShard: perShard, epochs: map[string]uint64{}}
	for i := range p.shards {
		p.shards[i].entries = make(map[uint64]*list.Element)
		p.shards[i].flights = make(map[uint64]*flight)
	}
	return p
}

// Hits counts lookups served without a plan build: cache hits plus
// single-flight joins.
func (p *Planner) Hits() int64 { return p.hits.Load() }

// Misses counts plan builds (cache misses and uncacheable queries).
func (p *Planner) Misses() int64 { return p.misses.Load() }

// Evictions counts entries dropped by the LRU-with-cost bound.
func (p *Planner) Evictions() int64 { return p.evictions.Load() }

// Invalidations counts entries removed because a relation they reference
// was republished or dropped.
func (p *Planner) Invalidations() int64 { return p.invalidations.Load() }

// Len returns the number of cached decisions.
func (p *Planner) Len() int {
	n := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// relationNames writes the distinct relation names q references into out
// and returns how many. It is closure-free so the zero-allocation lookup
// path never risks a heap-escaping capture.
func relationNames(q *Query, out *[maxKeyRelations]string) int {
	n := 0
	for i := range q.Selects {
		n = addName(out, n, q.Selects[i].Relation)
	}
	if q.Join != nil {
		n = addName(out, n, q.Join.Outer)
		n = addName(out, n, q.Join.Inner)
	}
	return n
}

func addName(out *[maxKeyRelations]string, n int, name string) int {
	for i := 0; i < n; i++ {
		if out[i] == name {
			return n
		}
	}
	if n < len(out) {
		out[n] = name
		n++
	}
	return n
}

// buildKey fills key from q against v. cacheable is false (with no error)
// when the query is too wide for the fixed-size key; errors report unknown
// relations or techniques.
func buildKey(v *store.View, q *Query, key *planKey) (cacheable bool, err error) {
	if len(q.Selects) > maxKeySelects {
		return false, nil
	}
	key.nSelects = len(q.Selects)
	key.selBits = math.Float64bits(q.Selectivity)
	for i := range q.Selects {
		s := &q.Selects[i]
		snap := v.Relation(s.Relation)
		if snap == nil {
			return false, fmt.Errorf("optimizer: unknown relation %q", s.Relation)
		}
		canon, ok := engine.CanonSelectName(selectTechnique(s.Technique))
		if !ok {
			_, lerr := engine.LookupSelect(s.Technique)
			return false, fmt.Errorf("optimizer: %w", lerr)
		}
		key.selects[i] = selectKey{relation: s.Relation, version: snap.Version, k: s.K, technique: canon}
	}
	if j := q.Join; j != nil {
		key.hasJoin = true
		outer, inner := v.Relation(j.Outer), v.Relation(j.Inner)
		if outer == nil {
			return false, fmt.Errorf("optimizer: unknown relation %q", j.Outer)
		}
		if inner == nil {
			return false, fmt.Errorf("optimizer: unknown relation %q", j.Inner)
		}
		canon, ok := engine.CanonJoinName(joinTechnique(j.Technique))
		if !ok {
			_, lerr := engine.LookupJoin(j.Technique)
			return false, fmt.Errorf("optimizer: %w", lerr)
		}
		key.join = joinKey{
			outer: j.Outer, inner: j.Inner,
			outerVersion: outer.Version, innerVers: inner.Version,
			k: j.K, technique: canon,
		}
	}
	return true, nil
}

// captureEpochs reads the current epoch of every relation q references.
// It runs before buildKey resolves snapshot versions, so an Invalidate
// that lands anywhere between version resolution and cache insert is
// always detected by the insert-time re-check.
func (p *Planner) captureEpochs(names *[maxKeyRelations]string, n int, out *[maxKeyRelations]uint64) {
	p.epochMu.Lock()
	for i := 0; i < n; i++ {
		out[i] = p.epochs[names[i]]
	}
	p.epochMu.Unlock()
}

func (p *Planner) epochsUnchanged(names *[maxKeyRelations]string, n int, snap *[maxKeyRelations]uint64) bool {
	p.epochMu.Lock()
	defer p.epochMu.Unlock()
	for i := 0; i < n; i++ {
		if p.epochs[names[i]] != snap[i] {
			return false
		}
	}
	return true
}

// Plan resolves q against v, serving a cached decision when the
// fingerprint — every referenced relation's snapshot version, the query
// shape, the k values and the canonical technique set — matches a prior
// plan. The query's coordinates are not part of the fingerprint: the plan
// is priced at the first binding and reused for every same-shaped query
// (see selectKey). The returned Decision is shared and must not be
// mutated. A cached lookup performs zero heap allocations.
func (p *Planner) Plan(v *store.View, q Query) (*Decision, error) {
	if err := q.validate(); err != nil {
		return nil, err
	}
	var names [maxKeyRelations]string
	nNames := relationNames(&q, &names)
	var epochs [maxKeyRelations]uint64
	p.captureEpochs(&names, nNames, &epochs)

	var key planKey
	cacheable, err := buildKey(v, &q, &key)
	if err != nil {
		return nil, err
	}
	if !cacheable {
		p.misses.Add(1)
		return PlanOnce(v, q)
	}
	h := key.hash()
	sh := &p.shards[h%numShards]

	sh.mu.Lock()
	if el, ok := sh.entries[h]; ok {
		ent := el.Value.(*cacheEntry)
		if ent.key.matches(&key) {
			sh.lru.MoveToFront(el)
			sh.mu.Unlock()
			p.hits.Add(1)
			return ent.dec, nil
		}
	}
	if f, ok := sh.flights[h]; ok && f.key.matches(&key) {
		sh.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, f.err
		}
		p.hits.Add(1)
		return f.dec, nil
	}
	f := &flight{key: key, done: make(chan struct{})}
	sh.flights[h] = f
	sh.mu.Unlock()

	dec, err := p.buildDecision(v, &q, h)
	p.misses.Add(1)

	sh.mu.Lock()
	delete(sh.flights, h)
	if err == nil && p.epochsUnchanged(&names, nNames, &epochs) {
		sh.insertLocked(p, h, &key, dec)
	}
	sh.mu.Unlock()
	f.dec, f.err = dec, err
	close(f.done)
	return dec, err
}

// planBuildHook, when non-nil, runs at the start of every plan build — a
// test seam that holds builds in flight so the single-flight and
// invalidation races can be exercised deterministically.
var planBuildHook func()

func (p *Planner) buildDecision(v *store.View, q *Query, fingerprint uint64) (*Decision, error) {
	if planBuildHook != nil {
		planBuildHook()
	}
	plans, err := enumerate(v, q)
	if err != nil {
		return nil, err
	}
	dec := decide(plans)
	dec.Fingerprint = fingerprint
	return dec, nil
}

// insertLocked publishes a freshly built decision into the shard. The
// cached copy is annotated Cached=true (sharing the plan slices — they are
// immutable); the builder's own caller keeps the Cached=false original.
// Caller holds sh.mu.
func (sh *planShard) insertLocked(p *Planner, h uint64, key *planKey, dec *Decision) {
	if el, ok := sh.entries[h]; ok {
		// A different key hashed here (or a re-plan raced in): replace.
		sh.lru.Remove(el)
		delete(sh.entries, h)
	}
	if sh.lru.Len() >= p.maxPerShard {
		victim := sh.lru.Back()
		cand := victim
		for i := 0; i < evictScan && cand != nil; i++ {
			if cand.Value.(*cacheEntry).cost < victim.Value.(*cacheEntry).cost {
				victim = cand
			}
			cand = cand.Prev()
		}
		ve := victim.Value.(*cacheEntry)
		sh.lru.Remove(victim)
		delete(sh.entries, ve.hash)
		p.evictions.Add(1)
	}
	cached := *dec
	cached.Cached = true
	sh.entries[h] = sh.lru.PushFront(&cacheEntry{
		hash: h, key: *key, dec: &cached, cost: dec.Chosen.EstimatedCost,
	})
}

// Invalidate removes every cached decision referencing relation name and
// bumps the relation's epoch so in-flight builds that resolved the old
// snapshot cannot be published afterwards. It is designed to be registered
// as a store publish hook: it runs under the store's lock and never calls
// back into the store.
func (p *Planner) Invalidate(name string) {
	p.epochMu.Lock()
	p.epochs[name]++
	p.epochMu.Unlock()
	removed := int64(0)
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for h, el := range sh.entries {
			ent := el.Value.(*cacheEntry)
			if ent.key.references(name) {
				sh.lru.Remove(el)
				delete(sh.entries, h)
				removed++
			}
		}
		sh.mu.Unlock()
	}
	if removed > 0 {
		p.invalidations.Add(removed)
	}
}
