// Package optimizer plans conjunctive spatial queries that carry two or
// more kNN predicates — the whole-plan optimization the paper's follow-on
// (Aly, Aref, Ouzzani: "Spatial Queries with Two kNN Predicates") builds on
// top of the single-operator cost catalogs.
//
// A Query combines kNN-Select predicates (optionally with a non-spatial
// filter of known selectivity) and at most one kNN-Join predicate. The
// optimizer enumerates the evaluation orders — which select drives and
// which verify, join-then-filter versus select-then-join pushdown — and
// prices every alternative as a sum of CostTerms, each a single invocation
// of a registered estimation technique (internal/engine) against the live
// snapshots of an internal/store View. The result is a Decision with the
// same Explain() discipline as the single-operator planner.
//
// Because pricing is a pure function of (snapshot versions, query shape,
// k values, technique set) — the query's coordinates only parameterize the
// estimates, not the plan space — decisions are cached by a fingerprint of
// exactly those inputs (see Planner): the steady state resolves a cached
// plan with zero heap allocations, and a store hot swap, compaction publish
// or drop invalidates every plan referencing the republished relation
// through the store's publish hooks.
package optimizer

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"knncost/internal/engine"
	"knncost/internal/geom"
	"knncost/internal/store"
)

// SelectPredicate is one σ_{k,q}(relation) predicate of a conjunctive
// query.
type SelectPredicate struct {
	// Relation names a store relation.
	Relation string
	// Query is the predicate's query point.
	Query geom.Point
	// K is the number of neighbors wanted.
	K int
	// Technique names the registered select technique pricing this
	// predicate (canonical name or alias). Empty means staircase-cc.
	Technique string
}

// JoinPredicate is a k-NN-Join predicate Outer ⋉_k Inner.
type JoinPredicate struct {
	// Outer and Inner name store relations; they must differ.
	Outer string
	Inner string
	// K is the per-outer-point neighbor count.
	K int
	// Technique names the registered join technique (canonical name or
	// alias). Empty means catalog-merge.
	Technique string
}

// Query is a conjunctive plan: at least two kNN predicates — either ≥2
// selects, or a join plus ≥1 select — with an optional non-spatial filter.
type Query struct {
	// Selects are the kNN-Select predicates. With a Join, every select must
	// target the join's Outer or Inner relation.
	Selects []SelectPredicate
	// Join is the optional kNN-Join predicate.
	Join *JoinPredicate
	// Selectivity is the selectivity in (0, 1] of an extra non-spatial
	// filter evaluated on the fly by the driving select (the paper's
	// restaurants-within-budget shape): the driver browses ~k/Selectivity
	// candidates to produce k qualifying ones. Zero means no filter.
	Selectivity float64
}

// validate rejects malformed queries. It allocates only on the error path,
// keeping the cached-plan hot path allocation-free.
func (q *Query) validate() error {
	preds := len(q.Selects)
	if q.Join != nil {
		preds++
	}
	if preds < 2 {
		return fmt.Errorf("optimizer: a conjunctive query needs at least two kNN predicates, got %d", preds)
	}
	if q.Join == nil && len(q.Selects) < 2 {
		return fmt.Errorf("optimizer: without a join the query needs at least two selects, got %d", len(q.Selects))
	}
	if q.Selectivity != 0 && (q.Selectivity < 0 || q.Selectivity > 1) {
		return fmt.Errorf("optimizer: filter selectivity %g outside (0,1]", q.Selectivity)
	}
	for i := range q.Selects {
		s := &q.Selects[i]
		if s.Relation == "" {
			return fmt.Errorf("optimizer: selects[%d] has no relation", i)
		}
		if s.K < 1 {
			return fmt.Errorf("optimizer: selects[%d]: k must be >= 1, got %d", i, s.K)
		}
		if !finite(s.Query.X) || !finite(s.Query.Y) {
			return fmt.Errorf("optimizer: selects[%d] query point is not finite: %v", i, s.Query)
		}
	}
	if j := q.Join; j != nil {
		if j.Outer == "" || j.Inner == "" {
			return fmt.Errorf("optimizer: join needs outer and inner relations")
		}
		if j.Outer == j.Inner {
			return fmt.Errorf("optimizer: join outer and inner must differ, both are %q", j.Outer)
		}
		if j.K < 1 {
			return fmt.Errorf("optimizer: join k must be >= 1, got %d", j.K)
		}
		for i := range q.Selects {
			if r := q.Selects[i].Relation; r != j.Outer && r != j.Inner {
				return fmt.Errorf("optimizer: selects[%d] targets %q, which is neither join side (%q, %q)",
					i, r, j.Outer, j.Inner)
			}
		}
	}
	return nil
}

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// selectTechnique returns the technique to price a select with; empty
// defaults to staircase-cc (the paper's primary estimator).
func selectTechnique(t string) string {
	if t == "" {
		return engine.TechStaircaseCC
	}
	return t
}

// joinTechnique returns the technique to price the join with; empty
// defaults to catalog-merge.
func joinTechnique(t string) string {
	if t == "" {
		return engine.TechCatalogMerge
	}
	return t
}

// inflatedK is the expected browse depth of a driving select evaluating a
// filter of the given selectivity on the fly: ceil(k/selectivity), the same
// rule the single-operator planner applies.
func inflatedK(k int, selectivity float64) int {
	if selectivity == 0 {
		return k
	}
	return int(math.Ceil(float64(k) / selectivity))
}

// TermKind classifies a CostTerm.
type TermKind string

const (
	// TermSelect is one kNN-Select estimate: a driving browse or a
	// verification probe of a non-driving select predicate.
	TermSelect TermKind = "select"
	// TermJoin is one kNN-Join estimate.
	TermJoin TermKind = "join"
	// TermProbe is a per-result join probe of a select-then-join pushdown:
	// a kNN-Select estimate on the join's inner relation, paid once per
	// driver result (Count carries the fan-out).
	TermProbe TermKind = "probe"
)

// CostTerm is one registry-estimator invocation in a plan's cost. A plan's
// EstimatedCost is exactly the sum of its terms' Cost() — there is no
// other pricing path, so re-pricing every term independently through
// PriceTerm must reproduce the plan cost bit for bit (the differential
// gate pins this).
type CostTerm struct {
	// Kind classifies the term.
	Kind TermKind
	// Relation is the select/probe target, or the join's outer relation.
	Relation string
	// Inner is the join's inner relation; empty otherwise.
	Inner string
	// Query is the priced query point (selects and probes).
	Query geom.Point
	// K is the k the estimator was invoked with, after any filter
	// inflation.
	K int
	// Technique is the canonical name of the technique priced.
	Technique string
	// Count is how many times the estimate is paid — the probe fan-out of
	// a pushdown; 1 for everything else.
	Count float64
	// Blocks is the single-invocation estimate.
	Blocks float64
}

// Cost is the term's contribution to the plan cost.
func (t CostTerm) Cost() float64 { return t.Blocks * t.Count }

// Plan is one enumerated alternative: a description, its cost terms, and
// their sum.
type Plan struct {
	// Description names the evaluation order, e.g.
	// "drive hotels(k~20), verify cafes(k=4)".
	Description string
	// Terms are the registry-estimator invocations the cost sums over, in
	// evaluation order.
	Terms []CostTerm
	// EstimatedCost is Σ Terms[i].Cost(), accumulated in term order.
	EstimatedCost float64
}

// Decision is the outcome of planning: the chosen plan, every alternative
// considered (ascending cost), and the plan-cache provenance. Decisions
// returned by a Planner are shared between callers and must not be
// mutated.
type Decision struct {
	Chosen       *Plan
	Alternatives []*Plan // includes Chosen, ascending estimated cost
	// Cached reports that the decision was served from the plan cache.
	Cached bool
	// Fingerprint is the cache key hash (0 for uncacheable queries).
	Fingerprint uint64
}

// Explain formats the decision like the single-operator planner's EXPLAIN
// output, with a trailing annotation when the plan came from the cache.
func (d *Decision) Explain() string {
	var b strings.Builder
	for i, p := range d.Alternatives {
		marker := " "
		if p == d.Chosen {
			marker = "*"
		}
		fmt.Fprintf(&b, "%s plan %d: %-52s estimated %8.1f blocks\n",
			marker, i+1, p.Description, p.EstimatedCost)
	}
	if d.Cached {
		b.WriteString("  (served from plan cache)\n")
	}
	return b.String()
}

// kLabel renders a select's depth: "k~12" when the filter inflated it,
// "k=8" otherwise.
func kLabel(k, priced int) string {
	if priced != k {
		return fmt.Sprintf("k~%d", priced)
	}
	return fmt.Sprintf("k=%d", k)
}

// priceSelect prices one kNN-Select estimator invocation as a term.
func priceSelect(v *store.View, kind TermKind, s *SelectPredicate, at geom.Point, k int, count float64) (CostTerm, error) {
	snap := v.Relation(s.Relation)
	if snap == nil {
		return CostTerm{}, fmt.Errorf("optimizer: unknown relation %q", s.Relation)
	}
	tech, err := engine.LookupSelect(selectTechnique(s.Technique))
	if err != nil {
		return CostTerm{}, fmt.Errorf("optimizer: %w", err)
	}
	est, err := tech.Estimator(snap.Engine)
	if err != nil {
		return CostTerm{}, fmt.Errorf("optimizer: building %s for %s: %w", tech.Name, s.Relation, err)
	}
	blocks, err := est.EstimateSelect(at, k)
	if err != nil {
		return CostTerm{}, fmt.Errorf("optimizer: estimating σ(%s): %w", s.Relation, err)
	}
	return CostTerm{
		Kind: kind, Relation: s.Relation, Query: at, K: k,
		Technique: tech.Name, Count: count, Blocks: blocks,
	}, nil
}

// priceJoin prices the join predicate as a term.
func priceJoin(v *store.View, j *JoinPredicate) (CostTerm, error) {
	outer, inner := v.Relation(j.Outer), v.Relation(j.Inner)
	if outer == nil {
		return CostTerm{}, fmt.Errorf("optimizer: unknown relation %q", j.Outer)
	}
	if inner == nil {
		return CostTerm{}, fmt.Errorf("optimizer: unknown relation %q", j.Inner)
	}
	tech, err := engine.LookupJoin(joinTechnique(j.Technique))
	if err != nil {
		return CostTerm{}, fmt.Errorf("optimizer: %w", err)
	}
	est, err := tech.Estimator(outer.Engine, inner.Engine)
	if err != nil {
		return CostTerm{}, fmt.Errorf("optimizer: %s %s⋉%s unavailable: %w", tech.Name, j.Outer, j.Inner, err)
	}
	blocks, err := est.EstimateJoin(j.K)
	if err != nil {
		return CostTerm{}, fmt.Errorf("optimizer: estimating %s⋉%s: %w", j.Outer, j.Inner, err)
	}
	return CostTerm{
		Kind: TermJoin, Relation: j.Outer, Inner: j.Inner, K: j.K,
		Technique: tech.Name, Count: 1, Blocks: blocks,
	}, nil
}

// probePredicate derives the select predicate pricing one pushdown probe:
// a kNN-Select on the join's inner relation around the driver's query
// point (the driver's results cluster there), at the join's k, priced with
// the driver's select technique.
func probePredicate(j *JoinPredicate, driver *SelectPredicate) SelectPredicate {
	return SelectPredicate{Relation: j.Inner, Query: driver.Query, K: j.K, Technique: driver.Technique}
}

// sumTerms finalizes a plan: cost is accumulated strictly in term order so
// the differential re-pricing reproduces it bit for bit.
func sumTerms(desc string, terms []CostTerm) *Plan {
	cost := 0.0
	for _, t := range terms {
		cost += t.Cost()
	}
	return &Plan{Description: desc, Terms: terms, EstimatedCost: cost}
}

// enumerate builds and prices every alternative of q against v, in a
// deterministic order: without a join, one alternative per driving select;
// with a join, join-then-filter first, then one select-then-join pushdown
// per outer-side select.
func enumerate(v *store.View, q *Query) ([]*Plan, error) {
	if q.Join == nil {
		return enumerateSelects(v, q)
	}
	return enumerateJoin(v, q)
}

// enumerateSelects handles the selects-only shape: the driver pays its
// (filter-inflated) browse, every other predicate is verified at plain k.
func enumerateSelects(v *store.View, q *Query) ([]*Plan, error) {
	plans := make([]*Plan, 0, len(q.Selects))
	for d := range q.Selects {
		drv := &q.Selects[d]
		pk := inflatedK(drv.K, q.Selectivity)
		terms := make([]CostTerm, 0, len(q.Selects))
		t, err := priceSelect(v, TermSelect, drv, drv.Query, pk, 1)
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
		desc := fmt.Sprintf("drive %s(%s)", drv.Relation, kLabel(drv.K, pk))
		for i := range q.Selects {
			if i == d {
				continue
			}
			s := &q.Selects[i]
			t, err := priceSelect(v, TermSelect, s, s.Query, s.K, 1)
			if err != nil {
				return nil, err
			}
			terms = append(terms, t)
			desc += fmt.Sprintf(", verify %s(k=%d)", s.Relation, s.K)
		}
		plans = append(plans, sumTerms(desc, terms))
	}
	return plans, nil
}

// enumerateJoin handles the join shape: join-then-filter evaluates the
// join and verifies every select afterwards; select-then-join drives one
// outer-side select and probes the inner relation once per driver result.
func enumerateJoin(v *store.View, q *Query) ([]*Plan, error) {
	j := q.Join
	// join-then-filter: the join runs in full, the filter and the select
	// predicates prune its output afterwards.
	terms := make([]CostTerm, 0, len(q.Selects)+1)
	jt, err := priceJoin(v, j)
	if err != nil {
		return nil, err
	}
	terms = append(terms, jt)
	desc := fmt.Sprintf("join %s⋉%s(k=%d)", j.Outer, j.Inner, j.K)
	for i := range q.Selects {
		s := &q.Selects[i]
		t, err := priceSelect(v, TermSelect, s, s.Query, s.K, 1)
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
		desc += fmt.Sprintf(", verify %s(k=%d)", s.Relation, s.K)
	}
	plans := []*Plan{sumTerms(desc, terms)}

	// select-then-join: drive an outer-side select (filter-inflated), then
	// probe the inner relation once per driver result; remaining selects
	// verify as before.
	for d := range q.Selects {
		drv := &q.Selects[d]
		if drv.Relation != j.Outer {
			continue
		}
		pk := inflatedK(drv.K, q.Selectivity)
		terms := make([]CostTerm, 0, len(q.Selects)+1)
		t, err := priceSelect(v, TermSelect, drv, drv.Query, pk, 1)
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
		probe := probePredicate(j, drv)
		pt, err := priceSelect(v, TermProbe, &probe, probe.Query, probe.K, float64(drv.K))
		if err != nil {
			return nil, err
		}
		terms = append(terms, pt)
		desc := fmt.Sprintf("drive %s(%s), probe %s(k=%d)x%d",
			drv.Relation, kLabel(drv.K, pk), j.Inner, j.K, drv.K)
		for i := range q.Selects {
			if i == d {
				continue
			}
			s := &q.Selects[i]
			t, err := priceSelect(v, TermSelect, s, s.Query, s.K, 1)
			if err != nil {
				return nil, err
			}
			terms = append(terms, t)
			desc += fmt.Sprintf(", verify %s(k=%d)", s.Relation, s.K)
		}
		plans = append(plans, sumTerms(desc, terms))
	}
	return plans, nil
}

// decide sorts the alternatives by cost (stable: enumeration order breaks
// ties, like the single-operator planner) and picks the cheapest.
func decide(plans []*Plan) *Decision {
	sort.SliceStable(plans, func(i, j int) bool {
		return plans[i].EstimatedCost < plans[j].EstimatedCost
	})
	return &Decision{Chosen: plans[0], Alternatives: plans}
}

// PlanOnce enumerates, prices and decides q against v without any caching —
// the planning core a Planner wraps. Exposed for tests and one-shot
// callers (the knnquery CLI).
func PlanOnce(v *store.View, q Query) (*Decision, error) {
	if err := q.validate(); err != nil {
		return nil, err
	}
	plans, err := enumerate(v, &q)
	if err != nil {
		return nil, err
	}
	return decide(plans), nil
}

// PriceTerm re-prices one cost term independently through the technique
// registry. It is the differential oracle: a plan's EstimatedCost must
// equal the sum over its terms of PriceTerm(t) × t.Count, bit for bit.
func PriceTerm(v *store.View, t CostTerm) (float64, error) {
	switch t.Kind {
	case TermSelect, TermProbe:
		s := SelectPredicate{Relation: t.Relation, Query: t.Query, K: t.K, Technique: t.Technique}
		term, err := priceSelect(v, t.Kind, &s, t.Query, t.K, 1)
		if err != nil {
			return 0, err
		}
		return term.Blocks, nil
	case TermJoin:
		j := JoinPredicate{Outer: t.Relation, Inner: t.Inner, K: t.K, Technique: t.Technique}
		term, err := priceJoin(v, &j)
		if err != nil {
			return 0, err
		}
		return term.Blocks, nil
	default:
		return 0, fmt.Errorf("optimizer: unknown term kind %q", t.Kind)
	}
}
