package optimizer

import (
	"testing"

	"knncost/internal/engine"
	"knncost/internal/geom"
)

// TestExplainGolden extends the planner's PR-5 golden Explain suite to the
// multi-predicate shapes: the text (descriptions, ordering, costs, cache
// annotation) is pinned down to the digit against the fully deterministic
// lattice fixture, so neither the enumeration order nor the pricing can
// drift silently.
func TestExplainGolden(t *testing.T) {
	st := newTestStore(t)
	v := st.View()
	pt := geom.Point{X: 50, Y: 50}

	t.Run("two-select drive order", func(t *testing.T) {
		// The filter inflates only the driving browse: driving the small-k
		// select (hotels, k=8→32) is far cheaper than driving the large-k
		// one, so plan 1 drives hotels.
		d, err := PlanOnce(v, Query{Selects: []SelectPredicate{
			{Relation: "hotels", Query: pt, K: 8, Technique: engine.TechDensity},
			{Relation: "cafes", Query: pt, K: 48, Technique: engine.TechDensity},
		}, Selectivity: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		want := "* plan 1: drive hotels(k~32), verify cafes(k=48)               estimated      8.0 blocks\n" +
			"  plan 2: drive cafes(k~192), verify hotels(k=8)               estimated     20.0 blocks\n"
		if got := d.Explain(); got != want {
			t.Errorf("Explain() =\n%s\nwant:\n%s", got, want)
		}
	})

	t.Run("two-select ordering flip", func(t *testing.T) {
		// The mirror image of the previous shape: the large k now rides on
		// hotels, so the chosen driver flips to cafes.
		d, err := PlanOnce(v, Query{Selects: []SelectPredicate{
			{Relation: "hotels", Query: pt, K: 48, Technique: engine.TechDensity},
			{Relation: "cafes", Query: pt, K: 8, Technique: engine.TechDensity},
		}, Selectivity: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		want := "* plan 1: drive cafes(k~32), verify hotels(k=48)               estimated      8.0 blocks\n" +
			"  plan 2: drive hotels(k~192), verify cafes(k=8)               estimated     20.0 blocks\n"
		if got := d.Explain(); got != want {
			t.Errorf("Explain() =\n%s\nwant:\n%s", got, want)
		}
	})

	t.Run("select pushed into join", func(t *testing.T) {
		d, err := PlanOnce(v, Query{
			Selects: []SelectPredicate{
				{Relation: "hotels", Query: pt, K: 4, Technique: engine.TechDensity},
			},
			Join: &JoinPredicate{Outer: "hotels", Inner: "cafes", K: 3, Technique: engine.TechVirtualGrid},
		})
		if err != nil {
			t.Fatal(err)
		}
		want := "* plan 1: drive hotels(k=4), probe cafes(k=3)x4                estimated     20.0 blocks\n" +
			"  plan 2: join hotels⋉cafes(k=3), verify hotels(k=4)           estimated    498.0 blocks\n"
		if got := d.Explain(); got != want {
			t.Errorf("Explain() =\n%s\nwant:\n%s", got, want)
		}
	})

	t.Run("cache-hit annotation", func(t *testing.T) {
		p := NewPlanner(0)
		q := Query{Selects: []SelectPredicate{
			{Relation: "hotels", Query: pt, K: 8, Technique: engine.TechDensity},
			{Relation: "cafes", Query: pt, K: 8, Technique: engine.TechDensity},
		}}
		if _, err := p.Plan(v, q); err != nil {
			t.Fatal(err)
		}
		d, err := p.Plan(v, q)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Cached {
			t.Fatal("second plan not cached")
		}
		want := "* plan 1: drive hotels(k=8), verify cafes(k=8)                 estimated      8.0 blocks\n" +
			"  plan 2: drive cafes(k=8), verify hotels(k=8)                 estimated      8.0 blocks\n" +
			"  (served from plan cache)\n"
		if got := d.Explain(); got != want {
			t.Errorf("Explain() =\n%s\nwant:\n%s", got, want)
		}
	})
}
