package optimizer

import (
	"testing"

	"knncost/internal/engine"
	"knncost/internal/geom"
)

// TestPlanWithAknnBoundsJoin: the optimizer prices a join predicate with
// the aknn-bounds technique through the registry like any other — the
// join-first alternative carries a TermJoin priced by aknn-bounds,
// independent re-pricing reproduces it bit for bit, and the alias
// resolves to the identical decision.
func TestPlanWithAknnBoundsJoin(t *testing.T) {
	st := newTestStore(t)
	v := st.View()
	q := Query{
		Selects: []SelectPredicate{
			{Relation: "hotels", Query: geom.Point{X: 50, Y: 50}, K: 5, Technique: engine.TechDensity},
		},
		Join: &JoinPredicate{Outer: "hotels", Inner: "cafes", K: 3, Technique: engine.TechAknnBounds},
	}
	d, err := PlanOnce(v, q)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, plan := range d.Alternatives {
		for _, term := range plan.Terms {
			if term.Kind != TermJoin {
				continue
			}
			if term.Technique != engine.TechAknnBounds {
				t.Fatalf("join term priced by %q, want %q", term.Technique, engine.TechAknnBounds)
			}
			found = true
			blocks, err := PriceTerm(v, term)
			if err != nil || blocks != term.Blocks {
				t.Fatalf("re-priced join term %v,%v != recorded %v", blocks, err, term.Blocks)
			}
			// The term must be the registry's aknn-bounds answer for the
			// same pair and k.
			jt, err := engine.LookupJoin(engine.TechAknnBounds)
			if err != nil {
				t.Fatal(err)
			}
			est, err := jt.Estimator(v.Relation("hotels").Engine, v.Relation("cafes").Engine)
			if err != nil {
				t.Fatal(err)
			}
			want, err := est.EstimateJoin(term.K)
			if err != nil || term.Blocks != want {
				t.Fatalf("join term %v, registry %v (%v)", term.Blocks, want, err)
			}
		}
	}
	if !found {
		t.Fatal("no alternative carries an aknn-bounds join term")
	}

	qAlias := q
	qAlias.Join = &JoinPredicate{Outer: "hotels", Inner: "cafes", K: 3, Technique: "aknn"}
	dAlias, err := PlanOnce(v, qAlias)
	if err != nil {
		t.Fatal(err)
	}
	if dAlias.Chosen.EstimatedCost != d.Chosen.EstimatedCost ||
		dAlias.Chosen.Description != d.Chosen.Description {
		t.Fatalf("alias decision (%v, %q) != canonical (%v, %q)",
			dAlias.Chosen.EstimatedCost, dAlias.Chosen.Description,
			d.Chosen.EstimatedCost, d.Chosen.Description)
	}
}
