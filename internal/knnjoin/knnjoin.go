// Package knnjoin implements k-NN-Join evaluation: the locality-based
// block-by-block join of Sankaranarayanan, Samet & Varshney (paper ref
// [22]), which is the state of the art whose cost the paper's join
// estimators model, plus the naive per-point join used as a baseline.
//
// The locality of an outer block b_o is the minimal conservative set of
// inner blocks guaranteed to contain the k nearest neighbors of every point
// in b_o (§4). The ground-truth cost of a k-NN-Join is the total number of
// inner blocks scanned, i.e. the sum of locality sizes over all outer
// blocks.
package knnjoin

import (
	"context"

	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/knn"
	"knncost/internal/pqueue"
)

// Locality returns the locality blocks of origin `from` (typically an outer
// block's bounds) with respect to the inner index: inner blocks are scanned
// in MINDIST order from the origin, counts are accumulated until they reach
// k, the highest MAXDIST M among the accumulated blocks is marked, and
// scanning continues through every block whose MINDIST does not exceed M
// (Figure 6 of the paper). When the inner index holds fewer than k points
// the locality is every block. The locality of k < 1 is empty: no blocks
// need scanning to find zero neighbors, consistent with Join, which
// evaluates k <= 0 without touching the index. (Without this guard phase 2
// would run with a zero MAXDIST and return every block touching the
// origin.)
//
// The inner tree may be a data index or its Count-Index; only bounds and
// counts are consulted.
func Locality(inner *index.Tree, from geom.Origin, k int) []*index.Block {
	if k < 1 {
		return nil
	}
	var out []*index.Block
	scan := inner.ScanMinDist(from)
	// Phase 1: accumulate blocks until they jointly hold k points,
	// tracking the highest MAXDIST seen.
	count := 0
	maxDist := 0.0
	for count < k {
		blk, _, ok := scan.Next()
		if !ok {
			return out // fewer than k points in total: all blocks
		}
		out = append(out, blk)
		count += blk.Count
		if d := from.MaxDistTo(blk.Bounds); d > maxDist {
			maxDist = d
		}
	}
	// Phase 2: include every further block that could hold a point closer
	// than the marked MAXDIST.
	for {
		blk, minDist, ok := scan.Next()
		if !ok || minDist > maxDist {
			return out
		}
		out = append(out, blk)
	}
}

// LocalitySize returns only the size of the locality of `from` — the cost
// contribution of one outer block.
func LocalitySize(inner *index.Tree, from geom.Origin, k int) int {
	return len(Locality(inner, from, k))
}

// Cost returns the ground-truth cost of the k-NN-Join (outer ⋉_knn inner)
// under locality-based processing: the sum of locality sizes across the
// non-empty outer blocks (an empty outer block has no points to join, so
// the block-by-block algorithm never builds its locality). Both arguments
// may be Count-Indexes; no data points are touched.
func Cost(outer, inner *index.Tree, k int) int {
	total := 0
	for _, b := range outer.Blocks() {
		if b.Count == 0 {
			continue
		}
		total += LocalitySize(inner, b.Bounds, k)
	}
	return total
}

// CostContext is Cost with cancellation: the context is checked before each
// outer block's locality computation — block-scan granularity on the outer
// side, which bounds the time to react to a cancel by one locality scan.
// The full locality computation of Sankaranarayanan et al.'s join is our
// most expensive request path, so this is the variant the HTTP service must
// use. On cancellation it returns the context's error and the partial sum.
func CostContext(ctx context.Context, outer, inner *index.Tree, k int) (int, error) {
	total := 0
	for _, b := range outer.Blocks() {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		if b.Count == 0 {
			continue
		}
		total += LocalitySize(inner, b.Bounds, k)
	}
	return total, nil
}

// Pair is one result tuple of a k-NN-Join: an outer point and one of its k
// nearest inner neighbors.
type Pair struct {
	Outer    geom.Point
	Inner    geom.Point
	Distance float64
}

// Stats records the work performed by a join algorithm.
type Stats struct {
	// BlocksScanned is the number of inner blocks read. For the
	// locality-based join it equals Cost(outer, inner, k).
	BlocksScanned int
	// Comparisons is the number of point-to-point distance evaluations.
	Comparisons int
}

// Join evaluates (outer ⋉_knn inner) with the locality-based block-by-block
// algorithm: for each outer block it materializes the points of the block's
// locality once, then answers the k-NN of every point in the block from
// that shared set — the neighbor-reuse idea that distinguishes ref [22]
// from per-point approaches. emit is called once per result pair, grouped
// by outer point, neighbors in ascending distance order.
//
// Both trees must be data indexes (blocks carry points).
func Join(outer, inner *index.Tree, k int, emit func(Pair)) Stats {
	var stats Stats
	if k <= 0 {
		return stats
	}
	var loc []geom.Point
	for _, ob := range outer.Blocks() {
		if ob.Count == 0 {
			continue
		}
		locBlocks := Locality(inner, ob.Bounds, k)
		stats.BlocksScanned += len(locBlocks)
		loc = loc[:0]
		for _, lb := range locBlocks {
			loc = append(loc, lb.Points...)
		}
		for _, p := range ob.Points {
			stats.Comparisons += len(loc)
			for _, n := range kNearest(loc, p, k) {
				emit(Pair{Outer: p, Inner: n.Point, Distance: n.Dist})
			}
		}
	}
	return stats
}

// kNearest returns the k points of candidates nearest to p in ascending
// distance order, using a bounded max-heap.
func kNearest(candidates []geom.Point, p geom.Point, k int) []knn.Neighbor {
	var heap pqueue.Queue[knn.Neighbor]
	for _, c := range candidates {
		d := p.Dist(c)
		if heap.Len() == k {
			if worst, _ := heap.PeekPriority(); -worst <= d {
				continue
			}
			heap.Pop()
		}
		heap.Push(knn.Neighbor{Point: c, Dist: d}, -d)
	}
	out := make([]knn.Neighbor, heap.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i], _ = heap.Pop()
	}
	return out
}

// JoinNaive evaluates the join by running an independent distance-browsing
// k-NN-Select for every outer point, with no neighbor reuse — the approach
// §2 and §4 argue is costly. Its BlocksScanned aggregates the per-point
// select costs.
func JoinNaive(outer, inner *index.Tree, k int, emit func(Pair)) Stats {
	var stats Stats
	if k <= 0 {
		return stats
	}
	for _, ob := range outer.Blocks() {
		for _, p := range ob.Points {
			neighbors, s := knn.Select(inner, p, k)
			stats.BlocksScanned += s.BlocksScanned
			stats.Comparisons += s.PointsEnqueued
			for _, n := range neighbors {
				emit(Pair{Outer: p, Inner: n.Point, Distance: n.Dist})
			}
		}
	}
	return stats
}
