package knnjoin

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/quadtree"
)

func randPoints(rng *rand.Rand, n int, bounds geom.Rect) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: bounds.Min.X + rng.Float64()*bounds.Width(),
			Y: bounds.Min.Y + rng.Float64()*bounds.Height(),
		}
	}
	return pts
}

func buildIx(pts []geom.Point, bounds geom.Rect, capacity int) *index.Tree {
	return quadtree.Build(pts, quadtree.Options{Capacity: capacity, Bounds: bounds}).Index()
}

func TestLocalityCoversK(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bounds := geom.NewRect(0, 0, 100, 100)
	inner := buildIx(randPoints(rng, 2000, bounds), bounds, 50)
	from := geom.NewRect(10, 10, 15, 15)
	for _, k := range []int{1, 10, 100, 700} {
		loc := Locality(inner, from, k)
		total := 0
		for _, b := range loc {
			total += b.Count
		}
		if total < k {
			t.Errorf("k=%d: locality holds %d points", k, total)
		}
	}
}

func TestLocalityAllBlocksWhenKTooLarge(t *testing.T) {
	bounds := geom.NewRect(0, 0, 10, 10)
	inner := buildIx(randPoints(rand.New(rand.NewSource(2)), 50, bounds), bounds, 8)
	loc := Locality(inner, geom.NewRect(0, 0, 1, 1), 1000)
	if len(loc) != inner.NumBlocks() {
		t.Errorf("oversized k should return all %d blocks, got %d",
			inner.NumBlocks(), len(loc))
	}
}

func TestLocalityMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bounds := geom.NewRect(0, 0, 100, 100)
	inner := buildIx(randPoints(rng, 3000, bounds), bounds, 64)
	from := geom.NewRect(40, 40, 45, 45)
	last := 0
	for k := 1; k <= 2000; k *= 2 {
		size := LocalitySize(inner, from, k)
		if size < last {
			t.Errorf("locality size decreased from %d to %d at k=%d", last, size, k)
		}
		last = size
	}
}

// The key correctness property of the locality (§4, ref [22]): it contains
// the true k nearest neighbors of every point in the outer block.
func TestLocalityContainsTrueNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bounds := geom.NewRect(0, 0, 100, 100)
	innerPts := randPoints(rng, 1500, bounds)
	inner := buildIx(innerPts, bounds, 32)
	outerPts := randPoints(rng, 300, bounds)
	outer := buildIx(outerPts, bounds, 16)
	k := 7
	for _, ob := range outer.Blocks() {
		if ob.Count == 0 {
			continue
		}
		loc := Locality(inner, ob.Bounds, k)
		inLoc := map[geom.Point]bool{}
		for _, lb := range loc {
			for _, p := range lb.Points {
				inLoc[p] = true
			}
		}
		for _, p := range ob.Points {
			ds := make([]float64, len(innerPts))
			for i, ip := range innerPts {
				ds[i] = p.Dist(ip)
			}
			sort.Float64s(ds)
			kth := ds[k-1]
			for _, ip := range innerPts {
				if p.Dist(ip) < kth && !inLoc[ip] {
					t.Fatalf("locality of block %v misses neighbor %v of %v", ob.Bounds, ip, p)
				}
			}
		}
	}
}

func TestCostEqualsSumOfLocalities(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bounds := geom.NewRect(0, 0, 100, 100)
	inner := buildIx(randPoints(rng, 2000, bounds), bounds, 64)
	outer := buildIx(randPoints(rng, 1000, bounds), bounds, 64)
	k := 25
	want := 0
	for _, b := range outer.Blocks() {
		if b.Count == 0 {
			continue // empty outer blocks contribute no scans
		}
		want += LocalitySize(inner, b.Bounds, k)
	}
	if got := Cost(outer, inner, k); got != want {
		t.Errorf("Cost = %d, want %d", got, want)
	}
	// Cost computed on Count-Indexes must be identical: no data needed.
	if got := Cost(outer.CountTree(), inner.CountTree(), k); got != want {
		t.Errorf("Cost on count trees = %d, want %d", got, want)
	}
}

// joinResults collects distances per outer point, sorted for comparison.
func joinResults(stats *Stats, run func(emit func(Pair)) Stats) map[geom.Point][]float64 {
	out := map[geom.Point][]float64{}
	*stats = run(func(p Pair) {
		out[p.Outer] = append(out[p.Outer], p.Distance)
	})
	for _, ds := range out {
		sort.Float64s(ds)
	}
	return out
}

func TestJoinMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	bounds := geom.NewRect(0, 0, 50, 50)
	inner := buildIx(randPoints(rng, 800, bounds), bounds, 32)
	outer := buildIx(randPoints(rng, 200, bounds), bounds, 16)
	k := 5

	var locStats, naiveStats Stats
	locRes := joinResults(&locStats, func(emit func(Pair)) Stats {
		return Join(outer, inner, k, emit)
	})
	naiveRes := joinResults(&naiveStats, func(emit func(Pair)) Stats {
		return JoinNaive(outer, inner, k, emit)
	})

	if len(locRes) != len(naiveRes) {
		t.Fatalf("result cardinality: locality %d outers, naive %d", len(locRes), len(naiveRes))
	}
	for p, want := range naiveRes {
		got, ok := locRes[p]
		if !ok || len(got) != len(want) {
			t.Fatalf("outer %v: got %d neighbors, want %d", p, len(got), len(want))
		}
		for i := range want {
			if diff := got[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("outer %v neighbor %d: dist %g, want %g", p, i, got[i], want[i])
			}
		}
	}
	if locStats.BlocksScanned != Cost(outer, inner, k) {
		t.Errorf("Join stats %d != Cost %d", locStats.BlocksScanned, Cost(outer, inner, k))
	}
}

func TestJoinZeroK(t *testing.T) {
	bounds := geom.NewRect(0, 0, 10, 10)
	ix := buildIx(randPoints(rand.New(rand.NewSource(7)), 50, bounds), bounds, 8)
	called := false
	if s := Join(ix, ix, 0, func(Pair) { called = true }); s.BlocksScanned != 0 || called {
		t.Error("k=0 join must do nothing")
	}
}

func TestJoinAsymmetry(t *testing.T) {
	// R ⋉knn S and S ⋉knn R generally have different costs — the paper
	// stresses the operator is asymmetric. Construct a skewed case: a
	// dense cluster joined with sparse points.
	bounds := geom.NewRect(0, 0, 100, 100)
	rng := rand.New(rand.NewSource(8))
	var dense []geom.Point
	for i := 0; i < 1000; i++ {
		dense = append(dense, geom.Point{X: 10 + rng.Float64()*5, Y: 10 + rng.Float64()*5})
	}
	sparse := randPoints(rng, 1000, bounds)
	r := buildIx(dense, bounds, 32)
	s := buildIx(sparse, bounds, 32)
	k := 10
	if Cost(r, s, k) == Cost(s, r, k) {
		t.Skip("costs happen to coincide; asymmetry is distribution-dependent")
	}
}

// Property: locality-based join equals naive join on arbitrary random
// workloads (the reuse optimization must never change results).
func TestJoinEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		bounds := geom.NewRect(0, 0, 32, 32)
		inner := buildIx(randPoints(local, 100+local.Intn(300), bounds), bounds, 16)
		outer := buildIx(randPoints(local, 20+local.Intn(80), bounds), bounds, 8)
		k := 1 + local.Intn(8)
		var s1, s2 Stats
		a := joinResults(&s1, func(emit func(Pair)) Stats { return Join(outer, inner, k, emit) })
		b := joinResults(&s2, func(emit func(Pair)) Stats { return JoinNaive(outer, inner, k, emit) })
		if len(a) != len(b) {
			return false
		}
		for p, want := range b {
			got := a[p]
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if diff := got[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rng}); err != nil {
		t.Error(err)
	}
}
