package knnjoin

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"knncost/internal/geom"
)

func TestCostContextMatchesCost(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	bounds := geom.NewRect(0, 0, 100, 100)
	outer := buildIx(randPoints(rng, 1500, bounds), bounds, 32)
	inner := buildIx(randPoints(rng, 2500, bounds), bounds, 32)
	for _, k := range []int{1, 5, 25, 100} {
		want := Cost(outer, inner, k)
		got, err := CostContext(context.Background(), outer, inner, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got != want {
			t.Fatalf("k=%d: context cost %d != plain cost %d", k, got, want)
		}
	}
}

func TestCostContextCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	bounds := geom.NewRect(0, 0, 100, 100)
	outer := buildIx(randPoints(rng, 1500, bounds), bounds, 32)
	inner := buildIx(randPoints(rng, 2500, bounds), bounds, 32)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cost, err := CostContext(ctx, outer, inner, 10)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if cost != 0 {
		t.Fatalf("cancelled before any locality but partial cost = %d", cost)
	}
}
