package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(5, 7, 1, 2)
	want := Rect{Min: Point{1, 2}, Max: Point{5, 7}}
	if r != want {
		t.Fatalf("NewRect(5,7,1,2) = %v, want %v", r, want)
	}
	if !r.Valid() {
		t.Fatalf("normalized rect should be valid")
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(0, 0, 4, 3)
	if got := r.Width(); got != 4 {
		t.Errorf("Width = %g, want 4", got)
	}
	if got := r.Height(); got != 3 {
		t.Errorf("Height = %g, want 3", got)
	}
	if got := r.Area(); got != 12 {
		t.Errorf("Area = %g, want 12", got)
	}
	if got := r.Diagonal(); !almostEq(got, 5) {
		t.Errorf("Diagonal = %g, want 5", got)
	}
	if got := r.Center(); got != (Point{2, 1.5}) {
		t.Errorf("Center = %v, want (2, 1.5)", got)
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(0, 0, 2, 2)
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{1, 1}, true},
		{Point{0, 0}, true}, // boundary inclusive
		{Point{2, 2}, true}, // boundary inclusive
		{Point{2.0001, 1}, false},
		{Point{-0.0001, 1}, false},
		{Point{1, 3}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	cases := []struct {
		b    Rect
		want bool
	}{
		{NewRect(1, 1, 3, 3), true},
		{NewRect(2, 2, 3, 3), true}, // touching corner counts
		{NewRect(2, 0, 4, 2), true}, // touching edge counts
		{NewRect(2.1, 0, 4, 2), false},
		{NewRect(-1, -1, -0.5, -0.5), false},
		{NewRect(0.5, 0.5, 1.5, 1.5), true}, // fully inside
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("Intersects(%v) = %v, want %v", c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("Intersects is not symmetric for %v", c.b)
		}
	}
}

func TestQuadrantsPartition(t *testing.T) {
	r := NewRect(-1, -1, 3, 5)
	qs := r.Quadrants()
	var area float64
	for _, q := range qs {
		if !r.ContainsRect(q) {
			t.Errorf("quadrant %v not inside %v", q, r)
		}
		area += q.Area()
	}
	if !almostEq(area, r.Area()) {
		t.Errorf("quadrant areas sum to %g, want %g", area, r.Area())
	}
	// Quadrants only overlap on shared edges: pairwise intersection has
	// zero area.
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			a, b := qs[i], qs[j]
			if !a.Intersects(b) {
				continue
			}
			w := math.Min(a.Max.X, b.Max.X) - math.Max(a.Min.X, b.Min.X)
			h := math.Min(a.Max.Y, b.Max.Y) - math.Max(a.Min.Y, b.Min.Y)
			if w*h > 1e-12 {
				t.Errorf("quadrants %d and %d overlap with area %g", i, j, w*h)
			}
		}
	}
}

func TestMinMaxDistKnownValues(t *testing.T) {
	r := NewRect(0, 0, 2, 2)
	cases := []struct {
		p        Point
		min, max float64
	}{
		{Point{1, 1}, 0, math.Sqrt2},       // center: max = dist to corner
		{Point{0, 0}, 0, 2 * math.Sqrt2},   // corner
		{Point{3, 1}, 1, math.Sqrt(9 + 1)}, // farthest corner (0,0) or (0,2)
		{Point{3, 3}, math.Sqrt2, 3 * math.Sqrt2},
		{Point{-1, 1}, 1, math.Sqrt(9 + 1)},
	}
	for _, c := range cases {
		if got := MinDist(c.p, r); !almostEq(got, c.min) {
			t.Errorf("MinDist(%v) = %g, want %g", c.p, got, c.min)
		}
		if got := MaxDist(c.p, r); !almostEq(got, c.max) {
			t.Errorf("MaxDist(%v) = %g, want %g", c.p, got, c.max)
		}
	}
}

func TestMinMaxDistRectKnownValues(t *testing.T) {
	a := NewRect(0, 0, 1, 1)
	cases := []struct {
		b        Rect
		min, max float64
	}{
		{NewRect(2, 0, 3, 1), 1, math.Sqrt(9 + 1)},
		{NewRect(0.5, 0.5, 2, 2), 0, 2 * math.Sqrt2},
		{NewRect(2, 2, 3, 3), math.Sqrt2, 3 * math.Sqrt2},
		{a, 0, math.Sqrt2},
	}
	for _, c := range cases {
		if got := MinDistRect(a, c.b); !almostEq(got, c.min) {
			t.Errorf("MinDistRect(%v) = %g, want %g", c.b, got, c.min)
		}
		if got := MaxDistRect(a, c.b); !almostEq(got, c.max) {
			t.Errorf("MaxDistRect(%v) = %g, want %g", c.b, got, c.max)
		}
	}
}

func TestContainsCircle(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	if !r.ContainsCircle(Point{5, 5}, 5) {
		t.Errorf("inscribed circle should be contained")
	}
	if r.ContainsCircle(Point{5, 5}, 5.001) {
		t.Errorf("slightly larger circle should not be contained")
	}
	if r.ContainsCircle(Point{1, 5}, 2) {
		t.Errorf("circle crossing the left edge should not be contained")
	}
}

func TestBoundsOf(t *testing.T) {
	if got := BoundsOf(nil); got != (Rect{}) {
		t.Errorf("BoundsOf(nil) = %v, want zero", got)
	}
	pts := []Point{{3, 1}, {-2, 5}, {0, 0}}
	got := BoundsOf(pts)
	want := Rect{Min: Point{-2, 0}, Max: Point{3, 5}}
	if got != want {
		t.Errorf("BoundsOf = %v, want %v", got, want)
	}
	for _, p := range pts {
		if !got.Contains(p) {
			t.Errorf("bounds %v should contain %v", got, p)
		}
	}
}

// randRect draws a valid rectangle inside [-100,100]^2.
func randRect(rng *rand.Rand) Rect {
	x0 := rng.Float64()*200 - 100
	y0 := rng.Float64()*200 - 100
	return NewRect(x0, y0, x0+rng.Float64()*50, y0+rng.Float64()*50)
}

func randPoint(rng *rand.Rand) Point {
	return Point{rng.Float64()*300 - 150, rng.Float64()*300 - 150}
}

// randPointIn draws a point inside r.
func randPointIn(rng *rand.Rand, r Rect) Point {
	return Point{
		r.Min.X + rng.Float64()*r.Width(),
		r.Min.Y + rng.Float64()*r.Height(),
	}
}

// Property: for any point p, rect r and point x in r:
// MinDist(p,r) <= dist(p,x) <= MaxDist(p,r).
func TestMinMaxDistBracketProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		r := randRect(local)
		p := randPoint(local)
		lo, hi := MinDist(p, r), MaxDist(p, r)
		for i := 0; i < 32; i++ {
			d := p.Dist(randPointIn(local, r))
			if d < lo-1e-9 || d > hi+1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: for rects a, b and points x in a, y in b:
// MinDistRect(a,b) <= dist(x,y) <= MaxDistRect(a,b); both are symmetric.
func TestMinMaxDistRectBracketProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		a, b := randRect(local), randRect(local)
		lo, hi := MinDistRect(a, b), MaxDistRect(a, b)
		if !almostEq(lo, MinDistRect(b, a)) || !almostEq(hi, MaxDistRect(b, a)) {
			return false
		}
		for i := 0; i < 32; i++ {
			d := randPointIn(local, a).Dist(randPointIn(local, b))
			if d < lo-1e-9 || d > hi+1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: MinDist(p, r) == 0 iff r contains p (within float tolerance).
func TestMinDistZeroIffContains(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		r := randRect(local)
		p := randPoint(local)
		return (MinDist(p, r) == 0) == r.Contains(p)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: point-origin and rect-origin metrics agree when the rect origin
// is degenerate (a single point).
func TestOriginPointRectConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		r := randRect(local)
		p := randPoint(local)
		deg := Rect{Min: p, Max: p}
		return almostEq(p.MinDistTo(r), deg.MinDistTo(r)) &&
			almostEq(p.MaxDistTo(r), deg.MaxDistTo(r))
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestUnionExpand(t *testing.T) {
	a := NewRect(0, 0, 1, 1)
	b := NewRect(2, -1, 3, 0.5)
	u := a.Union(b)
	if !u.ContainsRect(a) || !u.ContainsRect(b) {
		t.Errorf("union %v must contain both operands", u)
	}
	e := a.Expand(Point{5, 5})
	if !e.Contains(Point{5, 5}) || !e.ContainsRect(a) {
		t.Errorf("expand must contain the point and the original rect")
	}
}
