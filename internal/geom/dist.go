package geom

import "math"

// MinDist returns the minimum possible Euclidean distance between p and any
// point of r (the MINDIST metric of Roussopoulos et al.). It is zero when p
// lies inside r.
func MinDist(p Point, r Rect) float64 {
	return math.Sqrt(MinDistSq(p, r))
}

// MinDistSq returns the square of MinDist(p, r).
func MinDistSq(p Point, r Rect) float64 {
	dx := axisGap(p.X, r.Min.X, r.Max.X)
	dy := axisGap(p.Y, r.Min.Y, r.Max.Y)
	return dx*dx + dy*dy
}

// MaxDist returns the maximum possible Euclidean distance between p and any
// point of r (the MAXDIST metric): the distance from p to the farthest corner
// of r.
func MaxDist(p Point, r Rect) float64 {
	return math.Sqrt(MaxDistSq(p, r))
}

// MaxDistSq returns the square of MaxDist(p, r).
func MaxDistSq(p Point, r Rect) float64 {
	dx := math.Max(math.Abs(p.X-r.Min.X), math.Abs(p.X-r.Max.X))
	dy := math.Max(math.Abs(p.Y-r.Min.Y), math.Abs(p.Y-r.Max.Y))
	return dx*dx + dy*dy
}

// MinDistRect returns the minimum possible distance between any point of a
// and any point of b. It is zero when the rectangles intersect.
func MinDistRect(a, b Rect) float64 {
	dx := rectGap(a.Min.X, a.Max.X, b.Min.X, b.Max.X)
	dy := rectGap(a.Min.Y, a.Max.Y, b.Min.Y, b.Max.Y)
	return math.Sqrt(dx*dx + dy*dy)
}

// MaxDistRect returns the maximum possible distance between any point of a
// and any point of b: the largest corner-to-corner span along each axis.
func MaxDistRect(a, b Rect) float64 {
	dx := math.Max(a.Max.X-b.Min.X, b.Max.X-a.Min.X)
	dy := math.Max(a.Max.Y-b.Min.Y, b.Max.Y-a.Min.Y)
	return math.Sqrt(dx*dx + dy*dy)
}

// axisGap returns the distance from v to the interval [lo, hi], zero when v
// lies inside it.
func axisGap(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}

// rectGap returns the gap between intervals [alo,ahi] and [blo,bhi], zero
// when they overlap.
func rectGap(alo, ahi, blo, bhi float64) float64 {
	switch {
	case ahi < blo:
		return blo - ahi
	case bhi < alo:
		return alo - bhi
	default:
		return 0
	}
}

// Origin is anything MINDIST/MAXDIST can be measured from: a query point for
// k-NN-Select catalogs, or an outer block for k-NN-Join localities. Both
// Point and Rect implement it.
type Origin interface {
	// MinDistTo returns the minimum possible distance from the origin to
	// any point of r.
	MinDistTo(r Rect) float64
	// MaxDistTo returns the maximum possible distance from the origin to
	// any point of r.
	MaxDistTo(r Rect) float64
}

// MinDistTo implements Origin.
func (p Point) MinDistTo(r Rect) float64 { return MinDist(p, r) }

// MaxDistTo implements Origin.
func (p Point) MaxDistTo(r Rect) float64 { return MaxDist(p, r) }

// MinDistTo implements Origin.
func (a Rect) MinDistTo(r Rect) float64 { return MinDistRect(a, r) }

// MaxDistTo implements Origin.
func (a Rect) MaxDistTo(r Rect) float64 { return MaxDistRect(a, r) }
