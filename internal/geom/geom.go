// Package geom provides the two-dimensional geometric primitives used
// throughout knncost: points, axis-aligned rectangles, Euclidean distance,
// and the MINDIST / MAXDIST metrics of Roussopoulos et al. that drive every
// best-first index scan in the paper.
//
// All distances are Euclidean. Rectangles are closed: a rectangle contains
// its boundary.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the two-dimensional Euclidean plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Sqrt(p.DistSq(q))
}

// DistSq returns the squared Euclidean distance between p and q. Prefer it
// for comparisons: it avoids the square root.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// Rect is a closed axis-aligned rectangle with Min as its lower-left and Max
// as its upper-right corner. A Rect is valid when Min.X <= Max.X and
// Min.Y <= Max.Y; a degenerate rectangle (zero width or height) is valid.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning the two corner coordinates given in
// any order.
func NewRect(x0, y0, x1, y1 float64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Min: Point{x0, y0}, Max: Point{x1, y1}}
}

// Valid reports whether r.Min is component-wise <= r.Max.
func (r Rect) Valid() bool {
	return r.Min.X <= r.Max.X && r.Min.Y <= r.Max.Y
}

// Width returns the extent of r along the x-axis.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the extent of r along the y-axis.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Diagonal returns the length of r's diagonal, the normalization constant of
// the staircase interpolation (Equation 1 of the paper).
func (r Rect) Diagonal() float64 {
	w, h := r.Width(), r.Height()
	return math.Sqrt(w*w + h*h)
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Corners returns the four corners of r in counter-clockwise order starting
// from the lower-left corner.
func (r Rect) Corners() [4]Point {
	return [4]Point{
		{r.Min.X, r.Min.Y},
		{r.Max.X, r.Min.Y},
		{r.Max.X, r.Max.Y},
		{r.Min.X, r.Max.Y},
	}
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether o lies entirely inside r.
func (r Rect) ContainsRect(o Rect) bool {
	return o.Min.X >= r.Min.X && o.Max.X <= r.Max.X &&
		o.Min.Y >= r.Min.Y && o.Max.Y <= r.Max.Y
}

// Intersects reports whether r and o share at least one point (touching
// boundaries count).
func (r Rect) Intersects(o Rect) bool {
	return r.Min.X <= o.Max.X && o.Min.X <= r.Max.X &&
		r.Min.Y <= o.Max.Y && o.Min.Y <= r.Max.Y
}

// Union returns the smallest rectangle containing both r and o.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, o.Min.X), math.Min(r.Min.Y, o.Min.Y)},
		Max: Point{math.Max(r.Max.X, o.Max.X), math.Max(r.Max.Y, o.Max.Y)},
	}
}

// Expand returns r grown to contain p.
func (r Rect) Expand(p Point) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, p.X), math.Min(r.Min.Y, p.Y)},
		Max: Point{math.Max(r.Max.X, p.X), math.Max(r.Max.Y, p.Y)},
	}
}

// ContainsCircle reports whether the disk of the given radius centered at c
// lies entirely inside r. The density-based estimator uses it to decide when
// its search region is covered by the examined blocks.
func (r Rect) ContainsCircle(c Point, radius float64) bool {
	return c.X-radius >= r.Min.X && c.X+radius <= r.Max.X &&
		c.Y-radius >= r.Min.Y && c.Y+radius <= r.Max.Y
}

// Quadrants returns the four equal quadrants of r in the order SW, SE, NW,
// NE — the recursive decomposition step of the region quadtree.
func (r Rect) Quadrants() [4]Rect {
	c := r.Center()
	return [4]Rect{
		{Min: r.Min, Max: c}, // SW
		{Min: Point{c.X, r.Min.Y}, Max: Point{r.Max.X, c.Y}}, // SE
		{Min: Point{r.Min.X, c.Y}, Max: Point{c.X, r.Max.Y}}, // NW
		{Min: c, Max: r.Max}, // NE
	}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g × %g,%g]", r.Min.X, r.Max.X, r.Min.Y, r.Max.Y)
}

// BoundsOf returns the smallest rectangle containing all pts. It returns a
// zero Rect when pts is empty.
func BoundsOf(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r = r.Expand(p)
	}
	return r
}
