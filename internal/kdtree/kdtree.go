// Package kdtree implements a region kd-tree (a k-d trie): space is
// recursively bisected by axis-aligned splits at region midpoints,
// alternating axes, until a leaf holds at most the block capacity. Like
// the region quadtree it is a space-partitioning index — leaves tile the
// indexed region — so it qualifies both as a data index and as the
// auxiliary statistics index the staircase technique requires (§3.3 of the
// paper names "a quadtree or grid"; any space partitioning works, which
// this package demonstrates).
//
// Compared with the quadtree, the kd-tree splits one axis at a time, so
// decomposition adapts with finer granularity (×2 per level instead of ×4)
// at the price of deeper trees.
package kdtree

import (
	"fmt"

	"knncost/internal/geom"
	"knncost/internal/index"
)

// DefaultCapacity is the default maximum number of points per leaf block.
const DefaultCapacity = 512

// DefaultMaxDepth bounds the recursion; at 56 alternating splits each axis
// has been halved 28 times, matching the quadtree's default resolution.
const DefaultMaxDepth = 56

// Options configure tree construction.
type Options struct {
	// Capacity is the maximum number of points per leaf. Zero means
	// DefaultCapacity.
	Capacity int
	// MaxDepth bounds the split depth. Zero means DefaultMaxDepth.
	MaxDepth int
	// Bounds fixes the indexed region. A zero rectangle means "use the
	// bounding box of the input points". Points outside Bounds are
	// rejected, as with the region quadtree.
	Bounds geom.Rect
}

func (o Options) withDefaults(pts []geom.Point) Options {
	if o.Capacity <= 0 {
		o.Capacity = DefaultCapacity
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = DefaultMaxDepth
	}
	if o.Bounds == (geom.Rect{}) {
		o.Bounds = geom.BoundsOf(pts)
	}
	return o
}

type node struct {
	bounds geom.Rect
	// children[0] holds the low half, children[1] the high half; nil for
	// a leaf.
	children *[2]*node
	points   []geom.Point
}

func (n *node) isLeaf() bool { return n.children == nil }

// Tree is a region kd-tree over a fixed bounded region.
type Tree struct {
	root *node
	opt  Options
	size int
}

// Build constructs a kd-tree over pts. It panics if a point lies outside
// the configured bounds (caller bug: the decomposed region is fixed).
func Build(pts []geom.Point, opt Options) *Tree {
	opt = opt.withDefaults(pts)
	for _, p := range pts {
		if !opt.Bounds.Contains(p) {
			panic(fmt.Sprintf("kdtree: point %v outside bounds %v", p, opt.Bounds))
		}
	}
	t := &Tree{opt: opt, size: len(pts)}
	owned := make([]geom.Point, len(pts))
	copy(owned, pts)
	t.root = build(opt.Bounds, owned, 0, opt)
	return t
}

// build recursively bisects the region, splitting on x at even depths and
// y at odd depths.
func build(bounds geom.Rect, pts []geom.Point, depth int, opt Options) *node {
	if len(pts) <= opt.Capacity || depth >= opt.MaxDepth {
		return &node{bounds: bounds, points: pts}
	}
	lowBounds, highBounds := halves(bounds, depth)
	var low, high []geom.Point
	for _, p := range pts {
		if inLow(bounds, p, depth) {
			low = append(low, p)
		} else {
			high = append(high, p)
		}
	}
	children := &[2]*node{
		build(lowBounds, low, depth+1, opt),
		build(highBounds, high, depth+1, opt),
	}
	return &node{bounds: bounds, children: children}
}

// halves returns the two halves of bounds for the split axis at depth.
func halves(bounds geom.Rect, depth int) (low, high geom.Rect) {
	c := bounds.Center()
	if depth%2 == 0 { // split on x
		return geom.Rect{Min: bounds.Min, Max: geom.Point{X: c.X, Y: bounds.Max.Y}},
			geom.Rect{Min: geom.Point{X: c.X, Y: bounds.Min.Y}, Max: bounds.Max}
	}
	return geom.Rect{Min: bounds.Min, Max: geom.Point{X: bounds.Max.X, Y: c.Y}},
		geom.Rect{Min: geom.Point{X: bounds.Min.X, Y: c.Y}, Max: bounds.Max}
}

// inLow reports whether p belongs to the low half of bounds at depth;
// points on the split line go high, so each point lands in exactly one
// leaf.
func inLow(bounds geom.Rect, p geom.Point, depth int) bool {
	c := bounds.Center()
	if depth%2 == 0 {
		return p.X < c.X
	}
	return p.Y < c.Y
}

// Insert adds p, splitting leaves that exceed capacity. It returns an
// error when p lies outside the tree bounds.
func (t *Tree) Insert(p geom.Point) error {
	if !t.opt.Bounds.Contains(p) {
		return fmt.Errorf("kdtree: point %v outside bounds %v", p, t.opt.Bounds)
	}
	n, depth := t.root, 0
	for !n.isLeaf() {
		if inLow(n.bounds, p, depth) {
			n = n.children[0]
		} else {
			n = n.children[1]
		}
		depth++
	}
	n.points = append(n.points, p)
	t.size++
	if len(n.points) > t.opt.Capacity && depth < t.opt.MaxDepth {
		pts := n.points
		n.points = nil
		sub := build(n.bounds, pts, depth, t.opt)
		n.children = sub.children
	}
	return nil
}

// Len returns the number of points stored.
func (t *Tree) Len() int { return t.size }

// Bounds returns the fixed indexed region.
func (t *Tree) Bounds() geom.Rect { return t.opt.Bounds }

// Index exports a snapshot as an index.Tree. kd-tree leaves tile the root
// region, so the snapshot reports Partitioning() == true.
func (t *Tree) Index() *index.Tree {
	var conv func(n *node) *index.Node
	conv = func(n *node) *index.Node {
		out := &index.Node{Bounds: n.bounds}
		if n.isLeaf() {
			out.Block = &index.Block{
				Bounds: n.bounds,
				Points: n.points,
				Count:  len(n.points),
			}
			return out
		}
		out.Children = []*index.Node{conv(n.children[0]), conv(n.children[1])}
		return out
	}
	return index.New(conv(t.root), true)
}
