package kdtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"knncost/internal/geom"
	"knncost/internal/knn"
	"knncost/internal/quadtree"
)

func randPoints(rng *rand.Rand, n int, bounds geom.Rect) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: bounds.Min.X + rng.Float64()*bounds.Width(),
			Y: bounds.Min.Y + rng.Float64()*bounds.Height(),
		}
	}
	return pts
}

func TestBuildInvariants(t *testing.T) {
	bounds := geom.NewRect(0, 0, 100, 100)
	pts := randPoints(rand.New(rand.NewSource(1)), 3000, bounds)
	tr := Build(pts, Options{Capacity: 64, Bounds: bounds})
	if tr.Len() != 3000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	ix := tr.Index()
	if err := ix.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !ix.Partitioning() {
		t.Fatal("kd-tree must be space-partitioning")
	}
	if ix.NumPoints() != 3000 {
		t.Fatalf("NumPoints = %d", ix.NumPoints())
	}
	for _, b := range ix.Blocks() {
		if b.Count > 64 {
			t.Errorf("block %d holds %d > capacity", b.ID, b.Count)
		}
	}
}

func TestLeavesTileRegion(t *testing.T) {
	bounds := geom.NewRect(-10, -5, 30, 25)
	pts := randPoints(rand.New(rand.NewSource(2)), 2000, bounds)
	ix := Build(pts, Options{Capacity: 32, Bounds: bounds}).Index()
	var area float64
	for _, b := range ix.Blocks() {
		area += b.Bounds.Area()
	}
	if diff := area - bounds.Area(); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("leaf areas sum to %g, want %g", area, bounds.Area())
	}
	// Every point is locatable.
	for _, p := range pts[:200] {
		b := ix.Find(p)
		if b == nil || !b.Bounds.Contains(p) {
			t.Fatalf("Find(%v) = %v", p, b)
		}
	}
}

func TestBuildPanicsOutsideBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Build([]geom.Point{{X: 5, Y: 5}}, Options{Bounds: geom.NewRect(0, 0, 1, 1)})
}

func TestInsert(t *testing.T) {
	bounds := geom.NewRect(0, 0, 50, 50)
	tr := Build(nil, Options{Capacity: 16, Bounds: bounds})
	pts := randPoints(rand.New(rand.NewSource(3)), 1000, bounds)
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	ix := tr.Index()
	if err := ix.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if ix.NumPoints() != 1000 {
		t.Fatalf("NumPoints = %d", ix.NumPoints())
	}
	for _, b := range ix.Blocks() {
		if b.Count > 16 {
			t.Errorf("block exceeds capacity: %d", b.Count)
		}
	}
	if err := tr.Insert(geom.Point{X: 99, Y: 99}); err == nil {
		t.Error("Insert outside bounds should fail")
	}
}

func TestDuplicatesRespectMaxDepth(t *testing.T) {
	bounds := geom.NewRect(0, 0, 1, 1)
	tr := Build(nil, Options{Capacity: 2, MaxDepth: 8, Bounds: bounds})
	for i := 0; i < 50; i++ {
		if err := tr.Insert(geom.Point{X: 0.7, Y: 0.7}); err != nil {
			t.Fatal(err)
		}
	}
	ix := tr.Index()
	if err := ix.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if ix.NumPoints() != 50 {
		t.Fatalf("NumPoints = %d", ix.NumPoints())
	}
}

// k-NN over a kd-tree must agree with k-NN over a quadtree on the same
// data — the algorithms are index-agnostic.
func TestKNNAgreesWithQuadtree(t *testing.T) {
	bounds := geom.NewRect(0, 0, 100, 100)
	pts := randPoints(rand.New(rand.NewSource(4)), 2000, bounds)
	kd := Build(pts, Options{Capacity: 32, Bounds: bounds}).Index()
	qt := quadtree.Build(pts, quadtree.Options{Capacity: 32, Bounds: bounds}).Index()
	q := geom.Point{X: 37, Y: 59}
	a, _ := knn.Select(kd, q, 25)
	b, _ := knn.Select(qt, q, 25)
	for i := range a {
		if diff := a[i].Dist - b[i].Dist; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("neighbor %d: kd %g, quadtree %g", i, a[i].Dist, b[i].Dist)
		}
	}
}

// Property: each point lands in exactly one leaf; totals always add up;
// structure valid after random build/insert mixes.
func TestKdTreeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		bounds := geom.NewRect(0, 0, 64, 64)
		n := 50 + local.Intn(600)
		pts := randPoints(local, n, bounds)
		cut := local.Intn(n)
		tr := Build(pts[:cut], Options{Capacity: 8 + local.Intn(24), Bounds: bounds})
		for _, p := range pts[cut:] {
			if tr.Insert(p) != nil {
				return false
			}
		}
		ix := tr.Index()
		if ix.Validate() != nil || ix.NumPoints() != n {
			return false
		}
		// Sorted distances match brute force for a random query.
		q := geom.Point{X: local.Float64() * 64, Y: local.Float64() * 64}
		res, _ := knn.Select(ix, q, 10)
		ds := make([]float64, len(pts))
		for i, p := range pts {
			ds[i] = q.Dist(p)
		}
		sort.Float64s(ds)
		for i := range res {
			if diff := res[i].Dist - ds[i]; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}
