// Package rangeop implements the spatial range (window) operator and its
// cost/selectivity estimation. The paper uses range operators as the
// contrast class: their cost "is relatively easy to estimate because the
// spatial region of the operator is predefined and fixed in the query"
// (§1) — this package makes that concrete, and the planner combines it
// with the k-NN estimators to order range and k-NN predicates in a QEP
// (the "restaurants within a downtown district" example of §1).
package rangeop

import (
	"knncost/internal/geom"
	"knncost/internal/index"
)

// Select returns the points of tree inside r (boundary inclusive) and the
// number of blocks scanned — every leaf whose bounds intersect r.
func Select(tree *index.Tree, r geom.Rect) ([]geom.Point, int) {
	var out []geom.Point
	blocks := 0
	tree.VisitRange(r, func(b *index.Block) {
		blocks++
		for _, p := range b.Points {
			if r.Contains(p) {
				out = append(out, p)
			}
		}
	})
	return out, blocks
}

// Cost returns the exact block-scan cost of a range select: the number of
// blocks intersecting r. Computable from the Count-Index alone, which is
// why range costs need no catalogs.
func Cost(count *index.Tree, r geom.Rect) int {
	blocks := 0
	count.VisitRange(r, func(*index.Block) { blocks++ })
	return blocks
}

// Selectivity estimates the fraction of the relation's points inside r
// under the per-block uniformity assumption (each block's points spread
// evenly over its bounds — the same assumption the density-based k-NN
// estimator makes). The result is in [0, 1]; it is 0 for an empty
// relation.
func Selectivity(count *index.Tree, r geom.Rect) float64 {
	total := count.NumPoints()
	if total == 0 {
		return 0
	}
	expected := 0.0
	count.VisitRange(r, func(b *index.Block) {
		if b.Count == 0 {
			return
		}
		area := b.Bounds.Area()
		if area == 0 {
			// A degenerate block lies entirely on the boundary of r
			// or inside it; VisitRange guarantees intersection.
			expected += float64(b.Count)
			return
		}
		expected += float64(b.Count) * overlapArea(b.Bounds, r) / area
	})
	sel := expected / float64(total)
	if sel > 1 {
		sel = 1
	}
	return sel
}

// overlapArea returns the area of the intersection of a and b, zero when
// they do not overlap.
func overlapArea(a, b geom.Rect) float64 {
	w := minF(a.Max.X, b.Max.X) - maxF(a.Min.X, b.Min.X)
	h := minF(a.Max.Y, b.Max.Y) - maxF(a.Min.Y, b.Min.Y)
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
