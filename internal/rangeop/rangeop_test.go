package rangeop

import (
	"math/rand"
	"testing"
	"testing/quick"

	"knncost/internal/geom"
	"knncost/internal/quadtree"
)

func randPoints(rng *rand.Rand, n int, bounds geom.Rect) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: bounds.Min.X + rng.Float64()*bounds.Width(),
			Y: bounds.Min.Y + rng.Float64()*bounds.Height(),
		}
	}
	return pts
}

func TestSelectMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bounds := geom.NewRect(0, 0, 100, 100)
	pts := randPoints(rng, 3000, bounds)
	tree := quadtree.Build(pts, quadtree.Options{Capacity: 64, Bounds: bounds}).Index()
	r := geom.NewRect(20, 30, 55, 70)
	got, blocks := Select(tree, r)
	want := 0
	for _, p := range pts {
		if r.Contains(p) {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("Select returned %d points, brute force %d", len(got), want)
	}
	for _, p := range got {
		if !r.Contains(p) {
			t.Fatalf("point %v outside range", p)
		}
	}
	if blocks < 1 || blocks > tree.NumBlocks() {
		t.Fatalf("blocks scanned = %d", blocks)
	}
	// Cost computed from the count index must equal the blocks scanned.
	if cost := Cost(tree.CountTree(), r); cost != blocks {
		t.Errorf("Cost = %d, Select scanned %d", cost, blocks)
	}
}

func TestSelectivityUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bounds := geom.NewRect(0, 0, 100, 100)
	pts := randPoints(rng, 20000, bounds)
	count := quadtree.Build(pts, quadtree.Options{Capacity: 256, Bounds: bounds}).Index().CountTree()
	// A quarter-area window over uniform data -> selectivity ~0.25.
	r := geom.NewRect(0, 0, 50, 50)
	sel := Selectivity(count, r)
	if sel < 0.22 || sel > 0.28 {
		t.Errorf("selectivity = %g, want ~0.25", sel)
	}
	// Full window -> 1; disjoint window -> 0.
	if sel := Selectivity(count, bounds); sel < 0.999 {
		t.Errorf("full-window selectivity = %g", sel)
	}
	if sel := Selectivity(count, geom.NewRect(200, 200, 300, 300)); sel != 0 {
		t.Errorf("disjoint selectivity = %g", sel)
	}
}

func TestSelectivityEmptyRelation(t *testing.T) {
	count := quadtree.Build(nil, quadtree.Options{Bounds: geom.NewRect(0, 0, 1, 1)}).Index().CountTree()
	if sel := Selectivity(count, geom.NewRect(0, 0, 1, 1)); sel != 0 {
		t.Errorf("empty relation selectivity = %g", sel)
	}
}

// Property: Select equals brute force and Selectivity approximates the true
// fraction on random uniform data and windows.
func TestRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		bounds := geom.NewRect(0, 0, 64, 64)
		n := 500 + local.Intn(3000)
		pts := randPoints(local, n, bounds)
		tree := quadtree.Build(pts, quadtree.Options{Capacity: 32, Bounds: bounds}).Index()
		r := geom.NewRect(
			local.Float64()*50, local.Float64()*50,
			local.Float64()*64, local.Float64()*64)
		got, _ := Select(tree, r)
		want := 0
		for _, p := range pts {
			if r.Contains(p) {
				want++
			}
		}
		if len(got) != want {
			return false
		}
		// Selectivity within a loose absolute tolerance of the truth.
		sel := Selectivity(tree.CountTree(), r)
		truth := float64(want) / float64(n)
		diff := sel - truth
		if diff < 0 {
			diff = -diff
		}
		return diff < 0.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}
