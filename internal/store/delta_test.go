package store

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"knncost/internal/geom"
	"knncost/internal/quadtree"
	"knncost/internal/wal"
)

func settle(t *testing.T, s *Store, names ...string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.WaitSettled(ctx, names...); err != nil {
		t.Fatalf("WaitSettled(%v): %v", names, err)
	}
}

func closeStore(t *testing.T, s *Store) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func samePoints(a, b []geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assertBitExact pins that two snapshots are the same build: identical
// fingerprints (same points, same options) and bit-identical estimates.
func assertBitExact(t *testing.T, got, want *Snapshot) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("nil snapshot: got=%v want=%v", got != nil, want != nil)
	}
	if got.Fingerprint != want.Fingerprint {
		t.Fatalf("fingerprints differ: %s vs %s", shortFP(got.Fingerprint), shortFP(want.Fingerprint))
	}
	probes := []geom.Point{{X: 10.5, Y: 20.5}, {X: 50.2, Y: 3.3}, {X: 98.7, Y: 99.1}}
	for _, q := range probes {
		for _, k := range []int{1, 7, 33, 64} {
			a, err1 := got.Staircase.EstimateSelect(q, k)
			b, err2 := want.Staircase.EstimateSelect(q, k)
			if err1 != nil || err2 != nil {
				t.Fatalf("EstimateSelect(%v, %d): %v / %v", q, k, err1, err2)
			}
			if a != b {
				t.Fatalf("EstimateSelect(%v, %d) not bit-exact: %v vs %v", q, k, a, b)
			}
		}
	}
	if got.StaircaseBytes != want.StaircaseBytes || got.VGridBytes != want.VGridBytes {
		t.Fatalf("catalog sizes differ: staircase %d/%d vgrid %d/%d",
			got.StaircaseBytes, want.StaircaseBytes, got.VGridBytes, want.VGridBytes)
	}
}

// fromScratch builds the reference snapshot: a fresh store, same options,
// registered once with the final point sequence.
func fromScratch(t *testing.T, pts []geom.Point) *Snapshot {
	t.Helper()
	s := newTestStore(t, testOptions(t))
	if _, err := s.Register("scratch", pts); err != nil {
		t.Fatalf("Register scratch: %v", err)
	}
	waitReady(t, s, "scratch")
	return s.View().Relation("scratch")
}

func TestReadYourWritesAfterFlush(t *testing.T) {
	opt := testOptions(t)
	opt.CompactThreshold = 1 << 20 // only explicit flushes compact
	opt.CompactInterval = -1
	s := newTestStore(t, opt)
	base := gridPoints(200, 11)
	if _, err := s.Register("live", base); err != nil {
		t.Fatal(err)
	}
	waitReady(t, s, "live")
	v1 := s.View().Relation("live")

	add := gridPoints(30, 12)
	st, err := s.Append("live", add)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if st.DeltaOps != 1 || st.DeltaPoints != 30 || st.DeltaAgeMs < 1 {
		t.Fatalf("delta status after append = %+v", st)
	}
	if st.NumPoints != 200 || st.Version != 1 {
		t.Fatalf("published snapshot changed before compaction: %+v", st)
	}
	// Bounded staleness: the snapshot is the old one, but the logical view
	// already includes the write.
	if got := s.View().Relation("live"); got != v1 {
		t.Fatal("snapshot pointer changed without compaction")
	}
	logical, err := s.LogicalPoints("live")
	if err != nil {
		t.Fatal(err)
	}
	if !samePoints(logical, append(append([]geom.Point{}, base...), add...)) {
		t.Fatal("logical points do not include the pending append")
	}

	// Read-your-writes after flush: the new snapshot covers the delta and
	// matches a from-scratch build bit for bit.
	if err := s.Flush("live"); err != nil {
		t.Fatal(err)
	}
	settle(t, s, "live")
	st, _ = s.Status("live")
	if st.DeltaOps != 0 || st.DeltaPoints != 0 || st.DeltaAgeMs != 0 {
		t.Fatalf("delta not drained: %+v", st)
	}
	if st.NumPoints != 230 || st.Version != 2 {
		t.Fatalf("post-flush status = %+v", st)
	}
	assertBitExact(t, s.View().Relation("live"), fromScratch(t, logical))
	if s.Compactions() != 1 {
		t.Fatalf("Compactions = %d, want 1", s.Compactions())
	}
}

func TestDeleteSemantics(t *testing.T) {
	opt := testOptions(t)
	opt.CompactThreshold = 1 << 20
	opt.CompactInterval = -1
	s := newTestStore(t, opt)
	dup := geom.Point{X: 41.5, Y: 41.5}
	base := append(gridPoints(40, 5), dup, dup) // the duplicate appears twice
	if _, err := s.Register("live", base); err != nil {
		t.Fatal(err)
	}
	waitReady(t, s, "live")

	// Append another occurrence, then delete the coordinate: every
	// occurrence — base duplicates and the appended one — must go.
	if _, err := s.Append("live", []geom.Point{dup, {X: 77, Y: 77}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete("live", []geom.Point{dup}); err != nil {
		t.Fatal(err)
	}
	// Deleting an absent coordinate is a no-op, not an error.
	if _, err := s.Delete("live", []geom.Point{{X: -1000, Y: -1000}}); err != nil {
		t.Fatal(err)
	}
	logical, err := s.LogicalPoints("live")
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]geom.Point{}, gridPoints(40, 5)...), geom.Point{X: 77, Y: 77})
	if !samePoints(logical, want) {
		t.Fatalf("logical after delete = %d points, want %d (order-preserving, all occurrences removed)", len(logical), len(want))
	}
	if err := s.Flush("live"); err != nil {
		t.Fatal(err)
	}
	settle(t, s, "live")
	st, _ := s.Status("live")
	if st.NumPoints != len(want) {
		t.Fatalf("NumPoints = %d, want %d", st.NumPoints, len(want))
	}
	assertBitExact(t, s.View().Relation("live"), fromScratch(t, want))
}

func TestVersionsMonotonicAcrossCompaction(t *testing.T) {
	opt := testOptions(t)
	opt.CompactThreshold = 1 << 20
	opt.CompactInterval = -1
	s := newTestStore(t, opt)
	if _, err := s.Register("live", gridPoints(150, 9)); err != nil {
		t.Fatal(err)
	}
	waitReady(t, s, "live")
	last := s.View().Relation("live").Version
	if last != 1 {
		t.Fatalf("first version = %d", last)
	}
	for round := 0; round < 4; round++ {
		if _, err := s.Append("live", gridPoints(10, int64(100+round))); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush("live"); err != nil {
			t.Fatal(err)
		}
		settle(t, s, "live")
		v := s.View().Relation("live").Version
		if v != last+1 {
			t.Fatalf("round %d: version %d after %d (must increase by exactly one per compaction)", round, v, last)
		}
		last = v
	}
}

func TestThresholdTriggersCompaction(t *testing.T) {
	opt := testOptions(t)
	opt.CompactThreshold = 25
	opt.CompactInterval = -1
	s := newTestStore(t, opt)
	if _, err := s.Register("live", gridPoints(150, 21)); err != nil {
		t.Fatal(err)
	}
	waitReady(t, s, "live")
	if _, err := s.Append("live", gridPoints(10, 22)); err != nil {
		t.Fatal(err)
	}
	if st, _ := s.Status("live"); st.DeltaPoints != 10 {
		t.Fatalf("below-threshold append compacted early: %+v", st)
	}
	// Crossing the threshold compacts without any explicit flush.
	if _, err := s.Append("live", gridPoints(20, 23)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, _ := s.Status("live")
		if st.DeltaOps == 0 && st.NumPoints == 180 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("threshold compaction never drained: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if s.Compactions() == 0 {
		t.Fatal("compaction counter still zero")
	}
}

func TestIntervalCompactorDrainsTrickle(t *testing.T) {
	opt := testOptions(t)
	opt.CompactThreshold = 1 << 20
	opt.CompactInterval = 10 * time.Millisecond
	s := newTestStore(t, opt)
	if _, err := s.Register("live", gridPoints(150, 31)); err != nil {
		t.Fatal(err)
	}
	waitReady(t, s, "live")
	if _, err := s.Append("live", gridPoints(5, 32)); err != nil {
		t.Fatal(err)
	}
	// No flush, no threshold: the interval compactor is the staleness bound.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, _ := s.Status("live")
		if st.DeltaOps == 0 && st.NumPoints == 155 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("interval compactor never drained the trickle: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestInterleavedDeltasConvergeToFromScratch(t *testing.T) {
	opt := testOptions(t)
	opt.CacheDir = t.TempDir()
	opt.CompactThreshold = 40 // compactions interleave with the mutation stream
	opt.CompactInterval = -1
	s := newTestStore(t, opt)
	base := gridPoints(300, 7)
	if _, err := s.Register("live", base); err != nil {
		t.Fatal(err)
	}
	waitReady(t, s, "live")

	rng := rand.New(rand.NewSource(42))
	logical := append([]geom.Point{}, base...)
	for i := 0; i < 25; i++ {
		if rng.Intn(3) == 0 && len(logical) > 50 {
			n := 1 + rng.Intn(4)
			del := make([]geom.Point, 0, n)
			for j := 0; j < n; j++ {
				del = append(del, logical[rng.Intn(len(logical))])
			}
			if _, err := s.Delete("live", del); err != nil {
				t.Fatalf("delete %d: %v", i, err)
			}
			logical = applyMutations(logical, []mutation{{kind: wal.KindDelete, pts: del}})
		} else {
			n := 1 + rng.Intn(20)
			add := make([]geom.Point, n)
			for j := range add {
				add[j] = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
			}
			if _, err := s.Append("live", add); err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
			logical = append(logical, add...)
		}
	}
	settle(t, s, "live")
	if s.Compactions() == 0 {
		t.Fatal("the interleaved stream never compacted; the test exercised nothing")
	}
	got, err := s.LogicalPoints("live")
	if err != nil {
		t.Fatal(err)
	}
	if !samePoints(got, logical) {
		t.Fatalf("settled sequence has %d points, expected %d", len(got), len(logical))
	}
	// The differential gate: after any interleaved delta sequence, the
	// compacted relation equals a from-scratch build of the final point
	// set, bit for bit.
	assertBitExact(t, s.View().Relation("live"), fromScratch(t, logical))
}

func TestUnflushedDeltasReplayOnRestart(t *testing.T) {
	opt := testOptions(t)
	opt.CacheDir = t.TempDir()
	opt.CompactThreshold = 1 << 20
	opt.CompactInterval = -1
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	base := gridPoints(250, 17)
	if _, err := s.Register("live", base); err != nil {
		t.Fatal(err)
	}
	waitReady(t, s, "live")
	add := gridPoints(20, 18)
	if _, err := s.Append("live", add); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete("live", []geom.Point{base[3], base[77]}); err != nil {
		t.Fatal(err)
	}
	want := applyMutations(base, []mutation{
		{kind: wal.KindAppend, pts: add},
		{kind: wal.KindDelete, pts: []geom.Point{base[3], base[77]}},
	})
	closeStore(t, s) // deltas never compacted: they live only in the WAL

	s2 := newTestStore(t, opt)
	if n := s2.WALReplayed(); n != 2 {
		t.Fatalf("WALReplayed = %d, want 2", n)
	}
	if n := s2.WALTruncatedTails(); n != 0 {
		t.Fatalf("clean shutdown replayed %d truncated tails", n)
	}
	settle(t, s2, "live")
	got, err := s2.LogicalPoints("live")
	if err != nil {
		t.Fatal(err)
	}
	if !samePoints(got, want) {
		t.Fatalf("replayed sequence has %d points, want %d", len(got), len(want))
	}
	assertBitExact(t, s2.View().Relation("live"), fromScratch(t, want))
}

func TestRestartAfterDropDoesNotResurrect(t *testing.T) {
	opt := testOptions(t)
	opt.CacheDir = t.TempDir()
	opt.CompactInterval = -1
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("stay", gridPoints(120, 41)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("gone", gridPoints(120, 42)); err != nil {
		t.Fatal(err)
	}
	waitReady(t, s, "stay", "gone")
	if _, err := s.Append("gone", gridPoints(5, 43)); err != nil {
		t.Fatal(err)
	}
	if !s.Drop("gone") {
		t.Fatal("Drop returned false")
	}
	closeStore(t, s)

	s2 := newTestStore(t, opt)
	if _, ok := s2.Status("gone"); ok {
		t.Fatal("dropped relation resurrected by warm restart")
	}
	waitReady(t, s2, "stay")
	if s2.View().Relation("stay") == nil {
		t.Fatal("surviving relation not restored")
	}
	if s2.View().Relation("gone") != nil {
		t.Fatal("dropped relation present in restored view")
	}
}

func TestMutateValidation(t *testing.T) {
	s := newTestStore(t, testOptions(t))
	if _, err := s.Register("pts", gridPoints(100, 1)); err != nil {
		t.Fatal(err)
	}
	tree := quadtree.Build(gridPoints(100, 2), quadtree.Options{Capacity: 32}).Index()
	if _, err := s.RegisterIndex("idx", tree); err != nil {
		t.Fatal(err)
	}
	waitReady(t, s, "pts", "idx")

	one := []geom.Point{{X: 1, Y: 2}}
	if _, err := s.Append("nope", one); !errors.Is(err, ErrUnknownRelation) {
		t.Fatalf("append to unknown: %v", err)
	}
	if _, err := s.Delete("nope", one); !errors.Is(err, ErrUnknownRelation) {
		t.Fatalf("delete on unknown: %v", err)
	}
	if _, err := s.Append("idx", one); !errors.Is(err, ErrNoPointSource) {
		t.Fatalf("append to index-registered: %v", err)
	}
	if _, err := s.Append("pts", nil); err == nil {
		t.Fatal("empty append accepted")
	}
	if _, err := s.Append("pts", []geom.Point{{X: math.NaN(), Y: 0}}); err == nil {
		t.Fatal("NaN append accepted")
	}
	if _, err := s.Append("bad name!", one); err == nil {
		t.Fatal("invalid name accepted")
	}
	if _, err := s.LogicalPoints("idx"); !errors.Is(err, ErrNoPointSource) {
		t.Fatalf("LogicalPoints on index-registered: %v", err)
	}
	if _, err := s.LogicalPoints("nope"); !errors.Is(err, ErrUnknownRelation) {
		t.Fatalf("LogicalPoints on unknown: %v", err)
	}
	if err := s.Flush("nope"); !errors.Is(err, ErrUnknownRelation) {
		t.Fatalf("Flush on unknown: %v", err)
	}
	st, _ := s.Status("pts")
	if st.DeltaOps != 0 {
		t.Fatalf("rejected mutations left deltas behind: %+v", st)
	}
}

// TestCloseWithInFlightCompaction pins the shutdown race: Close marks the
// store closed and closes the build-signal channel while a compaction build
// is still in flight; when that build lands with more deltas pending, runJob
// re-triggers compaction — which must refuse to enqueue instead of sending
// on the closed channel (a panic before the fix). Flush and WaitSettled on a
// closed store must likewise return ErrClosed rather than reaching the
// channel or spinning forever.
func TestCloseWithInFlightCompaction(t *testing.T) {
	for i := 0; i < 3; i++ {
		opt := testOptions(t)
		opt.CompactThreshold = 1 << 30 // compaction only via explicit Flush
		s := newTestStore(t, opt)
		if _, err := s.Register("live", gridPoints(20000, int64(i))); err != nil {
			t.Fatal(err)
		}
		settle(t, s, "live")
		if _, err := s.Append("live", gridPoints(4, 100+int64(i))); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush("live"); err != nil { // compaction build starts
			t.Fatalf("Flush: %v", err)
		}
		// Wait until a worker has actually picked the build up: Close must
		// land while the build is in flight for the landing build to take
		// the re-compaction path on a closed store.
		for deadline := time.Now().Add(10 * time.Second); ; {
			s.mu.Lock()
			state := s.entries["live"].state
			s.mu.Unlock()
			if state == StateBuilding {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("compaction build never started")
			}
			time.Sleep(100 * time.Microsecond)
		}
		// New deltas arrive while the build runs, so the landing build sees
		// a non-empty overlay and takes the re-compaction path under Close.
		if _, err := s.Append("live", gridPoints(4, 200+int64(i))); err != nil {
			t.Fatal(err)
		}
		closeStore(t, s)
		if err := s.Flush("live"); !errors.Is(err, ErrClosed) {
			t.Fatalf("Flush after Close: %v, want ErrClosed", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		err := s.WaitSettled(ctx, "live")
		cancel()
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("WaitSettled after Close: %v, want ErrClosed", err)
		}
	}
}

// TestRollbackMutationUncapturedDelta pins the failed-commit rollback
// helper: a pending mutation no fold covers is removed from the overlay,
// one a compaction already captured is not.
func TestRollbackMutationUncapturedDelta(t *testing.T) {
	opt := testOptions(t)
	opt.CompactThreshold = 1 << 30
	s := newTestStore(t, opt)
	if _, err := s.Register("live", gridPoints(500, 1)); err != nil {
		t.Fatal(err)
	}
	settle(t, s, "live")
	lastPendingLSN := func() uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		pending := s.entries["live"].pending
		return pending[len(pending)-1].lsn
	}
	if _, err := s.Append("live", gridPoints(3, 2)); err != nil {
		t.Fatal(err)
	}
	if !s.rollbackMutation("live", lastPendingLSN()) {
		t.Fatal("uncaptured mutation not rolled back")
	}
	if lp, err := s.LogicalPoints("live"); err != nil || len(lp) != 500 {
		t.Fatalf("overlay after rollback: %d points, err %v", len(lp), err)
	}
	// Once a compaction captures the delta, rollback must refuse.
	if _, err := s.Append("live", gridPoints(3, 3)); err != nil {
		t.Fatal(err)
	}
	captured := lastPendingLSN()
	if err := s.Flush("live"); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if s.rollbackMutation("live", captured) {
		t.Fatal("rolled back a mutation a scheduled fold already covers")
	}
	settle(t, s, "live")
}
