package store

// Streaming ingest: relations registered from points accept append/delete
// mutations that overlay the immutable published snapshot. Each mutation is
// made durable in the write-ahead log before it is acknowledged, buffered
// as a pending delta, and folded into fresh artifacts by compaction — a
// rebuild through the ordinary supersede/cancel build-pool lifecycle, so a
// compacted relation is bit-identical to a from-scratch build of the same
// point sequence (the differential gate pins this).
//
// Recovery protocol. Publication of a points-built snapshot is ordered:
//
//	artifacts to disk cache → WAL checkpoint (fsynced) → registry remember
//
// A checkpoint record carries (relation, covered LSN, fingerprint) and is
// only *effective* on replay when its fingerprint matches what the registry
// restored — so a crash anywhere in the sequence replays to a consistent
// prefix: either the old base plus every durable delta, or the new base
// plus the deltas logged after it. Drop records are fsynced before the
// registry forgets the relation, closing the window where a crash could
// resurrect a dropped relation. Whole WAL segments are trimmed once every
// record in them is covered by a durable checkpoint.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"knncost/internal/geom"
	"knncost/internal/wal"
)

// Typed errors returned by the mutation API; the service layer maps them to
// HTTP statuses.
var (
	// ErrUnknownRelation means the relation is not registered.
	ErrUnknownRelation = errors.New("store: unknown relation")
	// ErrNoPointSource means the relation was registered from a pre-built
	// index: it has no reproducible point sequence to mutate.
	ErrNoPointSource = errors.New("store: relation has no point source")
	// ErrNotReady means the relation has not published a first snapshot.
	ErrNotReady = errors.New("store: relation not ready")
)

// mutation is one acknowledged, durably logged delta awaiting compaction.
type mutation struct {
	lsn  uint64
	kind wal.Kind // KindAppend or KindDelete
	pts  []geom.Point
	at   time.Time // arrival (or replay) time; drives the staleness gauge
}

// applyMutations computes the logical point sequence of base with muts
// applied in LSN order: appends concatenate, deletes remove every occurrence
// of each listed coordinate, preserving the order of survivors. base is
// never modified; the result is a fresh slice (or base itself when muts is
// empty).
func applyMutations(base []geom.Point, muts []mutation) []geom.Point {
	if len(muts) == 0 {
		return base
	}
	out := append(make([]geom.Point, 0, len(base)), base...)
	for _, m := range muts {
		switch m.kind {
		case wal.KindAppend:
			out = append(out, m.pts...)
		case wal.KindDelete:
			del := make(map[geom.Point]struct{}, len(m.pts))
			for _, p := range m.pts {
				del[p] = struct{}{}
			}
			kept := out[:0]
			for _, p := range out {
				if _, ok := del[p]; !ok {
					kept = append(kept, p)
				}
			}
			out = kept
		}
	}
	return out
}

// filterCovered drops the mutations a checkpoint covers (lsn <= covered),
// in place.
func filterCovered(muts []mutation, covered uint64) []mutation {
	out := muts[:0]
	for _, m := range muts {
		if m.lsn > covered {
			out = append(out, m)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func pendingPoints(e *entry) int {
	n := 0
	for _, m := range e.pending {
		n += len(m.pts)
	}
	return n
}

// Append adds points to a relation registered from points. The mutation is
// durable (WAL-committed) when the call returns; the published snapshot is
// unchanged until compaction folds the delta in, bounded by
// CompactThreshold points or one CompactInterval, whichever comes first.
// The caller must not modify pts afterwards.
//
// An error from a failed WAL commit means the durability of the mutation is
// UNKNOWN: it is rolled back from the in-memory overlay when possible, but
// the log record may have reached disk and replay after a crash. Callers
// must reconcile (re-read and diff) rather than blindly retry the append.
func (s *Store) Append(name string, pts []geom.Point) (RelationStatus, error) {
	return s.mutate(wal.KindAppend, name, pts)
}

// Delete removes every occurrence of each given coordinate from a relation
// registered from points, with the same durability and staleness contract
// as Append. Deleting a coordinate that is not present is a no-op, not an
// error. A delete that would leave the relation empty is accepted but never
// compacted (a relation cannot shrink to zero points); register or drop it
// instead.
func (s *Store) Delete(name string, pts []geom.Point) (RelationStatus, error) {
	return s.mutate(wal.KindDelete, name, pts)
}

func (s *Store) mutate(kind wal.Kind, name string, pts []geom.Point) (RelationStatus, error) {
	if err := validateName(name); err != nil {
		return RelationStatus{}, err
	}
	if len(pts) == 0 {
		return RelationStatus{}, fmt.Errorf("store: mutation of %q has no points", name)
	}
	for i, p := range pts {
		if !finite(p.X) || !finite(p.Y) {
			return RelationStatus{}, fmt.Errorf("store: mutation of %q point %d is not finite: %v", name, i, p)
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return RelationStatus{}, ErrClosed
	}
	e := s.entries[name]
	if e == nil {
		s.mu.Unlock()
		return RelationStatus{}, fmt.Errorf("%w: %q", ErrUnknownRelation, name)
	}
	if !e.fromPoints {
		s.mu.Unlock()
		return RelationStatus{}, fmt.Errorf("%w: %q", ErrNoPointSource, name)
	}
	// Assign the LSN and write the record while holding s.mu so buffer
	// order always equals log order; the fsync happens after unlock and
	// group-commits across concurrent mutators.
	var lsn uint64
	if s.wal != nil {
		var err error
		lsn, err = s.wal.Append(wal.Record{Kind: kind, Relation: name, Points: pts})
		if err != nil {
			s.mu.Unlock()
			return RelationStatus{}, fmt.Errorf("store: mutation of %q not logged: %w", name, err)
		}
	} else {
		s.seq++
		lsn = s.seq
	}
	e.pending = append(e.pending, mutation{lsn: lsn, kind: kind, pts: pts, at: time.Now()})
	if pendingPoints(e) >= s.opt.CompactThreshold {
		s.compactLocked(e)
	}
	st := e.statusLocked()
	s.mu.Unlock()
	if s.wal != nil {
		if err := s.wal.Commit(lsn); err != nil {
			// The fsync failed, so the caller must be told the write is not
			// durable — but the delta is already buffered and would still
			// compact into the published snapshot, double-applying if the
			// caller retries. Unbuffer it when no compaction has captured
			// it yet. The outcome stays ambiguous either way: the WAL
			// record may have reached disk, in which case a crash replays
			// it — callers must treat this error as "unknown", not "not
			// applied", and reconcile rather than blindly retry.
			if s.rollbackMutation(name, lsn) {
				return RelationStatus{}, fmt.Errorf("store: mutation of %q not durable (rolled back; may reappear if the log record survives a crash): %w", name, err)
			}
			return st, fmt.Errorf("store: mutation of %q not durable (already compacting; may double-apply on retry): %w", name, err)
		}
	}
	return st, nil
}

// rollbackMutation removes the pending mutation with the given LSN, if it is
// still in the overlay and no scheduled or published fold covers it. It
// reports whether the mutation was removed — false means a compaction
// already captured it and the fold cannot be undone.
func (s *Store) rollbackMutation(name string, lsn uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[name]
	if e == nil {
		return true // dropped concurrently; nothing left to apply
	}
	if lsn <= e.ckptLSN {
		return false // a fold covering this LSN is queued, building, or published
	}
	for i, m := range e.pending {
		if m.lsn == lsn {
			e.pending = append(e.pending[:i], e.pending[i+1:]...)
			s.republishLocked()
			return true
		}
	}
	return false
}

// LogicalPoints returns the relation's current logical point sequence: the
// published snapshot's points with every pending delta applied. This is the
// sequence a from-scratch registration would need to converge to the same
// state — the points endpoint serves it so shard mirror-healing stays
// convergent mid-ingest. The returned slice must not be modified.
func (s *Store) LogicalPoints(name string) ([]geom.Point, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[name]
	if e == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownRelation, name)
	}
	if !e.fromPoints {
		return nil, fmt.Errorf("%w: %q", ErrNoPointSource, name)
	}
	if e.snap == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotReady, name)
	}
	return applyMutations(e.snap.Points, e.pending), nil
}

// Flush schedules an immediate compaction of name's pending deltas,
// regardless of the threshold. It does not wait; pair it with WaitSettled.
func (s *Store) Flush(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	e := s.entries[name]
	if e == nil {
		return fmt.Errorf("%w: %q", ErrUnknownRelation, name)
	}
	s.compactLocked(e)
	return nil
}

// WaitSettled blocks until every named relation is ready with an empty
// delta overlay, scheduling compactions as needed, or until any build fails
// or ctx expires. With no names it settles every relation known at call
// time.
func (s *Store) WaitSettled(ctx context.Context, names ...string) error {
	if len(names) == 0 {
		s.mu.Lock()
		for name := range s.entries {
			names = append(names, name)
		}
		s.mu.Unlock()
	}
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		done := true
		var failed error
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return ErrClosed
		}
		for _, name := range names {
			e := s.entries[name]
			if e == nil {
				failed = fmt.Errorf("store: relation %q is not registered", name)
				break
			}
			switch e.state {
			case StateReady:
				if len(e.pending) > 0 {
					s.compactLocked(e)
					done = false
				}
			case StateFailed:
				failed = fmt.Errorf("store: building %q: %s", name, e.err)
			default:
				done = false
			}
			if failed != nil {
				break
			}
		}
		s.mu.Unlock()
		if failed != nil {
			return failed
		}
		if done {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// compactLocked schedules a rebuild of e that folds its pending deltas into
// fresh artifacts via the ordinary build lifecycle. No WAL record is
// written here: the fold becomes durable only through the checkpoint the
// publish step logs. No-op while a build is already in flight (runJob
// re-triggers compaction when it lands) or before the first snapshot.
func (s *Store) compactLocked(e *entry) {
	if e.snap == nil || e.snap.Points == nil || len(e.pending) == 0 {
		return
	}
	if e.state == StateQueued || e.state == StateBuilding {
		return
	}
	merged := applyMutations(e.snap.Points, e.pending)
	if len(merged) == 0 {
		s.opt.logger().Printf("store: compaction of %q would delete every point; deltas stay pending", e.name)
		return
	}
	if err := s.enqueueLocked(e, merged, nil); err != nil {
		return // queue saturated; the interval compactor retries
	}
	e.isCompact = true
	e.ckptLSN = e.pending[len(e.pending)-1].lsn
	s.republishLocked()
}

// compactor is the background staleness bound: every CompactInterval it
// compacts any relation with pending deltas, so a trickle of mutations that
// never reaches CompactThreshold still lands in the artifacts.
func (s *Store) compactor() {
	defer close(s.compactorDone)
	t := time.NewTicker(s.opt.CompactInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopCompact:
			return
		case <-t.C:
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				return
			}
			for _, e := range s.entries {
				if len(e.pending) > 0 {
					s.compactLocked(e)
				}
			}
			s.mu.Unlock()
		}
	}
}

// recoverLocked restores the registry's relations and replays the WAL over
// them. Must run under s.mu before any build can publish: replay assigns
// each restored entry its pending deltas and checkpoint watermark, and a
// build publishing mid-replay could checkpoint-clear deltas it never saw.
func (s *Store) recoverLocked(records []wal.Record) {
	for _, reg := range s.cache.registry() {
		pts, err := s.cache.loadPoints(reg.Fingerprint)
		if err != nil {
			s.opt.logger().Printf("store: cache registry %q: %v (skipping)", reg.Name, err)
			continue
		}
		e := &entry{name: reg.Name, hits: &atomic.Int64{}}
		if err := s.enqueueLocked(e, pts, nil); err != nil {
			s.opt.logger().Printf("store: re-registering cached %q: %v", reg.Name, err)
			continue
		}
		e.fromPoints = true
		e.restoredFP = reg.Fingerprint
		// Restore the resolution pair so the rebuild recomputes the exact
		// registered fingerprint (a warm load) and the tuner resumes from
		// the persisted rung. The step count is re-derived by walking the
		// ladder; an unreachable effective resolution (hand-edited
		// registry) falls back to the declared one — one cold rebuild,
		// never an error. Q-error floors are not persisted: the probe
		// re-establishes them within a pass if the rung is too coarse.
		e.declaredRes = s.opt.resolveResolution(reg.Declared)
		e.res = e.declaredRes
		e.tunerFloor = math.MaxInt
		want := s.opt.resolveResolution(reg.Resolution)
		for r, steps := e.declaredRes, 0; ; steps++ {
			if r == want {
				e.res, e.tunerSteps = want, steps
				break
			}
			next := r.Coarser()
			if next == r {
				break // ladder exhausted without reaching want
			}
			r = next
		}
		s.entries[reg.Name] = e
	}
	now := time.Now()
	for _, rec := range records {
		e := s.entries[rec.Relation]
		if e == nil {
			continue
		}
		switch rec.Kind {
		case wal.KindCheckpoint:
			// Effective only if the registry knows this artifact set: the
			// checkpoint is written before the registry, so a mismatch
			// means the fold never became the durable base — the covered
			// mutations must re-apply onto the older restored base.
			if rec.Fingerprint == e.restoredFP {
				e.pending = filterCovered(e.pending, rec.Covered)
				e.ckptLSN = rec.Covered
				e.durableCovered = rec.Covered
				e.replayDropped = false
			}
		case wal.KindDrop:
			e.pending = nil
			e.replayDropped = true
		case wal.KindAppend, wal.KindDelete:
			e.pending = append(e.pending, mutation{lsn: rec.LSN, kind: rec.Kind, pts: rec.Points, at: now})
			s.walReplayed.Add(1)
		}
	}
	// A drop not followed by an effective checkpoint means the relation's
	// last durable event is its removal (the registry forget may not have
	// landed before the crash) — finish the drop instead of resurrecting.
	for name, e := range s.entries {
		if !e.replayDropped {
			continue
		}
		delete(s.entries, name)
		if err := s.cache.forget(name); err != nil {
			s.opt.logger().Printf("store: forgetting dropped %q on replay: %v", name, err)
		}
		s.opt.logger().Printf("store: replay finished drop of %q", name)
	}
	s.republishLocked()
}

// trimWALLocked deletes WAL segments every relation is past: a relation
// pins the log from its first pending delta (still needed on replay), or
// from its last durable checkpoint if a registry write failed (the records
// since then re-establish the lost state).
func (s *Store) trimWALLocked() {
	if s.wal == nil {
		return
	}
	watermark := s.wal.LastLSN()
	for _, e := range s.entries {
		pin := uint64(math.MaxUint64)
		if len(e.pending) > 0 {
			pin = e.pending[0].lsn - 1
		}
		if e.rememberFailed && e.durableCovered < pin {
			pin = e.durableCovered
		}
		if pin < watermark {
			watermark = pin
		}
	}
	s.wal.TrimTo(watermark)
}

// WALAppends returns the number of records appended to the WAL (0 without
// a cache directory).
func (s *Store) WALAppends() int64 {
	if s.wal == nil {
		return 0
	}
	return s.wal.Appends()
}

// WALFsyncs returns the number of WAL fsyncs issued.
func (s *Store) WALFsyncs() int64 {
	if s.wal == nil {
		return 0
	}
	return s.wal.Fsyncs()
}

// WALReplayed returns the number of mutation records replayed at startup.
func (s *Store) WALReplayed() int64 { return s.walReplayed.Load() }

// WALTruncatedTails returns the number of torn or corrupt WAL tails
// truncated at startup.
func (s *Store) WALTruncatedTails() int64 { return s.walTruncated.Load() }

// Compactions returns the number of delta compactions published.
func (s *Store) Compactions() int64 { return s.compactions.Load() }
