// Store-layer column of the aknn-bounds test suite: the published
// Snapshot's AkNN summary estimates match the brute-force oracle, survive
// a warm restart from the disk cache bit-identically with zero rebuilds,
// and the edge tables (k = 0, k >= N, all duplicates) hold through the
// engine registry exactly as they do in-process.
package store

import (
	"context"
	"testing"
	"time"

	"knncost/internal/aknn"
	"knncost/internal/engine"
	"knncost/internal/geom"
	"knncost/internal/oracle"
)

// aknnJoinEstimate resolves aknn-bounds through the view's engine
// relations — the exact path the service takes.
func aknnJoinEstimate(t *testing.T, v *View, outer, inner string, k int) (float64, error) {
	t.Helper()
	jt, err := engine.LookupJoin(engine.TechAknnBounds)
	if err != nil {
		t.Fatal(err)
	}
	est, err := jt.Estimator(v.Relation(outer).Engine, v.Relation(inner).Engine)
	if err != nil {
		t.Fatal(err)
	}
	return est.EstimateJoin(k)
}

// TestAknnSnapshotMatchesOracle: the published summary, the ground-truth
// cost, and the registry-resolved estimator all agree with the oracle
// references derived from nothing but the snapshot's own trees.
func TestAknnSnapshotMatchesOracle(t *testing.T) {
	opt := testOptions(t)
	s := newTestStore(t, opt)
	if _, err := s.Register("rel", gridPoints(800, 21)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("aux", gridPoints(500, 23)); err != nil {
		t.Fatal(err)
	}
	waitReady(t, s)
	v := s.View()
	outer, inner := v.Relation("rel"), v.Relation("aux")
	if outer.Aknn == nil || inner.Aknn == nil {
		t.Fatal("published snapshot has no AkNN summary")
	}
	if inner.Aknn.Total() != 500 {
		t.Fatalf("aux summary Total = %d, want 500", inner.Aknn.Total())
	}
	for _, k := range []int{1, 9, opt.MaxK, opt.MaxK + 13, 800} {
		if got, want := aknn.Cost(outer.Count, inner.Count, k), oracle.AknnJoinCost(outer.Count, inner.Count, k); got != want {
			t.Fatalf("Cost(k=%d) = %d, oracle %d", k, got, want)
		}
		got, err := inner.Aknn.Bind(outer.Count, opt.SampleSize).EstimateJoin(k)
		want, wantErr := oracle.AknnBoundsEstimate(outer.Count, inner.Count, opt.SampleSize, k)
		if err != nil || wantErr != nil || got != want {
			t.Fatalf("snapshot estimate(k=%d) = %v,%v; oracle %v,%v", k, got, err, want, wantErr)
		}
		viaEngine, err := aknnJoinEstimate(t, v, "rel", "aux", k)
		if err != nil || viaEngine != want {
			t.Fatalf("engine estimate(k=%d) = %v,%v; oracle %v", k, viaEngine, err, want)
		}
	}
	// The registry path serves the published summary itself, not a rebuild.
	if got := v.Relation("aux").Engine.AknnSummary(); got != inner.Aknn {
		t.Fatalf("engine relation rebuilt the summary: %p, published %p", got, inner.Aknn)
	}
}

// TestAknnWarmRestartBitIdentical: after a warm restart every aknn-bounds
// estimate is served from the disk-cached artifact — zero catalog builds —
// and equals the cold store's answers bit for bit.
func TestAknnWarmRestartBitIdentical(t *testing.T) {
	opt := testOptions(t)
	opt.CacheDir = t.TempDir()

	cold := newTestStore(t, opt)
	if _, err := cold.Register("rel", gridPoints(900, 31)); err != nil {
		t.Fatal(err)
	}
	if _, err := cold.Register("aux", gridPoints(400, 33)); err != nil {
		t.Fatal(err)
	}
	waitReady(t, cold)
	ks := []int{1, 7, opt.MaxK, 400, 1000}
	coldEst := make([]float64, len(ks))
	for i, k := range ks {
		var err error
		if coldEst[i], err = aknnJoinEstimate(t, cold.View(), "rel", "aux", k); err != nil {
			t.Fatalf("cold estimate(k=%d): %v", k, err)
		}
	}
	{
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := cold.Close(ctx)
		cancel()
		if err != nil {
			t.Fatalf("cold Close: %v", err)
		}
	}

	warm := newTestStore(t, opt)
	waitReady(t, warm)
	if n := warm.CatalogBuilds(); n != 0 {
		t.Fatalf("warm restart constructed %d catalogs, want 0", n)
	}
	if warm.CacheHits() == 0 {
		t.Fatal("warm restart recorded no cache hits")
	}
	wv := warm.View()
	if wv.Relation("aux").Aknn.Total() != 400 {
		t.Fatalf("cached summary Total = %d, want 400", wv.Relation("aux").Aknn.Total())
	}
	for i, k := range ks {
		got, err := aknnJoinEstimate(t, wv, "rel", "aux", k)
		if err != nil || got != coldEst[i] {
			t.Fatalf("warm estimate(k=%d) = %v,%v; cold %v", k, got, err, coldEst[i])
		}
	}
	// The cached summary still matches the oracle over the reloaded trees.
	outer, inner := wv.Relation("rel"), wv.Relation("aux")
	got, err := inner.Aknn.Bind(outer.Count, opt.SampleSize).EstimateJoin(9)
	want, wantErr := oracle.AknnBoundsEstimate(outer.Count, inner.Count, opt.SampleSize, 9)
	if err != nil || wantErr != nil || got != want {
		t.Fatalf("cached estimate = %v,%v; oracle %v,%v", got, err, want, wantErr)
	}
}

// TestAknnStoreEdgeCases: degenerate relations published through the
// store keep the uniform k contract and exact edge behavior.
func TestAknnStoreEdgeCases(t *testing.T) {
	s := newTestStore(t, testOptions(t))
	tiny := []geom.Point{
		{X: 1, Y: 1}, {X: 2, Y: 1}, {X: 3, Y: 4},
		{X: 8, Y: 2}, {X: 9, Y: 9}, {X: 5, Y: 5},
	}
	dups := make([]geom.Point, 40)
	for i := range dups {
		dups[i] = geom.Point{X: 4, Y: 4}
	}
	if _, err := s.Register("tiny", tiny); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("dups", dups); err != nil {
		t.Fatal(err)
	}
	waitReady(t, s)
	v := s.View()

	for _, k := range []int{0, -1} {
		if _, err := aknnJoinEstimate(t, v, "tiny", "dups", k); err == nil {
			t.Fatalf("k=%d accepted", k)
		}
	}
	// All duplicates, both roles; k past N; exact agreement throughout.
	for _, p := range [][2]string{{"tiny", "dups"}, {"dups", "tiny"}} {
		outer, inner := v.Relation(p[0]), v.Relation(p[1])
		for _, k := range []int{1, 3, 40, 100} {
			got, err := aknnJoinEstimate(t, v, p[0], p[1], k)
			want, wantErr := oracle.AknnBoundsEstimate(outer.Count, inner.Count, s.Options().SampleSize, k)
			if err != nil || wantErr != nil || got != want {
				t.Fatalf("%s⋉%s k=%d: %v,%v; oracle %v,%v", p[0], p[1], k, got, err, want, wantErr)
			}
			if cost := aknn.Cost(outer.Count, inner.Count, k); cost != oracle.AknnJoinCost(outer.Count, inner.Count, k) {
				t.Fatalf("%s⋉%s k=%d: cost diverged", p[0], p[1], k)
			}
		}
	}
}
