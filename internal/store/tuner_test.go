package store

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// tunerTestOptions: a resolution with room to shrink (MaxK 512 is three
// MaxK rungs above the 64 floor), the background loop disabled so the test
// drives TunerTick deterministically, and a tolerance high enough that the
// q-error probe never reverts unless a test lowers it.
func tunerTestOptions(t *testing.T) Options {
	opt := testOptions(t)
	opt.MaxK = 512
	opt.TunerInterval = -1
	opt.TunerQErrorTolerance = 1e9
	return opt
}

func mustStatus(t *testing.T, s *Store, name string) RelationStatus {
	t.Helper()
	st, ok := s.Status(name)
	if !ok {
		t.Fatalf("relation %q has no status", name)
	}
	return st
}

// tickUntil drives tuner passes until cond holds, waiting for the scheduled
// rebuilds to publish between passes.
func tickUntil(t *testing.T, s *Store, names []string, cond func() bool) {
	t.Helper()
	for pass := 0; pass < 60; pass++ {
		if cond() {
			return
		}
		s.TunerTick()
		waitReady(t, s, names...)
	}
	t.Fatalf("tuner did not reach the goal in 60 passes: total=%d budget=%d shrinks=%d grows=%d reverts=%d blocked=%d",
		s.ArtifactBytes(), s.TunerBudgetBytes(), s.TunerShrinks(), s.TunerGrows(), s.TunerReverts(), s.TunerBlocked())
}

// TestTunerConvergesToBudget is the differential proof of the space-budget
// policy: over budget, repeated passes shrink the cold relations until the
// summed artifact bytes fit; the hot relation keeps its declared
// resolution; and a restart over the same cache resumes the tuned rungs
// from the registry instead of resetting them.
func TestTunerConvergesToBudget(t *testing.T) {
	dir := t.TempDir()
	names := []string{"hot", "cold0", "cold1", "cold2", "cold3", "cold4"}

	// Measure the fleet's untuned footprint with the tuner disabled.
	optA := tunerTestOptions(t)
	optA.CacheDir = dir
	sA := newTestStore(t, optA)
	for i, name := range names {
		if _, err := sA.Register(name, gridPoints(600+i*150, int64(i))); err != nil {
			t.Fatalf("Register %s: %v", name, err)
		}
	}
	waitReady(t, sA, names...)
	total := sA.ArtifactBytes()
	if total <= 0 {
		t.Fatalf("untuned fleet reports %d artifact bytes", total)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sA.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen the same cache with 3/4 of that budget and drive the tuner by
	// hand, keeping "hot" hot across every pass. (The margin matters: a
	// single pass shrinks cold relations only until the projected total
	// fits, so a budget reachable from one rung of cold shrinks must leave
	// the hot relation untouched.)
	budget := total * 3 / 4
	optB := tunerTestOptions(t)
	optB.CacheDir = dir
	optB.CatalogBudgetBytes = budget
	sB := newTestStore(t, optB)
	waitReady(t, sB, names...)
	if got := sB.ArtifactBytes(); got != total {
		t.Fatalf("warm restore changed the footprint: %d, want %d", got, total)
	}
	tickUntil(t, sB, names, func() bool {
		sB.View().Relation("hot").TouchN(1000)
		return sB.ArtifactBytes() <= budget
	})
	if sB.TunerShrinks() == 0 {
		t.Fatal("converged without any shrink")
	}
	if got := sB.TunerBytes(); got > total {
		t.Fatalf("TunerBytes() = %d, above the untuned total %d", got, total)
	}

	// Traffic-weighting: the hot relation must still serve its declared
	// resolution; at least one cold relation must have coarsened.
	hot := mustStatus(t, sB, "hot")
	if hot.Resolution != hot.DeclaredResolution {
		t.Fatalf("hot relation was coarsened to %+v (declared %+v) while cold candidates existed",
			hot.Resolution, hot.DeclaredResolution)
	}
	coarsened := 0
	for _, name := range names[1:] {
		if st := mustStatus(t, sB, name); st.Resolution != st.DeclaredResolution {
			coarsened++
			if st.Resolution.MaxK >= st.DeclaredResolution.MaxK {
				t.Fatalf("%s: tuned resolution %+v is not coarser than declared %+v", name, st.Resolution, st.DeclaredResolution)
			}
		}
	}
	if coarsened == 0 {
		t.Fatal("no cold relation was coarsened")
	}
	// Tuned relations keep estimating: the coarsened staircase still
	// answers selects (the accuracy contract is probed separately).
	for _, name := range names {
		snap := sB.View().Relation(name)
		if _, err := snap.Staircase.EstimateSelect(snap.Points[0], 9); err != nil {
			t.Fatalf("%s: estimate after tuning: %v", name, err)
		}
	}
	if err := sB.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Restart continuity: the registry persists declared and effective
	// resolutions, so a third store resumes every tuned rung verbatim —
	// and the coarsened artifacts warm-load instead of rebuilding.
	optC := tunerTestOptions(t)
	optC.CacheDir = dir
	optC.CatalogBudgetBytes = budget
	sC := newTestStore(t, optC)
	waitReady(t, sC, names...)
	if sC.CatalogBuilds() != 0 {
		t.Fatalf("restart rebuilt %d relations; tuned rungs should warm-load", sC.CatalogBuilds())
	}
	for _, name := range names {
		b, c := mustStatus(t, sB, name), mustStatus(t, sC, name)
		if b.Resolution != c.Resolution || b.DeclaredResolution != c.DeclaredResolution {
			t.Fatalf("%s: restart changed resolutions: %+v/%+v, want %+v/%+v",
				name, c.Resolution, c.DeclaredResolution, b.Resolution, b.DeclaredResolution)
		}
	}
	if got := sC.ArtifactBytes(); got > budget {
		t.Fatalf("restarted fleet is over budget again: %d > %d", got, budget)
	}
}

// TestTunerGrowsBackUnderHeadroom: freeing budget (dropping relations) must
// let the hottest tuned relation climb back toward its declared resolution,
// one rung per pass.
func TestTunerGrowsBackUnderHeadroom(t *testing.T) {
	opt := tunerTestOptions(t)
	opt.CacheDir = t.TempDir()
	var names []string
	for i := 0; i < 5; i++ {
		names = append(names, fmt.Sprintf("r%d", i))
	}

	// Open with a budget small enough to force shrinks on every relation.
	probe := newTestStore(t, opt)
	if _, err := probe.Register("sizer", gridPoints(800, 99)); err != nil {
		t.Fatal(err)
	}
	waitReady(t, probe, "sizer")
	one := probe.ArtifactBytes()
	probe.Drop("sizer")

	opt.CatalogBudgetBytes = 3 * one
	s := newTestStore(t, opt)
	for i, name := range names {
		if _, err := s.Register(name, gridPoints(800, int64(i))); err != nil {
			t.Fatalf("Register %s: %v", name, err)
		}
	}
	waitReady(t, s, names...)
	tickUntil(t, s, names, func() bool { return s.ArtifactBytes() <= s.TunerBudgetBytes() })
	tuned := ""
	for _, name := range names {
		if st := mustStatus(t, s, name); st.Resolution != st.DeclaredResolution {
			tuned = name
			break
		}
	}
	if tuned == "" {
		t.Fatal("no relation was tuned down under a 3/5 budget")
	}

	// Dropping two relations frees well over the headroom band; the tuned
	// survivor (kept hottest) must grow back to its declared resolution.
	s.Drop(names[4])
	for _, name := range names[:4] {
		if name != tuned {
			s.Drop(name)
			break
		}
	}
	remaining := []string{tuned}
	tickUntil(t, s, remaining, func() bool {
		s.View().Relation(tuned).TouchN(100)
		st := mustStatus(t, s, tuned)
		return st.Resolution == st.DeclaredResolution
	})
	if s.TunerGrows() == 0 {
		t.Fatal("relation recovered its declared resolution without a recorded grow")
	}
}

// TestTunerRevertsOnQErrorBreach: with a tolerance no real coarsening can
// meet, the q-error probe must revert the shrink and floor the relation,
// and later passes must refuse to shrink it again (blocked, not looping).
func TestTunerRevertsOnQErrorBreach(t *testing.T) {
	opt := tunerTestOptions(t)
	opt.CacheDir = t.TempDir()
	opt.TunerQErrorTolerance = 1.0000001
	opt.CatalogBudgetBytes = 1 // hopelessly over budget: every pass wants to shrink
	s := newTestStore(t, opt)
	if _, err := s.Register("only", gridPoints(900, 5)); err != nil {
		t.Fatal(err)
	}
	waitReady(t, s, "only")

	tickUntil(t, s, []string{"only"}, func() bool { return s.TunerReverts() > 0 })
	waitReady(t, s, "only") // let the revert rebuild publish
	st := mustStatus(t, s, "only")
	if st.Resolution != st.DeclaredResolution {
		t.Fatalf("reverted relation serves %+v, want its declared %+v", st.Resolution, st.DeclaredResolution)
	}

	// The floor must hold: further passes are blocked instead of retrying
	// the breached rung forever.
	blocked := s.TunerBlocked()
	s.TunerTick()
	waitReady(t, s, "only")
	if s.TunerBlocked() <= blocked {
		t.Fatalf("pass after a revert did not report the floored relation as blocked (%d -> %d)", blocked, s.TunerBlocked())
	}
	st = mustStatus(t, s, "only")
	if st.Resolution != st.DeclaredResolution {
		t.Fatalf("floored relation shrank again to %+v", st.Resolution)
	}
}
