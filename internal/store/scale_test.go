package store

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"testing"
	"time"

	"knncost/internal/aknn"
	"knncost/internal/core"
	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/quadtree"
)

// TestMmapCatalogScale measures the zero-copy read path at fleet scale: N
// small relations are built once and persisted, then the cache is re-opened
// and every relation warm-loaded through the mmap loaders, exactly the way a
// restarted daemon re-hydrates its schema. The test asserts bit-identical
// estimates across the round trip with zero artifact builds, and logs the
// numbers DESIGN.md records: warm-load wall time, RSS and heap growth next
// to the summed artifact bytes (the growth stays far below the artifact
// bytes because catalogs are borrowed from the page cache, not copied).
//
// KNNCOST_MMAP_RELATIONS overrides the relation count; scripts/soak.sh mmap
// drives it at 100k.
func TestMmapCatalogScale(t *testing.T) {
	n := 500
	if testing.Short() {
		n = 100
	}
	if s := os.Getenv("KNNCOST_MMAP_RELATIONS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			t.Fatalf("KNNCOST_MMAP_RELATIONS=%q: want a positive integer", s)
		}
		n = v
	}
	dir := t.TempDir()
	cache, err := openDiskCache(dir, "")
	if err != nil {
		t.Fatalf("openDiskCache: %v", err)
	}
	res := core.Resolution{MaxK: 64, GridSize: 4}.Canon()
	opt := core.StaircaseOptions{MaxK: res.MaxK, Mode: res.StaircaseMode()}

	relPoints := func(i int) []geom.Point {
		return gridPoints(16+i%17, int64(i))
	}

	type loaded struct {
		stair *core.Staircase
		vg    *core.VirtualGrid
		sum   *aknn.Summary
	}
	fps := make([]string, n)
	want := make([][3]float64, n)
	built := make([]loaded, n)
	var artifactBytes int64

	buildStart := time.Now()
	for i := 0; i < n; i++ {
		pts := relPoints(i)
		tree := quadtree.Build(pts, quadtree.Options{Capacity: 16}).Index()
		count := tree.CountTree()
		stair, err := core.BuildStaircase(tree, opt)
		if err != nil {
			t.Fatalf("BuildStaircase %d: %v", i, err)
		}
		vg, err := core.BuildVirtualGrid(count, res.GridSize, res.GridSize, res.MaxK)
		if err != nil {
			t.Fatalf("BuildVirtualGrid %d: %v", i, err)
		}
		sum := aknn.BuildSummaryCapacity(count, res.AknnCapacity)
		fp := fmt.Sprintf("%064x", i)
		if err := cache.storeRelation(fp, manifest{}, pts, stair, vg, sum, res); err != nil {
			t.Fatalf("storeRelation %d: %v", i, err)
		}
		fps[i] = fp
		built[i] = loaded{stair, vg, sum}
		want[i] = probeAll(t, pts, stair, vg, sum, count)
		artifactBytes += int64(stair.SizeBytes() + vg.SizeBytes() + sum.SizeBytes())
	}
	buildTook := time.Since(buildStart)
	runtime.GC()
	debug.FreeOSMemory()
	rssBuilt := vmRSS() // heap-built artifacts resident

	// Drop every built artifact before measuring the warm path, so RSS and
	// heap growth attribute to the loads alone.
	for i := range built {
		built[i] = loaded{}
	}
	runtime.GC()
	debug.FreeOSMemory()
	rss0, heap0 := vmRSS(), heapAlloc()

	cache2, err := openDiskCache(dir, "")
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	keep := make([]loaded, n) // a daemon keeps every relation resident
	warmStart := time.Now()
	for i := 0; i < n; i++ {
		pts := relPoints(i)
		tree := quadtree.Build(pts, quadtree.Options{Capacity: 16}).Index()
		count := tree.CountTree()
		stair, vg, sum, err := cache2.loadRelation(fps[i], tree, opt, res)
		if err != nil {
			t.Fatalf("loadRelation %d: %v", i, err)
		}
		keep[i] = loaded{stair, vg, sum}
		if got := probeAll(t, pts, stair, vg, sum, count); got != want[i] {
			t.Fatalf("relation %d not bit-identical after warm load: got %+v, want %+v", i, got, want[i])
		}
	}
	warmTook := time.Since(warmStart)
	runtime.GC()
	debug.FreeOSMemory()
	rss1, heap1 := vmRSS(), heapAlloc()
	runtime.KeepAlive(keep)

	t.Logf("relations=%d artifact_bytes=%.1fMB build=%v warm_load=%v (%.1fµs/relation)",
		n, float64(artifactBytes)/(1<<20), buildTook.Round(time.Millisecond),
		warmTook.Round(time.Millisecond), float64(warmTook.Microseconds())/float64(n))
	t.Logf("rss: built=%.1fMB warm=%.1fMB (growth rss=%+.1fMB heap=%+.1fMB; artifacts stay file-backed)",
		float64(rssBuilt)/(1<<20), float64(rss1)/(1<<20),
		float64(rss1-rss0)/(1<<20), float64(heap1-heap0)/(1<<20))
}

// probeAll pins all three mmap-backed artifacts of one relation with a
// deterministic estimate each; bit-identity of the triple across a reload
// means the borrowed catalogs decode to the exact built values.
func probeAll(t *testing.T, pts []geom.Point, stair *core.Staircase, vg *core.VirtualGrid, sum *aknn.Summary, count *index.Tree) [3]float64 {
	t.Helper()
	sel, err := stair.EstimateSelect(pts[0], 7)
	if err != nil {
		t.Fatalf("EstimateSelect: %v", err)
	}
	vj, err := vg.Bind(count).EstimateJoin(5)
	if err != nil {
		t.Fatalf("virtual-grid EstimateJoin: %v", err)
	}
	aj, err := sum.Bind(count, 8).EstimateJoin(5)
	if err != nil {
		t.Fatalf("aknn EstimateJoin: %v", err)
	}
	return [3]float64{sel, vj, aj}
}

// vmRSS reads the resident set size from /proc/self/status, in bytes.
// Returns 0 where procfs is unavailable; the log line is then a no-op.
func vmRSS() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if after, ok := strings.CutPrefix(line, "VmRSS:"); ok {
			kb, err := strconv.ParseInt(strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(after), "kB")), 10, 64)
			if err != nil {
				return 0
			}
			return kb << 10
		}
	}
	return 0
}

func heapAlloc() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}
