package store

// The space-budget auto-tuner: a background pass that keeps the summed
// artifact bytes of every published relation inside CatalogBudgetBytes by
// trading accuracy for space per relation — the dial core.Resolution
// exposes. Policy:
//
//   - Traffic-weighted: every estimate served calls Snapshot.Touch; the
//     tuner swaps the per-relation counter to zero each pass, so the value
//     is per-pass traffic. Over budget, the coldest relations shrink
//     first (ties broken toward the largest, then by name for
//     determinism); under budget with headroom, the hottest tuned
//     relation grows back toward its declared resolution.
//   - Bounded degradation: after a coarsened rebuild publishes, the tuner
//     probes its select q-error against ground-truth distance browsing
//     (knn.SelectCost). A rung whose worst probe exceeds
//     TunerQErrorTolerance is reverted and floored: the tuner never
//     shrinks that relation past the floor again.
//   - Rebuilds ride the ordinary supersede/cancel build pool, exactly
//     like delta compaction: pending mutations fold in, the publish step
//     checkpoints them, and a re-registration mid-retune supersedes the
//     retune (gen check). A retuned relation is bit-identical to a fresh
//     registration of the same points at the same resolution.
//
// Only point-registered relations are tuned: index-registered ones cannot
// be rebuilt from a reproducible source.

import (
	"sort"
	"time"

	"knncost/internal/core"
	"knncost/internal/knn"
)

// tuner is the background loop; started by New when CatalogBudgetBytes
// and TunerInterval are both positive.
func (s *Store) tuner() {
	defer close(s.tunerDone)
	t := time.NewTicker(s.opt.TunerInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopTuner:
			return
		case <-t.C:
			s.TunerTick()
		}
	}
}

// TunerTick runs one synchronous tuner pass: probe the q-error of rungs
// published since the last pass, re-measure the byte total, then shrink or
// grow. Exported so deterministic tests (and operators with the background
// loop disabled) can drive the tuner explicitly; safe concurrently with
// everything else the store does.
func (s *Store) TunerTick() {
	if s.opt.CatalogBudgetBytes <= 0 {
		return
	}
	s.tunerPasses.Add(1)
	s.probeQError()
	s.rebalance()
}

// tunerCand is one relation the rebalance pass considers.
type tunerCand struct {
	e    *entry
	hits int64
	size int
}

// rebalance measures the store-wide artifact byte total and schedules at
// most one pass of shrinks (over budget) or one grow (well under budget).
func (s *Store) rebalance() {
	budget := s.opt.CatalogBudgetBytes
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	var total int64
	var cands []tunerCand
	for _, e := range s.entries {
		if e.snap == nil {
			continue
		}
		total += int64(e.snap.ArtifactBytes)
		if !e.fromPoints {
			continue
		}
		var hits int64
		if e.hits != nil {
			hits = e.hits.Swap(0)
		}
		cands = append(cands, tunerCand{e: e, hits: hits, size: e.snap.ArtifactBytes})
	}
	s.tunerBytes.Store(total)
	// The grow threshold sits below the budget by one headroom band (10%)
	// so shrink/grow cannot oscillate: a grow is only attempted when even
	// a doubled artifact keeps the total under the band.
	headroom := budget - budget/10
	switch {
	case total > budget:
		// Coldest first; among equals the biggest saves the most.
		sort.Slice(cands, func(i, j int) bool {
			a, b := cands[i], cands[j]
			if a.hits != b.hits {
				return a.hits < b.hits
			}
			if a.size != b.size {
				return a.size > b.size
			}
			return a.e.name < b.e.name
		})
		projected := total
		for _, c := range cands {
			if projected <= budget {
				break
			}
			if c.e.state != StateReady {
				continue // one in-flight rebuild per relation at a time
			}
			if c.e.tunerSteps >= c.e.tunerFloor {
				s.tunerBlocked.Add(1)
				continue
			}
			next := c.e.declaredRes.CoarserN(c.e.tunerSteps + 1)
			if next == c.e.res {
				continue // ladder exhausted
			}
			if !s.retuneLocked(c.e, c.e.tunerSteps+1, next) {
				continue
			}
			s.tunerShrinks.Add(1)
			// Halving MaxK roughly halves catalog bytes; the projection
			// only spaces shrinks across passes, the next measurement
			// corrects it.
			projected -= int64(c.size) / 2
		}
	case total <= headroom:
		// Hottest tuned relation grows one rung; one grow per pass keeps
		// convergence monotone between measurements.
		sort.Slice(cands, func(i, j int) bool {
			a, b := cands[i], cands[j]
			if a.hits != b.hits {
				return a.hits > b.hits
			}
			return a.e.name < b.e.name
		})
		for _, c := range cands {
			if c.e.tunerSteps == 0 || c.e.state != StateReady {
				continue
			}
			if total+int64(c.size) > headroom {
				continue // growing could double it past the band
			}
			next := c.e.declaredRes.CoarserN(c.e.tunerSteps - 1)
			if s.retuneLocked(c.e, c.e.tunerSteps-1, next) {
				s.tunerGrows.Add(1)
				break
			}
		}
	}
}

// retuneLocked schedules a rebuild of e at res, folding any pending deltas
// exactly like compactLocked. Caller holds s.mu. Reports whether the
// rebuild was scheduled.
func (s *Store) retuneLocked(e *entry, steps int, res core.Resolution) bool {
	if e.snap == nil || e.snap.Points == nil {
		return false
	}
	if e.state == StateQueued || e.state == StateBuilding {
		return false
	}
	merged := applyMutations(e.snap.Points, e.pending)
	if len(merged) == 0 {
		return false
	}
	if err := s.enqueueLocked(e, merged, nil); err != nil {
		return false // queue saturated; the next pass retries
	}
	e.res = res
	e.tunerSteps = steps
	if len(e.pending) > 0 {
		e.isCompact = true
		e.ckptLSN = e.pending[len(e.pending)-1].lsn
	}
	s.republishLocked()
	return true
}

// probeQError checks every tuned relation whose coarsened rebuild has
// published since the last probe: a deterministic sample of its own points
// is estimated through the published staircase and compared against
// ground-truth distance browsing. A rung whose worst q-error exceeds the
// tolerance is reverted and floored. The probes themselves run without the
// store lock — they cost a few distance browsings, not a pass over the
// data.
func (s *Store) probeQError() {
	type probe struct {
		snap  *Snapshot
		steps int
	}
	s.mu.Lock()
	var probes []probe
	for _, e := range s.entries {
		if e.tunerSteps == 0 || e.snap == nil || e.snap.Points == nil {
			continue
		}
		if e.snap.Resolution != e.res {
			continue // the coarsened rebuild has not published yet
		}
		if e.tunerProbed >= e.snap.Version {
			continue
		}
		probes = append(probes, probe{snap: e.snap, steps: e.tunerSteps})
	}
	s.mu.Unlock()
	for _, p := range probes {
		q := snapshotQError(p.snap)
		s.mu.Lock()
		e := s.entries[p.snap.Name]
		if e == nil || e.snap != p.snap {
			s.mu.Unlock()
			continue // superseded while probing; the next publish re-probes
		}
		e.tunerProbed = p.snap.Version
		if q > s.opt.TunerQErrorTolerance && e.tunerFloor > p.steps-1 {
			e.tunerFloor = p.steps - 1
			if e.tunerSteps > e.tunerFloor {
				next := e.declaredRes.CoarserN(e.tunerFloor)
				if s.retuneLocked(e, e.tunerFloor, next) {
					s.tunerReverts.Add(1)
				}
			}
		}
		s.mu.Unlock()
	}
}

// tunerProbes is the number of sample queries one q-error probe issues.
const tunerProbes = 8

// snapshotQError returns the worst select q-error of the snapshot over a
// deterministic stride of its own points, probing the catalog at its
// shallow, middle and full depth.
func snapshotQError(snap *Snapshot) float64 {
	pts := snap.Points
	if len(pts) == 0 {
		return 1
	}
	stride := max(1, len(pts)/tunerProbes)
	maxK := snap.Resolution.MaxK
	ks := []int{1, max(1, maxK/4), maxK}
	worst := 1.0
	for i := 0; i < len(pts); i += stride {
		for _, k := range ks {
			est, err := snap.Staircase.EstimateSelect(pts[i], k)
			if err != nil {
				continue
			}
			act := float64(knn.SelectCost(snap.Tree, pts[i], k))
			if q := qError(est, act); q > worst {
				worst = q
			}
		}
	}
	return worst
}

// qError is the symmetric estimate/actual ratio, floored at one block so a
// zero on either side cannot produce an infinite error.
func qError(est, act float64) float64 {
	est = max(est, 1)
	act = max(act, 1)
	if est > act {
		return est / act
	}
	return act / est
}

// TunerPasses returns the number of tuner passes run.
func (s *Store) TunerPasses() int64 { return s.tunerPasses.Load() }

// TunerShrinks returns the number of coarsening rebuilds scheduled.
func (s *Store) TunerShrinks() int64 { return s.tunerShrinks.Load() }

// TunerGrows returns the number of re-deepening rebuilds scheduled.
func (s *Store) TunerGrows() int64 { return s.tunerGrows.Load() }

// TunerReverts returns the number of rungs reverted by the q-error probe.
func (s *Store) TunerReverts() int64 { return s.tunerReverts.Load() }

// TunerBlocked returns the number of shrinks refused by a q-error floor.
func (s *Store) TunerBlocked() int64 { return s.tunerBlocked.Load() }

// TunerBytes returns the artifact byte total measured by the latest tuner
// pass (zero before the first pass; see ArtifactBytes for an on-demand
// measurement).
func (s *Store) TunerBytes() int64 { return s.tunerBytes.Load() }

// TunerBudgetBytes returns the configured catalog byte budget (zero when
// the tuner is disabled).
func (s *Store) TunerBudgetBytes() int64 { return s.opt.CatalogBudgetBytes }

// ArtifactBytes sums the artifact bytes of every currently published
// relation — the quantity the tuner steers toward the budget.
func (s *Store) ArtifactBytes() int64 {
	var total int64
	v := s.View()
	for _, name := range v.Names() {
		total += int64(v.Relation(name).ArtifactBytes)
	}
	return total
}
