// Differential tests of the store against the brute-force oracle: every
// estimate a published Snapshot serves — before a hot swap, after one, and
// after a warm restart from the disk cache — must equal the slow reference
// computation over that snapshot's own tree, and batch estimates served
// concurrently with hot swaps must each match exactly one published
// version.
package store

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"knncost/internal/core"
	"knncost/internal/geom"
	"knncost/internal/oracle"
)

// oracleProbes is a deterministic query mix over the gridPoints domain
// [0,100)²: interior points, a lattice point, and one query outside the
// relation's MBR (which exercises the density fallback seam).
var oracleProbes = []geom.Point{
	{X: 10.5, Y: 10.5},
	{X: 55, Y: 40},
	{X: 0, Y: 0},
	{X: 99.9, Y: 0.1},
	{X: 250, Y: -40},
}

// assertSnapshotMatchesOracle checks every estimator of the published view
// against its reference implementation, derived from nothing but the
// snapshot's own trees. ks straddle MaxK so the staircase fallback path is
// covered too.
func assertSnapshotMatchesOracle(t *testing.T, v *View, outerName, innerName string, opt Options) {
	t.Helper()
	outer, inner := v.Relation(outerName), v.Relation(innerName)
	if outer == nil || inner == nil {
		t.Fatalf("view is missing %q or %q", outerName, innerName)
	}
	ks := []int{1, 2, 17, opt.MaxK, opt.MaxK + 13}
	fallback := func(q geom.Point, k int) (float64, error) {
		return oracle.DensityEstimate(outer.Count, q, k)
	}
	for _, q := range oracleProbes {
		for _, k := range ks {
			got, err := outer.Staircase.EstimateSelect(q, k)
			want, wantErr := oracle.StaircaseEstimate(outer.Tree, oracle.ModeCenterCorners, q, k, opt.MaxK, fallback)
			if err != nil || wantErr != nil || got != want {
				t.Fatalf("staircase(%v, k=%d) v%d = %v,%v; oracle %v,%v",
					q, k, outer.Version, got, err, want, wantErr)
			}
			got, err = outer.Density.EstimateSelect(q, k)
			want, wantErr = oracle.DensityEstimate(outer.Count, q, k)
			if err != nil || wantErr != nil || got != want {
				t.Fatalf("density(%v, k=%d) v%d = %v,%v; oracle %v,%v",
					q, k, outer.Version, got, err, want, wantErr)
			}
		}
	}
	for _, k := range []int{1, 9, opt.MaxK, opt.MaxK + 13} {
		got, err := v.Merge(outerName, innerName).EstimateJoin(k)
		want, wantErr := oracle.CatalogMergeEstimate(outer.Count, inner.Count, opt.SampleSize, opt.MaxK, k)
		if err != nil || wantErr != nil || got != want {
			t.Fatalf("catalog-merge(k=%d) = %v,%v; oracle %v,%v", k, got, err, want, wantErr)
		}
		got, err = inner.VGrid.Bind(outer.Count).EstimateJoin(k)
		want, wantErr = oracle.VirtualGridEstimate(outer.Count, inner.Count, opt.GridSize, opt.GridSize, opt.MaxK, k)
		if err != nil || wantErr != nil || got != want {
			t.Fatalf("virtual-grid(k=%d) = %v,%v; oracle %v,%v", k, got, err, want, wantErr)
		}
	}
}

// TestSnapshotEstimatesMatchOracleAcrossSwapAndRestart walks one relation
// through its full lifecycle — initial publish, hot swap to a new dataset,
// warm restart from the disk cache — and asserts oracle agreement at every
// stage, plus immutability of the pre-swap view and exact warm==cold
// equality.
func TestSnapshotEstimatesMatchOracleAcrossSwapAndRestart(t *testing.T) {
	opt := testOptions(t)
	opt.CacheDir = t.TempDir()

	cold := newTestStore(t, opt)
	if _, err := cold.Register("rel", gridPoints(800, 1)); err != nil {
		t.Fatalf("Register rel: %v", err)
	}
	if _, err := cold.Register("aux", gridPoints(500, 3)); err != nil {
		t.Fatalf("Register aux: %v", err)
	}
	waitReady(t, cold)
	before := cold.View()
	assertSnapshotMatchesOracle(t, before, "rel", "aux", cold.Options())
	beforeEst, err := before.Relation("rel").Staircase.EstimateSelect(oracleProbes[0], 5)
	if err != nil {
		t.Fatal(err)
	}

	// Hot swap rel to a different dataset: the new view must match the
	// oracle over the new tree, and the old view must be untouched.
	if _, err := cold.Register("rel", gridPoints(1200, 2)); err != nil {
		t.Fatalf("Register rel (swap): %v", err)
	}
	waitReady(t, cold)
	after := cold.View()
	if gotV, wantV := after.Relation("rel").Version, before.Relation("rel").Version+1; gotV != wantV {
		t.Fatalf("swap published version %d, want %d", gotV, wantV)
	}
	if after.Relation("rel").Tree.NumPoints() != 1200 {
		t.Fatalf("swap serves %d points, want 1200", after.Relation("rel").Tree.NumPoints())
	}
	assertSnapshotMatchesOracle(t, after, "rel", "aux", cold.Options())
	assertSnapshotMatchesOracle(t, before, "rel", "aux", cold.Options())
	if got, err := before.Relation("rel").Staircase.EstimateSelect(oracleProbes[0], 5); err != nil || got != beforeEst {
		t.Fatalf("pre-swap view changed its answer: %v,%v, was %v", got, err, beforeEst)
	}

	coldEst, err := after.Relation("rel").Staircase.EstimateSelect(oracleProbes[1], 33)
	if err != nil {
		t.Fatal(err)
	}
	{
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := cold.Close(ctx)
		cancel()
		if err != nil {
			t.Fatalf("cold Close: %v", err)
		}
	}

	// Warm restart: catalogs come from the cache, yet every estimate must
	// still equal the oracle, and equal the cold store bit for bit.
	warm := newTestStore(t, opt)
	waitReady(t, warm)
	if n := warm.CatalogBuilds(); n != 0 {
		t.Fatalf("warm restart constructed %d catalogs, want 0", n)
	}
	wv := warm.View()
	assertSnapshotMatchesOracle(t, wv, "rel", "aux", warm.Options())
	if got, err := wv.Relation("rel").Staircase.EstimateSelect(oracleProbes[1], 33); err != nil || got != coldEst {
		t.Fatalf("warm estimate %v,%v != cold %v", got, err, coldEst)
	}
}

// TestBatchDuringHotSwapMatchesPublishedVersion runs batch estimation
// concurrently with hot swaps between two datasets and asserts every batch
// response is exactly the answer vector of one published snapshot — never
// a blend of versions — and that each reader observes monotonically
// non-decreasing versions.
func TestBatchDuringHotSwapMatchesPublishedVersion(t *testing.T) {
	opt := testOptions(t)
	s := newTestStore(t, opt)

	ptsA, ptsB := gridPoints(400, 11), gridPoints(600, 12)
	queries := make([]core.SelectQuery, 0, len(oracleProbes)*3)
	for i, q := range oracleProbes {
		for _, k := range []int{1 + i, 20, opt.MaxK + 5} {
			queries = append(queries, core.SelectQuery{Point: q, K: k})
		}
	}

	// Publish each dataset once to record its expected answer vector; the
	// build is deterministic, so any later republication of the same points
	// must serve exactly these answers. Each vector is oracle-verified.
	expected := map[int][]core.SelectResult{} // keyed by NumPoints
	for _, pts := range [][]geom.Point{ptsA, ptsB} {
		if _, err := s.Register("rel", pts); err != nil {
			t.Fatalf("Register: %v", err)
		}
		waitReady(t, s, "rel")
		snap := s.View().Relation("rel")
		if snap.Tree.NumPoints() != len(pts) {
			t.Fatalf("published %d points, want %d", snap.Tree.NumPoints(), len(pts))
		}
		vec := make([]core.SelectResult, len(queries))
		for i, q := range queries {
			blocks, err := snap.Staircase.EstimateSelect(q.Point, q.K)
			vec[i] = core.SelectResult{Blocks: blocks, Err: err}
			want, wantErr := oracle.StaircaseEstimate(snap.Tree, oracle.ModeCenterCorners, q.Point, q.K, opt.MaxK,
				func(p geom.Point, k int) (float64, error) { return oracle.DensityEstimate(snap.Count, p, k) })
			if err != nil || wantErr != nil || blocks != want {
				t.Fatalf("expected vector disagrees with oracle at %v k=%d: %v,%v vs %v,%v",
					q.Point, q.K, blocks, err, want, wantErr)
			}
		}
		expected[len(pts)] = vec
	}

	var done atomic.Bool
	var wg sync.WaitGroup
	var failed atomic.Bool
	fail := func(format string, args ...any) {
		if failed.CompareAndSwap(false, true) {
			t.Errorf(format, args...)
		}
	}
	const readers = 4
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastVersion := uint64(0)
			for !done.Load() {
				v := s.View()
				snap := v.Relation("rel")
				if snap == nil {
					fail("reader observed a view with rel missing")
					return
				}
				if snap.Version < lastVersion {
					fail("reader observed version %d after %d", snap.Version, lastVersion)
					return
				}
				lastVersion = snap.Version
				want, ok := expected[snap.Tree.NumPoints()]
				if !ok {
					fail("reader observed snapshot with %d points, not a registered dataset", snap.Tree.NumPoints())
					return
				}
				got := core.EstimateSelectBatch(snap.Staircase, queries, 2)
				for i := range got {
					if got[i].Blocks != want[i].Blocks || (got[i].Err == nil) != (want[i].Err == nil) {
						fail("batch answer %d of v%d (%d points) = %+v, want %+v",
							i, snap.Version, snap.Tree.NumPoints(), got[i], want[i])
						return
					}
				}
			}
		}()
	}
	// Writer: keep hot-swapping between the two datasets under the readers.
	for swap := 0; swap < 10; swap++ {
		pts := ptsA
		if swap%2 == 0 {
			pts = ptsB
		}
		if _, err := s.Register("rel", pts); err != nil {
			t.Fatalf("Register (swap %d): %v", swap, err)
		}
		waitReady(t, s, "rel")
	}
	done.Store(true)
	wg.Wait()
}
