package store

import (
	"context"
	"io"
	"log"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"knncost/internal/engine"
	"knncost/internal/geom"
	"knncost/internal/quadtree"
)

func testOptions(t *testing.T) Options {
	t.Helper()
	return Options{
		MaxK:          64,
		SampleSize:    30,
		GridSize:      4,
		IndexCapacity: 32,
		Logger:        log.New(io.Discard, "", 0),
	}
}

func newTestStore(t *testing.T, opt Options) *Store {
	t.Helper()
	s, err := New(opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return s
}

// gridPoints returns n deterministic, distinct points: a jittered lattice in
// [0,100)². Deterministic data is what makes warm-restart fingerprints and
// byte-identity assertions possible.
func gridPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: float64(i%100) + rng.Float64()*0.9,
			Y: float64(i/100%100) + rng.Float64()*0.9,
		}
	}
	return pts
}

func waitReady(t *testing.T, s *Store, names ...string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.WaitReady(ctx, names...); err != nil {
		t.Fatalf("WaitReady(%v): %v", names, err)
	}
}

func TestRegisterPublishesConsistentView(t *testing.T) {
	s := newTestStore(t, testOptions(t))
	st, err := s.Register("alpha", gridPoints(2000, 1))
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if st.State != "queued" {
		t.Fatalf("fresh registration state = %q, want queued", st.State)
	}
	if s.View().Relation("alpha") != nil {
		t.Fatal("relation visible in view before its build published")
	}
	waitReady(t, s, "alpha")

	v := s.View()
	snap := v.Relation("alpha")
	if snap == nil {
		t.Fatal("ready relation missing from view")
	}
	if snap.Version != 1 {
		t.Fatalf("first publication version = %d, want 1", snap.Version)
	}
	if snap.Tree.NumPoints() != 2000 || snap.Count.NumPoints() != 2000 {
		t.Fatalf("snapshot indexes disagree: tree %d, count %d points",
			snap.Tree.NumPoints(), snap.Count.NumPoints())
	}
	if snap.Staircase == nil || snap.Density == nil || snap.VGrid == nil {
		t.Fatal("snapshot missing estimators")
	}
	if _, err := snap.Staircase.EstimateSelect(geom.Point{X: 50, Y: 50}, 10); err != nil {
		t.Fatalf("EstimateSelect on published snapshot: %v", err)
	}
	if snap.StaircaseBytes <= 0 || snap.VGridBytes <= 0 {
		t.Fatalf("storage sizes not computed: staircase %d, vgrid %d",
			snap.StaircaseBytes, snap.VGridBytes)
	}

	// A second relation makes both ordered pair merges appear in one swap.
	if _, err := s.Register("beta", gridPoints(1500, 2)); err != nil {
		t.Fatalf("Register beta: %v", err)
	}
	waitReady(t, s, "alpha", "beta")
	v = s.View()
	for _, pair := range [][2]string{{"alpha", "beta"}, {"beta", "alpha"}} {
		m := v.Merge(pair[0], pair[1])
		if m == nil {
			t.Fatalf("merge %v missing from view", pair)
		}
		if _, err := m.EstimateJoin(10); err != nil {
			t.Fatalf("EstimateJoin(%v): %v", pair, err)
		}
	}
	if got := v.Names(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("Names() = %v, want [alpha beta]", got)
	}
}

func TestRegisterIndexBypassesCache(t *testing.T) {
	opt := testOptions(t)
	opt.CacheDir = t.TempDir()
	s := newTestStore(t, opt)
	pts := gridPoints(1200, 3)
	tree := quadtree.Build(pts, quadtree.Options{
		Capacity: 32,
		Bounds:   geom.NewRect(-1, -1, 101, 101),
	}).Index()
	if _, err := s.RegisterIndex("pre", tree); err != nil {
		t.Fatalf("RegisterIndex: %v", err)
	}
	waitReady(t, s, "pre")
	snap := s.View().Relation("pre")
	if snap.Tree != tree {
		t.Fatal("RegisterIndex did not use the caller's tree")
	}
	if snap.Fingerprint != "" {
		t.Fatalf("index-registered relation has fingerprint %q, want none", snap.Fingerprint)
	}
}

func TestRegisterValidation(t *testing.T) {
	s := newTestStore(t, testOptions(t))
	bad := []struct {
		name string
		pts  []geom.Point
	}{
		{"", gridPoints(10, 1)},
		{"has space", gridPoints(10, 1)},
		{"has/slash", gridPoints(10, 1)},
		{"ok", nil},
		{"ok", []geom.Point{{X: 1, Y: 1}, {X: 2, Y: nan()}}},
	}
	for _, tc := range bad {
		if _, err := s.Register(tc.name, tc.pts); err == nil {
			t.Errorf("Register(%q, %d pts) accepted, want error", tc.name, len(tc.pts))
		}
	}
}

func nan() float64 { var z float64; return z / z }

func TestDropRemovesRelation(t *testing.T) {
	s := newTestStore(t, testOptions(t))
	for _, name := range []string{"a", "b"} {
		if _, err := s.Register(name, gridPoints(1000, 7)); err != nil {
			t.Fatalf("Register %s: %v", name, err)
		}
	}
	waitReady(t, s)
	if !s.Drop("a") {
		t.Fatal("Drop(a) reported not found")
	}
	if s.Drop("a") {
		t.Fatal("second Drop(a) reported found")
	}
	v := s.View()
	if v.Relation("a") != nil {
		t.Fatal("dropped relation still in view")
	}
	if v.Merge("a", "b") != nil || v.Merge("b", "a") != nil {
		t.Fatal("merges involving dropped relation still in view")
	}
	if _, ok := s.Status("a"); ok {
		t.Fatal("Status(a) still found after drop")
	}
	if v.Relation("b") == nil {
		t.Fatal("surviving relation lost by drop republish")
	}
}

func TestSupersedeServesLatestData(t *testing.T) {
	s := newTestStore(t, testOptions(t))
	// Re-register the same name with different sizes back-to-back; whichever
	// intermediate builds get superseded, the store must converge on the last.
	for i := 0; i < 5; i++ {
		if _, err := s.Register("r", gridPoints(800+i, int64(i))); err != nil {
			t.Fatalf("Register #%d: %v", i, err)
		}
	}
	waitReady(t, s, "r")
	snap := s.View().Relation("r")
	if snap.Tree.NumPoints() != 804 {
		t.Fatalf("converged on %d points, want 804 (the last registration)", snap.Tree.NumPoints())
	}
}

func TestCloseRejectsNewRegistrations(t *testing.T) {
	s, err := New(testOptions(t))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := s.Register("late", gridPoints(10, 1)); err != ErrClosed {
		t.Fatalf("Register after Close = %v, want ErrClosed", err)
	}
}

// TestListingConsistentUnderChurn races listings against registration and
// drop. Every listing must be a coherent snapshot: sorted, no duplicate
// names, and every ready row backed by a published snapshot in the same view.
func TestListingConsistentUnderChurn(t *testing.T) {
	s := newTestStore(t, testOptions(t))
	if _, err := s.Register("anchor", gridPoints(900, 1)); err != nil {
		t.Fatal(err)
	}
	waitReady(t, s, "anchor")

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := []string{"churn-a", "churn-b"}[i%2]
			if _, err := s.Register(name, gridPoints(400+i%3, int64(i))); err != nil && err != ErrQueueFull {
				t.Errorf("churn Register: %v", err)
				return
			}
			time.Sleep(200 * time.Microsecond)
			if i%4 == 3 {
				s.Drop(name)
			}
		}
	}()

	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 3000; i++ {
				v := s.View()
				list := v.List()
				for j, st := range list {
					if j > 0 && list[j-1].Name >= st.Name {
						t.Errorf("listing not strictly sorted: %q >= %q", list[j-1].Name, st.Name)
						return
					}
					if st.State == "ready" && v.Relation(st.Name) == nil {
						t.Errorf("listing says %q ready but view has no snapshot", st.Name)
						return
					}
				}
				// anchor is never dropped: every view must carry it.
				if v.Relation("anchor") == nil {
					t.Error("anchor relation missing from view")
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	churn.Wait()
}

// TestHotSwapNoMixedVersions is the ISSUE's hot-swap race: estimate traffic
// hammers the store while a relation is re-registered and republished many
// times. Every request must succeed, and every observation must be internally
// consistent with exactly one version (point counts encode the version, so a
// torn read would show a count that disagrees with the snapshot's Version).
func TestHotSwapNoMixedVersions(t *testing.T) {
	const base = 600
	s := newTestStore(t, testOptions(t))
	if _, err := s.Register("peer", gridPoints(500, 42)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("hot", gridPoints(base+1, 1)); err != nil {
		t.Fatal(err)
	}
	waitReady(t, s, "hot", "peer")

	const rebuilds = 15
	var published atomic.Uint64
	published.Store(1)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	var requests, failures atomic.Int64
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			q := geom.Point{X: float64(10 + g*20), Y: 50}
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := s.View()
				snap := v.Relation("hot")
				if snap == nil {
					failures.Add(1)
					t.Error("hot relation disappeared from view during rebuilds")
					return
				}
				requests.Add(1)
				// Version consistency: the snapshot's point count must encode
				// exactly its version. A mixed observation (index from one
				// version, metadata from another) breaks this equality.
				if want := base + int(snap.Version); snap.Tree.NumPoints() != want {
					failures.Add(1)
					t.Errorf("version %d snapshot has %d points, want %d",
						snap.Version, snap.Tree.NumPoints(), want)
					return
				}
				if snap.Version > published.Load()+1 {
					failures.Add(1)
					t.Errorf("observed version %d before it was registered", snap.Version)
					return
				}
				if _, err := snap.Staircase.EstimateSelect(q, 5+g); err != nil {
					failures.Add(1)
					t.Errorf("EstimateSelect during hot swap: %v", err)
					return
				}
				// Schema consistency: any view holding both relations must
				// hold both ordered merges.
				if v.Relation("peer") != nil {
					if v.Merge("hot", "peer") == nil || v.Merge("peer", "hot") == nil {
						failures.Add(1)
						t.Error("view holds both relations but misses a pair merge")
						return
					}
				}
			}
		}(g)
	}

	for i := 2; i <= rebuilds; i++ {
		published.Store(uint64(i))
		if _, err := s.Register("hot", gridPoints(base+i, int64(i))); err != nil {
			t.Fatalf("rebuild %d: %v", i, err)
		}
		waitReady(t, s, "hot")
	}
	close(stop)
	readers.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d of %d requests failed during hot swaps", failures.Load(), requests.Load())
	}
	if requests.Load() == 0 {
		t.Fatal("race readers made no requests")
	}
	snap := s.View().Relation("hot")
	if snap.Version != rebuilds {
		t.Fatalf("final version = %d, want %d", snap.Version, rebuilds)
	}
}

// TestWarmRestart is the cache contract: a second store over the same cache
// directory must reach ready without constructing a single catalog and serve
// byte-identical estimates.
func TestWarmRestart(t *testing.T) {
	dir := t.TempDir()
	opt := testOptions(t)
	opt.CacheDir = dir

	type probe struct {
		q geom.Point
		k int
	}
	probes := []probe{{geom.Point{X: 10, Y: 10}, 1}, {geom.Point{X: 55, Y: 40}, 17}, {geom.Point{X: 90, Y: 5}, 60}}
	joinKs := []int{1, 8, 50}

	cold, err := New(opt)
	if err != nil {
		t.Fatalf("New(cold): %v", err)
	}
	for _, name := range []string{"w1", "w2"} {
		if _, err := cold.Register(name, gridPoints(1500, int64(len(name)))); err != nil {
			t.Fatalf("Register %s: %v", name, err)
		}
	}
	{
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err := cold.WaitReady(ctx)
		cancel()
		if err != nil {
			t.Fatalf("cold WaitReady: %v", err)
		}
	}
	if cold.CatalogBuilds() == 0 {
		t.Fatal("cold store built no catalogs — cache test is vacuous")
	}
	coldSelect := map[probe]float64{}
	v := cold.View()
	for _, p := range probes {
		est, err := v.Relation("w1").Staircase.EstimateSelect(p.q, p.k)
		if err != nil {
			t.Fatalf("cold EstimateSelect: %v", err)
		}
		coldSelect[p] = est
	}
	coldJoin := map[int]float64{}
	for _, k := range joinKs {
		est, err := v.Merge("w1", "w2").EstimateJoin(k)
		if err != nil {
			t.Fatalf("cold EstimateJoin: %v", err)
		}
		coldJoin[k] = est
	}
	{
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := cold.Close(ctx)
		cancel()
		if err != nil {
			t.Fatalf("cold Close: %v", err)
		}
	}

	warm := newTestStore(t, opt)
	waitReady(t, warm) // registry restore re-registered w1 and w2
	if got := warm.View().Names(); len(got) != 2 || got[0] != "w1" || got[1] != "w2" {
		t.Fatalf("warm store restored %v, want [w1 w2]", got)
	}
	if n := warm.CatalogBuilds(); n != 0 {
		t.Fatalf("warm restart constructed %d catalogs, want 0 (all from cache)", n)
	}
	if warm.CacheHits() == 0 {
		t.Fatal("warm restart recorded no cache hits")
	}
	wv := warm.View()
	for _, p := range probes {
		est, err := wv.Relation("w1").Staircase.EstimateSelect(p.q, p.k)
		if err != nil {
			t.Fatalf("warm EstimateSelect: %v", err)
		}
		if est != coldSelect[p] {
			t.Errorf("EstimateSelect(%v, %d): warm %v != cold %v", p.q, p.k, est, coldSelect[p])
		}
	}
	for _, k := range joinKs {
		est, err := wv.Merge("w1", "w2").EstimateJoin(k)
		if err != nil {
			t.Fatalf("warm EstimateJoin: %v", err)
		}
		if est != coldJoin[k] {
			t.Errorf("EstimateJoin(%d): warm %v != cold %v", k, est, coldJoin[k])
		}
	}
}

// TestCorruptCacheFallsBackToRebuild: a hostile or truncated cache must never
// surface an error — it is a miss, and the store rebuilds.
func TestCorruptCacheFallsBackToRebuild(t *testing.T) {
	dir := t.TempDir()
	opt := testOptions(t)
	opt.CacheDir = dir
	pts := gridPoints(1000, 5)

	first := newTestStore(t, opt)
	if _, err := first.Register("c", pts); err != nil {
		t.Fatal(err)
	}
	waitReady(t, first, "c")
	fp := first.View().Relation("c").Fingerprint
	if fp == "" {
		t.Fatal("point-registered relation has no fingerprint")
	}
	{
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		first.Close(ctx)
		cancel()
	}

	// Truncate the staircase artifact to half its size.
	c := &diskCache{dir: dir}
	path := c.artifactPath(fp, engine.TechStaircaseCC)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading cached staircase: %v", err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatalf("truncating cached staircase: %v", err)
	}

	warm := newTestStore(t, opt)
	waitReady(t, warm, "c")
	if warm.CatalogBuilds() == 0 {
		t.Fatal("store served a truncated cache entry instead of rebuilding")
	}
	if _, err := warm.View().Relation("c").Staircase.EstimateSelect(geom.Point{X: 50, Y: 50}, 10); err != nil {
		t.Fatalf("estimate after corrupt-cache rebuild: %v", err)
	}
}

// TestSnapshotResolutionZeroAllocs pins the hot-path cost of going through
// the store: one atomic load plus map lookups, zero heap allocations.
func TestSnapshotResolutionZeroAllocs(t *testing.T) {
	s := newTestStore(t, testOptions(t))
	for _, name := range []string{"za", "zb"} {
		if _, err := s.Register(name, gridPoints(800, 9)); err != nil {
			t.Fatal(err)
		}
	}
	waitReady(t, s)
	var sink *Snapshot
	allocs := testing.AllocsPerRun(1000, func() {
		v := s.View()
		sink = v.Relation("za")
		if v.Merge("za", "zb") == nil {
			t.Fatal("merge missing")
		}
	})
	if sink == nil {
		t.Fatal("snapshot missing")
	}
	if allocs != 0 {
		t.Fatalf("snapshot resolution allocates %.1f per op, want 0", allocs)
	}
}
