package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"knncost/internal/aknn"
	"knncost/internal/core"
	"knncost/internal/engine"
	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/mmapfile"
)

// The disk cache gives the store warm restarts: catalogs are persisted in
// the internal/core binary formats, content-addressed by a fingerprint of
// the point data and the build options, so a restarted process loads in
// milliseconds what a cold one computes in seconds. Layout under the cache
// directory:
//
//	registry.json                        name → fingerprint + resolution of live relations
//	cat/<fp>/manifest.json               versioned build-parameter manifest
//	cat/<fp>/points.bin                  the relation's points (rebuilds the index)
//	cat/<fp>/staircase-{cc,c,cq}.bin     core.Staircase (KNCSMAP mapped format;
//	                                     one file, named by the resolution's mode)
//	cat/<fp>/virtual-grid.bin            core.VirtualGrid (KNVGMAP mapped format)
//	cat/<fp>/aknn-bounds.bin             aknn.Summary (KNAB format)
//	merge/<fpOuter>-<fpInner>-catalog-merge.bin  core.CatalogMerge (KNCMMAP mapped format)
//
// Per-relation artifact files are named after the engine technique that
// produced them (see internal/engine), so adding a cached technique is a
// new file, never a layout change. The staircase and grid artifacts use the
// aligned mapped encodings: the loaders mmap the file and borrow the
// catalogs zero-copy, pinning the mapping on the artifact. Techniques a
// resolution does not precompute have no file and build lazily in the
// snapshot's engine relation.
//
// Everything is written atomically (temp file + rename) and every load
// failure is treated as a cache miss, never an error: the worst corrupt
// cache can do is force a rebuild.

// cacheFormat is the manifest/registry format version; bump on any change
// to the layout or to what a fingerprint covers. Format 2 renamed the
// artifact files to technique names (staircase.bin → staircase-cc.bin,
// vgrid.bin → virtual-grid.bin) and keyed merge files by technique.
// Format 3 added the aknn-bounds summary artifact. Format 4 switched the
// staircase, virtual-grid and merge artifacts to the aligned mapped
// encodings (core.WriteMapped) served zero-copy from an mmap'd file, made
// every fingerprint per-relation-resolution, and named the staircase file
// after the mode the resolution selects. The version is part of every
// fingerprint, so entries of older formats all miss and rebuild complete —
// a format bump costs one rebuild, never an error.
const cacheFormat = 4

// manifest records the parameters a cached relation was built with. A
// manifest that does not match the relation's resolution is a miss (the
// fingerprint covers the same fields, so in practice mismatch means a
// hand-edited cache).
type manifest struct {
	Format       int `json:"format"`
	NumPoints    int `json:"num_points"`
	NumBlocks    int `json:"num_blocks"`
	MaxK         int `json:"max_k"`
	Corners      int `json:"corners"`
	SampleSize   int `json:"sample_size"`
	GridSize     int `json:"grid_size"`
	AknnCapacity int `json:"aknn_capacity"`
	Capacity     int `json:"capacity"`
}

// registryEntry names one live relation, its cached fingerprint, and its
// resolutions: Resolution is the effective (possibly tuner-coarsened)
// resolution the fingerprint was built at — a restart must recompute the
// identical fingerprint to warm-load — and Declared is what the user asked
// for, so the tuner can grow the relation back after a restart.
type registryEntry struct {
	Name        string          `json:"name"`
	Fingerprint string          `json:"fingerprint"`
	Resolution  core.Resolution `json:"resolution"`
	Declared    core.Resolution `json:"declared"`
}

type registryFile struct {
	Format    int             `json:"format"`
	Relations []registryEntry `json:"relations"`
}

// diskCache serializes registry writes internally; catalog files are
// content-addressed and idempotent, so concurrent workers writing the same
// fingerprint converge on identical bytes.
type diskCache struct {
	dir          string
	registryName string
	mu           sync.Mutex // guards registry read-modify-write
}

// openDiskCache opens (creating if needed) the cache at dir. scope selects
// the registry file: several stores can share one content-addressed cache —
// that sharing is what turns a shard handoff into a warm restore — but each
// must restore only its own relations, so each scope gets its own registry.
func openDiskCache(dir, scope string) (*diskCache, error) {
	for _, sub := range []string{"cat", "merge"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, err
		}
	}
	name := "registry.json"
	if scope != "" {
		for _, r := range scope {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
				r == '_', r == '-', r == '.':
			default:
				return nil, fmt.Errorf("registry scope %q contains %q (allowed: letters, digits, '_', '-', '.')", scope, r)
			}
		}
		name = "registry-" + scope + ".json"
	}
	return &diskCache{dir: dir, registryName: name}, nil
}

// fingerprint hashes the point data together with every build parameter
// that shapes the catalogs — including the relation's resolution, so the
// same points built at two resolutions are two independent cache entries.
// Two relations with the same fingerprint produce bit-identical catalogs;
// any change to points, resolution or options changes it.
func (s *Store) fingerprint(pts []geom.Point, res core.Resolution) string {
	res = res.Canon()
	h := sha256.New()
	var hdr [128]byte
	n := binary.PutVarint(hdr[:], int64(cacheFormat))
	for _, v := range []int{
		res.MaxK, res.Corners, res.GridSize, res.AknnCapacity,
		s.opt.SampleSize, s.opt.IndexCapacity, len(pts),
	} {
		n += binary.PutVarint(hdr[n:], int64(v))
	}
	h.Write(hdr[:n])
	for _, f := range []float64{s.opt.Bounds.Min.X, s.opt.Bounds.Min.Y, s.opt.Bounds.Max.X, s.opt.Bounds.Max.Y} {
		binary.LittleEndian.PutUint64(hdr[:8], math.Float64bits(f))
		h.Write(hdr[:8])
	}
	// Hash points in 4 KiB batches; one Write per point would dominate.
	buf := make([]byte, 0, 4096)
	for _, p := range pts {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.X))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Y))
		if len(buf) >= 4096-16 {
			h.Write(buf)
			buf = buf[:0]
		}
	}
	h.Write(buf)
	return hex.EncodeToString(h.Sum(nil))
}

func shortFP(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}

func (c *diskCache) catDir(fp string) string { return filepath.Join(c.dir, "cat", fp) }

// artifactPath is the per-technique artifact file of one cached relation.
func (c *diskCache) artifactPath(fp, technique string) string {
	return filepath.Join(c.catDir(fp), technique+".bin")
}

func (c *diskCache) mergePath(fpOuter, fpInner string) string {
	return filepath.Join(c.dir, "merge", fpOuter+"-"+fpInner+"-"+engine.TechCatalogMerge+".bin")
}

// writeAtomic writes data to path via a temp file + rename, so readers
// never observe a partial file and a crash never corrupts an entry.
func writeAtomic(path string, write func(f *os.File) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// --- relation artifacts ----------------------------------------------------

func (c *diskCache) loadManifest(fp string) (manifest, bool) {
	data, err := os.ReadFile(filepath.Join(c.catDir(fp), "manifest.json"))
	if err != nil {
		return manifest{}, false
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return manifest{}, false
	}
	return m, true
}

// staircaseFile returns the staircase artifact file stem for the mode the
// resolution selects. The quadrant mode has no registered technique name;
// its stem follows the same convention.
func staircaseFile(res core.Resolution) string {
	switch res.StaircaseMode() {
	case core.ModeCenterOnly:
		return engine.TechStaircaseC
	case core.ModeCenterQuadrant:
		return "staircase-cq"
	default:
		return engine.TechStaircaseCC
	}
}

// loadRelation loads the staircase, virtual grid, and aknn summary for fp
// against the given (freshly rebuilt) data index. The staircase and grid
// files are mmap'd and their catalogs borrowed in place — the mapping is
// pinned on the artifact, so it stays valid as long as the artifact is
// reachable and is unmapped by its finalizer afterwards. The aknn summary
// is tiny and heap-decodes as before.
func (c *diskCache) loadRelation(fp string, tree *index.Tree, opt core.StaircaseOptions, res core.Resolution) (*core.Staircase, *core.VirtualGrid, *aknn.Summary, error) {
	sm, err := mmapfile.Open(c.artifactPath(fp, staircaseFile(res)))
	if err != nil {
		return nil, nil, nil, err
	}
	stair, err := core.LoadStaircaseMapped(tree, sm.Data(), opt)
	if err != nil {
		sm.Close()
		return nil, nil, nil, fmt.Errorf("staircase: %w", err)
	}
	stair.Pin(sm)
	vm, err := mmapfile.Open(c.artifactPath(fp, engine.TechVirtualGrid))
	if err != nil {
		return nil, nil, nil, err
	}
	vg, err := core.LoadVirtualGridMapped(vm.Data())
	if err != nil {
		vm.Close()
		return nil, nil, nil, fmt.Errorf("virtual grid: %w", err)
	}
	vg.Pin(vm)
	af, err := os.Open(c.artifactPath(fp, engine.TechAknnBounds))
	if err != nil {
		return nil, nil, nil, err
	}
	defer af.Close()
	sum, err := aknn.LoadSummary(af)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("aknn summary: %w", err)
	}
	return stair, vg, sum, nil
}

// storeRelation persists every artifact of one relation build. The manifest
// is written last: its presence marks the entry complete.
func (c *diskCache) storeRelation(fp string, m manifest, pts []geom.Point, stair *core.Staircase, vg *core.VirtualGrid, sum *aknn.Summary, res core.Resolution) error {
	dir := c.catDir(fp)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeAtomic(filepath.Join(dir, "points.bin"), func(f *os.File) error {
		return writePoints(f, pts)
	}); err != nil {
		return fmt.Errorf("points: %w", err)
	}
	if err := writeAtomic(c.artifactPath(fp, staircaseFile(res)), func(f *os.File) error {
		_, err := stair.WriteMapped(f)
		return err
	}); err != nil {
		return fmt.Errorf("staircase: %w", err)
	}
	if err := writeAtomic(c.artifactPath(fp, engine.TechVirtualGrid), func(f *os.File) error {
		_, err := vg.WriteMapped(f)
		return err
	}); err != nil {
		return fmt.Errorf("virtual grid: %w", err)
	}
	if err := writeAtomic(c.artifactPath(fp, engine.TechAknnBounds), func(f *os.File) error {
		_, err := sum.WriteTo(f)
		return err
	}); err != nil {
		return fmt.Errorf("aknn summary: %w", err)
	}
	if err := writeAtomic(filepath.Join(dir, "manifest.json"), func(f *os.File) error {
		return json.NewEncoder(f).Encode(m)
	}); err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	return nil
}

func (c *diskCache) loadMerge(fpOuter, fpInner string) (*core.CatalogMerge, error) {
	mf, err := mmapfile.Open(c.mergePath(fpOuter, fpInner))
	if err != nil {
		return nil, err
	}
	m, err := core.LoadCatalogMergeMapped(mf.Data())
	if err != nil {
		mf.Close()
		return nil, err
	}
	m.Pin(mf)
	return m, nil
}

func (c *diskCache) storeMerge(fpOuter, fpInner string, m *core.CatalogMerge) error {
	return writeAtomic(c.mergePath(fpOuter, fpInner), func(f *os.File) error {
		_, err := m.WriteMapped(f)
		return err
	})
}

// --- points file -----------------------------------------------------------

const pointsMagic = "KNPT\x01"

// maxCachedPoints bounds what loadPoints will allocate for a hostile or
// corrupt count field (64 MiB of points).
const maxCachedPoints = 4 << 20

func writePoints(f *os.File, pts []geom.Point) error {
	buf := make([]byte, 0, 1<<16)
	buf = append(buf, pointsMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(pts)))
	for _, p := range pts {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.X))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Y))
		if len(buf) >= 1<<16-16 {
			if _, err := f.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	_, err := f.Write(buf)
	return err
}

func (c *diskCache) loadPoints(fp string) ([]geom.Point, error) {
	data, err := os.ReadFile(filepath.Join(c.catDir(fp), "points.bin"))
	if err != nil {
		return nil, err
	}
	if len(data) < len(pointsMagic) || string(data[:len(pointsMagic)]) != pointsMagic {
		return nil, errors.New("points file: bad magic")
	}
	data = data[len(pointsMagic):]
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, errors.New("points file: truncated count")
	}
	data = data[sz:]
	if n > maxCachedPoints || uint64(len(data)) != 16*n {
		return nil, fmt.Errorf("points file: %d points does not match %d payload bytes", n, len(data))
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i].X = math.Float64frombits(binary.LittleEndian.Uint64(data[16*i:]))
		pts[i].Y = math.Float64frombits(binary.LittleEndian.Uint64(data[16*i+8:]))
	}
	return pts, nil
}

// --- registry --------------------------------------------------------------

func (c *diskCache) registryPath() string { return filepath.Join(c.dir, c.registryName) }

// registry returns the recorded live relations, sorted by name. A missing
// or corrupt registry is an empty one.
func (c *diskCache) registry() []registryEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readRegistryLocked()
}

func (c *diskCache) readRegistryLocked() []registryEntry {
	data, err := os.ReadFile(c.registryPath())
	if err != nil {
		return nil
	}
	var r registryFile
	if err := json.Unmarshal(data, &r); err != nil || r.Format != cacheFormat {
		return nil
	}
	sort.Slice(r.Relations, func(i, j int) bool { return r.Relations[i].Name < r.Relations[j].Name })
	return r.Relations
}

// remember records name → (fp, effective resolution, declared resolution)
// in the registry, replacing any previous entry for name.
func (c *diskCache) remember(name, fp string, res, declared core.Resolution) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	entries := c.readRegistryLocked()
	out := entries[:0]
	for _, e := range entries {
		if e.Name != name {
			out = append(out, e)
		}
	}
	out = append(out, registryEntry{Name: name, Fingerprint: fp, Resolution: res.Canon(), Declared: declared.Canon()})
	return c.writeRegistryLocked(out)
}

// forget removes name from the registry. Cached artifacts stay: the cache
// is content-addressed and re-registering the same data warm-loads.
func (c *diskCache) forget(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	entries := c.readRegistryLocked()
	out := entries[:0]
	changed := false
	for _, e := range entries {
		if e.Name == name {
			changed = true
			continue
		}
		out = append(out, e)
	}
	if !changed {
		return nil
	}
	return c.writeRegistryLocked(out)
}

func (c *diskCache) writeRegistryLocked(entries []registryEntry) error {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return writeAtomic(c.registryPath(), func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(registryFile{Format: cacheFormat, Relations: entries})
	})
}
