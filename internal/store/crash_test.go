package store

// Crash-injection harness for the streaming-ingest path. The store's
// crashHook fires at every durability-critical WAL operation (frame
// half-written, frame complete, fsync, rotate, trim). At each firing the
// harness copies the whole cache directory — WAL, artifact store, registry —
// exactly as it exists at that instant. Each copy is then recovered into a
// fresh store, which must come up serving SOME mutation prefix of the
// applied history, bit-for-bit equal to a from-scratch build of that
// prefix. File copies over-approximate what survives a real crash (they
// read through the page cache), but the torn-write case is covered by the
// mid-frame hook and lost-fsync reordering by FuzzReplayWAL.

import (
	"context"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"knncost/internal/geom"
	"knncost/internal/wal"
)

type crashCapture struct {
	dir string
	op  string
}

// copyTree snapshots src into dst, skipping in-flight temp files and
// tolerating files that vanish mid-walk (concurrent renames).
func copyTree(src, dst string) error {
	return filepath.WalkDir(src, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if strings.HasPrefix(filepath.Base(p), ".tmp-") {
			return nil
		}
		rel, rerr := filepath.Rel(src, p)
		if rerr != nil {
			return rerr
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, rerr := os.ReadFile(p)
		if rerr != nil {
			return nil
		}
		return os.WriteFile(target, data, 0o644)
	})
}

func TestCrashInjectionRecoversAndConverges(t *testing.T) {
	root := t.TempDir()
	cacheDir := filepath.Join(root, "cache")
	capRoot := filepath.Join(root, "captures")
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		t.Fatal(err)
	}

	var capMu sync.Mutex
	var caps []crashCapture
	hook := func(op string) {
		capMu.Lock()
		defer capMu.Unlock()
		dst := filepath.Join(capRoot, fmt.Sprintf("%03d-%s", len(caps), op))
		if err := copyTree(cacheDir, dst); err != nil {
			t.Errorf("capture at %s: %v", op, err)
			return
		}
		caps = append(caps, crashCapture{dir: dst, op: op})
	}

	opt := testOptions(t)
	opt.CacheDir = cacheDir
	opt.CompactThreshold = 30 // compactions (and their checkpoints) interleave
	opt.CompactInterval = -1
	opt.crashHook = hook
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	base := gridPoints(150, 3)
	if _, err := s.Register("live", base); err != nil {
		t.Fatal(err)
	}
	waitReady(t, s, "live")

	type op struct {
		kind wal.Kind
		pts  []geom.Point
	}
	var ops []op
	for i := 0; i < 18; i++ {
		if i%5 == 4 {
			ops = append(ops, op{kind: wal.KindDelete, pts: []geom.Point{base[i*7], base[i*7+1]}})
		} else {
			ops = append(ops, op{kind: wal.KindAppend, pts: gridPoints(4+i%9, int64(1000+i))})
		}
	}
	for i, o := range ops {
		var err error
		if o.kind == wal.KindAppend {
			_, err = s.Append("live", o.pts)
		} else {
			_, err = s.Delete("live", o.pts)
		}
		if err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
	}
	settle(t, s, "live")
	closeStore(t, s)

	// Every logical state the relation ever passed through.
	prefixes := make([][]geom.Point, len(ops)+1)
	prefixes[0] = base
	for j, o := range ops {
		prefixes[j+1] = applyMutations(prefixes[j], []mutation{{kind: o.kind, pts: o.pts}})
	}

	capMu.Lock()
	captured := append([]crashCapture{}, caps...)
	capMu.Unlock()
	if len(captured) < len(ops) {
		t.Fatalf("only %d captures for %d mutations; hook not firing", len(captured), len(ops))
	}

	// Recover a bounded sample of captures (each recovery compacts and may
	// rebuild catalogs; checking all of them would dominate the suite).
	stride := (len(captured) + 24) / 25
	refs := map[string]*Snapshot{} // from-scratch builds, keyed by fingerprint
	checked := 0
	for i := 0; i < len(captured); i += stride {
		cap := captured[i]
		ropt := testOptions(t)
		ropt.CacheDir = cap.dir
		ropt.CompactThreshold = 30
		ropt.CompactInterval = -1
		s2, err := New(ropt)
		if err != nil {
			t.Fatalf("capture %d (%s): recovery refused to open: %v", i, cap.op, err)
		}
		if _, known := s2.Status("live"); !known {
			// Crash before the first publish reached the registry: coming up
			// empty is a valid (if maximally conservative) recovery.
			closeStore(t, s2)
			continue
		}
		settle(t, s2, "live")
		got, err := s2.LogicalPoints("live")
		if err != nil {
			t.Fatalf("capture %d (%s): LogicalPoints: %v", i, cap.op, err)
		}
		match := -1
		for j, p := range prefixes {
			if samePoints(got, p) {
				match = j
				break
			}
		}
		if match < 0 {
			t.Fatalf("capture %d (%s): recovered %d points matching no mutation prefix", i, cap.op, len(got))
		}
		snap := s2.View().Relation("live")
		if snap == nil {
			t.Fatalf("capture %d (%s): settled without a snapshot", i, cap.op)
		}
		ref, ok := refs[snap.Fingerprint]
		if !ok {
			ref = fromScratch(t, got)
			refs[ref.Fingerprint] = ref
		}
		assertBitExact(t, snap, ref)
		closeStore(t, s2)
		checked++
	}
	if checked == 0 {
		t.Fatal("no capture recovered to a serving state; harness is vacuous")
	}
	t.Logf("captures=%d recovered=%d distinct states=%d", len(captured), checked, len(refs))
}

// TestCrashDuringDropNeverResurrects pins the drop protocol: the drop
// record is logged and fsynced BEFORE the registry forgets the relation,
// so a crash in the window between the two must finish the drop on
// replay, not resurrect the relation.
func TestCrashDuringDropNeverResurrects(t *testing.T) {
	root := t.TempDir()
	cacheDir := filepath.Join(root, "cache")
	capRoot := filepath.Join(root, "captures")
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		t.Fatal(err)
	}

	var armed atomic.Bool
	var capMu sync.Mutex
	var caps []crashCapture
	hook := func(op string) {
		if !armed.Load() {
			return
		}
		capMu.Lock()
		defer capMu.Unlock()
		dst := filepath.Join(capRoot, fmt.Sprintf("%03d-%s", len(caps), op))
		if err := copyTree(cacheDir, dst); err != nil {
			t.Errorf("capture at %s: %v", op, err)
			return
		}
		caps = append(caps, crashCapture{dir: dst, op: op})
	}

	opt := testOptions(t)
	opt.CacheDir = cacheDir
	opt.CompactInterval = -1
	opt.CompactThreshold = 1 << 20
	opt.crashHook = hook
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("doomed", gridPoints(120, 51)); err != nil {
		t.Fatal(err)
	}
	waitReady(t, s, "doomed")
	if _, err := s.Append("doomed", gridPoints(5, 52)); err != nil {
		t.Fatal(err)
	}
	armed.Store(true)
	if !s.Drop("doomed") {
		t.Fatal("Drop returned false")
	}
	armed.Store(false)
	closeStore(t, s)

	capMu.Lock()
	captured := append([]crashCapture{}, caps...)
	capMu.Unlock()
	var sawDurable bool
	for i, cap := range captured {
		ropt := testOptions(t)
		ropt.CacheDir = cap.dir
		ropt.CompactInterval = -1
		s2, err := New(ropt)
		if err != nil {
			t.Fatalf("capture %d (%s): %v", i, cap.op, err)
		}
		_, present := s2.Status("doomed")
		switch cap.op {
		case "append", "append-mid":
			// Crash before the drop record was complete: the drop never
			// happened, so the relation (and its pending delta) must survive.
			if !present {
				t.Fatalf("capture %d (%s): relation lost before drop was durable", i, cap.op)
			}
			waitReady(t, s2, "doomed")
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			if err := s2.WaitSettled(ctx, "doomed"); err != nil {
				t.Fatalf("capture %d (%s): settle: %v", i, cap.op, err)
			}
			cancel()
			if st, _ := s2.Status("doomed"); st.NumPoints != 125 {
				t.Fatalf("capture %d (%s): pending delta lost with the aborted drop: %+v", i, cap.op, st)
			}
		default: // fsync and later: the drop record is durable
			sawDurable = true
			if present {
				t.Fatalf("capture %d (%s): relation resurrected after durable drop record", i, cap.op)
			}
			// Replay must also repair the registry so the next restart is
			// clean even without the WAL.
			s3opt := testOptions(t)
			s3opt.CacheDir = cap.dir
			s3opt.CompactInterval = -1
			closeStore(t, s2)
			s2, err = New(s3opt)
			if err != nil {
				t.Fatalf("capture %d (%s): second recovery: %v", i, cap.op, err)
			}
			if _, again := s2.Status("doomed"); again {
				t.Fatalf("capture %d (%s): relation resurrected on second restart", i, cap.op)
			}
		}
		closeStore(t, s2)
	}
	if !sawDurable {
		t.Fatalf("no capture covered the durable-drop window; ops=%v", captured)
	}
}
