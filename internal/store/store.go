// Package store owns the full lifecycle of the relation catalogs the
// estimation service serves: registration, background catalog construction,
// atomic hot swap of rebuilt versions, dropping, and a warm-restart disk
// cache.
//
// The paper's deployment scenario is a long-running optimizer answering
// "thousands of queries per second"; at that rate the relation schema cannot
// be frozen at boot. The store makes relations dynamic without ever blocking
// the estimate hot path:
//
//   - Every relation is published as an immutable, versioned Snapshot
//     (data index, Count-Index, staircase, density, Virtual-Grid). Snapshots
//     never change after publication.
//   - All published snapshots — plus the per-ordered-pair Catalog-Merge
//     estimators and the listing metadata — live in a single immutable View
//     swapped in with one atomic pointer store (RCU, the same model an
//     inference server uses for hot model swaps). An in-flight estimate that
//     loaded a View keeps a fully consistent schema for its whole lifetime;
//     a rebuild, drop or registration never mutates anything a reader can
//     see. View resolution is one atomic load plus a map lookup and performs
//     zero heap allocations (a test pins this).
//   - Catalog construction runs on a bounded background worker pool. Builds
//     for the same relation are deduplicated: re-registering a queued
//     relation supersedes the queued build in place, and re-registering one
//     that is mid-build cancels the running build's context and schedules a
//     fresh one. Every build carries a status (queued → building →
//     ready | failed) observable per relation and in listings.
//   - With a cache directory configured, built catalogs are persisted in the
//     internal/core binary formats keyed by a fingerprint of the point data
//     and build options, next to a small versioned manifest and the points
//     themselves. A restarted store re-registers the cached relations and
//     loads their catalogs instead of rebuilding — warm restarts cost
//     index-rebuild milliseconds, not catalog-build seconds.
package store

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"knncost/internal/aknn"
	"knncost/internal/core"
	"knncost/internal/engine"
	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/quadtree"
	"knncost/internal/wal"
)

// State is the build status of a relation.
type State int32

const (
	// StateQueued means a build is waiting for a worker. A previously
	// published snapshot (if any) keeps serving meanwhile.
	StateQueued State = iota + 1
	// StateBuilding means a worker is constructing the catalogs.
	StateBuilding
	// StateReady means the latest registered version is published.
	StateReady
	// StateFailed means the latest build errored; Error carries the cause.
	// A previously published snapshot (if any) keeps serving.
	StateFailed
)

// String implements fmt.Stringer; the values are the wire strings of the
// service's status endpoints.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateBuilding:
		return "building"
	case StateReady:
		return "ready"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// Options configure a Store.
type Options struct {
	// MaxK is the largest catalog-maintained k. Zero means core.DefaultMaxK.
	MaxK int
	// SampleSize is the Catalog-Merge sample size. Zero means 200.
	SampleSize int
	// GridSize is the Virtual-Grid dimension. Zero means 10.
	GridSize int
	// IndexCapacity is the quadtree leaf capacity used when a relation is
	// registered from raw points. Zero means 256.
	IndexCapacity int
	// Bounds is the index bounds for point-registered relations. The zero
	// rectangle means "compute from the points".
	Bounds geom.Rect
	// Workers is the build-pool size. Zero means GOMAXPROCS.
	Workers int
	// QueueLen bounds pending build signals; registrations beyond it fail
	// with ErrQueueFull. Zero means 256.
	QueueLen int
	// CacheDir enables the warm-restart disk cache. Empty disables it.
	CacheDir string
	// RegistryScope names this store's slice of a shared cache directory.
	// Catalog artifacts are content-addressed and safely shared between
	// stores (that sharing is what makes a shard handoff a warm restore),
	// but the registry of live relations is per store: scope "a" restores
	// only what scope "a" registered. Empty means the unscoped
	// registry.json.
	RegistryScope string
	// CompactThreshold is the pending-delta point count at which a
	// relation's mutations are compacted into fresh artifacts. Zero means
	// 512.
	CompactThreshold int
	// CompactInterval bounds delta staleness: a background pass compacts
	// any relation with pending mutations this often. Zero means 2s;
	// negative disables the timer (compaction then happens only via the
	// threshold, Flush, or WaitSettled — useful in deterministic tests).
	CompactInterval time.Duration
	// WALSegmentBytes is the write-ahead-log segment rotation threshold.
	// Zero means 4 MiB. The WAL is enabled whenever CacheDir is set.
	WALSegmentBytes int
	// WALSyncInterval selects the mutation fsync policy: zero means group
	// commit (every mutation is fsynced before it is acknowledged,
	// batching concurrent mutators into one fsync); a positive value
	// trades a bounded loss window for throughput by fsyncing on a timer
	// instead.
	WALSyncInterval time.Duration
	// CatalogBudgetBytes is the space-budget auto-tuner's global target for
	// the summed artifact bytes of every published relation. While the
	// total exceeds it, the tuner rebuilds the coldest relations (by
	// estimate traffic) one resolution step coarser; with headroom it grows
	// tuned relations back toward their declared resolution. Zero (the
	// default) disables the tuner entirely.
	CatalogBudgetBytes int64
	// TunerInterval is the cadence of the background tuner pass. Zero
	// means 5s; negative disables the background loop (passes then happen
	// only via TunerTick — useful in deterministic tests).
	TunerInterval time.Duration
	// TunerQErrorTolerance bounds the estimate degradation a tuner shrink
	// may cause: after a coarsened rebuild publishes, the tuner probes its
	// q-error against ground-truth distance browsing and reverts the step
	// (and refuses to repeat it) when the worst probe exceeds this factor.
	// Zero means 2.0.
	TunerQErrorTolerance float64
	// Logger receives cache warnings and build logs. Nil means the standard
	// logger.
	Logger *log.Logger
	// crashHook, when set, is passed to the WAL as its OpHook: the
	// crash-injection tests snapshot the cache directory at every
	// durability-critical operation.
	crashHook func(op string)
}

func (o Options) withDefaults() Options {
	if o.MaxK == 0 {
		o.MaxK = core.DefaultMaxK
	}
	if o.SampleSize == 0 {
		o.SampleSize = 200
	}
	if o.GridSize == 0 {
		o.GridSize = 10
	}
	if o.IndexCapacity == 0 {
		o.IndexCapacity = 256
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 256
	}
	if o.CompactThreshold <= 0 {
		o.CompactThreshold = 512
	}
	if o.CompactInterval == 0 {
		o.CompactInterval = 2 * time.Second
	}
	if o.TunerInterval == 0 {
		o.TunerInterval = 5 * time.Second
	}
	if o.TunerQErrorTolerance == 0 {
		o.TunerQErrorTolerance = 2.0
	}
	return o
}

// resolveResolution maps a requested per-relation resolution to its
// canonical effective form: axes left zero inherit the store-wide options
// (so Register without a resolution behaves exactly as before), everything
// else canonicalizes per core.Resolution.
func (o Options) resolveResolution(r core.Resolution) core.Resolution {
	if r.MaxK == 0 {
		r.MaxK = o.MaxK
	}
	if r.GridSize == 0 {
		r.GridSize = o.GridSize
	}
	return r.Canon()
}

func (o Options) logger() *log.Logger {
	if o.Logger != nil {
		return o.Logger
	}
	return log.Default()
}

// Snapshot is one immutable published version of a relation: the data index
// and every per-relation estimator, built together from the same points.
// All fields are read-only after publication; sharing a Snapshot across any
// number of goroutines is safe.
type Snapshot struct {
	// Name is the relation name.
	Name string
	// Version counts publications of this relation, starting at 1.
	Version uint64
	// Fingerprint identifies the point data + build options; empty for
	// relations registered from a pre-built index (not cacheable).
	Fingerprint string
	// Points are the relation's points in registration order — the exact
	// input that produced this snapshot, served by the points endpoint so a
	// peer shard can re-register them and arrive at a bit-identical build
	// (same fingerprint, same tree, same catalogs). Nil for index-registered
	// relations, which have no reproducible point source.
	Points []geom.Point
	// Tree is the data index (points included).
	Tree *index.Tree
	// Count is the Count-Index derived from Tree.
	Count *index.Tree
	// Staircase is the paper's k-NN-Select estimator (§3).
	Staircase *core.Staircase
	// Density is the density-based baseline estimator.
	Density *core.DensityBased
	// VGrid is the Virtual-Grid join estimator built over Count (§4.3).
	VGrid *core.VirtualGrid
	// Aknn is the bounds-only AkNN join summary built over Count
	// (internal/aknn) — the inner-relation artifact of the aknn-bounds
	// technique.
	Aknn *aknn.Summary
	// Engine is the relation's engine.Relation, seeded at publication with
	// the artifacts above so that technique resolution by name serves the
	// exact same estimator objects. Techniques the store does not precompute
	// (e.g. staircase-c) build lazily inside Engine, once per snapshot.
	Engine *engine.Relation
	// Resolution is the canonical artifact resolution this snapshot was
	// built at — the declared resolution, or a coarser rung when the
	// space-budget tuner shrank the relation.
	Resolution core.Resolution
	// StaircaseBytes and VGridBytes are the serialized catalog sizes,
	// computed once at publication. AknnBytes is the aknn summary's;
	// ArtifactBytes is the total the tuner accounts against the budget
	// (staircase + virtual grid + aknn summary).
	StaircaseBytes int
	VGridBytes     int
	AknnBytes      int
	ArtifactBytes  int

	// hits is the estimate-traffic counter shared with the relation's
	// store entry across republishes; Touch increments it.
	hits *atomic.Int64
}

// Touch records one estimate served from this snapshot. The count is the
// tuner's per-relation traffic signal: hot relations keep (or regain)
// their declared resolution, cold ones are shrunk first when the store is
// over its catalog byte budget. Safe for concurrent use; a no-op on
// snapshots that predate the store (zero value) or tests that build
// snapshots by hand.
func (sn *Snapshot) Touch() {
	if sn.hits != nil {
		sn.hits.Add(1)
	}
}

// TouchN records n estimates served from this snapshot in one call (the
// batch endpoint's accounting).
func (sn *Snapshot) TouchN(n int) {
	if sn.hits != nil && n > 0 {
		sn.hits.Add(int64(n))
	}
}

// RelationStatus is the externally visible state of one relation, as served
// by listings and status endpoints. It is a value type copied out of the
// store, never a live reference.
type RelationStatus struct {
	Name    string `json:"name"`
	State   string `json:"state"`
	Version uint64 `json:"version"`
	Error   string `json:"error,omitempty"`
	// The remaining fields describe the published snapshot and are zero
	// until the first publication.
	NumPoints        int `json:"num_points"`
	NumBlocks        int `json:"num_blocks"`
	StaircaseBytes   int `json:"staircase_bytes"`
	VirtualGridBytes int `json:"virtual_grid_bytes"`
	AknnBytes        int `json:"aknn_bytes"`
	ArtifactBytes    int `json:"artifact_bytes"`
	// Resolution is the published snapshot's effective resolution;
	// DeclaredResolution is what registration asked for. They differ only
	// while the space-budget tuner holds the relation at a coarser rung.
	Resolution         core.Resolution `json:"resolution"`
	DeclaredResolution core.Resolution `json:"declared_resolution"`
	// Delta overlay depth: mutations acknowledged but not yet compacted
	// into the published snapshot. All zero when the relation is settled.
	DeltaOps    int   `json:"delta_ops,omitempty"`
	DeltaPoints int   `json:"delta_points,omitempty"`
	DeltaAgeMs  int64 `json:"delta_age_ms,omitempty"`
}

// View is an immutable snapshot of the whole store: every published
// relation, every per-ordered-pair Catalog-Merge, and the listing. A View
// loaded once stays internally consistent forever; later registrations,
// rebuilds and drops produce new Views without touching old ones.
type View struct {
	relations map[string]*Snapshot
	merges    map[[2]string]*core.CatalogMerge
	names     []string         // sorted names of published relations
	statuses  []RelationStatus // sorted listing incl. unpublished relations
}

var emptyView = &View{
	relations: map[string]*Snapshot{},
	merges:    map[[2]string]*core.CatalogMerge{},
}

// Relation returns the published snapshot for name, or nil. It performs no
// heap allocations.
func (v *View) Relation(name string) *Snapshot { return v.relations[name] }

// Merge returns the Catalog-Merge estimator for the ordered pair
// (outer, inner), or nil. Every ordered pair of relations published in the
// same View has an entry.
func (v *View) Merge(outer, inner string) *core.CatalogMerge {
	return v.merges[[2]string{outer, inner}]
}

// Names returns the sorted names of the published relations. The slice is
// shared; callers must not modify it.
func (v *View) Names() []string { return v.names }

// List returns the status of every relation known when the View was
// published (including queued, building and failed ones), sorted by name.
// The slice is shared; callers must not modify it.
func (v *View) List() []RelationStatus { return v.statuses }

// NumRelations returns the number of published relations.
func (v *View) NumRelations() int { return len(v.relations) }

// entry is the store's mutable bookkeeping for one relation, guarded by
// Store.mu. The published Snapshot itself is immutable; entry tracks which
// build generation is wanted, which is published, and the build status.
type entry struct {
	name string
	// gen counts registrations; a finished build publishes only if its
	// generation is still current (stale builds are discarded silently).
	gen uint64
	// state is the externally visible build status.
	state State
	err   string
	// pendingPts / pendingTree is the source of the wanted generation.
	pendingPts  []geom.Point
	pendingTree *index.Tree
	// snap is the currently published snapshot, nil before first publish.
	snap *Snapshot
	// cancel aborts the in-flight build when superseded or dropped.
	cancel context.CancelFunc

	// fromPoints marks relations whose wanted generation came from raw
	// points — the only kind the mutation API and points endpoint serve.
	fromPoints bool
	// res is the effective resolution of the wanted generation;
	// declaredRes is what registration asked for. They diverge only while
	// the space-budget tuner holds the relation tunerSteps rungs down the
	// coarsening ladder.
	res         core.Resolution
	declaredRes core.Resolution
	tunerSteps  int
	// tunerFloor caps tunerSteps: a shrink whose published q-error blew
	// the tolerance sets the floor one step back and is never repeated.
	tunerFloor int
	// tunerProbed is the snapshot version the q-error probe last checked,
	// so each published rebuild is probed at most once.
	tunerProbed uint64
	// hits counts estimates served from this relation's snapshots
	// (Snapshot.Touch); the tuner swaps it to zero every pass, making the
	// value per-pass traffic. Shared with every published snapshot.
	hits *atomic.Int64
	// pending is the delta overlay: durably logged mutations not yet
	// folded into the published snapshot, in LSN order.
	pending []mutation
	// ckptLSN is the mutation watermark the wanted generation folds in;
	// the publish step writes it into the WAL checkpoint and drops the
	// covered prefix of pending.
	ckptLSN uint64
	// isCompact marks the wanted generation as a delta compaction (for
	// the compaction counter; compactions also re-trigger on leftovers).
	isCompact bool
	// restoredFP is the registry fingerprint this entry was warm-restored
	// from; WAL checkpoints are effective on replay only if they match.
	restoredFP string
	// replayDropped is set while replay scans a KindDrop record; if no
	// later effective checkpoint revives the name, the drop is finished.
	replayDropped bool
	// durableCovered / rememberFailed track how much of the log the
	// registry has absorbed, pinning WAL trim when a registry write fails.
	durableCovered uint64
	rememberFailed bool
}

// ErrQueueFull is returned by Register when the build queue is saturated.
var ErrQueueFull = errors.New("store: build queue full")

// ErrClosed is returned by Register after Close.
var ErrClosed = errors.New("store: closed")

// Store is a concurrent, versioned relation store. The zero value is not
// usable; call New.
type Store struct {
	opt   Options
	cache *diskCache // nil without CacheDir
	wal   *wal.WAL   // nil without CacheDir

	view atomic.Pointer[View]

	mu      sync.Mutex
	entries map[string]*entry
	closed  bool
	seq     uint64 // mutation sequence when the WAL is disabled
	// publishHooks run under s.mu whenever a relation's published snapshot
	// changes (hot swap, compaction publish, drop); see AddPublishHook.
	publishHooks []func(relation string)

	jobs   chan string // build signals; one per Queued transition
	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelFunc

	stopCompact   chan struct{} // nil when the interval compactor is off
	compactorDone chan struct{}

	stopTuner chan struct{} // nil when the background tuner is off
	tunerDone chan struct{}

	// catalogBuilds counts catalogs actually constructed (staircase,
	// virtual grid, catalog-merge); warm restarts that load everything from
	// the disk cache leave it at zero — the soak smoke asserts exactly that.
	catalogBuilds atomic.Int64
	// cacheHits counts catalogs loaded from the disk cache instead of built.
	cacheHits atomic.Int64
	// walReplayed counts mutation records replayed from the WAL at startup;
	// walTruncated counts torn tails (and dropped follow-on segments)
	// repaired; compactions counts published delta compactions.
	walReplayed  atomic.Int64
	walTruncated atomic.Int64
	compactions  atomic.Int64

	// Tuner counters (see tuner.go): passes run, shrink/grow rebuilds
	// scheduled, q-error reverts, shrinks refused by a q-error floor, and
	// the artifact-byte total measured by the latest pass.
	tunerPasses  atomic.Int64
	tunerShrinks atomic.Int64
	tunerGrows   atomic.Int64
	tunerReverts atomic.Int64
	tunerBlocked atomic.Int64
	tunerBytes   atomic.Int64
}

// New creates a Store and starts its build workers. When CacheDir is set,
// the write-ahead log in <CacheDir>/wal[-scope] is replayed and relations
// recorded in the cache registry are re-registered immediately with their
// unflushed deltas pending (their builds resolve from the cache, so they
// become ready without any catalog construction, and leftover deltas
// compact right after the first publish).
func New(opt Options) (*Store, error) {
	opt = opt.withDefaults()
	s := &Store{
		opt:     opt,
		entries: map[string]*entry{},
		jobs:    make(chan string, opt.QueueLen),
	}
	s.view.Store(emptyView)
	s.ctx, s.cancel = context.WithCancel(context.Background())
	var replay wal.Replay
	if opt.CacheDir != "" {
		c, err := openDiskCache(opt.CacheDir, opt.RegistryScope)
		if err != nil {
			return nil, fmt.Errorf("store: opening cache: %w", err)
		}
		s.cache = c
		walDir := "wal"
		if opt.RegistryScope != "" {
			walDir = "wal-" + opt.RegistryScope
		}
		w, rep, err := wal.Open(wal.Options{
			Dir:          filepath.Join(opt.CacheDir, walDir),
			SegmentBytes: opt.WALSegmentBytes,
			SyncInterval: opt.WALSyncInterval,
			Logger:       opt.Logger,
			OpHook:       opt.crashHook,
		})
		if err != nil {
			return nil, fmt.Errorf("store: opening wal: %w", err)
		}
		s.wal = w
		replay = rep
		s.walTruncated.Store(int64(rep.TruncatedTails + rep.DroppedSegments))
		if rep.TruncatedTails > 0 || rep.DroppedSegments > 0 {
			s.opt.logger().Printf("store: wal repaired on replay: %d torn tails truncated, %d segments dropped", rep.TruncatedTails, rep.DroppedSegments)
		}
	}
	// Hold the lock across worker startup and recovery: a worker grabs the
	// lock before building, so no build can publish until every restored
	// relation carries its replayed deltas.
	s.mu.Lock()
	for i := 0; i < opt.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if s.cache != nil {
		s.recoverLocked(replay.Records)
	}
	s.mu.Unlock()
	if opt.CompactInterval > 0 {
		s.stopCompact = make(chan struct{})
		s.compactorDone = make(chan struct{})
		go s.compactor()
	}
	if opt.CatalogBudgetBytes > 0 && opt.TunerInterval > 0 {
		s.stopTuner = make(chan struct{})
		s.tunerDone = make(chan struct{})
		go s.tuner()
	}
	return s, nil
}

// Options returns the store's effective (defaulted) options.
func (s *Store) Options() Options { return s.opt }

// View returns the current immutable view. The returned pointer is safe to
// use for any number of lookups; it never blocks and never observes a
// half-published schema.
func (s *Store) View() *View { return s.view.Load() }

// AddPublishHook registers fn to be called with a relation's name every
// time that relation's published snapshot changes: a first publication, a
// hot swap (re-registration rebuild), a compaction publish, or a drop. The
// call happens after the new View is swapped in, so fn observes the
// post-change schema through View(). Hooks run synchronously under the
// store's lock: they must be fast and must not call back into the store.
//
// The plan cache hangs its invalidation off this hook — firing after the
// View swap means a plan keyed by the old snapshot version is invalidated
// only once lookups can no longer resolve that version, so there is no
// window in which a stale plan is both resolvable and uninvalidated.
func (s *Store) AddPublishHook(fn func(relation string)) {
	s.mu.Lock()
	s.publishHooks = append(s.publishHooks, fn)
	s.mu.Unlock()
}

// notifyPublishLocked fires the publish hooks for name. Caller holds s.mu.
func (s *Store) notifyPublishLocked(name string) {
	for _, fn := range s.publishHooks {
		fn(name)
	}
}

// CatalogBuilds returns the number of catalogs constructed so far (cache
// hits excluded).
func (s *Store) CatalogBuilds() int64 { return s.catalogBuilds.Load() }

// CacheHits returns the number of catalogs loaded from the disk cache.
func (s *Store) CacheHits() int64 { return s.cacheHits.Load() }

// validateName rejects names that would be unusable in URLs or cache paths.
func validateName(name string) error {
	if name == "" || len(name) > 64 {
		return fmt.Errorf("store: relation name must be 1-64 characters, got %d", len(name))
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '-', r == '.':
		default:
			return fmt.Errorf("store: relation name %q contains %q (allowed: letters, digits, '_', '-', '.')", name, r)
		}
	}
	return nil
}

// Register schedules a (re)build of name from the given points and returns
// the resulting status (queued). If name is already registered, the new
// points supersede the old ones: a queued build picks them up in place, a
// running build is cancelled and re-scheduled, and a published snapshot
// keeps serving until the new version is ready. The call never waits for
// the build; use WaitReady or Status to observe completion.
func (s *Store) Register(name string, pts []geom.Point) (RelationStatus, error) {
	return s.RegisterResolution(name, pts, core.Resolution{})
}

// RegisterResolution is Register with a per-relation artifact resolution:
// catalog depth (MaxK), staircase corner budget, virtual-grid granularity
// and aknn partition capacity. Zero axes inherit the store-wide options,
// so the zero resolution is exactly Register. The resolution is the
// relation's declared accuracy; the space-budget tuner may serve it
// coarser under memory pressure, but never refuses the registration.
func (s *Store) RegisterResolution(name string, pts []geom.Point, res core.Resolution) (RelationStatus, error) {
	if err := validateName(name); err != nil {
		return RelationStatus{}, err
	}
	if len(pts) == 0 {
		return RelationStatus{}, fmt.Errorf("store: relation %q has no points", name)
	}
	for i, p := range pts {
		if !finite(p.X) || !finite(p.Y) {
			return RelationStatus{}, fmt.Errorf("store: relation %q point %d is not finite: %v", name, i, p)
		}
	}
	res = s.opt.resolveResolution(res)
	if err := res.Validate(); err != nil {
		return RelationStatus{}, fmt.Errorf("store: relation %q: %w", name, err)
	}
	return s.submit(name, pts, nil, res)
}

// RegisterIndex schedules a build of name over a pre-built data index. The
// index is used as-is (any index.Tree works, including non-partitioning
// ones); because the store cannot reproduce an arbitrary index from disk,
// index-registered relations bypass the warm-restart cache.
func (s *Store) RegisterIndex(name string, tree *index.Tree) (RelationStatus, error) {
	if err := validateName(name); err != nil {
		return RelationStatus{}, err
	}
	if tree == nil || tree.NumBlocks() == 0 {
		return RelationStatus{}, fmt.Errorf("store: relation %q has no blocks", name)
	}
	return s.submit(name, nil, tree, s.opt.resolveResolution(core.Resolution{}))
}

func (s *Store) submit(name string, pts []geom.Point, tree *index.Tree, res core.Resolution) (RelationStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return RelationStatus{}, ErrClosed
	}
	e := s.entries[name]
	isNew := e == nil
	if isNew {
		e = &entry{name: name, hits: &atomic.Int64{}}
	}
	if err := s.enqueueLocked(e, pts, tree); err != nil {
		return RelationStatus{}, err
	}
	if isNew {
		s.entries[name] = e
	}
	// A user registration replaces base and deltas wholesale: pending
	// mutations are obsolete, and the publish checkpoint covers everything
	// logged so far for this relation. The declared resolution resets the
	// tuner state too — a re-registration is a fresh accuracy contract.
	e.pending = nil
	e.ckptLSN = s.lastLSNLocked()
	e.isCompact = false
	e.fromPoints = pts != nil
	e.res, e.declaredRes = res, res
	e.tunerSteps, e.tunerFloor, e.tunerProbed = 0, math.MaxInt, 0
	s.republishLocked()
	return e.statusLocked(), nil
}

// enqueueLocked stages pts/tree as e's wanted generation and ensures a
// build signal is queued, superseding any in-flight build. On ErrQueueFull
// the entry is untouched. Caller holds s.mu.
func (s *Store) enqueueLocked(e *entry, pts []geom.Point, tree *index.Tree) error {
	// Close sets s.closed and closes s.jobs under the same lock, so this
	// check is what keeps late enqueues — a finishing build's follow-up
	// compaction, a racing Flush — from sending on the closed channel.
	if s.closed {
		return ErrClosed
	}
	if e.state != StateQueued {
		// Reserve the queue slot before mutating anything, so a saturated
		// queue leaves the store untouched.
		select {
		case s.jobs <- e.name:
		default:
			return ErrQueueFull
		}
	}
	e.gen++
	e.pendingPts, e.pendingTree = pts, tree
	if e.state == StateBuilding && e.cancel != nil {
		e.cancel() // supersede the in-flight build
	}
	e.state = StateQueued
	e.err = ""
	return nil
}

// lastLSNLocked returns the newest assigned mutation sequence number.
func (s *Store) lastLSNLocked() uint64 {
	if s.wal != nil {
		return s.wal.LastLSN()
	}
	return s.seq
}

// Drop removes a relation: pending and running builds are cancelled, the
// published snapshot (if any) leaves the next View, and the cache registry
// forgets the name (cached artifacts stay on disk — the cache is
// content-addressed and a re-registration of the same data warm-loads).
// In-flight estimates holding an older View keep working on the snapshot
// they resolved. It reports whether the relation existed.
func (s *Store) Drop(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[name]
	if e == nil {
		return false
	}
	// Log the drop and make it durable before the registry forgets the
	// name: a crash in between then replays the drop instead of
	// resurrecting the relation from the still-registered fingerprint.
	if s.wal != nil {
		if _, err := s.wal.Append(wal.Record{Kind: wal.KindDrop, Relation: name}); err != nil {
			s.opt.logger().Printf("store: logging drop of %q: %v", name, err)
		} else if err := s.wal.Sync(); err != nil {
			s.opt.logger().Printf("store: syncing drop of %q: %v", name, err)
		}
	}
	if e.cancel != nil {
		e.cancel()
	}
	delete(s.entries, name)
	s.republishLocked()
	s.notifyPublishLocked(name)
	if s.cache != nil {
		if err := s.cache.forget(name); err != nil {
			s.opt.logger().Printf("store: updating cache registry after dropping %q: %v", name, err)
		}
	}
	s.trimWALLocked()
	return true
}

// Status returns the current status of name.
func (s *Store) Status(name string) (RelationStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[name]
	if e == nil {
		return RelationStatus{}, false
	}
	return e.statusLocked(), true
}

// WaitReady blocks until every named relation is ready, any of them fails
// (the first failure is returned as an error), or ctx expires. With no
// names it waits for every relation known at call time.
func (s *Store) WaitReady(ctx context.Context, names ...string) error {
	if len(names) == 0 {
		s.mu.Lock()
		for name := range s.entries {
			names = append(names, name)
		}
		s.mu.Unlock()
	}
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		done := true
		s.mu.Lock()
		var failed error
		for _, name := range names {
			e := s.entries[name]
			if e == nil {
				failed = fmt.Errorf("store: relation %q is not registered", name)
				break
			}
			switch e.state {
			case StateReady:
			case StateFailed:
				failed = fmt.Errorf("store: building %q: %s", name, e.err)
			default:
				done = false
			}
			if failed != nil {
				break
			}
		}
		s.mu.Unlock()
		if failed != nil {
			return failed
		}
		if done {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Close drains the build pool: no new registrations are accepted, queued
// builds are skipped, and in-flight builds get until ctx expires to finish
// before being cancelled. Close always waits for the workers to exit.
func (s *Store) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	close(s.jobs)
	s.mu.Unlock()

	if s.stopCompact != nil {
		close(s.stopCompact)
		<-s.compactorDone
	}
	if s.stopTuner != nil {
		close(s.stopTuner)
		<-s.tunerDone
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancel() // hard-cancel in-flight builds; they abort between stages
		<-done
	}
	s.cancel()
	// Workers are done publishing (and checkpointing); seal the log. Any
	// deltas still pending stay in the WAL and replay on the next start.
	if s.wal != nil {
		if werr := s.wal.Close(); werr != nil {
			s.opt.logger().Printf("store: closing wal: %v", werr)
		}
	}
	return err
}

func (s *Store) worker() {
	defer s.wg.Done()
	for name := range s.jobs {
		s.runJob(name)
	}
}

// runJob consumes one build signal. The signal's relation may have been
// dropped, superseded or already picked up by another worker; the
// generation check at publish time makes any stale outcome a silent no-op.
func (s *Store) runJob(name string) {
	s.mu.Lock()
	e := s.entries[name]
	if e == nil || s.closed || e.state != StateQueued {
		s.mu.Unlock()
		return
	}
	gen := e.gen
	pts, tree := e.pendingPts, e.pendingTree
	res := e.res
	ctx, cancel := context.WithCancel(s.ctx)
	e.cancel = cancel
	e.state = StateBuilding
	s.republishLocked()
	s.mu.Unlock()

	built, err := s.buildCatalogs(ctx, name, pts, tree, res)
	cancel()

	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.entries[name]
	if cur == nil || cur.gen != gen {
		return // dropped or superseded while building; discard
	}
	cur.cancel = nil
	if err != nil {
		if ctx.Err() != nil {
			err = fmt.Errorf("build cancelled: %w", err)
		}
		cur.state = StateFailed
		cur.err = err.Error()
		s.republishLocked()
		s.opt.logger().Printf("store: building %q: %v", name, err)
		return
	}
	s.publishLocked(cur, built)
	// Deltas that arrived while this build ran (or were replayed at
	// startup) are still pending: fold them in the next round.
	if cur.state == StateReady && len(cur.pending) > 0 {
		s.compactLocked(cur)
	}
}

// builtRelation carries a finished per-relation build from the worker into
// the publish step.
type builtRelation struct {
	tree      *index.Tree
	count     *index.Tree
	staircase *core.Staircase
	density   *core.DensityBased
	vgrid     *core.VirtualGrid
	aknn      *aknn.Summary
	pts       []geom.Point    // registration-order source points; nil for index builds
	fp        string          // empty when not cacheable
	res       core.Resolution // the resolution the artifacts were built at
	fromCache bool
}

// buildCatalogs constructs (or cache-loads) every per-relation estimator
// at the given resolution. It runs without any store lock; ctx aborts it
// between stages.
func (s *Store) buildCatalogs(ctx context.Context, name string, pts []geom.Point, tree *index.Tree, res core.Resolution) (*builtRelation, error) {
	res = res.Canon()
	b := &builtRelation{tree: tree, res: res}
	if tree == nil {
		b.pts = pts
		bounds := s.opt.Bounds
		if !bounds.Valid() || bounds.Width() <= 0 || bounds.Height() <= 0 {
			bounds = boundsOf(pts)
		}
		b.tree = quadtree.Build(pts, quadtree.Options{
			Capacity: s.opt.IndexCapacity,
			Bounds:   bounds,
		}).Index()
		b.fp = s.fingerprint(pts, res)
	}
	if b.tree.NumBlocks() == 0 {
		return nil, fmt.Errorf("relation %q indexed to zero blocks", name)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.count = b.tree.CountTree()
	b.density = core.NewDensityBased(b.count)

	if b.fp != "" && s.cache != nil {
		if s.loadCachedCatalogs(b) {
			b.fromCache = true
			return b, nil
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	stair, err := core.BuildStaircase(b.tree, core.StaircaseOptions{
		MaxK:     res.MaxK,
		Mode:     res.StaircaseMode(),
		Fallback: b.density,
	})
	if err != nil {
		return nil, fmt.Errorf("staircase: %w", err)
	}
	s.catalogBuilds.Add(1)
	b.staircase = stair
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	vg, err := core.BuildVirtualGrid(b.count, res.GridSize, res.GridSize, res.MaxK)
	if err != nil {
		return nil, fmt.Errorf("virtual grid: %w", err)
	}
	s.catalogBuilds.Add(1)
	b.vgrid = vg
	b.aknn = aknn.BuildSummaryCapacity(b.count, res.AknnCapacity)
	s.catalogBuilds.Add(1)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if b.fp != "" && s.cache != nil {
		if err := s.cache.storeRelation(b.fp, s.manifestFor(b, pts), pts, stair, vg, b.aknn, res); err != nil {
			s.opt.logger().Printf("store: caching %q: %v (continuing uncached)", name, err)
		}
	}
	return b, nil
}

// loadCachedCatalogs tries to satisfy a build from the disk cache. Any
// mismatch or corruption is a miss, never an error: the caller rebuilds.
func (s *Store) loadCachedCatalogs(b *builtRelation) bool {
	m, ok := s.cache.loadManifest(b.fp)
	if !ok || !s.manifestMatches(m, b) {
		return false
	}
	stair, vg, sum, err := s.cache.loadRelation(b.fp, b.tree, core.StaircaseOptions{Fallback: b.density}, b.res)
	if err != nil {
		s.opt.logger().Printf("store: cache load %s: %v (rebuilding)", shortFP(b.fp), err)
		return false
	}
	b.staircase, b.vgrid, b.aknn = stair, vg, sum
	s.cacheHits.Add(3) // staircase + virtual grid + aknn summary
	return true
}

func (s *Store) manifestFor(b *builtRelation, pts []geom.Point) manifest {
	return manifest{
		Format:       cacheFormat,
		NumPoints:    len(pts),
		NumBlocks:    b.tree.NumBlocks(),
		MaxK:         b.res.MaxK,
		Corners:      b.res.Corners,
		SampleSize:   s.opt.SampleSize,
		GridSize:     b.res.GridSize,
		AknnCapacity: b.res.AknnCapacity,
		Capacity:     s.opt.IndexCapacity,
	}
}

func (s *Store) manifestMatches(m manifest, b *builtRelation) bool {
	return m.Format == cacheFormat &&
		m.NumPoints == b.tree.NumPoints() &&
		m.NumBlocks == b.tree.NumBlocks() &&
		m.MaxK == b.res.MaxK &&
		m.Corners == b.res.Corners &&
		m.SampleSize == s.opt.SampleSize &&
		m.GridSize == b.res.GridSize &&
		m.AknnCapacity == b.res.AknnCapacity &&
		m.Capacity == s.opt.IndexCapacity
}

// publishLocked turns a finished build into the next published version:
// the relation's snapshot, the Catalog-Merge estimators pairing it with
// every other published relation, and a fresh View. It runs under s.mu —
// publication is serialized, which is what guarantees every View carries a
// merge for every ordered pair of its relations. Readers never block on it.
func (s *Store) publishLocked(e *entry, b *builtRelation) {
	version := uint64(1)
	if e.snap != nil {
		version = e.snap.Version + 1
	}
	eng := engine.NewRelationWithCount(e.name, b.tree, b.count,
		engine.BuildOptions{SampleSize: s.opt.SampleSize}.WithResolution(b.res))
	// Seed the engine with the artifacts this build already produced (or
	// cache-loaded), so technique resolution never rebuilds what the store
	// has: the engine serves these exact objects, bit for bit. The
	// staircase seeds under the technique its mode (the resolution's corner
	// budget) selects; artifacts key by their own reported resolution.
	eng.Seed(engine.TechDensity, b.density)
	eng.Seed(engine.StaircaseTechnique(b.staircase.Mode()), b.staircase)
	eng.Seed(engine.TechVirtualGrid, b.vgrid)
	eng.Seed(engine.TechAknnBounds, b.aknn)
	if e.hits == nil {
		e.hits = &atomic.Int64{}
	}
	stairBytes, vgBytes, aknnBytes := b.staircase.SizeBytes(), b.vgrid.SizeBytes(), b.aknn.SizeBytes()
	snap := &Snapshot{
		Name:           e.name,
		Version:        version,
		Fingerprint:    b.fp,
		Points:         b.pts,
		Tree:           b.tree,
		Count:          b.count,
		Staircase:      b.staircase,
		Density:        b.density,
		VGrid:          b.vgrid,
		Aknn:           b.aknn,
		Engine:         eng,
		Resolution:     b.res,
		StaircaseBytes: stairBytes,
		VGridBytes:     vgBytes,
		AknnBytes:      aknnBytes,
		ArtifactBytes:  stairBytes + vgBytes + aknnBytes,
		hits:           e.hits,
	}
	e.snap = snap
	e.state = StateReady
	e.err = ""
	e.pendingPts, e.pendingTree = nil, nil
	covered := e.ckptLSN
	wasCompact := e.isCompact
	e.isCompact = false
	// Deltas this build folded in are acknowledged by the snapshot now;
	// anything logged after the fold stays pending for the next round.
	e.pending = filterCovered(e.pending, covered)
	s.republishLocked()
	s.notifyPublishLocked(e.name)
	if wasCompact {
		s.compactions.Add(1)
	}
	if s.cache == nil || b.fp == "" {
		return
	}
	// Durability order: artifacts are on disk (buildCatalogs wrote them),
	// so checkpoint the fold in the WAL, fsync it, and only then let the
	// registry adopt the new fingerprint. Replay treats a checkpoint whose
	// fingerprint the registry never adopted as ineffective, so a crash
	// anywhere in this sequence recovers a consistent base + delta state.
	if s.wal != nil {
		_, err := s.wal.Append(wal.Record{Kind: wal.KindCheckpoint, Relation: e.name, Covered: covered, Fingerprint: b.fp})
		if err == nil {
			err = s.wal.Sync()
		}
		if err != nil {
			// Without a durable checkpoint the registry must keep the old
			// fingerprint: adopting the new one would double-apply the
			// covered deltas on replay.
			s.opt.logger().Printf("store: checkpointing %q: %v (registry not updated)", e.name, err)
			e.rememberFailed = true
			return
		}
	}
	if err := s.cache.remember(e.name, b.fp, b.res, e.declaredRes); err != nil {
		s.opt.logger().Printf("store: updating cache registry for %q: %v", e.name, err)
		e.rememberFailed = true
	} else {
		e.rememberFailed = false
		e.durableCovered = covered
	}
	s.trimWALLocked()
}

// republishLocked rebuilds and atomically swaps in the View from the
// current entries. Merges for pairs whose snapshots are unchanged are
// carried over from the previous View; missing pairs (a newly published or
// republished relation) are built or cache-loaded here, under the lock, so
// that concurrent publishes cannot each miss the other's relation.
func (s *Store) republishLocked() {
	old := s.view.Load()
	v := &View{
		relations: make(map[string]*Snapshot, len(s.entries)),
		merges:    make(map[[2]string]*core.CatalogMerge, len(old.merges)),
		names:     make([]string, 0, len(s.entries)),
		statuses:  make([]RelationStatus, 0, len(s.entries)),
	}
	for name, e := range s.entries {
		v.statuses = append(v.statuses, e.statusLocked())
		if e.snap != nil {
			v.relations[name] = e.snap
			v.names = append(v.names, name)
		}
	}
	sort.Strings(v.names)
	sort.Slice(v.statuses, func(i, j int) bool { return v.statuses[i].Name < v.statuses[j].Name })
	for _, outer := range v.names {
		for _, inner := range v.names {
			if outer == inner {
				continue
			}
			pair := [2]string{outer, inner}
			// Reuse the previous merge only if both endpoints are the very
			// same snapshots it was built for.
			if old.relations[outer] == v.relations[outer] && old.relations[inner] == v.relations[inner] {
				if m := old.merges[pair]; m != nil {
					v.merges[pair] = m
					continue
				}
			}
			m, err := s.mergeFor(v.relations[outer], v.relations[inner])
			if err != nil {
				// A merge failure must not unpublish the relations; the
				// pair is simply absent and the join endpoint reports it.
				s.opt.logger().Printf("store: catalog-merge %s⋉%s: %v", outer, inner, err)
				continue
			}
			v.merges[pair] = m
		}
	}
	// Seed every pair merge into the outer relation's engine so join
	// technique resolution by name returns the store's merge object.
	// SeedPair is first-value-wins, so re-seeding a carried-over pair on a
	// later republish is a no-op.
	for pair, m := range v.merges {
		v.relations[pair[0]].Engine.SeedPair(engine.TechCatalogMerge, v.relations[pair[1]].Engine, m)
	}
	s.view.Store(v)
}

// mergeFor builds or cache-loads the Catalog-Merge for one ordered pair.
func (s *Store) mergeFor(outer, inner *Snapshot) (*core.CatalogMerge, error) {
	cacheable := s.cache != nil && outer.Fingerprint != "" && inner.Fingerprint != ""
	if cacheable {
		if m, err := s.cache.loadMerge(outer.Fingerprint, inner.Fingerprint); err == nil {
			s.cacheHits.Add(1)
			return m, nil
		}
	}
	// The merge's catalog depth follows the outer relation's effective
	// resolution, matching the engine's CatalogMerge accessor.
	m, err := core.BuildCatalogMerge(outer.Count, inner.Count, s.opt.SampleSize, outer.Resolution.MaxK)
	if err != nil {
		return nil, err
	}
	s.catalogBuilds.Add(1)
	if cacheable {
		if err := s.cache.storeMerge(outer.Fingerprint, inner.Fingerprint, m); err != nil {
			s.opt.logger().Printf("store: caching merge: %v (continuing uncached)", err)
		}
	}
	return m, nil
}

// statusLocked snapshots the externally visible state of e.
func (e *entry) statusLocked() RelationStatus {
	st := RelationStatus{
		Name:  e.name,
		State: e.state.String(),
		Error: e.err,
	}
	if e.snap != nil {
		st.Version = e.snap.Version
		st.NumPoints = e.snap.Tree.NumPoints()
		st.NumBlocks = e.snap.Tree.NumBlocks()
		st.StaircaseBytes = e.snap.StaircaseBytes
		st.VirtualGridBytes = e.snap.VGridBytes
		st.AknnBytes = e.snap.AknnBytes
		st.ArtifactBytes = e.snap.ArtifactBytes
		st.Resolution = e.snap.Resolution
		st.DeclaredResolution = e.declaredRes
	}
	if len(e.pending) > 0 {
		st.DeltaOps = len(e.pending)
		st.DeltaPoints = pendingPoints(e)
		st.DeltaAgeMs = time.Since(e.pending[0].at).Milliseconds()
		if st.DeltaAgeMs < 1 {
			st.DeltaAgeMs = 1 // a fresh delta is still a visible one
		}
	}
	return st
}

// boundsOf returns the bounding rectangle of pts, slightly inflated so
// every point is strictly inside (a quadtree needs open upper edges).
func boundsOf(pts []geom.Point) geom.Rect {
	r := geom.NewRect(pts[0].X, pts[0].Y, pts[0].X, pts[0].Y)
	for _, p := range pts[1:] {
		if p.X < r.Min.X {
			r.Min.X = p.X
		}
		if p.Y < r.Min.Y {
			r.Min.Y = p.Y
		}
		if p.X > r.Max.X {
			r.Max.X = p.X
		}
		if p.Y > r.Max.Y {
			r.Max.Y = p.Y
		}
	}
	w, h := r.Width(), r.Height()
	if w == 0 {
		w = 1
	}
	if h == 0 {
		h = 1
	}
	r.Min.X -= w * 0.001
	r.Min.Y -= h * 0.001
	r.Max.X += w * 0.001
	r.Max.Y += h * 0.001
	return r
}

func finite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}
