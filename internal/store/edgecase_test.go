// Edge-case tests of the store's registration and serving paths: relations
// that index to nothing, all-duplicate point sets, and degenerate k values
// against published snapshots.
package store

import (
	"context"
	"math"
	"testing"
	"time"

	"knncost/internal/geom"
)

// TestRegisterEmptyRelationFails: a relation whose points index to zero
// blocks must end up failed — visible in Status and the listing — without
// ever publishing a snapshot or poisoning other relations.
func TestRegisterEmptyRelationFails(t *testing.T) {
	s := newTestStore(t, testOptions(t))
	if _, err := s.Register("empty", nil); err != nil {
		// An eager rejection is fine too; either way nothing publishes.
		if s.View().Relation("empty") != nil {
			t.Fatal("rejected registration still published")
		}
		return
	}
	// WaitReady surfaces the failed build as an error; it must not hang.
	{
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err := s.WaitReady(ctx, "empty")
		cancel()
		if err == nil {
			t.Fatal("WaitReady succeeded for a relation that cannot build")
		}
	}
	st, ok := s.Status("empty")
	if !ok {
		t.Fatal("empty relation unknown after Register")
	}
	if st.State != StateFailed.String() {
		t.Fatalf("empty relation state %q, want %q", st.State, StateFailed)
	}
	if st.Error == "" {
		t.Fatal("failed relation carries no error")
	}
	if s.View().Relation("empty") != nil {
		t.Fatal("failed relation has a published snapshot")
	}
	// The failure is isolated: a healthy registration still publishes.
	if _, err := s.Register("ok", gridPoints(100, 9)); err != nil {
		t.Fatalf("Register ok: %v", err)
	}
	waitReady(t, s, "ok")
	if s.View().Relation("ok") == nil {
		t.Fatal("healthy relation did not publish alongside the failed one")
	}
}

// TestAllDuplicatesRelation: 200 copies of one point must build, publish
// and answer every estimator finitely, including k far beyond N and
// queries outside the MBR; k < 1 stays an error.
func TestAllDuplicatesRelation(t *testing.T) {
	s := newTestStore(t, testOptions(t))
	pts := make([]geom.Point, 200)
	for i := range pts {
		pts[i] = geom.Point{X: 42.5, Y: 17.25}
	}
	if _, err := s.Register("dups", pts); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := s.Register("other", gridPoints(300, 4)); err != nil {
		t.Fatalf("Register other: %v", err)
	}
	waitReady(t, s)
	v := s.View()
	snap := v.Relation("dups")
	if snap == nil || snap.Tree.NumPoints() != 200 {
		t.Fatalf("dups snapshot %+v", snap)
	}
	queries := []geom.Point{{X: 42.5, Y: 17.25}, {X: -500, Y: 900}}
	for _, q := range queries {
		if _, err := snap.Staircase.EstimateSelect(q, 0); err == nil {
			t.Fatal("staircase accepted k=0")
		}
		if _, err := snap.Density.EstimateSelect(q, -1); err == nil {
			t.Fatal("density accepted k=-1")
		}
		for _, k := range []int{1, 64, 65, 1000} { // straddles MaxK and N
			for name, est := range map[string]interface {
				EstimateSelect(geom.Point, int) (float64, error)
			}{"staircase": snap.Staircase, "density": snap.Density} {
				got, err := est.EstimateSelect(q, k)
				if err != nil {
					t.Fatalf("%s(%v, k=%d): %v", name, q, k, err)
				}
				if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
					t.Fatalf("%s(%v, k=%d) = %v, want finite non-negative", name, q, k, got)
				}
			}
		}
	}
	for _, pair := range [][2]string{{"dups", "other"}, {"other", "dups"}} {
		for _, k := range []int{1, 64, 1000} {
			got, err := v.Merge(pair[0], pair[1]).EstimateJoin(k)
			if err != nil {
				t.Fatalf("merge %v (k=%d): %v", pair, k, err)
			}
			if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
				t.Fatalf("merge %v (k=%d) = %v, want finite non-negative", pair, k, got)
			}
		}
	}
}
