package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"knncost/internal/engine"
	"knncost/internal/geom"
)

// TestFormatThreeCacheMissesCleanly: a cache directory written by the
// previous on-disk format (3: varint artifacts, no resolution column) must
// behave as a clean miss under format 4 — the store cold-starts without
// error, re-registration rebuilds (knncost_catalog_builds increments), and
// the fresh entries supersede the stale ones in place.
func TestFormatThreeCacheMissesCleanly(t *testing.T) {
	dir := t.TempDir()
	staleFP := strings.Repeat("ab", 32)

	// Hand-write what a format-3 cache left behind: a registry without the
	// resolution columns, a varint-era artifact dir, and a format-3
	// manifest. None of it is readable under format 4.
	if err := os.MkdirAll(filepath.Join(dir, "cat", staleFP), 0o755); err != nil {
		t.Fatal(err)
	}
	reg, err := json.Marshal(map[string]any{
		"format": 3,
		"relations": []map[string]any{
			{"name": "legacy", "fingerprint": staleFP},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "registry.json"), reg, 0o644); err != nil {
		t.Fatal(err)
	}
	man, err := json.Marshal(map[string]any{"format": 3, "num_points": 900, "max_k": 64})
	if err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"manifest.json":                 man,
		"points.bin":                    []byte("KNPT\x01garbage"),
		engine.TechStaircaseCC + ".bin": []byte("old varint staircase bytes"),
		engine.TechVirtualGrid + ".bin": []byte("old varint grid bytes"),
		engine.TechAknnBounds + ".bin":  []byte("KNAB\x01junk"),
	} {
		if err := os.WriteFile(filepath.Join(dir, "cat", staleFP, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	opt := testOptions(t)
	opt.CacheDir = dir
	s := newTestStore(t, opt)
	waitReady(t, s) // a format-3 registry restores nothing
	if n := s.View().NumRelations(); n != 0 {
		t.Fatalf("format-3 registry restored %d relations, want 0", n)
	}

	if _, err := s.Register("legacy", gridPoints(900, 7)); err != nil {
		t.Fatalf("Register over a format-3 cache: %v", err)
	}
	waitReady(t, s, "legacy")
	if s.CatalogBuilds() == 0 {
		t.Fatal("re-registration over a format-3 cache served stale artifacts instead of rebuilding")
	}
	snap := s.View().Relation("legacy")
	if _, err := snap.Staircase.EstimateSelect(geom.Point{X: 40, Y: 40}, 9); err != nil {
		t.Fatalf("estimate after format migration: %v", err)
	}
	if snap.Resolution.MaxK != opt.MaxK || snap.Resolution.GridSize != opt.GridSize {
		t.Fatalf("rebuilt resolution %+v does not carry the store defaults (maxk %d, grid %d)",
			snap.Resolution, opt.MaxK, opt.GridSize)
	}
}
