package store

import (
	"os"
	"path/filepath"
	"testing"

	"knncost/internal/core"
	"knncost/internal/engine"
	"knncost/internal/geom"
)

// TestSnapshotEngineServesSeededArtifacts pins the contract between the
// store and the engine: the engine relation published with a snapshot
// serves the exact artifact objects the build produced — same pointers, not
// equivalent rebuilds — for every technique the store precomputes.
func TestSnapshotEngineServesSeededArtifacts(t *testing.T) {
	s := newTestStore(t, testOptions(t))
	if _, err := s.Register("alpha", gridPoints(2000, 21)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("beta", gridPoints(1500, 22)); err != nil {
		t.Fatal(err)
	}
	waitReady(t, s, "alpha", "beta")
	v := s.View()

	for _, name := range []string{"alpha", "beta"} {
		snap := v.Relation(name)
		if snap.Engine == nil {
			t.Fatalf("%s: snapshot has no engine relation", name)
		}
		if snap.Engine.Tree() != snap.Tree || snap.Engine.Count() != snap.Count {
			t.Errorf("%s: engine indexes are not the snapshot's", name)
		}
		stair, err := snap.Engine.Staircase(core.ModeCenterCorners)
		if err != nil {
			t.Fatal(err)
		}
		if stair != snap.Staircase {
			t.Errorf("%s: engine staircase-cc is a rebuild, want the seeded object", name)
		}
		if snap.Engine.Density() != snap.Density {
			t.Errorf("%s: engine density is a rebuild, want the seeded object", name)
		}
		vg, err := snap.Engine.VirtualGrid()
		if err != nil {
			t.Fatal(err)
		}
		if vg != snap.VGrid {
			t.Errorf("%s: engine virtual grid is a rebuild, want the seeded object", name)
		}
		// The by-name path serves the same seeded artifacts.
		est, err := snap.Engine.SelectEstimator(engine.TechStaircaseCC)
		if err != nil {
			t.Fatal(err)
		}
		if est.(*core.Staircase) != snap.Staircase {
			t.Errorf("%s: by-name staircase-cc is not the seeded object", name)
		}
	}

	// Pair merges: the engine must hand back the View's merge object for
	// every ordered pair.
	for _, outer := range v.Names() {
		for _, inner := range v.Names() {
			if outer == inner {
				continue
			}
			m, err := v.Relation(outer).Engine.CatalogMerge(v.Relation(inner).Engine)
			if err != nil {
				t.Fatal(err)
			}
			if m != v.Merge(outer, inner) {
				t.Errorf("%s⋉%s: engine catalog-merge is a rebuild, want the View's object", outer, inner)
			}
		}
	}
}

// TestSnapshotEngineLazyStaircaseC proves a technique the store does not
// precompute (staircase-c) builds lazily in the snapshot's engine, exactly
// once, and is bit-exact with a direct core construction over the same
// index and options.
func TestSnapshotEngineLazyStaircaseC(t *testing.T) {
	opt := testOptions(t)
	s := newTestStore(t, opt)
	if _, err := s.Register("alpha", gridPoints(2000, 23)); err != nil {
		t.Fatal(err)
	}
	waitReady(t, s, "alpha")
	snap := s.View().Relation("alpha")

	got, err := snap.Engine.SelectEstimator(engine.TechStaircaseC)
	if err != nil {
		t.Fatal(err)
	}
	again, err := snap.Engine.SelectEstimator(engine.TechStaircaseC)
	if err != nil {
		t.Fatal(err)
	}
	if got != again {
		t.Error("staircase-c built twice, want one cached artifact")
	}

	want, err := core.BuildStaircase(snap.Tree, core.StaircaseOptions{
		MaxK:     opt.MaxK,
		Mode:     core.ModeCenterOnly,
		Fallback: snap.Density,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []geom.Point{{X: 3, Y: 3}, {X: 11.5, Y: 17.2}, {X: 19, Y: 2}} {
		for _, k := range []int{1, 5, opt.MaxK, opt.MaxK + 50} {
			g, err1 := got.EstimateSelect(q, k)
			w, err2 := want.EstimateSelect(q, k)
			if err1 != nil || err2 != nil {
				t.Fatalf("EstimateSelect(%v, %d): %v / %v", q, k, err1, err2)
			}
			if g != w {
				t.Errorf("EstimateSelect(%v, %d) = %v via engine, %v direct", q, k, g, w)
			}
		}
	}
}

// TestStoreSelectGuardsKBelowOne is the store-layer leg of the uniform
// k < 1 contract: every select technique resolved from a published
// snapshot rejects k = 0 and negative k with an error, never a panic.
func TestStoreSelectGuardsKBelowOne(t *testing.T) {
	s := newTestStore(t, testOptions(t))
	if _, err := s.Register("alpha", gridPoints(1000, 24)); err != nil {
		t.Fatal(err)
	}
	waitReady(t, s, "alpha")
	snap := s.View().Relation("alpha")
	q := geom.Point{X: 5, Y: 5}

	for _, name := range engine.SelectNames() {
		est, err := snap.Engine.SelectEstimator(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, k := range []int{0, -1, -100} {
			if _, err := est.EstimateSelect(q, k); err == nil {
				t.Errorf("%s accepted k=%d", name, k)
			}
		}
		if _, err := est.EstimateSelect(q, 1); err != nil {
			t.Errorf("%s rejected k=1: %v", name, err)
		}
	}
}

// TestCacheFilesKeyedByTechnique pins the format-2 cache layout: relation
// artifacts are stored under their engine technique names and merge files
// carry the technique suffix, so adding a cached technique is a new file,
// never a layout change.
func TestCacheFilesKeyedByTechnique(t *testing.T) {
	opt := testOptions(t)
	opt.CacheDir = t.TempDir()
	s := newTestStore(t, opt)
	if _, err := s.Register("alpha", gridPoints(1200, 25)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("beta", gridPoints(800, 26)); err != nil {
		t.Fatal(err)
	}
	waitReady(t, s, "alpha", "beta")
	v := s.View()

	for _, name := range v.Names() {
		fp := v.Relation(name).Fingerprint
		if fp == "" {
			t.Fatalf("%s: no fingerprint", name)
		}
		dir := filepath.Join(opt.CacheDir, "cat", fp)
		for _, want := range []string{
			engine.TechStaircaseCC + ".bin",
			engine.TechVirtualGrid + ".bin",
			"points.bin",
			"manifest.json",
		} {
			if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
				t.Errorf("%s: missing cache artifact %s: %v", name, want, err)
			}
		}
		for _, stale := range []string{"staircase.bin", "vgrid.bin"} {
			if _, err := os.Stat(filepath.Join(dir, stale)); err == nil {
				t.Errorf("%s: pre-format-2 artifact name %s still written", name, stale)
			}
		}
	}

	fpA, fpB := v.Relation("alpha").Fingerprint, v.Relation("beta").Fingerprint
	mergeFile := filepath.Join(opt.CacheDir, "merge", fpA+"-"+fpB+"-"+engine.TechCatalogMerge+".bin")
	if _, err := os.Stat(mergeFile); err != nil {
		t.Errorf("missing technique-keyed merge file: %v", err)
	}
}
