package oracle

import (
	"errors"
	"math"
	"sort"

	"knncost/internal/geom"
	"knncost/internal/index"
)

// This file holds the brute-force references for the bounds-only AkNN
// join of internal/aknn. Everything is recomputed from first principles —
// the threshold by an O(n^2) scan over candidate values instead of a
// sort, the neighbor lists by full sorts — so agreement with the package
// under test is evidence, not tautology.

// AknnScanCount returns the number of candidate inner points the
// bounds-only pruning test scans for an outer partition with the given
// bounds. The threshold U is found without sorting: it is the smallest
// value u among the non-empty blocks' MAXDISTs such that the blocks with
// MAXDIST <= u jointly hold at least k points, or +Inf when the whole
// relation holds fewer than k points. Evaluating every candidate value
// independently makes the result order-independent by construction.
func AknnScanCount(inner *index.Tree, from geom.Rect, k int) int {
	if k < 1 {
		return 0
	}
	type blockBound struct {
		minD, maxD float64
		count      int
	}
	var bs []blockBound
	for _, b := range inner.Blocks() {
		if b.Count > 0 {
			bs = append(bs, blockBound{
				minD:  minDistRectRect(from, b.Bounds),
				maxD:  maxDistRectRect(from, b.Bounds),
				count: b.Count,
			})
		}
	}
	u := math.Inf(1)
	for _, cand := range bs {
		within := 0
		for _, b := range bs {
			if b.maxD <= cand.maxD {
				within += b.count
			}
		}
		if within >= k && cand.maxD < u {
			u = cand.maxD
		}
	}
	total := 0
	for _, b := range bs {
		if b.minD <= u {
			total += b.count
		}
	}
	return total
}

// AknnJoinCost returns the ground-truth cost of the bounds-only AkNN join
// (outer ⋉_aknn inner): the total number of candidate inner points over
// the non-empty outer blocks.
func AknnJoinCost(outer, inner *index.Tree, k int) int {
	total := 0
	for _, b := range outer.Blocks() {
		if b.Count == 0 {
			continue
		}
		total += AknnScanCount(inner, b.Bounds, k)
	}
	return total
}

// AknnBoundsEstimate computes the aknn-bounds join estimate the slow way:
// literal scan-count computations over the spatially distributed block
// sample, scaled by n_o/s — structurally parallel to BlockSampleEstimate.
func AknnBoundsEstimate(outer, inner *index.Tree, sampleSize, k int) (float64, error) {
	if k < 1 {
		return 0, errK
	}
	sample := sampleOrigins(outer, sampleSize)
	if len(sample) == 0 {
		return 0, errors.New("oracle: outer relation has no blocks")
	}
	agg := 0
	for _, from := range sample {
		agg += AknnScanCount(inner, from, k)
	}
	scale := float64(numJoinBlocks(outer)) / float64(len(sample))
	return float64(agg) * scale, nil
}

// AknnNeighbors returns min(k, len(pts)) nearest neighbors of q among pts
// by full sort, ties broken by (X, Y) so the result is canonical: any
// exact AkNN join's neighbor list for q, re-sorted by (distance, X, Y),
// must match it pair for pair whenever the input holds no two distinct
// points at equal coordinates... and even then, because equal coordinates
// make the pairs themselves indistinguishable.
func AknnNeighbors(pts []geom.Point, q geom.Point, k int) []geom.Point {
	if k < 1 || len(pts) == 0 {
		return nil
	}
	sorted := append([]geom.Point(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool {
		di, dj := pointDist(q, sorted[i]), pointDist(q, sorted[j])
		if di != dj {
			return di < dj
		}
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	if k < len(sorted) {
		sorted = sorted[:k]
	}
	return sorted
}
