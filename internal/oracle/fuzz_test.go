// Property/fuzz tests over random point sets and query parameters. Every
// target asserts three things: no panic, finite non-negative outputs, and
// exact oracle agreement on the ground-truth paths. The seed corpus below
// runs on every `go test`; scripts/check.sh additionally runs each target
// under -fuzz for a short smoke.
package oracle_test

import (
	"math"
	"math/rand"
	"testing"

	"knncost/internal/core"
	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/knn"
	"knncost/internal/knnjoin"
	"knncost/internal/oracle"
	"knncost/internal/quadtree"
)

// fuzzPoints derives a deterministic point set from a seed: size in
// [1, 160], uniform in a modest box, with every fourth point duplicated to
// exercise tie handling.
func fuzzPoints(seed int64, nRaw uint8) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + int(nRaw)%160
	pts := make([]geom.Point, n)
	for i := range pts {
		if i%4 == 3 {
			pts[i] = pts[i-1]
			continue
		}
		pts[i] = geom.Point{X: rng.Float64()*200 - 100, Y: rng.Float64()*200 - 100}
	}
	return pts
}

// sanitizeCoord folds an arbitrary fuzzed float into a finite coordinate.
func sanitizeCoord(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 500)
}

func fuzzTree(tb testing.TB, pts []geom.Point) *index.Tree {
	tb.Helper()
	tree := quadtree.Build(pts, quadtree.Options{Capacity: 8}).Index()
	if err := tree.Validate(); err != nil {
		tb.Fatalf("invalid tree: %v", err)
	}
	return tree
}

func FuzzEstimateSelect(f *testing.F) {
	f.Add(int64(1), uint8(50), uint8(3), 10.0, -20.0)
	f.Add(int64(2), uint8(1), uint8(0), 0.0, 0.0)
	f.Add(int64(3), uint8(255), uint8(200), math.Inf(1), math.NaN())
	f.Add(int64(4), uint8(9), uint8(1), -99.5, 99.5)
	f.Fuzz(func(t *testing.T, seed int64, nRaw, kRaw uint8, qx, qy float64) {
		pts := fuzzPoints(seed, nRaw)
		q := geom.Point{X: sanitizeCoord(qx), Y: sanitizeCoord(qy)}
		k := int(kRaw) % 48 // includes 0: the error path
		tree := fuzzTree(t, pts)
		count := tree.CountTree()

		// Ground truth must agree with the literal simulation for any k.
		want := oracle.SelectCost(tree, q, k)
		if got := knn.SelectCost(tree, q, k); got != want {
			t.Fatalf("SelectCost(%v, k=%d) = %d, oracle %d", q, k, got, want)
		}

		const maxK = 24
		stair, err := core.BuildStaircase(tree, core.StaircaseOptions{MaxK: maxK})
		if err != nil {
			t.Fatal(err)
		}
		for name, est := range map[string]core.SelectEstimator{
			"staircase": stair,
			"density":   core.NewDensityBased(count),
		} {
			got, err := est.EstimateSelect(q, k)
			if k < 1 {
				if err == nil {
					t.Fatalf("%s accepted k=%d", name, k)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s(%v, k=%d): %v", name, q, k, err)
			}
			if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
				t.Fatalf("%s(%v, k=%d) = %v, want finite non-negative", name, q, k, got)
			}
		}
		if k >= 1 {
			got, err := core.NewDensityBased(count).EstimateSelect(q, k)
			wantD, wantErr := oracle.DensityEstimate(count, q, k)
			if err != nil || wantErr != nil || got != wantD {
				t.Fatalf("density(%v, k=%d) = %v,%v; oracle %v,%v", q, k, got, err, wantD, wantErr)
			}
		}
	})
}

func FuzzJoinCost(f *testing.F) {
	f.Add(int64(1), int64(2), uint8(40), uint8(60), uint8(2))
	f.Add(int64(3), int64(3), uint8(0), uint8(0), uint8(0))
	f.Add(int64(5), int64(8), uint8(255), uint8(17), uint8(49))
	f.Fuzz(func(t *testing.T, seedOuter, seedInner int64, nOuter, nInner, kRaw uint8) {
		outer := fuzzTree(t, fuzzPoints(seedOuter, nOuter)).CountTree()
		inner := fuzzTree(t, fuzzPoints(seedInner, nInner)).CountTree()
		k := int(kRaw) % 40 // includes 0: must cost nothing

		want := oracle.JoinCost(outer, inner, k)
		got := knnjoin.Cost(outer, inner, k)
		if got != want {
			t.Fatalf("Cost(k=%d) = %d, oracle %d", k, got, want)
		}
		if got < 0 || (k == 0 && got != 0) {
			t.Fatalf("Cost(k=%d) = %d, want non-negative (0 at k=0)", k, got)
		}

		const sample = 5
		est, err := core.NewBlockSample(outer, inner, sample).EstimateJoin(k)
		if k < 1 {
			if err == nil {
				t.Fatalf("blocksample accepted k=%d", k)
			}
			return
		}
		if err != nil {
			t.Fatalf("blocksample(k=%d): %v", k, err)
		}
		if math.IsNaN(est) || math.IsInf(est, 0) || est < 0 {
			t.Fatalf("blocksample(k=%d) = %v, want finite non-negative", k, est)
		}
		wantEst, wantErr := oracle.BlockSampleEstimate(outer, inner, sample, k)
		if wantErr != nil || est != wantEst {
			t.Fatalf("blocksample(k=%d) = %v, oracle %v (%v)", k, est, wantEst, wantErr)
		}
	})
}
