// Metamorphic tests: properties that must hold between related queries or
// related datasets, without knowing the true answer. Scale and translation
// invariance are asserted exactly by choosing transformations that are
// lossless in IEEE arithmetic (power-of-two scaling; lattice-aligned
// translation), so any difference is a real behavioral divergence, not
// float noise.
package oracle_test

import (
	"math"
	"testing"

	"knncost/internal/core"
	"knncost/internal/geom"
	"knncost/internal/knn"
	"knncost/internal/oracle"
)

// TestEstimatesMonotonicInK: more neighbors can never be estimated (or
// measured) cheaper. The staircase estimate is a convex combination of two
// per-block catalogs, both non-decreasing in k, with a k-independent
// weight; the join catalogs accumulate localities. The density estimator
// is deliberately absent: growing k lets its scan reach denser blocks,
// which can shrink the refined radius, so its estimate is not monotone —
// for it only the [1, NumBlocks] range is asserted. The staircase check
// therefore also skips its fallback seams (queries outside the catalog's
// coverage and k > maxK), which delegate to density.
func TestEstimatesMonotonicInK(t *testing.T) {
	ws := testCorpus(t)
	for i, w := range ws {
		w, innerW := w, ws[(i+1)%len(ws)]
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			tree := buildTree(t, w.Points, 32)
			count := tree.CountTree()
			inner := buildTree(t, innerW.Points, 32).CountTree()
			const maxK = 100
			var selects []core.SelectEstimator
			for _, m := range staircaseModes {
				stair, err := core.BuildStaircase(tree, core.StaircaseOptions{MaxK: maxK, Mode: m.core})
				if err != nil {
					t.Fatal(err)
				}
				selects = append(selects, stair)
			}
			density := core.NewDensityBased(count)
			for _, q := range w.Queries {
				if oracle.FindBlock(tree, q) != nil {
					for _, est := range selects {
						prev := 0.0
						for _, k := range w.Ks {
							if k > maxK {
								continue
							}
							got, err := est.EstimateSelect(q, k)
							if err != nil {
								t.Fatal(err)
							}
							if got < prev {
								t.Fatalf("estimate(%v) decreased from %v to %v at k=%d", q, prev, got, k)
							}
							prev = got
						}
					}
				}
				for _, k := range w.Ks {
					got, err := density.EstimateSelect(q, k)
					if err != nil {
						t.Fatal(err)
					}
					if got < 1 || got > float64(count.NumBlocks()) {
						t.Fatalf("density(%v, k=%d) = %v outside [1, %d]", q, k, got, count.NumBlocks())
					}
				}
				prevCost := 0
				for _, k := range w.Ks {
					cost := knn.SelectCost(tree, q, k)
					if cost < prevCost {
						t.Fatalf("SelectCost(%v) decreased from %d to %d at k=%d", q, prevCost, cost, k)
					}
					prevCost = cost
				}
			}
			cm, err := core.BuildCatalogMerge(count, inner, 7, maxK)
			if err != nil {
				t.Fatal(err)
			}
			vg, err := core.BuildVirtualGrid(inner, 5, 5, maxK)
			if err != nil {
				t.Fatal(err)
			}
			joins := []core.JoinEstimator{core.NewBlockSample(count, inner, 7), cm, vg.Bind(count)}
			for _, est := range joins {
				prev := 0.0
				for _, k := range w.Ks {
					got, err := est.EstimateJoin(k)
					if err != nil {
						t.Fatal(err)
					}
					if got < prev {
						t.Fatalf("join estimate decreased from %v to %v at k=%d", prev, got, k)
					}
					prev = got
				}
			}
		})
	}
}

// TestStaircaseModeRelations: for any catalog-served query, the
// center+quadrant estimate never exceeds the center+corners estimate
// (they share the center cost and interpolation weight, and the quadrant
// corner's cost never exceeds the max-merged corners cost), the
// center-only estimate equals the center anchor's true cost, and both
// interpolating modes stay inside the convex hull of their anchor costs.
// The first two are exact in IEEE arithmetic (both interpolating modes
// share the center cost and the weight). The hull check allows a tiny
// relative slack: the rounded midpoint fl((min+max)/2) of a deep, narrow
// block (width ~1e-6 at coordinate ~1e2) is off by up to ~1e-14, which is
// ~1e-8 of the block width, so the weight 2L/diag can exceed 1 by that
// relative amount when the query sits in the block's far corner.
func TestStaircaseModeRelations(t *testing.T) {
	const maxK = 60
	for _, w := range testCorpus(t) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			tree := buildTree(t, w.Points, 32)
			build := func(m core.StaircaseMode) *core.Staircase {
				s, err := core.BuildStaircase(tree, core.StaircaseOptions{MaxK: maxK, Mode: m})
				if err != nil {
					t.Fatal(err)
				}
				return s
			}
			cc := build(core.ModeCenterCorners)
			co := build(core.ModeCenterOnly)
			quad := build(core.ModeCenterQuadrant)
			for _, q := range w.Queries {
				blk := oracle.FindBlock(tree, q)
				if blk == nil {
					continue // fallback path: all modes share it
				}
				for _, k := range w.Ks {
					if k > maxK {
						continue
					}
					eCC, err1 := cc.EstimateSelect(q, k)
					eCO, err2 := co.EstimateSelect(q, k)
					eQ, err3 := quad.EstimateSelect(q, k)
					if err1 != nil || err2 != nil || err3 != nil {
						t.Fatal(err1, err2, err3)
					}
					if eQ > eCC {
						t.Fatalf("quadrant > corners at %v k=%d: Quad=%v CC=%v", q, k, eQ, eCC)
					}
					cCenter := float64(oracle.SelectCost(tree, blk.Bounds.Center(), k))
					if eCO != cCenter {
						t.Fatalf("center-only(%v, k=%d) = %v, center anchor cost %v", q, k, eCO, cCenter)
					}
					cCorners := math.Inf(-1)
					for _, c := range blk.Bounds.Corners() {
						if cost := float64(oracle.SelectCost(tree, c, k)); cost > cCorners {
							cCorners = cost
						}
					}
					lo, hi := math.Min(cCenter, cCorners), math.Max(cCenter, cCorners)
					slack := 1e-6*(hi-lo) + 1e-12
					if eCC < lo-slack || eCC > hi+slack {
						t.Fatalf("corners estimate %v outside anchor hull [%v, %v] at %v k=%d", eCC, lo, hi, q, k)
					}
				}
			}
		})
	}
}

// TestScaleInvariance: scaling every coordinate by a power of two is
// lossless in IEEE doubles and commutes with every computation in the
// pipeline (splits, distances, interpolation weights), so costs and
// estimates must be bit-identical.
func TestScaleInvariance(t *testing.T) {
	const scale = 4.0
	w := testCorpus(t)[1]
	pts := w.Points[:300]
	scaled := make([]geom.Point, len(pts))
	for i, p := range pts {
		scaled[i] = geom.Point{X: p.X * scale, Y: p.Y * scale}
	}
	assertTransformInvariant(t, pts, scaled, w.Queries, func(q geom.Point) geom.Point {
		return geom.Point{X: q.X * scale, Y: q.Y * scale}
	})
}

// TestTranslationInvariance: with coordinates quantized to a dyadic
// lattice, translating by a power of two keeps every sum, midpoint and
// difference exact, so the transformed workload must produce bit-identical
// costs and estimates.
func TestTranslationInvariance(t *testing.T) {
	const shift = 256.0
	w := testCorpus(t)[0]
	pts := make([]geom.Point, 300)
	for i, p := range w.Points[:300] {
		pts[i] = quantize(p)
	}
	moved := make([]geom.Point, len(pts))
	for i, p := range pts {
		moved[i] = geom.Point{X: p.X + shift, Y: p.Y + shift}
	}
	queries := make([]geom.Point, len(w.Queries))
	for i, q := range w.Queries {
		queries[i] = quantize(q)
	}
	assertTransformInvariant(t, pts, moved, queries, func(q geom.Point) geom.Point {
		return geom.Point{X: q.X + shift, Y: q.Y + shift}
	})
}

// quantize snaps a coordinate to the 2^-10 lattice, on which sums and
// midpoints up to the quadtree's depth limit are exact.
func quantize(p geom.Point) geom.Point {
	return geom.Point{X: math.Round(p.X*1024) / 1024, Y: math.Round(p.Y*1024) / 1024}
}

// assertTransformInvariant builds the original and transformed datasets
// and checks that ground-truth costs and every select estimate agree
// exactly under the query transformation.
func assertTransformInvariant(t *testing.T, pts, transformed []geom.Point, queries []geom.Point, tq func(geom.Point) geom.Point) {
	t.Helper()
	const maxK = 50
	a := buildTree(t, pts, 16)
	b := buildTree(t, transformed, 16)
	if a.NumBlocks() != b.NumBlocks() {
		t.Fatalf("transformed tree has %d blocks, original %d", b.NumBlocks(), a.NumBlocks())
	}
	stairA, err := core.BuildStaircase(a, core.StaircaseOptions{MaxK: maxK})
	if err != nil {
		t.Fatal(err)
	}
	stairB, err := core.BuildStaircase(b, core.StaircaseOptions{MaxK: maxK})
	if err != nil {
		t.Fatal(err)
	}
	denA := core.NewDensityBased(a.CountTree())
	denB := core.NewDensityBased(b.CountTree())
	ks := []int{1, 3, 10, 31, maxK + 5}
	for _, q := range queries {
		for _, k := range ks {
			if got, want := knn.SelectCost(b, tq(q), k), knn.SelectCost(a, q, k); got != want {
				t.Fatalf("cost(%v, k=%d): transformed %d, original %d", q, k, got, want)
			}
			gotS, err1 := stairB.EstimateSelect(tq(q), k)
			wantS, err2 := stairA.EstimateSelect(q, k)
			if err1 != nil || err2 != nil || gotS != wantS {
				t.Fatalf("staircase(%v, k=%d): transformed %v,%v; original %v,%v", q, k, gotS, err1, wantS, err2)
			}
			gotD, err1 := denB.EstimateSelect(tq(q), k)
			wantD, err2 := denA.EstimateSelect(q, k)
			if err1 != nil || err2 != nil || gotD != wantD {
				t.Fatalf("density(%v, k=%d): transformed %v,%v; original %v,%v", q, k, gotD, err1, wantD, err2)
			}
		}
	}
}
