// Differential tests: every public estimation path of the repository is
// cross-checked against the brute-force oracle over the seeded corpus.
// Ground-truth costs, catalog contents, and estimator outputs are asserted
// with exact equality — the optimized paths and the oracle are required to
// compute the same numbers, not merely close ones.
package oracle_test

import (
	"context"
	"testing"

	"knncost/internal/core"
	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/knn"
	"knncost/internal/knnjoin"
	"knncost/internal/oracle"
	"knncost/internal/quadtree"
	"knncost/internal/rangeop"
)

// testCorpus is the shared differential corpus: small enough that the
// O(n^2) oracle stays fast, large enough that every workload splits into a
// multi-level tree.
func testCorpus(tb testing.TB) []oracle.Workload {
	tb.Helper()
	return oracle.Corpus(1, 600, 24)
}

func buildTree(tb testing.TB, pts []geom.Point, capacity int) *index.Tree {
	tb.Helper()
	t := quadtree.Build(pts, quadtree.Options{Capacity: capacity}).Index()
	if err := t.Validate(); err != nil {
		tb.Fatalf("invalid tree: %v", err)
	}
	return t
}

// TestSelectGroundTruthMatchesOracle pins the exact-equality invariants of
// the select side: knn.SelectCost (and its context variant) equals the
// literal simulation, and the distances returned by distance browsing and
// depth-first search equal the full-sort k-NN.
func TestSelectGroundTruthMatchesOracle(t *testing.T) {
	for _, w := range testCorpus(t) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			tree := buildTree(t, w.Points, 32)
			for _, q := range w.Queries {
				for _, k := range w.Ks {
					want := oracle.SelectCost(tree, q, k)
					if got := knn.SelectCost(tree, q, k); got != want {
						t.Fatalf("SelectCost(%v, k=%d) = %d, oracle %d", q, k, got, want)
					}
					got, err := knn.SelectCostContext(context.Background(), tree, q, k)
					if err != nil || got != want {
						t.Fatalf("SelectCostContext(%v, k=%d) = %d, %v; oracle %d", q, k, got, err, want)
					}
				}
				// Exact k-NN distances: browse and depth-first vs full sort.
				k := w.Ks[len(w.Ks)/2]
				wantDists := oracle.SelectKNNDists(w.Points, q, k)
				browse, _ := knn.Select(tree, q, k)
				df, _ := knn.SelectDF(tree, q, k)
				for name, got := range map[string][]knn.Neighbor{"browse": browse, "depthfirst": df} {
					if len(got) != len(wantDists) {
						t.Fatalf("%s(%v, k=%d) returned %d neighbors, oracle %d", name, q, k, len(got), len(wantDists))
					}
					for i, n := range got {
						if n.Dist != wantDists[i] {
							t.Fatalf("%s(%v, k=%d)[%d].Dist = %v, oracle %v", name, q, k, i, n.Dist, wantDists[i])
						}
					}
				}
			}
		})
	}
}

// TestSelectCatalogMatchesOracleCurve checks Procedure 1 against maxK
// independent literal simulations: the catalog's cost at every k must
// equal a from-scratch simulation at that k, including the
// whole-index-cost fill beyond the point count.
func TestSelectCatalogMatchesOracleCurve(t *testing.T) {
	w := testCorpus(t)[1] // clusters: uneven block occupancy
	tree := buildTree(t, w.Points[:120], 16)
	const maxK = 140 // beyond the 120 points: exercises the fill path
	anchors := []geom.Point{}
	for _, b := range tree.Blocks()[:min(4, tree.NumBlocks())] {
		anchors = append(anchors, b.Bounds.Center(), b.Bounds.Corners()[0])
	}
	anchors = append(anchors, w.Queries[:4]...)
	for _, a := range anchors {
		cat := core.BuildSelectCatalog(tree, a, maxK)
		curve := oracle.SelectCostCurve(tree, a, maxK)
		for k := 1; k <= maxK; k++ {
			got, ok := cat.Lookup(k)
			if !ok {
				t.Fatalf("catalog(%v) missing k=%d", a, k)
			}
			if got != curve[k-1] {
				t.Fatalf("catalog(%v).Lookup(%d) = %d, oracle %d", a, k, got, curve[k-1])
			}
		}
	}
}

// TestJoinGroundTruthMatchesOracle pins the join side: locality sizes,
// Procedure 2 catalogs, and knnjoin.Cost(Context) all equal the literal
// two-phase simulation. k = 0 is included: its locality (and hence cost)
// must be empty, consistent with knnjoin.Join.
func TestJoinGroundTruthMatchesOracle(t *testing.T) {
	ws := testCorpus(t)
	for i := range ws {
		outerW, innerW := ws[i], ws[(i+1)%len(ws)]
		t.Run(outerW.Name+"_join_"+innerW.Name, func(t *testing.T) {
			t.Parallel()
			outer := buildTree(t, outerW.Points, 32).CountTree()
			inner := buildTree(t, innerW.Points, 32).CountTree()
			for _, k := range []int{0, 1, 3, 17, 64} {
				want := oracle.JoinCost(outer, inner, k)
				if got := knnjoin.Cost(outer, inner, k); got != want {
					t.Fatalf("Cost(k=%d) = %d, oracle %d", k, got, want)
				}
				got, err := knnjoin.CostContext(context.Background(), outer, inner, k)
				if err != nil || got != want {
					t.Fatalf("CostContext(k=%d) = %d, %v; oracle %d", k, got, err, want)
				}
			}
			if got := knnjoin.Cost(outer, inner, 0); got != 0 {
				t.Fatalf("Cost(k=0) = %d, want 0", got)
			}
			// Procedure 2 vs independent per-k simulations, on a few origins.
			const maxK = 80
			for _, b := range outer.Blocks()[:min(3, outer.NumBlocks())] {
				if knnjoin.LocalitySize(inner, b.Bounds, 5) != oracle.LocalitySize(inner, b.Bounds, 5) {
					t.Fatalf("LocalitySize mismatch at origin %v", b.Bounds)
				}
				cat := core.BuildLocalityCatalog(inner, b.Bounds, maxK)
				curve := oracle.LocalityCurve(inner, b.Bounds, maxK)
				for k := 1; k <= maxK; k++ {
					got, ok := cat.Lookup(k)
					if !ok || got != curve[k-1] {
						t.Fatalf("locality catalog(%v).Lookup(%d) = %d,%v; oracle %d", b.Bounds, k, got, ok, curve[k-1])
					}
				}
			}
		})
	}
}

// TestRangeMatchesOracle pins the range operator: selected point count and
// block cost equal the brute-force linear scans.
func TestRangeMatchesOracle(t *testing.T) {
	w := testCorpus(t)[0]
	tree := buildTree(t, w.Points, 32)
	b := tree.Bounds()
	rects := []geom.Rect{
		b,
		geom.NewRect(b.Min.X, b.Min.Y, b.Min.X+b.Width()/3, b.Min.Y+b.Height()/3),
		geom.NewRect(-10, -10, 25, 40),
		geom.NewRect(b.Max.X+1, b.Max.Y+1, b.Max.X+2, b.Max.Y+2), // disjoint
		{Min: w.Points[0], Max: w.Points[0]},                     // degenerate
	}
	for _, r := range rects {
		pts, blocks := rangeop.Select(tree, r)
		if want := oracle.RangeCount(w.Points, r); len(pts) != want {
			t.Errorf("Select(%v) returned %d points, oracle %d", r, len(pts), want)
		}
		if want := oracle.RangeBlockCost(tree, r); blocks != want {
			t.Errorf("Select(%v) scanned %d blocks, oracle %d", r, blocks, want)
		}
		if got, want := rangeop.Cost(tree.CountTree(), r), oracle.RangeBlockCost(tree, r); got != want {
			t.Errorf("Cost(%v) = %d, oracle %d", r, got, want)
		}
	}
}

// staircaseModes pairs the optimized modes with their oracle mirrors.
var staircaseModes = []struct {
	name   string
	core   core.StaircaseMode
	oracle oracle.StaircaseMode
}{
	{"center_corners", core.ModeCenterCorners, oracle.ModeCenterCorners},
	{"center_only", core.ModeCenterOnly, oracle.ModeCenterOnly},
	{"center_quadrant", core.ModeCenterQuadrant, oracle.ModeCenterQuadrant},
}

// TestEstimatorsMatchOracleReferences asserts exact (bitwise) equality
// between every estimator's output and the oracle's slow-way reference:
// same anchors, same interpolation arithmetic, but literal simulations and
// naive traversal instead of catalogs and heaps. Fallback paths (k > MaxK,
// query outside the index) are covered by the corpus's k sweep and
// outside-MBR queries.
func TestEstimatorsMatchOracleReferences(t *testing.T) {
	const maxK = 40
	for _, w := range testCorpus(t) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			tree := buildTree(t, w.Points, 32)
			count := tree.CountTree()
			density := core.NewDensityBased(count)
			fallback := func(q geom.Point, k int) (float64, error) {
				return oracle.DensityEstimate(count, q, k)
			}
			for _, m := range staircaseModes {
				stair, err := core.BuildStaircase(tree, core.StaircaseOptions{MaxK: maxK, Mode: m.core})
				if err != nil {
					t.Fatal(err)
				}
				for _, q := range w.Queries {
					for _, k := range append(w.Ks, maxK+9) {
						got, gotErr := stair.EstimateSelect(q, k)
						want, wantErr := oracle.StaircaseEstimate(tree, m.oracle, q, k, maxK, fallback)
						if (gotErr != nil) != (wantErr != nil) {
							t.Fatalf("%s(%v, k=%d) err %v, oracle err %v", m.name, q, k, gotErr, wantErr)
						}
						if got != want {
							t.Fatalf("%s(%v, k=%d) = %v, oracle %v", m.name, q, k, got, want)
						}
					}
				}
			}
			for _, q := range w.Queries {
				for _, k := range w.Ks {
					got, err := density.EstimateSelect(q, k)
					want, wantErr := oracle.DensityEstimate(count, q, k)
					if err != nil || wantErr != nil || got != want {
						t.Fatalf("density(%v, k=%d) = %v,%v; oracle %v,%v", q, k, got, err, want, wantErr)
					}
				}
			}
		})
	}
}

// TestJoinEstimatorsMatchOracleReferences does the same for the three join
// estimators, including the k > MaxK clamping path.
func TestJoinEstimatorsMatchOracleReferences(t *testing.T) {
	const (
		maxK   = 60
		sample = 7
		gridN  = 5
	)
	ws := testCorpus(t)
	for i := range ws {
		outerW, innerW := ws[i], ws[(i+1)%len(ws)]
		t.Run(outerW.Name+"_join_"+innerW.Name, func(t *testing.T) {
			t.Parallel()
			outer := buildTree(t, outerW.Points, 32).CountTree()
			inner := buildTree(t, innerW.Points, 32).CountTree()
			bs := core.NewBlockSample(outer, inner, sample)
			cm, err := core.BuildCatalogMerge(outer, inner, sample, maxK)
			if err != nil {
				t.Fatal(err)
			}
			vg, err := core.BuildVirtualGrid(inner, gridN, gridN, maxK)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 2, 9, 33, maxK, maxK + 11} {
				got, err := bs.EstimateJoin(k)
				want, wantErr := oracle.BlockSampleEstimate(outer, inner, sample, k)
				if err != nil || wantErr != nil || got != want {
					t.Fatalf("blocksample(k=%d) = %v,%v; oracle %v,%v", k, got, err, want, wantErr)
				}
				got, err = cm.EstimateJoin(k)
				want, wantErr = oracle.CatalogMergeEstimate(outer, inner, sample, maxK, k)
				if err != nil || wantErr != nil || got != want {
					t.Fatalf("catalogmerge(k=%d) = %v,%v; oracle %v,%v", k, got, err, want, wantErr)
				}
				got, err = vg.EstimateJoin(outer, k)
				want, wantErr = oracle.VirtualGridEstimate(outer, inner, gridN, gridN, maxK, k)
				if err != nil || wantErr != nil || got != want {
					t.Fatalf("virtualgrid(k=%d) = %v,%v; oracle %v,%v", k, got, err, want, wantErr)
				}
			}
		})
	}
}

// TestBatchMatchesSequential pins batch == sequential and context ==
// non-context for the batch APIs, including error propagation (a k=0
// query must carry the same error text either way).
func TestBatchMatchesSequential(t *testing.T) {
	w := testCorpus(t)[2]
	tree := buildTree(t, w.Points, 32)
	stair, err := core.BuildStaircase(tree, core.StaircaseOptions{MaxK: 50})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]core.SelectQuery, 0, len(w.Queries)+1)
	for i, q := range w.Queries {
		queries = append(queries, core.SelectQuery{Point: q, K: w.Ks[i%len(w.Ks)]})
	}
	queries = append(queries, core.SelectQuery{Point: w.Queries[0], K: 0}) // per-query error
	sequential := make([]core.SelectResult, len(queries))
	for i, q := range queries {
		blocks, err := stair.EstimateSelect(q.Point, q.K)
		sequential[i] = core.SelectResult{Blocks: blocks, Err: err}
	}
	check := func(name string, got []core.SelectResult) {
		t.Helper()
		if len(got) != len(sequential) {
			t.Fatalf("%s returned %d results, want %d", name, len(got), len(sequential))
		}
		for i := range got {
			if got[i].Blocks != sequential[i].Blocks {
				t.Fatalf("%s[%d].Blocks = %v, sequential %v", name, i, got[i].Blocks, sequential[i].Blocks)
			}
			gotErr, wantErr := got[i].Err, sequential[i].Err
			if (gotErr != nil) != (wantErr != nil) || (gotErr != nil && gotErr.Error() != wantErr.Error()) {
				t.Fatalf("%s[%d].Err = %v, sequential %v", name, i, gotErr, wantErr)
			}
		}
	}
	for _, par := range []int{0, 1, 4} {
		check("batch", core.EstimateSelectBatch(stair, queries, par))
		results, err := core.EstimateSelectBatchContext(context.Background(), stair, queries, par)
		if err != nil {
			t.Fatalf("batch context: %v", err)
		}
		check("batch_context", results)
	}
}
