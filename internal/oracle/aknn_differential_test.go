// Differential tests for the bounds-only AkNN join (internal/aknn): join
// results, ground-truth costs, and the aknn-bounds estimator are all
// cross-checked against the brute-force references in aknn.go (this
// package) with exact equality over the seeded corpus.
package oracle_test

import (
	"context"
	"sort"
	"testing"

	"knncost/internal/aknn"
	"knncost/internal/geom"
	"knncost/internal/oracle"
)

// aknnJoinKs are the k values the AkNN differential suite sweeps: the k<1
// guard, small and mid k, and (with the 600-point corpus and k=700 added
// where noted) k past the relation size.
var aknnJoinKs = []int{0, 1, 3, 17, 64}

// sortPairGroup canonicalizes one outer point's neighbor list by
// (distance, X, Y). Any exact AkNN join must produce the same multiset of
// neighbors per outer point; only the choice among points at exactly the
// k-th distance is free, and those are indistinguishable after this sort
// precisely when they have equal coordinates too — which the oracle's own
// tie-break mirrors.
func sortPairGroup(g []aknn.Pair) {
	sort.Slice(g, func(i, j int) bool {
		if g[i].Distance != g[j].Distance {
			return g[i].Distance < g[j].Distance
		}
		if g[i].Inner.X != g[j].Inner.X {
			return g[i].Inner.X < g[j].Inner.X
		}
		return g[i].Inner.Y < g[j].Inner.Y
	})
}

// TestAknnJoinResultsMatchBruteForce is the join-result differential: the
// bounds-only join's output, grouped per outer point and canonicalized,
// must equal the full-sort brute force pair for pair.
func TestAknnJoinResultsMatchBruteForce(t *testing.T) {
	ws := testCorpus(t)
	for i, w := range ws {
		w, innerW := w, ws[(i+1)%len(ws)]
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			outer := buildTree(t, w.Points, 32)
			inner := buildTree(t, innerW.Points, 32)
			for _, k := range []int{0, 1, 3, 17, len(innerW.Points) + 100} {
				var pairs []aknn.Pair
				stats := aknn.Join(outer, inner, k, func(p aknn.Pair) { pairs = append(pairs, p) })
				if k < 1 {
					if len(pairs) != 0 || stats.PointsScanned != 0 {
						t.Fatalf("k=%d emitted %d pairs, scanned %d points", k, len(pairs), stats.PointsScanned)
					}
					continue
				}
				if want := aknn.Cost(outer, inner, k); stats.PointsScanned != want {
					t.Fatalf("k=%d: Stats.PointsScanned = %d, Cost %d", k, stats.PointsScanned, want)
				}
				group := k
				if n := len(innerW.Points); n < group {
					group = n
				}
				if len(pairs) != len(w.Points)*group {
					t.Fatalf("k=%d: %d pairs, want %d points x %d neighbors", k, len(pairs), len(w.Points), group)
				}
				for g := 0; g < len(pairs); g += group {
					chunk := append([]aknn.Pair(nil), pairs[g:g+group]...)
					q := chunk[0].Outer
					for _, p := range chunk {
						if p.Outer != q {
							t.Fatalf("k=%d: group at %d mixes outer points %v and %v", k, g, q, p.Outer)
						}
					}
					sortPairGroup(chunk)
					want := oracle.AknnNeighbors(innerW.Points, q, k)
					for j, p := range chunk {
						if p.Inner != want[j] {
							t.Fatalf("k=%d outer %v neighbor %d: got %v (d=%v), brute force %v",
								k, q, j, p.Inner, p.Distance, want[j])
						}
						if p.Distance != q.Dist(p.Inner) {
							t.Fatalf("k=%d outer %v neighbor %d: recorded distance %v != recomputed %v",
								k, q, j, p.Distance, q.Dist(p.Inner))
						}
					}
				}
			}
		})
	}
}

// TestAknnCostMatchesOracle pins the ground-truth cost and its context
// variant against the order-independent O(n^2) reference, on Count-Indexes
// like every production call site.
func TestAknnCostMatchesOracle(t *testing.T) {
	ws := testCorpus(t)
	for i, w := range ws {
		w, innerW := w, ws[(i+1)%len(ws)]
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			outer := buildTree(t, w.Points, 32).CountTree()
			inner := buildTree(t, innerW.Points, 32).CountTree()
			for _, k := range append(aknnJoinKs, len(innerW.Points)+1) {
				want := oracle.AknnJoinCost(outer, inner, k)
				if got := aknn.Cost(outer, inner, k); got != want {
					t.Fatalf("Cost(k=%d) = %d, oracle %d", k, got, want)
				}
				got, err := aknn.CostContext(context.Background(), outer, inner, k)
				if err != nil || got != want {
					t.Fatalf("CostContext(k=%d) = %d, %v; oracle %d", k, got, err, want)
				}
				// k past the relation size prunes nothing: every non-empty
				// outer block scans the whole inner relation.
				if k > len(innerW.Points) {
					nonEmpty := 0
					for _, b := range outer.Blocks() {
						if b.Count > 0 {
							nonEmpty++
						}
					}
					if want != nonEmpty*len(innerW.Points) {
						t.Fatalf("k=%d > N: oracle cost %d, want %d blocks x %d points",
							k, want, nonEmpty, len(innerW.Points))
					}
				}
			}
		})
	}
}

// TestAknnScanSetMatchesOracle checks the per-origin scan set against the
// reference count, from both data blocks and arbitrary query rectangles.
func TestAknnScanSetMatchesOracle(t *testing.T) {
	ws := testCorpus(t)
	for i, w := range ws {
		w, innerW := w, ws[(i+1)%len(ws)]
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			inner := buildTree(t, innerW.Points, 32)
			outer := buildTree(t, w.Points, 32)
			origins := []geom.Rect{inner.Bounds()}
			for _, b := range outer.Blocks() {
				origins = append(origins, b.Bounds)
			}
			for _, from := range origins {
				for _, k := range aknnJoinKs {
					pts := 0
					for _, b := range aknn.ScanSet(inner, from, k) {
						pts += b.Count
					}
					if want := oracle.AknnScanCount(inner, from, k); pts != want {
						t.Fatalf("ScanSet(%v, k=%d) holds %d points, oracle %d", from, k, pts, want)
					}
				}
			}
		})
	}
}

// TestAknnBoundsEstimateMatchesOracle pins the sampled estimator against
// its slow reference, and the full-sample estimator against exact cost.
func TestAknnBoundsEstimateMatchesOracle(t *testing.T) {
	ws := testCorpus(t)
	for i, w := range ws {
		w, innerW := w, ws[(i+1)%len(ws)]
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			outer := buildTree(t, w.Points, 32).CountTree()
			inner := buildTree(t, innerW.Points, 32).CountTree()
			sum := aknn.BuildSummary(inner)
			for _, sampleSize := range []int{7, 0} {
				est := sum.Bind(outer, sampleSize)
				for _, k := range aknnJoinKs {
					got, err := est.EstimateJoin(k)
					want, wantErr := oracle.AknnBoundsEstimate(outer, inner, sampleSize, k)
					if (err == nil) != (wantErr == nil) || got != want {
						t.Fatalf("s=%d: EstimateJoin(k=%d) = %v, %v; oracle %v, %v",
							sampleSize, k, got, err, want, wantErr)
					}
					if sampleSize <= 0 && k >= 1 {
						if exact := aknn.Cost(outer, inner, k); got != float64(exact) {
							t.Fatalf("full-sample estimate(k=%d) = %v, exact cost %d", k, got, exact)
						}
					}
				}
			}
		})
	}
}
