// Self-tests of the oracle against hand-computed answers on a fixture
// small enough to verify on paper. An oracle that cross-checks the
// optimized code is only as trustworthy as these.
package oracle_test

import (
	"math"
	"testing"

	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/oracle"
)

// fixtureTree is three leaf blocks on a shelf:
//
//	A [0,1]x[0,1]  points (0.1,0.1), (0.2,0.1)
//	B [1,2]x[0,1]  point  (1.5,0.5)
//	C [3,4]x[0,1]  point  (3.5,0.5)
func fixtureTree() *index.Tree {
	leaf := func(r geom.Rect, pts ...geom.Point) *index.Node {
		return &index.Node{Bounds: r, Block: &index.Block{Bounds: r, Points: pts, Count: len(pts)}}
	}
	root := &index.Node{
		Bounds: geom.NewRect(0, 0, 4, 1),
		Children: []*index.Node{
			leaf(geom.NewRect(0, 0, 1, 1), geom.Point{X: 0.1, Y: 0.1}, geom.Point{X: 0.2, Y: 0.1}),
			leaf(geom.NewRect(1, 0, 2, 1), geom.Point{X: 1.5, Y: 0.5}),
			leaf(geom.NewRect(3, 0, 4, 1), geom.Point{X: 3.5, Y: 0.5}),
		},
	}
	return index.New(root, true)
}

func TestOracleSelectCostByHand(t *testing.T) {
	tree := fixtureTree()
	q := geom.Point{X: 0.1, Y: 0.1}
	// k=1,2: both nearest points live in A and are closer than B's MINDIST
	// (0.9), so only A is scanned. k=3: the third neighbor is in B
	// (dist ~1.46 < C's MINDIST 2.9), so A and B are scanned. k=4 and
	// beyond: everything.
	for k, want := range map[int]int{1: 1, 2: 1, 3: 2, 4: 3, 9: 3} {
		if got := oracle.SelectCost(tree, q, k); got != want {
			t.Errorf("SelectCost(k=%d) = %d, want %d", k, got, want)
		}
	}
	if got := oracle.SelectCost(tree, q, 0); got != 0 {
		t.Errorf("SelectCost(k=0) = %d, want 0", got)
	}
}

func TestOracleLocalityByHand(t *testing.T) {
	tree := fixtureTree()
	from := geom.NewRect(0, 0, 1, 1) // A's bounds as join origin
	// k=2: phase 1 consumes A alone (2 points), MAXDIST = sqrt(2).
	// Phase 2 adds B (MINDIST 0, touching) and stops at C (MINDIST 2).
	if got := oracle.LocalitySize(tree, from, 2); got != 2 {
		t.Errorf("LocalitySize(k=2) = %d, want 2", got)
	}
	// k=3: phase 1 consumes A and B; MAXDIST to B = sqrt(4+1). C's
	// MINDIST 2 <= sqrt(5), so the locality is all three blocks.
	if got := oracle.LocalitySize(tree, from, 3); got != 3 {
		t.Errorf("LocalitySize(k=3) = %d, want 3", got)
	}
	// k=5 exceeds the 4 points: every block.
	if got := oracle.LocalitySize(tree, from, 5); got != 3 {
		t.Errorf("LocalitySize(k=5) = %d, want 3", got)
	}
	if got := oracle.LocalitySize(tree, from, 0); got != 0 {
		t.Errorf("LocalitySize(k=0) = %d, want 0", got)
	}
	// JoinCost at k=2: origin A has locality 2 (above). Origin B: A pops
	// first (MINDIST 0, earlier insertion) and alone holds 2 points;
	// MAXDIST to A = sqrt(4+1), so B and C (MINDISTs 0 and 1) both join:
	// 3. Origin C: C then B cover 2 points; MAXDIST to B = sqrt(9+1), A's
	// MINDIST 2 <= sqrt(10): 3. Total 8.
	if got := oracle.JoinCost(tree, tree, 2); got != 8 {
		t.Errorf("JoinCost(k=2) = %d, want 8", got)
	}
}

func TestOracleExactResultsByHand(t *testing.T) {
	tree := fixtureTree()
	pts := oracle.Points(tree)
	if len(pts) != 4 {
		t.Fatalf("Points returned %d points, want 4", len(pts))
	}
	q := geom.Point{X: 0.1, Y: 0.1}
	dists := oracle.SelectKNNDists(pts, q, 3)
	want := []float64{0, 0.1, math.Sqrt(1.4*1.4 + 0.4*0.4)}
	if len(dists) != len(want) {
		t.Fatalf("SelectKNNDists returned %d values, want %d", len(dists), len(want))
	}
	for i := range want {
		if math.Abs(dists[i]-want[i]) > 1e-12 {
			t.Errorf("dists[%d] = %v, want %v", i, dists[i], want[i])
		}
	}
	if got := oracle.RangeCount(pts, geom.NewRect(0, 0, 1.6, 1)); got != 3 {
		t.Errorf("RangeCount = %d, want 3", got)
	}
	if got := oracle.RangeBlockCost(tree, geom.NewRect(0.5, 0, 2.5, 1)); got != 2 {
		t.Errorf("RangeBlockCost = %d, want 2", got)
	}
	if blk := oracle.FindBlock(tree, geom.Point{X: 1, Y: 0.5}); blk == nil || blk.ID != 0 {
		t.Errorf("FindBlock on shared boundary = %v, want block 0", blk)
	}
	if blk := oracle.FindBlock(tree, geom.Point{X: 2.5, Y: 0.5}); blk != nil {
		t.Errorf("FindBlock in the gap = block %d, want nil", blk.ID)
	}
	if blk := oracle.FindBlock(tree, geom.Point{X: 9, Y: 9}); blk != nil {
		t.Errorf("FindBlock outside bounds = block %d, want nil", blk.ID)
	}
}

func TestOracleDensityByHand(t *testing.T) {
	tree := fixtureTree()
	// k=1 at A's center: A alone has density 2, radius sqrt(1/(2*pi))
	// ~0.4; the next block (B, MINDIST 0.4... no: from (0.5,0.5) B's
	// MINDIST is 0.5 > radius) -- so one block.
	got, err := oracle.DensityEstimate(tree, geom.Point{X: 0.5, Y: 0.5}, 1)
	if err != nil || got != 1 {
		t.Errorf("DensityEstimate(center A, k=1) = %v, %v; want 1", got, err)
	}
	// k larger than the population: every block.
	got, err = oracle.DensityEstimate(tree, geom.Point{X: 0.5, Y: 0.5}, 99)
	if err != nil || got != 3 {
		t.Errorf("DensityEstimate(k=99) = %v, %v; want 3", got, err)
	}
	if _, err := oracle.DensityEstimate(tree, geom.Point{}, 0); err == nil {
		t.Error("DensityEstimate(k=0) did not fail")
	}
}
