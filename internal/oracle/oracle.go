// Package oracle provides small, obviously-correct brute-force reference
// implementations of every quantity knncost estimates or measures: exact
// k-NN by full sort, exact range counts, block-scan costs by literal
// simulation of the distance-browsing and locality-join algorithms, and
// reference staircase / density / block-sample / catalog-merge /
// virtual-grid estimates computed the slow way.
//
// The package deliberately shares nothing with the optimized paths beyond
// the interchange types (geom.Point/Rect, index.Tree): distances are
// recomputed from first principles with a clamp formulation, and the
// best-first traversal uses a plain slice with a linear scan for the
// minimum instead of a binary heap. The only semantic the oracle copies
// from the implementation under test is its documented determinism
// contract: internal/pqueue breaks priority ties by insertion order
// (FIFO), so the oracle's frontier breaks ties by an insertion counter
// too. With that, ground-truth block counts and estimator outputs are
// reproduced exactly — the differential tests assert equality, not
// approximate agreement.
package oracle

import (
	"errors"
	"math"
	"sort"

	"knncost/internal/geom"
	"knncost/internal/index"
)

// ---------------------------------------------------------------------------
// Distance arithmetic, recomputed from first principles.
//
// The expressions intentionally perform the same IEEE operations in the
// same order as internal/geom (subtract, square, add, sqrt), so that a
// value computed here is bit-identical to the optimized one; the clamp
// formulation below is an independent derivation of MINDIST, not a copy of
// geom's axis-gap switch.
// ---------------------------------------------------------------------------

// pointDist is the Euclidean distance between two points.
func pointDist(a, b geom.Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// clamp returns v limited to [lo, hi].
func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// minDistPointRect is the distance from p to the nearest point of r: the
// distance to p's clamped projection onto r. Zero when p is inside r.
func minDistPointRect(p geom.Point, r geom.Rect) float64 {
	dx := p.X - clamp(p.X, r.Min.X, r.Max.X)
	dy := p.Y - clamp(p.Y, r.Min.Y, r.Max.Y)
	return math.Sqrt(dx*dx + dy*dy)
}

// maxDistPointRect is the distance from p to the farthest corner of r.
func maxDistPointRect(p geom.Point, r geom.Rect) float64 {
	dx := math.Max(math.Abs(p.X-r.Min.X), math.Abs(p.X-r.Max.X))
	dy := math.Max(math.Abs(p.Y-r.Min.Y), math.Abs(p.Y-r.Max.Y))
	return math.Sqrt(dx*dx + dy*dy)
}

// intervalGap is the distance between the closed intervals [alo,ahi] and
// [blo,bhi]; zero when they overlap.
func intervalGap(alo, ahi, blo, bhi float64) float64 {
	return math.Max(0, math.Max(blo-ahi, alo-bhi))
}

// minDistRectRect is the smallest distance between any point of a and any
// point of b; zero when they intersect.
func minDistRectRect(a, b geom.Rect) float64 {
	dx := intervalGap(a.Min.X, a.Max.X, b.Min.X, b.Max.X)
	dy := intervalGap(a.Min.Y, a.Max.Y, b.Min.Y, b.Max.Y)
	return math.Sqrt(dx*dx + dy*dy)
}

// maxDistRectRect is the largest distance between any point of a and any
// point of b: the widest corner-to-corner span along each axis.
func maxDistRectRect(a, b geom.Rect) float64 {
	dx := math.Max(a.Max.X-b.Min.X, b.Max.X-a.Min.X)
	dy := math.Max(a.Max.Y-b.Min.Y, b.Max.Y-a.Min.Y)
	return math.Sqrt(dx*dx + dy*dy)
}

// contains reports whether r contains p, boundary inclusive.
func contains(r geom.Rect, p geom.Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// intersects reports whether the closed rectangles a and b share a point.
func intersects(a, b geom.Rect) bool {
	return a.Min.X <= b.Max.X && b.Min.X <= a.Max.X &&
		a.Min.Y <= b.Max.Y && b.Min.Y <= a.Max.Y
}

// rectCenter is the center of r, computed with the same expression the
// staircase estimator uses.
func rectCenter(r geom.Rect) geom.Point {
	return geom.Point{X: (r.Min.X + r.Max.X) / 2, Y: (r.Min.Y + r.Max.Y) / 2}
}

// rectDiagonal is the diagonal length of r.
func rectDiagonal(r geom.Rect) float64 {
	w, h := r.Max.X-r.Min.X, r.Max.Y-r.Min.Y
	return math.Sqrt(w*w + h*h)
}

// ---------------------------------------------------------------------------
// The naive best-first frontier.
// ---------------------------------------------------------------------------

// frontier is the oracle's best-first traversal state: a plain slice of
// (node, distance, insertion-sequence) entries. Popping scans the whole
// slice for the entry with the smallest (distance, sequence) — O(n) on
// purpose, so its correctness is evident. The FIFO tie-break mirrors the
// documented determinism contract of internal/pqueue; everything else is
// independent.
type frontier struct {
	minDist func(geom.Rect) float64
	entries []frontierEntry
	nextSeq int
}

type frontierEntry struct {
	node *index.Node
	dist float64
	seq  int
}

// newPointFrontier starts a traversal of t ordered by MINDIST from q.
func newPointFrontier(t *index.Tree, q geom.Point) *frontier {
	return newFrontier(t, func(r geom.Rect) float64 { return minDistPointRect(q, r) })
}

// newRectFrontier starts a traversal of t ordered by MINDIST from the
// rectangle origin.
func newRectFrontier(t *index.Tree, from geom.Rect) *frontier {
	return newFrontier(t, func(r geom.Rect) float64 { return minDistRectRect(from, r) })
}

func newFrontier(t *index.Tree, minDist func(geom.Rect) float64) *frontier {
	f := &frontier{minDist: minDist}
	if t.Root() != nil {
		f.push(t.Root())
	}
	return f
}

func (f *frontier) push(n *index.Node) {
	f.entries = append(f.entries, frontierEntry{node: n, dist: f.minDist(n.Bounds), seq: f.nextSeq})
	f.nextSeq++
}

// headIndex returns the index of the entry with the smallest
// (dist, seq), or -1 when the frontier is empty.
func (f *frontier) headIndex() int {
	best := -1
	for i := range f.entries {
		if best < 0 ||
			f.entries[i].dist < f.entries[best].dist ||
			(f.entries[i].dist == f.entries[best].dist && f.entries[i].seq < f.entries[best].seq) {
			best = i
		}
	}
	return best
}

// peekDist returns the smallest distance on the frontier — a lower bound
// on the next block's MINDIST, exactly like index.Scan.PeekDist.
func (f *frontier) peekDist() (float64, bool) {
	i := f.headIndex()
	if i < 0 {
		return 0, false
	}
	return f.entries[i].dist, true
}

// nextBlock pops entries, expanding internal nodes (children pushed in
// child order), until a leaf surfaces; it returns that block and its
// MINDIST, or ok=false when the tree is exhausted.
func (f *frontier) nextBlock() (*index.Block, float64, bool) {
	for {
		i := f.headIndex()
		if i < 0 {
			return nil, 0, false
		}
		e := f.entries[i]
		f.entries = append(f.entries[:i], f.entries[i+1:]...)
		if e.node.IsLeaf() {
			return e.node.Block, e.dist, true
		}
		for _, c := range e.node.Children {
			f.push(c)
		}
	}
}

// ---------------------------------------------------------------------------
// Exact results: k-NN by full sort, range counts.
// ---------------------------------------------------------------------------

// SelectKNNDists returns the distances from q to its k nearest points of
// pts in ascending order, computed by sorting every distance. Fewer than k
// values are returned when pts is smaller than k.
func SelectKNNDists(pts []geom.Point, q geom.Point, k int) []float64 {
	if k < 0 {
		k = 0
	}
	dists := make([]float64, len(pts))
	for i, p := range pts {
		dists[i] = pointDist(q, p)
	}
	sort.Float64s(dists)
	if k < len(dists) {
		dists = dists[:k]
	}
	return dists
}

// RangeCount returns the number of points of pts inside r, boundary
// inclusive.
func RangeCount(pts []geom.Point, r geom.Rect) int {
	n := 0
	for _, p := range pts {
		if contains(r, p) {
			n++
		}
	}
	return n
}

// RangeBlockCost returns the number of leaf blocks of t whose bounds
// intersect r — the exact cost of a range select — by a linear scan over
// every block.
func RangeBlockCost(t *index.Tree, r geom.Rect) int {
	n := 0
	for _, b := range t.Blocks() {
		if intersects(b.Bounds, r) {
			n++
		}
	}
	return n
}

// Points returns every point stored in t, in block order.
func Points(t *index.Tree) []geom.Point {
	out := make([]geom.Point, 0, t.NumPoints())
	for _, b := range t.Blocks() {
		out = append(out, b.Points...)
	}
	return out
}

// FindBlock returns the lowest-ID leaf block of t containing p, or nil —
// the brute-force counterpart of Tree.Find / ptloc.Grid.Find on a
// partitioning index.
func FindBlock(t *index.Tree, p geom.Point) *index.Block {
	if t.Root() == nil || !contains(t.Root().Bounds, p) {
		return nil
	}
	for _, b := range t.Blocks() {
		if contains(b.Bounds, p) {
			return b
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Ground-truth block-scan costs by literal simulation.
// ---------------------------------------------------------------------------

// SelectCost returns the number of blocks distance browsing scans to
// answer a k-NN-Select of q over t, by literally simulating the
// algorithm: a block is scanned only when no already-read point is at
// least as close as the frontier's lower bound (ties favor the point,
// matching the <= in knn.Browser).
func SelectCost(t *index.Tree, q geom.Point, k int) int {
	f := newPointFrontier(t, q)
	var tuples []float64 // distances of read-but-unreturned points
	scanned, returned := 0, 0
	for returned < k {
		ti := minFloatIndex(tuples)
		blockDist, haveBlock := f.peekDist()
		switch {
		case ti < 0 && !haveBlock:
			return scanned
		case ti >= 0 && (!haveBlock || tuples[ti] <= blockDist):
			tuples = append(tuples[:ti], tuples[ti+1:]...)
			returned++
		default:
			blk, _, _ := f.nextBlock()
			scanned++
			for _, p := range blk.Points {
				tuples = append(tuples, pointDist(q, p))
			}
		}
	}
	return scanned
}

// minFloatIndex returns the index of the smallest value, or -1 when s is
// empty.
func minFloatIndex(s []float64) int {
	best := -1
	for i, v := range s {
		if best < 0 || v < s[best] {
			best = i
		}
	}
	return best
}

// SelectCostCurve returns curve[k-1] = SelectCost(t, q, k) for every k in
// [1, maxK], by maxK independent simulations — the slow way on purpose, so
// the curve does not inherit any prefix-sharing assumption from
// Procedure 1.
func SelectCostCurve(t *index.Tree, q geom.Point, maxK int) []int {
	curve := make([]int, maxK)
	for k := 1; k <= maxK; k++ {
		curve[k-1] = SelectCost(t, q, k)
	}
	return curve
}

// LocalitySize returns the number of inner blocks in the locality of the
// origin rectangle, by literally simulating the two phases of the
// locality-based join (Figure 6 of the paper): accumulate blocks in
// MINDIST order until they jointly hold k points, mark the highest MAXDIST
// M, then include every further block with MINDIST <= M. The locality of
// k < 1 is empty. When inner holds fewer than k points the locality is
// every block.
func LocalitySize(inner *index.Tree, from geom.Rect, k int) int {
	if k < 1 {
		return 0
	}
	f := newRectFrontier(inner, from)
	size, count := 0, 0
	maxDist := 0.0
	for count < k {
		blk, _, ok := f.nextBlock()
		if !ok {
			return size
		}
		size++
		count += blk.Count
		if d := maxDistRectRect(from, blk.Bounds); d > maxDist {
			maxDist = d
		}
	}
	for {
		_, minDist, ok := f.nextBlock()
		if !ok || minDist > maxDist {
			return size
		}
		size++
	}
}

// LocalityCurve returns curve[k-1] = LocalitySize(inner, from, k) for
// every k in [1, maxK], by independent simulations.
func LocalityCurve(inner *index.Tree, from geom.Rect, maxK int) []int {
	curve := make([]int, maxK)
	for k := 1; k <= maxK; k++ {
		curve[k-1] = LocalitySize(inner, from, k)
	}
	return curve
}

// JoinCost returns the ground-truth cost of (outer ⋉_knn inner): the sum
// of locality sizes over the non-empty outer blocks.
func JoinCost(outer, inner *index.Tree, k int) int {
	total := 0
	for _, b := range outer.Blocks() {
		if b.Count == 0 {
			continue
		}
		total += LocalitySize(inner, b.Bounds, k)
	}
	return total
}

// ---------------------------------------------------------------------------
// Reference estimators, computed the slow way.
// ---------------------------------------------------------------------------

// StaircaseMode mirrors core.StaircaseMode by value, so the oracle does
// not import the package it is the reference for.
type StaircaseMode int

const (
	// ModeCenterCorners interpolates center toward the max over the four
	// corner costs.
	ModeCenterCorners StaircaseMode = iota
	// ModeCenterOnly uses the center cost alone.
	ModeCenterOnly
	// ModeCenterQuadrant interpolates toward the corner of the quadrant
	// containing the query.
	ModeCenterQuadrant
)

// errK is the k < 1 rejection every estimator shares.
var errK = errors.New("oracle: k must be >= 1")

// StaircaseEstimate computes the staircase estimate for a partitioning
// data index the slow way: a linear-scan point location, fresh literal
// distance-browsing simulations for the block's center and corner
// anchors, then Equations 1–2 of the paper. Queries with k > maxK or
// outside the index route to fallback, exactly like the query flow of
// Figure 5 (pass the oracle's DensityEstimate to mirror the default).
func StaircaseEstimate(t *index.Tree, mode StaircaseMode, q geom.Point, k, maxK int, fallback func(geom.Point, int) (float64, error)) (float64, error) {
	if k < 1 {
		return 0, errK
	}
	if k > maxK {
		return fallback(q, k)
	}
	blk := FindBlock(t, q)
	if blk == nil {
		return fallback(q, k)
	}
	cCenter := SelectCost(t, rectCenter(blk.Bounds), k)
	if mode == ModeCenterOnly {
		return float64(cCenter), nil
	}
	corners := [4]geom.Point{ // LL, LR, UR, UL — the Rect.Corners order
		{X: blk.Bounds.Min.X, Y: blk.Bounds.Min.Y},
		{X: blk.Bounds.Max.X, Y: blk.Bounds.Min.Y},
		{X: blk.Bounds.Max.X, Y: blk.Bounds.Max.Y},
		{X: blk.Bounds.Min.X, Y: blk.Bounds.Max.Y},
	}
	var cCorner int
	if mode == ModeCenterQuadrant {
		cCorner = SelectCost(t, corners[quadrantCorner(blk.Bounds, q)], k)
	} else {
		for _, c := range corners {
			if cost := SelectCost(t, c, k); cost > cCorner {
				cCorner = cost
			}
		}
	}
	l := pointDist(q, rectCenter(blk.Bounds))
	diag := rectDiagonal(blk.Bounds)
	if diag == 0 {
		return float64(cCenter), nil
	}
	delta := float64(cCorner - cCenter)
	return float64(cCenter) + 2*l/diag*delta, nil
}

// quadrantCorner maps q's quadrant within b to the Corners() index, with
// the same >= comparisons the optimized estimator uses.
func quadrantCorner(b geom.Rect, q geom.Point) int {
	c := rectCenter(b)
	east := q.X >= c.X
	north := q.Y >= c.Y
	switch {
	case !east && !north:
		return 0
	case east && !north:
		return 1
	case east && north:
		return 2
	default:
		return 3
	}
}

// DensityEstimate computes the density-based select estimate with the
// literal two-scan formulation of §2 over a naive frontier: grow the
// search region in MINDIST order until the circle estimated to contain k
// points is covered, then count the blocks within the final radius in a
// fresh scan. Fewer than k points in the index means every block is
// scanned.
func DensityEstimate(count *index.Tree, q geom.Point, k int) (float64, error) {
	if k < 1 {
		return 0, errK
	}
	if count.NumBlocks() == 0 {
		return 0, errors.New("oracle: empty index")
	}
	f := newPointFrontier(count, q)
	area := 0.0
	n := 0
	radius := 0.0
	covered := false
	for {
		blk, _, ok := f.nextBlock()
		if !ok {
			break
		}
		area += (blk.Bounds.Max.X - blk.Bounds.Min.X) * (blk.Bounds.Max.Y - blk.Bounds.Min.Y)
		n += blk.Count
		if n == 0 {
			continue
		}
		density := float64(n) / area
		r := math.Sqrt(float64(k) / (math.Pi * density))
		next, more := f.peekDist()
		if !more || next > r {
			radius, covered = r, true
			break
		}
	}
	if !covered {
		return float64(count.NumBlocks()), nil
	}
	cost := 0
	second := newPointFrontier(count, q)
	for {
		_, minDist, ok := second.nextBlock()
		if !ok || minDist > radius {
			break
		}
		cost++
	}
	if cost == 0 {
		cost = 1 // the block containing q is always scanned
	}
	return float64(cost), nil
}

// sampleOrigins reproduces the §4.1 spatially distributed block sample:
// the non-empty blocks of outer in ID order, thinned to s by a fixed-point
// stride walk. s <= 0 or >= the block count returns every non-empty block.
func sampleOrigins(outer *index.Tree, s int) []geom.Rect {
	var all []geom.Rect
	for _, b := range outer.Blocks() {
		if b.Count > 0 {
			all = append(all, b.Bounds)
		}
	}
	n := len(all)
	if s >= n || s <= 0 {
		return all
	}
	out := make([]geom.Rect, 0, s)
	for i := 0; i < s; i++ {
		out = append(out, all[i*n/s])
	}
	return out
}

// numJoinBlocks is the number of non-empty outer blocks — the n_o the
// sampling estimators scale by.
func numJoinBlocks(outer *index.Tree) int {
	n := 0
	for _, b := range outer.Blocks() {
		if b.Count > 0 {
			n++
		}
	}
	return n
}

// BlockSampleEstimate computes the §4.1 baseline join estimate the slow
// way: literal locality simulations over the block sample, scaled by
// n_o/s.
func BlockSampleEstimate(outer, inner *index.Tree, sampleSize, k int) (float64, error) {
	if k < 1 {
		return 0, errK
	}
	sample := sampleOrigins(outer, sampleSize)
	if len(sample) == 0 {
		return 0, errors.New("oracle: outer relation has no blocks")
	}
	agg := 0
	for _, from := range sample {
		agg += LocalitySize(inner, from, k)
	}
	scale := float64(numJoinBlocks(outer)) / float64(len(sample))
	return float64(agg) * scale, nil
}

// CatalogMergeEstimate computes the §4.2 estimate without catalogs or
// merging: k is clamped to maxK, each sampled outer block contributes a
// literal locality simulation, and the aggregate is scaled by n_o/s. This
// is what the merged catalog's Lookup(k)·scale must equal.
func CatalogMergeEstimate(outer, inner *index.Tree, sampleSize, maxK, k int) (float64, error) {
	if k < 1 {
		return 0, errK
	}
	if k > maxK {
		k = maxK
	}
	return BlockSampleEstimate(outer, inner, sampleSize, k)
}

// VirtualGridEstimate computes the §4.3 estimate the slow way: the grid
// cells are enumerated in row-major order, each cell's locality size comes
// from a literal simulation, and every non-empty outer block attributed to
// the cell (by center, clamped into the grid) contributes that size scaled
// by the diagonal ratio. The iteration order matches the optimized path so
// the floating-point sum is bit-identical.
func VirtualGridEstimate(outer, inner *index.Tree, nx, ny, maxK, k int) (float64, error) {
	if k < 1 {
		return 0, errK
	}
	if k > maxK {
		k = maxK
	}
	bounds := inner.Bounds()
	if bounds.Max.X-bounds.Min.X <= 0 || bounds.Max.Y-bounds.Min.Y <= 0 {
		return 0, errors.New("oracle: inner index has degenerate bounds")
	}
	cells := gridCells(bounds, nx, ny)
	total := 0.0
	for i, cell := range cells {
		loc := LocalitySize(inner, cell, k)
		cellDiag := rectDiagonal(cell)
		for _, o := range outer.Blocks() {
			if o.Count == 0 || !intersects(o.Bounds, cell) {
				continue
			}
			c := rectCenter(o.Bounds)
			col := cellCoord(c.X, bounds.Min.X, bounds.Max.X, nx)
			row := cellCoord(c.Y, bounds.Min.Y, bounds.Max.Y, ny)
			if row*nx+col != i {
				continue
			}
			total += float64(loc) * rectDiagonal(o.Bounds) / cellDiag
		}
	}
	return total, nil
}

// gridCells reproduces the virtual grid's cell rectangles in row-major
// order, including the outer-edge snapping that keeps boundary points
// inside the grid.
func gridCells(bounds geom.Rect, nx, ny int) []geom.Rect {
	w := (bounds.Max.X - bounds.Min.X) / float64(nx)
	h := (bounds.Max.Y - bounds.Min.Y) / float64(ny)
	out := make([]geom.Rect, 0, nx*ny)
	for row := 0; row < ny; row++ {
		for col := 0; col < nx; col++ {
			minX := bounds.Min.X + float64(col)*w
			minY := bounds.Min.Y + float64(row)*h
			r := geom.Rect{
				Min: geom.Point{X: minX, Y: minY},
				Max: geom.Point{X: minX + w, Y: minY + h},
			}
			if col == nx-1 {
				r.Max.X = bounds.Max.X
			}
			if row == ny-1 {
				r.Max.Y = bounds.Max.Y
			}
			out = append(out, r)
		}
	}
	return out
}

// cellCoord maps a coordinate to its cell index along one axis, clamped
// into [0, n).
func cellCoord(x, lo, hi float64, n int) int {
	if hi <= lo {
		return 0
	}
	idx := int((x - lo) / (hi - lo) * float64(n))
	if idx < 0 {
		return 0
	}
	if idx >= n {
		return n - 1
	}
	return idx
}
