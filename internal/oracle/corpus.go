package oracle

import (
	"fmt"
	"math/rand"

	"knncost/internal/geom"
)

// Workload is one deterministic dataset + query set of the differential
// corpus. Everything is derived from the corpus seed, so two runs of any
// differential check see byte-identical inputs.
type Workload struct {
	// Name identifies the distribution (uniform, clusters, zipf,
	// collinear, duplicates).
	Name string
	// Points is the dataset.
	Points []geom.Point
	// Queries mixes data points, perturbed data points, uniform points,
	// and points outside the data MBR.
	Queries []geom.Point
	// Ks is the ascending list of k values to sweep.
	Ks []int
}

// corpusBounds is the region the corpus populates — the world bounds the
// rest of the repository uses.
var corpusBounds = geom.NewRect(-180, -90, 180, 90)

// defaultKs is the ascending k sweep shared by every workload: small ks
// where the staircase is finest, then roughly geometric growth.
var defaultKs = []int{1, 2, 3, 5, 8, 13, 21, 34, 55, 89}

// Corpus returns the five-workload differential corpus for the given
// seed: n points and q queries per workload. The distributions cover the
// estimators' easy and hard cases — uniform, Gaussian clusters, Zipf
// skew, and the degenerate collinear and all-duplicate sets.
func Corpus(seed int64, n, q int) []Workload {
	gens := []struct {
		name string
		gen  func(*rand.Rand, int) []geom.Point
	}{
		{"uniform", uniformPoints},
		{"clusters", clusterPoints},
		{"zipf", zipfPoints},
		{"collinear", collinearPoints},
		{"duplicates", duplicatePoints},
	}
	out := make([]Workload, 0, len(gens))
	for i, g := range gens {
		rng := rand.New(rand.NewSource(seed*1_000_003 + int64(i)*7919))
		pts := g.gen(rng, n)
		out = append(out, Workload{
			Name:    g.name,
			Points:  pts,
			Queries: corpusQueries(rng, pts, q),
			Ks:      ksFor(n),
		})
	}
	return out
}

// ksFor filters the default sweep to k <= n and appends n+7, so every
// workload exercises the k > N exhaustion path.
func ksFor(n int) []int {
	ks := make([]int, 0, len(defaultKs)+1)
	for _, k := range defaultKs {
		if k <= n {
			ks = append(ks, k)
		}
	}
	return append(ks, n+7)
}

// corpusQueries builds the query mix: for i mod 4 it takes a data point,
// a perturbed data point, a uniform point, or a point outside the data
// MBR (walking a ring 25% beyond the bounds).
func corpusQueries(rng *rand.Rand, pts []geom.Point, q int) []geom.Point {
	b := geom.BoundsOf(pts)
	w, h := b.Width(), b.Height()
	if w == 0 {
		w = 1
	}
	if h == 0 {
		h = 1
	}
	out := make([]geom.Point, 0, q)
	for i := 0; i < q; i++ {
		switch i % 4 {
		case 0:
			out = append(out, pts[rng.Intn(len(pts))])
		case 1:
			p := pts[rng.Intn(len(pts))]
			out = append(out, geom.Point{
				X: p.X + (rng.Float64()-0.5)*w/50,
				Y: p.Y + (rng.Float64()-0.5)*h/50,
			})
		case 2:
			out = append(out, geom.Point{
				X: b.Min.X + rng.Float64()*w,
				Y: b.Min.Y + rng.Float64()*h,
			})
		default:
			// A point on a ring 25% outside the MBR: outside-the-index
			// queries must route to the fallback estimator.
			side := rng.Intn(4)
			along := rng.Float64()
			switch side {
			case 0:
				out = append(out, geom.Point{X: b.Min.X - w/4, Y: b.Min.Y + along*h})
			case 1:
				out = append(out, geom.Point{X: b.Max.X + w/4, Y: b.Min.Y + along*h})
			case 2:
				out = append(out, geom.Point{X: b.Min.X + along*w, Y: b.Min.Y - h/4})
			default:
				out = append(out, geom.Point{X: b.Min.X + along*w, Y: b.Max.Y + h/4})
			}
		}
	}
	return out
}

func uniformPoints(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = uniformIn(rng, corpusBounds)
	}
	return pts
}

func uniformIn(rng *rand.Rand, b geom.Rect) geom.Point {
	return geom.Point{
		X: b.Min.X + rng.Float64()*b.Width(),
		Y: b.Min.Y + rng.Float64()*b.Height(),
	}
}

// clusterPoints draws from 8 equally weighted Gaussian clusters whose
// centers sit in the inner 80% of the bounds; samples outside the bounds
// are clamped onto the boundary.
func clusterPoints(rng *rand.Rand, n int) []geom.Point {
	const clusters = 8
	centers := make([]geom.Point, clusters)
	inner := geom.NewRect(
		corpusBounds.Min.X+corpusBounds.Width()/10,
		corpusBounds.Min.Y+corpusBounds.Height()/10,
		corpusBounds.Max.X-corpusBounds.Width()/10,
		corpusBounds.Max.Y-corpusBounds.Height()/10,
	)
	for i := range centers {
		centers[i] = uniformIn(rng, inner)
	}
	sigmaX := corpusBounds.Width() / 40
	sigmaY := corpusBounds.Height() / 40
	pts := make([]geom.Point, n)
	for i := range pts {
		c := centers[rng.Intn(clusters)]
		pts[i] = clampPoint(geom.Point{
			X: c.X + rng.NormFloat64()*sigmaX,
			Y: c.Y + rng.NormFloat64()*sigmaY,
		}, corpusBounds)
	}
	return pts
}

// zipfPoints places points around 64 anchor sites whose popularity is
// Zipf-distributed — a few sites absorb most of the mass, the skew the
// paper's OSM-like datasets exhibit.
func zipfPoints(rng *rand.Rand, n int) []geom.Point {
	const sites = 64
	anchors := make([]geom.Point, sites)
	for i := range anchors {
		anchors[i] = uniformIn(rng, corpusBounds)
	}
	z := rand.NewZipf(rng, 1.3, 1, sites-1)
	sigmaX := corpusBounds.Width() / 80
	sigmaY := corpusBounds.Height() / 80
	pts := make([]geom.Point, n)
	for i := range pts {
		a := anchors[z.Uint64()]
		pts[i] = clampPoint(geom.Point{
			X: a.X + rng.NormFloat64()*sigmaX,
			Y: a.Y + rng.NormFloat64()*sigmaY,
		}, corpusBounds)
	}
	return pts
}

// collinearPoints puts every point on one line (exactly collinear, so
// quadtree splits separate them along a single direction only), with every
// tenth point duplicating the previous one.
func collinearPoints(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		if i%10 == 9 && i > 0 {
			pts[i] = pts[i-1]
			continue
		}
		x := corpusBounds.Min.X + rng.Float64()*corpusBounds.Width()
		pts[i] = geom.Point{X: x, Y: 0.37*x + 5}
	}
	return pts
}

// duplicatePoints uses only 5 distinct non-dyadic locations, each repeated
// n/5 times — the worst case for any splitter, bounded only by the
// quadtree's maximum depth.
func duplicatePoints(rng *rand.Rand, n int) []geom.Point {
	sites := make([]geom.Point, 5)
	for i := range sites {
		sites[i] = uniformIn(rng, corpusBounds)
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = sites[i%len(sites)]
	}
	return pts
}

func clampPoint(p geom.Point, b geom.Rect) geom.Point {
	return geom.Point{X: clamp(p.X, b.Min.X, b.Max.X), Y: clamp(p.Y, b.Min.Y, b.Max.Y)}
}

// String implements fmt.Stringer for test names.
func (w Workload) String() string {
	return fmt.Sprintf("%s(n=%d,q=%d)", w.Name, len(w.Points), len(w.Queries))
}
