package planner

import (
	"errors"
	"fmt"
	"math"

	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/knn"
	"knncost/internal/pqueue"
	"knncost/internal/rangeop"
)

// PlanKNNSelectInRegion plans "the k points nearest to q among those inside
// region" — the §1 scenario that combines a spatial range predicate with a
// k-NN predicate. Two QEPs compete:
//
//   - range-first: execute the range select (cost = blocks intersecting
//     the region, known exactly from the Count-Index) and pick the k
//     nearest among the qualifiers;
//   - k-NN-first: distance-browse from q, discarding neighbors outside the
//     region, until k qualifiers are found; the expected browse depth is
//     k divided by the region's selectivity, costed by the relation's
//     k-NN estimator.
//
// The range cost is exact while the k-NN cost is an estimate — precisely
// the asymmetry the paper opens with.
func PlanKNNSelectInRegion(rel *Relation, q geom.Point, k int, region geom.Rect) (*Decision, error) {
	if k < 1 {
		return nil, errors.New("planner: k must be >= 1")
	}
	if !region.Valid() || region.Area() == 0 {
		return nil, fmt.Errorf("planner: invalid region %v", region)
	}

	rangeCost := rangeop.Cost(rel.count, region)
	rangeFirst := &Plan{
		Description:   fmt.Sprintf("range-first scan of %s ∩ region", rel.Name),
		EstimatedCost: float64(rangeCost),
		run: func() (any, int) {
			return runRangeFirst(rel.Tree, q, k, region)
		},
	}

	selectivity := rangeop.Selectivity(rel.count, region)
	plans := []*Plan{rangeFirst}
	if selectivity > 0 {
		browseK := int(math.Ceil(float64(k) / selectivity))
		browseCost, err := rel.Estimator.EstimateSelect(q, browseK)
		if err != nil {
			return nil, fmt.Errorf("planner: estimating browse cost: %w", err)
		}
		browse := &Plan{
			Description:   fmt.Sprintf("distance-browse %s, keep region hits (expect ~%d candidates)", rel.Name, browseK),
			EstimatedCost: browseCost,
			run: func() (any, int) {
				return runBrowseInRegion(rel.Tree, q, k, region)
			},
		}
		plans = append(plans, browse)
	}
	return decide(plans), nil
}

// runRangeFirst evaluates the range select, then keeps the k nearest
// qualifiers.
func runRangeFirst(tree *index.Tree, q geom.Point, k int, region geom.Rect) ([]knn.Neighbor, int) {
	pts, blocks := rangeop.Select(tree, region)
	var heap pqueue.Queue[knn.Neighbor]
	for _, p := range pts {
		d := q.Dist(p)
		if heap.Len() == k {
			if worst, _ := heap.PeekPriority(); -worst <= d {
				continue
			}
			heap.Pop()
		}
		heap.Push(knn.Neighbor{Point: p, Dist: d}, -d)
	}
	best := make([]knn.Neighbor, heap.Len())
	for i := len(best) - 1; i >= 0; i-- {
		best[i], _ = heap.Pop()
	}
	return best, blocks
}

// runBrowseInRegion distance-browses from q, keeping only points inside
// the region, until k qualify or the index is exhausted.
func runBrowseInRegion(tree *index.Tree, q geom.Point, k int, region geom.Rect) ([]knn.Neighbor, int) {
	browser := knn.NewBrowser(tree, q)
	out := make([]knn.Neighbor, 0, k)
	for len(out) < k {
		n, ok := browser.Next()
		if !ok {
			break
		}
		if region.Contains(n.Point) {
			out = append(out, n)
		}
	}
	return out, browser.Stats().BlocksScanned
}
