package planner

import (
	"sort"
	"strings"
	"testing"

	"knncost/internal/datagen"
	"knncost/internal/geom"
)

func TestPlanKNNSelectInRegionValidation(t *testing.T) {
	rel, pts := buildRelation(t, 5000, 20, 128)
	if _, err := PlanKNNSelectInRegion(rel, pts[0], 0, geom.NewRect(0, 0, 1, 1)); err == nil {
		t.Error("k=0 should be rejected")
	}
	if _, err := PlanKNNSelectInRegion(rel, pts[0], 5, geom.Rect{}); err == nil {
		t.Error("zero region should be rejected")
	}
}

func TestRegionPlansAgree(t *testing.T) {
	rel, pts := buildRelation(t, 30000, 21, 128)
	q := pts[50]
	// A region around the query point, large enough to hold k points.
	region := geom.NewRect(q.X-20, q.Y-20, q.X+20, q.Y+20)
	d, err := PlanKNNSelectInRegion(rel, q, 12, region)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Alternatives) != 2 {
		t.Fatalf("expected two plans, got %d", len(d.Alternatives))
	}
	var results [][]float64
	for _, plan := range d.Alternatives {
		exec, err := ExecuteSelect(&Decision{Chosen: plan, Alternatives: d.Alternatives})
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range exec.Neighbors {
			if !region.Contains(n.Point) {
				t.Fatalf("plan %q returned point outside region", plan.Description)
			}
		}
		ds := make([]float64, len(exec.Neighbors))
		for i, n := range exec.Neighbors {
			ds[i] = n.Dist
		}
		sort.Float64s(ds)
		results = append(results, ds)
	}
	if len(results[0]) != len(results[1]) {
		t.Fatalf("plans disagree on cardinality: %d vs %d", len(results[0]), len(results[1]))
	}
	for i := range results[0] {
		if diff := results[0][i] - results[1][i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("plans disagree at %d: %g vs %g", i, results[0][i], results[1][i])
		}
	}
}

func TestRegionPlanChoices(t *testing.T) {
	rel, pts := buildRelation(t, 40000, 22, 128)
	q := pts[123]

	// Tiny region around the query: range-first should win (few blocks).
	tiny := geom.NewRect(q.X-0.5, q.Y-0.5, q.X+0.5, q.Y+0.5)
	d, err := PlanKNNSelectInRegion(rel, q, 5, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d.Chosen.Description, "range-first") {
		t.Errorf("tiny region should choose range-first:\n%s", d.Explain())
	}

	// Huge region (the whole world): browsing should win.
	d, err = PlanKNNSelectInRegion(rel, q, 5, datagen.WorldBounds)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d.Chosen.Description, "distance-browse") {
		t.Errorf("whole-world region should choose browsing:\n%s", d.Explain())
	}
	// The choice must be genuinely cheaper when executed.
	var costs []int
	for _, plan := range d.Alternatives {
		exec, err := ExecuteSelect(&Decision{Chosen: plan, Alternatives: d.Alternatives})
		if err != nil {
			t.Fatal(err)
		}
		costs = append(costs, exec.BlocksScanned)
	}
	if costs[0] > costs[1] {
		t.Errorf("planner chose the worse plan: actual costs %v\n%s", costs, d.Explain())
	}
}

func TestRegionDisjointFromData(t *testing.T) {
	rel, pts := buildRelation(t, 5000, 23, 128)
	// Region outside the world: range plan returns nothing; selectivity 0
	// means no browse plan is offered.
	region := geom.NewRect(500, 500, 600, 600)
	d, err := PlanKNNSelectInRegion(rel, pts[0], 5, region)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := ExecuteSelect(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(exec.Neighbors) != 0 {
		t.Errorf("disjoint region returned %d neighbors", len(exec.Neighbors))
	}
}
