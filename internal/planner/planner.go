// Package planner implements a small cost-based query planner for spatial
// k-NN queries — the consumer the paper's estimators exist for ("the role
// of a query optimizer is to arbitrate among the various QEPs and pick the
// one with the least processing cost", §1).
//
// Two optimizer decisions from the paper's introduction are covered:
//
//   - k-NN-Select combined with a filtering predicate: apply the filter
//     first over a full scan, or distance-browse incrementally and filter
//     on the fly (§1's restaurants-within-budget example);
//   - a batch of k-NN-Selects against one relation: run them
//     independently, or share work by evaluating a single k-NN-Join with
//     the query points as the outer relation (§1's multi-query scenario).
//
// Each Plan carries an estimated cost in blocks and an executor; Decide
// picks the cheapest, and Execution reports the blocks actually scanned so
// that callers can audit the planner's choices.
package planner

import (
	"cmp"
	"errors"
	"fmt"
	"math"
	"sort"

	"knncost/internal/core"
	"knncost/internal/engine"
	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/knn"
	"knncost/internal/knnjoin"
	"knncost/internal/pqueue"
	"knncost/internal/quadtree"
)

// Relation is a named, indexed dataset registered with the planner. It is
// backed by an engine.Relation, so every registered estimation technique
// is available against it by name with its artifacts built once and
// cached.
type Relation struct {
	// Name identifies the relation in plan descriptions.
	Name string
	// Tree is the data index.
	Tree *index.Tree
	// Estimator predicts k-NN-Select costs against the relation; nil
	// means a density-based estimator over the Count-Index.
	Estimator core.SelectEstimator
	// Technique is the canonical registry name of Estimator when it was
	// resolved by name; empty for caller-supplied estimators.
	Technique string

	eng   *engine.Relation
	count *index.Tree
}

// NewRelation wraps an index as a relation. When est is nil a
// density-based estimator is attached (build a staircase for serious use).
func NewRelation(name string, tree *index.Tree, est core.SelectEstimator) *Relation {
	eng := engine.NewRelation(name, tree, engine.BuildOptions{})
	technique := ""
	if est == nil {
		est = eng.Density()
		technique = engine.TechDensity
	}
	return &Relation{Name: name, Tree: tree, Estimator: est, Technique: technique, eng: eng, count: eng.Count()}
}

// NewRelationTechnique wraps an index as a relation whose select estimator
// is resolved from the engine's technique registry by name (canonical or
// alias); the technique's preprocessing artifact is built here. opt tunes
// the artifact builds; the zero value means the repository defaults.
func NewRelationTechnique(name string, tree *index.Tree, technique string, opt engine.BuildOptions) (*Relation, error) {
	eng := engine.NewRelation(name, tree, opt)
	tech, err := engine.LookupSelect(technique)
	if err != nil {
		return nil, fmt.Errorf("planner: %w", err)
	}
	est, err := tech.Estimator(eng)
	if err != nil {
		return nil, fmt.Errorf("planner: building %s estimator for %s: %w", tech.Name, name, err)
	}
	return &Relation{Name: name, Tree: tree, Estimator: est, Technique: tech.Name, eng: eng, count: eng.Count()}, nil
}

// Engine returns the relation's engine representation, through which
// per-technique artifacts are resolved and cached.
func (r *Relation) Engine() *engine.Relation { return r.eng }

// TechniqueEstimate pairs one registered select technique with its
// estimate for a query.
type TechniqueEstimate struct {
	// Technique is the canonical registry name.
	Technique string
	// Blocks is the estimated block-scan cost; meaningless when Err is
	// non-nil.
	Blocks float64
	// Err reports an artifact-build or estimation failure for this
	// technique only; other techniques in the sweep are unaffected.
	Err error
}

// SelectTechniqueEstimates estimates σ_{k,q}(rel) under every registered
// select technique, in canonical-name order — the technique-space sweep an
// optimizer (or the knnquery CLI) runs to compare estimators side by side.
func SelectTechniqueEstimates(rel *Relation, q geom.Point, k int) []TechniqueEstimate {
	techs := engine.SelectTechniques()
	out := make([]TechniqueEstimate, 0, len(techs))
	for _, tech := range techs {
		te := TechniqueEstimate{Technique: tech.Name}
		est, err := tech.Estimator(rel.eng)
		if err != nil {
			te.Err = err
		} else {
			te.Blocks, te.Err = est.EstimateSelect(q, k)
		}
		out = append(out, te)
	}
	return out
}

// Filter is a tuple predicate with its estimated selectivity — the
// fraction of tuples satisfying it. The planner does not estimate
// selectivities of non-spatial predicates itself; they come from whatever
// relational statistics the host system keeps.
type Filter struct {
	// Pred decides whether a point qualifies.
	Pred func(geom.Point) bool
	// Selectivity in (0, 1].
	Selectivity float64
}

// Plan is one query-execution plan: a description, its predicted cost in
// blocks, and an executor returning the result with actual cost.
type Plan struct {
	// Description names the strategy, e.g. "distance-browse + filter".
	Description string
	// EstimatedCost is the predicted number of blocks scanned.
	EstimatedCost float64

	run func() (any, int)
}

// Decision is the outcome of planning: the chosen plan plus the
// alternatives considered, sorted by estimated cost.
type Decision struct {
	Chosen       *Plan
	Alternatives []*Plan // includes Chosen, ascending estimated cost
}

// Explain formats the decision like a tiny EXPLAIN output.
func (d *Decision) Explain() string {
	out := ""
	for i, p := range d.Alternatives {
		marker := " "
		if p == d.Chosen {
			marker = "*"
		}
		out += fmt.Sprintf("%s plan %d: %-34s estimated %8.1f blocks\n",
			marker, i+1, p.Description, p.EstimatedCost)
	}
	return out
}

func decide(plans []*Plan) *Decision {
	sort.SliceStable(plans, func(i, j int) bool {
		return plans[i].EstimatedCost < plans[j].EstimatedCost
	})
	return &Decision{Chosen: plans[0], Alternatives: plans}
}

// SelectExecution is the result of executing a k-NN-Select decision.
type SelectExecution struct {
	// Neighbors are the qualifying k nearest points, ascending distance.
	Neighbors []knn.Neighbor
	// BlocksScanned is the actual cost paid.
	BlocksScanned int
	// Plan is the description of the executed plan.
	Plan string
}

// PlanKNNSelect plans σ_{k,q}(rel) with an optional filter. With a filter,
// two QEPs compete exactly as in §1: filter-first (full scan, then
// k-closest among qualifiers) versus incremental distance browsing with
// the predicate evaluated on the fly, whose expected depth is
// k/selectivity neighbors.
func PlanKNNSelect(rel *Relation, q geom.Point, k int, filter *Filter) (*Decision, error) {
	if k < 1 {
		return nil, errors.New("planner: k must be >= 1")
	}
	if filter != nil && (filter.Selectivity <= 0 || filter.Selectivity > 1) {
		return nil, fmt.Errorf("planner: selectivity %g outside (0,1]", filter.Selectivity)
	}

	browseK := k
	if filter != nil {
		browseK = int(math.Ceil(float64(k) / filter.Selectivity))
	}
	browseCost, err := rel.Estimator.EstimateSelect(q, browseK)
	if err != nil {
		return nil, fmt.Errorf("planner: estimating browse cost: %w", err)
	}
	browse := &Plan{
		Description:   fmt.Sprintf("distance-browse %s (expect ~%d candidates)", rel.Name, browseK),
		EstimatedCost: browseCost,
		run: func() (any, int) {
			return runBrowse(rel.Tree, q, k, filter)
		},
	}
	plans := []*Plan{}
	if filter != nil {
		// Listed before the browse plan: on equal block counts the
		// stable sort then prefers the sequential scan, whose access
		// pattern is cheaper than an equally sized best-first traversal.
		scan := &Plan{
			Description:   fmt.Sprintf("filter-first full scan of %s", rel.Name),
			EstimatedCost: float64(rel.Tree.NumBlocks()),
			run: func() (any, int) {
				return runFilterScan(rel.Tree, q, k, filter)
			},
		}
		plans = append(plans, scan)
	}
	plans = append(plans, browse)
	return decide(plans), nil
}

// ExecuteSelect runs the decision's chosen plan.
func ExecuteSelect(d *Decision) (*SelectExecution, error) {
	res, blocks := d.Chosen.run()
	neighbors, ok := res.([]knn.Neighbor)
	if !ok {
		return nil, fmt.Errorf("planner: decision is not a k-NN-Select (result %T)", res)
	}
	return &SelectExecution{
		Neighbors:     neighbors,
		BlocksScanned: blocks,
		Plan:          d.Chosen.Description,
	}, nil
}

// runBrowse distance-browses outward, applying the filter on the fly, and
// stops after k qualifying neighbors.
func runBrowse(tree *index.Tree, q geom.Point, k int, filter *Filter) ([]knn.Neighbor, int) {
	browser := knn.NewBrowser(tree, q)
	out := make([]knn.Neighbor, 0, k)
	for len(out) < k {
		n, ok := browser.Next()
		if !ok {
			break
		}
		if filter == nil || filter.Pred(n.Point) {
			out = append(out, n)
		}
	}
	return out, browser.Stats().BlocksScanned
}

// runFilterScan scans every block, filters, and keeps the k nearest
// qualifiers with a bounded max-heap (negated-distance min-heap).
func runFilterScan(tree *index.Tree, q geom.Point, k int, filter *Filter) ([]knn.Neighbor, int) {
	var heap pqueue.Queue[knn.Neighbor]
	for _, b := range tree.Blocks() {
		for _, p := range b.Points {
			if filter != nil && !filter.Pred(p) {
				continue
			}
			d := q.Dist(p)
			if heap.Len() == k {
				if worst, _ := heap.PeekPriority(); -worst <= d {
					continue
				}
				heap.Pop()
			}
			heap.Push(knn.Neighbor{Point: p, Dist: d}, -d)
		}
	}
	best := make([]knn.Neighbor, heap.Len())
	for i := len(best) - 1; i >= 0; i-- {
		best[i], _ = heap.Pop()
	}
	return best, tree.NumBlocks()
}

// BatchExecution is the result of executing a batch decision.
type BatchExecution struct {
	// Results maps each query point (by batch position) to its neighbors.
	Results [][]knn.Neighbor
	// BlocksScanned is the actual total cost paid.
	BlocksScanned int
	// Plan is the description of the executed plan.
	Plan string
}

// BatchOptions tune PlanKNNSelectBatch.
type BatchOptions struct {
	// Capacity is the block capacity for the temporary index built over
	// the query points in the shared-join strategy. Zero means the
	// quadtree default.
	Capacity int
	// SampleSize is the Catalog-Merge sample size used to estimate the
	// shared-join cost. Zero means 200.
	SampleSize int
	// JoinTechnique names the registered join technique estimating the
	// shared-join strategy (canonical name or alias). Empty means
	// "catalog-merge".
	JoinTechnique string
}

// PlanKNNSelectBatch plans a batch of k-NN-Selects with the same k against
// one relation: independent selects (cost = Σ per-query estimates) versus
// one shared locality-based k-NN-Join with the query points as the outer
// relation (cost estimated by Catalog-Merge), as §1 motivates.
func PlanKNNSelectBatch(rel *Relation, queries []geom.Point, k int, opt BatchOptions) (*Decision, error) {
	if len(queries) == 0 {
		return nil, errors.New("planner: empty query batch")
	}
	if k < 1 {
		return nil, errors.New("planner: k must be >= 1")
	}
	if opt.SampleSize == 0 {
		opt.SampleSize = 200
	}

	sumSelects := 0.0
	for _, q := range queries {
		est, err := rel.Estimator.EstimateSelect(q, k)
		if err != nil {
			return nil, fmt.Errorf("planner: estimating select at %v: %w", q, err)
		}
		sumSelects += est
	}
	independent := &Plan{
		Description:   fmt.Sprintf("%d independent k-NN-Selects on %s", len(queries), rel.Name),
		EstimatedCost: sumSelects,
		run: func() (any, int) {
			return runIndependentSelects(rel.Tree, queries, k)
		},
	}

	// The shared-join strategy indexes the distinct query points and
	// joins; duplicate batch entries share one join result.
	bounds := rel.Tree.Bounds()
	for _, q := range queries {
		bounds = bounds.Expand(q)
	}
	unique := make([]geom.Point, 0, len(queries))
	seen := make(map[geom.Point]bool, len(queries))
	for _, q := range queries {
		if !seen[q] {
			seen[q] = true
			unique = append(unique, q)
		}
	}
	queryTree := quadtree.Build(unique, quadtree.Options{
		Capacity: opt.Capacity,
		Bounds:   bounds,
	}).Index()
	jt, err := engine.LookupJoin(cmp.Or(opt.JoinTechnique, engine.TechCatalogMerge))
	if err != nil {
		return nil, fmt.Errorf("planner: %w", err)
	}
	// The ephemeral query relation carries the batch-specific build
	// options: catalogs only need to cover this batch's k, and the sample
	// size is the planner's, not a stored relation's.
	queryRel := engine.NewRelation("batch-queries", queryTree, engine.BuildOptions{
		MaxK:       k,
		SampleSize: opt.SampleSize,
	})
	est, err := jt.Estimator(queryRel, rel.eng)
	if err != nil {
		return nil, fmt.Errorf("planner: estimating shared join: %w", err)
	}
	joinCost, err := est.EstimateJoin(k)
	if err != nil {
		return nil, err
	}
	desc := fmt.Sprintf("shared k-NN-Join (queries ⋉ %s)", rel.Name)
	if jt.Name != engine.TechCatalogMerge {
		desc = fmt.Sprintf("shared k-NN-Join (queries ⋉ %s, %s)", rel.Name, jt.Name)
	}
	shared := &Plan{
		Description:   desc,
		EstimatedCost: joinCost,
		run: func() (any, int) {
			return runSharedJoin(queryTree, rel.Tree, queries, k)
		},
	}
	return decide([]*Plan{independent, shared}), nil
}

// ExecuteBatch runs the decision's chosen plan.
func ExecuteBatch(d *Decision) (*BatchExecution, error) {
	res, blocks := d.Chosen.run()
	results, ok := res.([][]knn.Neighbor)
	if !ok {
		return nil, fmt.Errorf("planner: decision is not a batch (result %T)", res)
	}
	return &BatchExecution{
		Results:       results,
		BlocksScanned: blocks,
		Plan:          d.Chosen.Description,
	}, nil
}

func runIndependentSelects(tree *index.Tree, queries []geom.Point, k int) ([][]knn.Neighbor, int) {
	results := make([][]knn.Neighbor, len(queries))
	blocks := 0
	for i, q := range queries {
		res, stats := knn.Select(tree, q, k)
		results[i] = res
		blocks += stats.BlocksScanned
	}
	return results, blocks
}

func runSharedJoin(queryTree, tree *index.Tree, queries []geom.Point, k int) ([][]knn.Neighbor, int) {
	// The join runs over distinct query points; fan the shared result out
	// to every batch position holding that point.
	byPoint := make(map[geom.Point][]knn.Neighbor, queryTree.NumPoints())
	stats := knnjoin.Join(queryTree, tree, k, func(p knnjoin.Pair) {
		byPoint[p.Outer] = append(byPoint[p.Outer], knn.Neighbor{Point: p.Inner, Dist: p.Distance})
	})
	results := make([][]knn.Neighbor, len(queries))
	for i, q := range queries {
		results[i] = byPoint[q]
	}
	return results, stats.BlocksScanned
}
