// Package planner implements a small cost-based query planner for spatial
// k-NN queries — the consumer the paper's estimators exist for ("the role
// of a query optimizer is to arbitrate among the various QEPs and pick the
// one with the least processing cost", §1).
//
// Two optimizer decisions from the paper's introduction are covered:
//
//   - k-NN-Select combined with a filtering predicate: apply the filter
//     first over a full scan, or distance-browse incrementally and filter
//     on the fly (§1's restaurants-within-budget example);
//   - a batch of k-NN-Selects against one relation: run them
//     independently, or share work by evaluating a single k-NN-Join with
//     the query points as the outer relation (§1's multi-query scenario).
//
// Each Plan carries an estimated cost in blocks and an executor; Decide
// picks the cheapest, and Execution reports the blocks actually scanned so
// that callers can audit the planner's choices.
package planner

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"knncost/internal/core"
	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/knn"
	"knncost/internal/knnjoin"
	"knncost/internal/pqueue"
	"knncost/internal/quadtree"
)

// Relation is a named, indexed dataset registered with the planner.
type Relation struct {
	// Name identifies the relation in plan descriptions.
	Name string
	// Tree is the data index.
	Tree *index.Tree
	// Estimator predicts k-NN-Select costs against the relation; nil
	// means a density-based estimator over the Count-Index.
	Estimator core.SelectEstimator

	count *index.Tree
}

// NewRelation wraps an index as a relation. When est is nil a
// density-based estimator is attached (build a staircase for serious use).
func NewRelation(name string, tree *index.Tree, est core.SelectEstimator) *Relation {
	count := tree.CountTree()
	if est == nil {
		est = core.NewDensityBased(count)
	}
	return &Relation{Name: name, Tree: tree, Estimator: est, count: count}
}

// Filter is a tuple predicate with its estimated selectivity — the
// fraction of tuples satisfying it. The planner does not estimate
// selectivities of non-spatial predicates itself; they come from whatever
// relational statistics the host system keeps.
type Filter struct {
	// Pred decides whether a point qualifies.
	Pred func(geom.Point) bool
	// Selectivity in (0, 1].
	Selectivity float64
}

// Plan is one query-execution plan: a description, its predicted cost in
// blocks, and an executor returning the result with actual cost.
type Plan struct {
	// Description names the strategy, e.g. "distance-browse + filter".
	Description string
	// EstimatedCost is the predicted number of blocks scanned.
	EstimatedCost float64

	run func() (any, int)
}

// Decision is the outcome of planning: the chosen plan plus the
// alternatives considered, sorted by estimated cost.
type Decision struct {
	Chosen       *Plan
	Alternatives []*Plan // includes Chosen, ascending estimated cost
}

// Explain formats the decision like a tiny EXPLAIN output.
func (d *Decision) Explain() string {
	out := ""
	for i, p := range d.Alternatives {
		marker := " "
		if p == d.Chosen {
			marker = "*"
		}
		out += fmt.Sprintf("%s plan %d: %-34s estimated %8.1f blocks\n",
			marker, i+1, p.Description, p.EstimatedCost)
	}
	return out
}

func decide(plans []*Plan) *Decision {
	sort.SliceStable(plans, func(i, j int) bool {
		return plans[i].EstimatedCost < plans[j].EstimatedCost
	})
	return &Decision{Chosen: plans[0], Alternatives: plans}
}

// SelectExecution is the result of executing a k-NN-Select decision.
type SelectExecution struct {
	// Neighbors are the qualifying k nearest points, ascending distance.
	Neighbors []knn.Neighbor
	// BlocksScanned is the actual cost paid.
	BlocksScanned int
	// Plan is the description of the executed plan.
	Plan string
}

// PlanKNNSelect plans σ_{k,q}(rel) with an optional filter. With a filter,
// two QEPs compete exactly as in §1: filter-first (full scan, then
// k-closest among qualifiers) versus incremental distance browsing with
// the predicate evaluated on the fly, whose expected depth is
// k/selectivity neighbors.
func PlanKNNSelect(rel *Relation, q geom.Point, k int, filter *Filter) (*Decision, error) {
	if k < 1 {
		return nil, errors.New("planner: k must be >= 1")
	}
	if filter != nil && (filter.Selectivity <= 0 || filter.Selectivity > 1) {
		return nil, fmt.Errorf("planner: selectivity %g outside (0,1]", filter.Selectivity)
	}

	browseK := k
	if filter != nil {
		browseK = int(math.Ceil(float64(k) / filter.Selectivity))
	}
	browseCost, err := rel.Estimator.EstimateSelect(q, browseK)
	if err != nil {
		return nil, fmt.Errorf("planner: estimating browse cost: %w", err)
	}
	browse := &Plan{
		Description:   fmt.Sprintf("distance-browse %s (expect ~%d candidates)", rel.Name, browseK),
		EstimatedCost: browseCost,
		run: func() (any, int) {
			return runBrowse(rel.Tree, q, k, filter)
		},
	}
	plans := []*Plan{}
	if filter != nil {
		// Listed before the browse plan: on equal block counts the
		// stable sort then prefers the sequential scan, whose access
		// pattern is cheaper than an equally sized best-first traversal.
		scan := &Plan{
			Description:   fmt.Sprintf("filter-first full scan of %s", rel.Name),
			EstimatedCost: float64(rel.Tree.NumBlocks()),
			run: func() (any, int) {
				return runFilterScan(rel.Tree, q, k, filter)
			},
		}
		plans = append(plans, scan)
	}
	plans = append(plans, browse)
	return decide(plans), nil
}

// ExecuteSelect runs the decision's chosen plan.
func ExecuteSelect(d *Decision) (*SelectExecution, error) {
	res, blocks := d.Chosen.run()
	neighbors, ok := res.([]knn.Neighbor)
	if !ok {
		return nil, fmt.Errorf("planner: decision is not a k-NN-Select (result %T)", res)
	}
	return &SelectExecution{
		Neighbors:     neighbors,
		BlocksScanned: blocks,
		Plan:          d.Chosen.Description,
	}, nil
}

// runBrowse distance-browses outward, applying the filter on the fly, and
// stops after k qualifying neighbors.
func runBrowse(tree *index.Tree, q geom.Point, k int, filter *Filter) ([]knn.Neighbor, int) {
	browser := knn.NewBrowser(tree, q)
	out := make([]knn.Neighbor, 0, k)
	for len(out) < k {
		n, ok := browser.Next()
		if !ok {
			break
		}
		if filter == nil || filter.Pred(n.Point) {
			out = append(out, n)
		}
	}
	return out, browser.Stats().BlocksScanned
}

// runFilterScan scans every block, filters, and keeps the k nearest
// qualifiers with a bounded max-heap (negated-distance min-heap).
func runFilterScan(tree *index.Tree, q geom.Point, k int, filter *Filter) ([]knn.Neighbor, int) {
	var heap pqueue.Queue[knn.Neighbor]
	for _, b := range tree.Blocks() {
		for _, p := range b.Points {
			if filter != nil && !filter.Pred(p) {
				continue
			}
			d := q.Dist(p)
			if heap.Len() == k {
				if worst, _ := heap.PeekPriority(); -worst <= d {
					continue
				}
				heap.Pop()
			}
			heap.Push(knn.Neighbor{Point: p, Dist: d}, -d)
		}
	}
	best := make([]knn.Neighbor, heap.Len())
	for i := len(best) - 1; i >= 0; i-- {
		best[i], _ = heap.Pop()
	}
	return best, tree.NumBlocks()
}

// BatchExecution is the result of executing a batch decision.
type BatchExecution struct {
	// Results maps each query point (by batch position) to its neighbors.
	Results [][]knn.Neighbor
	// BlocksScanned is the actual total cost paid.
	BlocksScanned int
	// Plan is the description of the executed plan.
	Plan string
}

// BatchOptions tune PlanKNNSelectBatch.
type BatchOptions struct {
	// Capacity is the block capacity for the temporary index built over
	// the query points in the shared-join strategy. Zero means the
	// quadtree default.
	Capacity int
	// SampleSize is the Catalog-Merge sample size used to estimate the
	// shared-join cost. Zero means 200.
	SampleSize int
}

// PlanKNNSelectBatch plans a batch of k-NN-Selects with the same k against
// one relation: independent selects (cost = Σ per-query estimates) versus
// one shared locality-based k-NN-Join with the query points as the outer
// relation (cost estimated by Catalog-Merge), as §1 motivates.
func PlanKNNSelectBatch(rel *Relation, queries []geom.Point, k int, opt BatchOptions) (*Decision, error) {
	if len(queries) == 0 {
		return nil, errors.New("planner: empty query batch")
	}
	if k < 1 {
		return nil, errors.New("planner: k must be >= 1")
	}
	if opt.SampleSize == 0 {
		opt.SampleSize = 200
	}

	sumSelects := 0.0
	for _, q := range queries {
		est, err := rel.Estimator.EstimateSelect(q, k)
		if err != nil {
			return nil, fmt.Errorf("planner: estimating select at %v: %w", q, err)
		}
		sumSelects += est
	}
	independent := &Plan{
		Description:   fmt.Sprintf("%d independent k-NN-Selects on %s", len(queries), rel.Name),
		EstimatedCost: sumSelects,
		run: func() (any, int) {
			return runIndependentSelects(rel.Tree, queries, k)
		},
	}

	// The shared-join strategy indexes the distinct query points and
	// joins; duplicate batch entries share one join result.
	bounds := rel.Tree.Bounds()
	for _, q := range queries {
		bounds = bounds.Expand(q)
	}
	unique := make([]geom.Point, 0, len(queries))
	seen := make(map[geom.Point]bool, len(queries))
	for _, q := range queries {
		if !seen[q] {
			seen[q] = true
			unique = append(unique, q)
		}
	}
	queryTree := quadtree.Build(unique, quadtree.Options{
		Capacity: opt.Capacity,
		Bounds:   bounds,
	}).Index()
	cm, err := core.BuildCatalogMerge(queryTree.CountTree(), rel.count, opt.SampleSize, k)
	if err != nil {
		return nil, fmt.Errorf("planner: estimating shared join: %w", err)
	}
	joinCost, err := cm.EstimateJoin(k)
	if err != nil {
		return nil, err
	}
	shared := &Plan{
		Description:   fmt.Sprintf("shared k-NN-Join (queries ⋉ %s)", rel.Name),
		EstimatedCost: joinCost,
		run: func() (any, int) {
			return runSharedJoin(queryTree, rel.Tree, queries, k)
		},
	}
	return decide([]*Plan{independent, shared}), nil
}

// ExecuteBatch runs the decision's chosen plan.
func ExecuteBatch(d *Decision) (*BatchExecution, error) {
	res, blocks := d.Chosen.run()
	results, ok := res.([][]knn.Neighbor)
	if !ok {
		return nil, fmt.Errorf("planner: decision is not a batch (result %T)", res)
	}
	return &BatchExecution{
		Results:       results,
		BlocksScanned: blocks,
		Plan:          d.Chosen.Description,
	}, nil
}

func runIndependentSelects(tree *index.Tree, queries []geom.Point, k int) ([][]knn.Neighbor, int) {
	results := make([][]knn.Neighbor, len(queries))
	blocks := 0
	for i, q := range queries {
		res, stats := knn.Select(tree, q, k)
		results[i] = res
		blocks += stats.BlocksScanned
	}
	return results, blocks
}

func runSharedJoin(queryTree, tree *index.Tree, queries []geom.Point, k int) ([][]knn.Neighbor, int) {
	// The join runs over distinct query points; fan the shared result out
	// to every batch position holding that point.
	byPoint := make(map[geom.Point][]knn.Neighbor, queryTree.NumPoints())
	stats := knnjoin.Join(queryTree, tree, k, func(p knnjoin.Pair) {
		byPoint[p.Outer] = append(byPoint[p.Outer], knn.Neighbor{Point: p.Inner, Dist: p.Distance})
	})
	results := make([][]knn.Neighbor, len(queries))
	for i, q := range queries {
		results[i] = byPoint[q]
	}
	return results, stats.BlocksScanned
}
