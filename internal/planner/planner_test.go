package planner

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"knncost/internal/core"
	"knncost/internal/datagen"
	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/quadtree"
)

func buildRelation(t *testing.T, n int, seed int64, capacity int) (*Relation, []geom.Point) {
	t.Helper()
	pts := datagen.OSMLike(n, seed)
	tree := quadtree.Build(pts, quadtree.Options{
		Capacity: capacity, Bounds: datagen.WorldBounds,
	}).Index()
	stair, err := core.BuildStaircase(tree, core.StaircaseOptions{MaxK: 2000})
	if err != nil {
		t.Fatal(err)
	}
	return NewRelation("places", tree, stair), pts
}

func TestPlanKNNSelectNoFilter(t *testing.T) {
	rel, pts := buildRelation(t, 20000, 1, 128)
	d, err := PlanKNNSelect(rel, pts[5], 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Alternatives) != 1 {
		t.Fatalf("no-filter select should have one plan, got %d", len(d.Alternatives))
	}
	exec, err := ExecuteSelect(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(exec.Neighbors) != 10 {
		t.Fatalf("got %d neighbors", len(exec.Neighbors))
	}
	if exec.BlocksScanned < 1 {
		t.Error("execution must scan blocks")
	}
}

func TestPlanKNNSelectFilterCrossover(t *testing.T) {
	rel, pts := buildRelation(t, 40000, 2, 128)
	q := pts[100]
	rng := rand.New(rand.NewSource(3))
	attr := make(map[geom.Point]float64, len(pts))
	for _, p := range pts {
		attr[p] = rng.Float64()
	}
	for _, tc := range []struct {
		sel      float64
		wantScan bool // expect the full-scan plan to win
	}{
		{0.5, false},
		{0.000005, true}, // ~0.2 expected qualifiers in 40k: scan must win
	} {
		f := &Filter{
			Pred:        func(p geom.Point) bool { return attr[p] <= tc.sel },
			Selectivity: tc.sel,
		}
		d, err := PlanKNNSelect(rel, q, 10, f)
		if err != nil {
			t.Fatal(err)
		}
		if len(d.Alternatives) != 2 {
			t.Fatalf("filtered select should have two plans, got %d", len(d.Alternatives))
		}
		isScan := strings.Contains(d.Chosen.Description, "full scan")
		if isScan != tc.wantScan {
			t.Errorf("selectivity %g: chose %q, want scan=%v\n%s",
				tc.sel, d.Chosen.Description, tc.wantScan, d.Explain())
		}
		if _, err := ExecuteSelect(d); err != nil {
			t.Fatal(err)
		}
	}
}

// Both plans must return the same k qualifying neighbors.
func TestSelectPlansAgree(t *testing.T) {
	rel, pts := buildRelation(t, 20000, 4, 128)
	q := pts[7]
	rng := rand.New(rand.NewSource(5))
	attr := make(map[geom.Point]float64, len(pts))
	for _, p := range pts {
		attr[p] = rng.Float64()
	}
	f := &Filter{
		Pred:        func(p geom.Point) bool { return attr[p] <= 0.3 },
		Selectivity: 0.3,
	}
	d, err := PlanKNNSelect(rel, q, 15, f)
	if err != nil {
		t.Fatal(err)
	}
	var results [][]float64
	for _, plan := range d.Alternatives {
		forced := &Decision{Chosen: plan, Alternatives: d.Alternatives}
		exec, err := ExecuteSelect(forced)
		if err != nil {
			t.Fatal(err)
		}
		ds := make([]float64, len(exec.Neighbors))
		for i, n := range exec.Neighbors {
			ds[i] = n.Dist
		}
		results = append(results, ds)
	}
	if len(results[0]) != len(results[1]) {
		t.Fatalf("plans disagree on cardinality: %d vs %d", len(results[0]), len(results[1]))
	}
	for i := range results[0] {
		if diff := results[0][i] - results[1][i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("plans disagree at %d: %g vs %g", i, results[0][i], results[1][i])
		}
	}
}

func TestPlanKNNSelectValidation(t *testing.T) {
	rel, pts := buildRelation(t, 5000, 6, 128)
	if _, err := PlanKNNSelect(rel, pts[0], 0, nil); err == nil {
		t.Error("k=0 should be rejected")
	}
	if _, err := PlanKNNSelect(rel, pts[0], 5, &Filter{Selectivity: 0}); err == nil {
		t.Error("selectivity 0 should be rejected")
	}
	if _, err := PlanKNNSelect(rel, pts[0], 5, &Filter{Selectivity: 1.5}); err == nil {
		t.Error("selectivity > 1 should be rejected")
	}
}

func TestPlanBatchCrossover(t *testing.T) {
	rel, _ := buildRelation(t, 60000, 7, 256)
	k := 10
	small := datagen.OSMLike(30, 100)
	dSmall, err := PlanKNNSelectBatch(rel, small, k, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dSmall.Chosen.Description, "independent") {
		t.Errorf("small batch should choose independent selects:\n%s", dSmall.Explain())
	}
	big := datagen.OSMLike(20000, 101)
	dBig, err := PlanKNNSelectBatch(rel, big, k, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dBig.Chosen.Description, "shared") {
		t.Errorf("large batch should choose the shared join:\n%s", dBig.Explain())
	}
	// Verify the big-batch choice is actually right by executing both.
	var costs []int
	for _, plan := range dBig.Alternatives {
		exec, err := ExecuteBatch(&Decision{Chosen: plan, Alternatives: dBig.Alternatives})
		if err != nil {
			t.Fatal(err)
		}
		costs = append(costs, exec.BlocksScanned)
	}
	// Alternatives are sorted by estimate; the chosen (first) must be
	// genuinely cheaper.
	if costs[0] > costs[1] {
		t.Errorf("planner chose the worse plan: actual costs %v\n%s", costs, dBig.Explain())
	}
}

// Both batch strategies must produce identical per-query neighbor sets.
func TestBatchPlansAgree(t *testing.T) {
	rel, _ := buildRelation(t, 20000, 8, 128)
	queries := datagen.OSMLike(200, 102)
	// Inject duplicates: the shared join must fan results out.
	queries = append(queries, queries[0], queries[1])
	k := 5
	d, err := PlanKNNSelectBatch(rel, queries, k, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var all [][][]float64
	for _, plan := range d.Alternatives {
		exec, err := ExecuteBatch(&Decision{Chosen: plan, Alternatives: d.Alternatives})
		if err != nil {
			t.Fatal(err)
		}
		if len(exec.Results) != len(queries) {
			t.Fatalf("plan %q returned %d results, want %d", plan.Description, len(exec.Results), len(queries))
		}
		per := make([][]float64, len(queries))
		for i, ns := range exec.Results {
			if len(ns) != k {
				t.Fatalf("plan %q query %d returned %d neighbors, want %d", plan.Description, i, len(ns), k)
			}
			ds := make([]float64, len(ns))
			for j, n := range ns {
				ds[j] = n.Dist
			}
			sort.Float64s(ds)
			per[i] = ds
		}
		all = append(all, per)
	}
	for i := range queries {
		for j := 0; j < k; j++ {
			if diff := all[0][i][j] - all[1][i][j]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("query %d neighbor %d: %g vs %g", i, j, all[0][i][j], all[1][i][j])
			}
		}
	}
}

func TestBatchValidation(t *testing.T) {
	rel, _ := buildRelation(t, 5000, 9, 128)
	if _, err := PlanKNNSelectBatch(rel, nil, 5, BatchOptions{}); err == nil {
		t.Error("empty batch should be rejected")
	}
	if _, err := PlanKNNSelectBatch(rel, datagen.OSMLike(5, 1), 0, BatchOptions{}); err == nil {
		t.Error("k=0 should be rejected")
	}
}

func TestNewRelationDefaultsToDensity(t *testing.T) {
	pts := datagen.OSMLike(2000, 10)
	tree := quadtree.Build(pts, quadtree.Options{Capacity: 64, Bounds: datagen.WorldBounds}).Index()
	rel := NewRelation("r", tree, nil)
	if rel.Estimator == nil {
		t.Fatal("nil estimator should default to density-based")
	}
	if _, err := rel.Estimator.EstimateSelect(pts[0], 5); err != nil {
		t.Fatal(err)
	}
	var _ *index.Tree = rel.Tree // the index is exposed for execution
}
