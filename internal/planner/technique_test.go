package planner

import (
	"strings"
	"testing"

	"knncost/internal/core"
	"knncost/internal/datagen"
	"knncost/internal/engine"
	"knncost/internal/quadtree"
)

func TestNewRelationTechnique(t *testing.T) {
	pts := datagen.OSMLike(5000, 11)
	tree := quadtree.Build(pts, quadtree.Options{Capacity: 64, Bounds: datagen.WorldBounds}).Index()

	for _, name := range engine.SelectNames() {
		rel, err := NewRelationTechnique("places", tree, name, engine.BuildOptions{MaxK: 100})
		if err != nil {
			t.Fatalf("NewRelationTechnique(%s): %v", name, err)
		}
		if rel.Technique != name {
			t.Errorf("Technique = %q, want %q", rel.Technique, name)
		}
		if _, err := rel.Estimator.EstimateSelect(pts[0], 5); err != nil {
			t.Errorf("%s estimate: %v", name, err)
		}
		if rel.Engine() == nil {
			t.Error("Engine() is nil")
		}
	}

	// Aliases resolve to their canonical technique.
	rel, err := NewRelationTechnique("places", tree, "staircase", engine.BuildOptions{MaxK: 100})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Technique != engine.TechStaircaseCC {
		t.Errorf("alias resolved to %q, want %q", rel.Technique, engine.TechStaircaseCC)
	}

	if _, err := NewRelationTechnique("places", tree, "nope", engine.BuildOptions{}); err == nil {
		t.Error("unknown technique accepted")
	}
}

// TestSelectTechniqueEstimates proves the sweep covers every registered
// technique and matches a per-technique relation built directly — the
// technique space the planner arbitrates over is one registry, not
// per-call-site wiring.
func TestSelectTechniqueEstimates(t *testing.T) {
	pts := datagen.OSMLike(5000, 12)
	tree := quadtree.Build(pts, quadtree.Options{Capacity: 64, Bounds: datagen.WorldBounds}).Index()
	rel := NewRelation("places", tree, nil)
	q, k := pts[42], 9

	sweep := SelectTechniqueEstimates(rel, q, k)
	names := engine.SelectNames()
	if len(sweep) != len(names) {
		t.Fatalf("sweep has %d entries, want %d", len(sweep), len(names))
	}
	for i, te := range sweep {
		if te.Technique != names[i] {
			t.Errorf("sweep[%d] = %q, want %q", i, te.Technique, names[i])
		}
		if te.Err != nil {
			t.Errorf("%s: %v", te.Technique, te.Err)
			continue
		}
		est, err := rel.Engine().SelectEstimator(te.Technique)
		if err != nil {
			t.Fatal(err)
		}
		want, err := est.EstimateSelect(q, k)
		if err != nil || want != te.Blocks {
			t.Errorf("%s: sweep %v, direct %v (%v)", te.Technique, te.Blocks, want, err)
		}
	}
}

func TestBatchJoinTechnique(t *testing.T) {
	pts := datagen.OSMLike(20000, 13)
	tree := quadtree.Build(pts, quadtree.Options{Capacity: 128, Bounds: datagen.WorldBounds}).Index()
	stair, err := core.BuildStaircase(tree, core.StaircaseOptions{MaxK: 200})
	if err != nil {
		t.Fatal(err)
	}
	rel := NewRelation("places", tree, stair)
	queries := datagen.OSMLike(500, 103)

	// The default shared-join estimate comes from catalog-merge and keeps
	// the pre-registry description verbatim.
	d, err := PlanKNNSelectBatch(rel, queries, 10, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	shared := d.Alternatives[len(d.Alternatives)-1]
	for _, p := range d.Alternatives {
		if strings.Contains(p.Description, "shared") {
			shared = p
		}
	}
	if shared.Description != "shared k-NN-Join (queries ⋉ places)" {
		t.Errorf("default shared description = %q", shared.Description)
	}

	// Every registered join technique can estimate the shared strategy.
	for _, name := range engine.JoinNames() {
		d, err := PlanKNNSelectBatch(rel, queries, 10, BatchOptions{JoinTechnique: name})
		if err != nil {
			t.Fatalf("JoinTechnique %s: %v", name, err)
		}
		if len(d.Alternatives) != 2 {
			t.Fatalf("JoinTechnique %s: %d plans", name, len(d.Alternatives))
		}
		if name != engine.TechCatalogMerge {
			found := false
			for _, p := range d.Alternatives {
				if strings.Contains(p.Description, name) {
					found = true
				}
			}
			if !found {
				t.Errorf("JoinTechnique %s: description does not name the technique:\n%s", name, d.Explain())
			}
		}
	}

	if _, err := PlanKNNSelectBatch(rel, queries, 10, BatchOptions{JoinTechnique: "nope"}); err == nil {
		t.Error("unknown join technique accepted")
	}
}
