package planner

import (
	"testing"

	"knncost/internal/geom"
	"knncost/internal/quadtree"
)

// goldenRelation is a fully deterministic fixture: a 32x32 lattice of
// points under a fixed-bounds quadtree with the density estimator (itself
// deterministic), so every plan's estimated cost — and therefore the
// EXPLAIN text — is stable down to the digit.
func goldenRelation(t *testing.T) *Relation {
	t.Helper()
	pts := make([]geom.Point, 0, 32*32)
	for i := 0; i < 32; i++ {
		for j := 0; j < 32; j++ {
			pts = append(pts, geom.Point{X: float64(i)*3.125 + 1, Y: float64(j)*3.125 + 1})
		}
	}
	tree := quadtree.Build(pts, quadtree.Options{
		Capacity: 16, Bounds: geom.NewRect(0, 0, 100, 100),
	}).Index()
	return NewRelation("places", tree, nil)
}

// TestExplainGolden pins Decision.Explain() for every plan shape the
// planner can produce, so a refactor cannot silently change the EXPLAIN
// text or the cost estimates feeding it.
func TestExplainGolden(t *testing.T) {
	rel := goldenRelation(t)
	q := geom.Point{X: 50, Y: 50}

	t.Run("incremental", func(t *testing.T) {
		d, err := PlanKNNSelect(rel, q, 8, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := "* plan 1: distance-browse places (expect ~8 candidates) estimated      4.0 blocks\n"
		if got := d.Explain(); got != want {
			t.Errorf("Explain() =\n%s\nwant:\n%s", got, want)
		}
	})

	t.Run("filter-first", func(t *testing.T) {
		f := &Filter{
			Pred:        func(p geom.Point) bool { return p.X < 2 },
			Selectivity: 0.03125,
		}
		d, err := PlanKNNSelect(rel, q, 8, f)
		if err != nil {
			t.Fatal(err)
		}
		want := "* plan 1: distance-browse places (expect ~256 candidates) estimated     32.0 blocks\n" +
			"  plan 2: filter-first full scan of places   estimated     64.0 blocks\n"
		if got := d.Explain(); got != want {
			t.Errorf("Explain() =\n%s\nwant:\n%s", got, want)
		}
	})

	t.Run("range-first", func(t *testing.T) {
		d, err := PlanKNNSelectInRegion(rel, q, 8, geom.NewRect(40, 40, 60, 60))
		if err != nil {
			t.Fatal(err)
		}
		want := "* plan 1: range-first scan of places ∩ region estimated      4.0 blocks\n" +
			"  plan 2: distance-browse places, keep region hits (expect ~200 candidates) estimated     16.0 blocks\n"
		if got := d.Explain(); got != want {
			t.Errorf("Explain() =\n%s\nwant:\n%s", got, want)
		}
	})

	t.Run("batch-as-join", func(t *testing.T) {
		queries := []geom.Point{{X: 10, Y: 10}, {X: 50, Y: 50}, {X: 90, Y: 90}, {X: 25, Y: 75}}
		d, err := PlanKNNSelectBatch(rel, queries, 8, BatchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want := "* plan 1: 4 independent k-NN-Selects on places estimated     16.0 blocks\n" +
			"  plan 2: shared k-NN-Join (queries ⋉ places) estimated     64.0 blocks\n"
		if got := d.Explain(); got != want {
			t.Errorf("Explain() =\n%s\nwant:\n%s", got, want)
		}
	})
}
