package service

import (
	"encoding/json"
	"fmt"
	"math"
	"mime"
	"net/http"
	"time"

	"knncost/internal/geom"
	"knncost/internal/optimizer"
)

// PlanSelect is one kNN-Select predicate of a POST /plan request.
type PlanSelect struct {
	Relation string  `json:"relation"`
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	K        int     `json:"k"`
	// Technique names a registered select technique; empty means
	// staircase-cc.
	Technique string `json:"technique,omitempty"`
}

// PlanJoin is the optional kNN-Join predicate of a POST /plan request.
type PlanJoin struct {
	Outer string `json:"outer"`
	Inner string `json:"inner"`
	K     int    `json:"k"`
	// Technique names a registered join technique; empty means
	// catalog-merge.
	Technique string `json:"technique,omitempty"`
}

// PlanRequest is the body of POST /plan: a conjunctive query with at least
// two kNN predicates — two or more selects, or a join plus selects on its
// sides — and an optional non-spatial filter selectivity.
type PlanRequest struct {
	Selects []PlanSelect `json:"selects"`
	Join    *PlanJoin    `json:"join,omitempty"`
	// FilterSelectivity in (0,1] models an extra non-spatial filter the
	// driving select evaluates on the fly; 0 means none.
	FilterSelectivity float64 `json:"filter_selectivity,omitempty"`
}

// PlanTerm is one registry-estimator invocation of the chosen plan's cost.
type PlanTerm struct {
	Kind      string  `json:"kind"`
	Relation  string  `json:"relation"`
	Inner     string  `json:"inner,omitempty"`
	K         int     `json:"k"`
	Technique string  `json:"technique"`
	Count     float64 `json:"count"`
	Blocks    float64 `json:"blocks"`
}

// PlanAlternative is one enumerated plan of a PlanResponse.
type PlanAlternative struct {
	Description     string     `json:"description"`
	EstimatedBlocks float64    `json:"estimated_blocks"`
	Terms           []PlanTerm `json:"terms,omitempty"`
}

// PlanResponse is the reply to POST /plan. Alternatives are sorted by
// ascending estimated cost and include the chosen plan (first). Cached
// reports a plan-cache hit; Explain carries the EXPLAIN text when the
// request asked for it with ?explain=1.
type PlanResponse struct {
	Chosen       PlanAlternative   `json:"chosen"`
	Alternatives []PlanAlternative `json:"alternatives"`
	Cached       bool              `json:"cached"`
	Explain      string            `json:"explain,omitempty"`
	TookNs       int64             `json:"took_ns"`
}

// handlePlanRoute dispatches on method and media type before the body is
// decoded, like the batch estimate route: wrong methods get 405 + Allow,
// non-JSON bodies get 415.
func (s *Server) handlePlanRoute(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed,
			errorResponse{Error: fmt.Sprintf("method %s not allowed; use POST", r.Method)})
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil || mt != "application/json" {
			writeJSON(w, http.StatusUnsupportedMediaType,
				errorResponse{Error: fmt.Sprintf("Content-Type %q not supported; use application/json", ct)})
			return
		}
	}
	s.handlePlan(w, r)
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody)).Decode(&req); err != nil {
		badRequest(w, "decoding plan request: %v", err)
		return
	}
	for i, sel := range req.Selects {
		if math.IsNaN(sel.X) || math.IsInf(sel.X, 0) || math.IsNaN(sel.Y) || math.IsInf(sel.Y, 0) {
			badRequest(w, "selects[%d]: x and y must be finite numbers, got (%v, %v)", i, sel.X, sel.Y)
			return
		}
	}
	// One View load covers relation resolution and planning, so the plan
	// always prices a single consistent schema. Resolving here (instead of
	// letting the optimizer fail) keeps the standard error mapping: unknown
	// relation → 400 listing the published names, known-but-unready → 503
	// with Retry-After.
	v := s.store.View()
	q := optimizer.Query{Selectivity: req.FilterSelectivity}
	if len(req.Selects) > 0 {
		q.Selects = make([]optimizer.SelectPredicate, len(req.Selects))
		for i, sel := range req.Selects {
			if _, ok := s.resolveRelation(w, v, sel.Relation); !ok {
				return
			}
			q.Selects[i] = optimizer.SelectPredicate{
				Relation:  sel.Relation,
				Query:     geom.Point{X: sel.X, Y: sel.Y},
				K:         sel.K,
				Technique: sel.Technique,
			}
		}
	}
	if req.Join != nil {
		for _, name := range []string{req.Join.Outer, req.Join.Inner} {
			if _, ok := s.resolveRelation(w, v, name); !ok {
				return
			}
		}
		q.Join = &optimizer.JoinPredicate{
			Outer:     req.Join.Outer,
			Inner:     req.Join.Inner,
			K:         req.Join.K,
			Technique: req.Join.Technique,
		}
	}
	start := time.Now()
	dec, err := s.planner.Plan(v, q)
	if err != nil {
		// Relations were pre-resolved against v, so what remains are client
		// mistakes: malformed queries, unknown techniques (the message lists
		// what is registered), or estimator rejections.
		badRequest(w, "%v", err)
		return
	}
	took := time.Since(start)
	resp := PlanResponse{
		Chosen:       planAlternative(dec.Chosen, true),
		Alternatives: make([]PlanAlternative, len(dec.Alternatives)),
		Cached:       dec.Cached,
		TookNs:       took.Nanoseconds(),
	}
	for i, p := range dec.Alternatives {
		resp.Alternatives[i] = planAlternative(p, false)
	}
	if r.URL.Query().Get("explain") != "" {
		resp.Explain = dec.Explain()
	}
	writeJSON(w, http.StatusOK, resp)
}

// planAlternative shapes one optimizer plan for the wire; the cost terms
// ride along only on the chosen plan.
func planAlternative(p *optimizer.Plan, withTerms bool) PlanAlternative {
	out := PlanAlternative{Description: p.Description, EstimatedBlocks: p.EstimatedCost}
	if withTerms {
		out.Terms = make([]PlanTerm, len(p.Terms))
		for i, t := range p.Terms {
			out.Terms[i] = PlanTerm{
				Kind: string(t.Kind), Relation: t.Relation, Inner: t.Inner,
				K: t.K, Technique: t.Technique, Count: t.Count, Blocks: t.Blocks,
			}
		}
	}
	return out
}
