package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"net/http"

	"knncost/internal/geom"
	"knncost/internal/store"
)

// MutateRequest is the body of POST and DELETE /relations/{name}/points.
type MutateRequest struct {
	// Points are the coordinates to append or delete, each [x, y]. DELETE
	// removes every stored occurrence of each coordinate.
	Points [][2]float64 `json:"points"`
}

// handleAppendPoints streams points into a live relation. The write is
// WAL-durable when the response returns; the published snapshot absorbs it
// at the next compaction (see the delta_* fields of the response).
func (s *Server) handleAppendPoints(w http.ResponseWriter, r *http.Request) {
	s.handleMutatePoints(w, r, s.store.Append)
}

// handleDeletePoints removes every occurrence of the given coordinates
// from a live relation, with the same durability contract as append.
func (s *Server) handleDeletePoints(w http.ResponseWriter, r *http.Request) {
	s.handleMutatePoints(w, r, s.store.Delete)
}

func (s *Server) handleMutatePoints(w http.ResponseWriter, r *http.Request, apply func(string, []geom.Point) (store.RelationStatus, error)) {
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil || mt != "application/json" {
			writeJSON(w, http.StatusUnsupportedMediaType,
				errorResponse{Error: fmt.Sprintf("Content-Type %q not supported; use application/json", ct)})
			return
		}
	}
	var req MutateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRegisterBody)).Decode(&req); err != nil {
		badRequest(w, "decoding mutation: %v", err)
		return
	}
	if len(req.Points) == 0 {
		badRequest(w, "mutation needs at least one point")
		return
	}
	pts := make([]geom.Point, len(req.Points))
	for i, p := range req.Points {
		pts[i] = geom.Point{X: p[0], Y: p[1]}
	}
	st, err := apply(r.PathValue("name"), pts)
	if err != nil {
		switch {
		case errors.Is(err, store.ErrUnknownRelation):
			notFound(w, "%v", err)
		case errors.Is(err, store.ErrNoPointSource):
			// The relation exists but was registered from a prebuilt index:
			// there is no point sequence to mutate. Conflict, not not-found.
			writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		case errors.Is(err, store.ErrClosed):
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		default:
			badRequest(w, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, infoFromStatus(st))
}
