package middleware

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
}

func TestChainOrder(t *testing.T) {
	var order []string
	mk := func(name string) Middleware {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				order = append(order, name)
				next.ServeHTTP(w, r)
			})
		}
	}
	h := Chain(okHandler(), mk("outer"), mk("inner"))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("order = %v, want [outer inner]", order)
	}
}

func TestRecoverConvertsPanicToJSON500(t *testing.T) {
	var buf strings.Builder
	logger := log.New(&buf, "", 0)
	h := Recover(logger)(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/estimate/select", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q", ct)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("body %q is not JSON: %v", rec.Body.String(), err)
	}
	if !strings.Contains(body["error"], "boom") {
		t.Fatalf("error %q does not mention panic value", body["error"])
	}
	if !strings.Contains(buf.String(), "boom") || !strings.Contains(buf.String(), "middleware_test.go") {
		t.Fatalf("log %q missing panic value or stack", buf.String())
	}
}

// A panic after the response started cannot be turned into a 500; Recover
// must still swallow it (and log) rather than kill the serve goroutine
// un-notified.
func TestRecoverAfterHeadersWritten(t *testing.T) {
	var buf strings.Builder
	h := Recover(log.New(&buf, "", 0))(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		panic("late boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want the already-written 200", rec.Code)
	}
	if !strings.Contains(buf.String(), "late boom") {
		t.Fatalf("log %q missing panic value", buf.String())
	}
}

func TestRecoverPassesAbortHandler(t *testing.T) {
	h := Recover(log.New(io.Discard, "", 0))(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Fatal("ErrAbortHandler was not re-raised")
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
}

func TestRequestIDInjectsAndEchoes(t *testing.T) {
	var got string
	h := RequestID()(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = GetRequestID(r.Context())
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if got == "" {
		t.Fatal("no request ID in context")
	}
	if hdr := rec.Header().Get("X-Request-ID"); hdr != got {
		t.Fatalf("header %q != context %q", hdr, got)
	}
	// Client-supplied IDs are honored.
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set("X-Request-ID", "client-7")
	h.ServeHTTP(httptest.NewRecorder(), req)
	if got != "client-7" {
		t.Fatalf("client ID not honored: %q", got)
	}
}

func TestAccessLogLine(t *testing.T) {
	var buf strings.Builder
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		fmt.Fprint(w, "short")
	}), RequestID(), AccessLog(log.New(&buf, "", 0)))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/estimate/select?k=5", nil))
	line := buf.String()
	for _, want := range []string{"method=GET", "path=/estimate/select", "status=418", "bytes=5", "id=req-"} {
		if !strings.Contains(line, want) {
			t.Errorf("access line %q missing %q", line, want)
		}
	}
}

func TestDeadlinesByPrefix(t *testing.T) {
	var deadlines sync.Map
	h := Deadlines(time.Hour, map[string]time.Duration{
		"/cost/":      time.Millisecond,
		"/cost/never": 0,
	})(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d, ok := r.Context().Deadline()
		if !ok {
			deadlines.Store(r.URL.Path, time.Duration(0))
			return
		}
		deadlines.Store(r.URL.Path, time.Until(d))
	}))
	for _, path := range []string{"/estimate/select", "/cost/join", "/cost/never/mind"} {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", path, nil))
	}
	if v, _ := deadlines.Load("/estimate/select"); v.(time.Duration) <= time.Millisecond {
		t.Errorf("/estimate/select got the strict deadline: %v", v)
	}
	if v, _ := deadlines.Load("/cost/join"); v.(time.Duration) > time.Millisecond {
		t.Errorf("/cost/join deadline too lax: %v", v)
	}
	// The longest matching prefix wins; zero disables the deadline.
	if v, _ := deadlines.Load("/cost/never/mind"); v.(time.Duration) != 0 {
		t.Errorf("/cost/never/mind should have no deadline, got %v", v)
	}
}

// Exact shed accounting: with maxInFlight=2 and queueLen=2, four concurrent
// requests are admitted or queued and every further arrival is shed with a
// 503 carrying Retry-After.
func TestLimiterShedsExactly(t *testing.T) {
	const maxInFlight, queueLen, extra = 2, 2, 3
	release := make(chan struct{})
	entered := make(chan struct{}, maxInFlight+queueLen)
	lim := NewLimiter(maxInFlight, queueLen, 2*time.Second)
	h := lim.Middleware()(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		entered <- struct{}{}
		<-release
		fmt.Fprintln(w, "ok")
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	type result struct {
		status     int
		retryAfter string
	}
	results := make(chan result, maxInFlight+queueLen+extra)
	get := func() {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Error(err)
			results <- result{}
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		results <- result{resp.StatusCode, resp.Header.Get("Retry-After")}
	}

	// Fill the in-flight slots and wait until the handlers run.
	for i := 0; i < maxInFlight; i++ {
		go get()
	}
	for i := 0; i < maxInFlight; i++ {
		<-entered
	}
	// Fill the queue and wait until the limiter reports them queued.
	for i := 0; i < queueLen; i++ {
		go get()
	}
	waitFor(t, func() bool { return lim.Queued() == queueLen })
	// Everything beyond is shed immediately.
	for i := 0; i < extra; i++ {
		go get()
	}
	var shed int
	for i := 0; i < extra; i++ {
		r := <-results
		if r.status != http.StatusServiceUnavailable {
			t.Fatalf("overload request got %d, want 503", r.status)
		}
		if r.retryAfter != "2" {
			t.Fatalf("Retry-After = %q, want \"2\"", r.retryAfter)
		}
		shed++
	}
	if got := lim.Shed(); got != extra {
		t.Fatalf("Shed() = %d, want %d", got, extra)
	}
	// Releasing the handlers drains queue and in-flight successfully.
	close(release)
	for i := 0; i < maxInFlight+queueLen; i++ {
		if r := <-results; r.status != http.StatusOK {
			t.Fatalf("admitted request got %d, want 200", r.status)
		}
	}
	if lim.InFlight() != 0 || lim.Queued() != 0 {
		t.Fatalf("limiter not drained: inflight=%d queued=%d", lim.InFlight(), lim.Queued())
	}
}

// A queued request whose context dies leaves the queue with a 503 instead of
// waiting forever.
func TestLimiterQueueRespectsContext(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	entered := make(chan struct{}, 1)
	lim := NewLimiter(1, 1, time.Second)
	h := lim.Middleware()(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
	}))
	// Occupy the single slot.
	rec1 := make(chan struct{})
	go func() {
		defer close(rec1)
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	}()
	<-entered
	// Queue a request with an already-short deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil).WithContext(ctx))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("queued+cancelled request got %d, want 503", rec.Code)
	}
	release <- struct{}{}
	<-rec1
}

func TestReadyGateStates(t *testing.T) {
	var g Ready
	check := func(wantCode int, wantStatus string) {
		t.Helper()
		rec := httptest.NewRecorder()
		g.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
		if rec.Code != wantCode {
			t.Fatalf("code %d, want %d", rec.Code, wantCode)
		}
		var body map[string]string
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatal(err)
		}
		if body["status"] != wantStatus {
			t.Fatalf("status %q, want %q", body["status"], wantStatus)
		}
	}
	check(http.StatusServiceUnavailable, "starting")
	g.SetReady()
	if !g.IsReady() {
		t.Fatal("IsReady after SetReady")
	}
	check(http.StatusOK, "ready")
	g.SetDraining()
	check(http.StatusServiceUnavailable, "draining")
}

func TestWrapComposesStack(t *testing.T) {
	var buf strings.Builder
	h, lim := Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := r.Context().Deadline(); !ok {
			t.Error("no deadline reached the handler")
		}
		if GetRequestID(r.Context()) == "" {
			t.Error("no request ID reached the handler")
		}
		panic("wrapped boom")
	}), Config{
		Logger:           log.New(&buf, "", 0),
		EstimateDeadline: time.Second,
		CostDeadline:     500 * time.Millisecond,
		MaxInFlight:      4,
		QueueLen:         4,
		AccessLog:        true,
	})
	if lim == nil {
		t.Fatal("Wrap returned no limiter despite MaxInFlight > 0")
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/estimate/select", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	// The access line records the 500 produced by Recover.
	if !strings.Contains(buf.String(), "status=500") {
		t.Fatalf("access log %q missing status=500", buf.String())
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
