// Package middleware hardens the estimation service for production traffic.
// The paper motivates cost estimation for "location-based services that
// serve multiple queries at very high rates"; at those rates a single
// panicking handler, one slow ground-truth computation, or a burst beyond
// capacity must degrade the service, not destroy it. This package provides
// the standard robustness layers as composable http.Handler wrappers:
//
//   - Recover: converts handler panics into JSON 500s and logs the stack;
//     the process survives.
//   - Deadlines: attaches a per-request context deadline chosen by path
//     prefix (stricter for the expensive ground-truth /cost/* routes than
//     for the microsecond /estimate/* routes), so cancellation propagates
//     into the block-scan loops of internal/knn and internal/knnjoin.
//   - Limiter: bounds concurrent requests with a short admission queue and
//     sheds excess load with 503 + Retry-After instead of queueing without
//     bound.
//   - RequestID + AccessLog: injects a request ID and emits one structured
//     line per request (method, path, status, bytes, duration, id).
//   - Ready: a liveness/readiness gate backing a /readyz endpoint that is
//     503 while catalogs build and during graceful drain.
//
// Wrap composes them in the canonical order. The middlewares are generic
// over http.Handler and usable by any server; cmd/knncostd and the
// fault-injection tests share the exact same composition.
package middleware

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Middleware wraps an http.Handler with one robustness concern.
type Middleware func(http.Handler) http.Handler

// Chain applies mws to h so that the first middleware is the outermost:
// Chain(h, a, b) serves a(b(h)).
func Chain(h http.Handler, mws ...Middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// Config collects the knobs of the canonical middleware stack built by Wrap.
type Config struct {
	// Logger receives panic stacks and access lines. Nil means the
	// standard logger.
	Logger *log.Logger
	// EstimateDeadline bounds /estimate/* requests (and any path without
	// a more specific rule). Zero disables the deadline.
	EstimateDeadline time.Duration
	// CostDeadline bounds the expensive ground-truth /cost/* requests.
	// It is typically stricter than EstimateDeadline: executing the full
	// distance-browsing or locality computation is the one thing a loaded
	// server must not let run away. Zero disables the deadline.
	CostDeadline time.Duration
	// AdminDeadline bounds the /relations admin routes. Registration reads
	// and validates a potentially large payload but only enqueues the
	// build, so it deserves its own budget independent of the estimate
	// routes. Zero falls back to EstimateDeadline.
	AdminDeadline time.Duration
	// MaxInFlight bounds concurrently served requests. Zero disables
	// load shedding.
	MaxInFlight int
	// QueueLen is the admission-queue length on top of MaxInFlight;
	// arrivals beyond MaxInFlight+QueueLen are shed with 503.
	QueueLen int
	// RetryAfter is the value of the Retry-After header on shed
	// responses. Zero means 1 second.
	RetryAfter time.Duration
	// AccessLog enables the per-request log line.
	AccessLog bool
}

func (c Config) logger() *log.Logger {
	if c.Logger != nil {
		return c.Logger
	}
	return log.Default()
}

// Wrap composes the canonical production stack around h:
//
//	RequestID → AccessLog → Recover → Limiter → Deadlines → h
//
// Shedding happens before the deadline clock starts (a queued request
// should not consume its compute budget while waiting for admission), and
// Recover sits outside both so a panic anywhere below is converted into a
// JSON 500. It returns the shared Limiter so callers can observe in-flight
// and queued counts (nil when MaxInFlight is zero).
func Wrap(h http.Handler, cfg Config) (http.Handler, *Limiter) {
	mws := []Middleware{RequestID()}
	if cfg.AccessLog {
		mws = append(mws, AccessLog(cfg.logger()))
	}
	mws = append(mws, Recover(cfg.logger()))
	var lim *Limiter
	if cfg.MaxInFlight > 0 {
		lim = NewLimiter(cfg.MaxInFlight, cfg.QueueLen, cfg.RetryAfter)
		mws = append(mws, lim.Middleware())
	}
	if cfg.EstimateDeadline > 0 || cfg.CostDeadline > 0 || cfg.AdminDeadline > 0 {
		rules := map[string]time.Duration{"/cost/": cfg.CostDeadline}
		if cfg.AdminDeadline > 0 {
			rules["/relations"] = cfg.AdminDeadline
		}
		mws = append(mws, Deadlines(cfg.EstimateDeadline, rules))
	}
	return Chain(h, mws...), lim
}

// --- request IDs -----------------------------------------------------------

type ctxKey int

const requestIDKey ctxKey = 0

// idCounter makes request IDs unique within a process.
var idCounter atomic.Uint64

// GetRequestID returns the request ID injected by RequestID, or "" when the
// middleware is not installed.
func GetRequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// RequestID injects a unique request ID into the context and echoes it in
// the X-Request-ID response header. An ID supplied by the client in
// X-Request-ID is honored, so IDs can follow a request across services.
func RequestID() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := r.Header.Get("X-Request-ID")
			if id == "" || len(id) > 64 {
				id = fmt.Sprintf("req-%06d", idCounter.Add(1))
			}
			w.Header().Set("X-Request-ID", id)
			next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey, id)))
		})
	}
}

// --- access logging --------------------------------------------------------

// statusWriter records the status code and byte count written through it so
// AccessLog and Recover can observe the response.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += n
	return n, err
}

// Flush forwards to the underlying writer when it supports flushing, so the
// wrapper does not hide streaming capability.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// AccessLog emits one structured line per request: method, path, status,
// response bytes, duration and request ID.
func AccessLog(logger *log.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sw, r)
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			logger.Printf("access method=%s path=%s status=%d bytes=%d dur=%s id=%s",
				r.Method, r.URL.Path, status, sw.bytes,
				time.Since(start).Round(time.Microsecond), GetRequestID(r.Context()))
		})
	}
}

// --- panic recovery --------------------------------------------------------

// Recover converts a panic below it into a JSON 500 (when the response has
// not started) and logs the panic value with a stack trace; the connection's
// goroutine — and therefore the process — keeps serving. http.ErrAbortHandler
// is re-raised as net/http's documented way to abort a response.
func Recover(logger *log.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			defer func() {
				rec := recover()
				if rec == nil {
					return
				}
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				logger.Printf("panic serving %s %s (id=%s): %v\n%s",
					r.Method, r.URL.Path, GetRequestID(r.Context()), rec, debug.Stack())
				if sw.status == 0 {
					w.Header().Set("Content-Type", "application/json")
					w.WriteHeader(http.StatusInternalServerError)
					fmt.Fprintf(w, "{\"error\":%s}\n", strconv.Quote(fmt.Sprintf("internal error: %v", rec)))
				}
			}()
			next.ServeHTTP(sw, r)
		})
	}
}

// --- per-route deadlines ---------------------------------------------------

// Deadlines attaches a context deadline to every request: the duration of
// the longest matching path prefix in rules, or def when none matches. A
// zero duration (in either position) leaves the request without a deadline.
// Handlers below must propagate r.Context() into their work for the
// deadline to have teeth; see knn.SelectCostContext and friends.
func Deadlines(def time.Duration, rules map[string]time.Duration) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			d := def
			matched := -1
			for prefix, pd := range rules {
				if strings.HasPrefix(r.URL.Path, prefix) && len(prefix) > matched {
					d, matched = pd, len(prefix)
				}
			}
			if d <= 0 {
				next.ServeHTTP(w, r)
				return
			}
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			next.ServeHTTP(w, r.WithContext(ctx))
		})
	}
}

// --- load shedding ---------------------------------------------------------

// Limiter bounds concurrent requests at maxInFlight, admits up to queueLen
// more into a waiting queue, and sheds everything beyond that with
// 503 Service Unavailable + Retry-After. Queued requests whose context is
// cancelled (client gone, deadline hit upstream) leave the queue with a 503
// rather than occupying a slot for a reply nobody will read.
type Limiter struct {
	sem        chan struct{}
	queueLen   int64
	queued     atomic.Int64
	inFlight   atomic.Int64
	shed       atomic.Int64
	retryAfter string
}

// NewLimiter creates a Limiter. retryAfter <= 0 defaults to one second
// (Retry-After is expressed in whole seconds and rounded up).
func NewLimiter(maxInFlight, queueLen int, retryAfter time.Duration) *Limiter {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if queueLen < 0 {
		queueLen = 0
	}
	secs := int(retryAfter.Round(time.Second) / time.Second)
	if retryAfter > 0 && secs < 1 {
		secs = 1
	}
	if retryAfter <= 0 {
		secs = 1
	}
	return &Limiter{
		sem:        make(chan struct{}, maxInFlight),
		queueLen:   int64(queueLen),
		retryAfter: strconv.Itoa(secs),
	}
}

// InFlight returns the number of requests currently being served.
func (l *Limiter) InFlight() int { return int(l.inFlight.Load()) }

// Queued returns the number of requests waiting for admission.
func (l *Limiter) Queued() int { return int(l.queued.Load()) }

// Shed returns the total number of requests rejected with 503 so far.
func (l *Limiter) Shed() int { return int(l.shed.Load()) }

// Middleware returns the wrapping function applying l.
func (l *Limiter) Middleware() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			select {
			case l.sem <- struct{}{}: // fast path: a slot is free
			default:
				// Queue, unless the queue is already full.
				if l.queued.Add(1) > l.queueLen {
					l.queued.Add(-1)
					l.reject(w)
					return
				}
				select {
				case l.sem <- struct{}{}:
					l.queued.Add(-1)
				case <-r.Context().Done():
					l.queued.Add(-1)
					l.reject(w)
					return
				}
			}
			l.inFlight.Add(1)
			defer func() {
				l.inFlight.Add(-1)
				<-l.sem
			}()
			next.ServeHTTP(w, r)
		})
	}
}

func (l *Limiter) reject(w http.ResponseWriter) {
	l.shed.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", l.retryAfter)
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintln(w, `{"error":"server overloaded, retry later"}`)
}

// --- readiness gate --------------------------------------------------------

// Ready is the tri-state readiness gate behind a /readyz endpoint. A fresh
// Ready reports "starting" (503) so orchestrators do not route traffic while
// catalogs build; SetReady flips it to 200; SetDraining flips it back to 503
// for the graceful-shutdown window so load balancers stop sending new work
// before the listener closes. Liveness (/healthz) is separate and should be
// 200 for the whole lifetime of the process.
type Ready struct {
	state atomic.Int32 // 0 starting, 1 ready, 2 draining
}

// SetReady marks the gate ready; /readyz starts returning 200.
func (g *Ready) SetReady() { g.state.Store(1) }

// SetDraining marks the gate draining; /readyz returns 503 again.
func (g *Ready) SetDraining() { g.state.Store(2) }

// IsReady reports whether the gate is in the ready state.
func (g *Ready) IsReady() bool { return g.state.Load() == 1 }

// Handler serves the /readyz response for the gate's current state.
func (g *Ready) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch g.state.Load() {
		case 1:
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, `{"status":"ready"}`)
		case 2:
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"status":"draining"}`)
		default:
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"status":"starting"}`)
		}
	})
}
