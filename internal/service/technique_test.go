package service

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"testing"

	"knncost/internal/engine"
)

// TestTechniquesEndpoint pins the GET /techniques listing against the
// engine registry: every registered technique appears, in canonical order,
// with its aliases.
func TestTechniquesEndpoint(t *testing.T) {
	srv := testServer(t)
	var out TechniquesResponse
	if code := getJSON(t, srv.URL+"/techniques", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	selNames := make([]string, len(out.Select))
	for i, ti := range out.Select {
		selNames[i] = ti.Name
		if ti.Summary == "" {
			t.Errorf("select technique %s has no summary", ti.Name)
		}
	}
	joinNames := make([]string, len(out.Join))
	for i, ti := range out.Join {
		joinNames[i] = ti.Name
	}
	if got, want := strings.Join(selNames, ","), strings.Join(engine.SelectNames(), ","); got != want {
		t.Errorf("select techniques = %s, want %s", got, want)
	}
	if got, want := strings.Join(joinNames, ","), strings.Join(engine.JoinNames(), ","); got != want {
		t.Errorf("join techniques = %s, want %s", got, want)
	}
}

// TestEstimateSelectTechniqueParam drives every registered select technique
// (canonical names and aliases alike) through ?technique= and checks the
// legacy alias answers agree exactly with their canonical names.
func TestEstimateSelectTechniqueParam(t *testing.T) {
	srv := testServer(t)
	canonical := map[string]float64{}
	for _, name := range engine.SelectNames() {
		var out EstimateResponse
		url := fmt.Sprintf("%s/estimate/select?rel=hotels&x=10&y=45&k=20&technique=%s", srv.URL, name)
		if code := getJSON(t, url, &out); code != http.StatusOK {
			t.Fatalf("%s: status %d (%+v)", name, code, out)
		}
		if out.Method != name {
			t.Errorf("%s: echoed method %q", name, out.Method)
		}
		canonical[name] = out.Blocks
	}
	for alias, name := range map[string]string{
		"staircase":             engine.TechStaircaseCC,
		"STAIRCASE-CC":          engine.TechStaircaseCC,
		"staircase-center-only": engine.TechStaircaseC,
	} {
		var out EstimateResponse
		url := fmt.Sprintf("%s/estimate/select?rel=hotels&x=10&y=45&k=20&technique=%s", srv.URL, alias)
		if code := getJSON(t, url, &out); code != http.StatusOK {
			t.Fatalf("alias %s: status %d", alias, code)
		}
		if out.Blocks != canonical[name] {
			t.Errorf("alias %s: %v blocks, canonical %s gives %v", alias, out.Blocks, name, canonical[name])
		}
		if out.Method != alias {
			t.Errorf("alias %s: echoed method %q, want the client's string", alias, out.Method)
		}
	}

	// technique wins over the legacy method parameter.
	var viaTech, viaMethod EstimateResponse
	getJSON(t, srv.URL+"/estimate/select?rel=hotels&x=10&y=45&k=20&technique=density&method=staircase", &viaTech)
	getJSON(t, srv.URL+"/estimate/select?rel=hotels&x=10&y=45&k=20&method=density", &viaMethod)
	if viaTech.Blocks != viaMethod.Blocks || viaTech.Method != "density" {
		t.Errorf("technique did not take precedence over method: %+v vs %+v", viaTech, viaMethod)
	}

	// Unknown names are 400 and the message lists what is registered.
	var errOut struct {
		Error string `json:"error"`
	}
	code := getJSON(t, srv.URL+"/estimate/select?rel=hotels&x=10&y=45&k=20&technique=magic", &errOut)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown technique: status %d", code)
	}
	if !strings.Contains(errOut.Error, "unknown select method") ||
		!strings.Contains(errOut.Error, engine.TechStaircaseC) {
		t.Errorf("unknown technique error %q does not list registered names", errOut.Error)
	}
}

// TestEstimateJoinTechniqueParam drives every registered join technique
// through ?technique= on both pair orders.
func TestEstimateJoinTechniqueParam(t *testing.T) {
	srv := testServer(t)
	for _, name := range engine.JoinNames() {
		for _, pair := range [][2]string{{"hotels", "restaurants"}, {"restaurants", "hotels"}} {
			var out EstimateResponse
			url := fmt.Sprintf("%s/estimate/join?outer=%s&inner=%s&k=15&technique=%s",
				srv.URL, pair[0], pair[1], name)
			if code := getJSON(t, url, &out); code != http.StatusOK {
				t.Fatalf("%s %s⋉%s: status %d (%+v)", name, pair[0], pair[1], code, out)
			}
			if out.Blocks <= 0 || out.Method != name {
				t.Errorf("%s %s⋉%s: response %+v", name, pair[0], pair[1], out)
			}
		}
	}

	var errOut struct {
		Error string `json:"error"`
	}
	code := getJSON(t, srv.URL+"/estimate/join?outer=hotels&inner=restaurants&k=15&technique=magic", &errOut)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown join technique: status %d", code)
	}
	if !strings.Contains(errOut.Error, "unknown join method") ||
		!strings.Contains(errOut.Error, engine.TechVirtualGrid) {
		t.Errorf("unknown join technique error %q does not list registered names", errOut.Error)
	}
}

// TestBatchSelectTechniqueField exercises the batch body's technique field:
// it selects the estimator, wins over the legacy method field, and every
// registered select technique works in a batch.
func TestBatchSelectTechniqueField(t *testing.T) {
	srv := testServer(t)
	queries := []BatchSelectQuery{{X: 10, Y: 45, K: 7}, {X: -30, Y: 51, K: 40}}
	for _, name := range engine.SelectNames() {
		var batch BatchSelectResponse
		code := postJSON(t, srv.URL+"/estimate/select/batch", BatchSelectRequest{
			Relation: "restaurants", Technique: name, Queries: queries,
		}, &batch)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", name, code)
		}
		for i, q := range queries {
			var single EstimateResponse
			url := fmt.Sprintf("%s/estimate/select?rel=restaurants&x=%v&y=%v&k=%d&technique=%s",
				srv.URL, q.X, q.Y, q.K, name)
			if code := getJSON(t, url, &single); code != http.StatusOK {
				t.Fatalf("%s single %d: status %d", name, i, code)
			}
			if batch.Results[i].Blocks != single.Blocks {
				t.Errorf("%s query %d: batch %v != single %v", name, i, batch.Results[i].Blocks, single.Blocks)
			}
		}
	}

	// Technique wins over Method; an unknown technique fails the whole batch.
	var out BatchSelectResponse
	code := postJSON(t, srv.URL+"/estimate/select/batch", BatchSelectRequest{
		Relation: "restaurants", Technique: "density", Method: "staircase", Queries: queries,
	}, &out)
	if code != http.StatusOK || out.Method != "density" {
		t.Errorf("technique precedence in batch: status %d, method %q", code, out.Method)
	}
	var errOut struct {
		Error string `json:"error"`
	}
	code = postJSON(t, srv.URL+"/estimate/select/batch", BatchSelectRequest{
		Relation: "restaurants", Technique: "magic", Queries: queries,
	}, &errOut)
	if code != http.StatusBadRequest {
		t.Errorf("unknown batch technique: status %d", code)
	}
}

// TestSelectRejectsNegativeK is the service-layer leg of the uniform k < 1
// contract: negative k is a 400 on the single endpoint for every technique.
func TestSelectRejectsNegativeK(t *testing.T) {
	srv := testServer(t)
	for _, name := range engine.SelectNames() {
		for _, k := range []int{0, -1, -100} {
			var errOut struct {
				Error string `json:"error"`
			}
			url := fmt.Sprintf("%s/estimate/select?rel=hotels&x=10&y=45&k=%d&technique=%s", srv.URL, k, name)
			if code := getJSON(t, url, &errOut); code != http.StatusBadRequest {
				t.Errorf("%s k=%d: status %d, want 400", name, k, code)
			}
		}
	}
}

// TestTechniqueListingsSorted pins deterministic ordering on the wire:
// GET /techniques lists canonical names and per-technique aliases in sorted
// order, and the ?technique= 400 body enumerates the registered names
// sorted — registration order must never leak into any listing surface.
func TestTechniqueListingsSorted(t *testing.T) {
	srv := testServer(t)
	var out TechniquesResponse
	if code := getJSON(t, srv.URL+"/techniques", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	checkSorted := func(what string, names []string) {
		t.Helper()
		if !sort.StringsAreSorted(names) {
			t.Errorf("%s not sorted: %v", what, names)
		}
	}
	var selNames, joinNames []string
	for _, ti := range out.Select {
		selNames = append(selNames, ti.Name)
		checkSorted("aliases of select technique "+ti.Name, ti.Aliases)
	}
	for _, ti := range out.Join {
		joinNames = append(joinNames, ti.Name)
		checkSorted("aliases of join technique "+ti.Name, ti.Aliases)
	}
	checkSorted("select technique names", selNames)
	checkSorted("join technique names", joinNames)

	var errOut struct {
		Error string `json:"error"`
	}
	code := getJSON(t, srv.URL+"/estimate/select?rel=hotels&x=10&y=45&k=20&technique=magic", &errOut)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown technique: status %d", code)
	}
	wantList := strings.Join(engine.SelectNames(), ", ")
	if !strings.Contains(errOut.Error, wantList) {
		t.Errorf("unknown-technique 400 body %q does not list names in sorted order %q", errOut.Error, wantList)
	}
	code = getJSON(t, srv.URL+"/estimate/join?outer=hotels&inner=restaurants&k=15&technique=magic", &errOut)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown join technique: status %d", code)
	}
	wantList = strings.Join(engine.JoinNames(), ", ")
	if !strings.Contains(errOut.Error, wantList) {
		t.Errorf("unknown-join-technique 400 body %q does not list names in sorted order %q", errOut.Error, wantList)
	}
}
