package service

// End-to-end robustness proofs over the real HTTP stack: the service
// wrapped in the exact middleware composition knncostd ships
// (middleware.Wrap), with faults made deterministic by internal/faultinject
// and the costSelect/costJoin hooks. Run under -race by `make check`.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"knncost/internal/core"
	"knncost/internal/datagen"
	"knncost/internal/faultinject"
	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/quadtree"
	"knncost/internal/service/middleware"
)

// smallServer builds a Server over small relations (fast catalogs) and
// returns the raw handler for wrapping.
func smallServer(t *testing.T) *Server {
	t.Helper()
	build := func(n int, seed int64) *index.Tree {
		return quadtree.Build(datagen.OSMLike(n, seed), quadtree.Options{
			Capacity: 64, Bounds: datagen.WorldBounds,
		}).Index()
	}
	s, err := New(map[string]*index.Tree{
		"hotels":      build(2000, 1),
		"restaurants": build(3000, 2),
	}, Options{MaxK: 100, SampleSize: 50, GridSize: 6})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func swapCostSelect(t *testing.T, fn func(context.Context, *index.Tree, geom.Point, int) (int, error)) {
	t.Helper()
	old := costSelect
	costSelect = fn
	t.Cleanup(func() { costSelect = old })
}

// A handler panic (injected deterministically into request #1) yields a
// JSON 500 and the server keeps serving: the next request succeeds.
func TestRecoveryKeepsServing(t *testing.T) {
	s := smallServer(t)
	inject := faultinject.Middleware(faultinject.Once(1, faultinject.Fault{Panic: "injected handler panic"}))
	h, _ := middleware.Wrap(inject(s), middleware.Config{
		Logger: log.New(io.Discard, "", 0),
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func() (int, string) {
		resp, err := http.Get(srv.URL + "/estimate/select?rel=hotels&x=10&y=45&k=5")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, _ := get(); code != http.StatusOK {
		t.Fatalf("request 0: status %d, want 200", code)
	}
	code, body := get()
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking request: status %d, want 500", code)
	}
	var e errorResponse
	if err := json.Unmarshal([]byte(body), &e); err != nil || !strings.Contains(e.Error, "injected handler panic") {
		t.Fatalf("panicking request body %q: not the JSON 500 of Recover (err=%v)", body, err)
	}
	// The process survived: the very next request is served normally.
	if code, _ := get(); code != http.StatusOK {
		t.Fatalf("request after panic: status %d, want 200", code)
	}
}

// A /cost/select that would run for 10 s is cut off at its 100 ms deadline:
// 503 with a JSON body, returned within deadline + epsilon.
func TestDeadlineCutsSlowCostSelect(t *testing.T) {
	s := smallServer(t)
	swapCostSelect(t, func(ctx context.Context, _ *index.Tree, _ geom.Point, _ int) (int, error) {
		// The shape of a long block-scan loop: ctx checked every ms.
		if err := faultinject.Busy(ctx, time.Millisecond, 10*time.Second); err != nil {
			return 0, err
		}
		return 1, nil
	})
	const deadline = 100 * time.Millisecond
	h, _ := middleware.Wrap(s, middleware.Config{
		Logger:           log.New(io.Discard, "", 0),
		EstimateDeadline: time.Minute,
		CostDeadline:     deadline,
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	start := time.Now()
	resp, err := http.Get(srv.URL + "/cost/select?rel=hotels&x=10&y=45&k=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	took := time.Since(start)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e.Error, "deadline") {
		t.Fatalf("body not a deadline JSON error: %+v (err=%v)", e, err)
	}
	// Generous epsilon for loaded CI machines; the point is "well under
	// the 10 s the handler wanted", not microsecond scheduling.
	if took > deadline+2*time.Second {
		t.Fatalf("cut-off took %v, want ≈%v", took, deadline)
	}
	// The estimate path keeps its own (lax) deadline: still serving.
	resp2, err := http.Get(srv.URL + "/estimate/select?rel=hotels&x=10&y=45&k=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("estimate after cut-off: status %d", resp2.StatusCode)
	}
}

// Overload beyond max-in-flight + queue sheds with 503 + Retry-After, and
// exactly the expected number of requests is shed.
func TestOverloadShedsExactCount(t *testing.T) {
	const maxInFlight, queueLen, extra = 2, 2, 3
	s := smallServer(t)
	release := make(chan struct{})
	entered := make(chan struct{}, maxInFlight+queueLen)
	swapCostSelect(t, func(ctx context.Context, _ *index.Tree, _ geom.Point, _ int) (int, error) {
		entered <- struct{}{}
		select {
		case <-release:
			return 3, nil
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	})
	h, lim := middleware.Wrap(s, middleware.Config{
		Logger:      log.New(io.Discard, "", 0),
		MaxInFlight: maxInFlight,
		QueueLen:    queueLen,
		RetryAfter:  time.Second,
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	results := make(chan *http.Response, maxInFlight+queueLen+extra)
	get := func() {
		resp, err := http.Get(srv.URL + "/cost/select?rel=hotels&x=10&y=45&k=5")
		if err != nil {
			t.Error(err)
			results <- nil
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		results <- resp
	}
	for i := 0; i < maxInFlight; i++ {
		go get()
	}
	for i := 0; i < maxInFlight; i++ {
		<-entered
	}
	for i := 0; i < queueLen; i++ {
		go get()
	}
	waitForCond(t, func() bool { return lim.Queued() == queueLen })
	for i := 0; i < extra; i++ {
		go get()
	}
	for i := 0; i < extra; i++ {
		resp := <-results
		if resp == nil {
			t.Fatal("request failed")
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("shed request: status %d, want 503", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("shed response missing Retry-After")
		}
	}
	if lim.Shed() != extra {
		t.Fatalf("limiter shed %d, want exactly %d", lim.Shed(), extra)
	}
	close(release)
	for i := 0; i < maxInFlight+queueLen; i++ {
		resp := <-results
		if resp == nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("admitted request: %+v, want 200", resp)
		}
	}
}

// A batch request over a slow estimator is detected between queries and cut
// at its deadline — cancellation threads through the HTTP handler into
// core.EstimateSelectBatchContext's worker fan-out.
func TestBatchDeadlineCutOff(t *testing.T) {
	s := smallServer(t)
	// Each estimate injects 20 ms of (uncancellable) latency; 100 queries
	// would take 2 s serially, but the 100 ms deadline stops the batch
	// after a handful of queries.
	oldHook := estimatorHook
	estimatorHook = func(est core.SelectEstimator) core.SelectEstimator {
		return faultinject.Estimator(est, faultinject.Always(faultinject.Fault{Latency: 20 * time.Millisecond}))
	}
	t.Cleanup(func() { estimatorHook = oldHook })
	const deadline = 100 * time.Millisecond
	h, _ := middleware.Wrap(s, middleware.Config{
		Logger:           log.New(io.Discard, "", 0),
		EstimateDeadline: deadline,
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	queries := make([]BatchSelectQuery, 100)
	for i := range queries {
		queries[i] = BatchSelectQuery{X: 10, Y: 45, K: 5}
	}
	body, _ := json.Marshal(BatchSelectRequest{
		Relation: "hotels", Parallelism: 1, Queries: queries,
	})
	start := time.Now()
	resp, err := http.Post(srv.URL+"/estimate/select/batch", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	took := time.Since(start)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if took > deadline+2*time.Second {
		t.Fatalf("batch cut-off took %v, want ≈%v", took, deadline)
	}
}

func waitForCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// Seeded chaos: a randomized-but-reproducible mix of latency, panics and
// errors injected ahead of the service; every response is a well-formed
// JSON status (200/500/503), never a dropped connection, and the server
// still answers cleanly afterwards.
func TestSeededChaosMix(t *testing.T) {
	s := smallServer(t)
	script := faultinject.Seeded(7, faultinject.Profile{
		PLatency: 0.2, Latency: 5 * time.Millisecond,
		PPanic: 0.2,
		PErr:   0.2, Err: fmt.Errorf("chaos error"),
	})
	h, _ := middleware.Wrap(faultinject.Middleware(script)(s), middleware.Config{
		Logger:           log.New(io.Discard, "", 0),
		EstimateDeadline: time.Second,
		CostDeadline:     time.Second,
		MaxInFlight:      8,
		QueueLen:         8,
	})
	srv := httptest.NewServer(h)
	defer srv.Close()
	counts := map[int]int{}
	for i := 0; i < 60; i++ {
		resp, err := http.Get(srv.URL + "/estimate/select?rel=hotels&x=10&y=45&k=5")
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		var payload map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
			t.Fatalf("request %d: non-JSON body (status %d): %v", i, resp.StatusCode, err)
		}
		resp.Body.Close()
		counts[resp.StatusCode]++
	}
	if counts[http.StatusOK] == 0 || counts[http.StatusInternalServerError] == 0 {
		t.Fatalf("chaos mix did not exercise both success and failure: %v", counts)
	}
}
