package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"knncost/internal/geom"
	"knncost/internal/store"
)

// planServer boots a server with two ready relations and returns its base
// URL with the backing store.
func planServer(t *testing.T) (url string, st *store.Store) {
	t.Helper()
	hsrv, hst := adminServer(t, "")
	for _, reg := range []struct {
		name string
		seed int64
	}{{"hotels", 1}, {"cafes", 2}} {
		code, _ := adminPost(t, hsrv.URL+"/relations", RegisterRequest{Name: reg.name, Points: inlinePoints(600, reg.seed)}, nil)
		if code != http.StatusAccepted {
			t.Fatalf("registering %s: status %d", reg.name, code)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hst.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	return hsrv.URL, hst
}

func twoSelectPlan(k1, k2 int) PlanRequest {
	return PlanRequest{Selects: []PlanSelect{
		{Relation: "hotels", X: 50, Y: 50, K: k1},
		{Relation: "cafes", X: 50, Y: 50, K: k2},
	}}
}

func TestPlanEndpoint(t *testing.T) {
	base, _ := planServer(t)

	var resp PlanResponse
	code, _ := adminPost(t, base+"/plan?explain=1", twoSelectPlan(8, 4), &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Cached {
		t.Fatal("first plan reported cached")
	}
	if len(resp.Alternatives) != 2 {
		t.Fatalf("alternatives = %d, want 2", len(resp.Alternatives))
	}
	if resp.Chosen.Description != resp.Alternatives[0].Description {
		t.Fatalf("chosen %q is not the first alternative %q", resp.Chosen.Description, resp.Alternatives[0].Description)
	}
	if len(resp.Chosen.Terms) != 2 {
		t.Fatalf("chosen plan carries %d terms, want 2", len(resp.Chosen.Terms))
	}
	sum := 0.0
	for _, term := range resp.Chosen.Terms {
		sum += term.Blocks * term.Count
	}
	if sum != resp.Chosen.EstimatedBlocks {
		t.Fatalf("term sum %v != estimated %v", sum, resp.Chosen.EstimatedBlocks)
	}
	if !strings.Contains(resp.Explain, "* plan 1:") {
		t.Fatalf("explain text missing: %q", resp.Explain)
	}
	if strings.Contains(resp.Explain, "plan cache") {
		t.Fatalf("first plan's explain claims a cache hit: %q", resp.Explain)
	}

	// Second, identical request: served from the cache, annotated.
	var cachedResp PlanResponse
	code, _ = adminPost(t, base+"/plan?explain=1", twoSelectPlan(8, 4), &cachedResp)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !cachedResp.Cached {
		t.Fatal("second plan not served from cache")
	}
	if !strings.Contains(cachedResp.Explain, "(served from plan cache)") {
		t.Fatalf("cached explain missing annotation: %q", cachedResp.Explain)
	}
	if cachedResp.Chosen.EstimatedBlocks != resp.Chosen.EstimatedBlocks {
		t.Fatalf("cached cost %v != fresh cost %v", cachedResp.Chosen.EstimatedBlocks, resp.Chosen.EstimatedBlocks)
	}

	// Without ?explain= the text stays off the wire.
	var plain PlanResponse
	adminPost(t, base+"/plan", twoSelectPlan(8, 4), &plain)
	if plain.Explain != "" {
		t.Fatalf("explain sent without being requested: %q", plain.Explain)
	}
}

func TestPlanEndpointJoinShape(t *testing.T) {
	base, _ := planServer(t)
	var resp PlanResponse
	code, _ := adminPost(t, base+"/plan", PlanRequest{
		Selects: []PlanSelect{{Relation: "hotels", X: 50, Y: 50, K: 4}},
		Join:    &PlanJoin{Outer: "hotels", Inner: "cafes", K: 3},
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(resp.Alternatives) != 2 {
		t.Fatalf("alternatives = %d, want 2 (join-first + pushdown)", len(resp.Alternatives))
	}
	seen := map[string]bool{}
	for _, alt := range resp.Alternatives {
		switch {
		case strings.Contains(alt.Description, "join hotels⋉cafes"):
			seen["join-first"] = true
		case strings.Contains(alt.Description, "probe cafes"):
			seen["pushdown"] = true
		}
	}
	if !seen["join-first"] || !seen["pushdown"] {
		t.Fatalf("expected both join shapes, got %+v", resp.Alternatives)
	}
}

func TestPlanEndpointErrors(t *testing.T) {
	base, st := planServer(t)

	post := func(t *testing.T, url, contentType string, body []byte) (int, errorResponse) {
		t.Helper()
		resp, err := http.Post(url, contentType, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var er errorResponse
		json.NewDecoder(resp.Body).Decode(&er)
		return resp.StatusCode, er
	}
	marshal := func(t *testing.T, v any) []byte {
		t.Helper()
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	t.Run("method not allowed", func(t *testing.T) {
		req, _ := http.NewRequest(http.MethodGet, base+"/plan", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status %d, want 405", resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
			t.Fatalf("Allow = %q, want POST", allow)
		}
	})

	t.Run("unsupported media type", func(t *testing.T) {
		code, _ := post(t, base+"/plan", "text/plain", []byte("hi"))
		if code != http.StatusUnsupportedMediaType {
			t.Fatalf("status %d, want 415", code)
		}
	})

	t.Run("unknown relation is 400", func(t *testing.T) {
		req := twoSelectPlan(8, 4)
		req.Selects[0].Relation = "nope"
		code, er := post(t, base+"/plan", "application/json", marshal(t, req))
		if code != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", code)
		}
		if !strings.Contains(er.Error, "unknown relation") || !strings.Contains(er.Error, "nope") {
			t.Fatalf("error %q", er.Error)
		}
	})

	t.Run("unknown technique is 400 listing registered", func(t *testing.T) {
		req := twoSelectPlan(8, 4)
		req.Selects[0].Technique = "nope"
		code, er := post(t, base+"/plan", "application/json", marshal(t, req))
		if code != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", code)
		}
		if !strings.Contains(er.Error, "registered") {
			t.Fatalf("error %q does not list registered techniques", er.Error)
		}
	})

	t.Run("single predicate is 400", func(t *testing.T) {
		req := PlanRequest{Selects: []PlanSelect{{Relation: "hotels", X: 1, Y: 1, K: 3}}}
		code, er := post(t, base+"/plan", "application/json", marshal(t, req))
		if code != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", code)
		}
		if !strings.Contains(er.Error, "at least two") {
			t.Fatalf("error %q", er.Error)
		}
	})

	t.Run("known but unready relation is 503", func(t *testing.T) {
		// Register a relation that will build slowly enough to observe
		// queued state deterministically: saturate with a fresh name and
		// query immediately; if it already published, skip.
		if _, err := st.Register("pending", inlinePoints2(400, 77)); err != nil {
			t.Fatal(err)
		}
		req := twoSelectPlan(8, 4)
		req.Selects[0].Relation = "pending"
		code, er := post(t, base+"/plan", "application/json", marshal(t, req))
		if code == http.StatusServiceUnavailable {
			if !strings.Contains(er.Error, "not ready") {
				t.Fatalf("503 error %q", er.Error)
			}
			return
		}
		// The build may have won the race and published already; then the
		// plan must simply succeed.
		if code != http.StatusOK {
			t.Fatalf("status %d, want 200 or 503", code)
		}
	})
}

// inlinePoints2 mirrors inlinePoints but returns geom points for direct
// store registration.
func inlinePoints2(n int, seed int64) []geom.Point {
	pts := inlinePoints(n, seed)
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[i] = geom.Point{X: p[0], Y: p[1]}
	}
	return out
}

// TestPlanCacheInvalidationOverHTTP drives the full loop the soak script
// smokes: plan (cold), plan (cached), mutate the relation, wait for the
// compaction publish, re-plan — which must miss — and check the planner's
// invalidation counter moved.
func TestPlanCacheInvalidationOverHTTP(t *testing.T) {
	st, err := store.New(store.Options{MaxK: 100, SampleSize: 40, GridSize: 4, IndexCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		st.Close(ctx)
	})
	server := NewWithStore(st, Options{MaxK: 100, SampleSize: 40, GridSize: 4})
	hsrv := httptest.NewServer(server)
	t.Cleanup(hsrv.Close)

	for name, seed := range map[string]int64{"hotels": 1, "cafes": 2} {
		if _, err := st.Register(name, inlinePoints2(600, seed)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := st.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}

	var first PlanResponse
	if code, _ := adminPost(t, hsrv.URL+"/plan", twoSelectPlan(8, 4), &first); code != http.StatusOK {
		t.Fatalf("plan status %d", code)
	}
	var second PlanResponse
	adminPost(t, hsrv.URL+"/plan", twoSelectPlan(8, 4), &second)
	if !second.Cached {
		t.Fatal("second plan not cached")
	}

	// Mutate hotels and force the compaction publish; the publish hook
	// must purge the cached plan.
	code, _ := adminPost(t, hsrv.URL+"/relations/hotels/points",
		MutateRequest{Points: [][2]float64{{1, 1}, {2, 2}, {3, 3}}}, nil)
	if code != http.StatusOK {
		t.Fatalf("append status %d", code)
	}
	if err := st.WaitSettled(ctx, "hotels"); err != nil {
		t.Fatal(err)
	}
	if n := server.Planner().Invalidations(); n < 1 {
		t.Fatalf("planner invalidations = %d, want >= 1", n)
	}

	var third PlanResponse
	if code, _ := adminPost(t, hsrv.URL+"/plan", twoSelectPlan(8, 4), &third); code != http.StatusOK {
		t.Fatalf("re-plan status %d", code)
	}
	if third.Cached {
		t.Fatal("plan after compaction publish served from cache (stale)")
	}
}
