package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/quadtree"
	"knncost/internal/store"
)

// mutateServer is adminServer with background compaction disabled, so the
// tests control exactly when deltas fold into the snapshot.
func mutateServer(t *testing.T) (*httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.New(store.Options{
		MaxK: 100, SampleSize: 40, GridSize: 4, IndexCapacity: 64,
		CompactInterval: -1, CompactThreshold: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		st.Close(ctx)
	})
	srv := httptest.NewServer(NewWithStore(st, Options{MaxK: 100, SampleSize: 40, GridSize: 4}))
	t.Cleanup(srv.Close)
	return srv, st
}

// mutate sends a POST or DELETE to /relations/{name}/points and decodes the
// JSON answer (RelationInfo on success, errorResponse on failure).
func mutate(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(method, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s %s response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func waitReadyHTTP(t *testing.T, base, name string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var info RelationInfo
		if code := getJSON(t, base+"/relations/"+name+"/status", &info); code == http.StatusOK && info.State == "ready" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("relation %q never became ready", name)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestMutatePointsEndToEnd(t *testing.T) {
	srv, st := mutateServer(t)
	base := inlinePoints(300, 1)
	if code, _ := adminPost(t, srv.URL+"/relations", RegisterRequest{Name: "live", Points: base}, nil); code != http.StatusAccepted {
		t.Fatalf("register: status %d", code)
	}
	waitReadyHTTP(t, srv.URL, "live")

	// Append: the response reports the WAL-durable pending delta while the
	// published snapshot (num_points, version) is unchanged.
	var info RelationInfo
	add := [][2]float64{{1.5, 2.5}, {3.5, 4.5}, {1.5, 2.5}}
	if code := mutate(t, http.MethodPost, srv.URL+"/relations/live/points", MutateRequest{Points: add}, &info); code != http.StatusOK {
		t.Fatalf("append: status %d body %+v", code, info)
	}
	if info.DeltaOps != 1 || info.DeltaPoints != 3 || info.NumPoints != 300 || info.Version != 1 {
		t.Fatalf("append status = %+v", info)
	}

	// The points endpoint serves the LOGICAL sequence — snapshot plus
	// pending deltas — so a mirror taken mid-ingest converges.
	var dump RegisterRequest
	if code := getJSON(t, srv.URL+"/relations/live/points", &dump); code != http.StatusOK {
		t.Fatalf("points: status %d", code)
	}
	if len(dump.Points) != 303 {
		t.Fatalf("logical dump has %d points, want 303", len(dump.Points))
	}
	if dump.Points[300] != add[0] || dump.Points[302] != add[2] {
		t.Fatalf("logical dump does not end with the pending append: %v", dump.Points[300:])
	}

	// Delete removes every occurrence of the coordinate — both pending
	// copies at once.
	if code := mutate(t, http.MethodDelete, srv.URL+"/relations/live/points", MutateRequest{Points: [][2]float64{{1.5, 2.5}}}, &info); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	if code := getJSON(t, srv.URL+"/relations/live/points", &dump); code != http.StatusOK || len(dump.Points) != 301 {
		t.Fatalf("after delete: status %d, %d points, want 301", code, len(dump.Points))
	}

	// After compaction the snapshot covers the deltas and the listing shows
	// a drained delta.
	if err := st.Flush("live"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := st.WaitSettled(ctx, "live"); err != nil {
		t.Fatal(err)
	}
	var listed []RelationInfo
	if code := getJSON(t, srv.URL+"/relations", &listed); code != http.StatusOK || len(listed) != 1 {
		t.Fatalf("listing: status %d rows %d", code, len(listed))
	}
	if listed[0].NumPoints != 301 || listed[0].Version != 2 || listed[0].DeltaOps != 0 {
		t.Fatalf("settled listing row = %+v", listed[0])
	}
}

func TestMutatePointsErrors(t *testing.T) {
	srv, st := mutateServer(t)
	if code, _ := adminPost(t, srv.URL+"/relations", RegisterRequest{Name: "live", Points: inlinePoints(100, 2)}, nil); code != http.StatusAccepted {
		t.Fatalf("register: status %d", code)
	}
	waitReadyHTTP(t, srv.URL, "live")
	pts := make([]geom.Point, 100)
	for i, p := range inlinePoints(100, 3) {
		pts[i] = geom.Point{X: p[0], Y: p[1]}
	}
	var tree *index.Tree = quadtree.Build(pts, quadtree.Options{Capacity: 64}).Index()
	if _, err := st.RegisterIndex("idx", tree); err != nil {
		t.Fatal(err)
	}
	waitReadyHTTP(t, srv.URL, "idx")

	one := MutateRequest{Points: [][2]float64{{1, 2}}}
	var errResp errorResponse
	if code := mutate(t, http.MethodPost, srv.URL+"/relations/nope/points", one, &errResp); code != http.StatusNotFound {
		t.Fatalf("unknown relation: status %d (%s)", code, errResp.Error)
	}
	// Index-registered relations have no point sequence to mutate: 409, the
	// relation exists but this operation conflicts with how it was made.
	if code := mutate(t, http.MethodPost, srv.URL+"/relations/idx/points", one, &errResp); code != http.StatusConflict {
		t.Fatalf("index-registered: status %d (%s)", code, errResp.Error)
	}
	if code := mutate(t, http.MethodDelete, srv.URL+"/relations/idx/points", one, &errResp); code != http.StatusConflict {
		t.Fatalf("index-registered delete: status %d (%s)", code, errResp.Error)
	}
	if code := mutate(t, http.MethodPost, srv.URL+"/relations/live/points", MutateRequest{}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("empty mutation: status %d", code)
	}

	// Wrong media type is refused before the body is read.
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/relations/live/points", bytes.NewReader([]byte("x=1")))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("form body: status %d", resp.StatusCode)
	}

	// Malformed JSON is a 400.
	resp, err = http.Post(srv.URL+"/relations/live/points", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", resp.StatusCode)
	}

	// None of the rejected mutations may have left a delta behind.
	var info RelationInfo
	if code := getJSON(t, srv.URL+"/relations/live/status", &info); code != http.StatusOK || info.DeltaOps != 0 {
		t.Fatalf("rejections left deltas: status %d %+v", code, info)
	}
}
