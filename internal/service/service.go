// Package service exposes the cost estimators over HTTP as a small JSON
// microservice — the deployment shape the paper motivates: "location-based
// services that serve multiple queries at very high rates, e.g., thousands
// of queries per second", where estimation must cost microseconds.
//
// A Server answers requests against an internal/store relation store: every
// estimate resolves the store's current immutable View with one atomic load,
// so the hot path never blocks on catalog construction and never observes a
// half-published schema. Relations can be fixed at startup (New) or managed
// dynamically over the admin endpoints (registration enqueues a background
// catalog build; the relation starts serving the moment its snapshot is
// published, and rebuilds hot-swap atomically under live traffic).
//
// Read endpoints (all GET, all JSON):
//
//	/healthz                          liveness
//	/relations                        consistent listing: build state, version,
//	                                  catalog sizes — one store snapshot
//	/relations/{name}/status          one relation's build status
//	/techniques                       the registered estimation techniques
//	/estimate/select?rel=R&x=&y=&k=&technique=staircase-cc|staircase-c|density
//	/estimate/join?outer=R&inner=S&k=&technique=catalog-merge|virtual-grid|block-sample
//	/cost/select?rel=R&x=&y=&k=       actual cost (executes distance browsing)
//	/cost/join?outer=R&inner=S&k=     actual cost (computes localities)
//
// Techniques are resolved by name from the internal/engine registry;
// "technique" accepts every registered name or alias (the pre-registry
// wire names "staircase", "density", "catalogmerge", "virtualgrid" and
// "blocksample" are aliases) and the legacy "method" parameter remains a
// synonym. An unknown name is 400 and lists what is registered.
//
// Write endpoints:
//
//	POST   /plan                      plan a conjunctive multi-predicate query
//	                                  (≥2 kNN predicates) through the optimizer's
//	                                  fingerprinted plan cache; ?explain=1 adds
//	                                  the EXPLAIN text. Falls under the default
//	                                  estimate deadline of the middleware.
//	POST   /estimate/select/batch     many select estimates in one round trip
//	POST   /relations                 register/replace a relation (202 Accepted;
//	                                  body carries inline points or a
//	                                  server-side file name under DataDir)
//	DELETE /relations/{name}          drop a relation
//	POST   /relations/{name}/points   append points to a live relation
//	DELETE /relations/{name}/points   delete every occurrence of the given
//	                                  coordinates
//
// Mutations are WAL-durable when the response returns and become visible in
// estimates at the next compaction; the response's delta_* fields report how
// much is pending. Mutating an index-registered relation (no point source)
// is 409; an unknown relation is 404.
//
// A relation that is registered but not yet published answers estimates with
// 503 + Retry-After (it will exist shortly); an unknown name stays 400.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"mime"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"knncost/internal/core"
	"knncost/internal/engine"
	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/knn"
	"knncost/internal/knnjoin"
	"knncost/internal/optimizer"
	"knncost/internal/store"
)

// Options configure catalog construction at server start.
type Options struct {
	// MaxK is the largest catalog-maintained k. Zero means the core
	// default.
	MaxK int
	// SampleSize is the Catalog-Merge sample size. Zero means 200.
	SampleSize int
	// GridSize is the Virtual-Grid dimension. Zero means 10.
	GridSize int
	// DataDir, when non-empty, enables the server-side "file" source of
	// POST /relations: file names resolve strictly inside this directory.
	// Empty (the default) disables file loading entirely.
	DataDir string
	// PlanCacheEntries bounds the optimizer's plan cache. Zero means the
	// optimizer default.
	PlanCacheEntries int
}

func (o Options) withDefaults() Options {
	if o.MaxK == 0 {
		o.MaxK = core.DefaultMaxK
	}
	if o.SampleSize == 0 {
		o.SampleSize = 200
	}
	if o.GridSize == 0 {
		o.GridSize = 10
	}
	return o
}

// Server answers estimation requests for the relations of a store.
type Server struct {
	opt      Options
	store    *store.Store
	ownStore bool // Close drains the store only when New created it
	planner  *optimizer.Planner
	mux      *http.ServeMux
}

// New creates a server over a fixed schema (name → data index) with an
// internally managed store: all catalogs are built before New returns, so
// construction time is the preprocessing cost of the whole schema. For
// dynamic schemas and warm restarts, create a store.Store and use
// NewWithStore instead.
func New(trees map[string]*index.Tree, opt Options) (*Server, error) {
	opt = opt.withDefaults()
	st, err := store.New(store.Options{
		MaxK:       opt.MaxK,
		SampleSize: opt.SampleSize,
		GridSize:   opt.GridSize,
	})
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	closeStore := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		st.Close(ctx)
	}
	for name, tree := range trees {
		if _, err := st.RegisterIndex(name, tree); err != nil {
			closeStore()
			return nil, fmt.Errorf("service: %w", err)
		}
	}
	if err := st.WaitReady(context.Background()); err != nil {
		closeStore()
		return nil, fmt.Errorf("service: %w", err)
	}
	s := NewWithStore(st, opt)
	s.ownStore = true
	return s, nil
}

// NewWithStore creates a server over a caller-managed store. The caller owns
// the store's lifecycle (and its warm-restart cache); relations may still be
// building when the server starts answering — unpublished relations return
// 503 + Retry-After until their snapshot lands.
func NewWithStore(st *store.Store, opt Options) *Server {
	s := &Server{
		opt:     opt.withDefaults(),
		store:   st,
		planner: optimizer.NewPlanner(opt.PlanCacheEntries),
		mux:     http.NewServeMux(),
	}
	// Every hot swap, compaction publish or drop purges the plans that
	// reference the republished relation; the hook fires after the store's
	// View swap, so a stale plan is never both resolvable and cached.
	st.AddPublishHook(s.planner.Invalidate)
	s.routes()
	return s
}

// Store returns the server's relation store.
func (s *Server) Store() *store.Store { return s.store }

// Planner returns the server's plan-cache-backed optimizer (for metrics
// publication and tests).
func (s *Server) Planner() *optimizer.Planner { return s.planner }

// Close drains the internally managed store of a New-constructed server; it
// is a no-op for NewWithStore servers, whose store the caller owns.
func (s *Server) Close(ctx context.Context) error {
	if !s.ownStore {
		return nil
	}
	return s.store.Close(ctx)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /relations", s.handleRelations)
	s.mux.HandleFunc("POST /relations", s.handleRegisterRelation)
	s.mux.HandleFunc("GET /relations/{name}/status", s.handleRelationStatus)
	s.mux.HandleFunc("GET /relations/{name}/points", s.handleRelationPoints)
	s.mux.HandleFunc("GET /techniques", s.handleTechniques)
	s.mux.HandleFunc("DELETE /relations/{name}", s.handleDropRelation)
	s.mux.HandleFunc("POST /relations/{name}/points", s.handleAppendPoints)
	s.mux.HandleFunc("DELETE /relations/{name}/points", s.handleDeletePoints)
	s.mux.HandleFunc("GET /estimate/select", s.handleEstimateSelect)
	// The batch route owns its method dispatch (instead of a "POST ..."
	// mux pattern) so wrong methods get a JSON 405 with an Allow header
	// and POSTs get a Content-Type check before the body is read.
	s.mux.HandleFunc("/estimate/select/batch", s.handleEstimateSelectBatchRoute)
	s.mux.HandleFunc("GET /estimate/join", s.handleEstimateJoin)
	// Like the batch route, /plan owns its method dispatch for JSON 405
	// (with Allow) and a Content-Type check before the body is read.
	s.mux.HandleFunc("/plan", s.handlePlanRoute)
	s.mux.HandleFunc("GET /cost/select", s.handleCostSelect)
	s.mux.HandleFunc("GET /cost/join", s.handleCostJoin)
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The response structs themselves always encode; a failure here
		// is the client hanging up mid-write. One line per request, so a
		// flood of disconnects is visible without drowning the log.
		log.Printf("service: encoding %T response: %v", v, err)
	}
}

func badRequest(w http.ResponseWriter, format string, args ...any) {
	writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func notFound(w http.ResponseWriter, format string, args ...any) {
	writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeCancelled maps a context cancellation (deadline exceeded or client
// gone) observed inside a handler to a JSON 503 — the request was valid, the
// server just refused to spend more time on it.
func writeCancelled(w http.ResponseWriter, err error) {
	msg := "request cancelled"
	if errors.Is(err, context.DeadlineExceeded) {
		msg = "deadline exceeded"
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: msg})
}

// notReady answers for a relation that is registered but has no published
// snapshot yet (or anymore, after a failed rebuild of a never-published
// relation): the client should retry, not fix its request.
func notReady(w http.ResponseWriter, st store.RelationStatus) {
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable,
		errorResponse{Error: fmt.Sprintf("relation %q is not ready (state %s)", st.Name, st.State)})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// RelationInfo describes one relation in the /relations listing: identity and
// catalog sizes of the published snapshot plus the live build status. The
// whole listing comes from a single store View, so rows are mutually
// consistent no matter how the schema churns.
type RelationInfo struct {
	Name             string `json:"name"`
	State            string `json:"state"`
	Version          uint64 `json:"version"`
	Error            string `json:"error,omitempty"`
	NumPoints        int    `json:"num_points"`
	NumBlocks        int    `json:"num_blocks"`
	StaircaseBytes   int    `json:"staircase_bytes"`
	VirtualGridBytes int    `json:"virtual_grid_bytes"`
	AknnBytes        int    `json:"aknn_bytes,omitempty"`
	// ArtifactBytes is the total artifact footprint the store's space-budget
	// tuner accounts against -catalog-budget-bytes.
	ArtifactBytes int `json:"artifact_bytes,omitempty"`
	// Resolution is the published snapshot's effective artifact resolution;
	// DeclaredResolution is what registration asked for. They differ only
	// while the space-budget tuner holds the relation at a coarser rung.
	Resolution         *ResolutionSpec `json:"resolution,omitempty"`
	DeclaredResolution *ResolutionSpec `json:"declared_resolution,omitempty"`
	// DeltaOps/DeltaPoints/DeltaAgeMs describe the WAL-durable mutations the
	// published snapshot does not cover yet; DeltaAgeMs is the staleness
	// bound — the age of the oldest uncompacted write.
	DeltaOps    int   `json:"delta_ops,omitempty"`
	DeltaPoints int   `json:"delta_points,omitempty"`
	DeltaAgeMs  int64 `json:"delta_age_ms,omitempty"`
}

// ResolutionSpec is the wire form of core.Resolution: the per-relation
// space/accuracy axes of POST /relations and the /relations listings.
// Zero axes inherit the server-wide options; corners -1 means center-only
// staircase catalogs (0 is "default", matching core.Resolution.Canon).
type ResolutionSpec struct {
	MaxK         int `json:"max_k,omitempty"`
	Corners      int `json:"corners,omitempty"`
	GridSize     int `json:"grid_size,omitempty"`
	AknnCapacity int `json:"aknn_capacity,omitempty"`
}

func (r *ResolutionSpec) toCore() core.Resolution {
	if r == nil {
		return core.Resolution{}
	}
	return core.Resolution{MaxK: r.MaxK, Corners: r.Corners, GridSize: r.GridSize, AknnCapacity: r.AknnCapacity}
}

// specOf converts a canonical store resolution to its wire form; the zero
// value (relation not yet published) maps to nil so listings omit it.
func specOf(res core.Resolution) *ResolutionSpec {
	if res == (core.Resolution{}) {
		return nil
	}
	res = res.Canon()
	spec := &ResolutionSpec{MaxK: res.MaxK, Corners: res.Corners, GridSize: res.GridSize, AknnCapacity: res.AknnCapacity}
	if spec.Corners == 0 {
		spec.Corners = -1 // wire convention: explicit center-only, never "default"
	}
	return spec
}

func infoFromStatus(st store.RelationStatus) RelationInfo {
	return RelationInfo{
		Name:               st.Name,
		State:              st.State,
		Version:            st.Version,
		Error:              st.Error,
		NumPoints:          st.NumPoints,
		NumBlocks:          st.NumBlocks,
		StaircaseBytes:     st.StaircaseBytes,
		VirtualGridBytes:   st.VirtualGridBytes,
		AknnBytes:          st.AknnBytes,
		ArtifactBytes:      st.ArtifactBytes,
		Resolution:         specOf(st.Resolution),
		DeclaredResolution: specOf(st.DeclaredResolution),
		DeltaOps:           st.DeltaOps,
		DeltaPoints:        st.DeltaPoints,
		DeltaAgeMs:         st.DeltaAgeMs,
	}
}

func (s *Server) handleRelations(w http.ResponseWriter, _ *http.Request) {
	list := s.store.View().List()
	out := make([]RelationInfo, len(list))
	for i, st := range list {
		out[i] = infoFromStatus(st)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleRelationStatus(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	st, ok := s.store.Status(name)
	if !ok {
		notFound(w, "unknown relation %q", name)
		return
	}
	writeJSON(w, http.StatusOK, infoFromStatus(st))
}

// handleRelationPoints serves a relation's logical point sequence — the
// published snapshot plus every pending delta — shaped exactly like a
// RegisterRequest body: POSTing the response to another server's /relations
// re-registers the identical relation — same points in the same order,
// hence the same fingerprint after compaction, the same index, and
// bit-identical catalogs. This is the hand-off primitive the shard router's
// rebalance warm-restores are built on; serving the logical (not published)
// sequence keeps mirror healing convergent even mid-ingest.
// Index-registered relations have no reproducible point source and
// answer 404.
func (s *Server) handleRelationPoints(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	pts, err := s.store.LogicalPoints(name)
	if err != nil {
		switch {
		case errors.Is(err, store.ErrNotReady):
			if st, known := s.store.Status(name); known {
				notReady(w, st)
				return
			}
			notFound(w, "unknown relation %q", name)
		case errors.Is(err, store.ErrNoPointSource):
			notFound(w, "relation %q has no reproducible point source", name)
		default:
			notFound(w, "%v", err)
		}
		return
	}
	resp := RegisterRequest{Name: name, Points: make([][2]float64, len(pts))}
	for i, p := range pts {
		resp.Points[i] = [2]float64{p.X, p.Y}
	}
	// Carry the declared (not the tuner's effective) resolution: POSTing
	// the response elsewhere must reproduce the accuracy contract the
	// relation was registered with, so mirror healing and rebalance
	// hand-offs keep per-relation resolutions intact.
	if st, ok := s.store.Status(name); ok {
		resp.Resolution = specOf(st.DeclaredResolution)
	}
	writeJSON(w, http.StatusOK, resp)
}

// TechniqueInfo describes one registered estimation technique in the
// GET /techniques listing.
type TechniqueInfo struct {
	Name         string   `json:"name"`
	Aliases      []string `json:"aliases,omitempty"`
	Summary      string   `json:"summary"`
	Preprocessed bool     `json:"preprocessed"`
}

// TechniquesResponse is the reply to GET /techniques: every select and join
// technique the engine registry knows, in canonical (sorted) order.
type TechniquesResponse struct {
	Select []TechniqueInfo `json:"select"`
	Join   []TechniqueInfo `json:"join"`
}

func (s *Server) handleTechniques(w http.ResponseWriter, _ *http.Request) {
	var resp TechniquesResponse
	for _, t := range engine.SelectTechniques() {
		resp.Select = append(resp.Select, TechniqueInfo{
			Name: t.Name, Aliases: t.Aliases, Summary: t.Summary, Preprocessed: t.Preprocessed,
		})
	}
	for _, t := range engine.JoinTechniques() {
		resp.Join = append(resp.Join, TechniqueInfo{
			Name: t.Name, Aliases: t.Aliases, Summary: t.Summary, Preprocessed: t.Preprocessed,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDropRelation(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.store.Drop(name) {
		notFound(w, "unknown relation %q", name)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// RegisterRequest is the body of POST /relations. Exactly one point source
// must be given: inline Points, or File naming a points file inside the
// server's data directory.
type RegisterRequest struct {
	// Name is the relation name (letters, digits, '_', '-', '.').
	// Registering an existing name replaces it: the old version keeps
	// serving until the new catalogs are ready, then hot-swaps.
	Name string `json:"name"`
	// Points are inline coordinates, each [x, y].
	Points [][2]float64 `json:"points,omitempty"`
	// File names a points file (one "x y" or "x,y" pair per line) inside
	// the server's data directory. Rejected when no data directory is
	// configured.
	File string `json:"file,omitempty"`
	// Resolution is the relation's declared artifact resolution. Omitted
	// or zero axes inherit the server-wide options, so old clients see no
	// behaviour change.
	Resolution *ResolutionSpec `json:"resolution,omitempty"`
}

// maxRegisterBody bounds the registration body (16 MiB ≈ half a million
// inline points) so a misbehaving client cannot exhaust server memory.
const maxRegisterBody = 16 << 20

func (s *Server) handleRegisterRelation(w http.ResponseWriter, r *http.Request) {
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil || mt != "application/json" {
			writeJSON(w, http.StatusUnsupportedMediaType,
				errorResponse{Error: fmt.Sprintf("Content-Type %q not supported; use application/json", ct)})
			return
		}
	}
	var req RegisterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRegisterBody)).Decode(&req); err != nil {
		badRequest(w, "decoding registration: %v", err)
		return
	}
	var pts []geom.Point
	switch {
	case len(req.Points) > 0 && req.File != "":
		badRequest(w, "give either inline points or a file, not both")
		return
	case len(req.Points) > 0:
		pts = make([]geom.Point, len(req.Points))
		for i, p := range req.Points {
			pts[i] = geom.Point{X: p[0], Y: p[1]}
		}
	case req.File != "":
		var err error
		if pts, err = s.loadDataFile(req.File); err != nil {
			badRequest(w, "%v", err)
			return
		}
	default:
		badRequest(w, "registration needs points or a file")
		return
	}
	st, err := s.store.RegisterResolution(req.Name, pts, req.Resolution.toCore())
	if err != nil {
		switch {
		case errors.Is(err, store.ErrQueueFull), errors.Is(err, store.ErrClosed):
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		default:
			badRequest(w, "%v", err)
		}
		return
	}
	// 202: the build is queued; poll /relations/{name}/status for the
	// queued → building → ready|failed progression.
	writeJSON(w, http.StatusAccepted, infoFromStatus(st))
}

// loadDataFile reads a points file strictly inside the configured data
// directory. The format is one point per line, "x y" or "x,y"; blank lines
// and lines starting with '#' are skipped.
func (s *Server) loadDataFile(name string) ([]geom.Point, error) {
	if s.opt.DataDir == "" {
		return nil, errors.New("server-side file loading is disabled (no data directory configured)")
	}
	// filepath.IsLocal rejects absolute paths, "..", and anything else that
	// could escape the data directory.
	if !filepath.IsLocal(name) {
		return nil, fmt.Errorf("file %q: must be a relative path inside the data directory", name)
	}
	data, err := os.ReadFile(filepath.Join(s.opt.DataDir, name))
	if err != nil {
		return nil, fmt.Errorf("reading data file: %v", err)
	}
	var pts []geom.Point
	for lineNo, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(strings.ReplaceAll(line, ",", " "))
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var p geom.Point
		if _, err := fmt.Sscan(line, &p.X, &p.Y); err != nil {
			return nil, fmt.Errorf("file %q line %d: %v", name, lineNo+1, err)
		}
		pts = append(pts, p)
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("file %q contains no points", name)
	}
	return pts, nil
}

// EstimateResponse is the reply to estimate and cost endpoints.
type EstimateResponse struct {
	Relation string  `json:"relation,omitempty"`
	Outer    string  `json:"outer,omitempty"`
	Inner    string  `json:"inner,omitempty"`
	K        int     `json:"k"`
	Method   string  `json:"method"`
	Blocks   float64 `json:"blocks"`
	TookNs   int64   `json:"took_ns"`
}

// resolveRelation looks name up in v. A name with no published snapshot is
// 503 + Retry-After when the store knows it (a build is pending or failed)
// and 400 when it does not; ok is false after either response was written.
func (s *Server) resolveRelation(w http.ResponseWriter, v *store.View, name string) (*store.Snapshot, bool) {
	if snap := v.Relation(name); snap != nil {
		return snap, true
	}
	if st, known := s.store.Status(name); known {
		notReady(w, st)
		return nil, false
	}
	badRequest(w, "unknown relation %q (have %v)", name, v.Names())
	return nil, false
}

func (s *Server) relationParam(w http.ResponseWriter, r *http.Request, v *store.View, param string) (*store.Snapshot, bool) {
	return s.resolveRelation(w, v, r.URL.Query().Get(param))
}

func queryFloat(r *http.Request, name string) (float64, error) {
	v, err := strconv.ParseFloat(r.URL.Query().Get(name), 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %w", name, err)
	}
	// strconv.ParseFloat happily parses "NaN" and "Inf"; neither is a
	// coordinate, and NaN in particular poisons every distance comparison
	// downstream.
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("parameter %q: must be a finite number, got %v", name, v)
	}
	return v, nil
}

func queryK(r *http.Request) (int, error) {
	k, err := strconv.Atoi(r.URL.Query().Get("k"))
	if err != nil {
		return 0, fmt.Errorf("parameter \"k\": %w", err)
	}
	if k < 1 {
		return 0, fmt.Errorf("k must be >= 1, got %d", k)
	}
	return k, nil
}

func (s *Server) handleEstimateSelect(w http.ResponseWriter, r *http.Request) {
	rel, ok := s.relationParam(w, r, s.store.View(), "rel")
	if !ok {
		return
	}
	x, err := queryFloat(r, "x")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	y, err := queryFloat(r, "y")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	k, err := queryK(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	est, method, ok := s.selectEstimator(w, rel, techniqueParam(r))
	if !ok {
		return
	}
	rel.Touch()
	start := time.Now()
	blocks, err := est.EstimateSelect(geom.Point{X: x, Y: y}, k)
	if err != nil {
		badRequest(w, "estimate failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, EstimateResponse{
		Relation: rel.Name, K: k, Method: method,
		Blocks: blocks, TookNs: time.Since(start).Nanoseconds(),
	})
}

// techniqueParam extracts the technique name of a request: "technique" is
// the parameter, "method" the pre-registry synonym kept for old clients.
func techniqueParam(r *http.Request) string {
	if t := r.URL.Query().Get("technique"); t != "" {
		return t
	}
	return r.URL.Query().Get("method")
}

// selectEstimator resolves a select technique name for rel through the
// engine registry; ok is false after an error response has been written.
// The returned string echoes what the client asked for (the canonical name
// when it asked for nothing), not the resolved canonical name — clients
// correlate responses by the string they sent.
func (s *Server) selectEstimator(w http.ResponseWriter, rel *store.Snapshot, technique string) (core.SelectEstimator, string, bool) {
	if technique == "" {
		technique = engine.TechStaircaseCC
	}
	t, err := engine.LookupSelect(technique)
	if err != nil {
		badRequest(w, "unknown select method %q (registered techniques: %s)",
			technique, strings.Join(engine.SelectNames(), ", "))
		return nil, technique, false
	}
	est, err := t.Estimator(rel.Engine)
	if err != nil {
		// The name is valid; building its artifact for this relation failed.
		// That is a server-side defect, not a client error.
		writeJSON(w, http.StatusInternalServerError,
			errorResponse{Error: fmt.Sprintf("building %s for %s: %v", t.Name, rel.Name, err)})
		return nil, technique, false
	}
	return estimatorHook(est), technique, true
}

// BatchSelectRequest is the body of POST /estimate/select/batch.
type BatchSelectRequest struct {
	// Relation names the target relation (required).
	Relation string `json:"relation"`
	// Technique names a registered select technique (see GET /techniques).
	// Empty means staircase-cc.
	Technique string `json:"technique,omitempty"`
	// Method is the pre-registry synonym of Technique; Technique wins when
	// both are set.
	Method string `json:"method,omitempty"`
	// Parallelism is the server-side worker count; 0 means GOMAXPROCS,
	// 1 forces a serial loop. The results are identical either way.
	Parallelism int `json:"parallelism,omitempty"`
	// Queries are answered independently and in order.
	Queries []BatchSelectQuery `json:"queries"`
}

// BatchSelectQuery is one query of a batch request.
type BatchSelectQuery struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	K int     `json:"k"`
}

// BatchSelectResult is the answer to the query at the same position of the
// request. A failed query reports its error here without failing the batch.
type BatchSelectResult struct {
	Blocks float64 `json:"blocks"`
	Error  string  `json:"error,omitempty"`
}

// BatchSelectResponse is the reply to POST /estimate/select/batch.
type BatchSelectResponse struct {
	Relation string              `json:"relation"`
	Method   string              `json:"method"`
	Results  []BatchSelectResult `json:"results"`
	TookNs   int64               `json:"took_ns"`
}

// maxBatchBody bounds the request body (1 MiB ≈ tens of thousands of
// queries) so a misbehaving client cannot exhaust server memory.
const maxBatchBody = 1 << 20

// validateBatchQueries rejects non-finite coordinates. Standard JSON cannot
// encode NaN or Inf, so today the decoder already refuses them upstream —
// this check pins the invariant against any future decode path (extended
// JSON dialects, alternative content types) because a NaN poisons every
// distance comparison it ever meets.
func validateBatchQueries(qs []BatchSelectQuery) error {
	for i, q := range qs {
		if math.IsNaN(q.X) || math.IsInf(q.X, 0) || math.IsNaN(q.Y) || math.IsInf(q.Y, 0) {
			return fmt.Errorf("queries[%d]: x and y must be finite numbers, got (%v, %v)", i, q.X, q.Y)
		}
	}
	return nil
}

// handleEstimateSelectBatchRoute dispatches on method and media type before
// the batch body is decoded: wrong methods get 405 + Allow, non-JSON bodies
// get 415 — both as JSON, like every other response of the service.
func (s *Server) handleEstimateSelectBatchRoute(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed,
			errorResponse{Error: fmt.Sprintf("method %s not allowed; use POST", r.Method)})
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil || mt != "application/json" {
			writeJSON(w, http.StatusUnsupportedMediaType,
				errorResponse{Error: fmt.Sprintf("Content-Type %q not supported; use application/json", ct)})
			return
		}
	}
	s.handleEstimateSelectBatch(w, r)
}

func (s *Server) handleEstimateSelectBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchSelectRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody)).Decode(&req); err != nil {
		badRequest(w, "decoding batch request: %v", err)
		return
	}
	rel, ok := s.resolveRelation(w, s.store.View(), req.Relation)
	if !ok {
		return
	}
	technique := req.Technique
	if technique == "" {
		technique = req.Method
	}
	est, method, ok := s.selectEstimator(w, rel, technique)
	if !ok {
		return
	}
	if err := validateBatchQueries(req.Queries); err != nil {
		badRequest(w, "%v", err)
		return
	}
	queries := make([]core.SelectQuery, len(req.Queries))
	for i, q := range req.Queries {
		queries[i] = core.SelectQuery{Point: geom.Point{X: q.X, Y: q.Y}, K: q.K}
	}
	// Parallelism is advisory: a hostile client asking for a billion
	// workers gets the machine's worth, no more. Zero and negative still
	// mean GOMAXPROCS, 1 still forces a serial loop.
	parallelism := req.Parallelism
	if maxP := runtime.GOMAXPROCS(0); parallelism > maxP {
		parallelism = maxP
	}
	rel.TouchN(len(queries))
	start := time.Now()
	results, err := core.EstimateSelectBatchContext(r.Context(), est, queries, parallelism)
	if err != nil {
		writeCancelled(w, err)
		return
	}
	took := time.Since(start)
	out := make([]BatchSelectResult, len(results))
	for i, res := range results {
		if res.Err != nil {
			out[i] = BatchSelectResult{Error: res.Err.Error()}
			continue
		}
		out[i] = BatchSelectResult{Blocks: res.Blocks}
	}
	writeJSON(w, http.StatusOK, BatchSelectResponse{
		Relation: req.Relation, Method: method,
		Results: out, TookNs: took.Nanoseconds(),
	})
}

func (s *Server) handleEstimateJoin(w http.ResponseWriter, r *http.Request) {
	// One View load covers both relations and the pair merge, so the two
	// snapshots and the merge always belong to the same published schema
	// even while rebuilds hot-swap underneath.
	v := s.store.View()
	outer, ok := s.relationParam(w, r, v, "outer")
	if !ok {
		return
	}
	inner, ok := s.relationParam(w, r, v, "inner")
	if !ok {
		return
	}
	if outer == inner {
		badRequest(w, "outer and inner must differ")
		return
	}
	k, err := queryK(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	method := techniqueParam(r)
	if method == "" {
		method = engine.TechCatalogMerge
	}
	jt, err := engine.LookupJoin(method)
	if err != nil {
		badRequest(w, "unknown join method %q (registered techniques: %s)",
			method, strings.Join(engine.JoinNames(), ", "))
		return
	}
	// Both engine relations come from the one View loaded above, so a
	// catalog-merge resolves to the pair merge published with this exact
	// schema — never a mix of versions.
	est, err := jt.Estimator(outer.Engine, inner.Engine)
	if err != nil {
		// Both snapshots are published, so a pair artifact exists unless its
		// construction failed; retrying cannot help until a rebuild.
		writeJSON(w, http.StatusInternalServerError,
			errorResponse{Error: fmt.Sprintf("%s %s⋉%s unavailable: %v", jt.Name, outer.Name, inner.Name, err)})
		return
	}
	// Both sides serve artifacts for a join estimate; both count as traffic.
	outer.Touch()
	inner.Touch()
	start := time.Now()
	blocks, err := est.EstimateJoin(k)
	if err != nil {
		badRequest(w, "estimate failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, EstimateResponse{
		Outer: outer.Name, Inner: inner.Name, K: k, Method: method,
		Blocks: blocks, TookNs: time.Since(start).Nanoseconds(),
	})
}

func (s *Server) handleCostSelect(w http.ResponseWriter, r *http.Request) {
	rel, ok := s.relationParam(w, r, s.store.View(), "rel")
	if !ok {
		return
	}
	x, err := queryFloat(r, "x")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	y, err := queryFloat(r, "y")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	k, err := queryK(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	start := time.Now()
	cost, err := costSelect(r.Context(), rel.Tree, geom.Point{X: x, Y: y}, k)
	if err != nil {
		writeCancelled(w, err)
		return
	}
	writeJSON(w, http.StatusOK, EstimateResponse{
		Relation: rel.Name, K: k, Method: "actual",
		Blocks: float64(cost), TookNs: time.Since(start).Nanoseconds(),
	})
}

func (s *Server) handleCostJoin(w http.ResponseWriter, r *http.Request) {
	v := s.store.View()
	outer, ok := s.relationParam(w, r, v, "outer")
	if !ok {
		return
	}
	inner, ok := s.relationParam(w, r, v, "inner")
	if !ok {
		return
	}
	if outer == inner {
		badRequest(w, "outer and inner must differ")
		return
	}
	k, err := queryK(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	start := time.Now()
	cost, err := costJoin(r.Context(), outer.Count, inner.Count, k)
	if err != nil {
		writeCancelled(w, err)
		return
	}
	writeJSON(w, http.StatusOK, EstimateResponse{
		Outer: outer.Name, Inner: inner.Name, K: k, Method: "actual",
		Blocks: float64(cost), TookNs: time.Since(start).Nanoseconds(),
	})
}

// costSelect and costJoin are the ground-truth entry points, held in
// variables so the fault-injection tests can substitute deterministically
// slow or failing implementations and prove the deadline and recovery
// behaviour of the full HTTP stack.
var (
	costSelect = knn.SelectCostContext
	costJoin   = knnjoin.CostContext
)

// estimatorHook wraps every resolved select estimator; the identity in
// production, replaced by the fault-injection tests to make estimators
// deterministically slow or failing.
var estimatorHook = func(est core.SelectEstimator) core.SelectEstimator { return est }
