// Package service exposes the cost estimators over HTTP as a small JSON
// microservice — the deployment shape the paper motivates: "location-based
// services that serve multiple queries at very high rates, e.g., thousands
// of queries per second", where estimation must cost microseconds.
//
// A Server is configured with named relations at startup; it prebuilds
// every catalog (staircase per relation, Catalog-Merge per ordered pair,
// Virtual-Grid per relation) and then answers estimate requests from
// memory.
//
// Endpoints (all GET, all JSON):
//
//	/healthz                          liveness
//	/relations                        registered relations + catalog sizes
//	/estimate/select?rel=R&x=&y=&k=&method=staircase|density
//	/estimate/join?outer=R&inner=S&k=&method=catalogmerge|virtualgrid|blocksample
//	/cost/select?rel=R&x=&y=&k=       actual cost (executes distance browsing)
//	/cost/join?outer=R&inner=S&k=     actual cost (computes localities)
//
// Plus one POST endpoint for high-throughput clients:
//
//	POST /estimate/select/batch       JSON body, many select estimates in one
//	                                  round trip with server-side parallelism
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"mime"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"time"

	"knncost/internal/core"
	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/knn"
	"knncost/internal/knnjoin"
)

// Options configure catalog construction at server start.
type Options struct {
	// MaxK is the largest catalog-maintained k. Zero means the core
	// default.
	MaxK int
	// SampleSize is the Catalog-Merge sample size. Zero means 200.
	SampleSize int
	// GridSize is the Virtual-Grid dimension. Zero means 10.
	GridSize int
}

func (o Options) withDefaults() Options {
	if o.MaxK == 0 {
		o.MaxK = core.DefaultMaxK
	}
	if o.SampleSize == 0 {
		o.SampleSize = 200
	}
	if o.GridSize == 0 {
		o.GridSize = 10
	}
	return o
}

type relation struct {
	name      string
	tree      *index.Tree
	count     *index.Tree
	staircase *core.Staircase
	density   *core.DensityBased
	vgrid     *core.VirtualGrid
}

// Server answers estimation requests for a fixed schema of relations.
type Server struct {
	opt       Options
	relations map[string]*relation
	names     []string
	merges    map[[2]string]*core.CatalogMerge
	mux       *http.ServeMux
}

// New creates a server over the given relations (name → data index). It
// prebuilds all catalogs, so construction time is the preprocessing cost
// of the whole schema.
func New(trees map[string]*index.Tree, opt Options) (*Server, error) {
	opt = opt.withDefaults()
	s := &Server{
		opt:       opt,
		relations: make(map[string]*relation, len(trees)),
		merges:    map[[2]string]*core.CatalogMerge{},
		mux:       http.NewServeMux(),
	}
	for name, tree := range trees {
		if tree.NumBlocks() == 0 {
			return nil, fmt.Errorf("service: relation %q has no blocks", name)
		}
		stair, err := core.BuildStaircase(tree, core.StaircaseOptions{MaxK: opt.MaxK})
		if err != nil {
			return nil, fmt.Errorf("service: staircase for %q: %w", name, err)
		}
		count := tree.CountTree()
		vg, err := core.BuildVirtualGrid(count, opt.GridSize, opt.GridSize, opt.MaxK)
		if err != nil {
			return nil, fmt.Errorf("service: virtual grid for %q: %w", name, err)
		}
		s.relations[name] = &relation{
			name:      name,
			tree:      tree,
			count:     count,
			staircase: stair,
			density:   core.NewDensityBased(count),
			vgrid:     vg,
		}
		s.names = append(s.names, name)
	}
	sort.Strings(s.names)
	// One Catalog-Merge per ordered pair — the quadratic schema cost §4.2
	// describes.
	for _, outer := range s.names {
		for _, inner := range s.names {
			if outer == inner {
				continue
			}
			cm, err := core.BuildCatalogMerge(
				s.relations[outer].count, s.relations[inner].count,
				opt.SampleSize, opt.MaxK)
			if err != nil {
				return nil, fmt.Errorf("service: catalog-merge %s⋉%s: %w", outer, inner, err)
			}
			s.merges[[2]string{outer, inner}] = cm
		}
	}
	s.routes()
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /relations", s.handleRelations)
	s.mux.HandleFunc("GET /estimate/select", s.handleEstimateSelect)
	// The batch route owns its method dispatch (instead of a "POST ..."
	// mux pattern) so wrong methods get a JSON 405 with an Allow header
	// and POSTs get a Content-Type check before the body is read.
	s.mux.HandleFunc("/estimate/select/batch", s.handleEstimateSelectBatchRoute)
	s.mux.HandleFunc("GET /estimate/join", s.handleEstimateJoin)
	s.mux.HandleFunc("GET /cost/select", s.handleCostSelect)
	s.mux.HandleFunc("GET /cost/join", s.handleCostJoin)
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The response structs themselves always encode; a failure here
		// is the client hanging up mid-write. One line per request, so a
		// flood of disconnects is visible without drowning the log.
		log.Printf("service: encoding %T response: %v", v, err)
	}
}

func badRequest(w http.ResponseWriter, format string, args ...any) {
	writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeCancelled maps a context cancellation (deadline exceeded or client
// gone) observed inside a handler to a JSON 503 — the request was valid, the
// server just refused to spend more time on it.
func writeCancelled(w http.ResponseWriter, err error) {
	msg := "request cancelled"
	if errors.Is(err, context.DeadlineExceeded) {
		msg = "deadline exceeded"
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: msg})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// RelationInfo describes one registered relation.
type RelationInfo struct {
	Name             string `json:"name"`
	NumPoints        int    `json:"num_points"`
	NumBlocks        int    `json:"num_blocks"`
	StaircaseBytes   int    `json:"staircase_bytes"`
	VirtualGridBytes int    `json:"virtual_grid_bytes"`
}

func (s *Server) handleRelations(w http.ResponseWriter, _ *http.Request) {
	out := make([]RelationInfo, 0, len(s.names))
	for _, name := range s.names {
		rel := s.relations[name]
		out = append(out, RelationInfo{
			Name:             name,
			NumPoints:        rel.tree.NumPoints(),
			NumBlocks:        rel.tree.NumBlocks(),
			StaircaseBytes:   rel.staircase.StorageBytes(),
			VirtualGridBytes: rel.vgrid.StorageBytes(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// EstimateResponse is the reply to estimate and cost endpoints.
type EstimateResponse struct {
	Relation string  `json:"relation,omitempty"`
	Outer    string  `json:"outer,omitempty"`
	Inner    string  `json:"inner,omitempty"`
	K        int     `json:"k"`
	Method   string  `json:"method"`
	Blocks   float64 `json:"blocks"`
	TookNs   int64   `json:"took_ns"`
}

func (s *Server) relationParam(w http.ResponseWriter, r *http.Request, param string) (*relation, bool) {
	name := r.URL.Query().Get(param)
	rel, ok := s.relations[name]
	if !ok {
		badRequest(w, "unknown relation %q (have %v)", name, s.names)
		return nil, false
	}
	return rel, true
}

func queryFloat(r *http.Request, name string) (float64, error) {
	v, err := strconv.ParseFloat(r.URL.Query().Get(name), 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %w", name, err)
	}
	// strconv.ParseFloat happily parses "NaN" and "Inf"; neither is a
	// coordinate, and NaN in particular poisons every distance comparison
	// downstream.
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("parameter %q: must be a finite number, got %v", name, v)
	}
	return v, nil
}

func queryK(r *http.Request) (int, error) {
	k, err := strconv.Atoi(r.URL.Query().Get("k"))
	if err != nil {
		return 0, fmt.Errorf("parameter \"k\": %w", err)
	}
	if k < 1 {
		return 0, fmt.Errorf("k must be >= 1, got %d", k)
	}
	return k, nil
}

func (s *Server) handleEstimateSelect(w http.ResponseWriter, r *http.Request) {
	rel, ok := s.relationParam(w, r, "rel")
	if !ok {
		return
	}
	x, err := queryFloat(r, "x")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	y, err := queryFloat(r, "y")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	k, err := queryK(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	est, method, ok := s.selectEstimator(w, rel, r.URL.Query().Get("method"))
	if !ok {
		return
	}
	start := time.Now()
	blocks, err := est.EstimateSelect(geom.Point{X: x, Y: y}, k)
	if err != nil {
		badRequest(w, "estimate failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, EstimateResponse{
		Relation: rel.name, K: k, Method: method,
		Blocks: blocks, TookNs: time.Since(start).Nanoseconds(),
	})
}

// selectEstimator resolves a select-method name for rel; ok is false after
// an error response has been written.
func (s *Server) selectEstimator(w http.ResponseWriter, rel *relation, method string) (core.SelectEstimator, string, bool) {
	if method == "" {
		method = "staircase"
	}
	switch method {
	case "staircase":
		return estimatorHook(rel.staircase), method, true
	case "density":
		return estimatorHook(rel.density), method, true
	default:
		badRequest(w, "unknown select method %q (want staircase or density)", method)
		return nil, method, false
	}
}

// BatchSelectRequest is the body of POST /estimate/select/batch.
type BatchSelectRequest struct {
	// Relation names the target relation (required).
	Relation string `json:"relation"`
	// Method is "staircase" (default) or "density".
	Method string `json:"method,omitempty"`
	// Parallelism is the server-side worker count; 0 means GOMAXPROCS,
	// 1 forces a serial loop. The results are identical either way.
	Parallelism int `json:"parallelism,omitempty"`
	// Queries are answered independently and in order.
	Queries []BatchSelectQuery `json:"queries"`
}

// BatchSelectQuery is one query of a batch request.
type BatchSelectQuery struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	K int     `json:"k"`
}

// BatchSelectResult is the answer to the query at the same position of the
// request. A failed query reports its error here without failing the batch.
type BatchSelectResult struct {
	Blocks float64 `json:"blocks"`
	Error  string  `json:"error,omitempty"`
}

// BatchSelectResponse is the reply to POST /estimate/select/batch.
type BatchSelectResponse struct {
	Relation string              `json:"relation"`
	Method   string              `json:"method"`
	Results  []BatchSelectResult `json:"results"`
	TookNs   int64               `json:"took_ns"`
}

// maxBatchBody bounds the request body (1 MiB ≈ tens of thousands of
// queries) so a misbehaving client cannot exhaust server memory.
const maxBatchBody = 1 << 20

// validateBatchQueries rejects non-finite coordinates. Standard JSON cannot
// encode NaN or Inf, so today the decoder already refuses them upstream —
// this check pins the invariant against any future decode path (extended
// JSON dialects, alternative content types) because a NaN poisons every
// distance comparison it ever meets.
func validateBatchQueries(qs []BatchSelectQuery) error {
	for i, q := range qs {
		if math.IsNaN(q.X) || math.IsInf(q.X, 0) || math.IsNaN(q.Y) || math.IsInf(q.Y, 0) {
			return fmt.Errorf("queries[%d]: x and y must be finite numbers, got (%v, %v)", i, q.X, q.Y)
		}
	}
	return nil
}

// handleEstimateSelectBatchRoute dispatches on method and media type before
// the batch body is decoded: wrong methods get 405 + Allow, non-JSON bodies
// get 415 — both as JSON, like every other response of the service.
func (s *Server) handleEstimateSelectBatchRoute(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed,
			errorResponse{Error: fmt.Sprintf("method %s not allowed; use POST", r.Method)})
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil || mt != "application/json" {
			writeJSON(w, http.StatusUnsupportedMediaType,
				errorResponse{Error: fmt.Sprintf("Content-Type %q not supported; use application/json", ct)})
			return
		}
	}
	s.handleEstimateSelectBatch(w, r)
}

func (s *Server) handleEstimateSelectBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchSelectRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody)).Decode(&req); err != nil {
		badRequest(w, "decoding batch request: %v", err)
		return
	}
	rel, ok := s.relations[req.Relation]
	if !ok {
		badRequest(w, "unknown relation %q (have %v)", req.Relation, s.names)
		return
	}
	est, method, ok := s.selectEstimator(w, rel, req.Method)
	if !ok {
		return
	}
	if err := validateBatchQueries(req.Queries); err != nil {
		badRequest(w, "%v", err)
		return
	}
	queries := make([]core.SelectQuery, len(req.Queries))
	for i, q := range req.Queries {
		queries[i] = core.SelectQuery{Point: geom.Point{X: q.X, Y: q.Y}, K: q.K}
	}
	// Parallelism is advisory: a hostile client asking for a billion
	// workers gets the machine's worth, no more. Zero and negative still
	// mean GOMAXPROCS, 1 still forces a serial loop.
	parallelism := req.Parallelism
	if maxP := runtime.GOMAXPROCS(0); parallelism > maxP {
		parallelism = maxP
	}
	start := time.Now()
	results, err := core.EstimateSelectBatchContext(r.Context(), est, queries, parallelism)
	if err != nil {
		writeCancelled(w, err)
		return
	}
	took := time.Since(start)
	out := make([]BatchSelectResult, len(results))
	for i, res := range results {
		if res.Err != nil {
			out[i] = BatchSelectResult{Error: res.Err.Error()}
			continue
		}
		out[i] = BatchSelectResult{Blocks: res.Blocks}
	}
	writeJSON(w, http.StatusOK, BatchSelectResponse{
		Relation: req.Relation, Method: method,
		Results: out, TookNs: took.Nanoseconds(),
	})
}

func (s *Server) handleEstimateJoin(w http.ResponseWriter, r *http.Request) {
	outer, ok := s.relationParam(w, r, "outer")
	if !ok {
		return
	}
	inner, ok := s.relationParam(w, r, "inner")
	if !ok {
		return
	}
	if outer == inner {
		badRequest(w, "outer and inner must differ")
		return
	}
	k, err := queryK(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	method := r.URL.Query().Get("method")
	if method == "" {
		method = "catalogmerge"
	}
	var est core.JoinEstimator
	switch method {
	case "catalogmerge":
		est = s.merges[[2]string{outer.name, inner.name}]
	case "virtualgrid":
		est = inner.vgrid.Bind(outer.count)
	case "blocksample":
		est = core.NewBlockSample(outer.count, inner.count, s.opt.SampleSize)
	default:
		badRequest(w, "unknown join method %q (want catalogmerge, virtualgrid or blocksample)", method)
		return
	}
	start := time.Now()
	blocks, err := est.EstimateJoin(k)
	if err != nil {
		badRequest(w, "estimate failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, EstimateResponse{
		Outer: outer.name, Inner: inner.name, K: k, Method: method,
		Blocks: blocks, TookNs: time.Since(start).Nanoseconds(),
	})
}

func (s *Server) handleCostSelect(w http.ResponseWriter, r *http.Request) {
	rel, ok := s.relationParam(w, r, "rel")
	if !ok {
		return
	}
	x, err := queryFloat(r, "x")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	y, err := queryFloat(r, "y")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	k, err := queryK(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	start := time.Now()
	cost, err := costSelect(r.Context(), rel.tree, geom.Point{X: x, Y: y}, k)
	if err != nil {
		writeCancelled(w, err)
		return
	}
	writeJSON(w, http.StatusOK, EstimateResponse{
		Relation: rel.name, K: k, Method: "actual",
		Blocks: float64(cost), TookNs: time.Since(start).Nanoseconds(),
	})
}

func (s *Server) handleCostJoin(w http.ResponseWriter, r *http.Request) {
	outer, ok := s.relationParam(w, r, "outer")
	if !ok {
		return
	}
	inner, ok := s.relationParam(w, r, "inner")
	if !ok {
		return
	}
	if outer == inner {
		badRequest(w, "outer and inner must differ")
		return
	}
	k, err := queryK(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	start := time.Now()
	cost, err := costJoin(r.Context(), outer.count, inner.count, k)
	if err != nil {
		writeCancelled(w, err)
		return
	}
	writeJSON(w, http.StatusOK, EstimateResponse{
		Outer: outer.name, Inner: inner.name, K: k, Method: "actual",
		Blocks: float64(cost), TookNs: time.Since(start).Nanoseconds(),
	})
}

// costSelect and costJoin are the ground-truth entry points, held in
// variables so the fault-injection tests can substitute deterministically
// slow or failing implementations and prove the deadline and recovery
// behaviour of the full HTTP stack.
var (
	costSelect = knn.SelectCostContext
	costJoin   = knnjoin.CostContext
)

// estimatorHook wraps every resolved select estimator; the identity in
// production, replaced by the fault-injection tests to make estimators
// deterministically slow or failing.
var estimatorHook = func(est core.SelectEstimator) core.SelectEstimator { return est }
