package service

// Satellite hardening tests: input validation (NaN/Inf coordinates), media
// type and method discipline on the batch route, exhaustive error-path
// tables for the join endpoints, and a -race hammer mixing the batch
// endpoint with metadata reads.

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// NaN and ±Inf parse fine ("strconv.ParseFloat accepts NaN") but are not
// coordinates; every query route must reject them with 400.
func TestRejectNonFiniteCoordinates(t *testing.T) {
	srv := testServer(t)
	for _, path := range []string{
		"/estimate/select?rel=hotels&x=NaN&y=1&k=5",
		"/estimate/select?rel=hotels&x=1&y=NaN&k=5",
		"/estimate/select?rel=hotels&x=Inf&y=1&k=5",
		"/estimate/select?rel=hotels&x=1&y=-Inf&k=5",
		"/estimate/select?rel=hotels&x=%2BInf&y=1&k=5",
		"/cost/select?rel=hotels&x=NaN&y=1&k=5",
		"/cost/select?rel=hotels&x=1&y=Infinity&k=5",
	} {
		var out errorResponse
		if code := getJSON(t, srv.URL+path, &out); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, code)
		}
		if !strings.Contains(out.Error, "finite") {
			t.Errorf("%s: error %q does not explain the finiteness requirement", path, out.Error)
		}
	}
}

func TestBatchRejectsNonFiniteCoordinates(t *testing.T) {
	// The validation invariant itself, with values JSON cannot even
	// express (a future decode path must not sneak them in).
	for name, qs := range map[string][]BatchSelectQuery{
		"nan x":  {{X: math.NaN(), Y: 1, K: 5}},
		"inf y":  {{X: 1, Y: math.Inf(1), K: 5}},
		"-inf x": {{X: math.Inf(-1), Y: 1, K: 5}},
	} {
		if err := validateBatchQueries(qs); err == nil || !strings.Contains(err.Error(), "finite") {
			t.Errorf("%s: err = %v, want finiteness error", name, err)
		}
	}
	if err := validateBatchQueries([]BatchSelectQuery{{X: 1e308, Y: -1e308, K: 5}}); err != nil {
		t.Errorf("finite extremes rejected: %v", err)
	}

	// Over HTTP, the non-finite vector is float overflow: 1e999 must be a
	// 400 (the decoder refuses it), while the finite 1e308 passes.
	srv := testServer(t)
	for body, want := range map[string]int{
		`{"relation":"hotels","queries":[{"x":1e999,"y":2,"k":5}]}`:        http.StatusBadRequest,
		`{"relation":"hotels","queries":[{"x":1e308,"y":1e308,"k":5}]}`:    http.StatusOK,
		`{"relation":"hotels","queries":[{"x":1,"y":2,"k":5}]} `:           http.StatusOK,
		`{"relation":"hotels","queries":[{"x":-1e999,"y":-1e999,"k":5}]} `: http.StatusBadRequest,
	} {
		resp, err := http.Post(srv.URL+"/estimate/select/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("body %s: status %d, want %d", body, resp.StatusCode, want)
		}
	}
}

func TestBatchContentTypeRequired(t *testing.T) {
	srv := testServer(t)
	body := `{"relation":"hotels","queries":[{"x":1,"y":2,"k":5}]}`
	for ct, want := range map[string]int{
		"application/json":                http.StatusOK,
		"application/json; charset=utf-8": http.StatusOK,
		"text/plain":                      http.StatusUnsupportedMediaType,
		"application/xml":                 http.StatusUnsupportedMediaType,
		"not a media type;;;":             http.StatusUnsupportedMediaType,
	} {
		resp, err := http.Post(srv.URL+"/estimate/select/batch", ct, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("Content-Type %q: status %d, want %d", ct, resp.StatusCode, want)
		}
	}
}

func TestBatchWrongMethod405WithAllow(t *testing.T) {
	srv := testServer(t)
	for _, method := range []string{http.MethodGet, http.MethodPut, http.MethodDelete} {
		req, err := http.NewRequest(method, srv.URL+"/estimate/select/batch", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var out errorResponse
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s: status %d, want 405", method, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
			t.Errorf("%s: Allow = %q, want POST", method, allow)
		}
		if err != nil || out.Error == "" {
			t.Errorf("%s: 405 body not a JSON error (err=%v)", method, err)
		}
	}
}

// Every error path of /estimate/join and /cost/join, as a table.
func TestJoinErrorPaths(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		name, path string
		wantInBody string
	}{
		{"estimate unknown outer", "/estimate/join?outer=nope&inner=restaurants&k=5", "unknown relation"},
		{"estimate unknown inner", "/estimate/join?outer=hotels&inner=nope&k=5", "unknown relation"},
		{"estimate outer==inner", "/estimate/join?outer=hotels&inner=hotels&k=5", "must differ"},
		{"estimate missing k", "/estimate/join?outer=hotels&inner=restaurants", "\"k\""},
		{"estimate bad k", "/estimate/join?outer=hotels&inner=restaurants&k=zero", "\"k\""},
		{"estimate k<1", "/estimate/join?outer=hotels&inner=restaurants&k=0", "k must be >= 1"},
		{"estimate negative k", "/estimate/join?outer=hotels&inner=restaurants&k=-3", "k must be >= 1"},
		{"estimate unknown method", "/estimate/join?outer=hotels&inner=restaurants&k=5&method=magic", "unknown join method"},
		{"cost unknown outer", "/cost/join?outer=nope&inner=restaurants&k=5", "unknown relation"},
		{"cost unknown inner", "/cost/join?outer=hotels&inner=nope&k=5", "unknown relation"},
		{"cost outer==inner", "/cost/join?outer=hotels&inner=hotels&k=5", "must differ"},
		{"cost bad k", "/cost/join?outer=hotels&inner=restaurants&k=zero", "\"k\""},
		{"cost k<1", "/cost/join?outer=hotels&inner=restaurants&k=0", "k must be >= 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out errorResponse
			if code := getJSON(t, srv.URL+tc.path, &out); code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", code)
			}
			if !strings.Contains(out.Error, tc.wantInBody) {
				t.Fatalf("error %q does not contain %q", out.Error, tc.wantInBody)
			}
		})
	}
}

// Concurrent batch estimates and metadata reads share the server; run with
// -race (make check does) to prove the handlers touch no unsynchronized
// state.
func TestBatchAndRelationsConcurrently(t *testing.T) {
	srv := testServer(t)
	body, err := json.Marshal(BatchSelectRequest{
		Relation: "restaurants",
		Queries: []BatchSelectQuery{
			{X: 10, Y: 45, K: 20}, {X: -20, Y: 30, K: 5}, {X: 0, Y: 50, K: 60},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, iters = 8, 20
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if g%2 == 0 {
					resp, err := http.Post(srv.URL+"/estimate/select/batch", "application/json", bytes.NewReader(body))
					if err != nil {
						t.Errorf("batch: %v", err)
						return
					}
					var out BatchSelectResponse
					if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || resp.StatusCode != http.StatusOK {
						t.Errorf("batch: status %d err %v", resp.StatusCode, err)
					}
					resp.Body.Close()
				} else {
					resp, err := http.Get(srv.URL + "/relations")
					if err != nil {
						t.Errorf("relations: %v", err)
						return
					}
					var out []RelationInfo
					if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || len(out) != 2 {
						t.Errorf("relations: %d entries, err %v", len(out), err)
					}
					resp.Body.Close()
				}
			}
		}(g)
	}
	wg.Wait()
}

// A parallelism demand far beyond the machine is clamped, not honored: the
// batch still succeeds and answers every query (which it would not if the
// server tried to spawn 1e9 workers).
func TestBatchParallelismClamped(t *testing.T) {
	srv := testServer(t)
	queries := make([]BatchSelectQuery, 64)
	for i := range queries {
		queries[i] = BatchSelectQuery{X: float64(i%40) - 20, Y: 45, K: 10}
	}
	var out BatchSelectResponse
	code := postJSON(t, srv.URL+"/estimate/select/batch", BatchSelectRequest{
		Relation: "restaurants", Parallelism: 1_000_000_000, Queries: queries,
	}, &out)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(out.Results) != len(queries) {
		t.Fatalf("%d results, want %d", len(out.Results), len(queries))
	}
	for i, r := range out.Results {
		if r.Error != "" || r.Blocks < 1 {
			t.Fatalf("query %d: %+v", i, r)
		}
	}
}
