// Service-layer column of the aknn-bounds test suite: the technique is
// listed on GET /techniques, resolves through ?technique= on the join
// endpoint bit-exactly against a directly constructed estimator, and the
// edge tables (k = 0, k >= N, all duplicates, both pair orders) behave
// like every other join technique on the wire.
package service

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"testing"

	"knncost/internal/aknn"
	"knncost/internal/datagen"
	"knncost/internal/engine"
	"knncost/internal/index"
	"knncost/internal/quadtree"
)

// TestAknnBoundsListedOnTechniques: GET /techniques advertises the
// technique with its aliases, sorted.
func TestAknnBoundsListedOnTechniques(t *testing.T) {
	srv := testServer(t)
	var out TechniquesResponse
	if code := getJSON(t, srv.URL+"/techniques", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, ti := range out.Join {
		if ti.Name != engine.TechAknnBounds {
			continue
		}
		if ti.Summary == "" {
			t.Error("aknn-bounds has no summary")
		}
		wantAliases := []string{"aknn", "aknnbounds"}
		if len(ti.Aliases) != len(wantAliases) {
			t.Fatalf("aliases = %v, want %v", ti.Aliases, wantAliases)
		}
		sorted := append([]string(nil), ti.Aliases...)
		sort.Strings(sorted)
		for i, a := range sorted {
			if a != wantAliases[i] {
				t.Fatalf("aliases = %v, want %v", ti.Aliases, wantAliases)
			}
		}
		return
	}
	t.Fatalf("aknn-bounds missing from GET /techniques join list")
}

// TestAknnBoundsEstimateOverHTTP: ?technique=aknn-bounds answers are
// bit-exact against an estimator built directly from the same trees with
// the server's configured sample size, on both pair orders, and the alias
// resolves to the identical numbers.
func TestAknnBoundsEstimateOverHTTP(t *testing.T) {
	srv := testServer(t)
	// Rebuild the fixture relations exactly as testServer does: the
	// direct estimator must see the same partitioning and the server's
	// SampleSize of 100.
	build := func(n int, seed int64) *index.Tree {
		return quadtree.Build(datagen.OSMLike(n, seed), quadtree.Options{
			Capacity: 128, Bounds: datagen.WorldBounds,
		}).Index().CountTree()
	}
	hotels := build(8000, 1)
	restaurants := build(15000, 2)

	type pair struct {
		outer, inner string
	}
	direct := map[pair]*aknn.Estimator{
		{"hotels", "restaurants"}: aknn.BuildSummary(restaurants).Bind(hotels, 100),
		{"restaurants", "hotels"}: aknn.BuildSummary(hotels).Bind(restaurants, 100),
	}
	for p, est := range direct {
		for _, k := range []int{1, 15, 64, 200} {
			want, err := est.EstimateJoin(k)
			if err != nil {
				t.Fatal(err)
			}
			var out EstimateResponse
			url := fmt.Sprintf("%s/estimate/join?outer=%s&inner=%s&k=%d&technique=aknn-bounds",
				srv.URL, p.outer, p.inner, k)
			if code := getJSON(t, url, &out); code != http.StatusOK {
				t.Fatalf("%s⋉%s k=%d: status %d (%+v)", p.outer, p.inner, k, code, out)
			}
			if out.Blocks != want || out.Method != "aknn-bounds" {
				t.Fatalf("%s⋉%s k=%d: served %v via %q, direct estimator %v",
					p.outer, p.inner, k, out.Blocks, out.Method, want)
			}
			// The alias answers the same number and echoes the client's
			// spelling.
			var viaAlias EstimateResponse
			url = fmt.Sprintf("%s/estimate/join?outer=%s&inner=%s&k=%d&technique=aknn",
				srv.URL, p.outer, p.inner, k)
			if code := getJSON(t, url, &viaAlias); code != http.StatusOK {
				t.Fatalf("alias k=%d: status %d", k, code)
			}
			if viaAlias.Blocks != want || viaAlias.Method != "aknn" {
				t.Fatalf("alias k=%d: %v via %q, want %v", k, viaAlias.Blocks, viaAlias.Method, want)
			}
		}
	}
}

// TestAknnBoundsServiceEdgeCases: the degenerate corners on the wire —
// every invalid k is a 400, every valid request a finite non-negative
// estimate, including the all-duplicates relation in both roles.
func TestAknnBoundsServiceEdgeCases(t *testing.T) {
	srv := edgeServer(t)
	cases := []struct {
		name     string
		path     string
		wantCode int
	}{
		{"k=0", "/estimate/join?outer=tiny&inner=dups&k=0&technique=aknn-bounds", 400},
		{"negative k", "/estimate/join?outer=tiny&inner=dups&k=-3&technique=aknn-bounds", 400},
		{"k over inner N", "/estimate/join?outer=tiny&inner=dups&k=100&technique=aknn-bounds", 200},
		{"duplicates outer", "/estimate/join?outer=dups&inner=tiny&k=3&technique=aknn-bounds", 200},
		{"duplicates inner", "/estimate/join?outer=tiny&inner=dups&k=5&technique=aknn-bounds", 200},
		{"self join rejected", "/estimate/join?outer=tiny&inner=tiny&k=2&technique=aknn-bounds", 400},
		{"alias", "/estimate/join?outer=tiny&inner=dups&k=3&technique=aknnbounds", 200},
		{"unknown outer", "/estimate/join?outer=nope&inner=dups&k=3&technique=aknn-bounds", 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.wantCode != 200 {
				var out errorResponse
				if code := getJSON(t, srv.URL+tc.path, &out); code != tc.wantCode {
					t.Fatalf("%s: status %d, want %d", tc.path, code, tc.wantCode)
				}
				if out.Error == "" {
					t.Fatalf("%s: empty error message", tc.path)
				}
				return
			}
			var out EstimateResponse
			if code := getJSON(t, srv.URL+tc.path, &out); code != 200 {
				t.Fatalf("%s: status %d, want 200", tc.path, code)
			}
			if math.IsNaN(out.Blocks) || math.IsInf(out.Blocks, 0) || out.Blocks < 0 {
				t.Fatalf("%s: blocks = %v, want finite non-negative", tc.path, out.Blocks)
			}
		})
	}

	// Monotone in k over the wire, same contract as in-process.
	prev := -1.0
	for _, k := range []int{1, 2, 4, 8, 16} {
		var out EstimateResponse
		url := fmt.Sprintf("%s/estimate/join?outer=tiny&inner=dups&k=%d&technique=aknn-bounds", srv.URL, k)
		if code := getJSON(t, url, &out); code != 200 {
			t.Fatalf("k=%d: status %d", k, code)
		}
		if out.Blocks < prev {
			t.Fatalf("estimate decreased from %v to %v at k=%d", prev, out.Blocks, k)
		}
		prev = out.Blocks
	}
}
