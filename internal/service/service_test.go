package service

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"knncost/internal/datagen"
	"knncost/internal/index"
	"knncost/internal/quadtree"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	build := func(n int, seed int64) *index.Tree {
		return quadtree.Build(datagen.OSMLike(n, seed), quadtree.Options{
			Capacity: 128, Bounds: datagen.WorldBounds,
		}).Index()
	}
	s, err := New(map[string]*index.Tree{
		"hotels":      build(8000, 1),
		"restaurants": build(15000, 2),
	}, Options{MaxK: 200, SampleSize: 100, GridSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	var out map[string]string
	if code := getJSON(t, srv.URL+"/healthz", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out["status"] != "ok" {
		t.Fatalf("status = %q", out["status"])
	}
}

func TestRelations(t *testing.T) {
	srv := testServer(t)
	var out []RelationInfo
	if code := getJSON(t, srv.URL+"/relations", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(out) != 2 {
		t.Fatalf("got %d relations", len(out))
	}
	if out[0].Name != "hotels" || out[1].Name != "restaurants" {
		t.Fatalf("names %q, %q", out[0].Name, out[1].Name)
	}
	for _, r := range out {
		if r.NumPoints == 0 || r.NumBlocks == 0 || r.StaircaseBytes == 0 || r.VirtualGridBytes == 0 {
			t.Errorf("relation %q has zero-valued fields: %+v", r.Name, r)
		}
		if r.State != "ready" || r.Version != 1 {
			t.Errorf("relation %q: state %q version %d, want ready v1", r.Name, r.State, r.Version)
		}
	}
}

func TestEstimateSelect(t *testing.T) {
	srv := testServer(t)
	for _, method := range []string{"staircase", "density"} {
		var out EstimateResponse
		url := fmt.Sprintf("%s/estimate/select?rel=restaurants&x=10&y=45&k=20&method=%s", srv.URL, method)
		if code := getJSON(t, url, &out); code != http.StatusOK {
			t.Fatalf("%s: status %d", method, code)
		}
		if out.Blocks < 1 || out.Method != method || out.K != 20 {
			t.Errorf("%s: response %+v", method, out)
		}
	}
	// The estimates should track the actual cost.
	var est, actual EstimateResponse
	getJSON(t, srv.URL+"/estimate/select?rel=restaurants&x=10&y=45&k=20", &est)
	getJSON(t, srv.URL+"/cost/select?rel=restaurants&x=10&y=45&k=20", &actual)
	if actual.Blocks < 1 {
		t.Fatalf("actual cost %g", actual.Blocks)
	}
	if r := math.Abs(est.Blocks-actual.Blocks) / actual.Blocks; r > 1.5 {
		t.Errorf("estimate %g vs actual %g (ratio %g)", est.Blocks, actual.Blocks, r)
	}
}

func TestEstimateJoin(t *testing.T) {
	srv := testServer(t)
	var actual EstimateResponse
	getJSON(t, srv.URL+"/cost/join?outer=hotels&inner=restaurants&k=15", &actual)
	if actual.Blocks < 1 {
		t.Fatalf("actual join cost %g", actual.Blocks)
	}
	for _, method := range []string{"catalogmerge", "virtualgrid", "blocksample"} {
		var out EstimateResponse
		url := fmt.Sprintf("%s/estimate/join?outer=hotels&inner=restaurants&k=15&method=%s", srv.URL, method)
		if code := getJSON(t, url, &out); code != http.StatusOK {
			t.Fatalf("%s: status %d", method, code)
		}
		if r := math.Abs(out.Blocks-actual.Blocks) / actual.Blocks; r > 0.6 {
			t.Errorf("%s: estimate %g vs actual %g (err %g)", method, out.Blocks, actual.Blocks, r)
		}
	}
	// Asymmetry: both directions must work.
	var rev EstimateResponse
	url := srv.URL + "/estimate/join?outer=restaurants&inner=hotels&k=15"
	if code := getJSON(t, url, &rev); code != http.StatusOK {
		t.Fatalf("reverse join status %d", code)
	}
}

func TestBadRequests(t *testing.T) {
	srv := testServer(t)
	cases := []string{
		"/estimate/select?rel=nope&x=1&y=1&k=5",
		"/estimate/select?rel=hotels&x=abc&y=1&k=5",
		"/estimate/select?rel=hotels&x=1&y=1&k=0",
		"/estimate/select?rel=hotels&x=1&y=1&k=5&method=magic",
		"/estimate/join?outer=hotels&inner=hotels&k=5",
		"/estimate/join?outer=hotels&inner=nope&k=5",
		"/estimate/join?outer=hotels&inner=restaurants&k=-2",
		"/estimate/join?outer=hotels&inner=restaurants&k=5&method=magic",
		"/cost/select?rel=hotels&x=1&y=1&k=zero",
	}
	for _, path := range cases {
		var out errorResponse
		if code := getJSON(t, srv.URL+path, &out); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, code)
		}
		if out.Error == "" {
			t.Errorf("%s: empty error message", path)
		}
	}
}

func TestNewRejectsEmptyRelation(t *testing.T) {
	empty := quadtree.Build(nil, quadtree.Options{
		Bounds: datagen.WorldBounds,
	}).Index()
	// A single empty leaf is one block, so use a tree with zero blocks.
	_ = empty
	if _, err := New(map[string]*index.Tree{"x": index.New(nil, true)}, Options{}); err == nil {
		t.Error("relation without blocks should be rejected")
	}
}
