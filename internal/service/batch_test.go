package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"testing"
)

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode
}

// The batch endpoint must return exactly the results of N sequential single
// calls, in order, for both methods and any parallelism.
func TestEstimateSelectBatchMatchesSingles(t *testing.T) {
	srv := testServer(t)
	rng := rand.New(rand.NewSource(9))
	queries := make([]BatchSelectQuery, 40)
	for i := range queries {
		queries[i] = BatchSelectQuery{
			X: -20 + rng.Float64()*60,
			Y: 20 + rng.Float64()*40,
			K: 1 + rng.Intn(199),
		}
	}
	for _, method := range []string{"staircase", "density"} {
		for _, parallelism := range []int{0, 1, 4} {
			var out BatchSelectResponse
			code := postJSON(t, srv.URL+"/estimate/select/batch", BatchSelectRequest{
				Relation: "restaurants", Method: method,
				Parallelism: parallelism, Queries: queries,
			}, &out)
			if code != http.StatusOK {
				t.Fatalf("%s/p=%d: status %d", method, parallelism, code)
			}
			if len(out.Results) != len(queries) {
				t.Fatalf("%s/p=%d: %d results, want %d",
					method, parallelism, len(out.Results), len(queries))
			}
			for i, q := range queries {
				var single EstimateResponse
				url := fmt.Sprintf("%s/estimate/select?rel=restaurants&x=%v&y=%v&k=%d&method=%s",
					srv.URL, q.X, q.Y, q.K, method)
				if code := getJSON(t, url, &single); code != http.StatusOK {
					t.Fatalf("single %d: status %d", i, code)
				}
				if out.Results[i].Error != "" {
					t.Fatalf("%s/p=%d query %d: unexpected error %q",
						method, parallelism, i, out.Results[i].Error)
				}
				if out.Results[i].Blocks != single.Blocks {
					t.Fatalf("%s/p=%d query %d: batch %v != single %v",
						method, parallelism, i, out.Results[i].Blocks, single.Blocks)
				}
			}
		}
	}
}

// A bad query inside the batch reports its own error and leaves the rest
// untouched; the batch response is still 200.
func TestEstimateSelectBatchErrorIsolation(t *testing.T) {
	srv := testServer(t)
	var out BatchSelectResponse
	code := postJSON(t, srv.URL+"/estimate/select/batch", BatchSelectRequest{
		Relation: "hotels",
		Queries: []BatchSelectQuery{
			{X: 10, Y: 45, K: 5},
			{X: 10, Y: 45, K: 0}, // invalid
			{X: 12, Y: 44, K: 9},
		},
	}, &out)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.Results[1].Error == "" {
		t.Fatal("k=0 query did not report an error")
	}
	for _, i := range []int{0, 2} {
		if out.Results[i].Error != "" || out.Results[i].Blocks < 1 {
			t.Fatalf("query %d affected by bad neighbor: %+v", i, out.Results[i])
		}
	}
}

func TestEstimateSelectBatchEmpty(t *testing.T) {
	srv := testServer(t)
	var out BatchSelectResponse
	code := postJSON(t, srv.URL+"/estimate/select/batch", BatchSelectRequest{
		Relation: "hotels",
	}, &out)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(out.Results) != 0 {
		t.Fatalf("empty batch returned %d results", len(out.Results))
	}
}

func TestEstimateSelectBatchBadRequests(t *testing.T) {
	srv := testServer(t)
	for name, body := range map[string]any{
		"unknown relation": BatchSelectRequest{Relation: "nope",
			Queries: []BatchSelectQuery{{X: 1, Y: 1, K: 5}}},
		"unknown method": BatchSelectRequest{Relation: "hotels", Method: "magic",
			Queries: []BatchSelectQuery{{X: 1, Y: 1, K: 5}}},
	} {
		var out errorResponse
		if code := postJSON(t, srv.URL+"/estimate/select/batch", body, &out); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
		if out.Error == "" {
			t.Errorf("%s: empty error message", name)
		}
	}
	// Malformed JSON is rejected with a 400, not a panic.
	resp, err := http.Post(srv.URL+"/estimate/select/batch", "application/json",
		strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}
	// GET on the batch route is not allowed.
	resp2, err := http.Get(srv.URL + "/estimate/select/batch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET batch: status %d, want 405", resp2.StatusCode)
	}
}
