package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"knncost/internal/store"
)

// adminServer is a dynamic-schema server: an empty caller-managed store plus
// a data directory for the file source.
func adminServer(t *testing.T, dataDir string) (*httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.New(store.Options{MaxK: 100, SampleSize: 40, GridSize: 4, IndexCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		st.Close(ctx)
	})
	srv := httptest.NewServer(NewWithStore(st, Options{
		MaxK: 100, SampleSize: 40, GridSize: 4, DataDir: dataDir,
	}))
	t.Cleanup(srv.Close)
	return srv, st
}

func adminPost(t *testing.T, url string, body any, out any) (int, http.Header) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode, resp.Header
}

func doRequest(t *testing.T, method, url string) int {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func inlinePoints(n int, seed int64) [][2]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{rng.Float64() * 100, rng.Float64() * 100}
	}
	return pts
}

// TestAdminLifecycle is the e2e acceptance path: POST registers and returns
// 202 with a build status; estimates answer 503 (never 400) until the build
// publishes, then 200; the listing shows the relation ready; DELETE drops it
// and a second DELETE is 404.
func TestAdminLifecycle(t *testing.T) {
	srv, _ := adminServer(t, "")

	var st RelationInfo
	code, _ := adminPost(t, srv.URL+"/relations", RegisterRequest{
		Name: "dyn", Points: inlinePoints(5000, 1),
	}, &st)
	if code != http.StatusAccepted {
		t.Fatalf("POST /relations = %d, want 202", code)
	}
	if st.Name != "dyn" || (st.State != "queued" && st.State != "building") {
		t.Fatalf("registration status = %+v", st)
	}

	// Until the catalogs publish, estimates must say "retry" (503 with
	// Retry-After), never "your request is wrong" (400). Eventually 200.
	estimateURL := srv.URL + "/estimate/select?rel=dyn&x=50&y=50&k=10"
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(estimateURL)
		if err != nil {
			t.Fatal(err)
		}
		var est EstimateResponse
		code := resp.StatusCode
		if code == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&est); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if est.Blocks < 1 {
				t.Fatalf("estimate %+v", est)
			}
			break
		}
		if code != http.StatusServiceUnavailable {
			t.Fatalf("estimate while building = %d, want 503 or 200", code)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("503 while building lacks Retry-After")
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("relation never became ready")
		}
		time.Sleep(2 * time.Millisecond)
	}

	var status RelationInfo
	if code := getJSON(t, srv.URL+"/relations/dyn/status", &status); code != http.StatusOK {
		t.Fatalf("status endpoint = %d", code)
	}
	if status.State != "ready" || status.Version != 1 || status.NumPoints != 5000 {
		t.Fatalf("status after build = %+v", status)
	}
	var list []RelationInfo
	if code := getJSON(t, srv.URL+"/relations", &list); code != http.StatusOK || len(list) != 1 {
		t.Fatalf("listing = %d, %v", code, list)
	}
	if list[0].State != "ready" || list[0].StaircaseBytes <= 0 {
		t.Fatalf("listing row = %+v", list[0])
	}

	if code := doRequest(t, http.MethodDelete, srv.URL+"/relations/dyn"); code != http.StatusNoContent {
		t.Fatalf("DELETE = %d, want 204", code)
	}
	if code := doRequest(t, http.MethodDelete, srv.URL+"/relations/dyn"); code != http.StatusNotFound {
		t.Fatalf("second DELETE = %d, want 404", code)
	}
	if code := doRequest(t, http.MethodGet, srv.URL+"/relations/dyn/status"); code != http.StatusNotFound {
		t.Fatalf("status after drop = %d, want 404", code)
	}
	resp, err := http.Get(estimateURL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("estimate after drop = %d, want 400 (unknown relation)", resp.StatusCode)
	}
}

func TestAdminRegisterFromFile(t *testing.T) {
	dataDir := t.TempDir()
	var buf bytes.Buffer
	buf.WriteString("# comment line\n\n")
	for _, p := range inlinePoints(3000, 7) {
		fmt.Fprintf(&buf, "%v,%v\n", p[0], p[1])
	}
	if err := os.WriteFile(filepath.Join(dataDir, "pts.csv"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, st := adminServer(t, dataDir)

	code, _ := adminPost(t, srv.URL+"/relations", RegisterRequest{Name: "fromfile", File: "pts.csv"}, nil)
	if code != http.StatusAccepted {
		t.Fatalf("POST file registration = %d, want 202", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := st.WaitReady(ctx, "fromfile"); err != nil {
		t.Fatal(err)
	}
	var status RelationInfo
	getJSON(t, srv.URL+"/relations/fromfile/status", &status)
	if status.NumPoints != 3000 {
		t.Fatalf("file registration loaded %d points, want 3000", status.NumPoints)
	}
}

func TestAdminRegisterRejections(t *testing.T) {
	dataDir := t.TempDir()
	srv, _ := adminServer(t, dataDir)
	noFileSrv, _ := adminServer(t, "")

	cases := []struct {
		name string
		url  string
		req  RegisterRequest
		want int
	}{
		{"no source", srv.URL, RegisterRequest{Name: "x"}, http.StatusBadRequest},
		{"both sources", srv.URL, RegisterRequest{Name: "x", Points: inlinePoints(5, 1), File: "a"}, http.StatusBadRequest},
		{"bad name", srv.URL, RegisterRequest{Name: "no spaces", Points: inlinePoints(5, 1)}, http.StatusBadRequest},
		{"path escape", srv.URL, RegisterRequest{Name: "x", File: "../secret"}, http.StatusBadRequest},
		{"absolute path", srv.URL, RegisterRequest{Name: "x", File: "/etc/passwd"}, http.StatusBadRequest},
		{"missing file", srv.URL, RegisterRequest{Name: "x", File: "nope.csv"}, http.StatusBadRequest},
		{"file source disabled", noFileSrv.URL, RegisterRequest{Name: "x", File: "a.csv"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		var out errorResponse
		code, _ := adminPost(t, tc.url+"/relations", tc.req, &out)
		if code != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.want)
		}
		if out.Error == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}

	// Non-JSON content type is refused before the body is read.
	resp, err := http.Post(srv.URL+"/relations", "text/plain", bytes.NewReader([]byte("hi")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("text/plain registration = %d, want 415", resp.StatusCode)
	}
}

// TestAdminReplaceHotSwaps registers the same name twice over HTTP and
// verifies the version advances while the relation keeps serving.
func TestAdminReplaceHotSwaps(t *testing.T) {
	srv, st := adminServer(t, "")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if code, _ := adminPost(t, srv.URL+"/relations", RegisterRequest{Name: "r", Points: inlinePoints(4000, 1)}, nil); code != http.StatusAccepted {
		t.Fatalf("first registration: %d", code)
	}
	if err := st.WaitReady(ctx, "r"); err != nil {
		t.Fatal(err)
	}
	if code, _ := adminPost(t, srv.URL+"/relations", RegisterRequest{Name: "r", Points: inlinePoints(6000, 2)}, nil); code != http.StatusAccepted {
		t.Fatalf("replacement registration: %d", code)
	}
	if err := st.WaitReady(ctx, "r"); err != nil {
		t.Fatal(err)
	}
	var status RelationInfo
	getJSON(t, srv.URL+"/relations/r/status", &status)
	if status.Version != 2 || status.NumPoints != 6000 {
		t.Fatalf("after replacement: %+v", status)
	}
	var est EstimateResponse
	if code := getJSON(t, srv.URL+"/estimate/select?rel=r&x=50&y=50&k=5", &est); code != http.StatusOK {
		t.Fatalf("estimate after replacement: %d", code)
	}
}
