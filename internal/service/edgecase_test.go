// Table-driven edge-case tests of the HTTP handlers: degenerate k values
// (0, >= N, > MaxK), queries outside the relation's MBR, and an
// all-duplicates relation. Every 200 must carry a finite, non-negative
// block count; every invalid k must be a 400 with a message, never a 500
// or a non-finite estimate.
package service

import (
	"fmt"
	"math"
	"net/http/httptest"
	"testing"

	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/quadtree"
)

// edgeServer serves two degenerate relations: "tiny" with 6 points and
// "dups" with 40 copies of one point.
func edgeServer(t *testing.T) *httptest.Server {
	t.Helper()
	tinyPts := []geom.Point{
		{X: 1, Y: 1}, {X: 2, Y: 1}, {X: 3, Y: 4},
		{X: 8, Y: 2}, {X: 9, Y: 9}, {X: 5, Y: 5},
	}
	dupPts := make([]geom.Point, 40)
	for i := range dupPts {
		dupPts[i] = geom.Point{X: 4, Y: 4}
	}
	build := func(pts []geom.Point) *index.Tree {
		return quadtree.Build(pts, quadtree.Options{
			Capacity: 4, Bounds: geom.NewRect(0, 0, 10, 10),
		}).Index()
	}
	s, err := New(map[string]*index.Tree{
		"tiny": build(tinyPts),
		"dups": build(dupPts),
	}, Options{MaxK: 16, SampleSize: 8, GridSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return srv
}

func TestEdgeCaseRequests(t *testing.T) {
	srv := edgeServer(t)
	cases := []struct {
		name     string
		path     string
		wantCode int
	}{
		{"select k=0", "/estimate/select?rel=tiny&x=1&y=1&k=0", 400},
		{"select negative k", "/estimate/select?rel=tiny&x=1&y=1&k=-3", 400},
		{"select k over N and MaxK", "/estimate/select?rel=tiny&x=1&y=1&k=100", 200},
		{"select density k over N", "/estimate/select?rel=tiny&x=1&y=1&k=100&method=density", 200},
		{"select outside MBR", "/estimate/select?rel=tiny&x=9999&y=-9999&k=3", 200},
		{"select on duplicates", "/estimate/select?rel=dups&x=4&y=4&k=5", 200},
		{"select duplicates k over N", "/estimate/select?rel=dups&x=4&y=4&k=100", 200},
		{"cost k=0", "/cost/select?rel=tiny&x=1&y=1&k=0", 400},
		{"cost k over N", "/cost/select?rel=tiny&x=1&y=1&k=100", 200},
		{"cost outside MBR", "/cost/select?rel=tiny&x=9999&y=-9999&k=2", 200},
		{"join k=0", "/estimate/join?outer=tiny&inner=dups&k=0", 400},
		{"join k over inner N", "/estimate/join?outer=tiny&inner=dups&k=100", 200},
		{"join duplicates outer", "/estimate/join?outer=dups&inner=tiny&k=3", 200},
		{"join cost k=0", "/cost/join?outer=tiny&inner=dups&k=0", 400},
		{"join cost k over N", "/cost/join?outer=tiny&inner=dups&k=100", 200},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.wantCode != 200 {
				var out errorResponse
				if code := getJSON(t, srv.URL+tc.path, &out); code != tc.wantCode {
					t.Fatalf("%s: status %d, want %d", tc.path, code, tc.wantCode)
				}
				if out.Error == "" {
					t.Fatalf("%s: empty error message", tc.path)
				}
				return
			}
			var out EstimateResponse
			if code := getJSON(t, srv.URL+tc.path, &out); code != 200 {
				t.Fatalf("%s: status %d, want 200", tc.path, code)
			}
			if math.IsNaN(out.Blocks) || math.IsInf(out.Blocks, 0) || out.Blocks < 0 {
				t.Fatalf("%s: blocks = %v, want finite non-negative", tc.path, out.Blocks)
			}
		})
	}
}

// TestCostSelectKOverNScansEverything pins the k >= N contract: once k
// exceeds the relation's point count, distance browsing exhausts the index,
// so the true cost equals the cost at exactly k=N and never grows further.
func TestCostSelectKOverNScansEverything(t *testing.T) {
	srv := edgeServer(t)
	cost := func(k int) float64 {
		var out EstimateResponse
		url := fmt.Sprintf("%s/cost/select?rel=tiny&x=1&y=1&k=%d", srv.URL, k)
		if code := getJSON(t, url, &out); code != 200 {
			t.Fatalf("k=%d: status %d", k, code)
		}
		return out.Blocks
	}
	atN := cost(6)
	for _, k := range []int{7, 60, 600} {
		if got := cost(k); got != atN {
			t.Fatalf("cost(k=%d) = %v, want %v (same as k=N)", k, got, atN)
		}
	}
}
