// Metamorphic properties of the bounds-only AkNN cost model, asserted
// without knowing true values: exact invariance under lossless IEEE
// transformations (power-of-two scale, dyadic translation), monotonicity
// in k, and inner-partition refinement never increasing the cost.
package aknn

import (
	"math"
	"math/rand"
	"testing"

	"knncost/internal/geom"
)

// quantize snaps a coordinate to the 2^-10 lattice, on which sums and
// midpoints up to the quadtree's depth limit are exact.
func quantize(p geom.Point) geom.Point {
	const q = 1024.0
	return geom.Point{X: math.Round(p.X*q) / q, Y: math.Round(p.Y*q) / q}
}

func transformPoints(pts []geom.Point, f func(geom.Point) geom.Point) []geom.Point {
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[i] = f(p)
	}
	return out
}

// assertAknnTransformInvariant builds original and transformed relation
// pairs and requires bit-identical costs and estimates.
func assertAknnTransformInvariant(t *testing.T, outerPts, innerPts []geom.Point, f func(geom.Point) geom.Point) {
	t.Helper()
	outer := buildTree(t, outerPts, 16).CountTree()
	inner := buildTree(t, innerPts, 16).CountTree()
	outerT := buildTree(t, transformPoints(outerPts, f), 16).CountTree()
	innerT := buildTree(t, transformPoints(innerPts, f), 16).CountTree()
	sum, sumT := BuildSummary(inner), BuildSummary(innerT)
	if sum.NumPartitions() != sumT.NumPartitions() || sum.Total() != sumT.Total() {
		t.Fatalf("summaries diverge: %d/%d vs %d/%d",
			sum.NumPartitions(), sum.Total(), sumT.NumPartitions(), sumT.Total())
	}
	for _, k := range []int{1, 3, 17, 64, len(innerPts) + 1} {
		if a, b := Cost(outer, inner, k), Cost(outerT, innerT, k); a != b {
			t.Fatalf("Cost(k=%d): %d original, %d transformed", k, a, b)
		}
		for _, s := range []int{7, 0} {
			a, errA := sum.Bind(outer, s).EstimateJoin(k)
			b, errB := sumT.Bind(outerT, s).EstimateJoin(k)
			if errA != nil || errB != nil || a != b {
				t.Fatalf("estimate(k=%d, s=%d): %v,%v original, %v,%v transformed", k, s, a, errA, b, errB)
			}
		}
	}
}

// TestAknnScaleInvariance: scaling every coordinate by a power of two is
// lossless in IEEE doubles and commutes with splits, MINDIST/MAXDIST and
// the threshold comparison, so costs and estimates are bit-identical.
func TestAknnScaleInvariance(t *testing.T) {
	const scale = 4.0
	rng := rand.New(rand.NewSource(31))
	outerPts := randPoints(rng, 300, testBounds())
	innerPts := randPoints(rng, 400, testBounds())
	assertAknnTransformInvariant(t, outerPts, innerPts, func(p geom.Point) geom.Point {
		return geom.Point{X: p.X * scale, Y: p.Y * scale}
	})
}

// TestAknnTranslationInvariance: on the dyadic lattice a power-of-two
// translation keeps every sum, midpoint and difference exact.
func TestAknnTranslationInvariance(t *testing.T) {
	const shift = 256.0
	rng := rand.New(rand.NewSource(37))
	outerPts := transformPoints(randPoints(rng, 300, testBounds()), quantize)
	innerPts := transformPoints(randPoints(rng, 400, testBounds()), quantize)
	assertAknnTransformInvariant(t, outerPts, innerPts, func(p geom.Point) geom.Point {
		return geom.Point{X: p.X + shift, Y: p.Y + shift}
	})
}

// TestAknnMonotonicInK: asking for more neighbors can only grow U, the
// scan sets, the cost, and every estimate.
func TestAknnMonotonicInK(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	outer := buildTree(t, randPoints(rng, 300, testBounds()), 16).CountTree()
	inner := buildTree(t, randPoints(rng, 400, testBounds()), 16).CountTree()
	sum := BuildSummary(inner)
	est := sum.Bind(outer, 7)
	prevCost, prevEst := 0, 0.0
	for k := 1; k <= 420; k += 7 {
		cost := Cost(outer, inner, k)
		if cost < prevCost {
			t.Fatalf("Cost decreased from %d to %d at k=%d", prevCost, cost, k)
		}
		prevCost = cost
		got, err := est.EstimateJoin(k)
		if err != nil {
			t.Fatal(err)
		}
		if got < prevEst {
			t.Fatalf("estimate decreased from %v to %v at k=%d", prevEst, got, k)
		}
		prevEst = got
	}
}

// TestAknnInnerRefinementNeverIncreasesCost: splitting inner partitions
// can only raise MINDISTs, lower MAXDISTs, shrink U and drop candidates —
// so a finer inner partitioning never increases the bounds-only cost or
// the full-sample estimate. Quadtree leaf sets at decreasing capacities
// are true refinements of each other (a node that splits at capacity c
// also splits at any c' < c), which is what makes the chain comparable.
// The property is specific to refining the *inner* relation: refining the
// outer adds per-block scans and can raise the total.
func TestAknnInnerRefinementNeverIncreasesCost(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	outer := buildTree(t, randPoints(rng, 300, testBounds()), 32).CountTree()
	innerPts := randPoints(rng, 500, testBounds())
	capacities := []int{64, 32, 16, 8}
	for _, k := range []int{1, 5, 25, 120, 501} {
		prevCost := math.MaxInt
		prevEst := math.Inf(1)
		for _, cap := range capacities {
			inner := buildTree(t, innerPts, cap).CountTree()
			cost := Cost(outer, inner, k)
			if cost > prevCost {
				t.Fatalf("k=%d: refining inner to capacity %d raised cost from %d to %d",
					k, cap, prevCost, cost)
			}
			prevCost = cost
			est, err := BuildSummary(inner).Bind(outer, 0).EstimateJoin(k)
			if err != nil {
				t.Fatal(err)
			}
			if est > prevEst {
				t.Fatalf("k=%d: refining inner to capacity %d raised estimate from %v to %v",
					k, cap, prevEst, est)
			}
			prevEst = est
		}
	}
}
