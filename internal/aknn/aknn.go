// Package aknn implements the bounds-only pruning evaluation of exact
// Euclidean AkNN (all-k-nearest-neighbor) joins on partitioned spatial
// datasets, after Winecki's bounds-only pruning test (see PAPERS.md), and
// the matching cost model computable from per-partition bounds alone.
//
// The locality-based join of internal/knnjoin accumulates inner blocks in
// MINDIST order and keeps scanning until the running MAXDIST mark is
// cleared. The bounds-only test turns that around: for an outer partition
// O it first derives a k-th-neighbor upper bound U from MAXDISTs alone —
// the smallest value such that the inner partitions with
// MAXDIST(O, P) <= U jointly hold at least k points — and then scans
// exactly the partitions with MINDIST(O, P) <= U. Every pruning decision
// consults partition bounds and counts, never points, which is what makes
// the join's cost computable by a catalog-free estimator (see Summary).
//
// The test is exact: each of the >= k points inside the accumulated
// partitions lies within U of every point of O (that is what MAXDIST
// bounds), so the k-th-neighbor distance of every outer point is at most
// U; a partition with MINDIST > U holds only points strictly farther than
// U and can never contribute a k-nearest neighbor.
//
// Cost unit: unlike the locality join, whose ground-truth cost counts
// inner blocks, the bounds-only cost counts candidate inner points — the
// summed scan-set partition counts over the non-empty outer partitions.
// Points are the quantity the pruning test actually bounds, and they make
// the cost monotone under inner-partition refinement: splitting an inner
// partition can only raise MINDISTs, lower MAXDISTs, shrink U and drop
// candidates, whereas a block count would grow with every split.
package aknn

import (
	"context"
	"math"
	"sort"

	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/knn"
	"knncost/internal/pqueue"
)

// bound is one inner partition's contribution to the threshold
// computation: its MAXDIST from the outer partition and its point count.
type bound struct {
	maxD  float64
	count int
}

// threshold returns the bounds-only upper bound U: the smallest MAXDIST
// value at which the inner partitions within it jointly hold k points,
// or +Inf when they never do (the whole relation holds fewer than k
// points, so nothing can be pruned). U is defined as a distance value,
// not a sort position: partitions tied on MAXDIST cross the threshold at
// the same value regardless of their order, so U — and everything derived
// from it — is independent of how the sort breaks ties. bounds is
// reordered in place.
func threshold(bounds []bound, k int) float64 {
	sort.Slice(bounds, func(i, j int) bool { return bounds[i].maxD < bounds[j].maxD })
	cum := 0
	for _, b := range bounds {
		cum += b.count
		if cum >= k {
			return b.maxD
		}
	}
	return math.Inf(1)
}

// ScanSet returns the inner blocks the bounds-only test scans for an
// outer partition with the given bounds: the non-empty blocks whose
// MINDIST from `from` does not exceed the threshold U, in Blocks()
// enumeration order. k < 1 scans nothing (no neighbors are wanted); an
// inner relation holding fewer than k points yields every non-empty
// block. The inner tree may be a data index or its Count-Index.
func ScanSet(inner *index.Tree, from geom.Rect, k int) []*index.Block {
	if k < 1 {
		return nil
	}
	blocks := inner.Blocks()
	bs := make([]bound, 0, len(blocks))
	for _, b := range blocks {
		if b.Count > 0 {
			bs = append(bs, bound{geom.MaxDistRect(from, b.Bounds), b.Count})
		}
	}
	u := threshold(bs, k)
	var out []*index.Block
	for _, b := range blocks {
		if b.Count > 0 && geom.MinDistRect(from, b.Bounds) <= u {
			out = append(out, b)
		}
	}
	return out
}

// Cost returns the bounds-only cost of the exact AkNN join
// (outer ⋉_aknn inner): the total number of candidate inner points
// scanned, i.e. the sum over the non-empty outer partitions of their
// scan-set point counts. Both arguments may be Count-Indexes; only bounds
// and counts are consulted — the defining property of the bounds-only
// model.
func Cost(outer, inner *index.Tree, k int) int {
	sum := BuildSummary(inner)
	total := 0
	for _, b := range outer.Blocks() {
		if b.Count == 0 {
			continue
		}
		total += sum.Candidates(b.Bounds, k)
	}
	return total
}

// CostContext is Cost with cancellation: the context is checked before
// each outer partition's threshold computation, bounding the reaction
// time to one scan-set derivation. On cancellation it returns the
// context's error and the partial sum.
func CostContext(ctx context.Context, outer, inner *index.Tree, k int) (int, error) {
	sum := BuildSummary(inner)
	total := 0
	for _, b := range outer.Blocks() {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		if b.Count == 0 {
			continue
		}
		total += sum.Candidates(b.Bounds, k)
	}
	return total, nil
}

// Pair is one result tuple of an AkNN join: an outer point and one of its
// k nearest inner neighbors.
type Pair struct {
	Outer    geom.Point
	Inner    geom.Point
	Distance float64
}

// Stats records the work the bounds-only join performed.
type Stats struct {
	// BlocksScanned is the number of inner blocks materialized.
	BlocksScanned int
	// PointsScanned is the number of candidate inner points read — the
	// quantity Cost(outer, inner, k) predicts exactly.
	PointsScanned int
	// Comparisons is the number of point-to-point distance evaluations.
	Comparisons int
}

// Join evaluates (outer ⋉_aknn inner) exactly with the bounds-only
// pruning test: for each non-empty outer partition it materializes the
// points of the partition's scan set once, then answers the k-NN of every
// outer point from that shared candidate set. emit is called once per
// result pair, grouped by outer point (min(k, |inner|) consecutive pairs
// each), neighbors in ascending distance order. Both trees must be data
// indexes (blocks carry points).
func Join(outer, inner *index.Tree, k int, emit func(Pair)) Stats {
	var stats Stats
	if k <= 0 {
		return stats
	}
	var cand []geom.Point
	for _, ob := range outer.Blocks() {
		if ob.Count == 0 {
			continue
		}
		scan := ScanSet(inner, ob.Bounds, k)
		stats.BlocksScanned += len(scan)
		cand = cand[:0]
		for _, sb := range scan {
			cand = append(cand, sb.Points...)
		}
		stats.PointsScanned += len(cand)
		for _, p := range ob.Points {
			stats.Comparisons += len(cand)
			for _, n := range kNearest(cand, p, k) {
				emit(Pair{Outer: p, Inner: n.Point, Distance: n.Dist})
			}
		}
	}
	return stats
}

// kNearest returns the k points of candidates nearest to p in ascending
// distance order, using a bounded max-heap (first-encountered wins on
// distance ties, like the distance-browsing frontier).
func kNearest(candidates []geom.Point, p geom.Point, k int) []knn.Neighbor {
	var heap pqueue.Queue[knn.Neighbor]
	for _, c := range candidates {
		d := p.Dist(c)
		if heap.Len() == k {
			if worst, _ := heap.PeekPriority(); -worst <= d {
				continue
			}
			heap.Pop()
		}
		heap.Push(knn.Neighbor{Point: c, Dist: d}, -d)
	}
	out := make([]knn.Neighbor, heap.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i], _ = heap.Pop()
	}
	return out
}
