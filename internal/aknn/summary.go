package aknn

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"knncost/internal/core"
	"knncost/internal/geom"
	"knncost/internal/index"
)

// Partition is one non-empty partition of a summarized relation: its
// bounds and point count — everything the bounds-only cost model needs.
type Partition struct {
	Bounds geom.Rect
	Count  int
}

// Summary is the per-relation preprocessing artifact of the aknn-bounds
// estimator: the non-empty partitions of the (inner) relation's index in
// Blocks() enumeration order, plus the total point count. Unlike the
// locality-catalog artifacts it maintains no per-k data — the bounds-only
// threshold is derived at estimation time for any k, so the artifact has
// no MaxK clamp. A Summary is immutable after construction and safe for
// concurrent use.
type Summary struct {
	parts    []Partition
	total    int
	capacity int
}

// BuildSummary summarizes a relation's index in one pass. The tree may be
// a data index or its Count-Index; only bounds and counts are read. An
// empty relation yields an empty summary (estimates against it are 0).
func BuildSummary(inner *index.Tree) *Summary {
	return BuildSummaryCapacity(inner, 0)
}

// BuildSummaryCapacity is BuildSummary with a partition capacity — the
// AkNN axis of core.Resolution. capacity <= 0 keeps one partition per
// non-empty block (the finest, exact-reproducing summary). capacity > 0
// coalesces consecutive non-empty blocks (in Blocks() enumeration order, a
// space-filling order for quadtrees) into partitions of at least capacity
// points, shrinking the summary at a bounded accuracy cost: a coalesced
// partition's bounds are the union of its blocks', so the bounds-only
// threshold stays an upper bound and candidate counts stay conservative.
func BuildSummaryCapacity(inner *index.Tree, capacity int) *Summary {
	if capacity < 0 {
		capacity = 0
	}
	s := &Summary{capacity: capacity}
	var cur Partition
	open := false
	for _, b := range inner.Blocks() {
		if b.Count == 0 {
			continue
		}
		s.total += b.Count
		if capacity <= 0 {
			s.parts = append(s.parts, Partition{Bounds: b.Bounds, Count: b.Count})
			continue
		}
		if !open {
			cur = Partition{Bounds: b.Bounds, Count: b.Count}
			open = true
		} else {
			cur.Bounds = cur.Bounds.Union(b.Bounds)
			cur.Count += b.Count
		}
		if cur.Count >= capacity {
			s.parts = append(s.parts, cur)
			open = false
		}
	}
	if open {
		s.parts = append(s.parts, cur)
	}
	return s
}

// Capacity returns the partition capacity the summary was built with; zero
// means one partition per block.
func (s *Summary) Capacity() int { return s.capacity }

// NumPartitions returns the number of summarized (non-empty) partitions.
func (s *Summary) NumPartitions() int { return len(s.parts) }

// Total returns the summarized relation's point count.
func (s *Summary) Total() int { return s.total }

// Candidates returns the number of candidate inner points the bounds-only
// test scans for an outer partition with the given bounds: the summed
// counts of the summarized partitions whose MINDIST does not exceed the
// threshold U. k < 1 needs no candidates; a relation holding fewer than k
// points makes every partition a candidate (U = +Inf). This is the same
// arithmetic ScanSet applies to a live index, so a Summary-based estimate
// over every outer block equals Cost exactly.
func (s *Summary) Candidates(from geom.Rect, k int) int {
	if k < 1 {
		return 0
	}
	bs := make([]bound, len(s.parts))
	for i, p := range s.parts {
		bs[i] = bound{geom.MaxDistRect(from, p.Bounds), p.Count}
	}
	u := threshold(bs, k)
	total := 0
	for _, p := range s.parts {
		if geom.MinDistRect(from, p.Bounds) <= u {
			total += p.Count
		}
	}
	return total
}

// Estimator predicts the bounds-only AkNN join cost of a fixed
// (outer ⋉_aknn inner) pair from the inner relation's Summary alone. It
// implements core.JoinEstimator.
type Estimator struct {
	sum        *Summary
	outer      *index.Tree
	sampleSize int
}

// Bind fixes an outer relation and sample size, yielding the join
// estimator for (outer ⋉_aknn inner). Like the Block-Sample estimator,
// a spatially distributed sample of s non-empty outer blocks contributes
// exact candidate counts and the aggregate scales by n_o/s; sampleSize
// <= 0 or >= the number of non-empty outer blocks uses every block, which
// reproduces Cost exactly. The outer tree may be a Count-Index.
func (s *Summary) Bind(outer *index.Tree, sampleSize int) *Estimator {
	return &Estimator{sum: s, outer: outer, sampleSize: sampleSize}
}

// EstimateJoin implements core.JoinEstimator.
func (e *Estimator) EstimateJoin(k int) (float64, error) {
	if k < 1 {
		return 0, errors.New("aknn: k must be >= 1")
	}
	sample := sampleBounds(e.outer, e.sampleSize)
	if len(sample) == 0 {
		return 0, errors.New("aknn: outer relation has no blocks")
	}
	agg := 0
	for _, from := range sample {
		agg += e.sum.Candidates(from, k)
	}
	scale := float64(numJoinBlocks(e.outer)) / float64(len(sample))
	return float64(agg) * scale, nil
}

// sampleBounds returns the bounds of (at most) s spatially distributed
// non-empty blocks of t — the same fixed-point stride walk over the
// depth-first block enumeration that core.SampleBlocks uses, so the two
// sampling join estimators see the same outer blocks.
func sampleBounds(t *index.Tree, s int) []geom.Rect {
	all := make([]geom.Rect, 0, t.NumBlocks())
	for _, b := range t.Blocks() {
		if b.Count > 0 {
			all = append(all, b.Bounds)
		}
	}
	n := len(all)
	if s >= n || s <= 0 {
		return all
	}
	out := make([]geom.Rect, 0, s)
	for i := 0; i < s; i++ {
		out = append(out, all[i*n/s])
	}
	return out
}

// numJoinBlocks is the number of non-empty outer blocks — the n_o the
// sampled aggregate scales by.
func numJoinBlocks(t *index.Tree) int {
	n := 0
	for _, b := range t.Blocks() {
		if b.Count > 0 {
			n++
		}
	}
	return n
}

// --- persistence -----------------------------------------------------------

// summaryMagic heads the serialized Summary format (KNAB, version 1):
// magic, uvarint partition count, uvarint total point count, then per
// partition four little-endian float64 bounds (minX minY maxX maxY) and a
// uvarint count. Version 2 (summaryMagicV2) inserts a uvarint partition
// capacity between the total and the partitions; capacity-0 summaries
// still serialize as version 1, so every pre-capacity file and fuzz-corpus
// input remains byte-identical and loadable.
const (
	summaryMagic   = "KNAB\x01"
	summaryMagicV2 = "KNAB\x02"
)

// maxSanePartitions bounds what LoadSummary accepts from a hostile or
// corrupt count field (a 256 MiB summary).
const maxSanePartitions = 1 << 22

// WriteTo serializes the summary so LoadSummary can reload it without the
// index.
func (s *Summary) WriteTo(w io.Writer) (int64, error) {
	var written int64
	buf := make([]byte, 0, 1<<14)
	flush := func() error {
		n, err := w.Write(buf)
		written += int64(n)
		buf = buf[:0]
		return err
	}
	if s.capacity > 0 {
		buf = append(buf, summaryMagicV2...)
	} else {
		buf = append(buf, summaryMagic...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.parts)))
	buf = binary.AppendUvarint(buf, uint64(s.total))
	if s.capacity > 0 {
		buf = binary.AppendUvarint(buf, uint64(s.capacity))
	}
	for _, p := range s.parts {
		for _, f := range [4]float64{p.Bounds.Min.X, p.Bounds.Min.Y, p.Bounds.Max.X, p.Bounds.Max.Y} {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
		}
		buf = binary.AppendUvarint(buf, uint64(p.Count))
		if len(buf) >= 1<<14-64 {
			if err := flush(); err != nil {
				return written, err
			}
		}
	}
	return written, flush()
}

// StorageBytes returns the serialized size of the summary.
func (s *Summary) StorageBytes() int {
	var scratch [binary.MaxVarintLen64]byte
	n := len(summaryMagic)
	n += binary.PutUvarint(scratch[:], uint64(len(s.parts)))
	n += binary.PutUvarint(scratch[:], uint64(s.total))
	if s.capacity > 0 {
		n += binary.PutUvarint(scratch[:], uint64(s.capacity))
	}
	for _, p := range s.parts {
		n += 32 + binary.PutUvarint(scratch[:], uint64(p.Count))
	}
	return n
}

// LoadSummary reloads a summary previously saved with WriteTo. It is
// standalone — no index is required. Length and count fields are
// validated before anything is sized by them, and partitions are read one
// record at a time, so a hostile input can reject but never panic or
// force an oversized allocation.
func LoadSummary(r io.Reader) (*Summary, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(summaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("aknn: summary header: %w", err)
	}
	v2 := string(magic) == summaryMagicV2
	if !v2 && string(magic) != summaryMagic {
		return nil, errors.New("aknn: bad summary magic")
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("aknn: partition count: %w", err)
	}
	if n > maxSanePartitions {
		return nil, fmt.Errorf("aknn: implausible partition count %d", n)
	}
	total, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("aknn: total count: %w", err)
	}
	if total > math.MaxInt64/2 {
		return nil, fmt.Errorf("aknn: implausible total %d", total)
	}
	s := &Summary{}
	if v2 {
		capacity, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("aknn: partition capacity: %w", err)
		}
		if capacity < 1 || capacity > math.MaxInt32 {
			return nil, fmt.Errorf("aknn: implausible partition capacity %d", capacity)
		}
		s.capacity = int(capacity)
	}
	var rec [32]byte
	var cum uint64
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("aknn: partition %d bounds: %w", i, err)
		}
		var f [4]float64
		for j := range f {
			f[j] = math.Float64frombits(binary.LittleEndian.Uint64(rec[8*j:]))
			if math.IsNaN(f[j]) || math.IsInf(f[j], 0) {
				return nil, fmt.Errorf("aknn: partition %d has non-finite bounds", i)
			}
		}
		if f[2] < f[0] || f[3] < f[1] {
			return nil, fmt.Errorf("aknn: partition %d has inverted bounds", i)
		}
		count, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("aknn: partition %d count: %w", i, err)
		}
		if count < 1 {
			return nil, fmt.Errorf("aknn: partition %d is empty", i)
		}
		cum += count
		if cum > total {
			return nil, fmt.Errorf("aknn: partition counts exceed recorded total %d", total)
		}
		s.parts = append(s.parts, Partition{
			Bounds: geom.Rect{Min: geom.Point{X: f[0], Y: f[1]}, Max: geom.Point{X: f[2], Y: f[3]}},
			Count:  int(count),
		})
	}
	if cum != total {
		return nil, fmt.Errorf("aknn: partition counts sum to %d, recorded total %d", cum, total)
	}
	s.total = int(total)
	return s, nil
}

// Resolution implements core.Artifact. Only the AknnCapacity axis applies
// to a summary; the others report the defaults.
func (s *Summary) Resolution() core.Resolution {
	return core.Resolution{AknnCapacity: s.capacity}.Canon()
}

// SizeBytes implements core.Artifact.
func (s *Summary) SizeBytes() int { return s.StorageBytes() }

var _ core.Artifact = (*Summary)(nil)
