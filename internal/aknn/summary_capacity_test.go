package aknn

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"knncost/internal/geom"
)

// randRect returns a random query window inside bounds.
func randRect(rng *rand.Rand, bounds geom.Rect) geom.Rect {
	x1 := bounds.Min.X + rng.Float64()*bounds.Width()
	y1 := bounds.Min.Y + rng.Float64()*bounds.Height()
	x2 := x1 + rng.Float64()*(bounds.Max.X-x1)
	y2 := y1 + rng.Float64()*(bounds.Max.Y-y1)
	return geom.NewRect(x1, y1, x2, y2)
}

// TestSummaryCapacityRoundTrip: the partition capacity — the AkNN axis of
// core.Resolution — must survive the KNAB v2 persist round trip exactly,
// because a warm-restarted store keys its artifact cache on the reloaded
// resolution. Estimates must be bit-identical across the reload at every
// capacity rung the tuner ladder can produce.
func TestSummaryCapacityRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	inner := buildTree(t, randPoints(rng, 2000, testBounds()), 8).CountTree()
	outer := buildTree(t, randPoints(rng, 300, testBounds()), 8).CountTree()

	prevParts := -1
	for _, capacity := range []int{0, 64, 128, 256, 1024, 4096} {
		sum := BuildSummaryCapacity(inner, capacity)
		if sum.Capacity() != capacity {
			t.Fatalf("capacity %d: built Capacity() = %d", capacity, sum.Capacity())
		}
		if got := sum.Resolution().AknnCapacity; got != capacity {
			t.Fatalf("capacity %d: Resolution().AknnCapacity = %d", capacity, got)
		}
		if sum.Total() != 2000 {
			t.Fatalf("capacity %d: Total() = %d, want 2000", capacity, sum.Total())
		}
		// Coalescing must shrink monotonically along the ladder; a
		// capacity at or above the relation size collapses to one
		// partition.
		if prevParts >= 0 && sum.NumPartitions() > prevParts {
			t.Fatalf("capacity %d: %d partitions, more than the finer rung's %d",
				capacity, sum.NumPartitions(), prevParts)
		}
		prevParts = sum.NumPartitions()
		if capacity >= 2000 && sum.NumPartitions() != 1 {
			t.Fatalf("capacity %d >= total: %d partitions, want 1", capacity, sum.NumPartitions())
		}

		var buf bytes.Buffer
		n, err := sum.WriteTo(&buf)
		if err != nil {
			t.Fatalf("capacity %d: WriteTo: %v", capacity, err)
		}
		if int(n) != buf.Len() || int(n) != sum.StorageBytes() {
			t.Fatalf("capacity %d: WriteTo reported %d bytes, wrote %d, StorageBytes %d",
				capacity, n, buf.Len(), sum.StorageBytes())
		}
		wantMagic := summaryMagic
		if capacity > 0 {
			wantMagic = summaryMagicV2
		}
		if !strings.HasPrefix(buf.String(), wantMagic) {
			t.Fatalf("capacity %d: serialized magic %q, want %q", capacity, buf.Bytes()[:5], wantMagic)
		}

		loaded, err := LoadSummary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("capacity %d: LoadSummary: %v", capacity, err)
		}
		if loaded.Capacity() != capacity || loaded.Resolution() != sum.Resolution() {
			t.Fatalf("capacity %d: reloaded capacity %d resolution %+v, want %+v",
				capacity, loaded.Capacity(), loaded.Resolution(), sum.Resolution())
		}
		if loaded.NumPartitions() != sum.NumPartitions() || loaded.Total() != sum.Total() {
			t.Fatalf("capacity %d: reloaded %d/%d, want %d/%d", capacity,
				loaded.NumPartitions(), loaded.Total(), sum.NumPartitions(), sum.Total())
		}
		for _, k := range []int{1, 9, 100, 2001} {
			a, errA := sum.Bind(outer, 7).EstimateJoin(k)
			b, errB := loaded.Bind(outer, 7).EstimateJoin(k)
			if (errA == nil) != (errB == nil) || a != b {
				t.Fatalf("capacity %d k=%d: original %v,%v reloaded %v,%v", capacity, k, a, errA, b, errB)
			}
		}
	}
}

// TestSummaryCapacityZeroWritesV1: capacity 0 must serialize byte-identically
// to the v1 format BuildSummary always wrote, so a fleet that never enables
// the tuner produces caches older binaries can still read.
func TestSummaryCapacityZeroWritesV1(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	inner := buildTree(t, randPoints(rng, 800, testBounds()), 8).CountTree()
	var v1, v0 bytes.Buffer
	if _, err := BuildSummary(inner).WriteTo(&v1); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildSummaryCapacity(inner, 0).WriteTo(&v0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v1.Bytes(), v0.Bytes()) {
		t.Fatalf("capacity-0 summary serializes to %d bytes differing from BuildSummary's %d-byte v1 output",
			v0.Len(), v1.Len())
	}
	if !strings.HasPrefix(v0.String(), summaryMagic) {
		t.Fatalf("capacity-0 magic %q, want v1 %q", v0.Bytes()[:5], summaryMagic)
	}
}

// TestSummaryCapacityStaysConservative: coalescing unions partition bounds,
// so a coarse summary's candidate count must never fall below the exact
// (capacity-0) summary's for the same query — the bounds-only estimate only
// ever gets more pessimistic as the tuner coarsens.
func TestSummaryCapacityStaysConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	inner := buildTree(t, randPoints(rng, 1500, testBounds()), 8).CountTree()
	exact := BuildSummaryCapacity(inner, 0)
	for _, capacity := range []int{64, 512} {
		coarse := BuildSummaryCapacity(inner, capacity)
		for i := 0; i < 200; i++ {
			from := randRect(rng, testBounds())
			for _, k := range []int{1, 8, 50} {
				e, c := exact.Candidates(from, k), coarse.Candidates(from, k)
				if c < e {
					t.Fatalf("capacity %d: Candidates(%v, k=%d) = %d below exact %d",
						capacity, from, k, c, e)
				}
			}
		}
	}
}
