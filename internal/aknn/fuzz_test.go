// Fuzz targets for the bounds-only AkNN join: the join and its cost model
// against the brute-force oracle references on arbitrary point sets, and
// the summary loader against hostile bytes. The seed corpus runs on every
// `go test`; make fuzz-smoke additionally runs each target under -fuzz.
package aknn_test

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"

	"knncost/internal/aknn"
	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/oracle"
	"knncost/internal/quadtree"
)

// fuzzPoints derives a deterministic point set from a seed: size in
// [1, 160], uniform in a modest box, with every fourth point duplicated to
// exercise tie handling.
func fuzzPoints(seed int64, nRaw uint8) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + int(nRaw)%160
	pts := make([]geom.Point, n)
	for i := range pts {
		if i%4 == 3 {
			pts[i] = pts[i-1]
			continue
		}
		pts[i] = geom.Point{X: rng.Float64()*200 - 100, Y: rng.Float64()*200 - 100}
	}
	return pts
}

func fuzzTree(tb testing.TB, pts []geom.Point) *index.Tree {
	tb.Helper()
	tree := quadtree.Build(pts, quadtree.Options{Capacity: 8}).Index()
	if err := tree.Validate(); err != nil {
		tb.Fatalf("invalid tree: %v", err)
	}
	return tree
}

// FuzzAknnJoin: on arbitrary relation pairs the bounds-only join must stay
// exact — every outer point's canonicalized neighbor list equals the full
// sort — and its stats must match the ground-truth cost.
func FuzzAknnJoin(f *testing.F) {
	f.Add(int64(1), int64(2), uint8(40), uint8(60), uint8(2))
	f.Add(int64(3), int64(3), uint8(0), uint8(0), uint8(0))
	f.Add(int64(5), int64(8), uint8(255), uint8(17), uint8(49))
	f.Add(int64(7), int64(7), uint8(3), uint8(200), uint8(255))
	f.Fuzz(func(t *testing.T, seedOuter, seedInner int64, nOuter, nInner, kRaw uint8) {
		outerPts := fuzzPoints(seedOuter, nOuter)
		innerPts := fuzzPoints(seedInner, nInner)
		outer := fuzzTree(t, outerPts)
		inner := fuzzTree(t, innerPts)
		k := int(kRaw) % 40 // includes 0: must emit nothing

		var pairs []aknn.Pair
		stats := aknn.Join(outer, inner, k, func(p aknn.Pair) { pairs = append(pairs, p) })
		if k < 1 {
			if len(pairs) != 0 {
				t.Fatalf("k=%d emitted %d pairs", k, len(pairs))
			}
			return
		}
		if want := aknn.Cost(outer, inner, k); stats.PointsScanned != want {
			t.Fatalf("PointsScanned = %d, Cost %d", stats.PointsScanned, want)
		}
		group := k
		if len(innerPts) < group {
			group = len(innerPts)
		}
		if len(pairs) != len(outerPts)*group {
			t.Fatalf("%d pairs, want %d x %d", len(pairs), len(outerPts), group)
		}
		for g := 0; g < len(pairs); g += group {
			chunk := append([]aknn.Pair(nil), pairs[g:g+group]...)
			q := chunk[0].Outer
			sort.Slice(chunk, func(i, j int) bool {
				if chunk[i].Distance != chunk[j].Distance {
					return chunk[i].Distance < chunk[j].Distance
				}
				if chunk[i].Inner.X != chunk[j].Inner.X {
					return chunk[i].Inner.X < chunk[j].Inner.X
				}
				return chunk[i].Inner.Y < chunk[j].Inner.Y
			})
			want := oracle.AknnNeighbors(innerPts, q, k)
			for j, p := range chunk {
				if p.Outer != q || p.Inner != want[j] {
					t.Fatalf("outer %v neighbor %d: got %v, brute force %v", q, j, p.Inner, want[j])
				}
			}
		}
	})
}

// FuzzAknnBoundsEstimate: the ground-truth cost and the sampled estimator
// must match their oracle references exactly, and estimates must be finite
// and non-negative on every input.
func FuzzAknnBoundsEstimate(f *testing.F) {
	f.Add(int64(1), int64(2), uint8(40), uint8(60), uint8(2), uint8(5))
	f.Add(int64(3), int64(3), uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add(int64(5), int64(8), uint8(255), uint8(17), uint8(49), uint8(200))
	f.Fuzz(func(t *testing.T, seedOuter, seedInner int64, nOuter, nInner, kRaw, sRaw uint8) {
		outer := fuzzTree(t, fuzzPoints(seedOuter, nOuter)).CountTree()
		inner := fuzzTree(t, fuzzPoints(seedInner, nInner)).CountTree()
		k := int(kRaw) % 40
		sample := int(sRaw) % 12 // includes 0: every block, exact

		want := oracle.AknnJoinCost(outer, inner, k)
		if got := aknn.Cost(outer, inner, k); got != want {
			t.Fatalf("Cost(k=%d) = %d, oracle %d", k, got, want)
		}
		if want < 0 || (k == 0 && want != 0) {
			t.Fatalf("Cost(k=%d) = %d, want non-negative (0 at k=0)", k, want)
		}

		est, err := aknn.BuildSummary(inner).Bind(outer, sample).EstimateJoin(k)
		if k < 1 {
			if err == nil {
				t.Fatalf("estimator accepted k=%d", k)
			}
			return
		}
		if err != nil {
			t.Fatalf("estimate(k=%d): %v", k, err)
		}
		if math.IsNaN(est) || math.IsInf(est, 0) || est < 0 {
			t.Fatalf("estimate(k=%d) = %v, want finite non-negative", k, est)
		}
		wantEst, wantErr := oracle.AknnBoundsEstimate(outer, inner, sample, k)
		if wantErr != nil || est != wantEst {
			t.Fatalf("estimate(k=%d, s=%d) = %v, oracle %v (%v)", k, sample, est, wantEst, wantErr)
		}
		if sample == 0 && est != float64(want) {
			t.Fatalf("full-sample estimate %v != exact cost %d", est, want)
		}
	})
}

// FuzzLoadAknnSummary pins the loader's hardening contract: any input
// either errors or yields a summary whose estimates never panic, with no
// allocation sized by a hostile length field.
func FuzzLoadAknnSummary(f *testing.F) {
	rng := rand.New(rand.NewSource(99))
	pts := make([]geom.Point, 600)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 64, Y: rng.Float64() * 64}
	}
	tree := quadtree.Build(pts, quadtree.Options{Capacity: 32}).Index()
	var buf bytes.Buffer
	if _, err := aknn.BuildSummary(tree.CountTree()).WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := append([]byte(nil), buf.Bytes()...)

	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:1])
	for _, frac := range []int{8, 4, 2} {
		f.Add(valid[:len(valid)/frac])
	}
	for _, pos := range []int{4, 5, 6, 7, 8, len(valid) / 2} {
		if pos < len(valid) {
			mut := append([]byte(nil), valid...)
			mut[pos] ^= 0xFF
			f.Add(mut)
		}
	}
	// A hostile partition count right after the magic: 0xFF... uvarint.
	f.Add(append(append([]byte(nil), valid[:5]...),
		0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01))

	outer := tree.CountTree()
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := aknn.LoadSummary(bytes.NewReader(data))
		if err != nil {
			return // rejection is always acceptable
		}
		for _, k := range []int{1, 7, 40, 1000} {
			if _, err := s.Bind(outer, 5).EstimateJoin(k); err != nil {
				t.Fatalf("accepted summary failed to estimate (k=%d): %v", k, err)
			}
		}
		_ = s.StorageBytes()
	})
}
