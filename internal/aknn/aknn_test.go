package aknn

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/quadtree"
)

func randPoints(rng *rand.Rand, n int, bounds geom.Rect) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: bounds.Min.X + rng.Float64()*bounds.Width(),
			Y: bounds.Min.Y + rng.Float64()*bounds.Height(),
		}
	}
	return pts
}

func buildTree(tb testing.TB, pts []geom.Point, capacity int) *index.Tree {
	tb.Helper()
	t := quadtree.Build(pts, quadtree.Options{Capacity: capacity}).Index()
	if err := t.Validate(); err != nil {
		tb.Fatalf("invalid tree: %v", err)
	}
	return t
}

func testBounds() geom.Rect {
	return geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 512, Y: 512}}
}

func TestThreshold(t *testing.T) {
	cases := []struct {
		name   string
		bounds []bound
		k      int
		want   float64
	}{
		{"exact at first", []bound{{1, 3}, {2, 5}}, 3, 1},
		{"spills to second", []bound{{1, 3}, {2, 5}}, 4, 2},
		{"never reaches k", []bound{{1, 3}, {2, 5}}, 9, math.Inf(1)},
		{"empty", nil, 1, math.Inf(1)},
		{"ties share the value", []bound{{2, 1}, {2, 1}, {2, 1}}, 2, 2},
		{"unsorted input", []bound{{5, 2}, {1, 1}, {3, 1}}, 2, 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := threshold(append([]bound(nil), c.bounds...), c.k); got != c.want {
				t.Fatalf("threshold(%v, k=%d) = %v, want %v", c.bounds, c.k, got, c.want)
			}
		})
	}
}

// TestThresholdTieOrderIndependent: permuting blocks tied on MAXDIST must
// not change U or anything derived from it — U is a value, not a position.
func TestThresholdTieOrderIndependent(t *testing.T) {
	base := []bound{{4, 2}, {4, 3}, {4, 1}, {7, 5}}
	want := threshold(append([]bound(nil), base...), 5)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		perm := make([]bound, len(base))
		for i, j := range rng.Perm(len(base)) {
			perm[i] = base[j]
		}
		if got := threshold(perm, 5); got != want {
			t.Fatalf("threshold under permutation = %v, want %v", got, want)
		}
	}
}

func TestScanSetEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inner := buildTree(t, randPoints(rng, 500, testBounds()), 16)
	from := geom.Rect{Min: geom.Point{X: 10, Y: 10}, Max: geom.Point{X: 40, Y: 40}}

	if got := ScanSet(inner, from, 0); got != nil {
		t.Fatalf("ScanSet(k=0) = %d blocks, want none", len(got))
	}
	if got := ScanSet(inner, from, -3); got != nil {
		t.Fatalf("ScanSet(k=-3) = %d blocks, want none", len(got))
	}
	// k past the relation size: U is +Inf, so the scan set is every
	// non-empty block.
	nonEmpty := 0
	for _, b := range inner.Blocks() {
		if b.Count > 0 {
			nonEmpty++
		}
	}
	if got := ScanSet(inner, from, 501); len(got) != nonEmpty {
		t.Fatalf("ScanSet(k>N) = %d blocks, want all %d non-empty", len(got), nonEmpty)
	}
	// The scan set always holds at least k points when the relation does:
	// that is what makes the pruning test exact.
	for _, k := range []int{1, 2, 17, 100, 500} {
		pts := 0
		for _, b := range ScanSet(inner, from, k) {
			pts += b.Count
		}
		if pts < k {
			t.Fatalf("ScanSet(k=%d) holds %d points", k, pts)
		}
	}
}

func TestJoinEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	outer := buildTree(t, randPoints(rng, 120, testBounds()), 16)
	inner := buildTree(t, randPoints(rng, 90, testBounds()), 16)

	var n int
	if s := Join(outer, inner, 0, func(Pair) { n++ }); n != 0 || s != (Stats{}) {
		t.Fatalf("Join(k=0) emitted %d pairs, stats %+v", n, s)
	}

	// k >= N: every outer point pairs with every inner point.
	var pairs []Pair
	Join(outer, inner, 90, func(p Pair) { pairs = append(pairs, p) })
	if len(pairs) != 120*90 {
		t.Fatalf("Join(k=N) emitted %d pairs, want %d", len(pairs), 120*90)
	}
	pairs = pairs[:0]
	Join(outer, inner, 1000, func(p Pair) { pairs = append(pairs, p) })
	if len(pairs) != 120*90 {
		t.Fatalf("Join(k>N) emitted %d pairs, want %d", len(pairs), 120*90)
	}
	// Neighbors are emitted in ascending distance order per outer point.
	for g := 0; g < len(pairs); g += 90 {
		for j := g + 1; j < g+90; j++ {
			if pairs[j].Distance < pairs[j-1].Distance {
				t.Fatalf("group at %d not ascending: %v after %v", g, pairs[j].Distance, pairs[j-1].Distance)
			}
		}
	}
}

func TestJoinAllDuplicates(t *testing.T) {
	dup := geom.Point{X: 100, Y: 100}
	pts := make([]geom.Point, 64)
	for i := range pts {
		pts[i] = dup
	}
	outer := buildTree(t, pts, 8)
	inner := buildTree(t, pts, 8)
	var pairs []Pair
	stats := Join(outer, inner, 5, func(p Pair) { pairs = append(pairs, p) })
	if len(pairs) != 64*5 {
		t.Fatalf("emitted %d pairs, want %d", len(pairs), 64*5)
	}
	for _, p := range pairs {
		if p.Outer != dup || p.Inner != dup || p.Distance != 0 {
			t.Fatalf("unexpected pair %+v", p)
		}
	}
	if stats.PointsScanned != Cost(outer, inner, 5) {
		t.Fatalf("PointsScanned %d != Cost %d", stats.PointsScanned, Cost(outer, inner, 5))
	}
}

func TestCostContextCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	outer := buildTree(t, randPoints(rng, 400, testBounds()), 16).CountTree()
	inner := buildTree(t, randPoints(rng, 400, testBounds()), 16).CountTree()

	want := Cost(outer, inner, 10)
	got, err := CostContext(context.Background(), outer, inner, 10)
	if err != nil || got != want {
		t.Fatalf("CostContext = %d, %v; Cost %d", got, err, want)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CostContext(ctx, outer, inner, 10); err != context.Canceled {
		t.Fatalf("cancelled CostContext error = %v", err)
	}
}

func TestEstimatorErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tree := buildTree(t, randPoints(rng, 100, testBounds()), 16).CountTree()
	sum := BuildSummary(tree)

	if _, err := sum.Bind(tree, 7).EstimateJoin(0); err == nil || !strings.Contains(err.Error(), "k must be >= 1") {
		t.Fatalf("k=0 error = %v", err)
	}
	empty := buildTree(t, nil, 16).CountTree()
	if _, err := sum.Bind(empty, 7).EstimateJoin(5); err == nil || !strings.Contains(err.Error(), "no blocks") {
		t.Fatalf("empty-outer error = %v", err)
	}
	// An empty inner relation is estimable: nothing to scan, cost 0.
	got, err := BuildSummary(empty).Bind(tree, 7).EstimateJoin(5)
	if err != nil || got != 0 {
		t.Fatalf("empty-inner estimate = %v, %v; want 0", got, err)
	}
}

func TestSummaryAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tree := buildTree(t, randPoints(rng, 300, testBounds()), 16).CountTree()
	sum := BuildSummary(tree)
	if sum.Total() != 300 {
		t.Fatalf("Total = %d", sum.Total())
	}
	nonEmpty := 0
	for _, b := range tree.Blocks() {
		if b.Count > 0 {
			nonEmpty++
		}
	}
	if sum.NumPartitions() != nonEmpty {
		t.Fatalf("NumPartitions = %d, want %d", sum.NumPartitions(), nonEmpty)
	}
	var buf bytes.Buffer
	n, err := sum.WriteTo(&buf)
	if err != nil || n != int64(buf.Len()) {
		t.Fatalf("WriteTo = %d, %v; buffer %d", n, err, buf.Len())
	}
	if sum.StorageBytes() != buf.Len() {
		t.Fatalf("StorageBytes = %d, serialized %d", sum.StorageBytes(), buf.Len())
	}
}

// TestPersistRoundTrip: a reloaded summary estimates bit-identically.
func TestPersistRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{0, 1, 50, 1000} {
		inner := buildTree(t, randPoints(rng, n, testBounds()), 8).CountTree()
		outer := buildTree(t, randPoints(rng, 200, testBounds()), 8).CountTree()
		sum := BuildSummary(inner)
		var buf bytes.Buffer
		if _, err := sum.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadSummary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("n=%d: LoadSummary: %v", n, err)
		}
		if loaded.Total() != sum.Total() || loaded.NumPartitions() != sum.NumPartitions() {
			t.Fatalf("n=%d: reloaded %d/%d, want %d/%d", n,
				loaded.NumPartitions(), loaded.Total(), sum.NumPartitions(), sum.Total())
		}
		for _, k := range []int{1, 7, 64, n + 1} {
			a, errA := sum.Bind(outer, 7).EstimateJoin(k)
			b, errB := loaded.Bind(outer, 7).EstimateJoin(k)
			if (errA == nil) != (errB == nil) || a != b {
				t.Fatalf("n=%d k=%d: original %v,%v reloaded %v,%v", n, k, a, errA, b, errB)
			}
		}
	}
}

func TestLoadSummaryRejectsHostileInput(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	sum := BuildSummary(buildTree(t, randPoints(rng, 100, testBounds()), 8).CountTree())
	var buf bytes.Buffer
	if _, err := sum.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	cases := map[string][]byte{
		"empty":           {},
		"bad magic":       []byte("XXXX\x01rest"),
		"truncated":       valid[:len(valid)/2],
		"huge part count": append([]byte(summaryMagic), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01),
	}
	// Inflate the recorded total so the cumulative check fires.
	inflated := append([]byte(nil), valid...)
	inflated[len(summaryMagic)+1] = 0xFF // total's first varint byte gains a continuation...
	for name, data := range cases {
		if _, err := LoadSummary(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// A partition with a NaN bound must be rejected.
	nan := append([]byte(nil), valid...)
	for i := 0; i < 8; i++ {
		nan[len(valid)-9-i] = 0xFF // stomp somewhere in the last record
	}
	if s, err := LoadSummary(bytes.NewReader(nan)); err == nil {
		// Stomping may have produced a still-consistent file; the only
		// requirement is no panic and a usable or rejected summary.
		_ = s.Total()
	}
}
