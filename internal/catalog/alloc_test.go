package catalog

import "testing"

// Lookup sits at the bottom of every estimate the service answers; it must
// not allocate (the binary search is hand-rolled so no function value
// escapes).
func TestLookupZeroAlloc(t *testing.T) {
	c := &Catalog{}
	costs := []int{1, 1, 2, 3, 5, 8, 13, 21, 34, 55}
	start := 1
	for i, cost := range costs {
		end := start + i
		if err := c.Append(start, end, cost); err != nil {
			t.Fatal(err)
		}
		start = end + 1
	}
	maxK := c.MaxK()
	if allocs := testing.AllocsPerRun(200, func() {
		for k := 1; k <= maxK; k++ {
			if _, ok := c.Lookup(k); !ok {
				t.Fatalf("Lookup(%d) missed", k)
			}
		}
	}); allocs != 0 {
		t.Errorf("Lookup allocates %.1f times per sweep, want 0", allocs)
	}
}

// Reset and Reserve are the scratch-catalog reuse primitives: Reset keeps
// capacity, Reserve pre-sizes it, and a reused catalog behaves like a fresh
// one.
func TestResetReserveReuse(t *testing.T) {
	c := &Catalog{}
	c.Reserve(8)
	if got := cap(c.entries); got < 8 {
		t.Fatalf("capacity %d after Reserve(8)", got)
	}
	if err := c.Append(1, 10, 3); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if c.Len() != 0 || c.MaxK() != 0 {
		t.Fatalf("after Reset: Len=%d MaxK=%d", c.Len(), c.MaxK())
	}
	// A reset catalog must accept a fresh contiguous build from k=1.
	if err := c.Append(1, 4, 7); err != nil {
		t.Fatalf("append after Reset: %v", err)
	}
	if cost, ok := c.Lookup(2); !ok || cost != 7 {
		t.Fatalf("Lookup(2) = (%d, %v) after reuse", cost, ok)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		c.Reset()
		if err := c.Append(1, 4, 7); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Reset+Append reuse allocates %.1f times, want 0", allocs)
	}
}
