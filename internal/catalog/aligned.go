package catalog

import (
	"encoding/binary"
	"errors"
	"unsafe"
)

// Aligned encoding: the zero-copy counterpart of MarshalBinary. Where the
// varint format optimizes for size (the paper's storage metric), the
// aligned format optimizes for load time — fixed-width records that an
// mmap'd cache file can serve in place, without decoding or heap copies.
//
// Layout: a little-endian uint64 entry count, then count records of three
// little-endian uint64 words (StartK, EndK, Cost). Every piece is a
// multiple of 8 bytes, so consecutive aligned catalogs in one file keep
// each other 8-byte aligned; on a little-endian 64-bit host the record
// block is bit-identical to the in-memory []Entry and is borrowed
// directly via unsafe.Slice. Other hosts (and misaligned inputs) fall
// back to an allocating decode of the same bytes, so files are portable.

// alignedEntrySize is the fixed record width: three 64-bit words.
const alignedEntrySize = 24

// canBorrowAligned reports whether the in-memory Entry layout matches the
// aligned encoding bit for bit: 64-bit ints laid out contiguously on a
// little-endian host. Evaluated once at startup.
var canBorrowAligned = func() bool {
	if unsafe.Sizeof(Entry{}) != alignedEntrySize {
		return false
	}
	probe := uint64(1)
	return *(*byte)(unsafe.Pointer(&probe)) == 1
}()

// AlignedSize returns the aligned encoding's size: 8 + 24*Len() bytes,
// always a multiple of 8.
func (c *Catalog) AlignedSize() int { return 8 + alignedEntrySize*len(c.entries) }

// AppendAligned appends the aligned encoding of c to buf.
func (c *Catalog) AppendAligned(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(c.entries)))
	for _, e := range c.entries {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.StartK))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.EndK))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Cost))
	}
	return buf
}

// BorrowAligned replaces c's entries with ones read from an aligned
// encoding at the start of data, returning the number of bytes consumed.
// When the host layout permits (see canBorrowAligned) and data[8:] is
// 8-byte aligned, the entries are borrowed — they alias data, typically an
// mmap'd cache file, and stay valid only as long as the mapping does; the
// caller owns that lifetime (the store pins the mapping on the snapshot
// that serves the catalog). A borrowed catalog is read-only: Append and
// Reset on it are undefined. Truncated or over-long counts are rejected
// before anything is sized by them.
func (c *Catalog) BorrowAligned(data []byte) (int, error) {
	if len(data) < 8 {
		return 0, errors.New("catalog: truncated aligned header")
	}
	n := binary.LittleEndian.Uint64(data)
	if n > uint64((len(data)-8)/alignedEntrySize) {
		return 0, errors.New("catalog: aligned entry count exceeds payload")
	}
	size := 8 + int(n)*alignedEntrySize
	if n == 0 {
		c.entries = nil
		return size, nil
	}
	body := data[8:size]
	if canBorrowAligned && uintptr(unsafe.Pointer(&body[0]))%8 == 0 {
		c.entries = unsafe.Slice((*Entry)(unsafe.Pointer(&body[0])), int(n))
		return size, nil
	}
	entries := make([]Entry, n)
	for i := range entries {
		off := i * alignedEntrySize
		entries[i] = Entry{
			StartK: int(binary.LittleEndian.Uint64(body[off:])),
			EndK:   int(binary.LittleEndian.Uint64(body[off+8:])),
			Cost:   int(binary.LittleEndian.Uint64(body[off+16:])),
		}
	}
	c.entries = entries
	return size, nil
}
