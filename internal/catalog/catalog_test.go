package catalog

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustAppend(t *testing.T, c *Catalog, startK, endK, cost int) {
	t.Helper()
	if err := c.Append(startK, endK, cost); err != nil {
		t.Fatalf("Append(%d,%d,%d): %v", startK, endK, cost, err)
	}
}

// paperCatalog reproduces Figure 4(b) of the paper.
func paperCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := &Catalog{}
	mustAppend(t, c, 1, 520, 3)
	mustAppend(t, c, 521, 675, 7)
	mustAppend(t, c, 676, 3496, 8)
	mustAppend(t, c, 3497, 4699, 12)
	mustAppend(t, c, 4700, 5837, 13)
	mustAppend(t, c, 5838, 10000, 14)
	return c
}

func TestLookupFigure4(t *testing.T) {
	c := paperCatalog(t)
	cases := []struct {
		k, want int
	}{
		{1, 3}, {520, 3}, {521, 7}, {675, 7}, {676, 8},
		{3496, 8}, {3497, 12}, {4699, 12}, {4700, 13}, {5838, 14}, {10000, 14},
	}
	for _, cse := range cases {
		got, ok := c.Lookup(cse.k)
		if !ok || got != cse.want {
			t.Errorf("Lookup(%d) = %d (%v), want %d", cse.k, got, ok, cse.want)
		}
	}
	if _, ok := c.Lookup(0); ok {
		t.Error("Lookup(0) should fail")
	}
	if _, ok := c.Lookup(10001); ok {
		t.Error("Lookup beyond MaxK should fail")
	}
	if c.MaxK() != 10000 {
		t.Errorf("MaxK = %d, want 10000", c.MaxK())
	}
	if c.Len() != 6 {
		t.Errorf("Len = %d, want 6", c.Len())
	}
}

func TestAppendValidation(t *testing.T) {
	c := &Catalog{}
	if err := c.Append(2, 5, 1); err == nil {
		t.Error("first entry must start at 1")
	}
	mustAppend(t, c, 1, 5, 1)
	if err := c.Append(7, 9, 2); err == nil {
		t.Error("gap should be rejected")
	}
	if err := c.Append(6, 5, 2); err == nil {
		t.Error("inverted interval should be rejected")
	}
}

func TestAppendCoalesces(t *testing.T) {
	c := &Catalog{}
	mustAppend(t, c, 1, 10, 4)
	mustAppend(t, c, 11, 20, 4)
	mustAppend(t, c, 21, 30, 5)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (equal-cost entries must coalesce)", c.Len())
	}
	if got, _ := c.Lookup(15); got != 4 {
		t.Errorf("Lookup(15) = %d, want 4", got)
	}
}

func TestEmptyCatalog(t *testing.T) {
	c := &Catalog{}
	if _, ok := c.Lookup(1); ok {
		t.Error("Lookup on empty catalog should fail")
	}
	if c.MaxK() != 0 || c.Len() != 0 {
		t.Error("empty catalog should have MaxK 0 and Len 0")
	}
}

// TestMergeSumFigure8 reproduces the worked example of Figure 8: four
// temporary catalogs with boundaries k1 < k2 < k3 merge into the aggregate
// catalog 17, 25, 29, 32.
func TestMergeSumFigure8(t *testing.T) {
	// Using k1=100, k2=200, k3=300, maxK=400.
	// Block 1: cost 2 until k1... the figure shows per-block catalogs with
	// one boundary each: block1: (2 -> 13 at k2), block2: (5 -> 13? ...).
	// The figure's arithmetic: [1,k1]=2+5+6+4=17; [k1,k2]=17-5+13=25;
	// [k2,k3]=25-4+8=29; [k3,..]=29-6+9=32. So block2 changes 5->13 at k1,
	// block4 changes 4->8 at k2, block3 changes 6->9 at k3.
	c1 := &Catalog{}
	mustAppend(t, c1, 1, 400, 2)
	c2 := &Catalog{}
	mustAppend(t, c2, 1, 100, 5)
	mustAppend(t, c2, 101, 400, 13)
	c3 := &Catalog{}
	mustAppend(t, c3, 1, 300, 6)
	mustAppend(t, c3, 301, 400, 9)
	c4 := &Catalog{}
	mustAppend(t, c4, 1, 200, 4)
	mustAppend(t, c4, 201, 400, 8)

	m, err := MergeSum([]*Catalog{c1, c2, c3, c4})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ k, want int }{
		{1, 17}, {100, 17}, {101, 25}, {200, 25}, {201, 29}, {300, 29}, {301, 32}, {400, 32},
	}
	for _, cse := range cases {
		got, ok := m.Lookup(cse.k)
		if !ok || got != cse.want {
			t.Errorf("merged Lookup(%d) = %d (%v), want %d", cse.k, got, ok, cse.want)
		}
	}
}

func TestMergeErrors(t *testing.T) {
	a := &Catalog{}
	mustAppend(t, a, 1, 100, 1)
	b := &Catalog{}
	mustAppend(t, b, 1, 50, 1)

	// Both merge flavors share the validation, and the messages are load
	// bearing: the store surfaces them verbatim when a mixed-resolution
	// fleet hands mismatched-MaxK catalogs to a pairwise merge.
	merges := []struct {
		name  string
		merge func([]*Catalog) (*Catalog, error)
	}{
		{"MergeSum", MergeSum},
		{"MergeMax", MergeMax},
	}
	for _, m := range merges {
		if _, err := m.merge(nil); err == nil || err.Error() != "catalog: merge of zero catalogs" {
			t.Errorf("%s(nil) error = %v, want 'catalog: merge of zero catalogs'", m.name, err)
		}
		if _, err := m.merge([]*Catalog{}); err == nil || err.Error() != "catalog: merge of zero catalogs" {
			t.Errorf("%s(empty) error = %v, want 'catalog: merge of zero catalogs'", m.name, err)
		}
		if _, err := m.merge([]*Catalog{a, b}); err == nil ||
			err.Error() != "catalog: merge input 1 covers up to 50, want 100" {
			t.Errorf("%s(mismatched MaxK) error = %v, want 'catalog: merge input 1 covers up to 50, want 100'", m.name, err)
		}
		if _, err := m.merge([]*Catalog{a, {}}); err == nil ||
			!strings.Contains(err.Error(), "merge input 1") {
			t.Errorf("%s(empty input catalog) error = %v, want a 'merge input 1' validation error", m.name, err)
		}
	}
}

func TestMergeMax(t *testing.T) {
	a := &Catalog{}
	mustAppend(t, a, 1, 10, 3)
	mustAppend(t, a, 11, 20, 9)
	b := &Catalog{}
	mustAppend(t, b, 1, 15, 5)
	mustAppend(t, b, 16, 20, 6)
	m, err := MergeMax([]*Catalog{a, b})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ k, want int }{{1, 5}, {10, 5}, {11, 9}, {15, 9}, {16, 9}, {20, 9}}
	for _, cse := range cases {
		if got, _ := m.Lookup(cse.k); got != cse.want {
			t.Errorf("max Lookup(%d) = %d, want %d", cse.k, got, cse.want)
		}
	}
}

// randomCatalog builds a valid random catalog over [1, maxK].
func randomCatalog(rng *rand.Rand, maxK int) *Catalog {
	c := &Catalog{}
	start := 1
	for start <= maxK {
		end := start + rng.Intn(maxK/3+1)
		if end > maxK {
			end = maxK
		}
		// Errors are impossible by construction.
		_ = c.Append(start, end, rng.Intn(50))
		start = end + 1
	}
	return c
}

// Property: MergeSum equals naive per-k summation; MergeMax equals naive
// per-k max.
func TestMergeMatchesNaiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		maxK := 20 + local.Intn(200)
		n := 1 + local.Intn(6)
		cats := make([]*Catalog, n)
		for i := range cats {
			cats[i] = randomCatalog(local, maxK)
		}
		sum, err := MergeSum(cats)
		if err != nil {
			return false
		}
		mx, err := MergeMax(cats)
		if err != nil {
			return false
		}
		for k := 1; k <= maxK; k++ {
			wantSum, wantMax := 0, 0
			for _, c := range cats {
				v, ok := c.Lookup(k)
				if !ok {
					return false
				}
				wantSum += v
				if v > wantMax {
					wantMax = v
				}
			}
			if got, _ := sum.Lookup(k); got != wantSum {
				return false
			}
			if got, _ := mx.Lookup(k); got != wantMax {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: binary round-trip preserves the catalog exactly.
func TestMarshalRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		c := randomCatalog(local, 10+local.Intn(5000))
		data, err := c.MarshalBinary()
		if err != nil {
			return false
		}
		var back Catalog
		if back.UnmarshalBinary(data) != nil {
			return false
		}
		if back.Len() != c.Len() || back.MaxK() != c.MaxK() {
			return false
		}
		for i, e := range c.Entries() {
			if back.Entries()[i] != e {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var c Catalog
	for _, data := range [][]byte{nil, {0x99}, {marshalHeader, 0x05}, append(func() []byte {
		b, _ := paperCatalogForMarshal().MarshalBinary()
		return b
	}(), 0x00)} {
		if err := c.UnmarshalBinary(data); err == nil {
			t.Errorf("UnmarshalBinary(%v) should fail", data)
		}
	}
}

func paperCatalogForMarshal() *Catalog {
	c := &Catalog{}
	_ = c.Append(1, 520, 3)
	_ = c.Append(521, 675, 7)
	return c
}

func TestStorageBytesCompact(t *testing.T) {
	c := paperCatalog(t)
	// 6 entries should take only tens of bytes thanks to varint deltas.
	if got := c.StorageBytes(); got > 40 {
		t.Errorf("StorageBytes = %d, expected compact (< 40) encoding", got)
	}
}
