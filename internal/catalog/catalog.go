// Package catalog implements the interval catalogs at the heart of the
// paper's estimation techniques: sorted lists of entries
// ([kstart, kend], cost) stating that a k-NN operator costs `cost` block
// scans for any k in the interval (Figures 4 and 7). Catalogs support
// logarithmic lookup, the plane-sweep merge of Figure 8 (sum across
// catalogs, driven by a min-heap), the max-merge used for the staircase
// corners-catalog, and a compact binary encoding used to account for catalog
// storage exactly as §5 does.
package catalog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"knncost/internal/pqueue"
)

// Entry states that the operator costs Cost block scans for every
// k in [StartK, EndK].
type Entry struct {
	StartK, EndK int
	Cost         int
}

// Catalog is a sorted, contiguous list of entries covering [1, MaxK()].
// Build it with Append; entries must be appended in ascending k order with
// no gaps. Adjacent entries with equal cost are coalesced automatically —
// the "stability" compression that keeps catalogs small (§3.1).
type Catalog struct {
	entries []Entry
}

// Append adds the entry ([startK, endK], cost). startK must continue the
// catalog contiguously (equal 1 for the first entry). Appending an entry
// with the same cost as the last extends it instead of growing the list.
func (c *Catalog) Append(startK, endK, cost int) error {
	if startK > endK {
		return fmt.Errorf("catalog: inverted interval [%d,%d]", startK, endK)
	}
	want := 1
	if n := len(c.entries); n > 0 {
		want = c.entries[n-1].EndK + 1
	}
	if startK != want {
		return fmt.Errorf("catalog: interval [%d,%d] does not continue at k=%d", startK, endK, want)
	}
	if n := len(c.entries); n > 0 && c.entries[n-1].Cost == cost {
		c.entries[n-1].EndK = endK
		return nil
	}
	c.entries = append(c.entries, Entry{StartK: startK, EndK: endK, Cost: cost})
	return nil
}

// Lookup returns the cost for the interval containing k using binary search.
// The boolean is false when k is outside [1, MaxK()] — the caller decides
// how to handle out-of-catalog values (the paper routes k > MAX_K to the
// density-based technique, Figure 5). Lookup performs no allocations; it is
// the innermost operation of every estimate the service answers.
func (c *Catalog) Lookup(k int) (int, bool) {
	if k < 1 || len(c.entries) == 0 || k > c.MaxK() {
		return 0, false
	}
	// Hand-rolled binary search for the first entry with EndK >= k: unlike
	// sort.Search there is no function value on the hot path.
	lo, hi := 0, len(c.entries)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.entries[mid].EndK < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return c.entries[lo].Cost, true
}

// Reset empties the catalog, retaining the allocated entry capacity. It is
// the reuse primitive for scratch catalogs (e.g. the per-corner temporaries
// of the staircase builder) that live in a pool.
func (c *Catalog) Reset() { c.entries = c.entries[:0] }

// Reserve ensures capacity for at least n entries, so that a builder that
// knows an upper bound on interval count avoids incremental growth.
func (c *Catalog) Reserve(n int) {
	if n > cap(c.entries) {
		grown := make([]Entry, len(c.entries), n)
		copy(grown, c.entries)
		c.entries = grown
	}
}

// Entries returns the underlying entries. The slice is shared; callers must
// not modify it.
func (c *Catalog) Entries() []Entry { return c.entries }

// Len returns the number of intervals.
func (c *Catalog) Len() int { return len(c.entries) }

// MaxK returns the largest k the catalog covers, zero when empty.
func (c *Catalog) MaxK() int {
	if len(c.entries) == 0 {
		return 0
	}
	return c.entries[len(c.entries)-1].EndK
}

// sweepSource tracks one catalog's cursor during a plane-sweep merge.
type sweepSource struct {
	entries []Entry
	pos     int
}

// merge sweeps the interval boundaries of cats (all covering [1, maxK]) in
// ascending order — a min-heap yields the next boundary, as §4.2.1
// prescribes — and combines the per-catalog costs of each elementary
// interval with combine.
func merge(cats []*Catalog, combine func(costs []int) int) (*Catalog, error) {
	if len(cats) == 0 {
		return nil, errors.New("catalog: merge of zero catalogs")
	}
	maxK := cats[0].MaxK()
	for i, c := range cats {
		if c.Len() == 0 || c.entries[0].StartK != 1 {
			return nil, fmt.Errorf("catalog: merge input %d does not start at k=1", i)
		}
		if c.MaxK() != maxK {
			return nil, fmt.Errorf("catalog: merge input %d covers up to %d, want %d", i, c.MaxK(), maxK)
		}
	}
	sources := make([]sweepSource, len(cats))
	costs := make([]int, len(cats))
	var boundaries pqueue.Queue[int] // indexes into sources, keyed by current EndK
	boundaries.Grow(len(cats))
	for i, c := range cats {
		sources[i] = sweepSource{entries: c.entries}
		costs[i] = c.entries[0].Cost
		boundaries.Push(i, float64(c.entries[0].EndK))
	}
	out := &Catalog{}
	start := 1
	for start <= maxK {
		endF, _ := boundaries.PeekPriority()
		end := int(endF)
		if err := out.Append(start, end, combine(costs)); err != nil {
			return nil, err
		}
		// Advance every catalog whose current interval ends here.
		for {
			p, ok := boundaries.PeekPriority()
			if !ok || int(p) != end {
				break
			}
			i, _ := boundaries.Pop()
			s := &sources[i]
			s.pos++
			if s.pos < len(s.entries) {
				costs[i] = s.entries[s.pos].Cost
				boundaries.Push(i, float64(s.entries[s.pos].EndK))
			}
		}
		start = end + 1
	}
	return out, nil
}

// MergeSum produces the aggregate catalog of Figure 8: for every k the cost
// is the sum of the input catalogs' costs at k. All inputs must cover the
// same [1, maxK] domain.
func MergeSum(cats []*Catalog) (*Catalog, error) {
	return merge(cats, func(costs []int) int {
		total := 0
		for _, c := range costs {
			total += c
		}
		return total
	})
}

// MergeMax produces the corners-catalog of §3.2: for every k the maximum
// cost across the inputs. All inputs must cover the same [1, maxK] domain.
func MergeMax(cats []*Catalog) (*Catalog, error) {
	return merge(cats, func(costs []int) int {
		m := costs[0]
		for _, c := range costs[1:] {
			if c > m {
				m = c
			}
		}
		return m
	})
}

// marshal format: uvarint entry count, then per entry uvarint(EndK delta
// from previous EndK) and uvarint(Cost). StartK values are implied by
// contiguity, so each entry costs only a few bytes — this is the storage the
// experiments of §5 account for.
const marshalHeader = byte(0x01) // format version

// MarshalBinary encodes the catalog compactly.
func (c *Catalog) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 1, 1+10*len(c.entries))
	buf[0] = marshalHeader
	buf = binary.AppendUvarint(buf, uint64(len(c.entries)))
	prevEnd := 0
	for _, e := range c.entries {
		buf = binary.AppendUvarint(buf, uint64(e.EndK-prevEnd))
		buf = binary.AppendUvarint(buf, uint64(e.Cost))
		prevEnd = e.EndK
	}
	return buf, nil
}

// UnmarshalBinary decodes a catalog encoded by MarshalBinary.
func (c *Catalog) UnmarshalBinary(data []byte) error {
	if len(data) == 0 || data[0] != marshalHeader {
		return errors.New("catalog: bad header")
	}
	data = data[1:]
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return errors.New("catalog: truncated entry count")
	}
	data = data[sz:]
	// Every entry costs at least two bytes (one per uvarint), so a count
	// beyond len(data)/2 is a hostile or corrupt length field; reject it
	// before it sizes an allocation.
	if n > uint64(len(data)/2) {
		return errors.New("catalog: entry count exceeds payload")
	}
	entries := make([]Entry, 0, n)
	prevEnd := 0
	for i := uint64(0); i < n; i++ {
		delta, sz := binary.Uvarint(data)
		if sz <= 0 {
			return errors.New("catalog: truncated end delta")
		}
		data = data[sz:]
		cost, sz2 := binary.Uvarint(data)
		if sz2 <= 0 {
			return errors.New("catalog: truncated cost")
		}
		data = data[sz2:]
		// Well-formed catalogs have strictly increasing interval ends and
		// costs that fit comfortably in an int; anything else would break
		// the binary-search invariant Lookup relies on (or overflow EndK).
		if delta == 0 {
			return errors.New("catalog: non-increasing interval end")
		}
		if delta > math.MaxInt32 || uint64(prevEnd)+delta > math.MaxInt32 {
			return errors.New("catalog: interval end overflows")
		}
		if cost > math.MaxInt32 {
			return errors.New("catalog: cost overflows")
		}
		end := prevEnd + int(delta)
		entries = append(entries, Entry{StartK: prevEnd + 1, EndK: end, Cost: int(cost)})
		prevEnd = end
	}
	if len(data) != 0 {
		return errors.New("catalog: trailing bytes")
	}
	c.entries = entries
	return nil
}

// StorageBytes returns the size of the binary encoding — the storage
// overhead metric of the paper's Figures 14, 20 and 22.
func (c *Catalog) StorageBytes() int {
	b, err := c.MarshalBinary()
	if err != nil {
		// MarshalBinary cannot fail on a well-formed catalog.
		panic(err)
	}
	return len(b)
}
