package catalog

import (
	"testing"
)

// FuzzUnmarshalBinary hardens the catalog decoder against corrupt or
// adversarial inputs: it must either reject the bytes or produce a catalog
// whose own invariants hold and which re-encodes losslessly. Run with
// `go test -fuzz=FuzzUnmarshalBinary ./internal/catalog` for a real fuzzing
// session; the seed corpus below runs in every normal test invocation.
func FuzzUnmarshalBinary(f *testing.F) {
	valid := &Catalog{}
	_ = valid.Append(1, 520, 3)
	_ = valid.Append(521, 675, 7)
	seed, err := valid.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{marshalHeader})
	f.Add([]byte{marshalHeader, 0x00})
	f.Add([]byte{marshalHeader, 0xFF, 0xFF, 0xFF})
	f.Add(append(append([]byte{}, seed...), 0x01)) // trailing byte

	f.Fuzz(func(t *testing.T, data []byte) {
		var c Catalog
		if err := c.UnmarshalBinary(data); err != nil {
			return // rejection is always acceptable
		}
		// Accepted: invariants must hold.
		prevEnd := 0
		for _, e := range c.Entries() {
			if e.StartK != prevEnd+1 {
				t.Fatalf("gap: entry %+v after end %d", e, prevEnd)
			}
			if e.EndK < e.StartK {
				t.Fatalf("inverted entry %+v", e)
			}
			prevEnd = e.EndK
		}
		// Round-trip must be lossless.
		enc, err := c.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		var back Catalog
		if err := back.UnmarshalBinary(enc); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if back.Len() != c.Len() || back.MaxK() != c.MaxK() {
			t.Fatalf("round-trip changed shape")
		}
	})
}
