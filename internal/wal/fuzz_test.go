package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"knncost/internal/geom"
)

// FuzzReplayWAL corrupts a well-formed single-segment log — truncations,
// bit flips, arbitrary suffix garbage — and asserts the two replay
// invariants: Open never fails or panics on corruption, and what it
// recovers is always a contiguous LSN prefix of what was appended. It also
// checks the repair is persistent: a second Open sees a clean log with the
// same records.
func FuzzReplayWAL(f *testing.F) {
	// Build one valid segment image to seed from.
	seedDir := f.TempDir()
	w, _, err := Open(Options{Dir: seedDir})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		rec := Record{Kind: KindAppend, Relation: "rel", Points: []geom.Point{{X: float64(i), Y: float64(-i)}}}
		if i%3 == 2 {
			rec = Record{Kind: KindCheckpoint, Relation: "rel", Covered: uint64(i), Fingerprint: "abcd1234"}
		}
		if _, err := w.Append(rec); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(seedDir, "wal-*.seg"))
	if len(segs) != 1 {
		f.Fatalf("seed segments: %v", segs)
	}
	valid, err := os.ReadFile(segs[0])
	if err != nil {
		f.Fatal(err)
	}

	f.Add(valid, len(valid), byte(0))
	f.Add(valid, len(valid)-3, byte(0))
	f.Add(valid, len(valid), byte(0x80))
	f.Add([]byte{}, 0, byte(0))
	f.Add([]byte("garbage that is not a segment at all"), 10, byte(1))
	f.Add(append(append([]byte{}, valid...), 0xff, 0xff, 0xff, 0xff), 1<<20, byte(0))

	f.Fuzz(func(t *testing.T, img []byte, cut int, flip byte) {
		data := append([]byte{}, img...)
		if cut >= 0 && cut < len(data) {
			data = data[:cut]
		}
		if len(data) > 0 && flip != 0 {
			data[int(flip)%len(data)] ^= flip
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-00000000000000000001.seg"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, rep, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("Open on corrupt input errored: %v", err)
		}
		for i, r := range rep.Records {
			if r.LSN != rep.Records[0].LSN+uint64(i) {
				t.Fatalf("recovered records not contiguous: %d has LSN %d", i, r.LSN)
			}
		}
		// If the image was an untouched prefix of the valid log, every
		// complete record must have been recovered (no false truncation).
		if flip == 0 && len(data) <= len(valid) && bytes.Equal(data, valid[:len(data)]) {
			reference := 0
			off := len(segMagic)
			for off < len(data) {
				_, n, derr := decodeFrame(data[off:])
				if derr != nil {
					break
				}
				reference++
				off += n
			}
			if len(rep.Records) != reference {
				t.Fatalf("recovered %d records from clean prefix, want %d", len(rep.Records), reference)
			}
		}
		// The log stays writable after repair.
		if _, err := w.Append(Record{Kind: KindDrop, Relation: "rel"}); err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		// Repair must be persistent: the second open is clean and agrees.
		w2, rep2, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("second Open errored: %v", err)
		}
		defer w2.Close()
		if rep2.TruncatedTails != 0 || rep2.DroppedSegments != 0 {
			t.Fatalf("repair not persistent: %+v", rep2)
		}
		if len(rep2.Records) != len(rep.Records)+1 {
			t.Fatalf("second replay %d records, want %d", len(rep2.Records), len(rep.Records)+1)
		}
	})
}
