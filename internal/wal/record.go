package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"knncost/internal/geom"
)

// Kind discriminates the record types carried by the log.
type Kind uint8

const (
	// KindAppend adds points to a relation's delta overlay.
	KindAppend Kind = 1
	// KindDelete removes every occurrence of the listed coordinates.
	KindDelete Kind = 2
	// KindCheckpoint marks that every mutation of Relation with an LSN
	// <= Covered has been folded into the persisted artifact set
	// identified by Fingerprint. A checkpoint is only *effective* on
	// replay when Fingerprint matches the fingerprint the registry
	// restored for the relation: the checkpoint is written before the
	// registry, so a crash between the two leaves a checkpoint whose
	// fingerprint the registry never learned — replay must ignore it and
	// re-apply the covered mutations onto the older base instead.
	KindCheckpoint Kind = 3
	// KindDrop records the intent to remove a relation. It is fsynced
	// before the disk-cache registry forgets the relation, so a crash in
	// between cannot resurrect the relation on restart.
	KindDrop Kind = 4
)

// Record is one durable log entry.
type Record struct {
	// LSN is the log sequence number, assigned contiguously by Append.
	LSN uint64
	// Kind selects which of the remaining fields are meaningful.
	Kind Kind
	// Relation names the relation the record applies to.
	Relation string
	// Points carries the coordinates of KindAppend / KindDelete records.
	Points []geom.Point
	// Covered is the highest mutation LSN folded into a KindCheckpoint.
	Covered uint64
	// Fingerprint is the content address of the artifact set a
	// KindCheckpoint refers to.
	Fingerprint string
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	// frameHeader is [u32 payload length][u32 CRC32-C of payload].
	frameHeader = 8
	// maxPayload bounds a single record so a corrupt length field cannot
	// drive a giant allocation during replay.
	maxPayload = 64 << 20
	// maxName bounds relation names (mirrors the service-layer limit).
	maxName = 256
)

var (
	errShortFrame   = errors.New("wal: short frame")
	errBadChecksum  = errors.New("wal: checksum mismatch")
	errBadPayload   = errors.New("wal: malformed payload")
	errHugePayload  = errors.New("wal: payload length out of range")
	errLSNRegressed = errors.New("wal: log sequence number regressed")
)

// appendFrame serializes r (including the frame header) onto buf.
func appendFrame(buf []byte, r Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	p := len(buf)
	buf = binary.AppendUvarint(buf, r.LSN)
	buf = append(buf, byte(r.Kind))
	buf = binary.AppendUvarint(buf, uint64(len(r.Relation)))
	buf = append(buf, r.Relation...)
	switch r.Kind {
	case KindAppend, KindDelete:
		buf = binary.AppendUvarint(buf, uint64(len(r.Points)))
		for _, pt := range r.Points {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(pt.X))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(pt.Y))
		}
	case KindCheckpoint:
		buf = binary.AppendUvarint(buf, r.Covered)
		buf = binary.AppendUvarint(buf, uint64(len(r.Fingerprint)))
		buf = append(buf, r.Fingerprint...)
	case KindDrop:
		// relation name only
	}
	payload := buf[p:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
	return buf
}

// decodeFrame reads one frame from data. It returns the record and the
// number of bytes consumed, or an error when the frame is torn, corrupt, or
// malformed — the caller treats any error as the end of the valid prefix.
func decodeFrame(data []byte) (Record, int, error) {
	if len(data) < frameHeader {
		return Record{}, 0, errShortFrame
	}
	n := binary.LittleEndian.Uint32(data)
	if n == 0 || n > maxPayload {
		return Record{}, 0, errHugePayload
	}
	if len(data) < frameHeader+int(n) {
		return Record{}, 0, errShortFrame
	}
	payload := data[frameHeader : frameHeader+int(n)]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[4:]) {
		return Record{}, 0, errBadChecksum
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, frameHeader + int(n), nil
}

func decodePayload(p []byte) (Record, error) {
	var r Record
	var n int
	r.LSN, n = binary.Uvarint(p)
	if n <= 0 {
		return r, errBadPayload
	}
	p = p[n:]
	if len(p) < 1 {
		return r, errBadPayload
	}
	r.Kind = Kind(p[0])
	p = p[1:]
	nameLen, n := binary.Uvarint(p)
	if n <= 0 || nameLen > maxName || uint64(len(p)-n) < nameLen {
		return r, errBadPayload
	}
	r.Relation = string(p[n : n+int(nameLen)])
	p = p[n+int(nameLen):]
	switch r.Kind {
	case KindAppend, KindDelete:
		count, n := binary.Uvarint(p)
		if n <= 0 {
			return r, errBadPayload
		}
		p = p[n:]
		// Bound count before multiplying: a crafted varint near 2^64 would
		// make count*16 wrap and pass the equality check, then panic the
		// allocation below.
		if count > uint64(len(p))/16 || uint64(len(p)) != count*16 {
			return r, errBadPayload
		}
		r.Points = make([]geom.Point, count)
		for i := range r.Points {
			r.Points[i].X = math.Float64frombits(binary.LittleEndian.Uint64(p[i*16:]))
			r.Points[i].Y = math.Float64frombits(binary.LittleEndian.Uint64(p[i*16+8:]))
		}
	case KindCheckpoint:
		covered, n := binary.Uvarint(p)
		if n <= 0 {
			return r, errBadPayload
		}
		p = p[n:]
		fpLen, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p)-n) != fpLen {
			return r, errBadPayload
		}
		r.Covered = covered
		r.Fingerprint = string(p[n:])
	case KindDrop:
		if len(p) != 0 {
			return r, errBadPayload
		}
	default:
		return r, fmt.Errorf("wal: unknown record kind %d", r.Kind)
	}
	return r, nil
}
