package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"knncost/internal/geom"
)

func testRecords(n int) []Record {
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0, 1:
			recs = append(recs, Record{Kind: KindAppend, Relation: "roads", Points: []geom.Point{{X: float64(i), Y: float64(i) * 0.5}, {X: -1, Y: 2}}})
		case 2:
			recs = append(recs, Record{Kind: KindDelete, Relation: "pois", Points: []geom.Point{{X: float64(i), Y: 9}}})
		case 3:
			recs = append(recs, Record{Kind: KindCheckpoint, Relation: "roads", Covered: uint64(i), Fingerprint: fmt.Sprintf("fp-%04d", i)})
		}
	}
	return recs
}

func appendAll(t *testing.T, w *WAL, recs []Record) []uint64 {
	t.Helper()
	lsns := make([]uint64, len(recs))
	for i, r := range recs {
		lsn, err := w.Append(r)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		lsns[i] = lsn
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	return lsns
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, rep, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 0 || rep.TruncatedTails != 0 {
		t.Fatalf("fresh log replayed %+v", rep)
	}
	want := testRecords(13)
	lsns := appendAll(t, w, want)
	for i, lsn := range lsns {
		if lsn != uint64(i+1) {
			t.Fatalf("lsn[%d] = %d, want %d", i, lsn, i+1)
		}
	}
	if got := w.LastLSN(); got != uint64(len(want)) {
		t.Fatalf("LastLSN = %d, want %d", got, len(want))
	}
	if w.Appends() != int64(len(want)) || w.Fsyncs() == 0 {
		t.Fatalf("counters appends=%d fsyncs=%d", w.Appends(), w.Fsyncs())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(Record{Kind: KindDrop, Relation: "x"}); err == nil {
		t.Fatal("append after close succeeded")
	}

	w2, rep2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rep2.TruncatedTails != 0 || rep2.DroppedSegments != 0 {
		t.Fatalf("clean reopen reported corruption: %+v", rep2)
	}
	if len(rep2.Records) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(rep2.Records), len(want))
	}
	for i, got := range rep2.Records {
		exp := want[i]
		exp.LSN = uint64(i + 1)
		if !reflect.DeepEqual(got, exp) {
			t.Fatalf("record %d = %+v, want %+v", i, got, exp)
		}
	}
	// Appending after reopen continues the LSN sequence.
	lsn, err := w2.Append(Record{Kind: KindDrop, Relation: "roads"})
	if err != nil || lsn != uint64(len(want)+1) {
		t.Fatalf("append after reopen: lsn=%d err=%v", lsn, err)
	}
}

func TestRotationAndTrim(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords(40)
	appendAll(t, w, want)
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, rep, err := Open(Options{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != len(want) || rep.TruncatedTails != 0 {
		t.Fatalf("reopen across segments: %d records, %d truncated", len(rep.Records), rep.TruncatedTails)
	}
	// Trim everything but the tail: only segments fully covered go away.
	cut := rep.Records[len(rep.Records)-3].LSN
	if removed := w2.TrimTo(cut); removed == 0 {
		t.Fatal("TrimTo removed nothing")
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	w3, rep3, err := Open(Options{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if rep3.TruncatedTails != 0 {
		t.Fatalf("trimmed log reported truncation: %+v", rep3)
	}
	if len(rep3.Records) == 0 || rep3.Records[len(rep3.Records)-1].LSN != uint64(len(want)) {
		t.Fatalf("trimmed log lost the tail: %d records", len(rep3.Records))
	}
	for _, r := range rep3.Records[1:] {
		// Survivors must still be contiguous.
		if r.LSN == 0 {
			t.Fatal("zero LSN after trim")
		}
	}
}

func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords(9)
	appendAll(t, w, want)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("segments: %v", segs)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record in half.
	if err := os.WriteFile(segs[0], data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	w2, rep, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TruncatedTails != 1 {
		t.Fatalf("TruncatedTails = %d, want 1", rep.TruncatedTails)
	}
	if len(rep.Records) != len(want)-1 {
		t.Fatalf("recovered %d records, want %d", len(rep.Records), len(want)-1)
	}
	// The log must keep working past the truncation: the torn record's LSN
	// is reused by the next append.
	lsn, err := w2.Append(Record{Kind: KindDrop, Relation: "roads"})
	if err != nil || lsn != uint64(len(want)) {
		t.Fatalf("append after truncation: lsn=%d err=%v", lsn, err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	// A second reopen must be clean: the repair is persistent.
	w3, rep3, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if rep3.TruncatedTails != 0 || len(rep3.Records) != len(want) {
		t.Fatalf("repair not persistent: %+v (%d records)", rep3, len(rep3.Records))
	}
}

func TestCorruptMiddleSegmentDropsTail(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir, SegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, testRecords(40))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	sortAndCheck := func() {
		if len(segs) < 3 {
			t.Fatalf("need >= 3 segments, got %d", len(segs))
		}
	}
	sortAndCheck()
	// Flip a byte in the middle of the second segment.
	data, err := os.ReadFile(segs[1])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(segs[1], data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, rep, err := Open(Options{Dir: dir, SegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rep.TruncatedTails != 1 {
		t.Fatalf("TruncatedTails = %d, want 1", rep.TruncatedTails)
	}
	if rep.DroppedSegments == 0 {
		t.Fatal("segments after the corrupt one must be dropped")
	}
	// Whatever survived must be a contiguous prefix starting at LSN 1.
	for i, r := range rep.Records {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
	}
	left, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(left) >= len(segs) {
		t.Fatalf("dropped segments still on disk: %v", left)
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lsn, err := w.Append(Record{Kind: KindAppend, Relation: "r", Points: []geom.Point{{X: float64(g), Y: float64(i)}}})
				if err == nil {
					err = w.Commit(lsn)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if w.Appends() != workers*per {
		t.Fatalf("appends = %d", w.Appends())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, rep, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != workers*per {
		t.Fatalf("replayed %d, want %d", len(rep.Records), workers*per)
	}
}

func TestIntervalSyncMode(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir, SyncInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := w.Append(Record{Kind: KindDrop, Relation: "r"})
	if err != nil {
		t.Fatal(err)
	}
	// Commit is a no-op in interval mode; the background syncer catches up.
	if err := w.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for w.Fsyncs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval syncer never ran")
		}
		time.Sleep(time.Millisecond)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpHookSplitsWrites(t *testing.T) {
	dir := t.TempDir()
	var ops []string
	w, _, err := Open(Options{Dir: dir, OpHook: func(op string) { ops = append(ops, op) }})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := w.Append(Record{Kind: KindAppend, Relation: "r", Points: []geom.Point{{X: 1, Y: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	wantPrefix := []string{"append", "append-mid", "fsync"}
	if len(ops) < len(wantPrefix) {
		t.Fatalf("ops = %v", ops)
	}
	for i, op := range wantPrefix {
		if ops[i] != op {
			t.Fatalf("ops = %v, want prefix %v", ops, wantPrefix)
		}
	}
}

// TestSyncDuringRotationNotSticky pins the rotation/sync race: syncTo
// captures the active file, releases the lock, and fsyncs; a concurrent
// Append can rotate — and close — that file in between. The failed fsync on
// the retired file must not poison the log with a sticky sync error:
// rotation already made the segment durable.
func TestSyncDuringRotationNotSticky(t *testing.T) {
	// One record per segment: the threshold is just past the magic header,
	// so every append after the first rotates the previous record out.
	w, _, err := Open(Options{Dir: t.TempDir(), SegmentBytes: len(segMagic) + 1})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := w.Sync(); err != nil {
				t.Errorf("Sync during rotation: %v", err)
				return
			}
		}
	}()

	rec := Record{Kind: KindAppend, Relation: "r", Points: []geom.Point{{X: 1, Y: 2}}}
	for i := 0; i < 300; i++ {
		lsn, err := w.Append(rec)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if err := w.Commit(lsn); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if err := w.Sync(); err != nil {
		t.Fatalf("final sync: %v", err)
	}
}

// TestDecodeRejectsOverflowingPointCount pins the count*16 overflow guard: a
// CRC-valid frame whose varint point count is 2^60 makes count*16 wrap to 0,
// which the pre-fix equality check accepted — and the subsequent allocation
// panicked, violating the "Open never panics on corruption" invariant.
func TestDecodeRejectsOverflowingPointCount(t *testing.T) {
	payload := binary.AppendUvarint(nil, 1) // LSN
	payload = append(payload, byte(KindAppend))
	payload = binary.AppendUvarint(payload, 1)
	payload = append(payload, 'r')
	payload = binary.AppendUvarint(payload, 1<<60) // count*16 wraps to 0
	frame := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, castagnoli))
	frame = append(frame, payload...)
	if _, _, err := decodeFrame(frame); err == nil {
		t.Fatal("decodeFrame accepted a frame whose point count overflows the size check")
	}
}
