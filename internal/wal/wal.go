// Package wal implements the write-ahead log behind streaming ingest: a
// segmented, CRC32-C-checksummed append log with group-commit fsync.
//
// Layout: the log directory holds segment files named wal-<firstLSN>.seg.
// Each segment starts with a 5-byte magic and carries a sequence of frames
// [u32 payload length][u32 CRC32-C][payload]; payloads are the varint
// encoding of Record. LSNs are assigned contiguously across segments, so
// replay can verify continuity and TrimTo can drop whole segments once every
// record in them is covered by a durable checkpoint.
//
// Replay never trusts the tail: a torn or corrupt frame truncates the
// segment to its last valid record, and every later segment is discarded
// (their records would leave a hole in the LSN sequence). Open therefore
// always returns a valid prefix of what was appended — it never errors on
// corruption and never replays garbage.
//
// Durability: Append only writes to the OS; Commit group-commits — the
// caller blocks until one fsync covers its LSN, and concurrent committers
// share a single fsync. With Options.SyncInterval > 0 Commit is a no-op and
// a background goroutine fsyncs on a timer instead (bounded loss window).
package wal

import (
	"bytes"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

var segMagic = []byte("KNWL\x01")

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("wal: closed")

// Options configures Open.
type Options struct {
	// Dir is the log directory; created if missing.
	Dir string
	// SegmentBytes is the rotation threshold. Zero means 4 MiB.
	SegmentBytes int
	// SyncInterval selects the fsync policy: zero means group commit
	// (Commit blocks until an fsync covers its LSN); a positive value
	// means a background fsync every interval and Commit returns
	// immediately (the loss window after a crash is one interval).
	SyncInterval time.Duration
	// Logger receives non-fatal replay and trim diagnostics.
	Logger *log.Logger
	// OpHook, when set, is invoked with an operation label immediately
	// before each durability-critical step ("append", "append-mid",
	// "fsync", "rotate", "trim"). It exists for crash-injection tests,
	// which snapshot the directory at every hook point; when set, record
	// writes are split in two so a hook point lands mid-frame.
	OpHook func(op string)
}

// Replay is what Open recovered from the directory.
type Replay struct {
	// Records is the valid prefix of the log, in LSN order.
	Records []Record
	// TruncatedTails counts segments whose tail was cut back to the last
	// valid record (torn writes, bit flips, bad headers).
	TruncatedTails int
	// DroppedSegments counts whole segments discarded because an earlier
	// segment was corrupt (their LSNs would not be contiguous).
	DroppedSegments int
}

type segment struct {
	path        string
	first, last uint64
}

// WAL is an open log. Methods are safe for concurrent use.
type WAL struct {
	opt Options

	mu       sync.Mutex // serializes writes, rotation, trim
	f        *os.File   // active segment
	segPath  string
	segFirst uint64
	segSize  int64
	nextLSN  uint64
	segments []segment // closed segments, oldest first
	closed   bool
	failed   error // sticky write failure: the tail may be torn
	buf      []byte

	sc        sync.Cond
	scMu      sync.Mutex
	syncing   bool
	syncedLSN uint64
	syncErr   error

	stop chan struct{}
	done chan struct{}

	appends atomic.Int64
	fsyncs  atomic.Int64
}

// Open replays the log in dir and opens it for appending. Corruption is
// repaired (truncated), counted in Replay, and never returned as an error.
func Open(opt Options) (*WAL, Replay, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = 4 << 20
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, Replay{}, fmt.Errorf("wal: %w", err)
	}
	names, err := filepath.Glob(filepath.Join(opt.Dir, "wal-*.seg"))
	if err != nil {
		return nil, Replay{}, fmt.Errorf("wal: %w", err)
	}
	sort.Strings(names)

	var rep Replay
	var segs []segment
	var lastValidLen int64
	prev := uint64(0) // last valid LSN seen, 0 = none yet
	corrupt := false
	for _, path := range names {
		if corrupt {
			if os.Remove(path) == nil {
				rep.DroppedSegments++
			}
			continue
		}
		data, rerr := os.ReadFile(path)
		var valid int
		var recs []Record
		truncated := true
		if rerr == nil {
			valid, recs, truncated = scanSegment(data, &prev)
		}
		rep.Records = append(rep.Records, recs...)
		if truncated {
			rep.TruncatedTails++
			corrupt = true
			if opt.Logger != nil {
				opt.Logger.Printf("wal: truncating %s to %d bytes (%d records recovered)", filepath.Base(path), valid, len(recs))
			}
			if valid < len(segMagic) {
				// Nothing usable, not even a header: drop the file.
				os.Remove(path)
				continue
			}
			if err := os.Truncate(path, int64(valid)); err != nil {
				return nil, Replay{}, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
		}
		first, last := uint64(0), uint64(0)
		if len(recs) > 0 {
			first, last = recs[0].LSN, recs[len(recs)-1].LSN
		}
		segs = append(segs, segment{path: path, first: first, last: last})
		lastValidLen = int64(valid)
	}

	w := &WAL{opt: opt, nextLSN: prev + 1}
	w.sc.L = &w.scMu
	w.syncedLSN = prev
	if n := len(segs); n > 0 {
		active := segs[n-1]
		f, err := os.OpenFile(active.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, Replay{}, fmt.Errorf("wal: reopen active segment: %w", err)
		}
		w.f = f
		w.segPath = active.path
		w.segFirst = active.first
		w.segSize = lastValidLen
		w.segments = segs[:n-1]
	} else if err := w.createSegmentLocked(); err != nil {
		return nil, Replay{}, err
	}
	if opt.SyncInterval > 0 {
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.syncLoop()
	}
	return w, rep, nil
}

// scanSegment validates data and returns the length of the valid prefix,
// the records it contains, and whether the segment had to be cut back.
// prev carries LSN continuity across segments.
func scanSegment(data []byte, prev *uint64) (int, []Record, bool) {
	if len(data) < len(segMagic) || !bytes.Equal(data[:len(segMagic)], segMagic) {
		return 0, nil, true
	}
	off := len(segMagic)
	var recs []Record
	for off < len(data) {
		rec, n, err := decodeFrame(data[off:])
		if err != nil {
			return off, recs, true
		}
		if *prev != 0 && rec.LSN != *prev+1 {
			return off, recs, true
		}
		if *prev == 0 && rec.LSN == 0 {
			return off, recs, true
		}
		*prev = rec.LSN
		recs = append(recs, rec)
		off += n
	}
	return off, recs, false
}

func (w *WAL) createSegmentLocked() error {
	path := filepath.Join(w.opt.Dir, fmt.Sprintf("wal-%020d.seg", w.nextLSN))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if _, err := f.Write(segMagic); err != nil {
		f.Close()
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync segment header: %w", err)
	}
	w.syncDir()
	w.f = f
	w.segPath = path
	w.segFirst = w.nextLSN
	w.segSize = int64(len(segMagic))
	return nil
}

// rotateLocked makes the active segment durable, closes it, and starts a
// fresh one. Called with w.mu held.
func (w *WAL) rotateLocked() error {
	if hook := w.opt.OpHook; hook != nil {
		hook("rotate")
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.fsyncs.Add(1)
	if err := w.f.Close(); err != nil {
		return err
	}
	w.segments = append(w.segments, segment{path: w.segPath, first: w.segFirst, last: w.nextLSN - 1})
	return w.createSegmentLocked()
}

// Append writes r to the active segment and returns its LSN. The record is
// in the OS buffer only — call Commit (or rely on the interval syncer) to
// make it durable. After a write error the log refuses further appends:
// the tail may be torn, and appending past it would make later records
// unrecoverable.
func (w *WAL) Append(r Record) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if w.failed != nil {
		return 0, fmt.Errorf("wal: log failed: %w", w.failed)
	}
	if w.segSize >= int64(w.opt.SegmentBytes) {
		if err := w.rotateLocked(); err != nil {
			w.failed = err
			return 0, fmt.Errorf("wal: rotate: %w", err)
		}
	}
	r.LSN = w.nextLSN
	w.buf = appendFrame(w.buf[:0], r)
	if hook := w.opt.OpHook; hook != nil {
		hook("append")
		half := len(w.buf) / 2
		if _, err := w.f.Write(w.buf[:half]); err != nil {
			w.failed = err
			return 0, err
		}
		hook("append-mid")
		if _, err := w.f.Write(w.buf[half:]); err != nil {
			w.failed = err
			return 0, err
		}
	} else if _, err := w.f.Write(w.buf); err != nil {
		w.failed = err
		return 0, err
	}
	w.segSize += int64(len(w.buf))
	w.nextLSN++
	w.appends.Add(1)
	return r.LSN, nil
}

// Commit makes every record with an LSN <= lsn durable. In group-commit
// mode it blocks until one fsync covers lsn; concurrent committers share a
// single fsync. In interval mode it returns immediately.
func (w *WAL) Commit(lsn uint64) error {
	if w.opt.SyncInterval > 0 {
		return nil
	}
	return w.syncTo(lsn)
}

// Sync fsyncs everything appended so far, regardless of sync mode. Used
// for records that must be durable before a dependent side effect
// (checkpoints before the registry write, drops before the registry
// forget).
func (w *WAL) Sync() error {
	w.mu.Lock()
	target := w.nextLSN - 1
	w.mu.Unlock()
	return w.syncTo(target)
}

func (w *WAL) syncTo(lsn uint64) error {
	w.scMu.Lock()
	for w.syncedLSN < lsn && w.syncErr == nil {
		if w.syncing {
			w.sc.Wait()
			continue
		}
		w.syncing = true
		w.scMu.Unlock()

		w.mu.Lock()
		f := w.f
		written := w.nextLSN - 1
		hook := w.opt.OpHook
		w.mu.Unlock()
		if hook != nil {
			hook("fsync")
		}
		// Rotation fsyncs a segment before retiring it, so syncing the
		// active file covers every record up to `written`.
		err := f.Sync()
		w.fsyncs.Add(1)
		if err != nil {
			// A concurrent Append may have rotated — and closed — the file
			// between the capture above and the Sync. Rotation fsyncs the
			// segment before closing it, so everything up to `written` is
			// already durable; only a failure on the still-active file is a
			// real (sticky) sync error.
			w.mu.Lock()
			if w.f != f {
				err = nil
			}
			w.mu.Unlock()
		}

		w.scMu.Lock()
		w.syncing = false
		if err != nil {
			w.syncErr = err
		} else if written > w.syncedLSN {
			w.syncedLSN = written
		}
		w.sc.Broadcast()
	}
	err := w.syncErr
	w.scMu.Unlock()
	return err
}

func (w *WAL) syncLoop() {
	defer close(w.done)
	t := time.NewTicker(w.opt.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			if err := w.Sync(); err != nil && w.opt.Logger != nil {
				w.opt.Logger.Printf("wal: interval sync: %v", err)
			}
		}
	}
}

// TrimTo deletes closed segments whose every record has an LSN <= lsn. The
// active segment is never deleted (it is reclaimed after rotation). Returns
// the number of segments removed.
func (w *WAL) TrimTo(lsn uint64) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	removed := 0
	keep := w.segments[:0]
	for _, seg := range w.segments {
		if seg.last <= lsn && seg.last != 0 {
			if hook := w.opt.OpHook; hook != nil {
				hook("trim")
			}
			if err := os.Remove(seg.path); err != nil && w.opt.Logger != nil {
				w.opt.Logger.Printf("wal: trim %s: %v", filepath.Base(seg.path), err)
			}
			removed++
			continue
		}
		keep = append(keep, seg)
	}
	w.segments = keep
	if removed > 0 {
		w.syncDir()
	}
	return removed
}

// LastLSN returns the highest LSN appended so far (0 when empty).
func (w *WAL) LastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN - 1
}

// Appends returns the number of records appended since Open.
func (w *WAL) Appends() int64 { return w.appends.Load() }

// Fsyncs returns the number of fsyncs issued since Open.
func (w *WAL) Fsyncs() int64 { return w.fsyncs.Load() }

// Close makes the log durable and closes it. Further Appends fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	if w.stop != nil {
		close(w.stop)
		<-w.done
	}
	err := w.Sync()
	w.mu.Lock()
	cerr := w.f.Close()
	w.mu.Unlock()
	if err != nil {
		return err
	}
	return cerr
}

// syncDir fsyncs the log directory so segment creation and removal survive
// a crash. Best effort: some platforms reject directory fsync.
func (w *WAL) syncDir() {
	if d, err := os.Open(w.opt.Dir); err == nil {
		d.Sync()
		d.Close()
	}
}
