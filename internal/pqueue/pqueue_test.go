package pqueue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue[int]
	if q.Len() != 0 {
		t.Fatalf("zero queue Len = %d, want 0", q.Len())
	}
	if _, ok := q.Pop(); ok {
		t.Error("Pop on empty queue should report false")
	}
	if _, ok := q.Peek(); ok {
		t.Error("Peek on empty queue should report false")
	}
	if _, ok := q.PeekPriority(); ok {
		t.Error("PeekPriority on empty queue should report false")
	}
}

func TestPushPopOrder(t *testing.T) {
	var q Queue[string]
	q.Push("c", 3)
	q.Push("a", 1)
	q.Push("d", 4)
	q.Push("b", 2)
	want := []string{"a", "b", "c", "d"}
	for i, w := range want {
		v, ok := q.Pop()
		if !ok || v != w {
			t.Fatalf("pop %d = %q (%v), want %q", i, v, ok, w)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue should be empty, Len = %d", q.Len())
	}
}

func TestPeek(t *testing.T) {
	var q Queue[int]
	q.Push(10, 5)
	q.Push(20, 2)
	v, ok := q.Peek()
	if !ok || v != 20 {
		t.Fatalf("Peek = %d, want 20", v)
	}
	p, ok := q.PeekPriority()
	if !ok || p != 2 {
		t.Fatalf("PeekPriority = %g, want 2", p)
	}
	if q.Len() != 2 {
		t.Fatalf("Peek must not remove items")
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 10; i++ {
		q.Push(i, 1.0)
	}
	for i := 0; i < 10; i++ {
		v, _ := q.Pop()
		if v != i {
			t.Fatalf("equal-priority pop %d = %d, want insertion order", i, v)
		}
	}
}

func TestReset(t *testing.T) {
	var q Queue[int]
	q.Push(1, 1)
	q.Push(2, 2)
	q.Reset()
	if q.Len() != 0 {
		t.Fatalf("Reset should empty the queue")
	}
	q.Push(7, 7)
	if v, _ := q.Pop(); v != 7 {
		t.Fatalf("queue must be reusable after Reset")
	}
}

func TestGrow(t *testing.T) {
	var q Queue[int]
	q.Grow(100)
	for i := 0; i < 100; i++ {
		q.Push(i, float64(i))
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d, want 100", q.Len())
	}
}

// Property: popping everything yields priorities in non-decreasing order,
// and returns exactly the multiset that was pushed.
func TestHeapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		n := local.Intn(200)
		var q Queue[float64]
		pushed := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			p := local.NormFloat64()
			q.Push(p, p)
			pushed = append(pushed, p)
		}
		popped := make([]float64, 0, n)
		for q.Len() > 0 {
			v, _ := q.Pop()
			popped = append(popped, v)
		}
		if len(popped) != n {
			return false
		}
		sort.Float64s(pushed)
		for i := range pushed {
			if pushed[i] != popped[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: interleaved pushes and pops still pop the global minimum of the
// current contents.
func TestInterleavedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		var q Queue[float64]
		var mirror []float64
		for op := 0; op < 300; op++ {
			if len(mirror) == 0 || local.Intn(3) > 0 {
				p := local.Float64() * 100
				q.Push(p, p)
				mirror = append(mirror, p)
			} else {
				v, ok := q.Pop()
				if !ok {
					return false
				}
				minIdx := 0
				for i, m := range mirror {
					if m < mirror[minIdx] {
						minIdx = i
					}
				}
				if v != mirror[minIdx] {
					return false
				}
				mirror = append(mirror[:minIdx], mirror[minIdx+1:]...)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}
