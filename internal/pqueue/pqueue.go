// Package pqueue provides a generic binary min-heap keyed by float64
// priority. It backs every best-first structure in knncost: the tuples-queue
// and blocks-queue of distance browsing, the MINDIST scans of the locality
// and catalog builders, and the plane-sweep merge of temporary catalogs.
//
// The zero value of Queue is an empty queue ready for use. Ties are broken
// by insertion order (FIFO), which keeps scans deterministic.
package pqueue

// Queue is a min-heap of values of type T ordered by ascending float64
// priority. It is not safe for concurrent use.
type Queue[T any] struct {
	items []item[T]
	seq   uint64
}

type item[T any] struct {
	value T
	prio  float64
	seq   uint64 // tie-break: earlier pushes pop first
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push inserts value with the given priority.
func (q *Queue[T]) Push(value T, priority float64) {
	q.items = append(q.items, item[T]{value: value, prio: priority, seq: q.seq})
	q.seq++
	q.up(len(q.items) - 1)
}

// Pop removes and returns the item with the smallest priority. The boolean
// is false when the queue is empty.
func (q *Queue[T]) Pop() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	top := q.items[0].value
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items[last] = item[T]{} // release for GC
	q.items = q.items[:last]
	if len(q.items) > 0 {
		q.down(0)
	}
	return top, true
}

// Peek returns the item with the smallest priority without removing it. The
// boolean is false when the queue is empty.
func (q *Queue[T]) Peek() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	return q.items[0].value, true
}

// PeekPriority returns the smallest priority in the queue. The boolean is
// false when the queue is empty.
func (q *Queue[T]) PeekPriority() (float64, bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	return q.items[0].prio, true
}

// Reset empties the queue, retaining the allocated capacity for reuse.
func (q *Queue[T]) Reset() {
	clear(q.items)
	q.items = q.items[:0]
	q.seq = 0
}

// Grow reserves capacity for at least n additional items.
func (q *Queue[T]) Grow(n int) {
	if need := len(q.items) + n; need > cap(q.items) {
		grown := make([]item[T], len(q.items), need)
		copy(grown, q.items)
		q.items = grown
	}
}

func (q *Queue[T]) less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *Queue[T]) down(i int) {
	n := len(q.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			return
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}
