package core

import (
	"math/rand"
	"sync"
	"testing"

	"knncost/internal/geom"
)

// Estimators are read-only after construction, so concurrent estimates
// must be safe — the property the HTTP service relies on. Run under
// `go test -race` to make this meaningful.
func TestConcurrentEstimates(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	bounds := geom.NewRect(0, 0, 100, 100)
	data := buildIx(clusteredPoints(rng, 4000, bounds), bounds, 64)
	inner := buildIx(clusteredPoints(rng, 4000, bounds), bounds, 64).CountTree()
	count := data.CountTree()

	stair, err := BuildStaircase(data, StaircaseOptions{MaxK: 150})
	if err != nil {
		t.Fatal(err)
	}
	density := NewDensityBased(count)
	cm, err := BuildCatalogMerge(count, inner, 50, 150)
	if err != nil {
		t.Fatal(err)
	}
	vg, err := BuildVirtualGrid(inner, 6, 6, 150)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			local := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				q := geom.Point{X: local.Float64() * 100, Y: local.Float64() * 100}
				k := 1 + local.Intn(150)
				if _, err := stair.EstimateSelect(q, k); err != nil {
					t.Error(err)
					return
				}
				if _, err := density.EstimateSelect(q, k); err != nil {
					t.Error(err)
					return
				}
				if _, err := cm.EstimateJoin(k); err != nil {
					t.Error(err)
					return
				}
				if _, err := vg.EstimateJoin(count, k); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
}
