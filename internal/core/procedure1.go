package core

import (
	"knncost/internal/catalog"
	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/knn"
)

// BuildSelectCatalog runs Procedure 1 of the paper: it simulates distance
// browsing from q over the data index and records, for every k in
// [1, maxK], the number of blocks scanned by the time the k-th neighbor is
// returned. Runs of equal cost collapse into intervals — the staircase of
// Figure 4.
//
// When the index holds fewer than maxK points, the remaining k range is
// assigned the cost of scanning the whole index (distance browsing will
// have consumed every block by then).
func BuildSelectCatalog(data *index.Tree, q geom.Point, maxK int) *catalog.Catalog {
	cat := &catalog.Catalog{}
	if maxK < 1 {
		return cat
	}
	browser := knn.NewBrowser(data, q)
	startK := 1
	currentCost := -1
	k := 0
	for k < maxK {
		_, ok := browser.Next()
		if !ok {
			break
		}
		k++
		cost := browser.Stats().BlocksScanned
		if currentCost == -1 {
			currentCost = cost
			continue
		}
		if cost != currentCost {
			// appendInterval cannot fail: intervals are contiguous
			// by construction.
			mustAppend(cat, startK, k-1, currentCost)
			startK = k
			currentCost = cost
		}
	}
	if currentCost != -1 {
		mustAppend(cat, startK, k, currentCost)
		startK = k + 1
	}
	if startK <= maxK {
		// Fewer than maxK points: every block has been scanned.
		mustAppend(cat, startK, maxK, data.NumBlocks())
	}
	return cat
}

// mustAppend appends an interval that is contiguous by construction; a
// failure indicates a bug in the builder, not bad input.
func mustAppend(cat *catalog.Catalog, startK, endK, cost int) {
	if err := cat.Append(startK, endK, cost); err != nil {
		panic("core: non-contiguous catalog build: " + err.Error())
	}
}
