package core

import (
	"sync"

	"knncost/internal/catalog"
	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/knn"
)

// browserPool recycles distance-browsing state across Procedure 1 runs: the
// blocks-queue and tuples-queue a browser grows while simulating one anchor
// are reused for the next anchor instead of being reallocated. Staircase
// builds run Procedure 1 five times per block across many goroutines, so the
// pool is what makes preprocessing allocation-light.
//
// Pooling invariant: a Browser taken from the pool is used by exactly one
// goroutine and returned before the building function exits — it must never
// escape into a returned value or another goroutine.
var browserPool = sync.Pool{New: func() any { return new(knn.Browser) }}

// BuildSelectCatalog runs Procedure 1 of the paper: it simulates distance
// browsing from q over the data index and records, for every k in
// [1, maxK], the number of blocks scanned by the time the k-th neighbor is
// returned. Runs of equal cost collapse into intervals — the staircase of
// Figure 4.
//
// When the index holds fewer than maxK points, the remaining k range is
// assigned the cost of scanning the whole index (distance browsing will
// have consumed every block by then).
func BuildSelectCatalog(data *index.Tree, q geom.Point, maxK int) *catalog.Catalog {
	browser := browserPool.Get().(*knn.Browser)
	defer browserPool.Put(browser)
	cat := &catalog.Catalog{}
	buildSelectCatalogInto(cat, browser, data, q, maxK)
	return cat
}

// buildSelectCatalogInto is Procedure 1 with caller-owned state: the result
// is written into cat (reset first, capacity retained) and the traversal
// reuses browser's queues. It is the per-anchor step of the staircase
// builder, which re-seeds one pooled browser for all five anchors of a
// block.
func buildSelectCatalogInto(cat *catalog.Catalog, browser *knn.Browser, data *index.Tree, q geom.Point, maxK int) {
	cat.Reset()
	if maxK < 1 {
		return
	}
	browser.Reset(data, q)
	startK := 1
	currentCost := -1
	k := 0
	for k < maxK {
		_, ok := browser.Next()
		if !ok {
			break
		}
		k++
		cost := browser.Stats().BlocksScanned
		if currentCost == -1 {
			currentCost = cost
			continue
		}
		if cost != currentCost {
			// appendInterval cannot fail: intervals are contiguous
			// by construction.
			mustAppend(cat, startK, k-1, currentCost)
			startK = k
			currentCost = cost
		}
	}
	if currentCost != -1 {
		mustAppend(cat, startK, k, currentCost)
		startK = k + 1
	}
	if startK <= maxK {
		// Fewer than maxK points: every block has been scanned.
		mustAppend(cat, startK, maxK, data.NumBlocks())
	}
}

// mustAppend appends an interval that is contiguous by construction; a
// failure indicates a bug in the builder, not bad input.
func mustAppend(cat *catalog.Catalog, startK, endK, cost int) {
	if err := cat.Append(startK, endK, cost); err != nil {
		panic("core: non-contiguous catalog build: " + err.Error())
	}
}
