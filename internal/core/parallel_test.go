package core

import (
	"math/rand"
	"testing"

	"knncost/internal/geom"
	"knncost/internal/index"
)

// Parallel catalog building must produce exactly the same estimator as a
// serial build: every block's catalogs are independent.
func TestStaircaseParallelBuildDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	bounds := geom.NewRect(0, 0, 100, 100)
	data := buildIx(clusteredPoints(rng, 5000, bounds), bounds, 64)
	serial, err := BuildStaircase(data, StaircaseOptions{MaxK: 200, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := BuildStaircase(data, StaircaseOptions{MaxK: 200, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serial.StorageBytes() != parallel.StorageBytes() {
		t.Fatalf("storage differs: serial %d, parallel %d",
			serial.StorageBytes(), parallel.StorageBytes())
	}
	for i := 0; i < 500; i++ {
		q := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		k := 1 + rng.Intn(200)
		a, err := serial.EstimateSelect(q, k)
		if err != nil {
			t.Fatal(err)
		}
		b, err := parallel.EstimateSelect(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("estimates diverge at q=%v k=%d: serial %g, parallel %g", q, k, a, b)
		}
	}
}

func TestForEachBlockPropagatesError(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	bounds := geom.NewRect(0, 0, 10, 10)
	data := buildIx(randPoints(rng, 500, bounds), bounds, 16)
	wantErr := errSentinel("boom")
	for _, par := range []int{1, 4} {
		err := forEachBlock(data.Blocks(), par, func(b *index.Block) error {
			if b.ID == 3 {
				return wantErr
			}
			return nil
		})
		if err != wantErr {
			t.Errorf("parallelism %d: err = %v, want sentinel", par, err)
		}
	}
}

type errSentinel string

func (e errSentinel) Error() string { return string(e) }
