package core

import (
	"math/rand"
	"sync"
	"testing"

	"knncost/internal/geom"
)

func batchFixture(t *testing.T) (*Staircase, []SelectQuery) {
	t.Helper()
	rng := rand.New(rand.NewSource(51))
	bounds := geom.NewRect(0, 0, 100, 100)
	data := buildIx(clusteredPoints(rng, 5000, bounds), bounds, 64)
	s, err := BuildStaircase(data, StaircaseOptions{MaxK: 150})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]SelectQuery, 257) // odd length: uneven worker split
	for i := range queries {
		queries[i] = SelectQuery{
			Point: geom.Point{X: rng.Float64() * 120, Y: rng.Float64() * 120},
			K:     1 + rng.Intn(300), // some beyond MaxK → fallback path
		}
	}
	return s, queries
}

func TestBatchEmpty(t *testing.T) {
	s, _ := batchFixture(t)
	if got := s.EstimateSelectBatch(nil, 0); len(got) != 0 {
		t.Fatalf("batch of nil queries returned %d results", len(got))
	}
	if got := s.EstimateSelectBatch([]SelectQuery{}, 4); len(got) != 0 {
		t.Fatalf("batch of zero queries returned %d results", len(got))
	}
}

// Parallelism is an execution detail: 0 (GOMAXPROCS), 1 (serial) and any N
// must produce identical results, each equal to a sequential EstimateSelect.
func TestBatchParallelismInvariant(t *testing.T) {
	s, queries := batchFixture(t)
	want := make([]SelectResult, len(queries))
	for i, q := range queries {
		blocks, err := s.EstimateSelect(q.Point, q.K)
		want[i] = SelectResult{Blocks: blocks, Err: err}
	}
	for _, parallelism := range []int{0, 1, 3, 16, 1000} {
		got := s.EstimateSelectBatch(queries, parallelism)
		if len(got) != len(want) {
			t.Fatalf("parallelism %d: %d results, want %d", parallelism, len(got), len(want))
		}
		for i := range got {
			if got[i].Blocks != want[i].Blocks || (got[i].Err == nil) != (want[i].Err == nil) {
				t.Fatalf("parallelism %d, query %d: got (%v, %v), want (%v, %v)",
					parallelism, i, got[i].Blocks, got[i].Err, want[i].Blocks, want[i].Err)
			}
		}
	}
}

// One invalid query must fail alone: its neighbors' estimates are unaffected
// and the batch completes.
func TestBatchErrorIsolation(t *testing.T) {
	s, queries := batchFixture(t)
	bad := 17
	queries[bad].K = 0 // invalid: k must be >= 1
	results := s.EstimateSelectBatch(queries, 4)
	if results[bad].Err == nil {
		t.Fatalf("query %d with k=0 did not error", bad)
	}
	for i, res := range results {
		if i == bad {
			continue
		}
		if res.Err != nil {
			t.Fatalf("query %d failed alongside the bad query: %v", i, res.Err)
		}
		want, err := s.EstimateSelect(queries[i].Point, queries[i].K)
		if err != nil || res.Blocks != want {
			t.Fatalf("query %d: got %v, want %v (err %v)", i, res.Blocks, want, err)
		}
	}
}

// Concurrent callers share the catalogs and the density scratch pool; run
// under -race this verifies the batch path is data-race free.
func TestBatchConcurrentCallers(t *testing.T) {
	s, queries := batchFixture(t)
	want := s.EstimateSelectBatch(queries, 1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(par int) {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				got := s.EstimateSelectBatch(queries, par)
				for i := range got {
					if got[i].Blocks != want[i].Blocks {
						t.Errorf("concurrent batch diverged at %d: %v != %v",
							i, got[i].Blocks, want[i].Blocks)
						return
					}
				}
			}
		}(w % 4)
	}
	wg.Wait()
}

// The generic entry point works for any estimator, not just Staircase.
func TestBatchDensityEstimator(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	bounds := geom.NewRect(0, 0, 100, 100)
	d := NewDensityBased(buildIx(clusteredPoints(rng, 3000, bounds), bounds, 64).CountTree())
	queries := []SelectQuery{
		{Point: geom.Point{X: 10, Y: 10}, K: 5},
		{Point: geom.Point{X: 90, Y: 90}, K: 50},
	}
	results := EstimateSelectBatch(d, queries, 2)
	for i, res := range results {
		want, err := d.EstimateSelect(queries[i].Point, queries[i].K)
		if err != nil || res.Err != nil || res.Blocks != want {
			t.Fatalf("query %d: got (%v, %v), want (%v, %v)", i, res.Blocks, res.Err, want, err)
		}
	}
}

// Steady-state EstimateSelect on the catalog path must not allocate: point
// location is a flat-grid lookup and catalog lookups are closure-free.
func TestEstimateSelectZeroAlloc(t *testing.T) {
	s, _ := batchFixture(t)
	q := geom.Point{X: 42.5, Y: 57.5}
	k := 37
	if _, err := s.EstimateSelect(q, k); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.EstimateSelect(q, k); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("EstimateSelect allocates %.1f times per call, want 0", allocs)
	}
}
