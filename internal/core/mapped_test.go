package core

import (
	"bytes"
	"math/rand"
	"testing"

	"knncost/internal/geom"
)

// TestStaircaseMappedRoundTrip: the mapped (zero-copy) format must be
// estimate-for-estimate identical to the builder, in every mode, and the
// loaded artifact's Resolution must reflect the persisted MaxK and mode —
// that round trip is what lets a warm restart rebuild resolution-keyed
// artifact caches without consulting the registry.
func TestStaircaseMappedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	bounds := geom.NewRect(0, 0, 100, 100)
	data := buildIx(clusteredPoints(rng, 3000, bounds), bounds, 64)
	for _, mode := range []StaircaseMode{ModeCenterCorners, ModeCenterOnly, ModeCenterQuadrant} {
		orig, err := BuildStaircase(data, StaircaseOptions{MaxK: 150, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		n, err := orig.WriteMapped(&buf)
		if err != nil {
			t.Fatalf("%v WriteMapped: %v", mode, err)
		}
		if n != int64(buf.Len()) {
			t.Errorf("%v: WriteMapped reported %d bytes, wrote %d", mode, n, buf.Len())
		}
		loaded, err := LoadStaircaseMapped(data, buf.Bytes(), StaircaseOptions{})
		if err != nil {
			t.Fatalf("%v LoadStaircaseMapped: %v", mode, err)
		}
		if got, want := loaded.Resolution(), orig.Resolution(); got != want {
			t.Fatalf("%v: resolution round trip: got %+v, want %+v", mode, got, want)
		}
		if loaded.SizeBytes() != orig.SizeBytes() {
			t.Fatalf("%v: SizeBytes round trip: got %d, want %d", mode, loaded.SizeBytes(), orig.SizeBytes())
		}
		for i := 0; i < 300; i++ {
			q := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
			k := 1 + rng.Intn(150)
			a, err := orig.EstimateSelect(q, k)
			if err != nil {
				t.Fatal(err)
			}
			b, err := loaded.EstimateSelect(q, k)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("%v: estimates diverge at q=%v k=%d: %g vs %g", mode, q, k, a, b)
			}
		}
	}
}

func TestCatalogMergeMappedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	bounds := geom.NewRect(0, 0, 100, 100)
	outer := buildIx(clusteredPoints(rng, 1500, bounds), bounds, 32).CountTree()
	inner := buildIx(clusteredPoints(rng, 2000, bounds), bounds, 32).CountTree()
	orig, err := BuildCatalogMerge(outer, inner, 20, 120)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteMapped(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCatalogMergeMapped(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Resolution(), orig.Resolution(); got.MaxK != want.MaxK {
		t.Fatalf("resolution round trip: got %+v, want %+v", got, want)
	}
	for k := 1; k <= 120; k++ {
		a, errA := orig.EstimateJoin(k)
		b, errB := loaded.EstimateJoin(k)
		if (errA == nil) != (errB == nil) || a != b {
			t.Fatalf("k=%d: estimates diverge: %g,%v vs %g,%v", k, a, errA, b, errB)
		}
	}
}

func TestVirtualGridMappedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	bounds := geom.NewRect(0, 0, 100, 100)
	outer := buildIx(clusteredPoints(rng, 1200, bounds), bounds, 32).CountTree()
	inner := buildIx(clusteredPoints(rng, 1800, bounds), bounds, 32).CountTree()
	orig, err := BuildVirtualGrid(inner, 6, 4, 90)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteMapped(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadVirtualGridMapped(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Resolution(), orig.Resolution(); got != want {
		t.Fatalf("resolution round trip: got %+v, want %+v", got, want)
	}
	bo, bl := orig.Bind(outer), loaded.Bind(outer)
	for k := 1; k <= 90; k++ {
		a, errA := bo.EstimateJoin(k)
		b, errB := bl.EstimateJoin(k)
		if (errA == nil) != (errB == nil) || a != b {
			t.Fatalf("k=%d: estimates diverge: %g,%v vs %g,%v", k, a, errA, b, errB)
		}
	}
}

// TestMappedLoadersRejectCorruptInput: every truncation of a valid mapped
// file, and a few byte corruptions, must produce an error — never a panic
// and never a silently wrong artifact. This is the property the store's
// rebuild-on-miss fallback relies on.
func TestMappedLoadersRejectCorruptInput(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	bounds := geom.NewRect(0, 0, 50, 50)
	data := buildIx(clusteredPoints(rng, 600, bounds), bounds, 32)
	stair, err := BuildStaircase(data, StaircaseOptions{MaxK: 40})
	if err != nil {
		t.Fatal(err)
	}
	vg, err := BuildVirtualGrid(data.CountTree(), 3, 3, 40)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := BuildCatalogMerge(data.CountTree(), data.CountTree(), 10, 40)
	if err != nil {
		t.Fatal(err)
	}

	var sb, vb, cb bytes.Buffer
	if _, err := stair.WriteMapped(&sb); err != nil {
		t.Fatal(err)
	}
	if _, err := vg.WriteMapped(&vb); err != nil {
		t.Fatal(err)
	}
	if _, err := cm.WriteMapped(&cb); err != nil {
		t.Fatal(err)
	}

	loaders := []struct {
		name string
		full []byte
		load func([]byte) error
	}{
		{"staircase", sb.Bytes(), func(raw []byte) error {
			_, err := LoadStaircaseMapped(data, raw, StaircaseOptions{})
			return err
		}},
		{"virtual-grid", vb.Bytes(), func(raw []byte) error {
			_, err := LoadVirtualGridMapped(raw)
			return err
		}},
		{"catalog-merge", cb.Bytes(), func(raw []byte) error {
			_, err := LoadCatalogMergeMapped(raw)
			return err
		}},
	}
	for _, l := range loaders {
		if err := l.load(l.full); err != nil {
			t.Fatalf("%s: valid file rejected: %v", l.name, err)
		}
		for cut := 0; cut < len(l.full); cut += 1 + len(l.full)/97 {
			if err := l.load(l.full[:cut]); err == nil {
				t.Fatalf("%s: truncation to %d/%d bytes loaded without error", l.name, cut, len(l.full))
			}
		}
		if err := l.load(append(append([]byte{}, l.full...), 0, 0, 0, 0, 0, 0, 0, 0)); err == nil {
			t.Fatalf("%s: trailing garbage loaded without error", l.name)
		}
		flipped := append([]byte{}, l.full...)
		flipped[3] ^= 0xFF // corrupt the magic
		if err := l.load(flipped); err == nil {
			t.Fatalf("%s: corrupt magic loaded without error", l.name)
		}
	}
}
