package core

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"knncost/internal/geom"
	"knncost/internal/index"
)

// The persist loaders read length fields from untrusted bytes (a shared
// catalog cache, a copied file). These fuzz targets pin the hardening
// contract: on any input they either return an error or produce an
// estimator whose methods do not panic — never a crash, and never an
// allocation sized by a hostile length field (length fields are validated
// against the payload or read in bounded chunks before anything is sized
// by them).

// fuzzFixture is the shared small index (and serialized artifacts as seed
// corpus) for all three targets, built once per process.
var fuzzFixture struct {
	once      sync.Once
	data      *index.Tree
	staircase []byte
	merge     []byte
	vgrid     []byte
}

func fuzzSetup(tb testing.TB) {
	fuzzFixture.once.Do(func() {
		rng := rand.New(rand.NewSource(99))
		bounds := geom.NewRect(0, 0, 64, 64)
		fuzzFixture.data = buildIx(clusteredPoints(rng, 600, bounds), bounds, 32)
		other := buildIx(clusteredPoints(rng, 400, bounds), bounds, 32)

		s, err := BuildStaircase(fuzzFixture.data, StaircaseOptions{MaxK: 40})
		if err != nil {
			panic(err)
		}
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			panic(err)
		}
		fuzzFixture.staircase = append([]byte(nil), buf.Bytes()...)

		cm, err := BuildCatalogMerge(fuzzFixture.data.CountTree(), other.CountTree(), 20, 40)
		if err != nil {
			panic(err)
		}
		buf.Reset()
		if _, err := cm.WriteTo(&buf); err != nil {
			panic(err)
		}
		fuzzFixture.merge = append([]byte(nil), buf.Bytes()...)

		vg, err := BuildVirtualGrid(fuzzFixture.data.CountTree(), 4, 4, 40)
		if err != nil {
			panic(err)
		}
		buf.Reset()
		if _, err := vg.WriteTo(&buf); err != nil {
			panic(err)
		}
		fuzzFixture.vgrid = append([]byte(nil), buf.Bytes()...)
	})
}

// seedMutations adds the valid encoding plus systematic corruptions:
// truncations at several depths and single-byte flips, which together cover
// every length-field position.
func seedMutations(f *testing.F, valid []byte) {
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:1])
	for _, frac := range []int{8, 4, 2} {
		f.Add(valid[:len(valid)/frac])
	}
	for _, pos := range []int{4, 5, 6, 7, 8, len(valid) / 2} {
		if pos < len(valid) {
			mut := append([]byte(nil), valid...)
			mut[pos] ^= 0xFF
			f.Add(mut)
		}
	}
	// A hostile length field right after the header: 0xFF... uvarint.
	f.Add(append(append([]byte(nil), valid[:6]...),
		0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01))
}

func FuzzLoadStaircase(f *testing.F) {
	fuzzSetup(f)
	seedMutations(f, fuzzFixture.staircase)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := LoadStaircase(fuzzFixture.data, bytes.NewReader(data), StaircaseOptions{})
		if err != nil {
			return // rejection is always acceptable
		}
		// Accepted input must yield a usable estimator: estimates may fail
		// with an error (sparse hostile catalogs) but must never panic.
		for _, q := range []geom.Point{{X: 1, Y: 1}, {X: 32, Y: 32}, {X: 63, Y: 63}} {
			for _, k := range []int{1, 7, 40} {
				_, _ = s.EstimateSelect(q, k)
			}
		}
	})
}

func FuzzLoadCatalogMerge(f *testing.F) {
	fuzzSetup(f)
	seedMutations(f, fuzzFixture.merge)
	f.Fuzz(func(t *testing.T, data []byte) {
		cm, err := LoadCatalogMerge(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, k := range []int{1, 7, 40, 1000} {
			_, _ = cm.EstimateJoin(k)
		}
		_ = cm.StorageBytes()
	})
}

func FuzzLoadVirtualGrid(f *testing.F) {
	fuzzSetup(f)
	seedMutations(f, fuzzFixture.vgrid)
	f.Fuzz(func(t *testing.T, data []byte) {
		vg, err := LoadVirtualGrid(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, k := range []int{1, 7, 40} {
			_, _ = vg.EstimateJoin(fuzzFixture.data, k)
		}
		_ = vg.StorageBytes()
	})
}
