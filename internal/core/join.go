package core

import (
	"errors"
	"fmt"

	"knncost/internal/catalog"
	"knncost/internal/geom"
	"knncost/internal/grid"
	"knncost/internal/index"
	"knncost/internal/knnjoin"
)

// SampleBlocks returns a spatially distributed sample of (at most) s
// non-empty blocks of t, as §4.1 prescribes: Blocks() enumerates the leaves
// in depth-first index-traversal order — a space-filling order for
// quadtrees — and the sample takes every (n_o/s)-th block, so samples
// spread across the space the blocks occupy. Empty blocks are excluded
// because the join never builds localities for them (they contribute zero
// cost).
func SampleBlocks(t *index.Tree, s int) []*index.Block {
	blocks := make([]*index.Block, 0, t.NumBlocks())
	for _, b := range t.Blocks() {
		if b.Count > 0 {
			blocks = append(blocks, b)
		}
	}
	n := len(blocks)
	if s >= n || s <= 0 {
		return blocks
	}
	out := make([]*index.Block, 0, s)
	// Fixed-point stride walk hits exactly s evenly spaced indexes.
	for i := 0; i < s; i++ {
		out = append(out, blocks[i*n/s])
	}
	return out
}

// numJoinBlocks returns the number of outer blocks that contribute join
// cost — the n_o the sampling estimators scale by.
func numJoinBlocks(t *index.Tree) int {
	n := 0
	for _, b := range t.Blocks() {
		if b.Count > 0 {
			n++
		}
	}
	return n
}

// BlockSample is the baseline k-NN-Join estimator of §4.1: at query time it
// computes the locality size of a spatially distributed sample of outer
// blocks and scales the aggregate by n_o/s. No preprocessing, no storage —
// but every estimate pays s MINDIST scans, the cost Figure 17 shows.
type BlockSample struct {
	outer, inner *index.Tree
	sampleSize   int
}

// NewBlockSample creates the estimator. Both trees may be Count-Indexes.
// sampleSize <= 0 or >= the number of outer blocks means "use every block"
// (exact aggregation).
func NewBlockSample(outer, inner *index.Tree, sampleSize int) *BlockSample {
	return &BlockSample{outer: outer, inner: inner, sampleSize: sampleSize}
}

// EstimateJoin implements JoinEstimator.
func (b *BlockSample) EstimateJoin(k int) (float64, error) {
	if k < 1 {
		return 0, errors.New("core: k must be >= 1")
	}
	sample := SampleBlocks(b.outer, b.sampleSize)
	if len(sample) == 0 {
		return 0, errors.New("core: outer relation has no blocks")
	}
	agg := 0
	for _, blk := range sample {
		agg += knnjoin.LocalitySize(b.inner, blk.Bounds, k)
	}
	scale := float64(numJoinBlocks(b.outer)) / float64(len(sample))
	return float64(agg) * scale, nil
}

// CatalogMerge is the catalog-based k-NN-Join estimator of §4.2: Procedure 2
// builds a temporary locality catalog for each sampled outer block, and a
// plane sweep merges them into a single catalog per (outer, inner) pair.
// Estimation is one binary-search lookup scaled by n_o/s — the
// sub-microsecond path of Figure 17.
type CatalogMerge struct {
	merged *catalog.Catalog
	scale  float64
	maxK   int
	pin    any // keeps a borrowed mapping alive; see Pin
}

// BuildCatalogMerge precomputes the merged catalog for the pair
// (outer, inner). Both trees may be Count-Indexes. sampleSize <= 0 or >= the
// number of outer blocks uses every outer block (exact catalogs). maxK <= 0
// means DefaultMaxK.
func BuildCatalogMerge(outer, inner *index.Tree, sampleSize, maxK int) (*CatalogMerge, error) {
	if maxK <= 0 {
		maxK = DefaultMaxK
	}
	sample := SampleBlocks(outer, sampleSize)
	if len(sample) == 0 {
		return nil, errors.New("core: outer relation has no blocks")
	}
	if inner.NumBlocks() == 0 {
		return nil, errors.New("core: inner relation has no blocks")
	}
	// Temporary catalogs are independent, so build them on all cores; the
	// result is deterministic because each worker writes only its slot.
	temps := make([]*catalog.Catalog, len(sample))
	_ = forEachIndexed(len(sample), 0, func(i int) error {
		temps[i] = BuildLocalityCatalog(inner, sample[i].Bounds, maxK)
		return nil
	})
	merged, err := catalog.MergeSum(temps)
	if err != nil {
		return nil, fmt.Errorf("core: merging locality catalogs: %w", err)
	}
	return &CatalogMerge{
		merged: merged,
		scale:  float64(numJoinBlocks(outer)) / float64(len(sample)),
		maxK:   maxK,
	}, nil
}

// EstimateJoin implements JoinEstimator. k beyond MaxK is clamped to the
// last maintained interval (the paper limits maintained k to a practically
// large constant).
func (c *CatalogMerge) EstimateJoin(k int) (float64, error) {
	if k < 1 {
		return 0, errors.New("core: k must be >= 1")
	}
	if k > c.maxK {
		k = c.maxK
	}
	cost, ok := c.merged.Lookup(k)
	if !ok {
		return 0, fmt.Errorf("core: merged catalog missing k=%d", k)
	}
	return float64(cost) * c.scale, nil
}

// MaxK returns the largest maintained k.
func (c *CatalogMerge) MaxK() int { return c.maxK }

// StorageBytes returns the serialized size of the merged catalog — the
// per-pair storage of Figures 20 and 22(a).
func (c *CatalogMerge) StorageBytes() int { return c.merged.StorageBytes() }

// Catalog exposes the merged catalog for inspection.
func (c *CatalogMerge) Catalog() *catalog.Catalog { return c.merged }

// VirtualGrid is the linear-storage k-NN-Join estimator of §4.3. It is
// built once per inner relation: a virtual G×G grid covers the inner
// index's space and every cell gets a locality catalog (Procedure 2 with
// the cell as origin). Estimating the cost of any (outer ⋉_knn inner) join
// then walks the outer relation's blocks: each outer block O, attributed to
// the grid cell C containing its center, contributes the cell's locality
// size scaled by diagonal(O)/diagonal(C).
//
// Attribution by center (rather than by every overlapping cell) counts each
// outer block exactly once, which keeps the estimate O(n_o), independent of
// grid size — the behaviour Figures 16 and 19 report. DESIGN.md §3 records
// this interpretation of the paper's prose.
type VirtualGrid struct {
	cells    []geom.Rect // row-major
	catalogs []*catalog.Catalog
	bounds   geom.Rect
	nx, ny   int
	maxK     int
	pin      any // keeps a borrowed mapping alive; see Pin
}

// BuildVirtualGrid precomputes the per-cell catalogs for an inner relation.
// The grid covers the inner index bounds (for real datasets, "the bounds of
// the earth are fixed" — any fixed bounds enclosing all relations work).
// maxK <= 0 means DefaultMaxK.
func BuildVirtualGrid(inner *index.Tree, nx, ny, maxK int) (*VirtualGrid, error) {
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("core: invalid virtual grid size %dx%d", nx, ny)
	}
	if maxK <= 0 {
		maxK = DefaultMaxK
	}
	bounds := inner.Bounds()
	if bounds.Width() <= 0 || bounds.Height() <= 0 {
		return nil, errors.New("core: inner index has degenerate bounds")
	}
	cells := grid.Cells(bounds, nx, ny)
	v := &VirtualGrid{
		cells:    cells,
		catalogs: make([]*catalog.Catalog, len(cells)),
		bounds:   bounds,
		nx:       nx,
		ny:       ny,
		maxK:     maxK,
	}
	// Per-cell catalogs are independent; build them on all cores.
	_ = forEachIndexed(len(cells), 0, func(i int) error {
		v.catalogs[i] = BuildLocalityCatalog(inner, cells[i], maxK)
		return nil
	})
	return v, nil
}

// EstimateJoin predicts the cost of (outer ⋉_knn inner) for the inner
// relation this grid was built over. k beyond MaxK is clamped.
func (v *VirtualGrid) EstimateJoin(outer *index.Tree, k int) (float64, error) {
	if k < 1 {
		return 0, errors.New("core: k must be >= 1")
	}
	if k > v.maxK {
		k = v.maxK
	}
	total := 0.0
	for i, cell := range v.cells {
		loc, ok := v.catalogs[i].Lookup(k)
		if !ok {
			return 0, fmt.Errorf("core: virtual grid cell %d missing k=%d", i, k)
		}
		cellDiag := cell.Diagonal()
		// Range query for outer blocks overlapping the cell; attribute
		// each to the single cell containing its center.
		outer.VisitRange(cell, func(o *index.Block) {
			if o.Count == 0 || !v.attributedTo(o, i) {
				return
			}
			total += float64(loc) * o.Bounds.Diagonal() / cellDiag
		})
	}
	return total, nil
}

// attributedTo reports whether outer block o belongs to cell i: the cell
// contains o's center, with blocks whose center lies outside the grid
// entirely attributed to the nearest (clamped) cell. Ties on shared cell
// edges resolve to the lower-left cell via the grid arithmetic.
func (v *VirtualGrid) attributedTo(o *index.Block, i int) bool {
	c := o.Bounds.Center()
	col := cellCoord(c.X, v.bounds.Min.X, v.bounds.Max.X, v.nx)
	row := cellCoord(c.Y, v.bounds.Min.Y, v.bounds.Max.Y, v.ny)
	return row*v.nx+col == i
}

// cellCoord maps a coordinate to its cell index along one axis, clamped to
// the grid.
func cellCoord(x, lo, hi float64, n int) int {
	if hi <= lo {
		return 0
	}
	idx := int((x - lo) / (hi - lo) * float64(n))
	if idx < 0 {
		return 0
	}
	if idx >= n {
		return n - 1
	}
	return idx
}

// MaxK returns the largest maintained k.
func (v *VirtualGrid) MaxK() int { return v.maxK }

// GridSize returns the grid dimensions.
func (v *VirtualGrid) GridSize() (nx, ny int) { return v.nx, v.ny }

// StorageBytes returns the total serialized size of the per-cell catalogs —
// the linear storage of Figures 20 and 22(b).
func (v *VirtualGrid) StorageBytes() int {
	total := 0
	for _, c := range v.catalogs {
		total += c.StorageBytes()
	}
	return total
}

// Bind fixes an outer relation, yielding a JoinEstimator for the pair.
func (v *VirtualGrid) Bind(outer *index.Tree) JoinEstimator {
	return boundVirtualGrid{v: v, outer: outer}
}

type boundVirtualGrid struct {
	v     *VirtualGrid
	outer *index.Tree
}

func (b boundVirtualGrid) EstimateJoin(k int) (float64, error) {
	return b.v.EstimateJoin(b.outer, k)
}
