package core

import (
	"math/rand"
	"testing"

	"knncost/internal/geom"
)

// The single-pass density estimator must reproduce the literal two-scan
// formulation of §2 exactly: the growth scan visits blocks in non-decreasing
// MINDIST order, so re-scanning for the overlap count is pure overhead, not
// a different answer. This regression test pins the refactor across skewed
// data, uniform data, boundary queries and the fewer-than-k-points fallback.
func TestDensitySinglePassMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	bounds := geom.NewRect(0, 0, 100, 100)
	for name, pts := range map[string][]geom.Point{
		"clustered": clusteredPoints(rng, 6000, bounds),
		"uniform":   randPoints(rng, 3000, bounds),
		"tiny":      clusteredPoints(rng, 40, bounds),
	} {
		t.Run(name, func(t *testing.T) {
			d := NewDensityBased(buildIx(pts, bounds, 64).CountTree())
			queries := make([]geom.Point, 0, 300)
			for i := 0; i < 250; i++ {
				queries = append(queries, geom.Point{
					X: rng.Float64() * 100, Y: rng.Float64() * 100,
				})
			}
			// Boundary and out-of-bounds queries stress the scan order.
			queries = append(queries,
				geom.Point{X: 0, Y: 0}, geom.Point{X: 100, Y: 100},
				geom.Point{X: 50, Y: 0}, geom.Point{X: -10, Y: 50},
				geom.Point{X: 120, Y: 120},
			)
			for _, q := range queries {
				// k sweeps past the point count to hit the scan-everything
				// fallback.
				for _, k := range []int{1, 2, 7, 63, 500, len(pts), len(pts) + 1} {
					got, err := d.EstimateSelect(q, k)
					if err != nil {
						t.Fatalf("single-pass (%v, k=%d): %v", q, k, err)
					}
					want, err := d.estimateSelectTwoPass(q, k)
					if err != nil {
						t.Fatalf("two-pass (%v, k=%d): %v", q, k, err)
					}
					if got != want {
						t.Fatalf("EstimateSelect(%v, k=%d) = %v, two-pass = %v",
							q, k, got, want)
					}
				}
			}
		})
	}
}
