package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"knncost/internal/catalog"
	"knncost/internal/geom"
	"knncost/internal/grid"
	"knncost/internal/index"
	"knncost/internal/ptloc"
)

// Catalog persistence: a query optimizer builds its statistics once and
// keeps them across restarts. Staircase, CatalogMerge and VirtualGrid
// estimators serialize to a small versioned binary format; loading a
// Staircase requires the same data index (its catalogs attach to that
// index's blocks, and the file records a fingerprint to catch mismatches),
// while CatalogMerge and VirtualGrid load standalone.

const (
	persistVersion   = 1
	magicStaircase   = "KNCS"
	magicCatalogMrg  = "KNCM"
	magicVirtualGrid = "KNVG"

	// maxSaneK bounds the MaxK a loader accepts. Catalog-maintained k values
	// are "a practically large constant" (the paper uses 10,000); 2^32 is far
	// beyond any of them while still rejecting hostile length fields early.
	maxSaneK = 1 << 32
)

type binWriter struct {
	w   *bufio.Writer
	err error
}

func (b *binWriter) u64(v uint64) {
	if b.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, b.err = b.w.Write(buf[:n])
}

func (b *binWriter) f64(v float64) { b.u64(math.Float64bits(v)) }

func (b *binWriter) bytes(p []byte) {
	b.u64(uint64(len(p)))
	if b.err != nil {
		return
	}
	_, b.err = b.w.Write(p)
}

func (b *binWriter) catalog(c *catalog.Catalog) {
	if b.err != nil {
		return
	}
	data, err := c.MarshalBinary()
	if err != nil {
		b.err = err
		return
	}
	b.bytes(data)
}

type binReader struct {
	r   *bufio.Reader
	err error
}

func (b *binReader) u64() uint64 {
	if b.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(b.r)
	if err != nil {
		b.err = err
	}
	return v
}

func (b *binReader) f64() float64 { return math.Float64frombits(b.u64()) }

func (b *binReader) bytes() []byte {
	n := b.u64()
	if b.err != nil {
		return nil
	}
	if n > 1<<30 {
		b.err = errors.New("core: unreasonable field length")
		return nil
	}
	// A hostile length field must not translate into a huge up-front
	// allocation: small fields are read exactly, large ones are read in
	// bounded chunks so a truncated stream fails after at most one chunk
	// of over-allocation instead of n bytes.
	const chunk = 64 << 10
	sz := int(n)
	if sz <= chunk {
		p := make([]byte, sz)
		if _, err := io.ReadFull(b.r, p); err != nil {
			b.err = err
			return nil
		}
		return p
	}
	p := make([]byte, 0, chunk)
	buf := make([]byte, chunk)
	for read := 0; read < sz; {
		step := sz - read
		if step > chunk {
			step = chunk
		}
		if _, err := io.ReadFull(b.r, buf[:step]); err != nil {
			b.err = err
			return nil
		}
		p = append(p, buf[:step]...)
		read += step
	}
	return p
}

func (b *binReader) catalog() *catalog.Catalog {
	data := b.bytes()
	if b.err != nil {
		return nil
	}
	c := &catalog.Catalog{}
	if err := c.UnmarshalBinary(data); err != nil {
		b.err = err
		return nil
	}
	return c
}

func writeHeader(b *binWriter, magic string) {
	if b.err == nil {
		_, b.err = b.w.WriteString(magic)
	}
	b.u64(persistVersion)
}

func readHeader(b *binReader, magic string) {
	if b.err != nil {
		return
	}
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(b.r, got); err != nil {
		b.err = err
		return
	}
	if string(got) != magic {
		b.err = fmt.Errorf("core: bad magic %q, want %q", got, magic)
		return
	}
	if v := b.u64(); b.err == nil && v != persistVersion {
		b.err = fmt.Errorf("core: unsupported format version %d", v)
	}
}

// WriteTo serializes the staircase catalogs. The companion LoadStaircase
// must be given the same data index.
func (s *Staircase) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	b := &binWriter{w: bufio.NewWriter(cw)}
	writeHeader(b, magicStaircase)
	b.u64(uint64(s.mode))
	b.u64(uint64(s.maxK))
	b.u64(uint64(s.aux.NumBlocks()))
	b.u64(uint64(s.aux.NumPoints())) // fingerprint
	for i := range s.center {
		b.catalog(s.center[i])
		switch s.mode {
		case ModeCenterCorners:
			b.catalog(s.corners[i])
		case ModeCenterQuadrant:
			for _, c := range s.quads[i] {
				b.catalog(c)
			}
		}
	}
	if b.err == nil {
		b.err = b.w.Flush()
	}
	return cw.n, b.err
}

// LoadStaircase reconstructs a staircase estimator from r against the same
// data index it was built on. opt supplies only AuxCapacity (to rebuild
// the auxiliary index for a non-partitioning data index) and Fallback;
// mode and MaxK come from the file. The file's block-count and point-count
// fingerprints must match the index, otherwise an error is returned.
func LoadStaircase(data *index.Tree, r io.Reader, opt StaircaseOptions) (*Staircase, error) {
	b := &binReader{r: bufio.NewReader(r)}
	readHeader(b, magicStaircase)
	mode := StaircaseMode(b.u64())
	maxK := int(b.u64())
	numBlocks := int(b.u64())
	numPoints := int(b.u64())
	if b.err != nil {
		return nil, b.err
	}
	// Validate the header fields before they size anything: an unknown mode
	// would leave the corners/quads slices nil and panic at estimation time,
	// and a hostile maxK or block count must not drive allocations.
	switch mode {
	case ModeCenterCorners, ModeCenterOnly, ModeCenterQuadrant:
	default:
		return nil, fmt.Errorf("core: unknown staircase mode %d", mode)
	}
	if maxK < 1 || maxK > maxSaneK {
		return nil, fmt.Errorf("core: unreasonable staircase MaxK %d", maxK)
	}
	if numBlocks < 1 || numPoints < 0 {
		return nil, fmt.Errorf("core: unreasonable staircase shape: %d blocks, %d points", numBlocks, numPoints)
	}
	aux := data
	if !data.Partitioning() {
		aux = auxiliaryIndex(data, opt.AuxCapacity)
	}
	if aux.NumBlocks() != numBlocks || aux.NumPoints() != numPoints {
		return nil, fmt.Errorf("core: staircase file built for %d blocks/%d points, index has %d/%d",
			numBlocks, numPoints, aux.NumBlocks(), aux.NumPoints())
	}
	s := &Staircase{
		aux:      aux,
		loc:      ptloc.Build(aux),
		mode:     mode,
		maxK:     maxK,
		fallback: opt.Fallback,
		center:   make([]*catalog.Catalog, numBlocks),
	}
	if s.fallback == nil {
		s.fallback = NewDensityBased(data.CountTree())
	}
	switch mode {
	case ModeCenterCorners:
		s.corners = make([]*catalog.Catalog, numBlocks)
	case ModeCenterQuadrant:
		s.quads = make([][4]*catalog.Catalog, numBlocks)
	}
	for i := 0; i < numBlocks; i++ {
		s.center[i] = b.catalog()
		switch mode {
		case ModeCenterCorners:
			s.corners[i] = b.catalog()
		case ModeCenterQuadrant:
			for j := 0; j < 4; j++ {
				s.quads[i][j] = b.catalog()
			}
		}
		if b.err != nil {
			return nil, b.err
		}
	}
	return s, nil
}

// WriteTo serializes the merged catalog and its scale factor.
func (c *CatalogMerge) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	b := &binWriter{w: bufio.NewWriter(cw)}
	writeHeader(b, magicCatalogMrg)
	b.u64(uint64(c.maxK))
	b.f64(c.scale)
	b.catalog(c.merged)
	if b.err == nil {
		b.err = b.w.Flush()
	}
	return cw.n, b.err
}

// LoadCatalogMerge reconstructs a CatalogMerge estimator from r. It is
// fully standalone: no index is needed at estimation time.
func LoadCatalogMerge(r io.Reader) (*CatalogMerge, error) {
	b := &binReader{r: bufio.NewReader(r)}
	readHeader(b, magicCatalogMrg)
	maxK := int(b.u64())
	scale := b.f64()
	if b.err == nil && (maxK < 1 || maxK > maxSaneK) {
		return nil, fmt.Errorf("core: unreasonable catalog-merge MaxK %d", maxK)
	}
	if b.err == nil && (math.IsNaN(scale) || math.IsInf(scale, 0) || scale < 0) {
		return nil, fmt.Errorf("core: invalid catalog-merge scale %v", scale)
	}
	merged := b.catalog()
	if b.err != nil {
		return nil, b.err
	}
	return &CatalogMerge{merged: merged, scale: scale, maxK: maxK}, nil
}

// WriteTo serializes the virtual grid: bounds, dimensions and per-cell
// catalogs.
func (v *VirtualGrid) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	b := &binWriter{w: bufio.NewWriter(cw)}
	writeHeader(b, magicVirtualGrid)
	b.u64(uint64(v.nx))
	b.u64(uint64(v.ny))
	b.u64(uint64(v.maxK))
	b.f64(v.bounds.Min.X)
	b.f64(v.bounds.Min.Y)
	b.f64(v.bounds.Max.X)
	b.f64(v.bounds.Max.Y)
	for _, c := range v.catalogs {
		b.catalog(c)
	}
	if b.err == nil {
		b.err = b.w.Flush()
	}
	return cw.n, b.err
}

// LoadVirtualGrid reconstructs a VirtualGrid estimator from r. It is fully
// standalone: estimation needs only the outer relation.
func LoadVirtualGrid(r io.Reader) (*VirtualGrid, error) {
	b := &binReader{r: bufio.NewReader(r)}
	readHeader(b, magicVirtualGrid)
	nx := int(b.u64())
	ny := int(b.u64())
	maxK := int(b.u64())
	bounds := geom.Rect{
		Min: geom.Point{X: b.f64(), Y: b.f64()},
		Max: geom.Point{X: b.f64(), Y: b.f64()},
	}
	if b.err != nil {
		return nil, b.err
	}
	if nx < 1 || ny < 1 || nx > 1<<20 || ny > 1<<20 || nx*ny > 1<<20 {
		return nil, fmt.Errorf("core: unreasonable grid %dx%d", nx, ny)
	}
	if maxK < 1 || maxK > maxSaneK {
		return nil, fmt.Errorf("core: unreasonable virtual-grid MaxK %d", maxK)
	}
	if !bounds.Valid() || bounds.Width() <= 0 || bounds.Height() <= 0 {
		return nil, fmt.Errorf("core: invalid grid bounds %v", bounds)
	}
	v := &VirtualGrid{
		cells:    grid.Cells(bounds, nx, ny),
		catalogs: make([]*catalog.Catalog, nx*ny),
		bounds:   bounds,
		nx:       nx,
		ny:       ny,
		maxK:     maxK,
	}
	for i := range v.catalogs {
		v.catalogs[i] = b.catalog()
		if b.err != nil {
			return nil, b.err
		}
	}
	return v, nil
}

// countingWriter tracks bytes written for the io.WriterTo contract.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
