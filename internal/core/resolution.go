package core

import "fmt"

// DefaultGridSize is the default Virtual-Grid dimension (10x10), matching
// the grid the paper's §5 experiments sweep around.
const DefaultGridSize = 10

// Resolution bundles the space/accuracy knobs of every technique artifact:
// how deep the interval catalogs go (MaxK), how many merged corner
// catalogs a staircase block keeps (Corners), how fine the virtual grid is
// (GridSize), and how many points an AkNN summary partition aggregates
// (AknnCapacity). One relation is built at one resolution; coarser
// resolutions cost fewer bytes and (boundedly) more q-error, which is the
// dial the store's space-budget tuner turns.
//
// The zero value means the repository-wide defaults at every axis,
// matching the zero-value conventions of engine.BuildOptions and
// store.Options.
type Resolution struct {
	// MaxK is the largest catalog-maintained k. Zero means DefaultMaxK.
	MaxK int
	// Corners is the number of merged corner catalogs a staircase block
	// retains: 1 (the paper's corners-catalog max-merge) is the default,
	// 4 keeps the per-quadrant set, and a negative value means none
	// (center-only artifacts). Zero means the default of 1.
	Corners int
	// GridSize is the Virtual-Grid dimension. Zero means DefaultGridSize.
	GridSize int
	// AknnCapacity is the minimum number of points an AkNN summary
	// partition aggregates; consecutive index blocks are coalesced until
	// a partition reaches it. Zero means one partition per block (the
	// finest summary).
	AknnCapacity int
}

// DefaultResolution returns the canonical repository-wide resolution.
func DefaultResolution() Resolution { return Resolution{}.Canon() }

// Canon maps a user-supplied resolution to its canonical form: zero axes
// become the defaults and negative Corners becomes -1 (center-only; 0 is
// reserved for "default", so -1 is the stable canonical spelling). Canon
// is idempotent, and two resolutions are interchangeable exactly when
// their Canon values are equal, so canonical resolutions serve as cache
// and artifact keys.
func (r Resolution) Canon() Resolution {
	if r.MaxK == 0 {
		r.MaxK = DefaultMaxK
	}
	switch {
	case r.Corners == 0:
		r.Corners = 1
	case r.Corners < 0:
		r.Corners = -1
	}
	if r.GridSize == 0 {
		r.GridSize = DefaultGridSize
	}
	if r.AknnCapacity < 0 {
		r.AknnCapacity = 0
	}
	return r
}

// Validate rejects resolutions no builder accepts.
func (r Resolution) Validate() error {
	r = r.Canon()
	if r.MaxK < 1 {
		return fmt.Errorf("core: invalid resolution MaxK %d", r.MaxK)
	}
	if r.Corners != -1 && r.Corners != 1 && r.Corners != 4 {
		return fmt.Errorf("core: invalid resolution Corners %d (want negative, 0, 1 or 4)", r.Corners)
	}
	if r.GridSize < 1 {
		return fmt.Errorf("core: invalid resolution GridSize %d", r.GridSize)
	}
	return nil
}

// StaircaseMode returns the staircase variant the Corners budget selects.
func (r Resolution) StaircaseMode() StaircaseMode {
	switch r.Canon().Corners {
	case -1:
		return ModeCenterOnly
	case 4:
		return ModeCenterQuadrant
	default:
		return ModeCenterCorners
	}
}

// Key returns a short stable string identifying the canonical resolution,
// for cache fingerprints and log lines.
func (r Resolution) Key() string {
	r = r.Canon()
	return fmt.Sprintf("k%d.c%d.g%d.a%d", r.MaxK, r.Corners, r.GridSize, r.AknnCapacity)
}

// Tuner ladder floors: shrinking stops at these so estimates never
// degenerate to a single catalog interval or a 1x1 grid.
const (
	minTunedMaxK     = 64
	minTunedGridSize = 2
	maxTunedCapacity = 4096
	minTunedCapacity = 64
)

// Coarser returns the next resolution down the space ladder: it first
// halves MaxK (floor 64), then halves GridSize (floor 2), then doubles
// AknnCapacity (from 64, cap 4096). Corners is never tuned — it changes
// which technique artifacts exist, not just their depth. At the floor of
// every axis Coarser returns r unchanged; callers detect exhaustion by
// comparing.
func (r Resolution) Coarser() Resolution {
	r = r.Canon()
	switch {
	case r.MaxK > minTunedMaxK:
		r.MaxK = max(minTunedMaxK, r.MaxK/2)
	case r.GridSize > minTunedGridSize:
		r.GridSize = max(minTunedGridSize, r.GridSize/2)
	case r.AknnCapacity == 0:
		r.AknnCapacity = minTunedCapacity
	case r.AknnCapacity < maxTunedCapacity:
		r.AknnCapacity = min(maxTunedCapacity, r.AknnCapacity*2)
	}
	return r
}

// CoarserN applies Coarser n times.
func (r Resolution) CoarserN(n int) Resolution {
	r = r.Canon()
	for i := 0; i < n; i++ {
		next := r.Coarser()
		if next == r {
			break
		}
		r = next
	}
	return r
}

// Artifact is implemented by every technique artifact: anything a
// relation builds, caches, persists and serves estimates from. It reports
// the resolution the artifact was built at and its in-memory byte
// footprint, which is what the store's space-budget tuner accounts
// against -catalog-budget-bytes. Axes a particular artifact does not use
// (e.g. GridSize for a staircase) report the canonical defaults.
type Artifact interface {
	// Resolution returns the canonical resolution the artifact was built at.
	Resolution() Resolution
	// SizeBytes returns the artifact's byte footprint: the serialized
	// catalog bytes it retains (borrowed mmap bytes count too — they
	// occupy address space and page cache even when not heap-resident).
	SizeBytes() int
}

// cornersOfMode inverts Resolution.StaircaseMode.
func cornersOfMode(m StaircaseMode) int {
	switch m {
	case ModeCenterOnly:
		return -1
	case ModeCenterQuadrant:
		return 4
	default:
		return 1
	}
}

// Resolution implements Artifact. GridSize and AknnCapacity do not apply
// to a staircase and report the defaults.
func (s *Staircase) Resolution() Resolution {
	return Resolution{MaxK: s.maxK, Corners: cornersOfMode(s.mode)}.Canon()
}

// SizeBytes implements Artifact.
func (s *Staircase) SizeBytes() int { return s.StorageBytes() }

// Resolution implements Artifact. Only MaxK applies to a merged pair
// catalog; the other axes report the defaults.
func (c *CatalogMerge) Resolution() Resolution {
	return Resolution{MaxK: c.maxK}.Canon()
}

// SizeBytes implements Artifact.
func (c *CatalogMerge) SizeBytes() int { return c.StorageBytes() }

// Resolution implements Artifact. AknnCapacity does not apply to a
// virtual grid and reports the default.
func (v *VirtualGrid) Resolution() Resolution {
	return Resolution{MaxK: v.maxK, GridSize: v.nx}.Canon()
}

// SizeBytes implements Artifact.
func (v *VirtualGrid) SizeBytes() int { return v.StorageBytes() }

// Resolution implements Artifact. Density-based estimation keeps no
// catalogs, so no resolution axis applies; it reports the defaults.
func (d *DensityBased) Resolution() Resolution { return DefaultResolution() }

// SizeBytes implements Artifact. The density technique's only artifact is
// the Count-Index it walks: bounds plus a count per block.
func (d *DensityBased) SizeBytes() int {
	// 4 float64 bounds + 1 int count per block.
	return d.count.NumBlocks() * 40
}

var (
	_ Artifact = (*Staircase)(nil)
	_ Artifact = (*CatalogMerge)(nil)
	_ Artifact = (*VirtualGrid)(nil)
	_ Artifact = (*DensityBased)(nil)
)
