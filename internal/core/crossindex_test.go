package core

import (
	"math/rand"
	"testing"

	"knncost/internal/geom"
	"knncost/internal/grid"
	"knncost/internal/index"
	"knncost/internal/kdtree"
	"knncost/internal/knn"
	"knncost/internal/knnjoin"
	"knncost/internal/quadtree"
	"knncost/internal/rtree"
)

// The paper's claim that its techniques are index-agnostic (§2): build the
// same estimators over four index families and check they all track the
// actual costs of their own index.
func TestEstimatorsAcrossIndexFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	bounds := geom.NewRect(0, 0, 100, 100)
	pts := clusteredPoints(rng, 6000, bounds)

	rt, err := rtree.Build(pts, rtree.Options{LeafCapacity: 64, Fanout: 8})
	if err != nil {
		t.Fatal(err)
	}
	families := map[string]*index.Tree{
		"quadtree": quadtree.Build(pts, quadtree.Options{Capacity: 64, Bounds: bounds}).Index(),
		"kdtree":   kdtree.Build(pts, kdtree.Options{Capacity: 64, Bounds: bounds}).Index(),
		"grid":     grid.Build(pts, bounds, 12, 12).Index(),
		"rtree":    rt.Index(),
	}
	for name, tree := range families {
		t.Run(name, func(t *testing.T) {
			stair, err := BuildStaircase(tree, StaircaseOptions{MaxK: 300, AuxCapacity: 64})
			if err != nil {
				t.Fatal(err)
			}
			density := NewDensityBased(tree.CountTree())
			var stairErr, densErr float64
			n := 100
			for i := 0; i < n; i++ {
				q := pts[rng.Intn(len(pts))]
				k := 50 + rng.Intn(250)
				actual := float64(knn.SelectCost(tree, q, k))
				if actual == 0 {
					continue
				}
				se, err := stair.EstimateSelect(q, k)
				if err != nil {
					t.Fatal(err)
				}
				de, err := density.EstimateSelect(q, k)
				if err != nil {
					t.Fatal(err)
				}
				stairErr += errRatio(se, actual)
				densErr += errRatio(de, actual)
			}
			t.Logf("%s: staircase err %.3f, density err %.3f", name, stairErr/float64(n), densErr/float64(n))
			// The staircase relies on the index adapting block size to
			// density (§3.1: indexes "split the data points until the
			// points are almost balanced across the leaf blocks"). The
			// adaptive families must do well; the non-adaptive uniform
			// grid violates the within-block-uniformity assumption on
			// clustered data, so it only gets a loose sanity bound.
			limit := 0.6
			if name == "grid" {
				limit = 2.0
			}
			if stairErr/float64(n) > limit {
				t.Errorf("staircase error %.3f above %.1f on %s", stairErr/float64(n), limit, name)
			}
		})
	}
}

// Locality-based join over an R-tree inner relation: MBR leaves do not
// tile space, but the locality guarantee must still hold, so the join must
// match the naive join exactly.
func TestJoinOverRTreeInner(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	bounds := geom.NewRect(0, 0, 60, 60)
	innerPts := randPoints(rng, 800, bounds)
	outerPts := randPoints(rng, 150, bounds)
	rt, err := rtree.Build(innerPts, rtree.Options{LeafCapacity: 32, Fanout: 6})
	if err != nil {
		t.Fatal(err)
	}
	inner := rt.Index()
	outer := buildIx(outerPts, bounds, 16)
	k := 6
	collect := func(run func(emit func(knnjoin.Pair)) knnjoin.Stats) map[geom.Point][]float64 {
		out := map[geom.Point][]float64{}
		run(func(p knnjoin.Pair) {
			out[p.Outer] = append(out[p.Outer], p.Distance)
		})
		return out
	}
	a := collect(func(emit func(knnjoin.Pair)) knnjoin.Stats {
		return knnjoin.Join(outer, inner, k, emit)
	})
	b := collect(func(emit func(knnjoin.Pair)) knnjoin.Stats {
		return knnjoin.JoinNaive(outer, inner, k, emit)
	})
	if len(a) != len(b) {
		t.Fatalf("cardinality %d vs %d", len(a), len(b))
	}
	for p, want := range b {
		got := a[p]
		if len(got) != len(want) {
			t.Fatalf("outer %v: %d vs %d neighbors", p, len(got), len(want))
		}
		// Compare multisets of distances via sums (both ascending from
		// their algorithms is not guaranteed here, so sort-free check).
		var sg, sw float64
		for i := range got {
			sg += got[i]
			sw += want[i]
		}
		if diff := sg - sw; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("outer %v: distance sums differ (%g vs %g)", p, sg, sw)
		}
	}
}

// Catalog-Merge built over a kd-tree outer and grid inner must still be
// exact with a full sample — Procedure 2 only consumes the abstraction.
func TestCatalogMergeCrossFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	bounds := geom.NewRect(0, 0, 80, 80)
	outer := kdtree.Build(clusteredPoints(rng, 1500, bounds),
		kdtree.Options{Capacity: 32, Bounds: bounds}).Index().CountTree()
	inner := grid.Build(clusteredPoints(rng, 2500, bounds), bounds, 10, 10).Index().CountTree()
	cm, err := BuildCatalogMerge(outer, inner, 0, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 25, 120, 200} {
		est, err := cm.EstimateJoin(k)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(knnjoin.Cost(outer, inner, k))
		if est != want {
			t.Errorf("k=%d: estimate %g, exact %g", k, est, want)
		}
	}
}
