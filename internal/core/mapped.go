package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"knncost/internal/catalog"
	"knncost/internal/geom"
	"knncost/internal/grid"
	"knncost/internal/index"
	"knncost/internal/ptloc"
)

// Mapped persistence: the zero-copy counterpart of persist.go. The varint
// format (KNCS/KNCM/KNVG) optimizes for size; the mapped format optimizes
// for load time — every field is a fixed-width little-endian uint64 and
// every catalog is stored in the aligned encoding of
// catalog.AppendAligned, so a loader handed the mmap'd file bytes borrows
// the catalogs in place instead of decoding them onto the heap. All
// sections are multiples of 8 bytes, keeping each catalog 8-byte aligned
// relative to the (page-aligned) mapping.
//
// Lifetime: artifacts loaded by the *Mapped loaders alias the input bytes.
// The caller owns the mapping's lifetime and must keep it alive as long as
// the artifact serves estimates; see internal/mmapfile.

const (
	mappedMagicStaircase   = "KNCSMAP\x01"
	mappedMagicCatalogMrg  = "KNCMMAP\x01"
	mappedMagicVirtualGrid = "KNVGMAP\x01"
)

// Pin attaches ref (typically the *mmapfile.File whose bytes the artifact's
// catalogs borrow) to the artifact. Borrowed slices do not keep a mapping
// reachable by themselves, so the loader pins the mapping on the artifact:
// as long as the artifact is reachable the mapping cannot be unmapped by
// its finalizer. Pin is for loaders; it is not safe concurrently with use.
func (s *Staircase) Pin(ref any) { s.pin = ref }

// Pin attaches ref to the merge; see (*Staircase).Pin.
func (c *CatalogMerge) Pin(ref any) { c.pin = ref }

// Pin attaches ref to the grid; see (*Staircase).Pin.
func (v *VirtualGrid) Pin(ref any) { v.pin = ref }

// mappedWriter accumulates fixed-width sections and flushes them through
// one buffered writer.
type mappedWriter struct {
	w   io.Writer
	buf []byte
	n   int64
	err error
}

func (m *mappedWriter) u64(v uint64) {
	m.buf = binary.LittleEndian.AppendUint64(m.buf, v)
}

func (m *mappedWriter) catalog(c *catalog.Catalog) {
	m.buf = c.AppendAligned(m.buf)
	if len(m.buf) >= 1<<16 {
		m.flush()
	}
}

func (m *mappedWriter) flush() {
	if m.err != nil || len(m.buf) == 0 {
		return
	}
	n, err := m.w.Write(m.buf)
	m.n += int64(n)
	m.buf = m.buf[:0]
	m.err = err
}

// mappedReader parses fixed-width sections from the raw (typically
// mmap'd) file bytes without copying them.
type mappedReader struct {
	data []byte
	off  int
	err  error
}

func (m *mappedReader) magic(want string) {
	if m.err != nil {
		return
	}
	if len(m.data) < len(want) || string(m.data[:len(want)]) != want {
		m.err = fmt.Errorf("core: bad mapped magic, want %q", want)
		return
	}
	m.off = len(want)
}

func (m *mappedReader) u64() uint64 {
	if m.err != nil {
		return 0
	}
	if m.off+8 > len(m.data) {
		m.err = errors.New("core: truncated mapped header")
		return 0
	}
	v := binary.LittleEndian.Uint64(m.data[m.off:])
	m.off += 8
	return v
}

func (m *mappedReader) catalog() *catalog.Catalog {
	if m.err != nil {
		return nil
	}
	c := &catalog.Catalog{}
	n, err := c.BorrowAligned(m.data[m.off:])
	if err != nil {
		m.err = err
		return nil
	}
	m.off += n
	return c
}

func (m *mappedReader) done() error {
	if m.err != nil {
		return m.err
	}
	if m.off != len(m.data) {
		return fmt.Errorf("core: %d trailing bytes in mapped file", len(m.data)-m.off)
	}
	return nil
}

// WriteMapped serializes the staircase in the mapped format. The
// companion LoadStaircaseMapped must be given the same data index.
func (s *Staircase) WriteMapped(w io.Writer) (int64, error) {
	m := &mappedWriter{w: w, buf: make([]byte, 0, 1<<16)}
	m.buf = append(m.buf, mappedMagicStaircase...)
	m.u64(uint64(s.mode))
	m.u64(uint64(s.maxK))
	m.u64(uint64(s.aux.NumBlocks()))
	m.u64(uint64(s.aux.NumPoints()))
	for i := range s.center {
		m.catalog(s.center[i])
		switch s.mode {
		case ModeCenterCorners:
			m.catalog(s.corners[i])
		case ModeCenterQuadrant:
			for _, c := range s.quads[i] {
				m.catalog(c)
			}
		}
	}
	m.flush()
	return m.n, m.err
}

// LoadStaircaseMapped reconstructs a staircase from the raw bytes of a
// WriteMapped file against the same data index, borrowing the catalogs in
// place. raw must stay alive (unmapped last) as long as the staircase
// serves estimates. Validation mirrors LoadStaircase: mode, MaxK and the
// block/point fingerprints are checked before anything is sized by them.
func LoadStaircaseMapped(data *index.Tree, raw []byte, opt StaircaseOptions) (*Staircase, error) {
	m := &mappedReader{data: raw}
	m.magic(mappedMagicStaircase)
	mode := StaircaseMode(m.u64())
	maxK := int(m.u64())
	numBlocks := int(m.u64())
	numPoints := int(m.u64())
	if m.err != nil {
		return nil, m.err
	}
	switch mode {
	case ModeCenterCorners, ModeCenterOnly, ModeCenterQuadrant:
	default:
		return nil, fmt.Errorf("core: unknown staircase mode %d", mode)
	}
	if maxK < 1 || maxK > maxSaneK {
		return nil, fmt.Errorf("core: unreasonable staircase MaxK %d", maxK)
	}
	if numBlocks < 1 || numPoints < 0 {
		return nil, fmt.Errorf("core: unreasonable staircase shape: %d blocks, %d points", numBlocks, numPoints)
	}
	aux := data
	if !data.Partitioning() {
		aux = auxiliaryIndex(data, opt.AuxCapacity)
	}
	if aux.NumBlocks() != numBlocks || aux.NumPoints() != numPoints {
		return nil, fmt.Errorf("core: staircase file built for %d blocks/%d points, index has %d/%d",
			numBlocks, numPoints, aux.NumBlocks(), aux.NumPoints())
	}
	s := &Staircase{
		aux:      aux,
		loc:      ptloc.Build(aux),
		mode:     mode,
		maxK:     maxK,
		fallback: opt.Fallback,
		center:   make([]*catalog.Catalog, numBlocks),
	}
	if s.fallback == nil {
		s.fallback = NewDensityBased(data.CountTree())
	}
	switch mode {
	case ModeCenterCorners:
		s.corners = make([]*catalog.Catalog, numBlocks)
	case ModeCenterQuadrant:
		s.quads = make([][4]*catalog.Catalog, numBlocks)
	}
	for i := 0; i < numBlocks; i++ {
		s.center[i] = m.catalog()
		switch mode {
		case ModeCenterCorners:
			s.corners[i] = m.catalog()
		case ModeCenterQuadrant:
			for j := 0; j < 4; j++ {
				s.quads[i][j] = m.catalog()
			}
		}
		if m.err != nil {
			return nil, m.err
		}
	}
	if err := m.done(); err != nil {
		return nil, err
	}
	return s, nil
}

// WriteMapped serializes the merged pair catalog in the mapped format.
func (c *CatalogMerge) WriteMapped(w io.Writer) (int64, error) {
	m := &mappedWriter{w: w, buf: make([]byte, 0, 1<<12)}
	m.buf = append(m.buf, mappedMagicCatalogMrg...)
	m.u64(uint64(c.maxK))
	m.u64(math.Float64bits(c.scale))
	m.catalog(c.merged)
	m.flush()
	return m.n, m.err
}

// LoadCatalogMergeMapped reconstructs a CatalogMerge from the raw bytes
// of a WriteMapped file, borrowing the catalog in place. raw must stay
// alive as long as the estimator serves estimates.
func LoadCatalogMergeMapped(raw []byte) (*CatalogMerge, error) {
	m := &mappedReader{data: raw}
	m.magic(mappedMagicCatalogMrg)
	maxK := int(m.u64())
	scale := math.Float64frombits(m.u64())
	if m.err == nil && (maxK < 1 || maxK > maxSaneK) {
		return nil, fmt.Errorf("core: unreasonable catalog-merge MaxK %d", maxK)
	}
	if m.err == nil && (math.IsNaN(scale) || math.IsInf(scale, 0) || scale < 0) {
		return nil, fmt.Errorf("core: invalid catalog-merge scale %v", scale)
	}
	merged := m.catalog()
	if err := m.done(); err != nil {
		return nil, err
	}
	return &CatalogMerge{merged: merged, scale: scale, maxK: maxK}, nil
}

// WriteMapped serializes the virtual grid in the mapped format.
func (v *VirtualGrid) WriteMapped(w io.Writer) (int64, error) {
	m := &mappedWriter{w: w, buf: make([]byte, 0, 1<<16)}
	m.buf = append(m.buf, mappedMagicVirtualGrid...)
	m.u64(uint64(v.nx))
	m.u64(uint64(v.ny))
	m.u64(uint64(v.maxK))
	m.u64(math.Float64bits(v.bounds.Min.X))
	m.u64(math.Float64bits(v.bounds.Min.Y))
	m.u64(math.Float64bits(v.bounds.Max.X))
	m.u64(math.Float64bits(v.bounds.Max.Y))
	for _, c := range v.catalogs {
		m.catalog(c)
	}
	m.flush()
	return m.n, m.err
}

// LoadVirtualGridMapped reconstructs a VirtualGrid from the raw bytes of
// a WriteMapped file, borrowing the per-cell catalogs in place. raw must
// stay alive as long as the estimator serves estimates.
func LoadVirtualGridMapped(raw []byte) (*VirtualGrid, error) {
	m := &mappedReader{data: raw}
	m.magic(mappedMagicVirtualGrid)
	nx := int(m.u64())
	ny := int(m.u64())
	maxK := int(m.u64())
	bounds := geom.Rect{
		Min: geom.Point{X: math.Float64frombits(m.u64()), Y: math.Float64frombits(m.u64())},
		Max: geom.Point{X: math.Float64frombits(m.u64()), Y: math.Float64frombits(m.u64())},
	}
	if m.err != nil {
		return nil, m.err
	}
	if nx < 1 || ny < 1 || nx > 1<<20 || ny > 1<<20 || nx*ny > 1<<20 {
		return nil, fmt.Errorf("core: unreasonable grid %dx%d", nx, ny)
	}
	if maxK < 1 || maxK > maxSaneK {
		return nil, fmt.Errorf("core: unreasonable virtual-grid MaxK %d", maxK)
	}
	if !bounds.Valid() || bounds.Width() <= 0 || bounds.Height() <= 0 {
		return nil, fmt.Errorf("core: invalid grid bounds %v", bounds)
	}
	v := &VirtualGrid{
		cells:    grid.Cells(bounds, nx, ny),
		catalogs: make([]*catalog.Catalog, nx*ny),
		bounds:   bounds,
		nx:       nx,
		ny:       ny,
		maxK:     maxK,
	}
	for i := range v.catalogs {
		v.catalogs[i] = m.catalog()
		if m.err != nil {
			return nil, m.err
		}
	}
	if err := m.done(); err != nil {
		return nil, err
	}
	return v, nil
}
